// Chrome trace-event exporter for ObsSnapshot.
//
// Writes the JSON object format that chrome://tracing and Perfetto load
// directly: a `traceEvents` array of instant events (ph "i", one per trace
// record, timestamps in microseconds) plus an `otherData` block carrying
// the exact per-type emission totals, the drop count, and the latency
// histogram summaries. `otherData.totals` is the ground truth for
// event/counter agreement checks: ring wrap-around can drop *records*, but
// never mis-counts a *total* (tools/soak --trace validates oom_rescue and
// adoption totals against OpStats exactly; tools/ci.sh re-checks the file).
//
// This header owns the event-name strings (the "obs:" prefix is the
// NullMetrics zero-footprint grep canary, chosen so it can never collide
// with a fault-injection point name). Only binaries that actually export a
// trace include-and-odr-use these names; a NullMetrics build must not
// contain them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"

namespace wfq::obs {

/// One name per TraceEvent, in enum order.
inline constexpr const char* kTraceEventNames[] = {
    "obs:enq_slow",      "obs:deq_slow",   "obs:help_given",
    "obs:help_received", "obs:cleanup",    "obs:park",
    "obs:wake",          "obs:alloc_fail", "obs:reserve_hit",
    "obs:oom_rescue",    "obs:adopt",      "obs:patience_raise",
    "obs:patience_drop", "obs:wake_spurious",
};
static_assert(sizeof(kTraceEventNames) / sizeof(kTraceEventNames[0]) ==
                  kTraceEventCount,
              "kTraceEventNames must cover every TraceEvent");

inline const char* trace_event_name(TraceEvent t) noexcept {
  return kTraceEventNames[std::size_t(t)];
}

/// Short keys for otherData.totals / histogram summaries (no prefix; these
/// are JSON keys, not the grep canary).
inline constexpr const char* kTraceEventKeys[] = {
    "enq_slow",      "deq_slow",   "help_given", "help_received",
    "cleanup",       "park",       "wake",       "alloc_fail",
    "reserve_hit",   "oom_rescue", "adopt",      "patience_raise",
    "patience_drop", "wake_spurious",
};
static_assert(sizeof(kTraceEventKeys) / sizeof(kTraceEventKeys[0]) ==
                  kTraceEventCount,
              "kTraceEventKeys must cover every TraceEvent");

namespace detail {
inline void write_hist_summary(std::FILE* f, const char* key,
                               const LatencyHistogram& h, bool first) {
  std::fprintf(f,
               "%s\n      \"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
               "\"p99_ns\": %llu, \"p999_ns\": %llu}",
               first ? "" : ",", key, (unsigned long long)h.count(),
               (unsigned long long)h.percentile(0.50),
               (unsigned long long)h.percentile(0.99),
               (unsigned long long)h.percentile(0.999));
}
}  // namespace detail

/// Write `snap` as a Chrome trace-event JSON file. The file is written to
/// `<path>.tmp` and atomically renamed into place so a crash mid-export
/// can't leave a truncated trace for downstream tooling to choke on.
/// Returns false on any I/O failure (the tmp file is removed).
inline bool write_chrome_trace(ObsSnapshot snap, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  snap.sort_events();

  // Timestamps relative to the earliest event keep the numbers readable;
  // Chrome's `ts` unit is microseconds (fractional for ns resolution).
  const uint64_t t0 = snap.events.empty() ? 0 : snap.events.front().ts_ns;
  std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [", f);
  bool first = true;
  for (const TraceRec& r : snap.events) {
    std::fprintf(
        f,
        "%s\n    {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
        "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
        "\"args\": {\"a\": %llu, \"b\": %llu, \"seq\": %llu}}",
        first ? "" : ",", trace_event_name(TraceEvent(r.type)), r.tid,
        double(r.ts_ns - t0) / 1000.0, (unsigned long long)r.a,
        (unsigned long long)r.b, (unsigned long long)r.seq);
    first = false;
  }
  std::fputs("\n  ],\n  \"otherData\": {\n    \"totals\": {", f);
  for (std::size_t i = 0; i < kTraceEventCount; ++i) {
    std::fprintf(f, "%s\n      \"%s\": %llu", i == 0 ? "" : ",",
                 kTraceEventKeys[i], (unsigned long long)snap.totals[i]);
  }
  std::fprintf(f, "\n    },\n    \"dropped\": %llu,\n    \"histograms\": {",
               (unsigned long long)snap.dropped);
  detail::write_hist_summary(f, "enq_ns", snap.enq_ns, true);
  detail::write_hist_summary(f, "deq_ns", snap.deq_ns, false);
  detail::write_hist_summary(f, "enq_bulk_ns", snap.enq_bulk_ns, false);
  detail::write_hist_summary(f, "deq_bulk_ns", snap.deq_bulk_ns, false);
  detail::write_hist_summary(f, "pop_wait_ns", snap.pop_wait_ns, false);
  std::fputs("\n    }\n  }\n}\n", f);

  const bool wrote = std::fflush(f) == 0 && !std::ferror(f);
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace wfq::obs
