// Minimal ASCII line/column chart for the Figure-2 reproductions: renders
// throughput series (one glyph per queue) against the thread-count axis so
// a bench binary's output shows the *shape* the paper's figure shows, not
// just a table.
#pragma once

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace wfq::bench {

struct ChartSeries {
  std::string name;
  std::vector<double> values;  ///< one per x position
};

/// Renders series as a column chart: y scaled to [0, max], one character
/// column group per x label, one glyph per series.
inline std::string render_ascii_chart(const std::vector<std::string>& x_labels,
                                      const std::vector<ChartSeries>& series,
                                      unsigned height = 16,
                                      const std::string& y_unit = "") {
  static const char kGlyphs[] = "*o+x#@%&$~";
  const std::size_t nx = x_labels.size();
  double maxv = 0;
  for (const auto& s : series) {
    for (double v : s.values) maxv = std::max(maxv, v);
  }
  if (maxv <= 0) maxv = 1;
  if (height < 4) height = 4;

  // Column layout: per x position, one column per series + 2 spaces gap.
  const std::size_t group = series.size() + 2;
  const std::size_t width = nx * group;
  std::vector<std::string> rows(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    char g = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    for (std::size_t xi = 0; xi < nx && xi < series[si].values.size(); ++xi) {
      double v = series[si].values[xi];
      if (v < 0) v = 0;
      auto level = unsigned(std::min<double>(height - 1.0,
                                             v / maxv * (height - 1)));
      rows[height - 1 - level][xi * group + si] = g;
    }
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (unsigned r = 0; r < height; ++r) {
    double ylabel = maxv * double(height - 1 - r) / double(height - 1);
    os << std::setw(8) << ylabel << " |" << rows[r] << "\n";
  }
  os << std::string(8, ' ') << " +" << std::string(width, '-') << "\n";
  os << std::string(8, ' ') << "  ";
  for (std::size_t xi = 0; xi < nx; ++xi) {
    std::string lab = x_labels[xi].substr(0, group - 1);
    os << lab << std::string(group - lab.size(), ' ');
  }
  os << "\n  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << " " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << "=" << series[si].name;
  }
  if (!y_unit.empty()) os << "   (y: " << y_unit << ")";
  os << "\n";
  return os.str();
}

}  // namespace wfq::bench
