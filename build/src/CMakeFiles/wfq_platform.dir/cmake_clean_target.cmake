file(REMOVE_RECURSE
  "libwfq_platform.a"
)
