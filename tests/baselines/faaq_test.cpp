// Tests for the FAA microbenchmark pseudo-queue.
#include "baselines/faaq.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace wfq::baselines {
namespace {

TEST(FaaQueue, TicketsCountOperations) {
  FAAQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int i = 0; i < 10; ++i) q.enqueue(h, 1);
  EXPECT_EQ(q.enqueues(), 10u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.dequeue(h).has_value());
  EXPECT_EQ(q.dequeues(), 4u);
}

TEST(FaaQueue, DequeueBeyondEnqueuesReportsEmpty) {
  FAAQueue<uint64_t> q;
  auto h = q.get_handle();
  q.enqueue(h, 1);
  EXPECT_TRUE(q.dequeue(h).has_value());
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(FaaQueue, ConcurrentOpsAllTicketed) {
  FAAQueue<uint64_t> q;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kOps = 10000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) {
        q.enqueue(h, 1);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(q.enqueues(), kThreads * kOps);
  EXPECT_EQ(q.dequeues(), kThreads * kOps);
}

TEST(FaaQueue, EmulatedFaaVariantTicketsCorrectly) {
  FAAQueue<uint64_t, EmulatedFaa> q;
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 10000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) q.enqueue(h, 1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(q.enqueues(), kThreads * kOps);
}

}  // namespace
}  // namespace wfq::baselines
