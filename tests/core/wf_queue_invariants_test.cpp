// White-box tests of the §3 invariants at the primitive level, via
// WfTestPeek: the linearizability advancer, request claiming, and the
// terminality of enqueue result states (Invariant 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/packed_state.hpp"
#include "core/wf_queue_core.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

using Core = WFQueueCore<DefaultWfTraits>;

TEST(WfInvariants, AdvanceEndNeverMovesBackward) {
  // Invariant 4's enabler: the tail index only rises, one step per
  // fast-path enqueue, jumps allowed when helpers commit slow-path values.
  Core q;
  auto* h = q.register_handle();
  uint64_t t_before = q.tail_index();
  for (int i = 0; i < 1000; ++i) {
    q.enqueue(h, uint64_t(i) + 1);
    uint64_t t_now = q.tail_index();
    ASSERT_GE(t_now, t_before + 1);
    t_before = t_now;
  }
}

TEST(WfInvariants, TailIndexMonotoneUnderConcurrency) {
  Core q;
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread watcher([&] {
    uint64_t last_t = 0, last_h = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t t = q.tail_index();
      uint64_t hh = q.head_index();
      if (t < last_t || hh < last_h) violated.store(true);
      last_t = t;
      last_h = hh;
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      auto* h = q.register_handle();
      for (uint64_t i = 0; i < 30000; ++i) {
        q.enqueue(h, (uint64_t(w + 1) << 40) | (i + 1));
        (void)q.dequeue(h);
      }
      q.release_handle(h);
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true);
  watcher.join();
  EXPECT_FALSE(violated.load()) << "head/tail index moved backward";
}

TEST(WfInvariants, DequeueNeverReturnsReservedSlots) {
  Core q;
  auto* h = q.register_handle();
  for (int round = 0; round < 2000; ++round) {
    if (round % 3 != 0) q.enqueue(h, uint64_t(round) + 1);
    uint64_t v = q.dequeue(h);
    ASSERT_NE(v, Core::kBot);
    ASSERT_NE(v, Core::kTop);
    // kEmpty is the legal "empty" sentinel; anything else is a payload.
    if (v != Core::kEmpty) {
      ASSERT_TRUE(Core::is_enqueueable(v));
    }
  }
}

TEST(WfInvariants, StalledEnqueueRequestClaimedExactlyOnce) {
  // Invariant analogue of "one and only one unique enqueue result state":
  // many dequeuers race to help one stalled enqueue; its value must
  // surface exactly once across everything dequeued.
  for (int round = 0; round < 50; ++round) {
    Core q;
    auto* stalled = q.register_handle();
    (void)WfTestPeek::publish_enq_request(q, stalled, 777);

    constexpr unsigned kHelpers = 4;
    std::atomic<int> seen_777{0};
    std::vector<std::thread> ts;
    for (unsigned i = 0; i < kHelpers; ++i) {
      ts.emplace_back([&] {
        auto* h = q.register_handle();
        for (int k = 0; k < 8; ++k) {
          uint64_t v = q.dequeue(h);
          if (v == 777u) seen_777.fetch_add(1);
        }
        q.release_handle(h);
      });
    }
    for (auto& t : ts) t.join();
    ASSERT_EQ(seen_777.load(), 1)
        << "stalled request's value surfaced " << seen_777.load() << " times";
    ASSERT_FALSE(WfTestPeek::enq_request_pending<Core>(stalled));
  }
}

TEST(WfInvariants, PackedClaimTransitionMatchesPaper) {
  // try_to_claim_req's (1, id) -> (0, cell) transition, raced.
  for (int round = 0; round < 500; ++round) {
    std::atomic<uint64_t> state{PackedState(true, 7).word()};
    std::atomic<int> winners{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 3; ++t) {
      ts.emplace_back([&, t] {
        uint64_t expected = PackedState(true, 7).word();
        if (state.compare_exchange_strong(
                expected, PackedState(false, 100 + t).word())) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : ts) t.join();
    ASSERT_EQ(winners.load(), 1);
    auto s = PackedState::from_word(state.load());
    ASSERT_FALSE(s.pending());
    ASSERT_GE(s.index(), 100u);
  }
}

}  // namespace
}  // namespace wfq
