// Unit and stress tests for the epoch-based reclamation domain.
#include "memory/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace wfq {
namespace {

struct CountedNode {
  static inline std::atomic<int> live{0};
  int payload = 0;
  CountedNode() { live.fetch_add(1); }
  explicit CountedNode(int p) : payload(p) { live.fetch_add(1); }
  ~CountedNode() { live.fetch_sub(1); }
};

TEST(Epoch, AcquireReusesReleasedRecords) {
  EpochDomain dom;
  auto* a = dom.acquire();
  dom.release(a);
  auto* b = dom.acquire();
  EXPECT_EQ(a, b);
  dom.release(b);
}

TEST(Epoch, EpochAdvancesWhenNoPins) {
  EpochDomain dom(/*advance_threshold=*/1);
  auto* r = dom.acquire();
  uint64_t e0 = dom.epoch();
  dom.retire(r, new CountedNode());  // threshold 1: try_advance fires
  EXPECT_GT(dom.epoch(), e0);
  dom.release(r);
}

TEST(Epoch, PinnedReaderBoundsAdvancementAndBlocksFrees) {
  // The EBR rule: the epoch may advance once past a pinned reader (its pin
  // equals the epoch it observed) but never twice, and nothing the reader
  // could hold is freed while it is pinned.
  CountedNode::live.store(0);
  EpochDomain dom(1);
  auto* reader = dom.acquire();
  auto* writer = dom.acquire();
  dom.enter(reader);
  uint64_t e0 = dom.epoch();
  constexpr int kRetired = 10;
  for (int i = 0; i < kRetired; ++i) dom.retire(writer, new CountedNode());
  EXPECT_LE(dom.epoch(), e0 + 1)
      << "epoch advanced twice past a pinned reader";
  EXPECT_EQ(CountedNode::live.load(), kRetired)
      << "a node was freed while a reader was pinned";
  dom.exit(reader);
  for (int i = 0; i < 4; ++i) {
    dom.retire(writer, new CountedNode());
    dom.try_advance(writer);
  }
  EXPECT_GT(dom.epoch(), e0 + 1);
  EXPECT_LT(CountedNode::live.load(), kRetired + 4);
  dom.release(reader);
  dom.release(writer);
}

TEST(Epoch, NodesFreedTwoEpochsLater) {
  CountedNode::live.store(0);
  {
    EpochDomain dom(/*advance_threshold=*/1000000);  // manual advancement
    auto* r = dom.acquire();
    dom.retire(r, new CountedNode());
    EXPECT_EQ(CountedNode::live.load(), 1);
    dom.try_advance(r);  // epoch +1: still unsafe to free
    dom.try_advance(r);  // epoch +2
    dom.try_advance(r);  // epoch +3: generation flushed by now
    EXPECT_EQ(CountedNode::live.load(), 0);
    dom.release(r);
  }
}

TEST(Epoch, DestructorFlushesAllLimbo) {
  CountedNode::live.store(0);
  {
    EpochDomain dom(1000000);
    auto* r = dom.acquire();
    for (int i = 0; i < 50; ++i) dom.retire(r, new CountedNode());
    EXPECT_EQ(CountedNode::live.load(), 50);
    dom.release(r);
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

TEST(Epoch, GuardPinsAndUnpins) {
  CountedNode::live.store(0);
  EpochDomain dom(1);
  auto* reader = dom.acquire();
  auto* writer = dom.acquire();
  uint64_t e0 = dom.epoch();
  {
    EpochGuard g(dom, reader);
    for (int i = 0; i < 5; ++i) dom.retire(writer, new CountedNode());
    EXPECT_LE(dom.epoch(), e0 + 1);          // pin caps advancement
    EXPECT_EQ(CountedNode::live.load(), 5);  // nothing freed under the pin
  }
  for (int i = 0; i < 4; ++i) {
    dom.retire(writer, new CountedNode());
    dom.try_advance(writer);
  }
  EXPECT_GT(dom.epoch(), e0 + 1);  // pin released: epoch free to move
  dom.release(reader);
  dom.release(writer);
}

TEST(Epoch, StressReadersNeverSeeFreedNodes) {
  // Writers swing a shared pointer and retire old targets; readers access
  // targets under epoch pins. ASan flags any premature free.
  constexpr int kReaders = 3;
  constexpr int kSwings = 15000;
  EpochDomain dom(32);
  std::atomic<CountedNode*> src{new CountedNode(42)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto* rec = dom.acquire();
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard g(dom, rec);
        CountedNode* p = src.load(std::memory_order_acquire);
        ASSERT_EQ(p->payload, 42);
      }
      dom.release(rec);
    });
  }
  {
    auto* rec = dom.acquire();
    for (int i = 0; i < kSwings; ++i) {
      auto* fresh = new CountedNode(42);
      CountedNode* old = src.exchange(fresh, std::memory_order_acq_rel);
      dom.retire(rec, old);
    }
    stop.store(true);
    dom.release(rec);
  }
  for (auto& t : readers) t.join();
  delete src.load();
}

TEST(Epoch, LimboCountIsBoundedUnderChurn) {
  EpochDomain dom(16);
  auto* r = dom.acquire();
  for (int i = 0; i < 10000; ++i) dom.retire(r, new CountedNode());
  // With nobody pinned, limbo stays within a few thresholds.
  EXPECT_LT(dom.limbo_count(), 200u);
  dom.release(r);
}

}  // namespace
}  // namespace wfq
