// Implementation of the C bindings (see wfq_c.h).
#include "capi/wfq_c.h"

#include <chrono>
#include <new>
#include <optional>
#include <utility>

#include "core/wf_queue_core.hpp"
#include "obs/trace_export.hpp"
#include "sync/blocking_queue.hpp"

namespace {
using Core = wfq::WFQueueCore<wfq::DefaultWfTraits>;  // reserved-value check

/// The C API queue is compiled with metrics enabled (production sampling:
/// 1-in-256 average latency recording, 4096-record trace rings) so
/// and the histogram summaries work out of the box. The zero-overhead-when-
/// disabled property is demonstrated by the NullMetrics grep target in
/// tools/ci.sh's obs leg, not by this binding.
struct CApiTraits : wfq::DefaultWfTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};
using BQ = wfq::sync::BlockingQueue<wfq::WFQueue<uint64_t, CApiTraits>>;
using wfq::sync::PopStatus;
using wfq::sync::PushStatus;

// The C struct and the internal OpStats both expand wfq_stats_fields.h, so
// they cannot drift apart by construction; these asserts additionally pin
// the ABI — same field count, no padding surprises.
constexpr std::size_t kExFieldCount = 0
#define WFQ_STATS_ONE(name) +1
    WFQ_STATS_FIELDS(WFQ_STATS_ONE, WFQ_STATS_ONE)
#undef WFQ_STATS_ONE
    ;
static_assert(kExFieldCount == wfq::OpStats::kFieldCount,
              "wfq_stats_ex_t and OpStats must expand the same field table");
static_assert(sizeof(wfq_stats_ex_t) == kExFieldCount * sizeof(uint64_t),
              "wfq_stats_ex_t must be a packed array of uint64_t counters");
}  // namespace

// The opaque C structs are the C++ objects themselves.
struct wfq_queue {
  BQ q;
  explicit wfq_queue(wfq::WfConfig cfg) : q(cfg) {}
};

struct wfq_handle {
  wfq_queue* owner;
  BQ::Handle h;
  wfq_handle(wfq_queue* q, BQ::Handle handle)
      : owner(q), h(std::move(handle)) {}
};

extern "C" {

wfq_queue_t* wfq_create(unsigned patience, int64_t max_garbage) {
  wfq::WfConfig cfg;
  cfg.patience = patience;
  cfg.max_garbage = max_garbage > 0 ? max_garbage : 1;
  // Constructors allocate (segments, registries) and may throw bad_alloc;
  // no exception may cross the extern "C" boundary — NULL means failure.
  try {
    return new wfq_queue(cfg);
  } catch (...) {
    return nullptr;
  }
}

wfq_queue_t* wfq_create_default(void) {
  return wfq_create(10, 64);
}

wfq_queue_t* wfq_create_ex(unsigned patience, int64_t max_garbage,
                           size_t reserve_segments) {
  wfq::WfConfig cfg;
  cfg.patience = patience;
  cfg.max_garbage = max_garbage > 0 ? max_garbage : 1;
  cfg.reserve_segments = reserve_segments;
  try {
    return new wfq_queue(cfg);
  } catch (...) {
    return nullptr;
  }
}

void wfq_destroy(wfq_queue_t* q) {
  delete q;
}

wfq_handle_t* wfq_handle_acquire(wfq_queue_t* q) {
  // get_handle()/acquire_rec() register in growable vectors and may throw;
  // catch everything so the C contract (NULL on failure) holds.
  try {
    return new wfq_handle(q, q->q.get_handle());
  } catch (...) {
    return nullptr;
  }
}

void wfq_handle_release(wfq_handle_t* h) {
  delete h;  // BQ::Handle's RAII returns both layers' records
}

int wfq_enqueue(wfq_handle_t* h, uint64_t value) {
  if (!Core::is_enqueueable(value)) return -1;
  switch (h->owner->q.push_status(h->h, value)) {
    case PushStatus::kOk:
      return 0;
    case PushStatus::kClosed:
      return -2;
    case PushStatus::kNoMem:
      break;
  }
  return -3;
}

int wfq_dequeue(wfq_handle_t* h, uint64_t* out) {
  // The inner dequeue reports allocation exhaustion (a helper needing a
  // fresh segment under OOM) by throwing; no exception may cross the
  // extern "C" boundary.
  try {
    std::optional<uint64_t> v = h->owner->q.try_pop(h->h);
    if (!v) return 0;
    *out = *v;
    return 1;
  } catch (const std::bad_alloc&) {
    return -3;
  }
}

int wfq_dequeue_wait(wfq_handle_t* h, uint64_t* out) {
  uint64_t v = 0;
  try {
    PopStatus st = h->owner->q.pop_wait(h->h, v);
    if (st != PopStatus::kOk) return 0;  // kClosed (pop_wait never times out)
    *out = v;
    return 1;
  } catch (const std::bad_alloc&) {
    return -3;
  }
}

int wfq_dequeue_timed(wfq_handle_t* h, uint64_t* out, uint64_t timeout_ns) {
  uint64_t v = 0;
  try {
    PopStatus st = h->owner->q.pop_wait_for(
        h->h, v, std::chrono::nanoseconds(timeout_ns));
    switch (st) {
      case PopStatus::kOk:
        *out = v;
        return 1;
      case PopStatus::kTimeout:
        return 0;
      case PopStatus::kClosed:
        break;
    }
    return -1;
  } catch (const std::bad_alloc&) {
    return -3;
  }
}

void wfq_close(wfq_queue_t* q) {
  q->q.close();
}

int wfq_is_closed(const wfq_queue_t* q) {
  return q->q.closed() ? 1 : 0;
}

int wfq_enqueue_bulk(wfq_handle_t* h, const uint64_t* values, size_t count) {
  for (size_t j = 0; j < count; ++j) {
    if (!Core::is_enqueueable(values[j])) return -1;
  }
  if (count == 0) {
    // Preserve the all-or-nothing contract's error reporting for the
    // degenerate batch: closed beats "trivially succeeded".
    return h->owner->q.closed() ? -2 : 0;
  }
  size_t committed = h->owner->q.push_bulk(h->h, values, count);
  if (committed == count) return 0;
  // 0 committed on a closed queue is the closed fast-fail; any other
  // shortfall is allocation exhaustion mid-batch (prefix enqueued).
  return (committed == 0 && h->owner->q.closed()) ? -2 : -3;
}

size_t wfq_dequeue_bulk(wfq_handle_t* h, uint64_t* out, size_t count) {
  return h->owner->q.try_pop_bulk(h->h, out, count);
}

uint64_t wfq_approx_size(const wfq_queue_t* q) {
  return q->q.inner().approx_size();
}

void wfq_get_stats(const wfq_queue_t* q, wfq_stats_t* out) {
  wfq::OpStats s = q->q.stats();
  out->enqueues = s.enqueues();
  out->dequeues = s.dequeues();
  out->slow_enqueues = s.enq_slow.load(std::memory_order_relaxed);
  out->slow_dequeues = s.deq_slow.load(std::memory_order_relaxed);
  out->empty_dequeues = s.deq_empty.load(std::memory_order_relaxed);
  out->segments_freed = s.segments_freed.load(std::memory_order_relaxed);
  out->deq_parks = s.deq_parks.load(std::memory_order_relaxed);
  out->deq_spurious_wakeups =
      s.deq_spurious_wakeups.load(std::memory_order_relaxed);
  out->notify_calls = s.notify_calls.load(std::memory_order_relaxed);
  out->injected_stalls = s.injected_stalls.load(std::memory_order_relaxed);
  out->injected_crashes = s.injected_crashes.load(std::memory_order_relaxed);
  out->adopted_handles = s.adopted_handles.load(std::memory_order_relaxed);
  out->orphan_drops = s.orphan_drops.load(std::memory_order_relaxed);
  out->alloc_failures = s.alloc_failures.load(std::memory_order_relaxed);
  out->reserve_pool_hits =
      s.reserve_pool_hits.load(std::memory_order_relaxed);
  out->oom_rescues = s.oom_rescues.load(std::memory_order_relaxed);
}

void wfq_get_stats_ex(const wfq_queue_t* q, wfq_stats_ex_t* out) {
  wfq::OpStats s = q->q.stats();
#define WFQ_STATS_COPY(name) \
  out->name = s.name.load(std::memory_order_relaxed);
  WFQ_STATS_FIELDS(WFQ_STATS_COPY, WFQ_STATS_COPY)
#undef WFQ_STATS_COPY
}

int wfq_trace_dump(const wfq_queue_t* q, const char* path) {
  if (path == nullptr) return -1;
  try {
    return wfq::obs::write_chrome_trace(q->q.collect_obs(), path) ? 0 : -1;
  } catch (...) {
    return -1;  // snapshot allocation failure; no exception crosses the ABI
  }
}

}  // extern "C"
