// Small, fast PRNGs for workload generation.
//
// The benchmark harness needs per-thread random streams that are cheap
// enough not to perturb the measurement (a queue operation under test is
// tens of nanoseconds): xorshift128+ generates a 64-bit value in a handful
// of cycles with no shared state. Not for cryptography.
#pragma once

#include <cstdint>

namespace wfq {

/// xorshift128+ (Vigna, 2014). Passes BigCrush except MatrixRank; more than
/// adequate for coin flips and work-delay jitter in benchmarks.
class Xorshift128Plus {
 public:
  using result_type = uint64_t;

  /// Seeds via splitmix64 so that consecutive integer seeds (e.g. thread
  /// ids) yield well-separated streams.
  explicit Xorshift128Plus(uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    s_[0] = splitmix64(seed);
    s_[1] = splitmix64(s_[0]);
    if (s_[0] == 0 && s_[1] == 0) s_[1] = 1;  // all-zero state is absorbing
  }

  uint64_t next() noexcept {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint64_t operator()() noexcept { return next(); }

  /// Uniform value in [0, bound) via Lemire's multiply-shift reduction
  /// (biased by < 2^-64; irrelevant for workload generation).
  uint64_t next_below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  uint64_t next_in(uint64_t lo, uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with probability `percent`/100.
  bool percent_chance(unsigned percent) noexcept {
    return next_below(100) < percent;
  }

  static constexpr uint64_t min() noexcept { return 0; }
  static constexpr uint64_t max() noexcept { return ~uint64_t{0}; }

 private:
  static uint64_t splitmix64(uint64_t& x) noexcept {
    uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static uint64_t splitmix64(uint64_t&& x) noexcept {
    uint64_t v = x;
    return splitmix64(v);
  }

  uint64_t s_[2];
};

}  // namespace wfq
