// Fault matrix for the sharded layer: the steal sweep under scripted
// stalls, crashes and close() races. The properties held throughout:
//
//   * a crash at shard_steal_scan kills the consumer BEFORE it touches the
//     foreign lane, so accounting stays EXACT — the sweep must never hold a
//     value at its injection point;
//   * a crash inside a foreign lane's dequeue (deq_faa_post while stealing)
//     may strand at most the inner queue's documented allowance, and orphan
//     adoption — which runs per lane when the crashed handle's inner
//     handles are released — must conserve everything else;
//   * close() racing an in-flight steal sweep still drains every value on
//     every lane exactly once (the full-sweep emptiness witness).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "fault/fault_test_util.hpp"
#include "scale/sharded_queue.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq {
namespace {

using fault_test::Inj;

struct ShardFaultTraits : fault_test::FaultTraits {
  static constexpr std::size_t kSegmentSize = 64;
};
using SQ = ShardedQueue<WFQueue<uint64_t, ShardFaultTraits>>;
using BSQ = sync::BlockingQueue<SQ>;

uint64_t val(unsigned tid, uint64_t seq) {
  return (uint64_t(tid + 1) << 40) | seq;
}

// The steal point is reachable only from a consumer whose home lane is
// empty; this helper hands out a producer/consumer handle pair with
// distinct homes on a 4-lane queue.
TEST(ShardedFault, StealPointIsReachable) {
  fault_test::ScriptReset script;
  ASSERT_TRUE(Inj::arm("shard_steal_scan", fault::Action::kYield,
                       /*budget=*/4, 0));
  SQ q(ShardConfig{4}, WfConfig{});
  auto producer = q.get_handle();
  auto consumer = q.get_handle();
  Inj::set_victim(true);
  q.enqueue(producer, 1);
  ASSERT_TRUE(q.dequeue(consumer).has_value());
  Inj::set_victim(false);
  EXPECT_GE(Inj::fired("shard_steal_scan"), 1u);
}

TEST(ShardedFault, CrashOfStealingThreadConservesValues) {
  fault_test::ScriptReset script;
  ASSERT_TRUE(Inj::arm("shard_steal_scan", fault::Action::kCrash,
                       /*budget=*/1, 0));
  SQ q(ShardConfig{4}, WfConfig{});

  constexpr uint64_t kValues = 200;
  {
    auto producer = q.get_handle();
    for (uint64_t i = 1; i <= kValues; ++i) q.enqueue(producer, i);
  }

  std::atomic<bool> crashed{false};
  std::vector<uint64_t> popped_by_victim;
  std::thread victim([&] {
    Inj::set_victim(true);
    auto h = q.get_handle();
    try {
      // The victim's home lane is (most likely) not the producer's; every
      // dequeue goes through the steal sweep and the armed crash fires on
      // the first probe. If the round-robin happened to give the victim
      // the producer's lane, it drains it first and crashes on the sweep
      // that follows — either way the crash point is reached.
      for (;;) {
        auto v = q.dequeue(h);
        if (!v) break;
        popped_by_victim.push_back(*v);
      }
    } catch (const fault::InjectedCrash& c) {
      EXPECT_STREQ(c.point, "shard_steal_scan");
      crashed.store(true);
    }
    Inj::set_victim(false);
  });  // victim's Handle destructor runs even on the crash path: its inner
       // lane handles are released and any claimed-but-unfinished inner op
       // is adopted by the lane's machinery.
  victim.join();
  ASSERT_TRUE(crashed.load());
  EXPECT_EQ(Inj::crashes(), 1u);

  // The crash hit BEFORE any foreign-lane claim, so conservation is exact:
  // a fresh consumer must recover every value not already popped.
  std::set<uint64_t> seen(popped_by_victim.begin(), popped_by_victim.end());
  ASSERT_EQ(seen.size(), popped_by_victim.size()) << "victim saw duplicates";
  auto h = q.get_handle();
  for (;;) {
    auto v = q.dequeue(h);
    if (!v) break;
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_EQ(seen.size(), kValues) << "values lost across the crash";
}

TEST(ShardedFault, CrashInsideForeignLaneDequeueAdoptsOrStrandsBounded) {
  // The harsher variant: the crash fires inside the foreign lane's own
  // dequeue (deq_faa_post), i.e. mid-steal with a cell already claimed.
  // The inner queue's matrix allowance applies: at most one value stranded
  // or orphan-dropped, everything else conserved.
  fault_test::ScriptReset script;
  ASSERT_TRUE(
      Inj::arm("deq_faa_post", fault::Action::kCrash, /*budget=*/1, 0));
  SQ q(ShardConfig{2}, WfConfig{});
  constexpr uint64_t kValues = 100;
  {
    auto producer = q.get_handle();
    for (uint64_t i = 1; i <= kValues; ++i) q.enqueue(producer, i);
  }
  std::set<uint64_t> seen;
  std::thread victim([&] {
    Inj::set_victim(true);
    auto h = q.get_handle();
    try {
      for (;;) {
        auto v = q.dequeue(h);
        if (!v) break;
        EXPECT_TRUE(seen.insert(*v).second);
      }
    } catch (const fault::InjectedCrash&) {
    }
    Inj::set_victim(false);
  });
  victim.join();
  ASSERT_EQ(Inj::crashes(), 1u);

  auto h = q.get_handle();
  for (;;) {
    auto v = q.dequeue(h);
    if (!v) break;
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  OpStats s = q.stats();
  const uint64_t drops = s.orphan_drops.load(std::memory_order_relaxed);
  EXPECT_GE(seen.size() + drops + 1, kValues)
      << "more than one value stranded by a single mid-claim crash";
  EXPECT_LE(seen.size(), kValues);
}

TEST(ShardedFault, CloseWhileStealingDrainsExactly) {
  // Consumers steal under scripted stalls at the sweep point while the
  // main thread closes the queue: the close/drain accounting must come out
  // exact, and no consumer may observe kClosed while any lane still holds
  // a value (the full-sweep witness under injection pressure).
  fault_test::ScriptReset script;
  ASSERT_TRUE(Inj::arm("shard_steal_scan", fault::Action::kStall,
                       /*budget=*/8, /*arg=*/50));

  BSQ q(ShardConfig{4}, WfConfig{});
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 3;
  constexpr uint64_t kPerProducer = 400;

  std::atomic<uint64_t> produced{0};
  std::mutex mu;
  std::set<uint64_t> seen;
  std::atomic<bool> go{false};
  std::atomic<unsigned> consumers_done{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.get_handle();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 1; i <= kPerProducer; ++i) {
        if (q.push_status(h, val(p, i)) == sync::PushStatus::kOk) {
          produced.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;  // closed under us: fine, only kOk pushes are owed back
        }
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      Inj::set_victim(c == 0);  // one consumer eats the scripted stalls
      auto h = q.get_handle();
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::vector<uint64_t> mine;
      for (;;) {
        uint64_t v = 0;
        sync::PopStatus st = q.pop_wait(h, v);
        if (st == sync::PopStatus::kClosed) break;
        if (st == sync::PopStatus::kOk) mine.push_back(v);
      }
      Inj::set_victim(false);
      {
        std::lock_guard<std::mutex> g(mu);
        for (uint64_t v : mine) {
          ASSERT_TRUE(seen.insert(v).second) << "duplicate " << v;
        }
      }
      consumers_done.fetch_add(1, std::memory_order_release);
    });
  }

  go.store(true, std::memory_order_release);
  // Let the race actually develop, then close mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.close();
  // Keep the global step counter moving so the victim's finite stalls
  // serve out even after every other worker has drained and exited.
  while (consumers_done.load(std::memory_order_acquire) < kConsumers) {
    Inj::inject("shard_pump");
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();

  // Exactness: every successfully pushed value was popped exactly once
  // (kClosed is only reported after the drain protocol's full sweep).
  EXPECT_EQ(seen.size(), produced.load());
}

}  // namespace
}  // namespace wfq
