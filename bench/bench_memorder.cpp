// Ablation B: memory-order policy. The paper's reclamation scheme is
// advertised as fence-free on the x86 fast path (§3.6 "Overhead"); the
// tuned configuration realizes that claim while the conservative one makes
// every atomic seq_cst and fences hazard publication explicitly (what a
// straightforward portable implementation would do). The gap between the
// two is the price of the paper's x86 optimization.
#include <iostream>

#include "bench_common.hpp"

namespace wfq::bench {
namespace {

struct ConservativeTraits : DefaultWfTraits {
  static constexpr bool kConservativeOrdering = true;
};

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();

  WfConfig wf10;
  wf10.patience = 10;
  std::vector<Contender> contenders;
  contenders.push_back(
      make_wf_contender<DefaultWfTraits>("tuned (paper x86)", wf10));
  contenders.push_back(
      make_wf_contender<ConservativeTraits>("conservative (all seq_cst)",
                                            wf10));

  std::cout << "== Ablation B: memory-order policy (pairs workload) ==\n\n";
  std::vector<std::string> headers{"threads"};
  for (auto& c : contenders) headers.push_back(c.name + " Mops/s");
  Table table(headers);
  for (unsigned t : threads) {
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPairs;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    for (auto& c : contenders) {
      auto ci = measure(mcfg, [&] { return c.make_invocation(cfg); });
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      std::cerr << "  [memorder] threads=" << t << " " << c.name << ": "
                << Table::fmt_ci(ci.mean, ci.half_width) << "\n";
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
