// Tests of handle registration, the helper ring, recycling and the
// deterministic (white-box) helping paths of §3.4/§3.5.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

using Core = WFQueueCore<DefaultWfTraits>;

TEST(WfQueueHandle, RegistrationFormsARing) {
  Core q;
  auto* a = q.register_handle();
  EXPECT_EQ(a->next.load(), a) << "first handle must link to itself";
  auto* b = q.register_handle();
  auto* c = q.register_handle();
  // Every handle must be reachable from every other by following next.
  for (auto* start : {a, b, c}) {
    int seen_a = 0, seen_b = 0, seen_c = 0;
    auto* p = start;
    for (int i = 0; i < 3; ++i) {
      seen_a += (p == a);
      seen_b += (p == b);
      seen_c += (p == c);
      p = p->next.load();
    }
    EXPECT_EQ(p, start) << "ring must close after 3 hops";
    EXPECT_EQ(seen_a + seen_b + seen_c, 3);
    EXPECT_TRUE(seen_a == 1 && seen_b == 1 && seen_c == 1);
  }
}

TEST(WfQueueHandle, PeersPointIntoTheRing) {
  Core q;
  auto* a = q.register_handle();
  auto* b = q.register_handle();
  EXPECT_NE(a->enq.peer, nullptr);
  EXPECT_NE(a->deq.peer, nullptr);
  EXPECT_NE(b->enq.peer, nullptr);
  EXPECT_NE(b->deq.peer, nullptr);
}

TEST(WfQueueHandle, ReleasedHandlesAreRecycled) {
  Core q;
  auto* a = q.register_handle();
  q.release_handle(a);
  auto* b = q.register_handle();
  EXPECT_EQ(a, b) << "freelist must hand back the released handle";
}

TEST(WfQueueHandle, GuardMovesAndReleases) {
  WFQueue<int> q;
  {
    auto h1 = q.get_handle();
    auto h2 = std::move(h1);
    q.enqueue(h2, 1);
    EXPECT_EQ(q.dequeue(h2), 1);
  }
  // After the guard dies the handle is recyclable; a fresh guard works.
  auto h = q.get_handle();
  q.enqueue(h, 2);
  EXPECT_EQ(q.dequeue(h), 2);
}

TEST(WfQueueHandle, ConcurrentRegistrationIsSafe) {
  Core q;
  constexpr int kThreads = 16;
  std::vector<Core::Handle*> handles(kThreads, nullptr);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] { handles[t] = q.register_handle(); });
  }
  for (auto& t : ts) t.join();
  // All distinct, all in one ring of size kThreads.
  for (int i = 0; i < kThreads; ++i) {
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(handles[i], handles[j]);
    }
  }
  auto* p = handles[0];
  int hops = 0;
  do {
    p = p->next.load();
    ++hops;
  } while (p != handles[0] && hops <= kThreads);
  EXPECT_EQ(hops, kThreads);
}

TEST(WfQueueHandle, RegistrationDuringTrafficIsSafe) {
  WFQueue<uint64_t> q;
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    auto h = q.get_handle();
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      q.enqueue(h, v++);
      (void)q.dequeue(h);
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto h = q.get_handle();  // register + release under load
    q.enqueue(h, 1'000'000 + i);
    (void)q.dequeue(h);
  }
  stop.store(true);
  worker.join();
}

// ---------------------------------------------------------------------
// Deterministic helping-path tests: simulate a thread that stalls right
// after publishing its slow-path request, and verify other threads complete
// the request for it.
// ---------------------------------------------------------------------

TEST(WfQueueHelp, DequeuerCompletesStalledEnqueueRequest) {
  Core q;
  auto* stalled = q.register_handle();  // ring: {stalled}
  auto* helper = q.register_handle();   // ring: stalled <-> helper
  ASSERT_EQ(helper->enq.peer, stalled);

  // `stalled` begins a slow-path enqueue of 777 and stops making progress.
  (void)WfTestPeek::publish_enq_request(q, stalled, 777);
  ASSERT_TRUE(WfTestPeek::enq_request_pending<Core>(stalled));

  // The helper dequeues. Its help_enq visits cell `req_id` (the oldest
  // unconsumed index), finds the pending peer request, reserves the cell
  // for it, commits the value, and the dequeue returns it.
  uint64_t got = q.dequeue(helper);
  EXPECT_EQ(got, 777u);
  EXPECT_FALSE(WfTestPeek::enq_request_pending<Core>(stalled))
      << "helper must have claimed and completed the stalled request";
}

TEST(WfQueueHelp, StalledEnqueueSurvivesManyInterveningOps) {
  Core q;
  auto* stalled = q.register_handle();
  auto* helper = q.register_handle();
  (void)WfTestPeek::publish_enq_request(q, stalled, 4242);

  // The helper performs its own traffic; each dequeue that marks a cell
  // unusable offers help to its enqueue peer (Invariant 2), so the stalled
  // request completes and its value is eventually dequeued.
  bool saw_value = false;
  for (int i = 0; i < 64 && !saw_value; ++i) {
    uint64_t v = q.dequeue(helper);
    if (v == 4242u) saw_value = true;
  }
  EXPECT_TRUE(saw_value);
  EXPECT_FALSE(WfTestPeek::enq_request_pending<Core>(stalled));
}

TEST(WfQueueHelp, SuccessfulDequeuerHelpsStalledDequeueRequest) {
  // Deterministic reconstruction of a slow-path dequeue:
  //
  //  * A publishes a slow-path enqueue request (an in-flight enqueue that
  //    has raised T but not yet deposited a value) and stalls;
  //  * B's fast-path dequeue genuinely fails: its cell is sealed with no
  //    value while T is ahead, so help_enq returns ⊤; B publishes its
  //    dequeue request and stalls;
  //  * C dequeues a value successfully and must therefore help its dequeue
  //    peer B (Listing 4 line 135), completing B's request.
  Core q;
  auto* a = q.register_handle();       // ring: {a}
  auto* b = q.register_handle();       // ring: a -> b -> a
  auto* c = q.register_handle();       // ring: a -> c -> b -> a
  ASSERT_EQ(c->deq.peer, b);
  // Point B's enqueue-helper scan at C (who has no pending request) so B's
  // dequeue seals its cell instead of completing A's enqueue; peers rotate
  // arbitrarily in real executions, this just fixes the schedule.
  b->enq.peer = c;

  (void)WfTestPeek::publish_enq_request(q, a, 777);  // T: 0 -> 1

  uint64_t cid = ~uint64_t{0};
  uint64_t r = WfTestPeek::deq_fast_once(q, b, cid);
  ASSERT_EQ(r, Core::kTop) << "fast path must fail: cell sealed, T ahead";
  ASSERT_EQ(cid, 0u);
  WfTestPeek::publish_deq_request(q, b, cid);
  ASSERT_TRUE(WfTestPeek::deq_request_pending<Core>(b));

  q.enqueue(c, 11);           // lands in cell 1 (cell 0 is sealed)
  uint64_t got = q.dequeue(c);  // takes 11, then helps peer B
  EXPECT_EQ(got, 11u);
  EXPECT_FALSE(WfTestPeek::deq_request_pending<Core>(b))
      << "C's successful dequeue must have completed B's request";

  // B resumes deq_slow past help_deq; its request resolved (with a value
  // or a legal EMPTY — A's enqueue is still unlinearized).
  uint64_t resumed = WfTestPeek::finish_deq_request(q, b);
  EXPECT_TRUE(resumed == Core::kEmpty || resumed == 777u);

  // A's stalled enqueue must not be lost: draining eventually yields 777.
  bool saw = false;
  for (int i = 0; i < 128 && !saw; ++i) {
    uint64_t v = q.dequeue(c);
    if (v == 777u) saw = true;
  }
  EXPECT_TRUE(saw) << "stalled enqueue's value was lost";
  EXPECT_FALSE(WfTestPeek::enq_request_pending<Core>(a));
}

TEST(WfQueueHelp, HelpedRequestsAreNotDoubleConsumed) {
  // After a helper completes a stalled enqueue, draining the queue must
  // yield the value exactly once.
  Core q;
  auto* stalled = q.register_handle();
  auto* helper = q.register_handle();
  (void)WfTestPeek::publish_enq_request(q, stalled, 9001);
  q.enqueue(helper, 1);
  q.enqueue(helper, 2);

  int seen_9001 = 0, seen_other = 0;
  for (;;) {
    uint64_t v = q.dequeue(helper);
    if (v == Core::kEmpty) break;
    if (v == 9001u) {
      ++seen_9001;
    } else {
      ++seen_other;
    }
  }
  EXPECT_EQ(seen_9001, 1);
  EXPECT_EQ(seen_other, 2);
}

}  // namespace
}  // namespace wfq
