// Tests for the sense-reversing spin barrier.
#include "harness/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace wfq::bench {
namespace {

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, NoThreadPassesEarly) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 200;
  SpinBarrier barrier(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        arrived.fetch_add(1);
        barrier.arrive_and_wait();
        // Everyone must have arrived for this round by now.
        if (arrived.load() < (round + 1) * int(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();  // second barrier keeps rounds separated
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(arrived.load(), kRounds * int(kThreads));
}

TEST(SpinBarrier, ReusableAcrossPhases) {
  SpinBarrier b(2);
  std::atomic<int> phase{0};
  std::thread other([&] {
    for (int i = 0; i < 1000; ++i) {
      b.arrive_and_wait();
      phase.fetch_add(1);
      b.arrive_and_wait();
    }
  });
  for (int i = 0; i < 1000; ++i) {
    b.arrive_and_wait();
    b.arrive_and_wait();
    EXPECT_GE(phase.load(), i + 1);
  }
  other.join();
}

TEST(SpinBarrier, ReportsParties) {
  SpinBarrier b(5);
  EXPECT_EQ(b.parties(), 5u);
}

}  // namespace
}  // namespace wfq::bench
