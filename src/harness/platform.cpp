#include "harness/platform.hpp"

#include <sys/utsname.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "common/atomics.hpp"
#include "common/cpu.hpp"

namespace wfq::bench {

namespace {

std::string trim(const std::string& s) {
  const char* ws = " \t\r\n";
  auto b = s.find_first_not_of(ws);
  if (b == std::string::npos) return "";
  auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

}  // namespace

PlatformInfo detect_platform() {
  PlatformInfo p;
  p.threads = hardware_threads();

  utsname un{};
  if (uname(&un) == 0) p.arch = un.machine;

#if defined(__x86_64__) || defined(__i386__) || \
    (defined(__aarch64__) && defined(__ARM_FEATURE_ATOMICS))
  p.native_faa = true;  // lock xadd / LSE LDADD
#else
  p.native_faa = false;  // LL/SC emulation, like the paper's Power7
#endif
  p.native_cas2 = kHaveNativeCas2;

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::set<std::string> packages;
  std::set<std::pair<std::string, std::string>> cores;
  std::string line, cur_pkg = "0", cur_core = "0";
  unsigned logical = 0;
  while (std::getline(cpuinfo, line)) {
    auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = trim(line.substr(0, colon));
    std::string val = trim(line.substr(colon + 1));
    if (key == "processor") {
      ++logical;
    } else if (key == "model name" && p.model.empty()) {
      p.model = val;
      // Nominal clock often appears as "... @ 2.10GHz".
      auto at = val.rfind('@');
      if (at != std::string::npos) {
        std::istringstream in(val.substr(at + 1));
        in >> p.clock_ghz;
      }
    } else if (key == "physical id") {
      cur_pkg = val;
      packages.insert(val);
    } else if (key == "core id") {
      cur_core = val;
      cores.insert({cur_pkg, cur_core});
    } else if (key == "cpu MHz" && p.clock_ghz == 0.0) {
      std::istringstream in(val);
      double mhz = 0;
      in >> mhz;
      p.clock_ghz = mhz / 1000.0;
    }
  }
  if (logical > 0) p.threads = logical;
  p.sockets = packages.empty() ? 1 : static_cast<unsigned>(packages.size());
  p.cores = cores.empty() ? p.threads : static_cast<unsigned>(cores.size());
  if (p.model.empty()) p.model = "unknown (" + p.arch + ")";
  return p;
}

std::string format_platform_table(const PlatformInfo& p) {
  std::ostringstream out;
  out << "Table 1 analogue: experimental platform\n";
  out << "  Processor Model : " << p.model << "\n";
  out << "  Clock Speed     : " << p.clock_ghz << " GHz\n";
  out << "  # of Processors : " << p.sockets << "\n";
  out << "  # of Cores      : " << p.cores << "\n";
  out << "  # of Threads    : " << p.threads << "\n";
  out << "  Architecture    : " << p.arch << "\n";
  out << "  Native FAA      : " << (p.native_faa ? "yes" : "no (LL/SC)") << "\n";
  out << "  Native CAS2     : " << (p.native_cas2 ? "yes" : "no (emulated)")
      << "\n";
  return out.str();
}

}  // namespace wfq::bench
