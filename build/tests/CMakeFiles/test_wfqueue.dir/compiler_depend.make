# Empty compiler generated dependencies file for test_wfqueue.
# This may be replaced when dependencies are built.
