// The sharded oracle (src/checker/sharded_checker.hpp): conservation, lane
// integrity, per-lane linearizability with globally-projected EMPTYs — both
// on hand-built histories with known verdicts and on real ShardedQueue runs
// recorded through dequeue_traced.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "checker/history.hpp"
#include "checker/sharded_checker.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"

namespace wfq::lin {
namespace {

LaneOp enq(uint64_t v, std::size_t lane, uint64_t t0, uint64_t t1,
           unsigned thread = 0) {
  return LaneOp{Op{OpKind::kEnqueue, thread, v, t0, t1}, lane};
}
LaneOp deq(uint64_t v, std::size_t lane, uint64_t t0, uint64_t t1,
           unsigned thread = 0) {
  return LaneOp{Op{OpKind::kDequeue, thread, v, t0, t1}, lane};
}
LaneOp empty(uint64_t t0, uint64_t t1, unsigned thread = 0) {
  return LaneOp{Op{OpKind::kDequeueEmpty, thread, 0, t0, t1}, 0};
}

TEST(ShardedChecker, AcceptsInterleavedLanes) {
  // Globally out of FIFO order (2 dequeued before 1) but per-lane FIFO:
  // exactly the relaxed contract.
  std::vector<LaneOp> h{
      enq(1, 0, 0, 1), enq(2, 1, 2, 3),
      deq(2, 1, 4, 5), deq(1, 0, 6, 7),
  };
  EXPECT_TRUE(check_sharded_history(h, 2).linearizable);
  EXPECT_TRUE(check_sharded_history_drained(h, 2).linearizable);
}

TEST(ShardedChecker, RejectsDuplicateDequeue) {
  std::vector<LaneOp> h{
      enq(1, 0, 0, 1), deq(1, 0, 2, 3), deq(1, 0, 4, 5),
  };
  CheckResult r = check_sharded_history(h, 1);
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.violation.find("dequeued twice"), std::string::npos);
}

TEST(ShardedChecker, RejectsUnknownValue) {
  std::vector<LaneOp> h{deq(99, 0, 0, 1)};
  EXPECT_FALSE(check_sharded_history(h, 1).linearizable);
}

TEST(ShardedChecker, RejectsCrossLaneValue) {
  // Enqueued on lane 0, claimed from lane 1: stealing moves consumers,
  // never values.
  std::vector<LaneOp> h{enq(1, 0, 0, 1), deq(1, 1, 2, 3)};
  CheckResult r = check_sharded_history(h, 2);
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.violation.find("lane"), std::string::npos);
}

TEST(ShardedChecker, RejectsPerLaneFifoViolation) {
  // Same lane, strictly ordered enqueues, dequeued in reverse.
  std::vector<LaneOp> h{
      enq(1, 0, 0, 1), enq(2, 0, 2, 3),
      deq(2, 0, 4, 5), deq(1, 0, 6, 7),
  };
  EXPECT_FALSE(check_sharded_history(h, 1).linearizable);
  // The identical shape across two lanes is legal.
  std::vector<LaneOp> ok{
      enq(1, 0, 0, 1), enq(2, 1, 2, 3),
      deq(2, 1, 4, 5), deq(1, 0, 6, 7),
  };
  EXPECT_TRUE(check_sharded_history(ok, 2).linearizable);
}

TEST(ShardedChecker, EmptyProjectsIntoEveryLane) {
  // The EMPTY falls strictly between enq(1).respond and deq(1).invoke on
  // lane 1: lane 1 provably held a value for the whole EMPTY interval, so
  // a full-sweep dequeue could not have observed it empty. The projection
  // must flag it even though lane 0's history alone is fine.
  std::vector<LaneOp> h{
      enq(1, 1, 0, 1), empty(2, 3), deq(1, 1, 4, 5),
  };
  CheckResult r = check_sharded_history(h, 2);
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.violation.find("lane 1"), std::string::npos);
  // Same ops, but the EMPTY overlaps enq(1): a linearization point before
  // the enqueue's exists, so this is legal.
  std::vector<LaneOp> ok{
      enq(1, 1, 0, 3), empty(2, 4), deq(1, 1, 5, 6),
  };
  EXPECT_TRUE(check_sharded_history(ok, 2).linearizable);
}

TEST(ShardedChecker, RejectsLaneTagOutOfRange) {
  std::vector<LaneOp> h{enq(1, 5, 0, 1)};
  EXPECT_FALSE(check_sharded_history(h, 2).linearizable);
}

TEST(ShardedChecker, DrainedVariantRejectsLoss) {
  std::vector<LaneOp> h{enq(1, 0, 0, 1), enq(2, 0, 2, 3), deq(1, 0, 4, 5)};
  EXPECT_TRUE(check_sharded_history(h, 1).linearizable);
  CheckResult r = check_sharded_history_drained(h, 1);
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.violation.find("never dequeued"), std::string::npos);
}

// ---- Live differential: a real ShardedQueue run must pass the oracle ----

TEST(ShardedChecker, LiveShardedRunPasses) {
  constexpr std::size_t kShards = 4;
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOpsPerThread = 1500;
  ShardedQueue<WFQueue<uint64_t>> q(ShardConfig{kShards}, WfConfig{});
  HistoryRecorder rec;
  std::vector<HistoryRecorder::ThreadLog*> logs;
  for (unsigned t = 0; t < kThreads; ++t) logs.push_back(rec.make_log(t));

  std::mutex mu;
  std::vector<std::pair<uint64_t, std::size_t>> lane_tags;  // value -> lane

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      std::vector<std::pair<uint64_t, std::size_t>> mine;
      for (uint64_t i = 1; i <= kOpsPerThread; ++i) {
        const uint64_t v = (uint64_t(t + 1) << 32) | i;
        uint64_t ts = logs[t]->invoke();
        q.enqueue(h, v);
        logs[t]->complete(OpKind::kEnqueue, v, ts);
        mine.emplace_back(v, h.home());
        if (i % 2 == 0) {
          uint64_t dts = logs[t]->invoke();
          if (auto got = q.dequeue_traced(h)) {
            logs[t]->complete(OpKind::kDequeue, got->first, dts);
            mine.emplace_back(got->first | (uint64_t(1) << 63),
                              got->second);
          } else {
            logs[t]->complete(OpKind::kDequeueEmpty, 0, dts);
          }
        }
      }
      std::lock_guard<std::mutex> g(mu);
      for (auto& p : mine) lane_tags.push_back(p);
    });
  }
  for (auto& w : workers) w.join();

  // Drain the rest single-threaded, recording lanes.
  auto h = q.get_handle();
  auto* dlog = rec.make_log(kThreads);
  for (;;) {
    uint64_t ts = dlog->invoke();
    auto got = q.dequeue_traced(h);
    if (!got) {
      dlog->complete(OpKind::kDequeueEmpty, 0, ts);
      break;
    }
    dlog->complete(OpKind::kDequeue, got->first, ts);
    lane_tags.emplace_back(got->first | (uint64_t(1) << 63), got->second);
  }

  // Assemble LaneOps: lane of an enqueue/dequeue comes from the tag map.
  std::unordered_map<uint64_t, std::size_t> enq_lane, deq_lane;
  for (auto& [key, lane] : lane_tags) {
    if (key >> 63) {
      deq_lane[key & ~(uint64_t(1) << 63)] = lane;
    } else {
      enq_lane[key] = lane;
    }
  }
  std::vector<LaneOp> history;
  for (const Op& op : rec.collect()) {
    LaneOp lo{op, 0};
    if (op.kind == OpKind::kEnqueue) lo.lane = enq_lane.at(op.value);
    if (op.kind == OpKind::kDequeue) lo.lane = deq_lane.at(op.value);
    history.push_back(lo);
  }
  CheckResult r = check_sharded_history_drained(history, kShards);
  EXPECT_TRUE(r.linearizable) << r.violation;
}

}  // namespace
}  // namespace wfq::lin
