// Tail-latency comparison across queues (the "predictable performance"
// motivation of the paper's abstract/§1). Blocking designs (mutex,
// combining) develop heavy tails once threads outnumber cores — an op can
// stall behind a descheduled lock holder/combiner for a full timeslice —
// while the wait-free queue's tail stays within helping distance.
#include <iostream>

#include "bench_common.hpp"
#include "harness/latency.hpp"

namespace wfq::bench {
namespace {

template <class Queue, class... Args>
void row(Table& table, const std::string& name, unsigned threads,
         uint64_t pairs, Args&&... args) {
  Queue q(std::forward<Args>(args)...);
  LatencyResult r = measure_op_latency(q, threads, pairs);
  table.add_row({name, std::to_string(r.p50), std::to_string(r.p90),
                 std::to_string(r.p99), std::to_string(r.p999),
                 std::to_string(r.max), std::to_string(r.count)});
  json_sink().record("latency", name, threads,
                     double(r.count) / 1e6,  // informational: sample count
                     double(r.p50), double(r.p99), double(r.p999));
  std::cerr << "  [latency] " << name << " p99=" << r.p99
            << "ns max=" << r.max << "ns\n";
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  unsigned hw = wfq::hardware_threads();
  unsigned threads = std::max(4u, 2 * hw);  // oversubscribed: tails appear
  if (std::getenv("WFQ_THREADS")) threads = thread_counts_from_env().back();
  uint64_t pairs = ops_from_env(50'000) / threads;

  std::cout << "== Per-operation latency (ns), pairs workload, threads="
            << threads << " (oversubscribed on this host) ==\n\n";
  Table table({"queue", "p50", "p90", "p99", "p99.9", "max", "samples"});
  WfConfig wf10;
  wf10.patience = 10;
  WfConfig wf0;
  wf0.patience = 0;
  row<WFQueue<uint64_t>>(table, "WF-10", threads, pairs, wf10);
  row<WFQueue<uint64_t>>(table, "WF-0", threads, pairs, wf0);
  row<baselines::LCRQ<uint64_t>>(table, "LCRQ", threads, pairs);
  row<baselines::MSQueue<uint64_t>>(table, "MSQUEUE", threads, pairs);
  row<baselines::CCQueue<uint64_t>>(table, "CCQUEUE", threads, pairs);
  row<baselines::MutexQueue<uint64_t>>(table, "MUTEX", threads, pairs);
  row<baselines::FAAQueue<uint64_t>>(table, "F&A", threads, pairs);
  table.print();
  return 0;
}
