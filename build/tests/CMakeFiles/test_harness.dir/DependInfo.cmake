
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/barrier_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/barrier_test.cpp.o.d"
  "/root/repo/tests/harness/chart_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/chart_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/chart_test.cpp.o.d"
  "/root/repo/tests/harness/latency_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/latency_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/latency_test.cpp.o.d"
  "/root/repo/tests/harness/methodology_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/methodology_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/methodology_test.cpp.o.d"
  "/root/repo/tests/harness/platform_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/platform_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/platform_test.cpp.o.d"
  "/root/repo/tests/harness/stats_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/stats_test.cpp.o.d"
  "/root/repo/tests/harness/table_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/table_test.cpp.o.d"
  "/root/repo/tests/harness/workload_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
