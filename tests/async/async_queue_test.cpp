// Tests for the coroutine face (src/async/): pop_async / pop_async_for /
// push_async over the generalized EventCount waiter slot.
//
// The suite runs under TSan in CI (tests/CMakeLists.txt LABEL tsan): the
// round protocol's interesting properties are all concurrency properties —
// claim-vs-cancel on the waiter node, resume-vs-frame-destruction at round
// scope exit, and the pass-on rule that keeps mixed thread/coroutine
// waiter populations starvation-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "async/async_queue.hpp"
#include "checker/history.hpp"
#include "checker/queue_checker.hpp"

namespace {

using wfq::async::AsyncScqQueue;
using wfq::async::AsyncShardedQueue;
using wfq::async::AsyncWFQueue;
using wfq::async::ManualExecutor;
using wfq::async::PopResult;
using wfq::async::sync_wait;
using wfq::async::Task;
using wfq::sync::PopStatus;
using wfq::sync::PushStatus;

// ---------------------------------------------------------------------------
// Driver coroutines. Free functions taking references: a capturing lambda
// coroutine would dangle once the lambda temporary dies, so the test suite
// never uses one.
// ---------------------------------------------------------------------------

template <class QA>
Task<void> pop_one_into(QA& q, typename QA::Handle& h,
                        std::atomic<int>& out) {
  auto r = co_await q.pop_async(h);
  out.store(r ? *r.value : -2, std::memory_order_release);
}

template <class QA>
Task<void> drain_all(QA& q, typename QA::Handle& h, std::vector<int>& out) {
  for (;;) {
    auto r = co_await q.pop_async(h);
    if (!r) co_return;  // kClosed: sealed AND drained
    out.push_back(*r.value);
  }
}

// ---------------------------------------------------------------------------
// Fast path and plumbing
// ---------------------------------------------------------------------------

TEST(AsyncQueue, PopAsyncDeliversAnAlreadyPresentValueWithoutSuspending) {
  AsyncWFQueue<int> q;
  auto h = q.get_handle();
  ASSERT_TRUE(q.push(h, 41));

  auto r = sync_wait(q.pop_async(h));
  ASSERT_EQ(r.status, PopStatus::kOk);
  EXPECT_EQ(*r.value, 41);
  EXPECT_TRUE(static_cast<bool>(r));

  auto as = q.async_stats();
  EXPECT_EQ(as.pop_suspends, 0u);
  EXPECT_EQ(as.pop_wakes, 0u);
}

// The acceptance-criterion assertion: an enqueue with no registered
// awaiters executes no atomic RMW beyond the unwrapped enqueue's own. The
// EventCount epoch word and the waiters word are the ONLY RMW targets the
// blocking/async layer adds, and notify_calls counts every entry into the
// notify slow path — so "all three unchanged across 1000 pushes" pins the
// producer fast path to a single seq_cst load (ALGORITHM.md §10/§17).
TEST(AsyncQueue, EnqueueWithNoRegisteredAwaitersExecutesNoExtraRmw) {
  AsyncWFQueue<int> q;
  auto h = q.get_handle();

  auto& ec = q.blocking().pop_event();
  const std::uint64_t epoch_before = ec.epoch_snapshot();
  ASSERT_EQ(q.waiters(), 0u);

  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.push(h, i));

  EXPECT_EQ(q.blocking().stats().notify_calls.load(), 0u);
  EXPECT_EQ(ec.epoch_snapshot(), epoch_before);
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(AsyncQueue, PopAsyncSuspendsUntilAProducerPushes) {
  AsyncWFQueue<int> q;
  auto hc = q.get_handle();

  std::thread consumer([&] {
    auto r = sync_wait(q.pop_async(hc));
    ASSERT_EQ(r.status, PopStatus::kOk);
    EXPECT_EQ(*r.value, 77);
  });

  while (q.waiters() == 0) std::this_thread::yield();
  auto hp = q.get_handle();
  ASSERT_TRUE(q.push(hp, 77));
  consumer.join();

  EXPECT_EQ(q.waiters(), 0u);
  auto as = q.async_stats();
  EXPECT_EQ(as.pop_suspends, as.pop_wakes);
  EXPECT_LE(as.pop_suspends, 1u);
}

TEST(AsyncQueue, CoAwaitAcrossCloseSeesClosedNotHang) {
  AsyncWFQueue<int> q;
  auto hc = q.get_handle();

  std::thread consumer([&] {
    auto r = sync_wait(q.pop_async(hc));
    EXPECT_EQ(r.status, PopStatus::kClosed);
    EXPECT_FALSE(r.value.has_value());
  });

  while (q.waiters() == 0) std::this_thread::yield();
  q.close();
  consumer.join();
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(AsyncQueue, CloseDeliversRemainingValuesBeforeClosed) {
  AsyncWFQueue<int> q;
  auto h = q.get_handle();
  ASSERT_TRUE(q.push(h, 1));
  ASSERT_TRUE(q.push(h, 2));
  q.close();

  EXPECT_EQ(*sync_wait(q.pop_async(h)).value, 1);
  EXPECT_EQ(*sync_wait(q.pop_async(h)).value, 2);
  EXPECT_EQ(sync_wait(q.pop_async(h)).status, PopStatus::kClosed);
}

// ---------------------------------------------------------------------------
// Executor seam
// ---------------------------------------------------------------------------

TEST(AsyncQueue, ManualExecutorDefersResumeToDrain) {
  AsyncWFQueue<int> q;
  ManualExecutor ex;
  q.set_executor(&ex);
  auto hc = q.get_handle();
  std::atomic<int> out{-1};

  auto driver = pop_one_into(q, hc, out);
  driver.start();  // runs to the park; registration is synchronous
  ASSERT_EQ(q.waiters(), 1u);

  auto hp = q.get_handle();
  ASSERT_TRUE(q.push(hp, 9));
  // The claim ran on this thread (inline notify) but only POSTED the
  // handle; nothing resumes until the executor drains.
  EXPECT_EQ(out.load(std::memory_order_acquire), -1);
  EXPECT_EQ(ex.pending(), 1u);

  EXPECT_EQ(ex.drain(), 1u);
  EXPECT_EQ(out.load(std::memory_order_acquire), 9);
  EXPECT_TRUE(driver.done());
}

// ---------------------------------------------------------------------------
// Destruction safety
// ---------------------------------------------------------------------------

// Destroying a Task suspended inside a registered round must deregister the
// waiter (the async layer's WaitGuard duty) — and must leave the producer
// fast path cold: the next push sees waiters()==0 and never calls notify.
TEST(AsyncQueue, DestroyingSuspendedPopTaskDeregistersItsWaiter) {
  AsyncWFQueue<int> q;
  auto h = q.get_handle();
  {
    auto t = q.pop_async(h);
    t.start();  // parks: queue is empty and open
    EXPECT_EQ(q.waiters(), 1u);
  }  // Task dtor destroys the frame; the round dtor cancels the slot
  EXPECT_EQ(q.waiters(), 0u);

  const std::uint64_t notifies = q.blocking().stats().notify_calls.load();
  ASSERT_TRUE(q.push(h, 5));
  EXPECT_EQ(q.blocking().stats().notify_calls.load(), notifies);
  EXPECT_EQ(q.try_pop(h).value_or(-1), 5);
}

// The resume-vs-destruction race, in its supported form: every co_await
// q.pop_async(h) materializes an inner Task that is destroyed at the end of
// the full-expression — microseconds after a claim on another thread
// resumed it, and possibly WHILE that claim (or a passed-on one) is still
// between its phase CAS and its kAwDone store. Four producers and four
// coroutine consumers looping for thousands of values hammer exactly that
// window; TSan turns any misordered frame access into a failure.
TEST(AsyncQueue, ResumeVsCoAwaitDestructionRaceUnderMpmcLoad) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 3000;

  AsyncWFQueue<int> q;
  std::vector<std::vector<int>> got(kConsumers);
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);

  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &got, c] {
      auto h = q.get_handle();
      sync_wait(drain_all(q, h, got[c]));
    });
  }
  std::atomic<int> live_producers{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &live_producers, p] {
      auto h = q.get_handle();
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(h, p * kPerProducer + i));
      }
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }
  for (auto& t : threads) t.join();

  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::size_t total = 0;
  for (const auto& v : got) {
    for (int x : v) {
      ASSERT_GE(x, 0);
      ASSERT_LT(x, kProducers * kPerProducer);
      ASSERT_FALSE(seen[static_cast<std::size_t>(x)])
          << "value " << x << " delivered twice";
      seen[static_cast<std::size_t>(x)] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.waiters(), 0u);
}

// ---------------------------------------------------------------------------
// Timed pops
// ---------------------------------------------------------------------------

TEST(AsyncQueue, PopAsyncForTimesOutOnAQuietQueue) {
  AsyncWFQueue<int> q;
  auto h = q.get_handle();
  const auto timeout = std::chrono::milliseconds(30);
  const auto t0 = wfq::sync::WaitClock::now();

  auto r = sync_wait(q.pop_async_for(h, timeout));
  EXPECT_EQ(r.status, PopStatus::kTimeout);
  EXPECT_GE(wfq::sync::WaitClock::now() - t0, timeout);
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(AsyncQueue, PopAsyncForDeliversAValueArrivingBeforeTheDeadline) {
  AsyncWFQueue<int> q;
  auto hc = q.get_handle();

  std::thread consumer([&] {
    auto r = sync_wait(q.pop_async_for(hc, std::chrono::seconds(10)));
    ASSERT_EQ(r.status, PopStatus::kOk);
    EXPECT_EQ(*r.value, 13);
  });
  while (q.waiters() == 0) std::this_thread::yield();
  auto hp = q.get_handle();
  ASSERT_TRUE(q.push(hp, 13));
  consumer.join();
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(AsyncQueue, PopAsyncForSeesCloseBeforeTheDeadline) {
  AsyncWFQueue<int> q;
  auto hc = q.get_handle();

  std::thread consumer([&] {
    auto r = sync_wait(q.pop_async_for(hc, std::chrono::seconds(10)));
    EXPECT_EQ(r.status, PopStatus::kClosed);
  });
  while (q.waiters() == 0) std::this_thread::yield();
  q.close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// push_async (bounded backends only)
// ---------------------------------------------------------------------------

TEST(AsyncQueue, PushAsyncParksOnAFullRingAndResumesWhenSpaceFrees) {
  AsyncScqQueue<int> q(8);
  auto hp = q.get_handle();

  int filled = 0;
  while (q.push_status(hp, filled) == PushStatus::kOk) ++filled;
  ASSERT_GT(filled, 0);

  std::thread pusher([&] {
    auto h = q.get_handle();
    EXPECT_EQ(sync_wait(q.push_async(h, 1000)), PushStatus::kOk);
  });

  while (q.blocking().space_waiters() == 0) std::this_thread::yield();
  auto hc = q.get_handle();
  ASSERT_TRUE(q.try_pop(hc).has_value());
  pusher.join();

  // Everything that went in comes out exactly once (the parked value too).
  std::vector<int> out;
  while (auto v = q.try_pop(hc)) out.push_back(*v);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(filled));
  EXPECT_EQ(out.back(), 1000);
  EXPECT_GE(q.async_stats().push_suspends, 1u);
}

// ---------------------------------------------------------------------------
// Sharded backend under coroutines
// ---------------------------------------------------------------------------

TEST(AsyncQueue, ShardedBackendDeliversUnderAsyncConsumers) {
  constexpr int kValues = 2000;
  AsyncShardedQueue<int> q;
  std::vector<int> got;

  std::thread consumer([&] {
    auto h = q.get_handle();
    sync_wait(drain_all(q, h, got));
  });
  auto hp = q.get_handle();
  for (int i = 0; i < kValues; ++i) ASSERT_TRUE(q.push(hp, i));
  q.close();
  consumer.join();

  std::vector<bool> seen(kValues, false);
  for (int x : got) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(x)]);
    seen[static_cast<std::size_t>(x)] = true;
  }
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kValues));
}

// ---------------------------------------------------------------------------
// History-checker enrollment: the async-wrapped queue is subject to the
// same linearizability differential as the blocking surface. Coroutine
// consumers record their dequeues through the same HistoryRecorder the
// thread-based suites use; check_queue_history verifies FIFO + real-time
// order over the merged history.
// ---------------------------------------------------------------------------

Task<void> recorded_drain(AsyncWFQueue<std::uint64_t>& q,
                          AsyncWFQueue<std::uint64_t>::Handle& h,
                          wfq::lin::HistoryRecorder::ThreadLog* log) {
  for (;;) {
    const std::uint64_t ts = log->invoke();
    auto r = co_await q.pop_async(h);
    if (!r) {
      // kClosed: the queue was observably empty (sealed AND drained) at
      // some point inside the call — record it as an EMPTY observation.
      log->complete(wfq::lin::OpKind::kDequeueEmpty, 0, ts);
      co_return;
    }
    log->complete(wfq::lin::OpKind::kDequeue, *r.value, ts);
  }
}

TEST(AsyncQueue, HistoryCheckerAcceptsAsyncConsumedHistories) {
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 2000;

  AsyncWFQueue<std::uint64_t> q;
  wfq::lin::HistoryRecorder rec;
  std::vector<wfq::lin::HistoryRecorder::ThreadLog*> plogs, clogs;
  for (unsigned i = 0; i < kProducers; ++i) plogs.push_back(rec.make_log(i));
  for (unsigned i = 0; i < kConsumers; ++i) {
    clogs.push_back(rec.make_log(kProducers + i));
  }

  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, log = clogs[c]] {
      auto h = q.get_handle();
      sync_wait(recorded_drain(q, h, log));
    });
  }
  std::atomic<unsigned> live{kProducers};
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &live, log = plogs[p], p] {
      auto h = q.get_handle();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = p * kPerProducer + i + 1;  // distinct, nonzero
        const std::uint64_t ts = log->invoke();
        ASSERT_TRUE(q.push(h, v));
        log->complete(wfq::lin::OpKind::kEnqueue, v, ts);
      }
      if (live.fetch_sub(1) == 1) q.close();
    });
  }
  for (auto& t : threads) t.join();

  auto result = wfq::lin::check_queue_history(rec.collect());
  EXPECT_TRUE(result) << result.violation;
}

}  // namespace
