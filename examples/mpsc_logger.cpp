// MPSC logger example: many producer threads emit structured log records
// through the wait-free queue to one writer thread — the classic
// low-latency-logging architecture where the emitting threads must never
// block (an emitter stalled inside a logging call would violate its own
// latency budget; wait-free enqueue caps the cost).
//
//   $ ./mpsc_logger [records] [producers]
//
// Demonstrates: boxed struct payloads, an idle writer that parks instead of
// spin-polling (blocking layer, src/sync/), and shutdown via the queue's
// own close()/drain protocol — the old per-producer shutdown-sentinel
// records and the writer's live-producer count are gone; close() after the
// producers join is the complete, linearizable end-of-stream signal.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "sync/blocking_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

enum class Severity : uint8_t { kDebug, kInfo, kWarn, kError };

struct LogRecord {
  Severity severity = Severity::kInfo;
  uint32_t producer = 0;
  uint64_t seq = 0;
  Clock::time_point emitted{};
  std::string message;
};

using LogQueue = wfq::sync::BlockingWFQueue<LogRecord>;

class Logger {
 public:
  Logger() : writer_([this] { writer_loop(); }) {}

  ~Logger() { shutdown(); }

  /// End of stream: fails further log() calls, wakes the (possibly parked)
  /// writer, and joins it once every record in flight has been written.
  void shutdown() {
    queue_.close();
    if (writer_.joinable()) writer_.join();
  }

  /// Wait-free from the caller's perspective (one boxed enqueue; no fence
  /// and no syscall unless the writer is actually parked).
  void log(LogQueue::Handle& h, LogRecord rec) {
    rec.emitted = Clock::now();
    queue_.push(h, std::move(rec));
  }

  LogQueue& queue() { return queue_; }

  uint64_t written() const { return written_.load(); }
  uint64_t dropped_debug() const { return dropped_debug_.load(); }
  double max_delivery_ms() const {
    return double(max_delivery_ns_.load()) / 1e6;
  }

 private:
  void writer_loop() {
    auto h = queue_.get_handle();
    uint64_t max_ns = 0;
    LogRecord rec;
    // kOk until the queue is closed AND drained; the writer never misses
    // a record and never busy-waits for one.
    while (queue_.pop_wait(h, rec) == wfq::sync::PopStatus::kOk) {
      auto ns = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - rec.emitted)
                             .count());
      if (ns > max_ns) max_ns = ns;
      if (rec.severity == Severity::kDebug) {
        dropped_debug_.fetch_add(1);  // "sink" filters debug noise
      } else {
        written_.fetch_add(1);
        // A real sink would write to disk; this one just accounts bytes.
        bytes_ += rec.message.size();
      }
    }
    max_delivery_ns_.store(max_ns);
  }

  LogQueue queue_;
  std::atomic<uint64_t> written_{0}, dropped_debug_{0};
  std::atomic<uint64_t> max_delivery_ns_{0};
  uint64_t bytes_ = 0;
  std::thread writer_;
};

}  // namespace

int main(int argc, char** argv) {
  const uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const unsigned producers =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 3;

  auto t0 = Clock::now();
  Logger logger;
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      auto h = logger.queue().get_handle();
      wfq::Xorshift128Plus rng(p + 7);
      const uint64_t mine =
          records / producers + (p == 0 ? records % producers : 0);
      for (uint64_t i = 0; i < mine; ++i) {
        LogRecord rec;
        rec.producer = p;
        rec.seq = i;
        rec.severity = static_cast<Severity>(rng.next_below(4));
        rec.message = "event " + std::to_string(i) + " from producer " +
                      std::to_string(p);
        logger.log(h, std::move(rec));
      }
    });
  }
  for (auto& t : ts) t.join();
  logger.shutdown();  // close + drain: every emitted record reaches the sink
  uint64_t written = logger.written();
  uint64_t dropped = logger.dropped_debug();
  double max_ms = logger.max_delivery_ms();
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  std::printf("logger: %llu records written, %llu debug-filtered, in %.3fs "
              "(%.2f Mrec/s)\n",
              (unsigned long long)written, (unsigned long long)dropped, secs,
              double(written + dropped) / secs / 1e6);
  std::printf("worst emit-to-sink delivery: %.3f ms\n", max_ms);
  const bool ok = written + dropped == records;
  std::printf("conservation check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
