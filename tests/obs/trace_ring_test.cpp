// Unit tests for the slow-path trace ring: exact per-type totals that
// survive wrap-around (the property the soak's counter-agreement audit
// leans on), retained-window semantics, multi-writer emission, and the
// snapshot's (ts, seq) event ordering.
#include "obs/trace_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace wfq::obs {
namespace {

TEST(TraceRing, RetainsEverythingBeforeWrap) {
  TraceRing<8> r;
  for (uint64_t i = 0; i < 5; ++i) {
    r.emit(TraceEvent::kEnqSlow, /*ts=*/100 + i, /*tid=*/7, /*a=*/i);
  }
  EXPECT_EQ(r.emitted(), 5u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.total(TraceEvent::kEnqSlow), 5u);
  uint64_t expect = 0;
  r.for_each([&](const TraceRec& rec) {
    EXPECT_EQ(rec.type, uint32_t(TraceEvent::kEnqSlow));
    EXPECT_EQ(rec.ts_ns, 100 + expect);
    EXPECT_EQ(rec.seq, expect);
    EXPECT_EQ(rec.a, expect);
    EXPECT_EQ(rec.tid, 7u);
    ++expect;
  });
  EXPECT_EQ(expect, 5u);
}

TEST(TraceRing, TotalsStayExactUnderWrap) {
  constexpr uint64_t kEmit = 100;
  TraceRing<8> r;
  for (uint64_t i = 0; i < kEmit; ++i) {
    r.emit(i % 2 == 0 ? TraceEvent::kEnqSlow : TraceEvent::kDeqSlow, i, 0);
  }
  // Records wrap; totals never do.
  EXPECT_EQ(r.total(TraceEvent::kEnqSlow), kEmit / 2);
  EXPECT_EQ(r.total(TraceEvent::kDeqSlow), kEmit / 2);
  EXPECT_EQ(r.emitted(), kEmit);
  EXPECT_EQ(r.dropped(), kEmit - 8);
  EXPECT_EQ(r.size(), 8u);
  // The retained window is the newest Cap records, oldest first.
  uint64_t expect = kEmit - 8;
  r.for_each([&](const TraceRec& rec) {
    EXPECT_EQ(rec.seq, expect);
    EXPECT_EQ(rec.ts_ns, expect);
    ++expect;
  });
  EXPECT_EQ(expect, kEmit);
}

TEST(TraceRing, ResetClearsEverything) {
  TraceRing<8> r;
  for (int i = 0; i < 20; ++i) r.emit(TraceEvent::kPark, uint64_t(i), 0);
  r.reset();
  EXPECT_EQ(r.emitted(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.total(TraceEvent::kPark), 0u);
}

// Multiple writers (the adoption path emits into the victim's ring from the
// adopter's thread): the cursor's fetch_add gives each emission a distinct
// slot and the totals sum exactly.
TEST(TraceRing, MultiWriterTotalsAreExact) {
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPerThread = 20'000;
  TraceRing<64> r;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      const TraceEvent ev =
          t % 2 == 0 ? TraceEvent::kHelpGiven : TraceEvent::kHelpReceived;
      for (uint64_t i = 0; i < kPerThread; ++i) r.emit(ev, i, t);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(r.total(TraceEvent::kHelpGiven), 2 * kPerThread);
  EXPECT_EQ(r.total(TraceEvent::kHelpReceived), 2 * kPerThread);
  EXPECT_EQ(r.emitted(), kThreads * kPerThread);
  EXPECT_EQ(r.dropped(), kThreads * kPerThread - 64);
  // Every retained record is one some writer actually emitted.
  r.for_each([&](const TraceRec& rec) {
    EXPECT_LT(rec.tid, kThreads);
    EXPECT_LT(rec.ts_ns, kPerThread);
  });
}

TEST(ObsSnapshot, AbsorbRingAccumulatesTotalsAndDrops) {
  TraceRing<8> a, b;
  for (int i = 0; i < 12; ++i) a.emit(TraceEvent::kEnqSlow, uint64_t(i), 1);
  for (int i = 0; i < 3; ++i) b.emit(TraceEvent::kCleanup, uint64_t(i), 2);
  ObsSnapshot snap;
  snap.absorb_ring(a);
  snap.absorb_ring(b);
  EXPECT_EQ(snap.total(TraceEvent::kEnqSlow), 12u);
  EXPECT_EQ(snap.total(TraceEvent::kCleanup), 3u);
  EXPECT_EQ(snap.dropped, 4u);          // only ring a wrapped
  EXPECT_EQ(snap.events.size(), 8u + 3u);  // retained records of both
}

TEST(ObsSnapshot, SortOrdersByTimestampThenSeq) {
  TraceRing<16> a, b;
  // Deliberately emit with out-of-order timestamps across two rings,
  // including a cross-ring tie at ts=50.
  a.emit(TraceEvent::kEnqSlow, /*ts=*/90, 1);   // seq 0
  a.emit(TraceEvent::kEnqSlow, /*ts=*/50, 1);   // seq 1
  a.emit(TraceEvent::kEnqSlow, /*ts=*/50, 1);   // seq 2
  b.emit(TraceEvent::kDeqSlow, /*ts=*/10, 2);   // seq 0
  b.emit(TraceEvent::kDeqSlow, /*ts=*/70, 2);   // seq 1
  ObsSnapshot snap;
  snap.absorb_ring(a);
  snap.absorb_ring(b);
  snap.sort_events();
  ASSERT_EQ(snap.events.size(), 5u);
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    const TraceRec& prev = snap.events[i - 1];
    const TraceRec& cur = snap.events[i];
    EXPECT_TRUE(prev.ts_ns < cur.ts_ns ||
                (prev.ts_ns == cur.ts_ns && prev.seq <= cur.seq))
        << "events out of order at " << i;
  }
  EXPECT_EQ(snap.events.front().ts_ns, 10u);
  EXPECT_EQ(snap.events.back().ts_ns, 90u);
  // The ts=50 tie keeps emission order (seq 1 before seq 2).
  EXPECT_EQ(snap.events[1].seq, 1u);
  EXPECT_EQ(snap.events[2].seq, 2u);
}

}  // namespace
}  // namespace wfq::obs
