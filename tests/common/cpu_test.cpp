// Unit tests for CPU topology helpers.
#include "common/cpu.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace wfq {
namespace {

TEST(Cpu, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(Cpu, CompactOrderCyclesThroughHardwareThreads) {
  const unsigned hw = hardware_threads();
  auto order = compact_cpu_order(3 * hw);
  ASSERT_EQ(order.size(), 3 * hw);
  for (unsigned i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % hw);
  }
}

TEST(Cpu, PinToCpuSucceedsOnOwnThread) {
  // May legitimately fail in restricted cpusets; only assert it does not
  // crash and that pinning to CPU 0 (always present when allowed) works
  // from a scratch thread.
  std::thread t([] { (void)pin_to_cpu(0); });
  t.join();
  SUCCEED();
}

TEST(Cpu, PinWrapsOutOfRangeIndices) {
  // Oversubscribed benchmark threads pass indices >= hardware_threads().
  std::thread t([] { (void)pin_to_cpu(hardware_threads() * 7 + 3); });
  t.join();
  SUCCEED();
}

}  // namespace
}  // namespace wfq
