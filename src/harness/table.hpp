// Minimal fixed-width table printer for benchmark output, so every bench
// binary renders its Figure/Table reproduction the same way.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace wfq::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; cells are already-formatted strings.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string fmt(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// "12.34 ±0.56" — mean with confidence half-width.
  static std::string fmt_ci(double mean, double half, int precision = 2) {
    return fmt(mean, precision) + " ±" + fmt(half, precision);
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << "| " << std::setw(int(width[c]))
           << (c < cells.size() ? cells[c] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wfq::bench
