// Fault injection for the bounded index rings (src/core/scq.hpp,
// src/core/wcq.hpp), covering all five ring injection points:
// ring_enq_faa / ring_deq_faa (SCQ geometry, both queues) and
// wcq_enq_slow_published / wcq_help_install / wcq_finalize (the wCQ helping
// protocol). The claims under test are the ones the header comments make:
//
//   - a slow-path enqueuer that stalls or dies after publishing its request
//     cannot strand the value — consumers help it through, and an abandoned
//     handle is adopted on release;
//   - finite stalls anywhere in the protocol resume and conserve values
//     exactly (no loss, no duplication);
//   - memory stays at the construction-time footprint while the rest of the
//     system makes progress around a permanently stalled thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "fault/fault_test_util.hpp"

namespace wfq {
namespace {

using fault_test::Inj;

/// Production ring configuration with the scripted injector compiled in.
struct RingFaultTraits : DefaultRingTraits {
  using Injector = fault::ScriptedInjector;
};

/// Patience 0: every enqueue publishes a request and goes through the
/// helping slow path, making the wcq_* points reachable on the first op.
struct RingFaultSlowTraits : RingFaultTraits {
  static constexpr int kWcqPatience = 0;
};

using FaultWcq = WcqQueue<uint64_t, RingFaultSlowTraits>;
/// Default patience: the fast path runs, which is where wCQ's
/// ring_enq_faa call site lives (patience 0 never reaches it).
using FaultWcqFast = WcqQueue<uint64_t, RingFaultTraits>;
using FaultScq = ScqQueue<uint64_t, RingFaultTraits>;

// A slow-path enqueuer parked forever right after publishing its request
// must not strand the value: dequeue() helps pending requests before it
// may report EMPTY, so a consumer that arrives while the owner is parked
// still receives the value.
TEST(WcqFault, StalledSlowEnqueuerStillDelivers) {
  fault_test::ScriptReset script;
  FaultWcq q(64);
  std::thread victim([&] {
    auto vh = q.get_handle();
    Inj::set_victim(true);
    EXPECT_TRUE(Inj::arm("wcq_enq_slow_published", fault::Action::kStall, 1,
                         Inj::kForever));
    try {
      q.enqueue(vh, 42);
      ADD_FAILURE() << "permanently stalled enqueue returned";
    } catch (const fault::InjectedCrash& c) {
      EXPECT_STREQ(c.point, "wcq_enq_slow_published");
    }
    Inj::set_victim(false);
  });
  while (Inj::stalls() == 0) std::this_thread::yield();

  // The owner is parked with its request published. A consumer must get
  // the value anyway (help-before-EMPTY); poll a little to let helping win
  // the race with our arrival.
  auto h = q.get_handle();
  std::optional<uint64_t> got;
  for (int spin = 0; spin < 100000 && !got; ++spin) {
    got = q.dequeue(h);
    if (!got) std::this_thread::yield();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42u);
  EXPECT_FALSE(q.dequeue(h).has_value());  // exactly once

  Inj::release_stalls();  // the parked corpse wakes only as a crash
  victim.join();
  EXPECT_GE(Inj::crashes(), 1u);
}

// An enqueuer that dies immediately after publishing (no helper traffic at
// all) is adopted when its handle is released: release_handle() finishes
// the pending request, so the value is delivered, not leaked.
TEST(WcqFault, CrashedSlowEnqueuerIsAdoptedOnRelease) {
  fault_test::ScriptReset script;
  FaultWcq q(64);
  {
    auto vh = q.get_handle();
    Inj::set_victim(true);
    EXPECT_TRUE(
        Inj::arm("wcq_enq_slow_published", fault::Action::kCrash, 1));
    try {
      q.enqueue(vh, 42);
      ADD_FAILURE() << "crashed enqueue returned";
    } catch (const fault::InjectedCrash&) {
    }
    Inj::set_victim(false);
  }  // HandleGuard release: orphan adoption completes the insert
  EXPECT_EQ(Inj::fired("wcq_enq_slow_published"), 1u);
  auto h = q.get_handle();
  auto got = q.dequeue(h);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42u);
  EXPECT_FALSE(q.dequeue(h).has_value());
  OpStats s = q.stats();
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.injected_crashes.load(std::memory_order_relaxed), 1u);
}

// Deeper crash points inside the cooperative insert: dying between claiming
// an index and preparing the entry (wcq_help_install), or between preparing
// and finalizing (wcq_finalize), leaves shared state any thread can drive
// to completion — adoption on release delivers the value exactly once.
class WcqCrashPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(WcqCrashPoint, MidProtocolCrashIsAdopted) {
  fault_test::ScriptReset script;
  FaultWcq q(64);
  {
    auto vh = q.get_handle();
    Inj::set_victim(true);
    EXPECT_TRUE(Inj::arm(GetParam(), fault::Action::kCrash, 1));
    try {
      q.enqueue(vh, 42);
      ADD_FAILURE() << "crashed enqueue returned";
    } catch (const fault::InjectedCrash& c) {
      EXPECT_STREQ(c.point, GetParam());
    }
    Inj::set_victim(false);
  }
  auto h = q.get_handle();
  auto got = q.dequeue(h);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42u);
  EXPECT_FALSE(q.dequeue(h).has_value());
  EXPECT_EQ(q.stats().adopted_handles.load(std::memory_order_relaxed), 1u);
}

INSTANTIATE_TEST_SUITE_P(Points, WcqCrashPoint,
                         ::testing::Values("wcq_help_install",
                                           "wcq_finalize"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// Finite stalls at every ring point, under concurrent traffic: the victim
// resumes and completes its operation, so conservation must be exact. This
// is the schedule-pressure version of the protocol arguments — a stalled
// FAA winner (ring_enq_faa / ring_deq_faa) forces holes and threshold
// bridging; a stalled helper forces commit-validation and retraction.
template <class Q>
void finite_stall_conservation(const char* point, std::size_t capacity) {
  fault_test::ScriptReset script;
  Q q(capacity);
  constexpr unsigned kHealthy = 2;
  constexpr uint64_t kOpsPerThread = 4000;
  std::atomic<uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<uint64_t> pushed_n{0}, popped_n{0};

  auto worker = [&](unsigned id, bool is_victim) {
    auto h = q.get_handle();
    if (is_victim) {
      Inj::set_victim(true);
      // A couple of 500-step stalls: long enough that healthy threads lap
      // the victim's position, short enough to resume within the workload.
      EXPECT_TRUE(Inj::arm(point, fault::Action::kStall, 2, 500));
    }
    uint64_t local_push = 0, local_pop = 0, ln_push = 0, ln_pop = 0;
    for (uint64_t i = 1; i <= kOpsPerThread; ++i) {
      uint64_t v = (uint64_t(id + 1) << 40) | i;
      q.enqueue(h, v);
      local_push += v;
      ++ln_push;
      if (auto got = q.dequeue(h)) {
        local_pop += *got;
        ++ln_pop;
      }
    }
    if (is_victim) Inj::set_victim(false);
    pushed_sum.fetch_add(local_push);
    popped_sum.fetch_add(local_pop);
    pushed_n.fetch_add(ln_push);
    popped_n.fetch_add(ln_pop);
  };

  std::vector<std::thread> threads;
  threads.emplace_back(worker, 0u, true);
  for (unsigned t = 1; t <= kHealthy; ++t) threads.emplace_back(worker, t, false);
  for (auto& t : threads) t.join();

  // Drain the residue single-threaded; every push must be accounted for.
  auto h = q.get_handle();
  while (auto got = q.dequeue(h)) {
    popped_sum.fetch_add(*got);
    popped_n.fetch_add(1);
  }
  EXPECT_EQ(popped_n.load(), pushed_n.load()) << "point " << point;
  EXPECT_EQ(popped_sum.load(), pushed_sum.load()) << "point " << point;
  EXPECT_GE(Inj::fired(point), 1u) << "point " << point << " never reached";
}

TEST(WcqFault, FiniteStallsConserveAtEveryPoint) {
  // Capacity >= threads (3 here) with room for the victim's parked window.
  // The two SCQ-geometry points run on the fast path (default patience);
  // the three helping-protocol points on the forced slow path.
  finite_stall_conservation<FaultWcqFast>("ring_enq_faa", 64);
  finite_stall_conservation<FaultWcqFast>("ring_deq_faa", 64);
  finite_stall_conservation<FaultWcq>("wcq_enq_slow_published", 64);
  finite_stall_conservation<FaultWcq>("wcq_help_install", 64);
  finite_stall_conservation<FaultWcq>("wcq_finalize", 64);
}

TEST(ScqFault, FiniteStallsConserveAtRingPoints) {
  finite_stall_conservation<FaultScq>("ring_enq_faa", 64);
  finite_stall_conservation<FaultScq>("ring_deq_faa", 64);
}

// Bounded memory under a forever-stalled thread (acceptance criterion):
// unlike the unbounded queue — where a pinned reclamation frontier grows
// live segments — the rings are allocation-free after construction.
// footprint_bytes() must not move while healthy threads pump many times
// the capacity through the queue around the parked victim, and every
// value (the victim's published one included) is delivered exactly once.
TEST(WcqFault, MemoryBoundedUnderForeverStall) {
  fault_test::ScriptReset script;
  FaultWcq q(64);
  const std::size_t footprint = q.footprint_bytes();
  constexpr uint64_t kVictimVal = (uint64_t{1} << 40) | 0xbeef;

  std::thread victim([&] {
    auto vh = q.get_handle();
    Inj::set_victim(true);
    EXPECT_TRUE(Inj::arm("wcq_enq_slow_published", fault::Action::kStall, 1,
                         Inj::kForever));
    try {
      q.enqueue(vh, kVictimVal);
      ADD_FAILURE() << "permanently stalled enqueue returned";
    } catch (const fault::InjectedCrash&) {
    }
    Inj::set_victim(false);
  });
  while (Inj::stalls() == 0) std::this_thread::yield();

  // 128 half-capacity rotations around the parked victim: progress and
  // exact conservation, zero growth. Half capacity, not full — the victim
  // holds one free index hostage while parked, so filling to the brim
  // could only complete after its request is helped AND consumed.
  auto h = q.get_handle();
  uint64_t pumped_sum = 0, drained_sum = 0, drained_n = 0;
  uint64_t victim_seen = 0;
  for (uint64_t r = 0; r < 128; ++r) {
    for (uint64_t i = 0; i < 32; ++i) {
      const uint64_t v = (r << 8) | i | (uint64_t{2} << 40);
      q.enqueue(h, v);
      pumped_sum += v;
    }
    while (auto got = q.dequeue(h)) {
      if (*got == kVictimVal) {
        ++victim_seen;
      } else {
        drained_sum += *got;
        ++drained_n;
      }
    }
    ASSERT_LE(q.approx_size(), q.capacity());
  }
  EXPECT_EQ(q.footprint_bytes(), footprint);
  EXPECT_EQ(drained_n, 128u * 32u);
  EXPECT_EQ(drained_sum, pumped_sum);
  EXPECT_EQ(victim_seen, 1u);  // helped through, exactly once

  Inj::release_stalls();
  victim.join();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

}  // namespace
}  // namespace wfq
