// Quickstart: the smallest complete tour of the wfq::WFQueue API.
//
//   $ ./quickstart
//
// Covers: constructing a queue, per-thread handles, enqueue/dequeue across
// threads, the EMPTY result, typed payloads (boxed strings), and the
// operation-path statistics behind the paper's Table 2.
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"

int main() {
  // A wait-free MPMC FIFO queue of 64-bit integers. The default
  // configuration is the paper's WF-10 (PATIENCE = 10).
  wfq::WFQueue<uint64_t> queue;

  // Every thread talks to the queue through a Handle — it carries the
  // thread's position in the helper ring and its hazard pointer. Handles
  // are RAII and cheap to re-acquire.
  {
    auto handle = queue.get_handle();
    queue.enqueue(handle, 1);
    queue.enqueue(handle, 2);
    std::optional<uint64_t> v = queue.dequeue(handle);
    std::printf("dequeued %llu (expect 1)\n",
                static_cast<unsigned long long>(*v));
    v = queue.dequeue(handle);
    std::printf("dequeued %llu (expect 2)\n",
                static_cast<unsigned long long>(*v));
    // Dequeue on an empty queue returns nullopt — a linearizable EMPTY.
    if (!queue.dequeue(handle).has_value()) {
      std::printf("queue observed empty\n");
    }
  }

  // Multi-threaded: 4 producers push 10k values each, 4 consumers drain.
  constexpr unsigned kProducers = 4, kConsumers = 4;
  constexpr uint64_t kPerProducer = 10'000;
  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = queue.get_handle();
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        queue.enqueue(h, (uint64_t(p) << 32) | (i + 1));
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto h = queue.get_handle();
      while (consumed.load() < kProducers * kPerProducer) {
        // Flag-before-dequeue: an EMPTY that began after `done` was set
        // (i.e. after every producer finished) proves the queue is
        // drained; the reverse order races with the last enqueues.
        const bool was_done = done.load();
        if (queue.dequeue(h).has_value()) {
          consumed.fetch_add(1);
        } else if (was_done) {
          break;
        }
      }
    });
  }
  for (unsigned i = 0; i < kProducers; ++i) threads[i].join();
  done.store(true);
  for (unsigned i = kProducers; i < threads.size(); ++i) threads[i].join();
  std::printf("MPMC: %llu / %llu values transferred\n",
              static_cast<unsigned long long>(consumed.load()),
              static_cast<unsigned long long>(kProducers * kPerProducer));

  // Non-trivial payloads are boxed transparently.
  wfq::WFQueue<std::string> strings;
  {
    auto h = strings.get_handle();
    strings.enqueue(h, "wait-free");
    strings.enqueue(h, "queues");
    std::string a = *strings.dequeue(h);
    std::string b = *strings.dequeue(h);
    std::printf("strings: %s %s\n", a.c_str(), b.c_str());
  }

  // Path breakdown (the instrumentation behind the paper's Table 2).
  wfq::OpStats s = queue.stats();
  std::printf(
      "stats: %llu enqueues (%.3f%% slow), %llu dequeues (%.3f%% slow, "
      "%.3f%% empty)\n",
      static_cast<unsigned long long>(s.enqueues()), s.pct_slow_enq(),
      static_cast<unsigned long long>(s.dequeues()), s.pct_slow_deq(),
      s.pct_empty_deq());
  return 0;
}
