// Tests for host platform introspection (Table 1 reproduction input).
#include "harness/platform.hpp"

#include <gtest/gtest.h>

#include "common/cpu.hpp"

namespace wfq::bench {
namespace {

TEST(Platform, DetectionYieldsSaneCounts) {
  auto p = detect_platform();
  EXPECT_GE(p.threads, 1u);
  EXPECT_GE(p.cores, 1u);
  EXPECT_GE(p.sockets, 1u);
  EXPECT_LE(p.sockets, p.cores);
  EXPECT_LE(p.cores, p.threads);
  EXPECT_FALSE(p.model.empty());
  EXPECT_FALSE(p.arch.empty());
}

TEST(Platform, ThreadsConsistentWithStdHardwareConcurrency) {
  auto p = detect_platform();
  EXPECT_EQ(p.threads, hardware_threads());
}

TEST(Platform, X86ReportsNativeFaa) {
#if defined(__x86_64__)
  EXPECT_TRUE(detect_platform().native_faa);
#else
  GTEST_SKIP() << "not x86-64";
#endif
}

TEST(Platform, TableRendersAllFields) {
  auto p = detect_platform();
  std::string t = format_platform_table(p);
  EXPECT_NE(t.find("Processor Model"), std::string::npos);
  EXPECT_NE(t.find("Clock Speed"), std::string::npos);
  EXPECT_NE(t.find("# of Threads"), std::string::npos);
  EXPECT_NE(t.find("Native FAA"), std::string::npos);
  EXPECT_NE(t.find(p.model), std::string::npos);
}

}  // namespace
}  // namespace wfq::bench
