// Task-scheduler example: a fixed worker pool dispatching heterogeneous
// closures through the wait-free queue, with completion-latency percentiles
// — the "mission critical applications that have real-time constraints"
// use case the paper's introduction highlights for wait-free structures.
//
//   $ ./task_scheduler [tasks] [workers]
//
// Tasks are enqueued with a submission timestamp; workers execute them and
// record queueing latency. Because the queue is wait-free, no submitter or
// worker can be starved by a stalled peer. Idle workers park on a futex
// through the blocking layer (src/sync/) instead of burning cores, and
// shutdown is the queue's own close()/drain protocol: close() after the
// last submit guarantees every worker executes every task and then sees
// kClosed — no stop flag, no executed==submitted polling.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "sync/blocking_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Task {
  std::function<uint64_t()> work;
  Clock::time_point submitted;
};

using TaskQueue = wfq::sync::BlockingWFQueue<Task>;

class Scheduler {
 public:
  explicit Scheduler(unsigned workers) {
    for (unsigned w = 0; w < workers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Scheduler() { shutdown(); }

  /// Closes the queue and joins the pool. On return every submitted task
  /// has executed (close() seals the task set; workers drain it fully
  /// before observing kClosed).
  void shutdown() {
    queue_.close();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  /// Submit from any thread; wait-free enqueue (and fence-free when no
  /// worker is parked). Returns false after shutdown() began.
  bool submit(std::function<uint64_t()> fn) {
    thread_local auto handle = queue_.get_handle();
    if (!queue_.push(handle, Task{std::move(fn), Clock::now()})) return false;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t result_sum() const {
    return result_sum_.load(std::memory_order_relaxed);
  }

  /// Park/notify accounting from the blocking layer.
  wfq::OpStats stats() const { return queue_.stats(); }

  /// Queueing-latency samples (ns), gathered by the workers.
  std::vector<uint64_t> latencies() {
    std::lock_guard<std::mutex> g(lat_mu_);
    return latencies_;
  }

 private:
  void worker_loop() {
    auto handle = queue_.get_handle();
    std::vector<uint64_t> local_lat;
    local_lat.reserve(4096);
    Task task;
    // pop_wait parks when idle and returns kClosed exactly once the queue
    // is closed AND drained — the loop needs no other exit condition.
    while (queue_.pop_wait(handle, task) == wfq::sync::PopStatus::kOk) {
      auto picked_up = Clock::now();
      local_lat.push_back(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              picked_up - task.submitted)
              .count()));
      result_sum_.fetch_add(task.work(), std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> g(lat_mu_);
    latencies_.insert(latencies_.end(), local_lat.begin(), local_lat.end());
  }

  TaskQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> submitted_{0}, executed_{0}, result_sum_{0};
  std::mutex lat_mu_;
  std::vector<uint64_t> latencies_;
};

uint64_t percentile(std::vector<uint64_t>& xs, double p) {
  if (xs.empty()) return 0;
  std::size_t idx = std::size_t(p * double(xs.size() - 1));
  std::nth_element(xs.begin(), xs.begin() + idx, xs.end());
  return xs[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t tasks =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const unsigned workers =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 3;

  auto t0 = Clock::now();
  Scheduler sched(workers);
  // Two submitter threads with mixed task sizes.
  std::vector<std::thread> submitters;
  std::atomic<uint64_t> expected{0};
  for (unsigned s = 0; s < 2; ++s) {
    submitters.emplace_back([&, s] {
      wfq::Xorshift128Plus rng(s + 99);
      uint64_t local = 0;
      for (uint64_t i = 0; i < tasks / 2; ++i) {
        uint64_t spin = rng.next_in(1, 64);  // heterogeneous task cost
        local += spin;
        sched.submit([spin] {
          uint64_t x = spin;
          for (uint64_t k = 0; k < spin; ++k) x ^= x << 7, x ^= x >> 9;
          return spin;  // deterministic contribution
        });
      }
      expected.fetch_add(local);
    });
  }
  for (auto& s : submitters) s.join();
  const uint64_t expected_sum = expected.load();
  // close() + join: on return, every task has executed.
  sched.shutdown();
  auto t1 = Clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  auto lats = sched.latencies();
  auto st = sched.stats();
  std::printf("scheduler: %llu tasks on %u workers in %.3fs (%.2f "
              "Mtask/s)\n",
              (unsigned long long)sched.executed(), workers, secs,
              double(sched.executed()) / secs / 1e6);
  std::printf("queueing latency: p50=%lluns p95=%lluns p99=%lluns\n",
              (unsigned long long)percentile(lats, 0.50),
              (unsigned long long)percentile(lats, 0.95),
              (unsigned long long)percentile(lats, 0.99));
  std::printf("blocking layer: %llu parks, %llu notifies, %llu spurious\n",
              (unsigned long long)st.deq_parks.load(),
              (unsigned long long)st.notify_calls.load(),
              (unsigned long long)st.deq_spurious_wakeups.load());
  const bool ok = sched.result_sum() == expected_sum &&
                  sched.executed() == tasks / 2 * 2 &&
                  sched.executed() == sched.submitted();
  std::printf("result check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
