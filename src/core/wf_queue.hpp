// Public typed interface to the wait-free queue.
//
// `wfq::WFQueue<T>` is a linearizable, wait-free, multi-producer
// multi-consumer FIFO queue of `T`. Every participating thread operates
// through a `Handle` obtained from `get_handle()`; the handle carries the
// thread's segment pointers, helping state and hazard pointer (§3.3 of the
// paper). Handles are cheap to acquire (recycled through a freelist) and
// RAII-managed.
//
// Usage:
//
//   wfq::WFQueue<int> q;
//   auto h = q.get_handle();         // per thread
//   q.enqueue(h, 42);
//   std::optional<int> v = q.dequeue(h);   // nullopt <=> observed empty
//
// Progress: enqueue and dequeue are wait-free — every call completes in a
// bounded number of steps regardless of what other threads do (Theorem 4.6)
// — provided `Traits::Faa` is the native fetch-and-add. With `EmulatedFaa`
// (the paper's Power7 configuration) operations are lock-free only.
#pragma once

#include <optional>
#include <utility>

#include "core/slot_codec.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq {

template <class T, class Traits = DefaultWfTraits>
class WFQueue {
  using Core = WFQueueCore<Traits>;
  using Codec = SlotCodec<T>;

 public:
  using value_type = T;

  /// Per-thread access token. Movable, not copyable; releases its slot in
  /// the helper ring back to the queue's freelist on destruction.
  using Handle = typename Core::HandleGuard;

  /// `patience` = extra fast-path attempts before helping kicks in
  /// (paper's PATIENCE; 10 = WF-10, 0 = WF-0). `max_garbage` = retired
  /// segments accumulated before a dequeue triggers reclamation.
  explicit WFQueue(WfConfig cfg = {}) : core_(cfg) {}

  ~WFQueue() {
    if constexpr (Codec::kBoxed) {
      // Drain still-boxed payloads so they don't leak. The queue is being
      // destroyed, so no concurrent access is possible.
      auto h = get_handle();
      for (;;) {
        uint64_t slot = core_.dequeue(h.get());
        if (slot == Core::kEmpty) break;
        Codec::destroy_slot(slot);
      }
    }
  }

  /// Registers the calling scope as a queue participant.
  Handle get_handle() { return Handle(core_); }

  /// Appends `v` to the queue. Wait-free.
  void enqueue(Handle& h, T v) {
    core_.enqueue(h.get(), Codec::encode(std::move(v)));
  }

  /// Removes the oldest value; `nullopt` means the queue was observed empty
  /// at the operation's linearization point. Wait-free.
  std::optional<T> dequeue(Handle& h) {
    uint64_t slot = core_.dequeue(h.get());
    if (slot == Core::kEmpty) return std::nullopt;
    return Codec::decode(slot);
  }

  /// Operation-path statistics (Table 2 instrumentation).
  OpStats stats() const { return core_.collect_stats(); }
  void reset_stats() { core_.reset_stats(); }

  /// Segment-list introspection for tests and reclamation benchmarks.
  std::size_t live_segments() const { return core_.live_segments(); }
  int64_t segments_outstanding() const { return core_.segments_outstanding(); }
  std::size_t peak_live_segments() const {
    return core_.peak_live_segments();
  }
  uint64_t tail_index() const { return core_.tail_index(); }
  uint64_t head_index() const { return core_.head_index(); }

  /// Heuristic occupancy (see WFQueueCore::approx_size caveats).
  uint64_t approx_size() const { return core_.approx_size(); }
  const WfConfig& config() const noexcept { return core_.config(); }

  /// Escape hatch for white-box tests and the harness.
  Core& core() noexcept { return core_; }

 private:
  Core core_;
};

}  // namespace wfq
