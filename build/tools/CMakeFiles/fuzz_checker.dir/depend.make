# Empty dependencies file for fuzz_checker.
# This may be replaced when dependencies are built.
