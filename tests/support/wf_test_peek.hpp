// White-box access into WFQueueCore for deterministic tests of the helping
// machinery (simulating a stalled slow-path thread without needing a
// scheduler hook). Test-only; lives outside src/ on purpose.
#pragma once

#include <cstdint>

#include "common/packed_state.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq {

struct WfTestPeek {
  /// FAA the queue's tail index, as the paper's enqueue fast path would.
  template <class Core>
  static uint64_t faa_tail(Core& q) {
    return Core::Traits_::Faa::fetch_add(*q.tail_index_, uint64_t{1},
                                         std::memory_order_seq_cst);
  }

  /// FAA the queue's head index, as the paper's dequeue fast path would.
  template <class Core>
  static uint64_t faa_head(Core& q) {
    return Core::Traits_::Faa::fetch_add(*q.head_index_, uint64_t{1},
                                         std::memory_order_seq_cst);
  }

  /// Publish an enqueue request on `h` exactly as enq_slow's prologue does,
  /// then return without looping — i.e. the thread "stalls" right after
  /// soliciting help (Listing 3 line 72).
  template <class Core>
  static uint64_t publish_enq_request(Core& q, typename Core::Handle* h,
                                      uint64_t v) {
    uint64_t cell_id = faa_tail(q);  // the failed fast-path index
    h->enq.req.val.store(v, std::memory_order_release);
    h->enq.req.state.store(PackedState(true, cell_id).word(),
                           std::memory_order_seq_cst);
    return cell_id;
  }

  /// One real fast-path dequeue attempt (Listing 4 deq_fast). Returns the
  /// value, Core::kEmpty, or Core::kTop on failure with `cid` set to the
  /// probed index.
  template <class Core>
  static uint64_t deq_fast_once(Core& q, typename Core::Handle* h,
                                uint64_t& cid) {
    return q.deq_fast(h, cid);
  }

  /// Publish a dequeue request on `h` exactly as deq_slow's prologue does
  /// (Listing 4 line 151), then "stall". `cid` must come from a genuinely
  /// failed deq_fast_once, as in the real algorithm.
  template <class Core>
  static void publish_deq_request(Core& q, typename Core::Handle* h,
                                  uint64_t cid) {
    (void)q;
    h->deq.req.id.store(cid, std::memory_order_release);
    h->deq.req.state.store(PackedState(true, cid).word(),
                           std::memory_order_seq_cst);
  }

  /// Resume a "stalled" slow-path dequeue: run deq_slow's epilogue (the
  /// part after help_deq) and return the result slot.
  template <class Core>
  static uint64_t finish_deq_request(Core& q, typename Core::Handle* h) {
    q.help_deq(h, h);
    uint64_t i =
        PackedState::from_word(h->deq.req.state.load(std::memory_order_acquire))
            .index();
    auto* s = h->head.load(std::memory_order_acquire);
    auto* c = q.find_cell(h, s, i);
    h->head.store(s, std::memory_order_release);
    uint64_t v = c->val.load(std::memory_order_acquire);
    Core::advance_end_for_linearizability(*q.head_index_, i + 1);
    return v == Core::kTop ? Core::kEmpty : v;
  }

  template <class Core>
  static bool enq_request_pending(typename Core::Handle* h) {
    return PackedState::from_word(
               h->enq.req.state.load(std::memory_order_acquire))
        .pending();
  }

  template <class Core>
  static bool deq_request_pending(typename Core::Handle* h) {
    return PackedState::from_word(
               h->deq.req.state.load(std::memory_order_acquire))
        .pending();
  }

  template <class Core>
  static uint64_t tail_of(Core& q) {
    return q.tail_index_->load(std::memory_order_acquire);
  }

  template <class Core>
  static uint64_t head_of(Core& q) {
    return q.head_index_->load(std::memory_order_acquire);
  }

  /// The reclamation frontier (paper's I), now owned by the policy.
  template <class Core>
  static int64_t oldest_id(Core& q) {
    return q.rcl_.frontier_id();
  }
};

}  // namespace wfq
