// Empirical wait-freedom check (the measurable shadow of §4's Lemmas 4.3
// and 4.4): the worst-case number of cells any single operation probes must
// be bounded by a function of the thread count — never by the run length.
// Doubling the operation count must leave the maxima flat; the lemmas'
// analytic bounds ((n-1)^2 slow-path enqueue failures, (n-1)^4 dequeue cell
// visits) are astronomically loose upper bounds, real maxima are tiny.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();

  std::cout << "== Wait-freedom bound: worst-case cell probes per operation "
               "(WF-0, pairs) ==\n"
               "If ops double but the max column stays flat, per-operation "
               "work is bounded\nindependently of run length — the empirical "
               "signature of wait-freedom.\n\n";
  Table table({"threads", "ops", "avg enq probes", "max enq probes",
               "avg deq probes", "max deq probes"});
  std::vector<unsigned> thread_list{2u, std::max(2u, 2 * hw),
                                    std::max(4u, 4 * hw)};
  thread_list.erase(std::unique(thread_list.begin(), thread_list.end()),
                    thread_list.end());
  for (unsigned threads : thread_list) {
    for (uint64_t ops : {ops_from_env(100'000), 2 * ops_from_env(100'000)}) {
      WfConfig wf;
      wf.patience = 0;  // maximize slow-path traffic
      WFQueue<uint64_t> q(wf);
      RunConfig cfg;
      cfg.kind = WorkloadKind::kPairs;
      cfg.threads = threads;
      cfg.total_ops = ops;
      cfg.use_delay = use_delay;
      (void)run_workload(q, cfg);
      auto s = q.stats();
      table.add_row({std::to_string(threads) + (threads > hw ? "^" : ""),
                     std::to_string(ops), Table::fmt(s.avg_enq_probes(), 2),
                     std::to_string(s.max_enq_probes.load()),
                     Table::fmt(s.avg_deq_probes(), 2),
                     std::to_string(s.max_deq_probes.load())});
      std::cerr << "  [waitfree] t=" << threads << " ops=" << ops
                << " max_enq=" << s.max_enq_probes.load()
                << " max_deq=" << s.max_deq_probes.load() << "\n";
    }
  }
  table.print();
  return 0;
}
