// Unit tests for the slot codec: every supported payload category must
// round-trip and stay clear of the queue's reserved slot values.
#include "core/slot_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/wf_queue.hpp"

namespace wfq {
namespace {

using Core = WFQueueCore<DefaultWfTraits>;

template <class T>
void expect_slot_legal(uint64_t slot) {
  EXPECT_TRUE(Core::is_enqueueable(slot))
      << "codec produced reserved slot " << slot;
}

TEST(SlotCodec, SmallIntegralsRoundTrip) {
  for (int v : {0, 1, -1, 42, -42, std::numeric_limits<int>::max(),
                std::numeric_limits<int>::min()}) {
    uint64_t slot = SlotCodec<int>::encode(v);
    expect_slot_legal<int>(slot);
    EXPECT_EQ(SlotCodec<int>::decode(slot), v);
  }
}

TEST(SlotCodec, UnsignedAndNarrowTypes) {
  for (uint32_t v : {0u, 1u, ~0u}) {
    uint64_t slot = SlotCodec<uint32_t>::encode(v);
    expect_slot_legal<uint32_t>(slot);
    EXPECT_EQ(SlotCodec<uint32_t>::decode(slot), v);
  }
  for (uint8_t v : {uint8_t{0}, uint8_t{255}}) {
    uint64_t slot = SlotCodec<uint8_t>::encode(v);
    expect_slot_legal<uint8_t>(slot);
    EXPECT_EQ(SlotCodec<uint8_t>::decode(slot), v);
  }
  for (char v : {'a', '\0', '\xff'}) {
    uint64_t slot = SlotCodec<char>::encode(v);
    expect_slot_legal<char>(slot);
    EXPECT_EQ(SlotCodec<char>::decode(slot), v);
  }
}

TEST(SlotCodec, EnumsRoundTrip) {
  enum class Color : uint16_t { kRed = 0, kGreen = 1, kBlue = 65535 };
  for (Color v : {Color::kRed, Color::kGreen, Color::kBlue}) {
    uint64_t slot = SlotCodec<Color>::encode(v);
    expect_slot_legal<Color>(slot);
    EXPECT_EQ(SlotCodec<Color>::decode(slot), v);
  }
}

TEST(SlotCodec, SignedEnumsWithNegativeValues) {
  enum class Level : int16_t { kLow = -32768, kMid = -1, kHigh = 32767 };
  for (Level v : {Level::kLow, Level::kMid, Level::kHigh}) {
    uint64_t slot = SlotCodec<Level>::encode(v);
    expect_slot_legal<Level>(slot);
    EXPECT_EQ(SlotCodec<Level>::decode(slot), v);
  }
}

TEST(SlotCodec, BoolRoundTrips) {
  for (bool v : {false, true}) {
    uint64_t slot = SlotCodec<bool>::encode(v);
    expect_slot_legal<bool>(slot);
    EXPECT_EQ(SlotCodec<bool>::decode(slot), v);
  }
}

TEST(SlotCodec, WideIntegralsRoundTripInRepresentableRange) {
  for (uint64_t v : {uint64_t{1}, uint64_t{42}, ~uint64_t{0} - 3}) {
    ASSERT_TRUE(SlotCodec<uint64_t>::representable(v));
    uint64_t slot = SlotCodec<uint64_t>::encode(v);
    expect_slot_legal<uint64_t>(slot);
    EXPECT_EQ(SlotCodec<uint64_t>::decode(slot), v);
  }
  for (int64_t v : {int64_t{1}, int64_t{-5}, std::numeric_limits<int64_t>::min()}) {
    if (!SlotCodec<int64_t>::representable(v)) continue;
    uint64_t slot = SlotCodec<int64_t>::encode(v);
    expect_slot_legal<int64_t>(slot);
    EXPECT_EQ(SlotCodec<int64_t>::decode(slot), v);
  }
}

TEST(SlotCodec, WideIntegralReservedValuesAreDocumented) {
  EXPECT_FALSE(SlotCodec<uint64_t>::representable(0));
  EXPECT_FALSE(SlotCodec<uint64_t>::representable(~uint64_t{0}));
  EXPECT_FALSE(SlotCodec<uint64_t>::representable(~uint64_t{0} - 1));
  EXPECT_FALSE(SlotCodec<uint64_t>::representable(~uint64_t{0} - 2));
  EXPECT_TRUE(SlotCodec<uint64_t>::representable(1));
}

TEST(SlotCodec, PointersRoundTrip) {
  int x = 5;
  uint64_t slot = SlotCodec<int*>::encode(&x);
  expect_slot_legal<int*>(slot);
  EXPECT_EQ(SlotCodec<int*>::decode(slot), &x);
}

TEST(SlotCodec, FloatRoundTripIncludingSpecials) {
  for (float v : {0.0f, -0.0f, 1.5f, -3.25f,
                  std::numeric_limits<float>::infinity(),
                  -std::numeric_limits<float>::infinity(),
                  std::numeric_limits<float>::denorm_min()}) {
    uint64_t slot = SlotCodec<float>::encode(v);
    expect_slot_legal<float>(slot);
    float back = SlotCodec<float>::decode(slot);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0);
  }
  float nan = std::nanf("");
  float back = SlotCodec<float>::decode(SlotCodec<float>::encode(nan));
  EXPECT_TRUE(std::isnan(back));
}

TEST(SlotCodec, DoubleRoundTripIncludingSpecials) {
  for (double v : {0.0, -0.0, 1.5, -3.25,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max()}) {
    uint64_t slot = SlotCodec<double>::encode(v);
    expect_slot_legal<double>(slot);
    double back = SlotCodec<double>::decode(slot);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0);
  }
}

TEST(SlotCodec, DoubleNonCanonicalNanCanonicalized) {
  // The three bit patterns that would collide with reserved slots are
  // negative NaNs; they must decode to *a* NaN.
  for (uint64_t bits : {~uint64_t{0}, ~uint64_t{0} - 1, ~uint64_t{0} - 2}) {
    double v;
    std::memcpy(&v, &bits, sizeof v);
    ASSERT_TRUE(std::isnan(v));
    uint64_t slot = SlotCodec<double>::encode(v);
    expect_slot_legal<double>(slot);
    EXPECT_TRUE(std::isnan(SlotCodec<double>::decode(slot)));
  }
}

TEST(SlotCodec, BoxedTypesRoundTripAndFree) {
  uint64_t slot = SlotCodec<std::string>::encode(std::string("hello world"));
  expect_slot_legal<std::string>(slot);
  EXPECT_EQ(SlotCodec<std::string>::decode(slot), "hello world");

  uint64_t slot2 =
      SlotCodec<std::vector<int>>::encode(std::vector<int>{1, 2, 3});
  auto v = SlotCodec<std::vector<int>>::decode(slot2);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(SlotCodec, BoxedMoveOnlyTypes) {
  auto p = std::make_unique<int>(99);
  int* raw = p.get();
  uint64_t slot = SlotCodec<std::unique_ptr<int>>::encode(std::move(p));
  auto back = SlotCodec<std::unique_ptr<int>>::decode(slot);
  EXPECT_EQ(back.get(), raw);
  EXPECT_EQ(*back, 99);
}

TEST(SlotCodec, DestroySlotReleasesBox) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    Counted(Counted&&) noexcept { ++live; }
    ~Counted() { --live; }
  };
  uint64_t slot = SlotCodec<Counted>::encode(Counted{});
  EXPECT_EQ(live, 1);
  SlotCodec<Counted>::destroy_slot(slot);
  EXPECT_EQ(live, 0);
}

TEST(SlotCodec, QueueOfDoublesEndToEnd) {
  WFQueue<double> q;
  auto h = q.get_handle();
  q.enqueue(h, 3.14);
  q.enqueue(h, -0.0);
  q.enqueue(h, std::numeric_limits<double>::infinity());
  EXPECT_EQ(q.dequeue(h), 3.14);
  auto z = q.dequeue(h);
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(*z == 0.0 && std::signbit(*z));
  EXPECT_EQ(q.dequeue(h), std::numeric_limits<double>::infinity());
}

TEST(SlotCodec, QueueOfPointersEndToEnd) {
  WFQueue<int*> q;
  auto h = q.get_handle();
  int xs[3] = {1, 2, 3};
  for (auto& x : xs) q.enqueue(h, &x);
  for (auto& x : xs) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, &x);
  }
}

}  // namespace
}  // namespace wfq
