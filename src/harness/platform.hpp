// Host platform introspection — the data behind the Table 1 reproduction
// ("Summary of experimental platforms").
#pragma once

#include <cstdint>
#include <string>

namespace wfq::bench {

/// One row of Table 1, discovered from the running host.
struct PlatformInfo {
  std::string model;        ///< CPU model string ("Intel Xeon E5-2699v3 ...")
  double clock_ghz = 0.0;   ///< nominal clock
  unsigned sockets = 1;     ///< physical packages
  unsigned cores = 1;       ///< physical cores across sockets
  unsigned threads = 1;     ///< hardware threads
  std::string arch;         ///< "x86_64", ...
  bool native_faa = false;  ///< hardware fetch-and-add (lock xadd / LDADD)
  bool native_cas2 = false; ///< double-width CAS (cmpxchg16b)
};

/// Reads /proc/cpuinfo and sysfs; degrades gracefully (counts fall back to
/// hardware_concurrency) so it works inside minimal containers.
PlatformInfo detect_platform();

/// Renders the Table 1 analogue for this host.
std::string format_platform_table(const PlatformInfo& p);

}  // namespace wfq::bench
