// Common scaffolding for segment-backed queues that are NOT the wait-free
// queue: a SegmentList plus the reclamation-policy plumbing every policy
// requires of its host — registered per-thread handles linked into a ring
// (so cleaners can advance idle threads' segment pointers), per-handle
// policy state, and the post-dequeue reclamation poll.
//
// The registration machinery itself (freelist, ring link, frontier
// exclusion) lives in HandleRegistry — shared with WFQueueCore, whose
// handles additionally hold helping state wired through the registry's
// at_link hook. This base contributes only what is segment-specific: the
// SegmentList, the cell resolution helpers and the reclamation poll.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/handle_registry.hpp"
#include "core/segment_list.hpp"
#include "memory/segment_reclaim.hpp"

namespace wfq {

template <class Cell, class Traits>
class SegmentQueueBase {
 public:
  using SegList = SegmentList<Cell, Traits>;
  using Segment = typename SegList::Segment;
  using Reclaim = typename Traits::template Reclaim<SegList>;
  static constexpr std::size_t kSegmentSize = SegList::kSegmentSize;

  /// Per-thread state: the segment pointers + ring link + policy block the
  /// ReclaimPolicy concept requires (memory/segment_reclaim.hpp).
  struct Handle {
    std::atomic<Segment*> tail{nullptr};
    std::atomic<Segment*> head{nullptr};
    std::atomic<Handle*> next{nullptr};  ///< ring of all handles
    typename Reclaim::PerHandle rcl;
    Segment* spare = nullptr;  ///< recycles failed list-extension allocations
    Handle* next_free = nullptr;
  };

  explicit SegmentQueueBase(int64_t max_garbage = 64)
      : max_garbage_(max_garbage), registry_(rcl_) {}

  SegmentQueueBase(const SegmentQueueBase&) = delete;
  SegmentQueueBase& operator=(const SegmentQueueBase&) = delete;

  ~SegmentQueueBase() {
    registry_.for_each([this](Handle* h) {
      if (h->spare != nullptr) {
        segs_.free_raw(h->spare);
        h->spare = nullptr;
      }
    });
  }

  Handle* register_handle() {
    return registry_.acquire(
        /*on_recycle=*/[](Handle*) {},
        /*pre_attach=*/[](Handle*, std::size_t) {},
        /*at_link=*/[this](Handle* h, Handle*) {
          // Inside the frontier lock: capture the current first segment,
          // exactly as WFQueueCore's at_link hook does.
          Segment* front = segs_.first(std::memory_order_relaxed);
          h->tail.store(front, std::memory_order_relaxed);
          h->head.store(front, std::memory_order_relaxed);
        });
  }

  void release_handle(Handle* h) { registry_.release(h); }

  /// RAII registration for one thread. Must not outlive the queue: the
  /// destructor returns the handle to the queue's freelist.
  class HandleGuard {
   public:
    explicit HandleGuard(SegmentQueueBase& q)
        : q_(&q), h_(q.register_handle()) {}
    ~HandleGuard() {
      if (h_ != nullptr) q_->release_handle(h_);
    }
    HandleGuard(HandleGuard&& o) noexcept : q_(o.q_), h_(o.h_) {
      o.h_ = nullptr;
    }
    HandleGuard(const HandleGuard&) = delete;
    HandleGuard& operator=(const HandleGuard&) = delete;
    Handle* get() const noexcept { return h_; }
    Handle* operator->() const noexcept { return h_; }

   private:
    SegmentQueueBase* q_;
    Handle* h_;
  };

  // ---- introspection (shared with WFQueueCore's accessors) -------------

  std::size_t live_segments() const { return segs_.live_segments(); }
  int64_t segments_outstanding() const { return segs_.outstanding(); }
  std::size_t peak_live_segments() const {
    return segs_.peak_live_segments();
  }
  Reclaim& reclaimer() noexcept { return rcl_; }
  const Reclaim& reclaimer() const noexcept { return rcl_; }

 protected:
  /// Resolve cell `idx` through the segment pointer `sp` (the handle's own
  /// head or tail), advancing it to the reached segment.
  Cell* cell_at(Handle* h, std::atomic<Segment*>& sp, uint64_t idx,
                const char* who) {
    Segment* s = sp.load(std::memory_order_acquire);
    Cell* c = segs_.find_cell(s, idx, h->spare, who);
    sp.store(s, std::memory_order_release);
    return c;
  }

  /// Batch variant of cell_at: resolve `count` consecutive cells starting
  /// at `first` with one segment walk (SegmentList::find_cell_range),
  /// advancing `sp` to the last cell's segment.
  void cells_at(Handle* h, std::atomic<Segment*>& sp, uint64_t first,
                std::size_t count, Cell** out, const char* who) {
    Segment* s = sp.load(std::memory_order_acquire);
    segs_.find_cell_range(s, first, count, out, h->spare, who);
    sp.store(s, std::memory_order_release);
  }

  /// Post-dequeue reclamation poll. `head_index`/`tail_index` are the
  /// queue's dequeue/enqueue indices H and T: the frontier must stay at or
  /// below segment(T / N) (tail-cap erratum; see
  /// WFQueueCore::poll_reclaim), and segment(H / N) feeds the policy's
  /// integer garbage-trigger estimate.
  void poll_reclaim(Handle* h, const std::atomic<uint64_t>& head_index,
                    const std::atomic<uint64_t>& tail_index) {
    const int64_t head_cap =
        int64_t(head_index.load(std::memory_order_seq_cst) / kSegmentSize);
    const int64_t tail_cap =
        int64_t(tail_index.load(std::memory_order_seq_cst) / kSegmentSize);
    (void)rcl_.poll(segs_, h, head_cap, tail_cap, max_garbage_);
  }

  SegList segs_;
  Reclaim rcl_;
  int64_t max_garbage_;

 private:
  HandleRegistry<Handle, Reclaim> registry_;
};

}  // namespace wfq
