// Long-duration soak runner for release validation — runs a randomized,
// checksummed mixed workload on the wait-free queue (and optionally any
// baseline) for a wall-clock budget, with periodic invariant audits:
// value conservation, per-producer FIFO spot checks, memory footprint,
// slow-path/probe statistics. On queues that expose the bulk API
// (enqueue_bulk / dequeue_bulk) a quarter of the operations are batches
// of random size (2-16) interleaved with the singles, so the prepaid-
// ticket paths soak alongside the ordinary ones.
//
// The default mode soaks the blocking layer (src/sync/): dedicated
// producers feed a BlockingWFQueue while a mixed population of consumers —
// half spinning (default escalation policy), half sleeping (park_only,
// futex from the first miss) — pops via pop_wait/pop_wait_bulk. Shutdown
// goes through close(): producers fail fast, every consumer drains until
// it observes kClosed, and the final accounting must balance EXACTLY —
// enqueued == dequeued with matching checksums, no "residue swept by the
// main thread" fudge, plus a post-close drain() that must come back empty.
//
//   $ ./soak [seconds] [threads] [queue]
//     queue in {block, wf, wf0, msq, lcrq, ccq, mutex, kp, sim};
//     default block
//
// Exit status 0 only if every audit passed. Not part of ctest (runtime is
// caller-chosen); CI runs it via the `soak` convenience target.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "common/random.hpp"
#include "core/wf_queue.hpp"
#include "sync/blocking_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct SoakResult {
  uint64_t enqueued = 0;
  uint64_t dequeued = 0;
  uint64_t checksum_in = 0;
  uint64_t checksum_out = 0;
  uint64_t fifo_violations = 0;
  bool ok() const {
    return enqueued == dequeued && checksum_in == checksum_out &&
           fifo_violations == 0;
  }
};

/// Payload: (producer << 40) | seq, as in the test utilities.
template <class Queue>
SoakResult soak(Queue& q, unsigned threads, double seconds) {
  std::atomic<bool> stop{false};
  std::vector<uint64_t> enq_count(threads, 0), deq_count(threads, 0);
  std::vector<uint64_t> sum_in(threads, 0), sum_out(threads, 0);
  std::vector<uint64_t> fifo_bad(threads, 0);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      constexpr bool kHasBulk =
          requires(Queue& qq, decltype(q.get_handle())& hh, uint64_t* p) {
            qq.enqueue_bulk(hh, p, std::size_t{1});
            qq.dequeue_bulk(hh, p, std::size_t{1});
          };
      constexpr std::size_t kMaxBatch = 16;
      wfq::Xorshift128Plus rng(t * 7919 + 13);
      // last sequence seen per producer, for the FIFO spot check.
      std::vector<uint64_t> last_seq(threads, 0);
      std::vector<uint64_t> batch(kMaxBatch);
      uint64_t seq = 0;
      auto record_out = [&](uint64_t v) {
        sum_out[t] += v;
        ++deq_count[t];
        unsigned prod = unsigned(v >> 40);
        uint64_t s = v & ((uint64_t{1} << 40) - 1);
        if (prod < threads) {
          if (s <= last_seq[prod]) ++fifo_bad[t];
          last_seq[prod] = s;
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const bool use_bulk = kHasBulk && rng.percent_chance(25);
        if (rng.percent_chance(50)) {
          if constexpr (kHasBulk) {
            if (use_bulk) {
              std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
              for (std::size_t j = 0; j < k; ++j) {
                uint64_t v = (uint64_t(t) << 40) | ++seq;
                batch[j] = v;
                sum_in[t] += v;
              }
              q.enqueue_bulk(h, batch.data(), k);
              enq_count[t] += k;
              continue;
            }
          }
          uint64_t v = (uint64_t(t) << 40) | ++seq;
          q.enqueue(h, v);
          sum_in[t] += v;
          ++enq_count[t];
        } else {
          if constexpr (kHasBulk) {
            if (use_bulk) {
              std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
              std::size_t got = q.dequeue_bulk(h, batch.data(), k);
              for (std::size_t j = 0; j < got; ++j) record_out(batch[j]);
              continue;
            }
          }
          auto v = q.dequeue(h);
          if (v.has_value()) record_out(*v);
        }
      }
    });
  }

  auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  unsigned audits = 0;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    ++audits;
  }
  stop.store(true);
  for (auto& w : workers) w.join();

  SoakResult r;
  for (unsigned t = 0; t < threads; ++t) {
    r.enqueued += enq_count[t];
    r.dequeued += deq_count[t];
    r.checksum_in += sum_in[t];
    r.checksum_out += sum_out[t];
    r.fifo_violations += fifo_bad[t];
  }
  // Drain the backlog.
  auto h = q.get_handle();
  for (;;) {
    auto v = q.dequeue(h);
    if (!v.has_value()) break;
    r.checksum_out += *v;
    ++r.dequeued;
  }
  std::printf("  audits=%u ops=%llu\n", audits,
              (unsigned long long)(r.enqueued + r.dequeued));
  return r;
}

// ---- blocking-layer soak ----------------------------------------------
//
// `threads` producers + `threads` consumers on a BlockingWFQueue.
// Consumers alternate between the spinning escalation policy and pure
// park_only sleeping, and a quarter of their pops are pop_wait_bulk
// batches. Producers stop at the deadline and join BEFORE close(), so
// close() observes a quiesced producer side; consumers then drain the
// residue through their ordinary pop loops until pop_wait reports
// kClosed. Unlike the raw-queue soak there is no main-thread sweep: the
// close()/drain() contract guarantees the per-consumer accounting already
// covers every in-flight item, and we assert exactly that.
int run_blocking(unsigned threads, double seconds) {
  using BQ = wfq::sync::BlockingWFQueue<uint64_t>;
  using wfq::sync::PopStatus;
  using wfq::sync::WaitPolicy;
  BQ q;

  std::atomic<bool> stop_producing{false};
  std::vector<uint64_t> enq_count(threads, 0), sum_in(threads, 0);
  std::vector<uint64_t> deq_count(threads, 0), sum_out(threads, 0);
  std::vector<uint64_t> fifo_bad(threads, 0), timeouts(threads, 0);
  constexpr std::size_t kMaxBatch = 16;

  std::printf("soaking BlockingWFQueue for %.1fs with %u producers + "
              "%u consumers (%u spinning, %u sleeping)...\n",
              seconds, threads, threads, (threads + 1) / 2, threads / 2);

  std::vector<std::thread> producers, consumers;
  for (unsigned t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      auto h = q.get_handle();
      wfq::Xorshift128Plus rng(t * 7919 + 13);
      std::vector<uint64_t> batch(kMaxBatch);
      uint64_t seq = 0;
      while (!stop_producing.load(std::memory_order_relaxed)) {
        if (rng.percent_chance(25)) {
          std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
          for (std::size_t j = 0; j < k; ++j) {
            batch[j] = (uint64_t(t) << 40) | ++seq;
          }
          if (q.push_bulk(h, batch.data(), k) != k) break;  // closed
          for (std::size_t j = 0; j < k; ++j) sum_in[t] += batch[j];
          enq_count[t] += k;
        } else {
          uint64_t v = (uint64_t(t) << 40) | ++seq;
          if (!q.push(h, v)) break;  // closed
          sum_in[t] += v;
          ++enq_count[t];
        }
      }
    });
  }
  for (unsigned t = 0; t < threads; ++t) {
    consumers.emplace_back([&, t] {
      auto h = q.get_handle();
      // Even consumers spin before parking; odd ones park immediately —
      // the mixed population the blocking layer has to wake correctly.
      const WaitPolicy policy =
          (t % 2 == 0) ? WaitPolicy{} : WaitPolicy::park_only();
      wfq::Xorshift128Plus rng(t * 104729 + 7);
      std::vector<uint64_t> last_seq(threads, 0);
      std::vector<uint64_t> batch(kMaxBatch);
      auto record_out = [&](uint64_t v) {
        sum_out[t] += v;
        ++deq_count[t];
        unsigned prod = unsigned(v >> 40);
        uint64_t s = v & ((uint64_t{1} << 40) - 1);
        if (prod < threads) {
          if (s <= last_seq[prod]) ++fifo_bad[t];
          last_seq[prod] = s;
        }
      };
      for (;;) {
        if (rng.percent_chance(25)) {
          std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
          std::size_t got = q.pop_wait_bulk(h, batch.data(), k, policy);
          if (got == 0) break;  // closed AND drained
          for (std::size_t j = 0; j < got; ++j) record_out(batch[j]);
        } else if (rng.percent_chance(10)) {
          // Timed pops exercise the deadline path under full load.
          uint64_t v = 0;
          PopStatus st =
              q.pop_wait_for(h, v, std::chrono::milliseconds(1), policy);
          if (st == PopStatus::kClosed) break;
          if (st == PopStatus::kTimeout) {
            ++timeouts[t];
            continue;
          }
          record_out(v);
        } else {
          uint64_t v = 0;
          if (q.pop_wait(h, v, policy) != PopStatus::kOk) break;
          record_out(v);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop_producing.store(true);
  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  // The termination witness: after every consumer observed kClosed, a
  // fresh drain() must find nothing — kClosed asserted bulk emptiness.
  auto h = q.get_handle();
  std::vector<uint64_t> residue;
  std::size_t leftover = q.drain(h, residue);

  SoakResult r;
  for (unsigned t = 0; t < threads; ++t) {
    r.enqueued += enq_count[t];
    r.dequeued += deq_count[t];
    r.checksum_in += sum_in[t];
    r.checksum_out += sum_out[t];
    r.fifo_violations += fifo_bad[t];
  }
  uint64_t total_timeouts = 0;
  for (auto v : timeouts) total_timeouts += v;
  auto st = q.stats();
  std::printf("  enq=%llu deq=%llu timeouts=%llu parks=%llu notifies=%llu "
              "spurious=%llu\n",
              (unsigned long long)r.enqueued, (unsigned long long)r.dequeued,
              (unsigned long long)total_timeouts,
              (unsigned long long)st.deq_parks.load(),
              (unsigned long long)st.notify_calls.load(),
              (unsigned long long)st.deq_spurious_wakeups.load());
  bool exact = r.enqueued == r.dequeued && leftover == 0;
  std::printf("  close()/drain() accounting %s (post-close residue=%zu), "
              "checksum %s, fifo spot checks %s\n",
              exact ? "EXACT" : "FAILED", leftover,
              r.checksum_in == r.checksum_out ? "OK" : "FAILED",
              r.fifo_violations == 0 ? "OK" : "FAILED");
  return (r.ok() && exact) ? 0 : 1;
}

template <class Queue, class... Args>
int run(const char* name, unsigned threads, double seconds, Args&&... args) {
  Queue q(std::forward<Args>(args)...);
  std::printf("soaking %s for %.1fs with %u threads...\n", name, seconds,
              threads);
  SoakResult r = soak(q, threads, seconds);
  std::printf("  enq=%llu deq=%llu checksum %s, fifo spot checks %s\n",
              (unsigned long long)r.enqueued, (unsigned long long)r.dequeued,
              r.checksum_in == r.checksum_out ? "OK" : "FAILED",
              r.fifo_violations == 0 ? "OK" : "FAILED");
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 10.0;
  unsigned threads =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 4;
  std::string which = argc > 3 ? argv[3] : "block";

  if (which == "block") {
    return run_blocking(threads, seconds);
  }
  if (which == "wf") {
    return run<wfq::WFQueue<uint64_t>>("WFQueue (WF-10)", threads, seconds);
  }
  if (which == "wf0") {
    wfq::WfConfig cfg;
    cfg.patience = 0;
    return run<wfq::WFQueue<uint64_t>>("WFQueue (WF-0)", threads, seconds,
                                       cfg);
  }
  if (which == "msq") {
    return run<wfq::baselines::MSQueue<uint64_t>>("MSQueue", threads, seconds);
  }
  if (which == "lcrq") {
    return run<wfq::baselines::LCRQ<uint64_t>>("LCRQ", threads, seconds);
  }
  if (which == "ccq") {
    return run<wfq::baselines::CCQueue<uint64_t>>("CCQueue", threads, seconds);
  }
  if (which == "mutex") {
    return run<wfq::baselines::MutexQueue<uint64_t>>("MutexQueue", threads,
                                                     seconds);
  }
  if (which == "kp") {
    return run<wfq::baselines::KPQueue<uint64_t>>("KPQueue", threads, seconds,
                                                  threads + 2);
  }
  if (which == "sim") {
    return run<wfq::baselines::SimQueue<uint64_t>>("SimQueue", threads,
                                                   seconds, threads + 2);
  }
  std::fprintf(stderr, "unknown queue '%s'\n", which.c_str());
  return 2;
}
