// Correctness oracle for the sharded queue's relaxed-FIFO contract.
//
// ShardedQueue<Q> (src/scale/sharded_queue.hpp) promises:
//
//   1. conservation — no loss, no duplication: dequeued values are exactly
//      a sub-multiset of enqueued values (equal, for a drained history);
//   2. lane integrity — a value enqueued on lane L is dequeued from lane L
//      (stealing moves consumers between lanes, never values);
//   3. per-lane linearizability — the projection of the history onto each
//      lane is a linearizable FIFO-queue history.
//
// Point 3 is where EMPTY needs care. ShardedQueue::dequeue returns nullopt
// only after a FULL sweep observed every lane empty within the call's
// interval, so a global EMPTY projects into EVERY lane's history as a
// DequeueEmpty of that lane — and the per-lane pattern checker
// (check_queue_history, the Henzinger-Sezgin-Vafeiadis characterization)
// then holds each lane to it. A sharded implementation that returned
// nullopt from a partial sweep would be caught here: the skipped lane's
// projection would contain an EMPTY while that lane was provably
// non-empty (bad pattern P4).
//
// Used by tests/scale/sharded_checker_test.cpp, the fuzz_checker's
// --backend sharded differential episodes, and (conservation + lane
// integrity, which need no timestamps) the soak's sharded accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/history.hpp"
#include "checker/queue_checker.hpp"

namespace wfq::lin {

/// One operation of a sharded history. `lane` is meaningful for kEnqueue
/// (home lane) and kDequeue (lane the value was taken from); a
/// kDequeueEmpty is global by contract and its lane field is ignored —
/// the projection inserts it into every lane.
struct LaneOp {
  Op op;
  std::size_t lane = 0;
};

/// Checks a complete sharded history (every operation finished, enqueued
/// values pairwise distinct) against the three-part contract above.
/// `shards` must be the lane count of the queue that produced the history.
inline CheckResult check_sharded_history(const std::vector<LaneOp>& ops,
                                         std::size_t shards) {
  // -- 1+2: conservation and lane integrity (value-matching passes) -------
  struct EnqInfo {
    std::size_t lane;
    bool seen = false;  // value already enqueued once (duplicate enqueue)
  };
  std::unordered_map<uint64_t, EnqInfo> enq_lane;
  for (const LaneOp& lo : ops) {
    if (lo.op.kind != OpKind::kEnqueue) continue;
    if (lo.lane >= shards) {
      return violation("enqueue of " + std::to_string(lo.op.value) +
                       " tagged with lane " + std::to_string(lo.lane) +
                       " >= shards " + std::to_string(shards));
    }
    auto [it, inserted] = enq_lane.emplace(lo.op.value, EnqInfo{lo.lane});
    if (!inserted) {
      return violation("value " + std::to_string(lo.op.value) +
                       " enqueued twice (oracle requires distinct values)");
    }
  }
  std::unordered_map<uint64_t, bool> dequeued;
  for (const LaneOp& lo : ops) {
    if (lo.op.kind != OpKind::kDequeue) continue;
    auto it = enq_lane.find(lo.op.value);
    if (it == enq_lane.end()) {
      return violation("dequeue returned " + std::to_string(lo.op.value) +
                       ", which was never enqueued");
    }
    if (it->second.lane != lo.lane) {
      return violation("value " + std::to_string(lo.op.value) +
                       " enqueued on lane " +
                       std::to_string(it->second.lane) +
                       " but dequeued from lane " + std::to_string(lo.lane));
    }
    auto [dit, inserted] = dequeued.emplace(lo.op.value, true);
    if (!inserted) {
      return violation("value " + std::to_string(lo.op.value) +
                       " dequeued twice");
    }
  }

  // -- 3: per-lane linearizability, EMPTY projected everywhere ------------
  for (std::size_t lane = 0; lane < shards; ++lane) {
    std::vector<Op> proj;
    for (const LaneOp& lo : ops) {
      if (lo.op.kind == OpKind::kDequeueEmpty || lo.lane == lane) {
        proj.push_back(lo.op);
      }
    }
    CheckResult res = check_queue_history(proj);
    if (!res.linearizable) {
      return violation("lane " + std::to_string(lane) +
                       " projection not linearizable: " + res.violation);
    }
  }
  return CheckResult{};
}

/// Drained-history strengthening: additionally require every enqueued
/// value to have been dequeued (the soak's close()/drain() accounting).
inline CheckResult check_sharded_history_drained(
    const std::vector<LaneOp>& ops, std::size_t shards) {
  CheckResult base = check_sharded_history(ops, shards);
  if (!base.linearizable) return base;
  std::unordered_map<uint64_t, int> balance;
  for (const LaneOp& lo : ops) {
    if (lo.op.kind == OpKind::kEnqueue) ++balance[lo.op.value];
    if (lo.op.kind == OpKind::kDequeue) --balance[lo.op.value];
  }
  for (const auto& [v, n] : balance) {
    if (n != 0) {
      return violation("value " + std::to_string(v) +
                       " enqueued but never dequeued in a drained history");
    }
  }
  return CheckResult{};
}

}  // namespace wfq::lin
