// Tests for the C bindings (semantics; the pure-C compile/link story is
// covered by examples/capi_demo.c, which is built as C).
#include "capi/wfq_c.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

TEST(CApi, CreateDestroy) {
  wfq_queue_t* q = wfq_create_default();
  ASSERT_NE(q, nullptr);
  wfq_destroy(q);
}

TEST(CApi, BasicRoundTrip) {
  wfq_queue_t* q = wfq_create(10, 64);
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 42), 0);
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(wfq_dequeue(h, &out), 0);  // empty
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, RejectsReservedValues) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 0), -1);
  EXPECT_EQ(wfq_enqueue(h, ~uint64_t{0}), -1);
  EXPECT_EQ(wfq_enqueue(h, ~uint64_t{0} - 1), -1);
  EXPECT_EQ(wfq_enqueue(h, 1), 0);
  uint64_t out;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 1u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, FifoOrder) {
  wfq_queue_t* q = wfq_create(0, 8);  // WF-0 config through the C surface
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 1000; ++i) EXPECT_EQ(wfq_enqueue(h, i), 0);
  for (uint64_t i = 1; i <= 1000; ++i) {
    uint64_t out = 0;
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
    ASSERT_EQ(out, i);
  }
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, ApproxSizeAndStats) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 10; ++i) wfq_enqueue(h, i);
  EXPECT_EQ(wfq_approx_size(q), 10u);
  uint64_t out;
  wfq_dequeue(h, &out);
  wfq_dequeue(h, &out);
  wfq_dequeue(h, &out);  // 3 dequeues
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.enqueues, 10u);
  EXPECT_EQ(s.dequeues, 3u);
  EXPECT_EQ(s.empty_dequeues, 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, BulkRoundTrip) {
  wfq_queue_t* q = wfq_create(10, 64);
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t vals[100], out[100];
  for (uint64_t i = 0; i < 100; ++i) vals[i] = i + 1;
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 100), 0);  // crosses segments (64)
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 40), 40u);
  for (uint64_t i = 0; i < 40; ++i) ASSERT_EQ(out[i], i + 1);
  // Short return == queue observed empty during the call.
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 100), 60u);
  for (uint64_t i = 0; i < 60; ++i) ASSERT_EQ(out[i], i + 41);
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 8), 0u);
  // count == 0 is a no-op on both sides.
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 0), 0);
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 0), 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, BulkRejectsReservedValuesAtomically) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  // One reserved value anywhere in the batch rejects the whole batch
  // before anything is enqueued.
  uint64_t bad[3] = {1, 0, 3};
  EXPECT_EQ(wfq_enqueue_bulk(h, bad, 3), -1);
  uint64_t bad2[3] = {1, 2, ~uint64_t{0}};
  EXPECT_EQ(wfq_enqueue_bulk(h, bad2, 3), -1);
  uint64_t out;
  EXPECT_EQ(wfq_dequeue(h, &out), 0);  // nothing slipped through
  uint64_t good[3] = {1, 2, 3};
  EXPECT_EQ(wfq_enqueue_bulk(h, good, 3), 0);
  EXPECT_EQ(wfq_dequeue_bulk(h, &out, 1), 1u);
  EXPECT_EQ(out, 1u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, CloseFailsProducersAndDrainsConsumers) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_is_closed(q), 0);
  EXPECT_EQ(wfq_enqueue(h, 1), 0);
  EXPECT_EQ(wfq_enqueue(h, 2), 0);
  wfq_close(q);
  EXPECT_EQ(wfq_is_closed(q), 1);
  EXPECT_EQ(wfq_enqueue(h, 3), -2);       // closed beats reserved-OK values
  uint64_t vals[2] = {4, 5};
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 2), -2);
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 0), -2);  // degenerate batch, closed
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 1);  // residue drains first
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 1);
  EXPECT_EQ(out, 2u);
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 0);  // closed-and-drained
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 1000000), -1);
  wfq_close(q);  // idempotent
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, TimedDequeueTimesOutOnOpenEmptyQueue) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 2000000), 0);  // 2 ms, still open
  EXPECT_EQ(wfq_enqueue(h, 9), 0);
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 2000000), 1);
  EXPECT_EQ(out, 9u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, DequeueWaitBlocksUntilDelivery) {
  wfq_queue_t* q = wfq_create_default();
  std::thread consumer([&] {
    wfq_handle_t* h = wfq_handle_acquire(q);
    uint64_t out = 0, sum = 0;
    while (wfq_dequeue_wait(h, &out) == 1) sum += out;
    EXPECT_EQ(sum, 1u + 2u + 3u);
    wfq_handle_release(h);
  });
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ(wfq_enqueue(h, v), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wfq_close(q);
  consumer.join();
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.enqueues, 3u);
  // dequeues counts attempts (empties included), so >= the 3 deliveries.
  EXPECT_GE(s.dequeues, 3u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, NoWaiterWorkloadIssuesNoNotifies) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 1000; ++i) ASSERT_EQ(wfq_enqueue(h, i), 0);
  uint64_t out;
  while (wfq_dequeue(h, &out) == 1) {
  }
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.notify_calls, 0u);  // nobody parked => producers never woke
  EXPECT_EQ(s.deq_parks, 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

// ---- extended stats (wfq_get_stats_ex) --------------------------------
//
// The ex struct and the internal OpStats both expand the X-macro table in
// wfq_stats_fields.h; these tests re-expand it here, so a counter added to
// the table automatically joins the round-trip below — the drift that
// motivated the table (PR-2..4 counters silently missing from wfq_stats_t)
// cannot recur without breaking this file's compile or assertions.

std::map<std::string, uint64_t> ex_fields(const wfq_queue_t* q) {
  wfq_stats_ex_t ex;
  wfq_get_stats_ex(q, &ex);
  std::map<std::string, uint64_t> m;
#define WFQ_STATS_PUT(name) m[#name] = ex.name;
  WFQ_STATS_FIELDS(WFQ_STATS_PUT, WFQ_STATS_PUT)
#undef WFQ_STATS_PUT
  return m;
}

constexpr std::size_t kExFields = 0
#define WFQ_STATS_ONE(name) +1
    WFQ_STATS_FIELDS(WFQ_STATS_ONE, WFQ_STATS_ONE)
#undef WFQ_STATS_ONE
    ;
static_assert(sizeof(wfq_stats_ex_t) == kExFields * sizeof(uint64_t),
              "wfq_stats_ex_t must be exactly the X-macro table");

TEST(CApiStatsEx, EveryTableFieldRoundTripsAndLegacyAgrees) {
  // patience 0 + max_garbage 1: every single op takes the slow path and
  // reclamation runs eagerly, so the slow/cleanup counters all move.
  wfq_queue_t* q = wfq_create(0, 1);
  wfq_handle_t* h = wfq_handle_acquire(q);
  constexpr uint64_t kOps = 3000;  // crosses several segments
  uint64_t out;
  // Each round: an empty dequeue seals a cell, so the next enqueue's single
  // fast-path attempt (patience 0) deterministically falls back to
  // enq_slow; the final dequeue retrieves the value.
  for (uint64_t i = 1; i <= kOps; ++i) {
    EXPECT_EQ(wfq_dequeue(h, &out), 0);
    ASSERT_EQ(wfq_enqueue(h, i), 0);
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
    ASSERT_EQ(out, i);
  }
  uint64_t vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(wfq_enqueue_bulk(h, vals, 8), 0);
  ASSERT_EQ(wfq_dequeue_bulk(h, vals, 8), 8u);

  auto m = ex_fields(q);
  ASSERT_EQ(m.size(), kExFields);  // distinct names, none collapsed

  // Counters this workload must have bumped. (deq_slow needs engineered
  // contention; its deterministic coverage lives in the core obs tests.)
  for (const char* key :
       {"enq_slow", "deq_empty", "enq_bulk_batches", "enq_bulk_fast",
        "deq_bulk_batches", "deq_bulk_fast", "cleanups", "segments_freed",
        "enq_probes", "deq_probes", "max_enq_probes", "max_deq_probes"}) {
    EXPECT_GT(m.at(key), 0u) << key;
  }
  // Fault-layer counters exist in the struct but stay zero without an
  // injector or OOM pressure.
  for (const char* key :
       {"injected_stalls", "injected_crashes", "adopted_handles",
        "orphan_drops", "alloc_failures", "reserve_pool_hits",
        "oom_rescues"}) {
    EXPECT_EQ(m.at(key), 0u) << key;
  }

  // The legacy struct is a strict projection of the table.
  wfq_stats_t legacy;
  wfq_get_stats(q, &legacy);
  EXPECT_EQ(legacy.enqueues,
            m.at("enq_fast") + m.at("enq_slow") + m.at("enq_bulk_fast"));
  EXPECT_EQ(legacy.dequeues,
            m.at("deq_fast") + m.at("deq_slow") + m.at("deq_bulk_fast"));
  EXPECT_EQ(legacy.slow_enqueues, m.at("enq_slow"));
  EXPECT_EQ(legacy.slow_dequeues, m.at("deq_slow"));
  EXPECT_EQ(legacy.empty_dequeues, m.at("deq_empty"));
  EXPECT_EQ(legacy.segments_freed, m.at("segments_freed"));
  EXPECT_EQ(legacy.deq_parks, m.at("deq_parks"));
  EXPECT_EQ(legacy.notify_calls, m.at("notify_calls"));
  EXPECT_EQ(legacy.adopted_handles, m.at("adopted_handles"));
  EXPECT_EQ(legacy.oom_rescues, m.at("oom_rescues"));

  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApiStatsEx, BlockingCountersMoveThroughTheCApi) {
  wfq_queue_t* q = wfq_create_default();
  std::thread consumer([&] {
    wfq_handle_t* h = wfq_handle_acquire(q);
    uint64_t out = 0;
    EXPECT_EQ(wfq_dequeue_wait(h, &out), 1);  // parks: nothing for 50 ms
    EXPECT_EQ(out, 7u);
    wfq_handle_release(h);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 7), 0);
  consumer.join();
  auto m = ex_fields(q);
  EXPECT_GE(m.at("deq_parks"), 1u);
  EXPECT_GE(m.at("notify_calls"), 1u);
  // Exactly one enqueue happened; whether it was fast or slow depends on
  // how many cells the consumer's pre-park spin sealed.
  EXPECT_EQ(m.at("enq_fast") + m.at("enq_slow"), 1u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApiTrace, DumpWritesChromeTraceJson) {
  wfq_queue_t* q = wfq_create(0, 64);  // patience 0
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t out;
  // Empty-dequeue/enqueue rounds: each seal forces a slow enqueue, so the
  // trace has kEnqSlow events to export.
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(wfq_dequeue(h, &out), 0);
    ASSERT_EQ(wfq_enqueue(h, i), 0);
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
  }

  const std::string path = ::testing::TempDir() + "wfq_capi_trace.json";
  std::remove(path.c_str());
  EXPECT_EQ(wfq_trace_dump(q, path.c_str()), 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"obs:enq_slow\""), std::string::npos);
  EXPECT_NE(body.find("\"totals\""), std::string::npos);

  EXPECT_EQ(wfq_trace_dump(q, nullptr), -1);
  EXPECT_EQ(wfq_trace_dump(q, "/nonexistent-dir/trace.json"), -1);
  std::remove(path.c_str());
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, ConcurrentConservation) {
  wfq_queue_t* q = wfq_create_default();
  constexpr unsigned kThreads = 6;
  constexpr uint64_t kOps = 5000;
  std::vector<uint64_t> sums(kThreads, 0);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      wfq_handle_t* h = wfq_handle_acquire(q);
      uint64_t in = 0, out_sum = 0, out;
      for (uint64_t i = 1; i <= kOps; ++i) {
        uint64_t v = (uint64_t(t) << 40) | i;
        wfq_enqueue(h, v);
        in += v;
        if (wfq_dequeue(h, &out) == 1) out_sum += out;
      }
      sums[t] = in - out_sum;  // residue this thread left in the queue
      wfq_handle_release(h);
    });
  }
  for (auto& t : ts) t.join();
  uint64_t residue = 0;
  for (uint64_t s : sums) residue += s;
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t drained = 0, out;
  while (wfq_dequeue(h, &out) == 1) drained += out;
  wfq_handle_release(h);
  EXPECT_EQ(residue, drained);
  wfq_destroy(q);
}

// ---- Backend selector (wfq_create_ex) ------------------------------------

class CApiBackends : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Rings, CApiBackends,
                         ::testing::Values(WFQ_BACKEND_SCQ, WFQ_BACKEND_WCQ),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return i.param == WFQ_BACKEND_SCQ ? "scq" : "wcq";
                         });

TEST_P(CApiBackends, BoundedContractThroughTheCApi) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = GetParam();
  opt.capacity = 8;
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(wfq_capacity(q), 8u);

  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 8; ++i) EXPECT_EQ(wfq_enqueue(h, i), WFQ_OK);
  EXPECT_EQ(wfq_enqueue(h, 99), WFQ_E_FULL);  // at capacity: backpressure
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(wfq_enqueue(h, 100), WFQ_OK);  // freed slot reusable
  // FIFO drain of the remainder.
  for (uint64_t want = 2; want <= 8; ++want) {
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
    EXPECT_EQ(out, want);
  }
  ASSERT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 100u);
  EXPECT_EQ(wfq_dequeue(h, &out), 0);  // empty
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST_P(CApiBackends, EnqueueWaitParksUntilSpaceFrees) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = GetParam();
  opt.capacity = 8;
  wfq_queue_t* q = wfq_create_ex(&opt);
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 8; ++i) ASSERT_EQ(wfq_enqueue(h, i), WFQ_OK);

  std::thread producer([&] {
    wfq_handle_t* ph = wfq_handle_acquire(q);
    // Full: must block until the main thread dequeues, then succeed.
    EXPECT_EQ(wfq_enqueue_wait(ph, 999), WFQ_OK);
    wfq_handle_release(ph);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  producer.join();

  // Everything conserved: 2..8 then the parked producer's 999.
  uint64_t sum = 0, n = 0;
  while (wfq_dequeue(h, &out) == 1) {
    sum += out;
    ++n;
  }
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(sum, uint64_t(2 + 3 + 4 + 5 + 6 + 7 + 8 + 999));
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST_P(CApiBackends, CloseWakesParkedProducer) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = GetParam();
  opt.capacity = 8;
  wfq_queue_t* q = wfq_create_ex(&opt);
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 8; ++i) ASSERT_EQ(wfq_enqueue(h, i), WFQ_OK);

  std::thread producer([&] {
    wfq_handle_t* ph = wfq_handle_acquire(q);
    EXPECT_EQ(wfq_enqueue_wait(ph, 999), WFQ_E_CLOSED);
    wfq_handle_release(ph);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  wfq_close(q);
  producer.join();

  // The close never loses the resident items: all 8 drain, then closed.
  uint64_t out = 0, n = 0;
  while (wfq_dequeue_wait(h, &out) == 1) ++n;
  EXPECT_EQ(n, 8u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApiBackends, UnknownBackendRejected) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = 42;
  EXPECT_EQ(wfq_create_ex(&opt), nullptr);
}

TEST(CApiBackends, WfBackendReportsUnbounded) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(wfq_capacity(q), 0u);  // 0 = unbounded
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 7), WFQ_OK);  // never WFQ_E_FULL
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  wfq_handle_release(h);
  wfq_destroy(q);
}

// ---- Sharded backend (PR 8) ----------------------------------------------

TEST(CApiSharded, PerHandleFifoAndConservation) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SHARDED;
  opt.shards = 4;
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(wfq_capacity(q), 0u);  // lanes are unbounded WF queues

  // One handle: the relaxed contract still promises strict FIFO (a single
  // handle's traffic never leaves its home lane).
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 100; ++i) EXPECT_EQ(wfq_enqueue(h, i), WFQ_OK);
  uint64_t out = 0;
  for (uint64_t i = 1; i <= 100; ++i) {
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(wfq_dequeue(h, &out), 0);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApiSharded, StealCountersSurfaceInStatsEx) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SHARDED;
  opt.shards = 4;
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  // Producer and consumer handles land on different lanes (round-robin),
  // so every value below crosses lanes via the steal sweep.
  wfq_handle_t* producer = wfq_handle_acquire(q);
  wfq_handle_t* consumer = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 50; ++i) {
    ASSERT_EQ(wfq_enqueue(producer, i), WFQ_OK);
  }
  uint64_t out = 0, got = 0;
  while (wfq_dequeue(consumer, &out) == 1) ++got;
  EXPECT_EQ(got, 50u);
  wfq_stats_ex_t s;
  wfq_get_stats_ex(q, &s);
  EXPECT_EQ(s.steals, 50u);
  EXPECT_GE(s.steal_attempts, s.steals);
  wfq_handle_release(producer);
  wfq_handle_release(consumer);
  wfq_destroy(q);
}

TEST(CApiSharded, CloseDrainsAcrossLanes) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SHARDED;
  opt.shards = 4;
  opt.numa_mode = WFQ_NUMA_INTERLEAVE;  // exercised even on a UMA host
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);

  constexpr unsigned kProducers = 4;
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      wfq_handle_t* h = wfq_handle_acquire(q);
      for (uint64_t i = 1; i <= 200; ++i) {
        EXPECT_EQ(wfq_enqueue(h, (uint64_t(p + 1) << 32) | i), WFQ_OK);
      }
      wfq_handle_release(h);
    });
  }
  for (auto& t : ts) t.join();
  wfq_close(q);
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 7), WFQ_E_CLOSED);
  std::map<uint64_t, int> seen;
  uint64_t out = 0;
  while (wfq_dequeue_wait(h, &out) == 1) seen[out]++;
  EXPECT_EQ(seen.size(), std::size_t(kProducers) * 200);
  for (auto& [v, n] : seen) EXPECT_EQ(n, 1) << v;
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApiSharded, AutoShardsAndBadNumaModeRejected) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SHARDED;  // shards = 0: auto-resolved
  wfq_queue_t* q = wfq_create_ex(&opt);
  ASSERT_NE(q, nullptr);
  wfq_destroy(q);

  wfq_options_init(&opt);
  opt.backend = WFQ_BACKEND_SHARDED;
  opt.numa_mode = 99;
  EXPECT_EQ(wfq_create_ex(&opt), nullptr);
}

}  // namespace
