
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/wf_queue_exhaustive_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_exhaustive_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_interleave_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_interleave_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_interleave_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_invariants_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_invariants_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_mpmc_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_mpmc_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_mpmc_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_reclamation_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_reclamation_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_reclamation_test.cpp.o.d"
  "/root/repo/tests/core/wf_queue_slowpath_test.cpp" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_slowpath_test.cpp.o" "gcc" "tests/CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_slowpath_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
