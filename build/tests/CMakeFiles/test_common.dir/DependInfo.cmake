
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/align_test.cpp" "tests/CMakeFiles/test_common.dir/common/align_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/align_test.cpp.o.d"
  "/root/repo/tests/common/atomics_test.cpp" "tests/CMakeFiles/test_common.dir/common/atomics_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/atomics_test.cpp.o.d"
  "/root/repo/tests/common/cpu_test.cpp" "tests/CMakeFiles/test_common.dir/common/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/cpu_test.cpp.o.d"
  "/root/repo/tests/common/packed_state_test.cpp" "tests/CMakeFiles/test_common.dir/common/packed_state_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/packed_state_test.cpp.o.d"
  "/root/repo/tests/common/random_test.cpp" "tests/CMakeFiles/test_common.dir/common/random_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/random_test.cpp.o.d"
  "/root/repo/tests/common/version_test.cpp" "tests/CMakeFiles/test_common.dir/common/version_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/version_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
