// Per-operation latency measurement — the quantitative face of the paper's
// "fast and predictable performance" motivation (abstract, §1): wait-free
// progress shows up not in mean throughput but in the latency tail, where
// blocking designs stall behind a descheduled lock holder or combiner.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "harness/barrier.hpp"

namespace wfq::bench {

/// Order statistics of a latency sample set, in nanoseconds.
struct LatencyResult {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
};

/// Nearest-rank percentile of a sorted sample vector; p in [0, 1].
inline uint64_t percentile_sorted(const std::vector<uint64_t>& sorted,
                                  double p) {
  if (sorted.empty()) return 0;
  double idx = p * double(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(idx)];
}

inline LatencyResult summarize_latencies(std::vector<uint64_t> samples) {
  LatencyResult r;
  r.count = samples.size();
  if (samples.empty()) return r;
  std::sort(samples.begin(), samples.end());
  r.p50 = percentile_sorted(samples, 0.50);
  r.p90 = percentile_sorted(samples, 0.90);
  r.p99 = percentile_sorted(samples, 0.99);
  r.p999 = percentile_sorted(samples, 0.999);
  r.max = samples.back();
  return r;
}

/// Runs the enqueue-dequeue pairs workload with every individual operation
/// timed; returns the pooled distribution. The clock read adds ~20-40 ns
/// per operation on common hosts — identical for every queue, so relative
/// tails remain comparable.
template <class Queue>
LatencyResult measure_op_latency(Queue& q, unsigned threads,
                                 uint64_t pairs_per_thread) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads);
  std::vector<std::vector<uint64_t>> samples(threads);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      auto& mine = samples[t];
      mine.reserve(2 * pairs_per_thread);
      start.arrive_and_wait();
      for (uint64_t i = 0; i < pairs_per_thread; ++i) {
        auto t0 = Clock::now();
        q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
        auto t1 = Clock::now();
        (void)q.dequeue(h);
        auto t2 = Clock::now();
        mine.push_back(uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        mine.push_back(uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
                .count()));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return summarize_latencies(std::move(all));
}

}  // namespace wfq::bench
