// Long-running cross-validation fuzzer for the linearizability checkers:
// random small FIFO histories (valid and broken) are judged by both the
// polynomial bad-pattern checker and the brute-force definitional search;
// any disagreement is printed with a replayable seed and fails the run.
// The ctest fuzz (tests/checker/cross_validation_test.cpp) runs a bounded
// slice of this; the tool runs for as long as you give it.
//
//   $ ./fuzz_checker [seconds] [max_ops]
//     synthetic mode (default): generated histories, valid and broken
//   $ ./fuzz_checker --backend {wf,faa,obstruction,scq,wcq,sharded}
//                    [seconds] [max_ops]
//     live mode: tiny concurrent episodes (2 producers + 2 consumers,
//     <= max_ops operations so the brute-force search stays feasible) are
//     recorded from the chosen backend through the ConcurrentQueue concept
//     seam. Both checkers must agree on every recorded history, and for
//     the real FIFO backends the history must also BE linearizable — a
//     rejection is a queue bug, printed with its replayable episode seed.
//     `faa` is the §5 ticket microbenchmark: it fabricates dequeue values,
//     so its histories are mostly rejected (P1/P2/P4) — live-mode faa
//     exists to drive the checkers' rejection paths with execution-shaped
//     timestamps, and checker agreement is the whole assertion.
//     `sharded` is a two-part differential for the relaxed-FIFO layer:
//     first, a 1-lane ShardedQueue<WFQueue> runs the ordinary live mode
//     (one lane = strict FIFO, so both generic checkers must accept every
//     episode); then 2-lane episodes are recorded with lane tags (handle
//     homes for enqueues, dequeue_traced for dequeues) and judged by the
//     sharded oracle — per-lane linearizable with globally-projected
//     EMPTYs, drained-exact. Episodes whose *global* history the strict
//     checker rejects are counted and reported: those are the live
//     witnesses that the relaxation is real, not vacuous.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/faaq.hpp"
#include "checker/brute_checker.hpp"
#include "checker/history.hpp"
#include "checker/queue_checker.hpp"
#include "checker/sharded_checker.hpp"
#include "common/random.hpp"
#include "core/obstruction_queue.hpp"
#include "core/queue_concepts.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"

namespace {

using namespace wfq;
using namespace wfq::lin;

Op enq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kEnqueue, 0, v, t0, t1};
}
Op deq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeue, 0, v, t0, t1};
}
Op deq_empty(uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeueEmpty, 0, 0, t0, t1};
}

/// Same generator as the ctest fuzz: distinct event timestamps (matching
/// the recorder's guarantee), enqueue values distinct, dequeues drawn from
/// the pool with occasional duplicates, some EMPTYs. About a third of the
/// ops are emitted as *batches*: 2-3 same-kind ops whose intervals are
/// back-to-back and strictly ordered (2b timestamps drawn, sorted, then
/// paired in order) — the shape a bulk enqueue/dequeue produces, since a
/// batch linearizes as consecutive per-item operations.
std::vector<Op> random_history(Xorshift128Plus& rng, unsigned max_ops) {
  unsigned n_enq = 1 + unsigned(rng.next_below(max_ops / 2));
  unsigned n_deq = unsigned(rng.next_below(max_ops / 2 + 1));
  unsigned n = n_enq + n_deq;
  std::vector<uint64_t> ts(2 * n);
  for (unsigned i = 0; i < 2 * n; ++i) ts[i] = i;
  for (unsigned i = 2 * n - 1; i > 0; --i) {
    std::swap(ts[i], ts[rng.next_below(i + 1)]);
  }
  unsigned next_ts = 0;
  auto interval = [&](uint64_t& t0, uint64_t& t1) {
    t0 = ts[next_ts++];
    t1 = ts[next_ts++];
    if (t0 > t1) std::swap(t0, t1);
  };
  // Draw 2b timestamps, sort, pair in order: b ordered, non-overlapping
  // intervals for one batch.
  auto batch_intervals = [&](unsigned b) {
    std::vector<uint64_t> s(ts.begin() + next_ts, ts.begin() + next_ts + 2 * b);
    next_ts += 2 * b;
    std::sort(s.begin(), s.end());
    return s;
  };
  std::vector<Op> h;
  std::vector<uint64_t> values;
  for (unsigned i = 0; i < n_enq;) {
    unsigned b = 1;
    if (n_enq - i >= 2 && rng.next_below(3) == 0) {
      b = 2 + unsigned(rng.next_below(std::min(2u, n_enq - i - 1)));
    }
    if (b == 1) {
      uint64_t t0, t1;
      interval(t0, t1);
      h.push_back(enq(i + 1, t0, t1));
      values.push_back(++i);
    } else {
      auto s = batch_intervals(b);
      for (unsigned j = 0; j < b; ++j) {
        h.push_back(enq(i + 1, s[2 * j], s[2 * j + 1]));
        values.push_back(++i);
      }
    }
  }
  for (unsigned i = 0; i < n_deq;) {
    unsigned b = 1;
    if (n_deq - i >= 2 && rng.next_below(3) == 0) {
      b = 2 + unsigned(rng.next_below(std::min(2u, n_deq - i - 1)));
    }
    if (b == 1) {
      uint64_t t0, t1;
      interval(t0, t1);
      if (rng.next_below(4) == 0) {
        h.push_back(deq_empty(t0, t1));
      } else {
        h.push_back(deq(values[rng.next_below(values.size())], t0, t1));
      }
      ++i;
    } else {
      auto s = batch_intervals(b);
      for (unsigned j = 0; j < b; ++j, ++i) {
        h.push_back(
            deq(values[rng.next_below(values.size())], s[2 * j], s[2 * j + 1]));
      }
    }
  }
  return h;
}

void dump(const std::vector<Op>& h) {
  for (const auto& op : h) {
    const char* k = op.kind == OpKind::kEnqueue    ? "ENQ"
                    : op.kind == OpKind::kDequeue ? "DEQ"
                                                  : "DEQ_EMPTY";
    std::printf("  %s v=%llu [%llu,%llu]\n", k,
                (unsigned long long)op.value,
                (unsigned long long)op.invoke_ts,
                (unsigned long long)op.respond_ts);
  }
}

/// Live mode: record real concurrent episodes from backend Q and hold the
/// two checkers to agreement (plus linearizability when `expect_fifo`).
/// One episode = fresh queue, 2 producers with distinct tagged values and
/// 2 consumers with a bounded attempt budget, all through the concept-
/// checked enqueue/dequeue seam — the recorder cannot tell backends apart.
template <class Q, class... Args>
int run_live(const char* name, bool expect_fifo, double seconds,
             unsigned max_ops, Args... qargs) {
  static_assert(ConcurrentQueue<Q>);
  std::printf("fuzzing live %s histories for %.1fs (episodes of <= %u ops, "
              "2 producers + 2 consumers)...\n",
              name, seconds, max_ops);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  uint64_t seed = 1;
  uint64_t episodes = 0, accepted = 0, rejected = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Xorshift128Plus rng(seed);
    unsigned n_enq = 1 + unsigned(rng.next_below(std::max(1u, max_ops / 2)));
    unsigned n_deq =
        1 + unsigned(rng.next_below(std::max(1u, max_ops - n_enq)));
    Q q(qargs...);
    HistoryRecorder rec;
    HistoryRecorder::ThreadLog* logs[4];
    for (unsigned t = 0; t < 4; ++t) logs[t] = rec.make_log(t);
    const unsigned enq_share[2] = {n_enq / 2, n_enq - n_enq / 2};
    const unsigned deq_share[2] = {n_deq / 2, n_deq - n_deq / 2};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < 2; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        for (unsigned i = 1; i <= enq_share[p]; ++i) {
          recorded_enqueue(q, h, logs[p], (uint64_t(p + 1) << 40) | i);
        }
      });
    }
    for (unsigned c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        auto h = q.get_handle();
        for (unsigned i = 0; i < deq_share[c]; ++i) {
          (void)recorded_dequeue(q, h, logs[2 + c]);
          if (i % 2 == c) std::this_thread::yield();
        }
      });
    }
    for (auto& t : threads) t.join();
    auto h = rec.collect();
    auto pattern = wfq::lin::check_queue_history(h);
    bool brute = wfq::lin::brute_force_linearizable(h);
    ++episodes;
    (pattern.linearizable ? accepted : rejected)++;
    if (pattern.linearizable != brute) {
      std::printf("DISAGREEMENT at episode seed=%llu: pattern says %s, "
                  "brute force says %s\n",
                  (unsigned long long)seed,
                  pattern.linearizable ? "linearizable"
                                       : pattern.violation.c_str(),
                  brute ? "linearizable" : "NOT linearizable");
      dump(h);
      return 1;
    }
    if (expect_fifo && !pattern.linearizable) {
      std::printf("NOT LINEARIZABLE at episode seed=%llu on %s: %s\n",
                  (unsigned long long)seed, name,
                  pattern.violation.c_str());
      dump(h);
      return 1;
    }
    ++seed;
  }
  std::printf("fuzz_checker: %llu live %s episodes (%llu linearizable, "
              "%llu rejected) — checkers agree%s\n",
              (unsigned long long)episodes, name,
              (unsigned long long)accepted, (unsigned long long)rejected,
              expect_fifo ? ", all histories linearizable" : "");
  return 0;
}

void dump_lanes(const std::vector<LaneOp>& h) {
  for (const auto& lo : h) {
    const char* k = lo.op.kind == OpKind::kEnqueue    ? "ENQ"
                    : lo.op.kind == OpKind::kDequeue ? "DEQ"
                                                     : "DEQ_EMPTY";
    std::printf("  %s v=%llu lane=%zu [%llu,%llu]\n", k,
                (unsigned long long)lo.op.value, lo.lane,
                (unsigned long long)lo.op.invoke_ts,
                (unsigned long long)lo.op.respond_ts);
  }
}

/// Live sharded mode, multi-lane half: 2-lane episodes with every op lane-
/// tagged (enqueues by the producing handle's home, dequeues by
/// dequeue_traced), drained single-threaded at the end, and judged by the
/// sharded oracle. Any rejection is a queue bug with a replayable seed.
/// The strict global checker runs alongside purely as a witness counter:
/// episodes it rejects are the executions where the relaxed contract
/// actually diverges from single-queue FIFO.
int run_live_sharded(double seconds, unsigned max_ops) {
  using SQ = scale::ShardedQueue<WFQueue<uint64_t>>;
  constexpr std::size_t kShards = 2;
  constexpr uint64_t kDeqTag = uint64_t(1) << 63;
  std::printf("fuzzing live ShardedQueue x%zu lane-tagged episodes for "
              "%.1fs (<= %u ops, 2 producers + 2 consumers)...\n",
              kShards, seconds, max_ops);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  uint64_t seed = 1;
  uint64_t episodes = 0, relaxed_witnesses = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Xorshift128Plus rng(seed);
    unsigned n_enq = 1 + unsigned(rng.next_below(std::max(1u, max_ops / 2)));
    unsigned n_deq =
        1 + unsigned(rng.next_below(std::max(1u, max_ops - n_enq)));
    SQ q(ShardConfig{kShards}, WfConfig{});
    HistoryRecorder rec;
    HistoryRecorder::ThreadLog* logs[5];
    for (unsigned t = 0; t < 5; ++t) logs[t] = rec.make_log(t);
    const unsigned enq_share[2] = {n_enq / 2, n_enq - n_enq / 2};
    const unsigned deq_share[2] = {n_deq / 2, n_deq - n_deq / 2};
    std::mutex mu;
    std::vector<std::pair<uint64_t, std::size_t>> tags;  // key -> lane
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < 2; ++p) {
      threads.emplace_back([&, p] {
        auto h = q.get_handle();
        std::vector<std::pair<uint64_t, std::size_t>> mine;
        for (unsigned i = 1; i <= enq_share[p]; ++i) {
          const uint64_t v = (uint64_t(p + 1) << 40) | i;
          uint64_t ts = logs[p]->invoke();
          q.enqueue(h, v);
          logs[p]->complete(OpKind::kEnqueue, v, ts);
          mine.emplace_back(v, h.home());
        }
        std::lock_guard<std::mutex> g(mu);
        tags.insert(tags.end(), mine.begin(), mine.end());
      });
    }
    for (unsigned c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        auto h = q.get_handle();
        std::vector<std::pair<uint64_t, std::size_t>> mine;
        for (unsigned i = 0; i < deq_share[c]; ++i) {
          uint64_t ts = logs[2 + c]->invoke();
          if (auto got = q.dequeue_traced(h)) {
            logs[2 + c]->complete(OpKind::kDequeue, got->first, ts);
            mine.emplace_back(got->first | kDeqTag, got->second);
          } else {
            logs[2 + c]->complete(OpKind::kDequeueEmpty, 0, ts);
          }
          if (i % 2 == c) std::this_thread::yield();
        }
        std::lock_guard<std::mutex> g(mu);
        tags.insert(tags.end(), mine.begin(), mine.end());
      });
    }
    for (auto& t : threads) t.join();
    // Drain the backlog so the drained-exact oracle applies.
    auto h = q.get_handle();
    for (;;) {
      uint64_t ts = logs[4]->invoke();
      auto got = q.dequeue_traced(h);
      if (!got) {
        logs[4]->complete(OpKind::kDequeueEmpty, 0, ts);
        break;
      }
      logs[4]->complete(OpKind::kDequeue, got->first, ts);
      tags.emplace_back(got->first | kDeqTag, got->second);
    }
    std::unordered_map<uint64_t, std::size_t> enq_lane, deq_lane;
    for (auto& [key, lane] : tags) {
      (key & kDeqTag ? deq_lane[key & ~kDeqTag] : enq_lane[key]) = lane;
    }
    auto plain = rec.collect();
    std::vector<LaneOp> history;
    history.reserve(plain.size());
    for (const Op& op : plain) {
      LaneOp lo{op, 0};
      if (op.kind == OpKind::kEnqueue) lo.lane = enq_lane.at(op.value);
      if (op.kind == OpKind::kDequeue) lo.lane = deq_lane.at(op.value);
      history.push_back(lo);
    }
    CheckResult oracle = check_sharded_history_drained(history, kShards);
    ++episodes;
    if (!oracle.linearizable) {
      std::printf("SHARDED ORACLE REJECTION at episode seed=%llu: %s\n",
                  (unsigned long long)seed, oracle.violation.c_str());
      dump_lanes(history);
      return 1;
    }
    if (!wfq::lin::check_queue_history(plain).linearizable) {
      ++relaxed_witnesses;  // legal: global FIFO is exactly what sharding
                            // relaxes — the per-lane oracle accepted it
    }
    ++seed;
  }
  std::printf("fuzz_checker: %llu live sharded episodes — oracle accepts "
              "all; %llu were globally non-FIFO (live relaxation "
              "witnesses)\n",
              (unsigned long long)episodes,
              (unsigned long long)relaxed_witnesses);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --backend; the positional [seconds] [max_ops] keep their slots.
  std::vector<char*> args;
  std::string backend;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(
            stderr,
            "--backend requires {wf,faa,obstruction,scq,wcq,sharded}\n");
        return 2;
      }
      backend = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = int(args.size());
  argv = args.data();
  double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 30.0;
  unsigned max_ops =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 11;

  if (!backend.empty()) {
    // Ring capacity clears max_ops so a full ring can never block a
    // producer after the consumers' attempt budgets run out.
    const std::size_t cap = std::size_t(max_ops) + 4;
    if (backend == "wf") {
      return run_live<WFQueue<uint64_t>>("WFQueue", true, seconds, max_ops);
    }
    if (backend == "faa") {
      return run_live<baselines::FAAQueue<uint64_t>>(
          "FAAQueue", false, seconds, max_ops);
    }
    if (backend == "obstruction") {
      return run_live<ObstructionQueue<uint64_t>>("ObstructionQueue", true,
                                                  seconds, max_ops);
    }
    if (backend == "scq") {
      return run_live<ScqQueue<uint64_t>>("ScqQueue", true, seconds, max_ops,
                                          cap);
    }
    if (backend == "wcq") {
      return run_live<WcqQueue<uint64_t>>("WcqQueue", true, seconds, max_ops,
                                          cap);
    }
    if (backend == "sharded") {
      // Half the budget on the degenerate 1-lane queue (strict FIFO, both
      // generic checkers must accept), half on lane-tagged 2-lane episodes
      // under the sharded oracle.
      int rc = run_live<scale::ShardedQueue<WFQueue<uint64_t>>>(
          "ShardedQueue x1", true, seconds / 2, max_ops, ShardConfig{1});
      if (rc != 0) return rc;
      return run_live_sharded(seconds / 2, max_ops);
    }
    std::fprintf(stderr, "unknown backend '%s' (want wf, faa, obstruction, "
                         "scq, wcq or sharded)\n",
                 backend.c_str());
    return 2;
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  uint64_t seed = 1;
  uint64_t histories = 0, accepted = 0, rejected = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Xorshift128Plus rng(seed);
    for (int trial = 0; trial < 500; ++trial) {
      auto h = random_history(rng, max_ops);
      auto pattern = wfq::lin::check_queue_history(h);
      if (!pattern.linearizable &&
          pattern.violation.find("precondition") != std::string::npos) {
        continue;
      }
      bool brute = wfq::lin::brute_force_linearizable(h);
      ++histories;
      (pattern.linearizable ? accepted : rejected)++;
      if (pattern.linearizable != brute) {
        std::printf("DISAGREEMENT at seed=%llu trial=%d: pattern says %s, "
                    "brute force says %s\n",
                    (unsigned long long)seed, trial,
                    pattern.linearizable ? "linearizable"
                                         : pattern.violation.c_str(),
                    brute ? "linearizable" : "NOT linearizable");
        dump(h);
        return 1;
      }
    }
    ++seed;
  }
  std::printf("fuzz_checker: %llu histories (%llu linearizable, %llu "
              "rejected) across %llu seeds — checkers agree\n",
              (unsigned long long)histories, (unsigned long long)accepted,
              (unsigned long long)rejected, (unsigned long long)(seed - 1));
  return 0;
}
