// The shared segment layer of the FAA-family queues: an "infinite array"
// emulated by a singly-linked list of fixed-size segments (§3.2 of the
// paper), factored out of WFQueueCore so that the wait-free queue, the
// Listing-1 obstruction-free queue and the FAA microbenchmark all run over
// one implementation of allocation, list extension, traversal and segment
// recycling — and so that *reclamation* (which segments may be freed, and
// when) becomes a swappable policy layered on top (memory/segment_reclaim.hpp)
// instead of logic welded into one queue.
//
// Responsibilities:
//   * Segment layout: cache-aligned `next` link + id + N cells of the
//     caller's `Cell` type (Cell must be default-constructible to the
//     pristine state and provide `reset()` for pool reuse).
//   * find_cell (Listing 2): walk from a caller-held segment pointer to the
//     segment containing a cell index, CAS-appending fresh segments at the
//     end; append-race losers are cached in the caller's `spare` slot.
//   * A lock-free fixed-slot recycling pool (the role jemalloc played in
//     the paper's setup, §5.1) plus allocated/freed accounting.
//   * Footprint introspection: live/peak segment counts for the
//     wCQ-style memory-bound axis of bench_reclaim_scheme.
//
// NOT a responsibility: deciding when a segment is safe to free. That is
// the ReclaimPolicy's job; the policy calls `set_first` + `delete_segment`
// (immediate free/recycle) or `note_deferred_free` (handing the segment to
// an HP/epoch domain).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <new>
#include <thread>
#include <type_traits>

#include "common/align.hpp"
#include "harness/fault_inject.hpp"
#include "obs/metrics.hpp"

namespace wfq {

/// Thrown by the segment-allocation seam when retries *and* the reserve
/// pool are exhausted. IS-A bad_alloc so callers that predate the graceful
/// OOM contract (the baseline queues, the C API's catch-all) keep their old
/// behavior; WFQueueCore catches it specifically to fail the operation
/// cleanly instead of unwinding out of find_cell.
struct SegmentAllocError : std::bad_alloc {
  const char* what() const noexcept override {
    return "wfq: segment allocation failed (retries and reserve exhausted)";
  }
};

/// Default segment storage: cache-aligned heap memory. This is the
/// allocation/addressing seam of the segment layer — a Traits type may
/// override it with `using SegmentAlloc = ...;` to place segments somewhere
/// other than the process heap (the cross-process arena in src/ipc/ uses
/// the same allocate/deallocate shape over a shared-memory bump allocator,
/// where "addresses" are arena offsets rather than pointers). allocate()
/// must either return constructed storage for a T or throw bad_alloc; the
/// retry/reserve/kNoMem ladder in allocate_fresh sits above this seam and
/// applies to any implementation of it.
struct HeapSegmentAlloc {
  template <class T>
  static T* allocate() {
    return aligned_new<T>();
  }
  template <class T>
  static void deallocate(T* p) noexcept {
    aligned_delete(p);
  }
};

namespace detail {
template <class T, class = void>
struct SegmentAllocOfImpl {
  using type = HeapSegmentAlloc;
};
template <class T>
struct SegmentAllocOfImpl<T, std::void_t<typename T::SegmentAlloc>> {
  using type = typename T::SegmentAlloc;
};
}  // namespace detail

/// Traits::SegmentAlloc if present, HeapSegmentAlloc otherwise — the same
/// detection idiom as fault::InjectorOf, so every existing Traits type
/// keeps compiling (and allocating) exactly as before.
template <class Traits>
using SegmentAllocOf = typename detail::SegmentAllocOfImpl<Traits>::type;

template <class Cell, class Traits>
class SegmentList {
 public:
  using Traits_ = Traits;
  using Alloc = SegmentAllocOf<Traits>;
  static constexpr std::size_t kSegmentSize = Traits::kSegmentSize;
  static_assert(kSegmentSize >= 2 && (kSegmentSize & (kSegmentSize - 1)) == 0,
                "segment size must be a power of two");

  /// A fixed-size array segment of the emulated infinite array. Cell i of
  /// the queue lives in segment[i / N].cells[i % N].
  struct Segment {
    alignas(kCacheLineSize) std::atomic<Segment*> next{nullptr};
    int64_t id = 0;
    alignas(kCacheLineSize) Cell cells[kSegmentSize];
  };

  /// `reserve_segments` pre-allocates up to kReserveSlots segments into a
  /// dedicated reserve pool consulted only after allocation retries fail:
  /// the OOM "airbag" that lets in-flight operations complete (or fail
  /// cleanly) when the heap is exhausted. Construction itself may still
  /// throw bad_alloc — there is no queue to keep intact yet.
  /// `prefetch_depth` is the next-segment header lookahead of the
  /// traversal (see find_cell/find_cell_range): 0 disables prefetching,
  /// 1 reproduces the original single-header lookahead.
  explicit SegmentList(std::size_t reserve_segments = 0,
                       unsigned prefetch_depth = 1)
      : reserve_target_(std::min(reserve_segments, kReserveSlots)),
        prefetch_depth_(prefetch_depth) {
    Segment* s0 = new_segment(0);
    first_.store(s0, std::memory_order_relaxed);
    const std::size_t n = reserve_target_;
    for (std::size_t i = 0; i < n; ++i) {
      auto* s = Alloc::template allocate<Segment>();
      allocated_.fetch_add(1, std::memory_order_relaxed);
      reserve_[i].store(s, std::memory_order_relaxed);
    }
  }

  SegmentList(const SegmentList&) = delete;
  SegmentList& operator=(const SegmentList&) = delete;

  /// Single-threaded by contract (owning queue's destructor): frees the
  /// remaining chain and drains the recycling pool.
  ~SegmentList() {
    Segment* s = first_.load(std::memory_order_relaxed);
    while (s != nullptr) {
      Segment* n = s->next.load(std::memory_order_relaxed);
      free_raw(s);
      s = n;
    }
    for (auto& slot : pool_) {
      if (Segment* p = slot.exchange(nullptr, std::memory_order_relaxed)) {
        free_raw(p);
      }
    }
    for (auto& slot : reserve_) {
      if (Segment* p = slot.exchange(nullptr, std::memory_order_relaxed)) {
        free_raw(p);
      }
    }
  }

  // ---- list head ------------------------------------------------------

  Segment* first(std::memory_order mo = std::memory_order_acquire) const {
    return first_.load(mo);
  }

  /// Advance the list head to `s` (reclamation frontier). Caller (the
  /// elected cleaner) owns the detached prefix [old first, s).
  void set_first(Segment* s) {
    first_.store(s, std::memory_order_release);
    first_id_.store(s->id, std::memory_order_relaxed);
  }

  // ---- allocation / recycling ----------------------------------------

  /// Fresh or pool-recycled segment with the given id, all cells pristine.
  Segment* new_segment(int64_t id) {
    if constexpr (Traits::kSegmentPoolCap > 0) {
      if (Segment* s = pool_pop()) {
        // Reset to the pristine state before reuse. No thread can reference
        // a pooled segment (the reclamation policy proved that before it
        // was retired), so plain stores suffice; the CAS-append in
        // find_cell publishes it.
        s->id = id;
        s->next.store(nullptr, std::memory_order_relaxed);
        for (auto& c : s->cells) c.reset();
        return s;
      }
    }
    return allocate_fresh(id);
  }

  /// Retire a segment whose memory is provably quiescent (no thread can
  /// still dereference it): refill the OOM reserve first, then recycle
  /// through the pool, else free for real.
  void delete_segment(Segment* s) {
    if (reserve_push(s)) return;
    if constexpr (Traits::kSegmentPoolCap > 0) {
      if (pool_push(s)) return;
    }
    free_raw(s);
  }

  /// Free bypassing the pool (destructor paths, handle spares).
  void free_raw(Segment* s) {
    if (s == nullptr) return;
    freed_.fetch_add(1, std::memory_order_relaxed);
    Alloc::deallocate(s);
  }

  /// Accounting hook for deferred-reclamation policies (HP/epoch domains)
  /// that take ownership of a detached segment and free it later through a
  /// type-erased deleter: the segment is counted as freed at hand-off time
  /// (`segments_outstanding` is documented as exact only while quiesced and
  /// with immediate-free policies).
  void note_deferred_free() {
    freed_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- traversal (Listing 2 find_cell) --------------------------------

  /// Walks the segment list from `*sp` to the segment containing `cell_id`,
  /// appending fresh segments when the list ends, and advances `sp` to the
  /// target segment. `spare` caches a segment that lost an append race for
  /// the caller's next extension (reference-implementation optimization).
  /// Precondition: sp->id <= cell_id / N and *sp not reclaimed (guaranteed
  /// by the caller's reclamation policy).
  Cell* find_cell(Segment*& sp, uint64_t cell_id, Segment*& spare,
                  const char* who = "?") {
    Segment* s = sp;
    walk_to(s, static_cast<int64_t>(cell_id / kSegmentSize), spare, who,
            cell_id);
    sp = s;
    const std::size_t off = std::size_t(cell_id & (kSegmentSize - 1));
    // Segment-boundary lookahead: an index stream landing in the last few
    // cells is about to cross into the successor, so start pulling its
    // header line(s) now and the next operation's walk skips a cold
    // pointer chase. Off by default only when prefetch_depth is 0.
    if (off + kPrefetchTail >= kSegmentSize && prefetch_depth_ != 0)
        [[unlikely]] {
      prefetch_ahead(s);
    }
    return &s->cells[off];
  }

  /// Batch variant of find_cell: resolve `count` consecutive cells starting
  /// at `first_id`, storing pointers into `out[0..count)`, and advance `sp`
  /// to the segment containing the *last* cell. Where a per-cell loop over
  /// find_cell would re-enter the walk `count` times, this walks each
  /// visited segment exactly once and prefetches the next segment's header
  /// line while the current segment's cells are being handed out — the
  /// pointer chase overlaps with the caller's work on the batch.
  /// Precondition: as find_cell's, for `first_id`.
  void find_cell_range(Segment*& sp, uint64_t first_id, std::size_t count,
                       Cell** out, Segment*& spare, const char* who = "?") {
    Segment* s = sp;
    std::size_t done = 0;
    while (done < count) {
      const uint64_t id = first_id + done;
      walk_to(s, static_cast<int64_t>(id / kSegmentSize), spare, who, id);
      if (prefetch_depth_ != 0) prefetch_ahead(s);
      const std::size_t off = std::size_t(id & (kSegmentSize - 1));
      const std::size_t take = std::min(count - done, kSegmentSize - off);
      for (std::size_t j = 0; j < take; ++j) {
        out[done + j] = &s->cells[off + j];
      }
      done += take;
    }
    sp = s;
  }

  // ---- introspection --------------------------------------------------

  /// Number of segments currently in the list (O(segments); test helper).
  std::size_t live_segments() const {
    std::size_t n = 0;
    for (Segment* s = first_.load(std::memory_order_acquire); s != nullptr;
         s = s->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  /// Total segments ever allocated minus freed (leak checks; exact only
  /// while quiesced, and `note_deferred_free` counts domain hand-offs).
  int64_t outstanding() const {
    return allocated_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

  int64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Segment allocations that failed cleanly (SegmentAllocError thrown
  /// after retries and the reserve pool were exhausted).
  uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  /// Allocations served from the pre-reserved OOM pool.
  uint64_t reserve_pool_hits() const {
    return reserve_pool_hits_.load(std::memory_order_relaxed);
  }

  /// Segments currently parked in the OOM reserve (test helper).
  std::size_t reserve_available() const {
    std::size_t n = 0;
    for (const auto& slot : reserve_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) ++n;
    }
    return n;
  }

  /// High-water mark of (newest appended id − list-head id + 1): the peak
  /// number of simultaneously live segments, maintained O(1) at append
  /// time. This is the memory-bound axis wCQ optimizes; reported by
  /// bench_reclaim_scheme for each reclamation policy.
  std::size_t peak_live_segments() const {
    return std::size_t(peak_live_.load(std::memory_order_relaxed));
  }

  /// Upper bound on the OOM reserve (compile-time slot count; the runtime
  /// `reserve_segments` constructor knob is clamped to it).
  static constexpr std::size_t kReserveSlots = 8;

 private:
  /// Attempts before falling back on the reserve pool. OOM near the
  /// allocation rate of a queue segment is usually transient (the cleaner
  /// or another subsystem is mid-free), so a couple of yield-separated
  /// retries clear most episodes without touching the reserve.
  static constexpr int kAllocRetries = 3;

  /// The single fallible allocation seam: retry/backoff, then the reserve
  /// pool, then a clean SegmentAllocError. Every segment the queue ever
  /// creates funnels through here (ctor, walk_to extension, pool misses).
  Segment* allocate_fresh(int64_t id) {
    for (int attempt = 0; attempt < kAllocRetries; ++attempt) {
      try {
        WFQ_INJECT(Traits, "seg_alloc_try");
        auto* s = Alloc::template allocate<Segment>();
        s->id = id;
        allocated_.fetch_add(1, std::memory_order_relaxed);
        return s;
      } catch (const std::bad_alloc&) {
        if (attempt + 1 < kAllocRetries) std::this_thread::yield();
      }
    }
    if (Segment* s = reserve_pop()) {
      reserve_pool_hits_.fetch_add(1, std::memory_order_relaxed);
      // The segment layer has no handle; these rare events go to the
      // process-global ring (folded into snapshots like the injector's
      // process-global counters are folded into collect_stats).
      if constexpr (obs::MetricsOf<Traits>::kEnabled) {
        obs::MetricsOf<Traits>::trace_global(obs::TraceEvent::kReserveHit,
                                             uint64_t(id));
      }
      s->id = id;
      s->next.store(nullptr, std::memory_order_relaxed);
      for (auto& c : s->cells) c.reset();
      return s;
    }
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::MetricsOf<Traits>::kEnabled) {
      obs::MetricsOf<Traits>::trace_global(obs::TraceEvent::kAllocFail,
                                           uint64_t(id));
    }
    throw SegmentAllocError{};
  }

  // The reserve uses the same dereference-free slot-array shape as the
  // recycling pool below, but is consulted only on the allocation-failure
  // path and refilled with priority by delete_segment.

  Segment* reserve_pop() {
    for (auto& slot : reserve_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) {
        if (Segment* s = slot.exchange(nullptr, std::memory_order_acquire)) {
          return s;
        }
      }
    }
    return nullptr;
  }

  /// Refill only up to the configured target: with the reserve disabled
  /// (target 0) retirement behaves exactly as before the OOM seam existed,
  /// keeping the allocated/freed accounting of pool-disabled configs exact.
  bool reserve_push(Segment* s) {
    for (std::size_t i = 0; i < reserve_target_; ++i) {
      auto& slot = reserve_[i];
      Segment* expected = nullptr;
      if (slot.load(std::memory_order_relaxed) == nullptr &&
          slot.compare_exchange_strong(expected, s, std::memory_order_release,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// The Listing-2 walk shared by find_cell and find_cell_range: advance
  /// `s` to the segment with id `target`, CAS-appending fresh segments when
  /// the list ends; append-race losers land in the caller's `spare`.
  void walk_to(Segment*& s, int64_t target, Segment*& spare,
               [[maybe_unused]] const char* who,
               [[maybe_unused]] uint64_t cell_id) {
#ifndef NDEBUG
    if (s->id > target) {
      std::fprintf(stderr,
                   "find_cell overshoot at %s: seg id %lld > target %lld "
                   "(cell %llu)\n",
                   who, (long long)s->id, (long long)target,
                   (unsigned long long)cell_id);
    }
#endif
    assert(s->id <= target && "segment pointer overshot the target cell");
    for (int64_t i = s->id; i < target; ++i) {
      Segment* next = s->next.load(acq());
      if (next == nullptr) {
        // Extend the list, recycling the caller's spare if it has one.
        // The injection point sits BEFORE the allocation: a victim that
        // crashes here has not yet acquired a segment, so nothing leaks.
        WFQ_INJECT(Traits, "seg_extend");
        Segment* tmp = spare != nullptr ? spare : new_segment(0);
        spare = nullptr;
        tmp->id = i + 1;
        Segment* expected = nullptr;
        if (!s->next.compare_exchange_strong(expected, tmp, rel(), acq())) {
          spare = tmp;  // another thread extended the list first
        } else {
          note_appended(i + 1);
        }
        next = s->next.load(acq());
        assert(next != nullptr);
      }
      s = next;
    }
  }

  static void prefetch_segment(const Segment* s) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(static_cast<const void*>(s), /*rw=*/0, /*locality=*/1);
#else
    (void)s;
#endif
  }

  /// Cells from a segment's tail within which find_cell starts prefetching
  /// the successor (one cache line of 8-byte-ish cells, roughly).
  static constexpr std::size_t kPrefetchTail = 8;

  /// Pull up to prefetch_depth_ successor headers. Depths beyond 1 chase
  /// `next` pointers through headers that may themselves be cold — classic
  /// software pipelining: each traversal warms the next one's chain.
  /// The `next` loads must be acquire (free on x86): a concurrent extender
  /// publishes the freshly-constructed segment with a release CAS, and the
  /// depth>=2 chase genuinely dereferences it — a relaxed load here raced
  /// with the segment's construction.
  void prefetch_ahead(const Segment* s) const {
    const Segment* nx = s->next.load(std::memory_order_acquire);
    for (unsigned d = 0; nx != nullptr; ) {
      prefetch_segment(nx);
      if (++d >= prefetch_depth_) break;
      nx = nx->next.load(std::memory_order_acquire);
    }
  }

  static constexpr std::memory_order acq() {
    return Traits::kConservativeOrdering ? std::memory_order_seq_cst
                                         : std::memory_order_acquire;
  }
  static constexpr std::memory_order rel() {
    return Traits::kConservativeOrdering ? std::memory_order_seq_cst
                                         : std::memory_order_release;
  }

  void note_appended(int64_t id) {
    int64_t live = id - first_id_.load(std::memory_order_relaxed) + 1;
    int64_t peak = peak_live_.load(std::memory_order_relaxed);
    while (live > peak && !peak_live_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  // ---- segment pool: fixed array of slots -----------------------------
  //
  // Deliberately NOT a Treiber stack: a stack pop must dereference the
  // popped node to read its `next`, and a lagging popper could then read a
  // segment that was popped, reused, retired and genuinely freed by
  // another thread. The slot array never dereferences foreign segments —
  // pop is an exchange of a pointer slot, push a CAS from null — so the
  // only thread that ever touches a segment's memory is its current owner.
  // O(cap) scans are irrelevant next to the O(N) cell reinitialization.

  static constexpr std::size_t kPoolSlots =
      Traits::kSegmentPoolCap > 0 ? Traits::kSegmentPoolCap : 1;

  Segment* pool_pop() {
    for (auto& slot : pool_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) {
        if (Segment* s = slot.exchange(nullptr, std::memory_order_acquire)) {
          return s;
        }
      }
    }
    return nullptr;
  }

  bool pool_push(Segment* s) {
    for (auto& slot : pool_) {
      Segment* expected = nullptr;
      if (slot.load(std::memory_order_relaxed) == nullptr &&
          slot.compare_exchange_strong(expected, s, std::memory_order_release,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    free_raw(s);  // pool full: free for real
    return true;
  }

  alignas(kCacheLineSize) std::atomic<Segment*> first_{nullptr};
  std::atomic<int64_t> allocated_{0};
  std::atomic<int64_t> freed_{0};
  std::atomic<int64_t> first_id_{0};
  std::atomic<int64_t> peak_live_{1};
  std::atomic<uint64_t> alloc_failures_{0};
  std::atomic<uint64_t> reserve_pool_hits_{0};
  const std::size_t reserve_target_;
  const unsigned prefetch_depth_;
  alignas(kCacheLineSize) std::array<std::atomic<Segment*>, kPoolSlots>
      pool_{};
  alignas(kCacheLineSize) std::array<std::atomic<Segment*>, kReserveSlots>
      reserve_{};
};

}  // namespace wfq
