file(REMOVE_RECURSE
  "CMakeFiles/stall_tolerance.dir/stall_tolerance.cpp.o"
  "CMakeFiles/stall_tolerance.dir/stall_tolerance.cpp.o.d"
  "stall_tolerance"
  "stall_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stall_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
