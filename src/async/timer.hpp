// TimerService: deadline callbacks for pop_async_for.
//
// A coroutine cannot park a thread on a futex with a timeout — there is no
// thread to park. Timed awaiters instead arm an entry here; one lazily
// started service thread fires callbacks at their deadlines. The service
// is deliberately tiny (mutex + condvar + ordered multimap): a timed async
// pop is already on the slow path (it parked), so heap-allocating one map
// node per armed round is noise next to the futex syscall it replaces.
//
// The safety-critical part is cancel(): an awaiter about to release its
// frame must know its callback is not concurrently executing against that
// frame. cancel() therefore blocks while the entry it names is mid-fire
// (same rendezvous role await_async_done plays for EventCount claims).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "sync/futex.hpp"  // WaitClock

namespace wfq::async {

class TimerService {
 public:
  using Callback = void (*)(void*);

  /// Process-wide instance. Leaked on purpose: the service thread must
  /// outlive every static-destruction-order race, the standard dodge for
  /// background singletons.
  static TimerService& instance() {
    static TimerService* svc = new TimerService();
    return *svc;
  }

  /// Schedule `fire(ctx)` at `when` (service thread). Returns a token for
  /// cancel(). Never fires before `when`; may fire arbitrarily late under
  /// scheduling pressure (deadline semantics, like futex timeouts).
  std::uint64_t arm(sync::WaitClock::time_point when, Callback fire,
                    void* ctx) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!started_) {
      std::thread(&TimerService::run, this).detach();
      started_ = true;
    }
    const std::uint64_t id = next_id_++;
    entries_.emplace(when, Entry{id, fire, ctx});
    // Only a new front entry moves the wakeup earlier; waking on every arm
    // keeps the logic obvious and the cost is one condvar signal per timed
    // park.
    cv_.notify_one();
    return id;
  }

  /// Defuse a scheduled entry. True: the callback will never run. False:
  /// it already ran or is running — and in the latter case cancel() has
  /// BLOCKED until it finished, so on return the callback is never again
  /// touching the caller's memory either way.
  bool cancel(std::uint64_t id) {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.id == id) {
        entries_.erase(it);
        return true;
      }
    }
    while (firing_id_ == id) fired_cv_.wait(lk);
    return false;
  }

 private:
  struct Entry {
    std::uint64_t id;
    Callback fire;
    void* ctx;
  };

  TimerService() = default;

  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (entries_.empty()) {
        cv_.wait(lk);
        continue;
      }
      auto front = entries_.begin();
      const auto when = front->first;
      if (sync::WaitClock::now() < when) {
        cv_.wait_until(lk, when);
        continue;  // re-evaluate: an earlier entry may have been armed
      }
      Entry e = front->second;
      entries_.erase(front);
      firing_id_ = e.id;
      lk.unlock();  // never run user callbacks under the service lock
      e.fire(e.ctx);
      lk.lock();
      firing_id_ = 0;
      fired_cv_.notify_all();  // release any cancel() rendezvous
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;        ///< service thread sleep/wake
  std::condition_variable fired_cv_;  ///< cancel-vs-fire rendezvous
  std::multimap<sync::WaitClock::time_point, Entry> entries_;
  std::uint64_t next_id_ = 1;  ///< 0 is "not firing"
  std::uint64_t firing_id_ = 0;
  bool started_ = false;
};

}  // namespace wfq::async
