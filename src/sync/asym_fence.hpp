// Asymmetric Dekker fence: a StoreLoad barrier whose cost is moved entirely
// onto the rare side.
//
// The blocking layer's close() protocol needs a Dekker handshake with every
// producer (producer: "publish in-flight flag, then read closed"; closer:
// "publish closed, then read every in-flight flag"). A symmetric solution
// puts a full fence on the producer's push fast path — exactly the cost the
// paper's §3.6 reclamation scheme goes out of its way to avoid on the
// enqueue path. The asymmetric solution mirrors that philosophy at the OS
// level: the hot side (`light()`) compiles to a compiler-only barrier, and
// the cold side (`heavy()`) runs `membarrier(2)`
// MEMBARRIER_CMD_PRIVATE_EXPEDITED, which interrupts every peer CPU of the
// process with a full memory barrier. The IPI lands at an instruction
// boundary on each CPU: either before the hot side's load (which then
// observes the cold side's prior store) or after its store retired (which
// the barrier drains, so the cold side's subsequent load observes it) —
// the two-sided guarantee a Dekker needs, with zero fast-path fences.
//
// When membarrier is unavailable (pre-4.14 kernel, non-Linux, seccomp),
// both sides degrade to ordinary seq_cst thread fences — the classic
// symmetric Dekker, slower but correct everywhere.
#pragma once

#include <atomic>

#if defined(__linux__)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wfq::sync {

class AsymmetricFence {
 public:
  /// True when the hot side is compiler-only (membarrier registered).
  static bool fast_path_is_fence_free() { return state().registered; }

  /// Hot side: order a preceding store before a following load, for free
  /// when paired with heavy(). Must be matched by heavy() on the cold side.
  static void light() {
    if (state().registered) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    } else {
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
  }

  /// Cold side: full barrier on every CPU running a thread of this process.
  static void heavy() {
#if defined(__linux__)
    if (state().registered) {
      (void)syscall(SYS_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0);
      return;
    }
#endif
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  struct State {
    bool registered = false;
    State() {
#if defined(__linux__)
      // Expedited private membarrier needs a one-time registration.
      long q = syscall(SYS_membarrier, MEMBARRIER_CMD_QUERY, 0, 0);
      if (q > 0 && (q & MEMBARRIER_CMD_PRIVATE_EXPEDITED) != 0 &&
          syscall(SYS_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                  0, 0) == 0) {
        registered = true;
      }
#endif
    }
  };

  static const State& state() {
    static const State s;  // registration races are benign (idempotent)
    return s;
  }
};

}  // namespace wfq::sync
