file(REMOVE_RECURSE
  "CMakeFiles/bench_patience.dir/bench_patience.cpp.o"
  "CMakeFiles/bench_patience.dir/bench_patience.cpp.o.d"
  "bench_patience"
  "bench_patience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
