// Traits-combination matrix: every pairing of memory-ordering policy, FAA
// implementation and schedule perturbation must preserve MPMC correctness.
// Catches configuration-dependent assumptions (e.g. an ordering that only
// holds under seq_cst, or a path only exercised with native FAA).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "common/random.hpp"
#include "core/wf_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

void maybe_yield() {
  thread_local Xorshift128Plus rng(
      0x5151 ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
  if (rng.next_below(10) == 0) std::this_thread::yield();
}

template <bool kConservative, class FaaPolicy, bool kPerturb>
struct MatrixTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 32;
  static constexpr bool kConservativeOrdering = kConservative;
  using Faa = FaaPolicy;
  static void interleave_hint() {
    if constexpr (kPerturb) maybe_yield();
  }
};

template <class Traits>
class WfTraitsMatrix : public ::testing::Test {};

using AllCombos = ::testing::Types<
    MatrixTraits<false, NativeFaa, false>,
    MatrixTraits<false, NativeFaa, true>,
    MatrixTraits<false, EmulatedFaa, false>,
    MatrixTraits<false, EmulatedFaa, true>,
    MatrixTraits<true, NativeFaa, false>,
    MatrixTraits<true, NativeFaa, true>,
    MatrixTraits<true, EmulatedFaa, false>,
    MatrixTraits<true, EmulatedFaa, true>>;
TYPED_TEST_SUITE(WfTraitsMatrix, AllCombos);

TYPED_TEST(WfTraitsMatrix, MpmcPropertyHolds) {
  WfConfig cfg;
  cfg.patience = 1;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, TypeParam> q(cfg);
  test::run_mpmc_property(q, 4, 4, 1000);
}

TYPED_TEST(WfTraitsMatrix, PairsConservationWf0) {
  WfConfig cfg;
  cfg.patience = 0;
  cfg.max_garbage = 2;
  WFQueue<uint64_t, TypeParam> q(cfg);
  test::run_pairs_conservation(q, 4, 1000);
}

TYPED_TEST(WfTraitsMatrix, SequentialSemanticsExact) {
  WFQueue<uint64_t, TypeParam> q;
  test::run_sequential_fifo(q, 500);
}

}  // namespace
}  // namespace wfq
