// Crash-robust cross-process FAA queue over a shared-memory arena.
//
// Independent processes attach the same arena file (shm_arena.hpp) and run
// producers/consumers against one queue whose every byte of state — head/
// tail, cells, per-process operation records, rescue ring, parking words —
// lives inside the mapping. All links are ShmOffsets (offset_ptr.hpp);
// parking uses SharedFutex (futex without the PRIVATE flag) so a wake in
// one process releases a waiter in another.
//
// ## Protocol
//
// The queue is the paper's FAA skeleton with CAS-guarded cell rendezvous
// (the CRQ/SCQ-style bounded deployment): enqueue FAAs `tail` for a ticket,
// deposits into cell[ticket] with CAS EMPTY->VALUE; dequeue FAAs `head`,
// takes with CAS VALUE->CONSUMED, or poisons a slow producer's cell
// (EMPTY->POISONED, producer retries a fresh ticket). Cells are 16 bytes,
// never recycled (the arena is sized for a bounded ticket capacity), and
// every transition is a CAS between explicit states — which is exactly what
// makes kill-9 recoverable: a surviving process can always read the arena
// and know which half-finished step a dead peer was in.
//
// Crash robustness rests on three mechanisms:
//
//  1. **Two-phase intent publication.** Before FAAing, a process publishes
//     Pending in its proc slot; immediately after the FAA it records the
//     ticket and flips to Ticketed. A peer that dies Ticketed names its
//     cell exactly; one that dies Pending leaves at most one unattributed
//     ticket, resolved by the floor scan (below).
//  2. **Pid liveness + generation counters.** A slot is dead when
//     kill(pid,0) says ESRCH or /proc/<pid>/stat's starttime no longer
//     matches the recorded one (pid reuse). Generations make slot reuse
//     safe for observers holding a stale claim.
//  3. **Idempotent recovery under a stealable lock.** Any process may run
//     recover(): resolve each dead slot's in-flight op (poison an
//     undeposited enqueue cell; move a stranded VALUE into the rescue
//     ring), then advance a floor scan over consumed-ticket space that
//     rescues values whose consumer died before even recording its ticket.
//     Every step is a CAS or an idempotent ring append keyed by source
//     ticket, so a recoverer that is itself SIGKILLed mid-scan leaves a
//     state the next recoverer finishes.
//
// Rescued values are redelivered through the ring: dequeue claims ring
// entries before taking cells. Delivery to a process that died before
// using the value is redelivered (at-least-once across crashes); within
// live processes delivery is exactly-once — tools/soak --shm --kill9
// asserts the precise conservation statement after every chaos run.
//
// The shm deployment is crash-robust and lock-free, not wait-free: the
// paper's helping protocol assumes helpers can dereference each other's
// handles, which offsets make possible but slow-path enqueue helping does
// not survive a helper's death mid-help without the full wCQ treatment
// (see PAPERS.md). ALGORITHM.md §16 spells out the liveness argument.
#pragma once

#include <signal.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "harness/fault_inject.hpp"
#include "ipc/offset_ptr.hpp"
#include "ipc/shm_arena.hpp"
#include "sync/futex.hpp"

namespace wfq::ipc {

/// Operation results, mirroring the in-process queue's status contract.
enum class ShmPush : int { kOk = 0, kClosed, kNoMem, kFull };
enum class ShmPop : int { kOk = 0, kEmpty };

/// Geometry knobs for create(). Everything else is derived from the arena
/// size: the segment directory is sized to consume the whole remainder.
struct ShmOptions {
  std::uint32_t max_procs = 16;     // attached processes (proc slots)
  std::uint32_t seg_cells = 1024;   // cells per segment (power of two)
  std::uint32_t rescue_slots = 256; // crash-rescue ring capacity
};

struct DefaultShmTraits {};

/// /proc/<pid>/stat field 22 (starttime, clock ticks since boot): the
/// canonical pid-reuse discriminator. 0 on any failure.
inline std::uint64_t proc_start_time(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%d/stat", (int)pid);
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return 0;
  char buf[1024];
  std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // comm (field 2) may contain spaces and parens: parse from the LAST ')'.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  // After ')' the state is token 1; starttime is token 20.
  unsigned field = 0;
  while (*p != '\0') {
    while (*p == ' ') ++p;
    if (*p == '\0') break;
    if (++field == 20) return std::strtoull(p, nullptr, 10);
    while (*p != '\0' && *p != ' ') ++p;
  }
  return 0;
}

/// Is (pid, recorded starttime) still the same live process?
inline bool process_alive(pid_t pid, std::uint64_t recorded_start) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) != 0 && errno == ESRCH) return false;
  if (recorded_start == 0) return true;  // claim in progress: assume alive
  std::uint64_t now = proc_start_time(pid);
  if (now == 0) return false;  // /proc entry gone between kill() and read
  return now == recorded_start;
}

template <class Traits = DefaultShmTraits>
class ShmQueue {
 public:
  // Cell lifecycle. Terminal states keep their value field readable
  // forever — the post-chaos audit uses the cells as ground truth.
  static constexpr std::uint64_t kCellEmpty = 0;
  static constexpr std::uint64_t kCellValue = 1;
  static constexpr std::uint64_t kCellConsumed = 2;
  static constexpr std::uint64_t kCellPoisoned = 3;

  // Per-process operation record states (two-phase intent publication).
  static constexpr std::uint32_t kOpIdle = 0;
  static constexpr std::uint32_t kOpEnqPending = 1;
  static constexpr std::uint32_t kOpEnqTicketed = 2;
  static constexpr std::uint32_t kOpDeqPending = 3;
  static constexpr std::uint32_t kOpDeqTicketed = 4;

  // Rescue-ring entry states. Entries are append-only (never reused): the
  // `ticket` field is the idempotency key that lets a killed recoverer's
  // successor tell "already rescued" from "not yet rescued".
  static constexpr std::uint64_t kRsUnused = 0;
  static constexpr std::uint64_t kRsFull = 1;
  static constexpr std::uint64_t kRsDone = 2;
  static constexpr std::uint64_t kRsClaimTag = 3;  // (pid << 8) | tag

  struct Cell {
    std::atomic<std::uint64_t> state;
    std::atomic<std::uint64_t> value;
  };
  static_assert(sizeof(Cell) == 16);

  struct ProcSlot {
    alignas(64) std::atomic<std::uint32_t> pid;
    std::atomic<std::uint32_t> generation;
    std::atomic<std::uint64_t> start_time;
    std::atomic<std::uint32_t> op_state;
    std::atomic<std::uint64_t> op_ticket;
    std::atomic<std::uint64_t> op_value;
    // A segment allocation that lost an extend() append race, parked for
    // the slot's next extension. Lives in the ARENA (not the handle) so a
    // holder's death never leaks it: release() leaves it in place and the
    // slot's next claimant inherits it.
    AtomicShmOffset spare;
  };

  struct RescueSlot {
    alignas(64) std::atomic<std::uint64_t> state;
    std::atomic<std::uint64_t> ticket;
    std::atomic<std::uint64_t> value;
  };

  struct Geometry {
    std::uint32_t max_procs;
    std::uint32_t seg_cells;
    std::uint32_t seg_shift;
    std::uint32_t rescue_slots;
    std::uint64_t max_segments;
    std::uint64_t capacity;  // max ticket value = max_segments * seg_cells
  };

  struct Control {
    Geometry geo;
    ShmOffset slots_off;
    ShmOffset ring_off;
    ShmOffset dir_off;
    alignas(64) std::atomic<std::uint64_t> head;
    alignas(64) std::atomic<std::uint64_t> tail;
    alignas(64) std::atomic<std::uint64_t> recovery_lock;
    std::atomic<std::uint64_t> recovery_floor;
    std::atomic<std::uint64_t> peer_deaths;
    std::atomic<std::uint64_t> shm_adoptions;
    // Slot-membership generation: bumped by every graceful claim/release
    // and by each recover() pass that reclaimed dead slots. maybe_recover()
    // uses it to keep a local peer snapshot fresh without walking the slot
    // table every park slice. Graceless deaths deliberately do NOT bump it
    // — the cached (pid, start_time) pair stays in every prober's snapshot
    // until a liveness poll catches the death.
    std::atomic<std::uint64_t> peer_gen;
    std::atomic<std::uint64_t> rescued_pending;  // ring entries Full (hint)
    std::atomic<std::uint32_t> closed;
    alignas(64) std::atomic<std::uint32_t> enq_events;  // futex word
    std::atomic<std::uint32_t> waiters;
  };

  /// One attached actor: a claimed proc slot. Every concurrently-operating
  /// thread needs its own LocalHandle — the slot's op record is the
  /// two-phase intent publication and cannot be shared. A process may hold
  /// several (each consumes one of geometry().max_procs slots; all of them
  /// are reclaimed together if the process dies).
  struct LocalHandle {
    ProcSlot* slot = nullptr;
  };

  ShmQueue() = default;
  ShmQueue(const ShmQueue&) = delete;
  ShmQueue& operator=(const ShmQueue&) = delete;
  ShmQueue(ShmQueue&& o) noexcept { swap(o); }
  ShmQueue& operator=(ShmQueue&& o) noexcept {
    if (this != &o) {
      detach();
      swap(o);
    }
    return *this;
  }
  ~ShmQueue() { detach(); }

  /// Create a fresh arena at `path` of `bytes` total and become its first
  /// attached process. The segment directory is sized to consume the whole
  /// remainder of the arena — with one spare-segment allocation per proc
  /// slot budgeted on top — so extension for any ticket < capacity() does
  /// not run out of arena bytes unless more than max_procs peers die
  /// inside the narrow alloc-to-park window of extend().
  static ArenaStatus create(const char* path, std::size_t bytes,
                            const ShmOptions& opt, ShmQueue* out) {
    if (opt.max_procs == 0 || opt.seg_cells < 4 ||
        (opt.seg_cells & (opt.seg_cells - 1)) != 0 || opt.rescue_slots == 0) {
      return ArenaStatus::kBadGeometry;
    }
    ShmArena arena;
    ArenaStatus st = ShmArena::create(path, bytes, &arena);
    if (st != ArenaStatus::kOk) return st;

    ShmOffset ctrl_off = arena.alloc(sizeof(Control));
    ShmOffset slots_off = arena.alloc(opt.max_procs * sizeof(ProcSlot));
    ShmOffset ring_off = arena.alloc(opt.rescue_slots * sizeof(RescueSlot));
    if (ctrl_off == kNullOffset || slots_off == kNullOffset ||
        ring_off == kNullOffset) {
      arena.close();
      ShmArena::destroy(path);
      return ArenaStatus::kTooSmall;
    }
    // Size the directory so every directory entry's segment is backed by
    // arena bytes: remaining / (segment bytes + directory entry), with a
    // page of slack for per-allocation alignment padding. Additionally
    // budget one segment per proc slot: an extend() race loser's
    // allocation is parked in its slot's `spare` (inherited across
    // deaths), but a kill between alloc() and the park leaks the bytes —
    // bounded in practice by one in-flight extension per slot, paid for
    // up front so capacity() stays reachable.
    const std::uint64_t seg_bytes = std::uint64_t(opt.seg_cells) * sizeof(Cell);
    const std::uint64_t seg_cost = seg_bytes + 64;  // worst-case align pad
    const std::uint64_t spare_budget = std::uint64_t(opt.max_procs) * seg_cost;
    const std::uint64_t used = arena.header()->bump.load();
    const std::uint64_t reserved = used + spare_budget + 4096;
    const std::uint64_t remaining = bytes > reserved ? bytes - reserved : 0;
    const std::uint64_t max_segments = remaining / (seg_cost + 8);
    if (max_segments == 0) {
      arena.close();
      ShmArena::destroy(path);
      return ArenaStatus::kTooSmall;
    }
    ShmOffset dir_off = arena.alloc(max_segments * sizeof(AtomicShmOffset));
    if (dir_off == kNullOffset) {
      arena.close();
      ShmArena::destroy(path);
      return ArenaStatus::kTooSmall;
    }

    // The file is freshly truncated, so every allocated structure is
    // zero-initialized already (EMPTY cells, Unused ring entries, free
    // slots, dir full of null offsets); only the geometry needs writing.
    auto* ctrl = arena.at<Control>(ctrl_off);
    ctrl->geo.max_procs = opt.max_procs;
    ctrl->geo.seg_cells = opt.seg_cells;
    ctrl->geo.seg_shift = shift_of(opt.seg_cells);
    ctrl->geo.rescue_slots = opt.rescue_slots;
    ctrl->geo.max_segments = max_segments;
    ctrl->geo.capacity = max_segments * opt.seg_cells;
    ctrl->slots_off = slots_off;
    ctrl->ring_off = ring_off;
    ctrl->dir_off = dir_off;
    arena.set_root(ctrl_off);
    arena.publish_ready();

    out->adopt(std::move(arena), ctrl_off);
    return out->claim(&out->self_) ? ArenaStatus::kOk
                                   : ArenaStatus::kBadGeometry;
  }

  /// Attach an existing arena (validated read-only first — see
  /// ShmArena::attach) and claim a proc slot. Runs recover() before
  /// claiming so a slot orphaned by a dead peer is reusable.
  static ArenaStatus attach(const char* path, ShmQueue* out) {
    ShmArena arena;
    ArenaStatus st = ShmArena::attach(path, &arena);
    if (st != ArenaStatus::kOk) return st;
    const std::uint64_t bytes = arena.bytes();
    // Every bounds check below is phrased subtraction-first so a crafted
    // header (offsets or counts near UINT64_MAX) cannot wrap an unsigned
    // sum back into range and drive out-of-bounds accesses.
    auto extent_ok = [bytes](ShmOffset off, std::uint64_t count,
                             std::uint64_t elem) {
      return off != kNullOffset && off < bytes &&
             count <= (bytes - off) / elem;
    };
    ShmOffset root = arena.root();
    if (root == kNullOffset || root >= bytes ||
        bytes - root < sizeof(Control)) {
      return ArenaStatus::kBadGeometry;
    }
    auto* ctrl = arena.at<Control>(root);
    const Geometry& g = ctrl->geo;
    if (g.max_procs == 0 || g.seg_cells < 4 ||
        (g.seg_cells & (g.seg_cells - 1)) != 0 ||
        g.seg_shift >= 32 || (std::uint32_t{1} << g.seg_shift) != g.seg_cells ||
        g.rescue_slots == 0 || g.max_segments == 0 ||
        g.max_segments > ~std::uint64_t{0} / g.seg_cells ||
        g.capacity != g.max_segments * g.seg_cells ||
        !extent_ok(ctrl->slots_off, g.max_procs, sizeof(ProcSlot)) ||
        !extent_ok(ctrl->ring_off, g.rescue_slots, sizeof(RescueSlot)) ||
        !extent_ok(ctrl->dir_off, g.max_segments, sizeof(AtomicShmOffset))) {
      return ArenaStatus::kBadGeometry;
    }
    // The directory's populated entries are arena offsets written by live
    // peers; a corrupted file with valid magic could point them anywhere.
    // Reject any materialized segment that is not fully inside the arena
    // (concurrent peers only ever append alloc()-vetted offsets, so a
    // falsely-clean race read is impossible).
    auto* dir = arena.template at<AtomicShmOffset>(ctrl->dir_off);
    for (std::uint64_t seg = 0; seg < g.max_segments; ++seg) {
      ShmOffset off = dir[seg].load(std::memory_order_acquire);
      if (off != kNullOffset && !extent_ok(off, g.seg_cells, sizeof(Cell))) {
        return ArenaStatus::kBadGeometry;
      }
    }
    out->adopt(std::move(arena), root);
    out->recover();
    return out->claim(&out->self_) ? ArenaStatus::kOk : ArenaStatus::kTooSmall;
  }

  /// Claim an additional actor slot (e.g. one per thread). Returns false
  /// when every slot is held by a live process.
  bool claim(LocalHandle* lh) {
    Control* c = ctrl_;
    ProcSlot* slots = arena_.template at<ProcSlot>(c->slots_off);
    const std::uint32_t me = (std::uint32_t)::getpid();
    const std::uint64_t my_start = proc_start_time(::getpid());
    for (int attempt = 0; attempt < 2; ++attempt) {
      for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
        std::uint32_t expect = 0;
        if (slots[i].pid.load(std::memory_order_acquire) == 0 &&
            slots[i].pid.compare_exchange_strong(expect, me,
                                                 std::memory_order_seq_cst)) {
          slots[i].start_time.store(my_start, std::memory_order_release);
          slots[i].op_state.store(kOpIdle, std::memory_order_release);
          // Deliberately leave slots[i].spare alone: a previous holder's
          // parked segment (dead or detached) is inherited, not leaked.
          lh->slot = &slots[i];
          c->peer_gen.fetch_add(1, std::memory_order_release);
          return true;
        }
      }
      // Full table: dead peers may be squatting — recover and retry once.
      if (attempt == 0) recover();
    }
    return false;
  }

  /// Return a claimed slot to the free pool (its op must be quiescent).
  /// The slot's spare segment, if any, stays parked for the next claimant.
  void release(LocalHandle* lh) {
    if (lh->slot == nullptr) return;
    lh->slot->op_state.store(kOpIdle, std::memory_order_relaxed);
    lh->slot->generation.fetch_add(1, std::memory_order_relaxed);
    lh->slot->start_time.store(0, std::memory_order_relaxed);
    lh->slot->pid.store(0, std::memory_order_release);
    lh->slot = nullptr;
    ctrl_->peer_gen.fetch_add(1, std::memory_order_release);
  }

  /// Release this process's default slot (op must be quiescent) and unmap.
  void detach() {
    if (!arena_.valid()) return;
    release(&self_);
    arena_.close();
    ctrl_ = nullptr;
  }

  bool attached() const noexcept { return ctrl_ != nullptr; }

  // ---- operations -----------------------------------------------------

  ShmPush enqueue(LocalHandle& lh, std::uint64_t v) {
    Control* c = ctrl_;
    ProcSlot* slot = lh.slot;
    slot->op_value.store(v, std::memory_order_relaxed);
    for (;;) {
      if (c->closed.load(std::memory_order_acquire) != 0) {
        finish_op(lh);
        return ShmPush::kClosed;
      }
      slot->op_state.store(kOpEnqPending, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      WFQ_INJECT(Traits, "shm_enq_pending");
      if (c->tail.load(std::memory_order_relaxed) >= c->geo.capacity) {
        finish_op(lh);
        return ShmPush::kFull;
      }
      const std::uint64_t t = c->tail.fetch_add(1, std::memory_order_seq_cst);
      slot->op_ticket.store(t, std::memory_order_relaxed);
      slot->op_state.store(kOpEnqTicketed, std::memory_order_release);
      WFQ_INJECT(Traits, "shm_enq_ticketed");
      if (t >= c->geo.capacity) {
        finish_op(lh);
        return ShmPush::kFull;
      }
      Cell* cell = cell_for(t, lh);
      if (cell == nullptr) {
        finish_op(lh);
        return ShmPush::kNoMem;
      }
      cell->value.store(v, std::memory_order_relaxed);
      std::uint64_t expect = kCellEmpty;
      if (cell->state.compare_exchange_strong(expect, kCellValue,
                                              std::memory_order_seq_cst,
                                              std::memory_order_acquire)) {
        WFQ_INJECT(Traits, "shm_enq_deposited");
        wake_consumers();
        finish_op(lh);
        return ShmPush::kOk;
      }
      // Cell poisoned by an impatient/recovering consumer: fresh ticket.
    }
  }

  ShmPush enqueue(std::uint64_t v) { return enqueue(self_, v); }

  /// `pre(value)` runs while the value is still exclusively ours but
  /// BEFORE the commit CAS — the crash-conservation hook: a caller that
  /// journals the value in `pre` can never lose it to a kill between
  /// commit and journal (dying before the CAS means the value is rescued
  /// and redelivered instead). Default is a no-op.
  template <class Pre>
  ShmPop dequeue(LocalHandle& lh, std::uint64_t* out, Pre&& pre) {
    Control* c = ctrl_;
    ProcSlot* slot = lh.slot;
    for (;;) {
      // Re-publish Pending on EVERY iteration (mirroring enqueue): a retry
      // otherwise leaves the slot Ticketed with the previous ticket during
      // the window between the head FAA below and the op_ticket store, so
      // floor_scan would see neither a pending op nor a live claim on the
      // new ticket and could rescue the very cell this live consumer is
      // about to take — duplicate delivery with no kill.
      slot->op_state.store(kOpDeqPending, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      WFQ_INJECT(Traits, "shm_deq_pending");
      if (claim_rescued(out, pre)) {
        finish_op(lh);
        return ShmPop::kOk;
      }
      const std::uint64_t h = c->head.load(std::memory_order_seq_cst);
      const std::uint64_t t = c->tail.load(std::memory_order_seq_cst);
      if (h >= t || h >= c->geo.capacity) {
        finish_op(lh);
        return ShmPop::kEmpty;
      }
      const std::uint64_t tk = c->head.fetch_add(1, std::memory_order_seq_cst);
      slot->op_ticket.store(tk, std::memory_order_relaxed);
      slot->op_state.store(kOpDeqTicketed, std::memory_order_release);
      WFQ_INJECT(Traits, "shm_deq_ticketed");
      if (tk >= c->geo.capacity) continue;  // racing FAAs overshot capacity
      Cell* cell = cell_for(tk, lh);
      if (cell == nullptr) continue;  // arena exhausted: no deposit possible
      // Wait briefly for a slow producer, then poison the cell so it
      // retries a fresh ticket (bounded: this is the lock-free, not
      // wait-free, corner of the shm deployment).
      std::uint64_t st = cell->state.load(std::memory_order_acquire);
      for (unsigned spin = 0; st == kCellEmpty && spin < kDepositPatience;
           ++spin) {
        cpu_relax();
        st = cell->state.load(std::memory_order_acquire);
      }
      if (st == kCellEmpty) {
        std::uint64_t expect = kCellEmpty;
        if (cell->state.compare_exchange_strong(expect, kCellPoisoned,
                                                std::memory_order_seq_cst,
                                                std::memory_order_acquire)) {
          continue;  // miss; producer (if any) will retry elsewhere
        }
        st = expect;
      }
      if (st == kCellValue) {
        const std::uint64_t v = cell->value.load(std::memory_order_relaxed);
        pre(v);
        std::uint64_t expect = kCellValue;
        if (cell->state.compare_exchange_strong(expect, kCellConsumed,
                                                std::memory_order_seq_cst,
                                                std::memory_order_acquire)) {
          WFQ_INJECT(Traits, "shm_deq_taken");
          *out = v;
          finish_op(lh);
          return ShmPop::kOk;
        }
        // A recoverer presumed us dead (pid-reuse false positive) and
        // rescued the cell: the value is in the ring, not ours to return.
      }
      // CONSUMED/POISONED: resolved under us; take another ticket.
    }
  }

  ShmPop dequeue(LocalHandle& lh, std::uint64_t* out) {
    return dequeue(lh, out, [](std::uint64_t) {});
  }
  template <class Pre>
  ShmPop dequeue(std::uint64_t* out, Pre&& pre) {
    return dequeue(self_, out, std::forward<Pre>(pre));
  }
  ShmPop dequeue(std::uint64_t* out) {
    return dequeue(self_, out, [](std::uint64_t) {});
  }

  /// Blocking pop: parks on the cross-process futex word until a deposit,
  /// a rescue, or the deadline. Spurious wakes re-loop.
  template <class Pre>
  bool pop_wait_until(LocalHandle& lh, std::uint64_t* out,
                      std::chrono::steady_clock::time_point deadline,
                      Pre&& pre) {
    Control* c = ctrl_;
    for (;;) {
      if (dequeue(lh, out, pre) == ShmPop::kOk) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      c->waiters.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t ev = c->enq_events.load(std::memory_order_seq_cst);
      // Recheck after registering: a deposit between our empty dequeue and
      // the waiter increment must not be missed.
      if (c->head.load(std::memory_order_seq_cst) <
              c->tail.load(std::memory_order_seq_cst) ||
          c->rescued_pending.load(std::memory_order_seq_cst) != 0) {
        c->waiters.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      WFQ_INJECT(Traits, "shm_park");
      parker::wait_until(c->enq_events, ev, deadline);
      c->waiters.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  bool pop_wait_until(std::uint64_t* out,
                      std::chrono::steady_clock::time_point deadline) {
    return pop_wait_until(self_, out, deadline, [](std::uint64_t) {});
  }

  void close() {
    ctrl_->closed.store(1, std::memory_order_release);
    wake_consumers();
  }
  bool closed() const {
    return ctrl_->closed.load(std::memory_order_acquire) != 0;
  }

  // ---- crash recovery -------------------------------------------------

  /// Detect dead peers and drive their half-finished operations to a
  /// resolved state. Safe to call from any attached process at any time;
  /// a single recoverer runs at once (stealable lock), every step is
  /// idempotent, and a recoverer killed mid-flight leaves a state its
  /// successor completes. Returns the number of dead slots reclaimed.
  std::size_t recover() {
    Control* c = ctrl_;
    if (!acquire_recovery_lock()) return 0;
    std::size_t reclaimed = 0;
    ProcSlot* slots = arena_.template at<ProcSlot>(c->slots_off);
    for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
      WFQ_INJECT(Traits, "shm_recover_scan");
      ProcSlot& s = slots[i];
      const std::uint32_t pid = s.pid.load(std::memory_order_acquire);
      if (pid == 0) continue;
      if (process_alive((pid_t)pid,
                        s.start_time.load(std::memory_order_relaxed))) {
        continue;
      }
      resolve_dead_slot(s);
      c->peer_deaths.fetch_add(1, std::memory_order_relaxed);
      // Free the slot last: once pid drops to 0 a new process may claim
      // it, so the op record must already be quiescent.
      s.op_state.store(kOpIdle, std::memory_order_relaxed);
      s.generation.fetch_add(1, std::memory_order_relaxed);
      s.start_time.store(0, std::memory_order_relaxed);
      s.pid.store(0, std::memory_order_release);
      ++reclaimed;
    }
    // Ring entries stuck in Claiming by a dead claimer go back to Full.
    RescueSlot* ring = arena_.template at<RescueSlot>(c->ring_off);
    for (std::uint32_t i = 0; i < c->geo.rescue_slots; ++i) {
      std::uint64_t st = ring[i].state.load(std::memory_order_acquire);
      if ((st & 0xff) != kRsClaimTag) continue;
      const pid_t claimer = (pid_t)(st >> 8);
      if (process_alive(claimer, 0)) continue;
      if (ring[i].state.compare_exchange_strong(st, kRsFull,
                                                std::memory_order_seq_cst)) {
        c->rescued_pending.fetch_add(1, std::memory_order_relaxed);
        wake_consumers();
      }
    }
    floor_scan();
    // rescued_pending is derivable state: the exact count of Full ring
    // entries. Claimers killed between their Full->Claiming CAS and the
    // matching fetch_sub (plus the Claiming->Full restore above) would
    // otherwise drift it permanently upward, and a permanent overcount
    // pins pop_wait_until's park recheck awake — a 100% CPU spin on an
    // empty queue. Under the recovery lock this scan is the only rescuer,
    // so recount and store the truth; a live claimer racing the recount
    // can skew it by a transient unit that the next recover() corrects.
    std::uint64_t full_entries = 0;
    for (std::uint32_t i = 0; i < c->geo.rescue_slots; ++i) {
      if (ring[i].state.load(std::memory_order_acquire) == kRsFull) {
        ++full_entries;
      }
    }
    c->rescued_pending.store(full_entries, std::memory_order_seq_cst);
    // Membership changed: every attachment's maybe_recover() snapshot is
    // now stale — bump before dropping the lock so a prober serialized
    // behind us resnapshots instead of re-detecting the same corpses.
    if (reclaimed != 0) c->peer_gen.fetch_add(1, std::memory_order_release);
    release_recovery_lock();
    if (reclaimed != 0) wake_consumers();
    return reclaimed;
  }

  /// The idle-park probe: decide whether a full recover() is warranted
  /// without paying for one. Parked dequeuers call this once per wait
  /// slice; on a quiet queue with stable membership the cost is one atomic
  /// load (peer_gen) plus one liveness poll per cached LIVE peer — and
  /// with no peers at all, O(1). recover() by contrast walks every proc
  /// slot AND the whole rescue ring AND recounts rescued_pending under the
  /// shared recovery lock, which is exactly the per-slice work an idle
  /// consumer used to burn.
  ///
  /// Detection stays prompt: a graceless death never bumps peer_gen, so
  /// the victim's cached (pid, start_time) pair remains in the snapshot
  /// until the liveness poll catches it — at most one slice later than
  /// calling recover() unconditionally, which polls the same /proc state.
  std::size_t maybe_recover() {
    ProbeState& ps = *probe_;
    std::unique_lock<std::mutex> lk(ps.mu, std::try_to_lock);
    if (!lk.owns_lock()) return 0;  // a sibling thread is already probing
    const std::uint64_t gen = ctrl_->peer_gen.load(std::memory_order_acquire);
    if (gen != ps.snapshot_gen) {
      snapshot_peers(ps);
      ps.snapshot_gen = gen;
    }
    for (const auto& peer : ps.peers) {
      if (process_alive((pid_t)peer.first, peer.second)) continue;
      ps.full_runs.fetch_add(1, std::memory_order_relaxed);
      // Invalidate locally before escalating: recover() bumps peer_gen
      // only when it wins the lock AND reclaims, so a lost race must not
      // pin the corpse in our cache (it would escalate every slice).
      ps.snapshot_gen = ~std::uint64_t{0};
      lk.unlock();
      return recover();
    }
    return 0;
  }

  /// How many maybe_recover() probes escalated to a full recover() on this
  /// attachment. A consumer parked on a quiet queue with stable peers must
  /// leave this at zero no matter how many slices elapse.
  std::uint64_t recover_full_runs() const noexcept {
    return probe_->full_runs.load(std::memory_order_relaxed);
  }

  // ---- introspection / audit ------------------------------------------

  std::uint64_t capacity() const { return ctrl_->geo.capacity; }
  std::uint64_t head() const {
    return ctrl_->head.load(std::memory_order_acquire);
  }
  std::uint64_t tail() const {
    return ctrl_->tail.load(std::memory_order_acquire);
  }
  std::uint64_t approx_size() const {
    std::uint64_t h = head(), t = tail();
    return t > h ? t - h : 0;
  }
  std::uint64_t peer_deaths() const {
    return ctrl_->peer_deaths.load(std::memory_order_relaxed);
  }
  std::uint64_t shm_adoptions() const {
    return ctrl_->shm_adoptions.load(std::memory_order_relaxed);
  }
  const Geometry& geometry() const { return ctrl_->geo; }

  /// Ground-truth audit walk: invoke fn(ticket, state, value) for every
  /// cell of every materialized segment. Single-threaded use (post-chaos
  /// parent) — concurrent ops make the walk a snapshot, not an inventory.
  template <class Fn>
  void scan_cells(Fn&& fn) const {
    const Geometry& g = ctrl_->geo;
    AtomicShmOffset* dir = arena_.template at<AtomicShmOffset>(ctrl_->dir_off);
    for (std::uint64_t seg = 0; seg < g.max_segments; ++seg) {
      ShmOffset off = dir[seg].load(std::memory_order_acquire);
      if (off == kNullOffset) continue;
      Cell* cells = arena_.template at<Cell>(off);
      for (std::uint32_t i = 0; i < g.seg_cells; ++i) {
        fn(seg * g.seg_cells + i,
           cells[i].state.load(std::memory_order_acquire),
           cells[i].value.load(std::memory_order_relaxed));
      }
    }
  }

  /// fn(state, ticket, value) for every used rescue-ring entry.
  template <class Fn>
  void scan_rescue_ring(Fn&& fn) const {
    RescueSlot* ring = arena_.template at<RescueSlot>(ctrl_->ring_off);
    for (std::uint32_t i = 0; i < ctrl_->geo.rescue_slots; ++i) {
      std::uint64_t st = ring[i].state.load(std::memory_order_acquire);
      if (st == kRsUnused) continue;
      fn(st, ring[i].ticket.load(std::memory_order_relaxed),
         ring[i].value.load(std::memory_order_relaxed));
    }
  }

  /// Number of live (attached) peer slots, this process included.
  std::uint32_t attached_procs() const {
    Control* c = ctrl_;
    ProcSlot* slots = arena_.template at<ProcSlot>(c->slots_off);
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
      if (slots[i].pid.load(std::memory_order_acquire) != 0) ++n;
    }
    return n;
  }

 private:
#if defined(__linux__)
  using parker = sync::SharedFutex;
#else
  using parker = sync::PortableFutex;  // same-process fallback only
#endif

  static constexpr unsigned kDepositPatience = 2048;

  static std::uint32_t shift_of(std::uint32_t pow2) {
    std::uint32_t s = 0;
    while ((1u << s) < pow2) ++s;
    return s;
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  void adopt(ShmArena&& arena, ShmOffset ctrl_off) {
    arena_ = std::move(arena);
    ctrl_ = arena_.template at<Control>(ctrl_off);
  }

  void swap(ShmQueue& o) noexcept {
    std::swap(arena_, o.arena_);
    std::swap(ctrl_, o.ctrl_);
    std::swap(self_, o.self_);
    std::swap(probe_, o.probe_);
  }

  /// Local (per-attachment) cache behind maybe_recover(): the peer
  /// membership snapshot and the peer_gen it was taken at. Heap-held via
  /// unique_ptr because ShmQueue is movable and mutex/atomic are not.
  struct ProbeState {
    std::mutex mu;  ///< one prober per attachment at a time
    std::uint64_t snapshot_gen = ~std::uint64_t{0};  ///< force first snapshot
    std::vector<std::pair<std::uint32_t, std::uint64_t>> peers;
    std::atomic<std::uint64_t> full_runs{0};
  };

  /// Rebuild the (pid, start_time) peer list from the slot table. Own-pid
  /// slots are excluded: this process is alive by definition, and a
  /// multi-handle process would otherwise poll itself every slice.
  void snapshot_peers(ProbeState& ps) {
    ps.peers.clear();
    Control* c = ctrl_;
    ProcSlot* slots = arena_.template at<ProcSlot>(c->slots_off);
    const std::uint32_t me = (std::uint32_t)::getpid();
    for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
      const std::uint32_t pid = slots[i].pid.load(std::memory_order_acquire);
      if (pid == 0 || pid == me) continue;
      // start_time 0 means the claim is mid-flight; process_alive treats
      // that as alive, so a half-published peer can't trigger a recover.
      ps.peers.emplace_back(
          pid, slots[i].start_time.load(std::memory_order_acquire));
    }
  }

  void finish_op(LocalHandle& lh) {
    lh.slot->op_state.store(kOpIdle, std::memory_order_release);
  }

  Cell* cell_for(std::uint64_t ticket, LocalHandle& lh) {
    const Geometry& g = ctrl_->geo;
    const std::uint64_t seg = ticket >> g.seg_shift;
    AtomicShmOffset* dir = arena_.template at<AtomicShmOffset>(ctrl_->dir_off);
    ShmOffset off = dir[seg].load(std::memory_order_acquire);
    if (off == kNullOffset) {
      off = extend(dir, seg, lh);
      if (off == kNullOffset) return nullptr;
    }
    return arena_.template at<Cell>(off) +
           (ticket & (std::uint64_t(g.seg_cells) - 1));
  }

  /// Materialize segment `seg`: bump-allocate (fresh arena bytes are
  /// zero => all cells EMPTY) and CAS it into the directory. The loser of
  /// an append race parks its allocation in the proc slot's `spare` for
  /// the next extension — bump memory cannot be returned, but a parked
  /// spare survives its owner's death (the slot's next claimant inherits
  /// it). Only a kill inside this function, between alloc() and the CAS
  /// or park below, can still leak a segment; create() budgets arena
  /// slack for max_procs such leaks.
  ShmOffset extend(AtomicShmOffset* dir, std::uint64_t seg, LocalHandle& lh) {
    WFQ_INJECT(Traits, "shm_extend");
    const std::uint64_t seg_bytes =
        std::uint64_t(ctrl_->geo.seg_cells) * sizeof(Cell);
    ShmOffset fresh =
        lh.slot->spare.exchange(kNullOffset, std::memory_order_relaxed);
    if (fresh == kNullOffset) fresh = arena_.alloc(seg_bytes);
    if (fresh == kNullOffset) return kNullOffset;
    ShmOffset expect = kNullOffset;
    if (dir[seg].compare_exchange_strong(expect, fresh,
                                         std::memory_order_seq_cst)) {
      return fresh;
    }
    lh.slot->spare.store(fresh, std::memory_order_relaxed);
    return expect;
  }

  void wake_consumers() {
    Control* c = ctrl_;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (c->waiters.load(std::memory_order_seq_cst) != 0) {
      c->enq_events.fetch_add(1, std::memory_order_seq_cst);
      parker::wake_all(c->enq_events);
    }
  }

  // ---- rescue ring ----------------------------------------------------

  template <class Pre>
  bool claim_rescued(std::uint64_t* out, Pre&& pre) {
    Control* c = ctrl_;
    if (c->rescued_pending.load(std::memory_order_seq_cst) == 0) return false;
    RescueSlot* ring = arena_.template at<RescueSlot>(c->ring_off);
    const std::uint64_t claiming =
        (std::uint64_t((std::uint32_t)::getpid()) << 8) | kRsClaimTag;
    for (std::uint32_t i = 0; i < c->geo.rescue_slots; ++i) {
      std::uint64_t st = ring[i].state.load(std::memory_order_acquire);
      if (st != kRsFull) continue;
      if (!ring[i].state.compare_exchange_strong(st, claiming,
                                                 std::memory_order_seq_cst)) {
        continue;
      }
      // A kill here leaves the entry Claiming and the hint undecremented;
      // recover() reverts the entry to Full and recounts the hint exactly.
      WFQ_INJECT(Traits, "shm_rescue_claiming");
      c->rescued_pending.fetch_sub(1, std::memory_order_relaxed);
      const std::uint64_t v = ring[i].value.load(std::memory_order_relaxed);
      pre(v);
      ring[i].state.store(kRsDone, std::memory_order_release);
      *out = v;
      return true;
    }
    return false;
  }

  /// Idempotent rescue of a stranded VALUE cell, keyed by ticket: commit
  /// point is the entry's Unused->Full store; the cell's VALUE->CONSUMED
  /// CAS afterwards is cleanup a successor recoverer re-runs harmlessly.
  /// Returns false when the ring is out of entries — the value simply
  /// stays in its cell (visible to the audit, never lost) and the floor
  /// stops advancing past it.
  bool rescue(Cell* cell, std::uint64_t ticket) {
    Control* c = ctrl_;
    RescueSlot* ring = arena_.template at<RescueSlot>(c->ring_off);
    std::int64_t free_idx = -1;
    for (std::uint32_t i = 0; i < c->geo.rescue_slots; ++i) {
      const std::uint64_t st = ring[i].state.load(std::memory_order_acquire);
      if (st == kRsUnused) {
        if (free_idx < 0) free_idx = i;
        continue;
      }
      if (ring[i].ticket.load(std::memory_order_relaxed) == ticket) {
        // Already committed by a recoverer that died before the cleanup
        // CAS (or by an earlier pass): just finish the cleanup.
        mark_rescued(cell);
        return true;
      }
    }
    if (free_idx < 0) return false;
    RescueSlot& e = ring[free_idx];
    e.ticket.store(ticket, std::memory_order_relaxed);
    e.value.store(cell->value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    e.state.store(kRsFull, std::memory_order_release);  // commit
    c->rescued_pending.fetch_add(1, std::memory_order_relaxed);
    c->shm_adoptions.fetch_add(1, std::memory_order_relaxed);
    mark_rescued(cell);
    wake_consumers();
    return true;
  }

  static void mark_rescued(Cell* cell) {
    std::uint64_t expect = kCellValue;
    cell->state.compare_exchange_strong(expect, kCellConsumed,
                                        std::memory_order_seq_cst);
  }

  // ---- dead-peer resolution -------------------------------------------

  void resolve_dead_slot(ProcSlot& s) {
    Control* c = ctrl_;
    const std::uint32_t op = s.op_state.load(std::memory_order_acquire);
    const std::uint64_t tk = s.op_ticket.load(std::memory_order_relaxed);
    if (op == kOpIdle || tk >= c->geo.capacity) return;
    if (op == kOpEnqTicketed) {
      Cell* cell = cell_for(tk, self_);
      if (cell == nullptr) return;
      std::uint64_t expect = kCellEmpty;
      // Deposit never landed: poison so the ticket is accounted terminal.
      // (If it DID land — state VALUE — the enqueue semantically completed
      // and the value flows through normal consumption.)
      if (cell->state.compare_exchange_strong(expect, kCellPoisoned,
                                              std::memory_order_seq_cst)) {
        c->shm_adoptions.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (op == kOpDeqTicketed) {
      Cell* cell = cell_for(tk, self_);
      if (cell == nullptr) return;
      std::uint64_t st = cell->state.load(std::memory_order_acquire);
      if (st == kCellEmpty) {
        std::uint64_t expect = kCellEmpty;
        if (cell->state.compare_exchange_strong(expect, kCellPoisoned,
                                                std::memory_order_seq_cst)) {
          c->shm_adoptions.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        st = expect;
      }
      if (st == kCellValue) {
        // Consumer died holding the only ticket that will ever visit this
        // cell: move the value to the rescue ring for redelivery.
        rescue(cell, tk);
      }
      return;
    }
    // Pending states carry no ticket; the floor scan resolves whatever
    // their (possibly executed) FAA left behind.
  }

  /// Advance recovery_floor over consumed-ticket space [floor, head),
  /// rescuing VALUE cells whose ticket no live process claims — the
  /// residue of peers killed between their FAA and their ticket record.
  /// Conservative: stops at any cell that could still be a LIVE process's
  /// in-flight operation.
  void floor_scan() {
    Control* c = ctrl_;
    ProcSlot* slots = arena_.template at<ProcSlot>(c->slots_off);
    const std::uint64_t h = c->head.load(std::memory_order_seq_cst);
    // Pairs with the Pending-publication fences in enqueue/dequeue: any op
    // whose FAA is visible in `h` published Pending (and fenced) before
    // that FAA, so after this fence the op_state loads below must observe
    // at least Pending for every ticket the scan range covers.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t limit = h < c->geo.capacity ? h : c->geo.capacity;
    std::uint64_t f = c->recovery_floor.load(std::memory_order_relaxed);
    bool any_pending = false;
    for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
      if (slots[i].pid.load(std::memory_order_acquire) == 0) continue;
      const std::uint32_t op = slots[i].op_state.load(std::memory_order_acquire);
      if (op == kOpEnqPending || op == kOpDeqPending) any_pending = true;
    }
    while (f < limit) {
      Cell* cell = cell_for(f, self_);
      if (cell == nullptr) break;
      std::uint64_t st = cell->state.load(std::memory_order_acquire);
      if (st == kCellConsumed || st == kCellPoisoned) {
        ++f;
        continue;
      }
      // EMPTY or VALUE below head: claimed by a live Ticketed op?
      bool live_claim = false;
      for (std::uint32_t i = 0; i < c->geo.max_procs; ++i) {
        if (slots[i].pid.load(std::memory_order_acquire) == 0) continue;
        const std::uint32_t op =
            slots[i].op_state.load(std::memory_order_acquire);
        if ((op == kOpEnqTicketed || op == kOpDeqTicketed) &&
            slots[i].op_ticket.load(std::memory_order_relaxed) == f) {
          live_claim = true;
          break;
        }
      }
      // A live Pending op might own this very ticket without having
      // recorded it yet — resolving would race a living process. Stop;
      // the next recover() call re-scans once they've progressed.
      if (live_claim || any_pending) break;
      if (st == kCellValue) {
        if (!rescue(cell, f)) break;  // ring exhausted: value stays put
        ++f;
        continue;
      }
      // EMPTY, unclaimed, below head: both parties are gone. Poison so a
      // late producer (should this ticket's FAA still be in flight
      // somewhere) retries instead of depositing into a black hole.
      std::uint64_t expect = kCellEmpty;
      if (cell->state.compare_exchange_strong(expect, kCellPoisoned,
                                              std::memory_order_seq_cst)) {
        ++f;
        continue;
      }
      // State moved under us: re-examine the same index.
    }
    // Monotone publish (another recoverer may already be further along).
    std::uint64_t cur = c->recovery_floor.load(std::memory_order_relaxed);
    while (f > cur && !c->recovery_floor.compare_exchange_weak(
                          cur, f, std::memory_order_relaxed)) {
    }
  }

  // ---- recovery lock --------------------------------------------------
  //
  // One u64: 0 = free, else (pid << 32) | (holder starttime & 0xffffffff).
  // Stealable: a holder whose pid is dead (or whose starttime low bits no
  // longer match — pid reuse) lost the lock to whoever CASes it over.

  std::uint64_t lock_word_self() const {
    const std::uint32_t pid = (std::uint32_t)::getpid();
    const std::uint64_t st = proc_start_time(::getpid());
    return (std::uint64_t(pid) << 32) | (st & 0xffffffffu);
  }

  bool acquire_recovery_lock() {
    Control* c = ctrl_;
    const std::uint64_t mine = lock_word_self();
    std::uint64_t cur = c->recovery_lock.load(std::memory_order_acquire);
    for (;;) {
      if (cur == 0) {
        if (c->recovery_lock.compare_exchange_weak(cur, mine,
                                                   std::memory_order_seq_cst)) {
          return true;
        }
        continue;
      }
      if (cur == mine) return true;  // re-entrant after a partial run
      const pid_t holder = (pid_t)(cur >> 32);
      const std::uint64_t holder_st_low = cur & 0xffffffffu;
      bool holder_alive = process_alive(holder, 0) &&
                          (proc_start_time(holder) & 0xffffffffu) ==
                              holder_st_low;
      if (holder_alive) return false;  // someone live is recovering
      if (c->recovery_lock.compare_exchange_weak(cur, mine,
                                                 std::memory_order_seq_cst)) {
        return true;  // stole a dead recoverer's lock
      }
    }
  }

  void release_recovery_lock() {
    Control* c = ctrl_;
    std::uint64_t mine = lock_word_self();
    c->recovery_lock.compare_exchange_strong(mine, 0,
                                             std::memory_order_seq_cst);
  }

  ShmArena arena_;
  Control* ctrl_ = nullptr;
  LocalHandle self_;
  std::unique_ptr<ProbeState> probe_ = std::make_unique<ProbeState>();
};

}  // namespace wfq::ipc
