// Unit tests for the workload PRNG.
#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace wfq {
namespace {

TEST(Xorshift, DeterministicForSameSeed) {
  Xorshift128Plus a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, DifferentSeedsDiverge) {
  Xorshift128Plus a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Xorshift, ConsecutiveThreadSeedsAreIndependent) {
  // Thread ids are used directly as seeds in the harness; splitmix64
  // seeding must decorrelate them.
  Xorshift128Plus a(0), b(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Xorshift, NextBelowStaysInRange) {
  Xorshift128Plus rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xorshift, NextInIsInclusive) {
  Xorshift128Plus rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_in(50, 100));
  EXPECT_EQ(*seen.begin(), 50u);
  EXPECT_EQ(*seen.rbegin(), 100u);
  EXPECT_EQ(seen.size(), 51u);
}

TEST(Xorshift, UniformityChiSquared) {
  // 16 buckets, 160k samples: chi^2 with 15 dof; 99.9th percentile ~ 37.7.
  Xorshift128Plus rng(123);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.next_below(kBuckets)]++;
  }
  double expected = double(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 37.7) << "suspiciously non-uniform";
}

TEST(Xorshift, PercentChanceRoughlyCalibrated) {
  Xorshift128Plus rng(55);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.percent_chance(50);
  // 50% +- 1% at 100k trials is > 6 sigma.
  EXPECT_NEAR(hits, kTrials / 2, kTrials / 100);
}

TEST(Xorshift, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xorshift128Plus::min() == 0);
  static_assert(Xorshift128Plus::max() == ~uint64_t{0});
  Xorshift128Plus rng(3);
  EXPECT_GE(rng(), Xorshift128Plus::min());
}

}  // namespace
}  // namespace wfq
