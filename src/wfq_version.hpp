// Library version and feature-detection macros.
#pragma once

#define WFQ_VERSION_MAJOR 1
#define WFQ_VERSION_MINOR 0
#define WFQ_VERSION_PATCH 0
#define WFQ_VERSION_STRING "1.0.0"

namespace wfq {

struct Version {
  int major;
  int minor;
  int patch;
};

/// Runtime-queryable library version.
constexpr Version version() noexcept {
  return Version{WFQ_VERSION_MAJOR, WFQ_VERSION_MINOR, WFQ_VERSION_PATCH};
}

/// True when the build has hardware double-width CAS (LCRQ is lock-free
/// rather than lock-emulated).
constexpr bool has_native_cas2() noexcept {
#if defined(WFQ_HAVE_CX16)
  return true;
#else
  return false;
#endif
}

}  // namespace wfq
