// Randomized (property) tests: the queue against an STL oracle under long
// random operation sequences, and codec round-trips over random bit
// patterns — parameterized over seeds so failures are reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>

#include "common/random.hpp"
#include "core/slot_codec.hpp"
#include "core/wf_queue.hpp"

namespace wfq {
namespace {

struct Seg16 : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 16;
};

class WfFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WfFuzz, SequentialAgainstStlOracle) {
  // Single-threaded random ops must match std::deque exactly — including
  // EMPTY results. (Concurrent correctness is covered by the
  // linearizability suite; this pins down exact sequential semantics.)
  Xorshift128Plus rng(GetParam());
  WfConfig cfg;
  cfg.patience = unsigned(rng.next_below(12));
  cfg.max_garbage = int64_t(rng.next_in(1, 32));
  WFQueue<uint64_t, Seg16> q(cfg);
  auto h = q.get_handle();
  std::deque<uint64_t> oracle;
  uint64_t next = 1;
  for (int i = 0; i < 20000; ++i) {
    if (rng.percent_chance(55)) {
      q.enqueue(h, next);
      oracle.push_back(next);
      ++next;
    } else {
      auto got = q.dequeue(h);
      if (oracle.empty()) {
        ASSERT_FALSE(got.has_value()) << "queue invented a value at op " << i;
      } else {
        ASSERT_TRUE(got.has_value()) << "queue lost a value at op " << i;
        ASSERT_EQ(*got, oracle.front());
        oracle.pop_front();
      }
    }
  }
  while (!oracle.empty()) {
    auto got = q.dequeue(h);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, oracle.front());
    oracle.pop_front();
  }
  ASSERT_FALSE(q.dequeue(h).has_value());
}

TEST_P(WfFuzz, RandomUint64PayloadsRoundTrip) {
  Xorshift128Plus rng(GetParam() * 7 + 3);
  WFQueue<uint64_t> q;
  auto h = q.get_handle();
  std::deque<uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.next();
    if (!SlotCodec<uint64_t>::representable(v)) continue;
    q.enqueue(h, v);
    oracle.push_back(v);
  }
  for (uint64_t v : oracle) {
    auto got = q.dequeue(h);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
}

TEST_P(WfFuzz, RandomDoubleBitPatternsRoundTrip) {
  Xorshift128Plus rng(GetParam() * 13 + 1);
  for (int i = 0; i < 100000; ++i) {
    uint64_t bits = rng.next();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    uint64_t slot = SlotCodec<double>::encode(v);
    ASSERT_TRUE(WFQueueCore<DefaultWfTraits>::is_enqueueable(slot)) << bits;
    double back = SlotCodec<double>::decode(slot);
    if (v == v) {  // not NaN: bit-exact
      uint64_t back_bits;
      std::memcpy(&back_bits, &back, sizeof back_bits);
      ASSERT_EQ(back_bits, bits);
    } else {
      ASSERT_NE(back, back) << "NaN must decode to a NaN";
    }
  }
}

TEST_P(WfFuzz, RandomFloatBitPatternsRoundTrip) {
  Xorshift128Plus rng(GetParam() * 17 + 5);
  for (int i = 0; i < 100000; ++i) {
    uint32_t bits = uint32_t(rng.next());
    float v;
    std::memcpy(&v, &bits, sizeof v);
    uint64_t slot = SlotCodec<float>::encode(v);
    ASSERT_TRUE(WFQueueCore<DefaultWfTraits>::is_enqueueable(slot));
    float back = SlotCodec<float>::decode(slot);
    uint32_t back_bits;
    std::memcpy(&back_bits, &back, sizeof back_bits);
    ASSERT_EQ(back_bits, bits) << "float codec must be bit-exact";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u));

TEST(WfMoveOnly, UniquePtrPayloadsEndToEnd) {
  WFQueue<std::unique_ptr<uint64_t>> q;
  auto h = q.get_handle();
  for (uint64_t i = 0; i < 100; ++i) {
    q.enqueue(h, std::make_unique<uint64_t>(i + 1));
  }
  for (uint64_t i = 0; i < 100; ++i) {
    auto got = q.dequeue(h);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(**got, i + 1);
  }
  // Leave a backlog; destructor must free the boxes (ASan-verified).
  for (uint64_t i = 0; i < 32; ++i) {
    q.enqueue(h, std::make_unique<uint64_t>(i));
  }
}

}  // namespace
}  // namespace wfq
