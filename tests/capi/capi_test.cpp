// Tests for the C bindings (semantics; the pure-C compile/link story is
// covered by examples/capi_demo.c, which is built as C).
#include "capi/wfq_c.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

TEST(CApi, CreateDestroy) {
  wfq_queue_t* q = wfq_create_default();
  ASSERT_NE(q, nullptr);
  wfq_destroy(q);
}

TEST(CApi, BasicRoundTrip) {
  wfq_queue_t* q = wfq_create(10, 64);
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 42), 0);
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(wfq_dequeue(h, &out), 0);  // empty
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, RejectsReservedValues) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_enqueue(h, 0), -1);
  EXPECT_EQ(wfq_enqueue(h, ~uint64_t{0}), -1);
  EXPECT_EQ(wfq_enqueue(h, ~uint64_t{0} - 1), -1);
  EXPECT_EQ(wfq_enqueue(h, 1), 0);
  uint64_t out;
  EXPECT_EQ(wfq_dequeue(h, &out), 1);
  EXPECT_EQ(out, 1u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, FifoOrder) {
  wfq_queue_t* q = wfq_create(0, 8);  // WF-0 config through the C surface
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 1000; ++i) EXPECT_EQ(wfq_enqueue(h, i), 0);
  for (uint64_t i = 1; i <= 1000; ++i) {
    uint64_t out = 0;
    ASSERT_EQ(wfq_dequeue(h, &out), 1);
    ASSERT_EQ(out, i);
  }
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, ApproxSizeAndStats) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 10; ++i) wfq_enqueue(h, i);
  EXPECT_EQ(wfq_approx_size(q), 10u);
  uint64_t out;
  wfq_dequeue(h, &out);
  wfq_dequeue(h, &out);
  wfq_dequeue(h, &out);  // 3 dequeues
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.enqueues, 10u);
  EXPECT_EQ(s.dequeues, 3u);
  EXPECT_EQ(s.empty_dequeues, 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, BulkRoundTrip) {
  wfq_queue_t* q = wfq_create(10, 64);
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t vals[100], out[100];
  for (uint64_t i = 0; i < 100; ++i) vals[i] = i + 1;
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 100), 0);  // crosses segments (64)
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 40), 40u);
  for (uint64_t i = 0; i < 40; ++i) ASSERT_EQ(out[i], i + 1);
  // Short return == queue observed empty during the call.
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 100), 60u);
  for (uint64_t i = 0; i < 60; ++i) ASSERT_EQ(out[i], i + 41);
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 8), 0u);
  // count == 0 is a no-op on both sides.
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 0), 0);
  EXPECT_EQ(wfq_dequeue_bulk(h, out, 0), 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, BulkRejectsReservedValuesAtomically) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  // One reserved value anywhere in the batch rejects the whole batch
  // before anything is enqueued.
  uint64_t bad[3] = {1, 0, 3};
  EXPECT_EQ(wfq_enqueue_bulk(h, bad, 3), -1);
  uint64_t bad2[3] = {1, 2, ~uint64_t{0}};
  EXPECT_EQ(wfq_enqueue_bulk(h, bad2, 3), -1);
  uint64_t out;
  EXPECT_EQ(wfq_dequeue(h, &out), 0);  // nothing slipped through
  uint64_t good[3] = {1, 2, 3};
  EXPECT_EQ(wfq_enqueue_bulk(h, good, 3), 0);
  EXPECT_EQ(wfq_dequeue_bulk(h, &out, 1), 1u);
  EXPECT_EQ(out, 1u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, CloseFailsProducersAndDrainsConsumers) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  EXPECT_EQ(wfq_is_closed(q), 0);
  EXPECT_EQ(wfq_enqueue(h, 1), 0);
  EXPECT_EQ(wfq_enqueue(h, 2), 0);
  wfq_close(q);
  EXPECT_EQ(wfq_is_closed(q), 1);
  EXPECT_EQ(wfq_enqueue(h, 3), -2);       // closed beats reserved-OK values
  uint64_t vals[2] = {4, 5};
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 2), -2);
  EXPECT_EQ(wfq_enqueue_bulk(h, vals, 0), -2);  // degenerate batch, closed
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 1);  // residue drains first
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 1);
  EXPECT_EQ(out, 2u);
  EXPECT_EQ(wfq_dequeue_wait(h, &out), 0);  // closed-and-drained
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 1000000), -1);
  wfq_close(q);  // idempotent
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, TimedDequeueTimesOutOnOpenEmptyQueue) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t out = 0;
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 2000000), 0);  // 2 ms, still open
  EXPECT_EQ(wfq_enqueue(h, 9), 0);
  EXPECT_EQ(wfq_dequeue_timed(h, &out, 2000000), 1);
  EXPECT_EQ(out, 9u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, DequeueWaitBlocksUntilDelivery) {
  wfq_queue_t* q = wfq_create_default();
  std::thread consumer([&] {
    wfq_handle_t* h = wfq_handle_acquire(q);
    uint64_t out = 0, sum = 0;
    while (wfq_dequeue_wait(h, &out) == 1) sum += out;
    EXPECT_EQ(sum, 1u + 2u + 3u);
    wfq_handle_release(h);
  });
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ(wfq_enqueue(h, v), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wfq_close(q);
  consumer.join();
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.enqueues, 3u);
  // dequeues counts attempts (empties included), so >= the 3 deliveries.
  EXPECT_GE(s.dequeues, 3u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, NoWaiterWorkloadIssuesNoNotifies) {
  wfq_queue_t* q = wfq_create_default();
  wfq_handle_t* h = wfq_handle_acquire(q);
  for (uint64_t i = 1; i <= 1000; ++i) ASSERT_EQ(wfq_enqueue(h, i), 0);
  uint64_t out;
  while (wfq_dequeue(h, &out) == 1) {
  }
  wfq_stats_t s;
  wfq_get_stats(q, &s);
  EXPECT_EQ(s.notify_calls, 0u);  // nobody parked => producers never woke
  EXPECT_EQ(s.deq_parks, 0u);
  wfq_handle_release(h);
  wfq_destroy(q);
}

TEST(CApi, ConcurrentConservation) {
  wfq_queue_t* q = wfq_create_default();
  constexpr unsigned kThreads = 6;
  constexpr uint64_t kOps = 5000;
  std::vector<uint64_t> sums(kThreads, 0);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      wfq_handle_t* h = wfq_handle_acquire(q);
      uint64_t in = 0, out_sum = 0, out;
      for (uint64_t i = 1; i <= kOps; ++i) {
        uint64_t v = (uint64_t(t) << 40) | i;
        wfq_enqueue(h, v);
        in += v;
        if (wfq_dequeue(h, &out) == 1) out_sum += out;
      }
      sums[t] = in - out_sum;  // residue this thread left in the queue
      wfq_handle_release(h);
    });
  }
  for (auto& t : ts) t.join();
  uint64_t residue = 0;
  for (uint64_t s : sums) residue += s;
  wfq_handle_t* h = wfq_handle_acquire(q);
  uint64_t drained = 0, out;
  while (wfq_dequeue(h, &out) == 1) drained += out;
  wfq_handle_release(h);
  EXPECT_EQ(residue, drained);
  wfq_destroy(q);
}

}  // namespace
