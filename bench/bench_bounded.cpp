// The bounded-memory anchor (committed as BENCH_bounded.json): throughput
// and tail latency of the bounded family against the unbounded references
// at matched ring sizes. SCQ and wCQ run on 4096-slot rings; LCRQ's closed
// rings are 4096 cells each (its kRingSize default), so the three share
// cell-array geometry and the columns isolate protocol cost — threshold
// bookkeeping (SCQ), helping (wCQ), CAS2 cell contention (LCRQ). WF-10 is
// the unbounded contrast line, not a control: its segment list grows while
// the rings stay at their construction-time footprint.
//
// The pairs workload keeps occupancy <= threads, far below 4096, so the
// bound itself never throttles — backpressure behavior is the blocking
// layer's story (bench_wakeup, tools/soak --backend scq|wcq).
//
//   $ ./bench_bounded [--smoke] [--json BENCH_bounded.json]
#include <cstddef>
#include <memory>

#include "bench_common.hpp"

namespace {

/// make_contender for queues whose constructor takes a capacity.
template <class Queue>
wfq::bench::Contender make_ring_contender(std::string name,
                                          std::size_t capacity) {
  wfq::bench::Contender c;
  c.name = std::move(name);
  c.make_invocation = [capacity](const wfq::bench::RunConfig& cfg) {
    auto q = std::make_shared<Queue>(capacity);
    return std::function<double()>(
        [q, cfg] { return wfq::bench::run_workload(*q, cfg).mops_raw(); });
  };
  c.measure_latency = [capacity](unsigned threads, uint64_t pairs) {
    Queue q(capacity);
    return wfq::bench::measure_op_latency(q, threads, pairs);
  };
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  constexpr std::size_t kRing = 4096;  // == LCRQ's per-segment ring size
  wfq::WfConfig wf10;
  wf10.patience = 10;
  std::vector<wfq::bench::Contender> cs;
  cs.push_back(make_ring_contender<wfq::ScqQueue<uint64_t>>("SCQ", kRing));
  cs.push_back(make_ring_contender<wfq::WcqQueue<uint64_t>>("WCQ", kRing));
  cs.push_back(
      wfq::bench::make_contender<wfq::baselines::LCRQ<uint64_t>>("LCRQ"));
  cs.push_back(
      wfq::bench::make_wf_contender<wfq::DefaultWfTraits>("WF-10", wf10));
  wfq::bench::run_figure("bounded: enqueue-dequeue pairs",
                         wfq::bench::WorkloadKind::kPairs, 50, std::move(cs));
  return 0;
}
