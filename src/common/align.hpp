// Cache-line alignment utilities shared by every concurrent module.
//
// The queues in this library put each contended word (head/tail indices,
// per-thread handles, combining locks) on its own cache line to avoid false
// sharing; this header centralizes the constants and the padded wrapper so
// layout decisions live in one place.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wfq {

/// Size of one cache line / false-sharing granule, in bytes.
///
/// `std::hardware_destructive_interference_size` exists but GCC warns when it
/// leaks into ABI; 64 is correct for every x86-64 part and a safe
/// over-estimate elsewhere. On x86 servers with the adjacent-line (spatial)
/// prefetcher enabled, two 64-byte lines behave as one 128-byte
/// destructive-interference granule — build with -DWFQ_CACHELINE=128 there
/// (the CMake cache variable WFQ_CACHELINE plumbs it through). Every padded
/// layout in the tree (CacheAligned, the Handle EnqSide/DeqSide blocks and
/// their offset static_asserts in wf_queue_core.hpp, the segment headers)
/// scales with this constant, so the override is a one-flag rebuild, never
/// a code change. Mixing objects from translation units built with
/// different WFQ_CACHELINE values is an ODR violation — set it globally.
#ifndef WFQ_CACHELINE
#define WFQ_CACHELINE 64
#endif
inline constexpr std::size_t kCacheLineSize = WFQ_CACHELINE;
static_assert(kCacheLineSize >= 64 && kCacheLineSize <= 4096 &&
                  (kCacheLineSize & (kCacheLineSize - 1)) == 0,
              "WFQ_CACHELINE must be a power of two in [64, 4096]");

/// Wraps `T` so that it starts on a cache-line boundary and owns the whole
/// line (the struct is padded up to a multiple of `kCacheLineSize`).
///
/// Use for contended shared words, e.g. `CacheAligned<std::atomic<int64_t>>`.
template <class T>
struct alignas(kCacheLineSize) CacheAligned {
  T value;

  CacheAligned() = default;
  template <class... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CacheAligned<char>) == kCacheLineSize);
static_assert(alignof(CacheAligned<char>) == kCacheLineSize);

/// Allocates `T` with cache-line alignment regardless of `alignof(T)`.
/// Deallocate with `aligned_delete`.
template <class T, class... Args>
T* aligned_new(Args&&... args) {
  void* mem = ::operator new(sizeof(T), std::align_val_t{kCacheLineSize});
  return ::new (mem) T(std::forward<Args>(args)...);
}

template <class T>
void aligned_delete(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  ::operator delete(p, std::align_val_t{kCacheLineSize});
}

}  // namespace wfq
