// Unit tests for the statistics behind the §5.1 methodology.
#include "harness/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wfq::bench {
namespace {

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(cov({}), 0.0);
  EXPECT_DOUBLE_EQ(cov({0.0, 0.0}), 0.0);
}

TEST(Stats, CovIsScaleInvariant) {
  std::vector<double> a{10, 11, 12};
  std::vector<double> b{1000, 1100, 1200};
  EXPECT_NEAR(cov(a), cov(b), 1e-12);
}

TEST(Stats, TCriticalSpotValues) {
  // Textbook two-sided 95% critical values.
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(9), 2.262, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-3);
}

TEST(Stats, ConfidenceIntervalKnownExample) {
  // n = 10 samples, mean 50, s = 5: half-width = 2.262 * 5 / sqrt(10).
  std::vector<double> xs;
  // Construct a set with mean 50 and sample stddev 5 exactly:
  // {45,45,45,45,45,55,55,55,55,55} has s = sqrt(25*10/9) != 5; instead
  // scale: use known mean and check formula consistency.
  xs = {45, 46, 47, 48, 49, 51, 52, 53, 54, 55};
  auto ci = confidence_interval_95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 50.0);
  double s = sample_stddev(xs);
  EXPECT_NEAR(ci.half_width, 2.262 * s / std::sqrt(10.0), 1e-9);
  EXPECT_EQ(ci.n, 10u);
  EXPECT_LT(ci.lo(), 50.0);
  EXPECT_GT(ci.hi(), 50.0);
}

TEST(Stats, ConfidenceIntervalSingleSampleHasZeroWidth) {
  auto ci = confidence_interval_95({42.0});
  EXPECT_DOUBLE_EQ(ci.mean, 42.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(Stats, DistinctFromDetectsSeparation) {
  ConfidenceInterval a{10.0, 1.0, 5};
  ConfidenceInterval b{20.0, 1.0, 5};
  ConfidenceInterval c{11.5, 1.0, 5};
  EXPECT_TRUE(a.distinct_from(b));
  EXPECT_TRUE(b.distinct_from(a));
  EXPECT_FALSE(a.distinct_from(c));
}

TEST(Stats, SteadyStateFindsFirstCalmWindow) {
  // Noisy warmup then stable tail: window of 3 with tight threshold.
  std::vector<double> xs{10, 50, 30, 100, 100.1, 100.2, 100.1};
  std::size_t start = steady_state_window_start(xs, 3, 0.02);
  EXPECT_EQ(start, 3u);  // {100, 100.1, 100.2}
}

TEST(Stats, SteadyStateFallsBackToLowestCov) {
  // Never below threshold: pick the calmest window.
  std::vector<double> xs{10, 20, 12, 22, 11, 21};
  std::size_t start = steady_state_window_start(xs, 2, 1e-9);
  // All adjacent pairs noisy; the function must still return a valid start.
  EXPECT_LE(start, xs.size() - 2);
}

TEST(Stats, SteadyStateWholeVectorWindow) {
  std::vector<double> xs{5, 5, 5};
  EXPECT_EQ(steady_state_window_start(xs, 3, 0.02), 0u);
}

}  // namespace
}  // namespace wfq::bench
