// Park/notify stress for the blocking layer, designed to run under
// ThreadSanitizer (wired into the `tsan` ctest label): many producers and
// consumers churn through repeated empty/full transitions so the
// park/notify handshake, the close() quiesce scan, and the handle
// registry all get exercised under racing threads. Conservation and
// termination are the assertions; TSan provides the data-race oracle.
#include "sync/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.hpp"

namespace {

using wfq::sync::BlockingWFQueue;
using wfq::sync::PopStatus;
using wfq::sync::WaitPolicy;

// Producers stall randomly so consumers really park (empty transitions),
// then burst so parked consumers really get notified.
TEST(BlockingStress, ParkNotifyChurnConserves) {
  BlockingWFQueue<uint64_t> q;
  constexpr unsigned kProducers = 3, kConsumers = 3;
#if defined(__SANITIZE_THREAD__) || defined(WFQ_TSAN)
  constexpr uint64_t kOpsPerProducer = 4000;
#else
  constexpr uint64_t kOpsPerProducer = 20000;
#endif
  std::atomic<uint64_t> pushed_sum{0}, popped_sum{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.get_handle();
      wfq::Xorshift128Plus rng(p + 17);
      uint64_t local = 0;
      for (uint64_t i = 1; i <= kOpsPerProducer; ++i) {
        uint64_t v = (uint64_t(p + 1) << 40) | i;
        ASSERT_TRUE(q.push(h, v));
        local += v;
        if (rng.next_below(64) == 0) {
          // Let consumers drain to empty and park.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      pushed_sum.fetch_add(local);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.get_handle();
      // Aggressive parking on half the consumers maximizes futex traffic;
      // default escalation on the rest keeps the mix realistic.
      WaitPolicy policy = (c % 2 == 0) ? WaitPolicy::park_only() : WaitPolicy{};
      uint64_t local = 0, v = 0;
      while (q.pop_wait(h, v, policy) == PopStatus::kOk) local += v;
      popped_sum.fetch_add(local);
    });
  }
  // Producers run to completion; close() then releases the consumers.
  for (unsigned i = 0; i < kProducers; ++i) threads[i].join();
  q.close();
  for (unsigned i = kProducers; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
  auto s = q.stats();
  // The workload is built to park at least occasionally; if it never does,
  // the test silently stopped covering the futex path.
  EXPECT_GE(s.deq_parks.load(), 1u);
  EXPECT_GE(s.notify_calls.load(), 1u);
}

// Repeated close-while-parked cycles across fresh queues: races close()
// against consumers in every phase of the escalation (spinning, yielding,
// registering, parked).
TEST(BlockingStress, CloseRacesEveryEscalationPhase) {
#if defined(__SANITIZE_THREAD__) || defined(WFQ_TSAN)
  constexpr int kRounds = 40;
#else
  constexpr int kRounds = 200;
#endif
  for (int r = 0; r < kRounds; ++r) {
    BlockingWFQueue<uint64_t> q;
    constexpr unsigned kConsumers = 3;
    std::atomic<uint64_t> popped{0};
    std::vector<std::thread> consumers;
    for (unsigned c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        auto h = q.get_handle();
        uint64_t v = 0;
        while (q.pop_wait(h, v) == PopStatus::kOk) popped.fetch_add(1);
      });
    }
    std::thread producer([&, r] {
      auto h = q.get_handle();
      for (uint64_t i = 1; i <= uint64_t(r % 7); ++i) q.push(h, i);
    });
    // Vary the close timing across rounds: sometimes immediate (consumers
    // still spinning), sometimes delayed (consumers parked).
    if (r % 3 == 0) std::this_thread::sleep_for(std::chrono::microseconds(r));
    producer.join();
    q.close();
    for (auto& t : consumers) t.join();  // hang here == lost wakeup
    EXPECT_EQ(popped.load(), uint64_t(r % 7));
    EXPECT_EQ(q.waiters(), 0u);
  }
}

// Handle registry churn concurrent with close: handles acquired/released
// while another thread closes must neither crash the quiesce scan nor
// leak a push past the seal.
TEST(BlockingStress, HandleChurnDuringClose) {
#if defined(__SANITIZE_THREAD__) || defined(WFQ_TSAN)
  constexpr int kRounds = 20;
#else
  constexpr int kRounds = 100;
#endif
  for (int r = 0; r < kRounds; ++r) {
    BlockingWFQueue<uint64_t> q;
    std::atomic<uint64_t> pushed{0}, popped{0};
    std::vector<std::thread> churners;
    for (unsigned t = 0; t < 3; ++t) {
      churners.emplace_back([&, t] {
        wfq::Xorshift128Plus rng(t + 3);
        for (int i = 0; i < 50; ++i) {
          auto h = q.get_handle();  // fresh handle every iteration
          if (q.push(h, (uint64_t(t + 1) << 32) | uint64_t(i + 1))) {
            pushed.fetch_add(1);
          } else {
            return;  // closed: stop churning
          }
          if (rng.next_below(4) == 0) {
            if (q.try_pop(h).has_value()) popped.fetch_add(1);
          }
        }
      });
    }
    std::thread closer([&] { q.close(); });
    closer.join();
    for (auto& t : churners) t.join();
    auto h = q.get_handle();
    std::vector<uint64_t> rest;
    q.drain(h, rest);
    EXPECT_EQ(pushed.load(), popped.load() + rest.size());
  }
}

}  // namespace
