// CC-Queue: Fatourou & Kallimanis' blocking combining queue (PPoPP'12),
// the representative of combining-based designs in the paper's Figure 2.
//
// Two CC-Synch combining instances serialize enqueues and dequeues over a
// common two-lock-style linked list: threads publish a request by swapping a
// node into the combining queue's tail; the thread at the head becomes the
// combiner and applies up to kCombineLimit requests for everyone, so the
// shared state is touched by one thread at a time (low synchronization
// cost, but no parallelism and no non-blocking progress guarantee —
// exactly the trade-off §2 describes).
//
// Memory: a dequeued list node becomes garbage only after the combiner
// unlinks it, and only the (single) dequeue combiner touches head-side
// nodes, so immediate free is safe (§5.1: CC-Queue needs no lock-free
// reclamation scheme).
#pragma once

#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "common/align.hpp"
#include "common/atomics.hpp"

namespace wfq::baselines {

template <class T>
class CCQueue {
  /// Node of the underlying sequential linked-list queue (dummy-headed).
  /// `next` is atomic because the enqueue and dequeue combiners race on the
  /// dummy's link when the queue is empty (same as the two-lock queue).
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    T value{};
  };

  /// CC-Synch combining-queue node: one pending request.
  struct alignas(kCacheLineSize) CNode {
    std::atomic<CNode*> next{nullptr};
    std::atomic<bool> wait{false};
    bool completed = false;
    bool is_enqueue = false;
    T arg{};              // enqueue payload
    std::optional<T> result;  // dequeue result
  };

  /// One CC-Synch instance (shared combining tail).
  struct CCSynch {
    CacheAligned<std::atomic<CNode*>> tail;
  };

  static constexpr int kCombineLimit = 64;  // paper's h parameter

 public:
  using value_type = T;

  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : enq_spare_(o.enq_spare_), deq_spare_(o.deq_spare_) {
      o.enq_spare_ = nullptr;
      o.deq_spare_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      delete enq_spare_;
      delete deq_spare_;
    }

   private:
    friend class CCQueue;
    Handle() : enq_spare_(new CNode()), deq_spare_(new CNode()) {}
    CNode* enq_spare_;
    CNode* deq_spare_;
  };

  CCQueue() {
    QNode* dummy = new QNode();
    qhead_ = dummy;
    qtail_ = dummy;
    enq_sync_.tail->store(new CNode(), std::memory_order_relaxed);
    deq_sync_.tail->store(new CNode(), std::memory_order_relaxed);
  }

  CCQueue(const CCQueue&) = delete;
  CCQueue& operator=(const CCQueue&) = delete;

  ~CCQueue() {
    QNode* n = qhead_;
    while (n != nullptr) {
      QNode* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    delete enq_sync_.tail->load(std::memory_order_relaxed);
    delete deq_sync_.tail->load(std::memory_order_relaxed);
  }

  Handle get_handle() { return Handle(); }

  void enqueue(Handle& h, T v) {
    combine(enq_sync_, h.enq_spare_, /*is_enqueue=*/true, std::move(v));
  }

  std::optional<T> dequeue(Handle& h) {
    return combine(deq_sync_, h.deq_spare_, /*is_enqueue=*/false, T{});
  }

 private:
  /// The CC-Synch protocol: publish the request, wait; the head thread
  /// combines. Returns the request's result (meaningful for dequeues).
  std::optional<T> combine(CCSynch& sync, CNode*& spare, bool is_enqueue,
                           T arg) {
    CNode* next_node = spare;
    next_node->next.store(nullptr, std::memory_order_relaxed);
    next_node->wait.store(true, std::memory_order_relaxed);
    next_node->completed = false;

    // Swap ourselves in; the node we receive records our request.
    CNode* cur = sync.tail->exchange(next_node, std::memory_order_acq_rel);
    cur->is_enqueue = is_enqueue;
    cur->arg = std::move(arg);
    cur->result.reset();
    cur->next.store(next_node, std::memory_order_release);
    spare = cur;

    // Wait until a combiner either serves us or hands us the combiner role.
    // (The original spins indefinitely; yielding after a bounded spin keeps
    // this blocking design live on oversubscribed hosts, where the combiner
    // may need our CPU to make progress.)
    for (unsigned spins = 0; cur->wait.load(std::memory_order_acquire);) {
      if (++spins < 512) {
        cpu_pause();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (cur->completed) return std::move(cur->result);

    // We are the combiner: apply requests starting at our own.
    CNode* tmp = cur;
    for (int count = 0; count < kCombineLimit; ++count) {
      CNode* next = tmp->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      apply(tmp);
      tmp->completed = true;
      tmp->wait.store(false, std::memory_order_release);
      tmp = next;
    }
    // Hand the combiner role to the next waiting thread (or leave the
    // sentinel parked for the next arrival).
    tmp->wait.store(false, std::memory_order_release);
    return std::move(cur->result);
  }

  /// Apply one request to the sequential queue (combiner-only, no races).
  void apply(CNode* req) {
    if (req->is_enqueue) {
      QNode* node = new QNode();
      node->value = std::move(req->arg);
      qtail_->next.store(node, std::memory_order_release);
      qtail_ = node;
    } else {
      QNode* first = qhead_->next.load(std::memory_order_acquire);
      if (first == nullptr) {
        req->result.reset();
      } else {
        req->result = std::move(first->value);
        QNode* old = qhead_;
        qhead_ = first;  // first becomes the new dummy
        delete old;      // immediate free is safe (single dequeue combiner)
      }
    }
  }

  CCSynch enq_sync_;
  CCSynch deq_sync_;
  alignas(kCacheLineSize) QNode* qhead_;  // touched only by deq combiner
  alignas(kCacheLineSize) QNode* qtail_;  // touched only by enq combiner
};

}  // namespace wfq::baselines
