// Tests for the fixed-width table printer used by every bench binary.
#include "harness/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wfq::bench {
namespace {

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::fmt(0.0), "0.00");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(Table, FormatsConfidenceIntervals) {
  EXPECT_EQ(Table::fmt_ci(10.0, 0.5), "10.00 ±0.50");
}

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.add_row({"xxxxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  // Three lines: header, separator, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // All lines equal length (alignment).
  std::istringstream in(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
  EXPECT_NE(out.find("xxxxxxxx"), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
}

TEST(Table, ToleratesShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});  // missing cells render empty
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1"), std::string::npos);
}

}  // namespace
}  // namespace wfq::bench
