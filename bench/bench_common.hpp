// Shared infrastructure for the Figure/Table reproduction binaries: the
// queue registry (every contender of the paper's Figure 2), environment
// configuration, and the thread-count sweep driver that applies the §5.1
// methodology to each (queue, thread-count) pair and prints one table.
//
// Environment knobs (all optional):
//   WFQ_THREADS="1,2,4,8"   thread counts to sweep
//   WFQ_OPS=200000          operations (or pairs) per iteration
//   WFQ_ITERATIONS / WFQ_WINDOW / WFQ_COV / WFQ_INVOCATIONS  (methodology)
//   WFQ_NO_DELAY=1          disable the 50-100 ns random work
//
// Command-line flags (parsed by bench_main_init, shared by every binary):
//   --json <file>   append machine-readable result records (JSON array)
//   --smoke         ~1 s sanity run (tiny env defaults; CI bitrot guard)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/faaq.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "common/cpu.hpp"
#include "core/obstruction_queue.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "harness/chart.hpp"
#include "harness/latency.hpp"
#include "harness/methodology.hpp"
#include "harness/platform.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace wfq::bench {

inline std::vector<unsigned> thread_counts_from_env() {
  if (const char* s = std::getenv("WFQ_THREADS")) {
    std::vector<unsigned> out;
    std::stringstream in(s);
    std::string tok;
    while (std::getline(in, tok, ',')) {
      unsigned v = unsigned(std::strtoul(tok.c_str(), nullptr, 10));
      if (v > 0) out.push_back(v);
    }
    if (!out.empty()) return out;
  }
  // Default sweep: powers of two through 4x oversubscription (the paper
  // sweeps to the machine's full thread count; Table 2 oversubscribes 4x).
  unsigned hw = hardware_threads();
  std::vector<unsigned> out;
  for (unsigned t = 1; t <= 4 * hw || t <= 8; t *= 2) out.push_back(t);
  return out;
}

inline uint64_t ops_from_env(uint64_t def = 200'000) {
  if (const char* s = std::getenv("WFQ_OPS")) {
    uint64_t v = std::strtoull(s, nullptr, 10);
    if (v > 0) return v;
  }
  return def;
}

inline bool delay_enabled_from_env() {
  const char* s = std::getenv("WFQ_NO_DELAY");
  return s == nullptr || s[0] == '0';
}

// ---- machine-readable output (--json) --------------------------------
//
// One record per measured (bench, config, threads) point:
//   {"bench":"...","config":"...","threads":N,"mops":M,"ci_mops":null|H,
//    "p50_ns":null|X,"p99_ns":null|X,"p999_ns":null|X}
// ci_mops is the 95% confidence-interval half-width around mops (Georges
// et al. methodology) — tools/bench_diff uses it to avoid flagging noise.
// The file is a JSON array. To survive crashes and early exits without
// leaving a truncated (unparseable) file at the target path, records are
// written to `<file>.tmp` and the close() at process exit finishes the
// array and atomically renames it into place — downstream tooling either
// sees the complete previous file or the complete new one, never a torn
// write. Latency percentiles are null for throughput-only sweeps.
class JsonSink {
 public:
  bool open(const std::string& path) {
    path_ = path;
    tmp_path_ = path + ".tmp";
    f_ = std::fopen(tmp_path_.c_str(), "w");
    if (f_ == nullptr) return false;
    std::fputs("[", f_);
    return true;
  }

  bool active() const { return f_ != nullptr; }

  void record(const std::string& bench, const std::string& config,
              unsigned threads, double mops, double p50_ns = -1.0,
              double p99_ns = -1.0, double p999_ns = -1.0,
              double ci_mops = -1.0) {
    if (f_ == nullptr) return;
    std::fprintf(f_, "%s\n  {\"bench\":\"%s\",\"config\":\"%s\",\"threads\":%u,"
                     "\"mops\":%.6g",
                 first_ ? "" : ",", escaped(bench).c_str(),
                 escaped(config).c_str(), threads, mops);
    write_pct("ci_mops", ci_mops);
    write_pct("p50_ns", p50_ns);
    write_pct("p99_ns", p99_ns);
    write_pct("p999_ns", p999_ns);
    std::fputs("}", f_);
    first_ = false;
    std::fflush(f_);  // the .tmp stays inspectable while a long run works
  }

  /// Finish the array and atomically publish the file. Idempotent; called
  /// by the destructor for the normal exit path.
  void close() {
    if (f_ == nullptr) return;
    std::fputs("\n]\n", f_);
    const bool wrote = std::fflush(f_) == 0 && !std::ferror(f_);
    std::fclose(f_);
    f_ = nullptr;
    if (!wrote || std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "json sink: failed to publish %s\n", path_.c_str());
      std::remove(tmp_path_.c_str());
    }
  }

  ~JsonSink() { close(); }

 private:
  void write_pct(const char* key, double v) {
    if (v >= 0) {
      std::fprintf(f_, ",\"%s\":%.6g", key, v);
    } else {
      std::fprintf(f_, ",\"%s\":null", key);
    }
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::FILE* f_ = nullptr;
  bool first_ = true;
  std::string path_;
  std::string tmp_path_;
};

/// The process-wide sink. Inactive (records are dropped) unless
/// bench_main_init saw `--json <file>`.
inline JsonSink& json_sink() {
  static JsonSink s;
  return s;
}

/// Parse the flags every bench binary shares. Call first thing in main().
///   --json <file>  open the machine-readable sink
///   --smoke        seed tiny WFQ_* defaults (explicit env still wins) so
///                  the binary finishes in ~1 s — the CI bitrot guard
inline void bench_main_init(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      if (!json_sink().open(argv[++i])) {
        std::fprintf(stderr, "cannot open --json file %s\n", argv[i]);
        std::exit(1);
      }
    } else if (a == "--smoke") {
      smoke = true;
    }
  }
  if (smoke) {
    ::setenv("WFQ_THREADS", "1,2", /*overwrite=*/0);
    ::setenv("WFQ_OPS", "4000", 0);
    ::setenv("WFQ_INVOCATIONS", "1", 0);
    ::setenv("WFQ_ITERATIONS", "2", 0);
    ::setenv("WFQ_WINDOW", "2", 0);
    ::setenv("WFQ_NO_DELAY", "1", 0);
  }
}

/// One benchmark contender: a name and a factory for fresh instances whose
/// workload entry point is type-erased (so heterogeneous queue types share
/// one table).
struct Contender {
  std::string name;
  /// Runs one iteration of the configured workload on a fresh-per-invocation
  /// queue; returns raw Mops/s (think time included — identical for every
  /// queue, so relative ordering matches the paper's convention; see
  /// EXPERIMENTS.md on why the subtraction variant is unstable here).
  std::function<std::function<double()>(const RunConfig&)> make_invocation;
  /// Pooled per-operation (enqueue and dequeue) wall-clock latency
  /// distribution at a thread count — fills the p50/p99/p999 columns of
  /// --json records. Optional; run only when the JSON sink is active.
  std::function<LatencyResult(unsigned threads, uint64_t pairs_per_thread)>
      measure_latency;
};

template <class Queue>
Contender make_contender(std::string name) {
  Contender c;
  c.name = std::move(name);
  c.make_invocation = [](const RunConfig& cfg) {
    auto q = std::make_shared<Queue>();
    return std::function<double()>([q, cfg] {
      return run_workload(*q, cfg).mops_raw();
    });
  };
  c.measure_latency = [](unsigned threads, uint64_t pairs) {
    Queue q;
    return measure_op_latency(q, threads, pairs);
  };
  return c;
}

/// WF queue contenders need a WfConfig.
template <class Traits>
Contender make_wf_contender(std::string name, WfConfig wf) {
  Contender c;
  c.name = std::move(name);
  c.make_invocation = [wf](const RunConfig& cfg) {
    auto q = std::make_shared<WFQueue<uint64_t, Traits>>(wf);
    return std::function<double()>([q, cfg] {
      return run_workload(*q, cfg).mops_raw();
    });
  };
  c.measure_latency = [wf](unsigned threads, uint64_t pairs) {
    WFQueue<uint64_t, Traits> q(wf);
    return measure_op_latency(q, threads, pairs);
  };
  return c;
}

/// The paper's Figure 2 line-up (plus the mutex sanity baseline).
inline std::vector<Contender> figure2_contenders() {
  WfConfig wf10;
  wf10.patience = 10;
  WfConfig wf0;
  wf0.patience = 0;
  // WF-INF approximates the paper's PATIENCE=∞ column: with a practically
  // unreachable patience the slow path never triggers, so the column
  // isolates the raw FAA fast path of the wait-free structure.
  WfConfig wfinf;
  wfinf.patience = 1u << 20;
  // WF-ADAPT is this repo's addition (ALGORITHM.md §14): the per-handle
  // EWMA controller retunes patience from the observed slow-path ratio.
  WfConfig wfadapt;
  wfadapt.patience = 10;
  wfadapt.patience_mode = PatienceMode::kAdaptive;
  std::vector<Contender> cs;
  cs.push_back(make_wf_contender<DefaultWfTraits>("WF-10", wf10));
  cs.push_back(make_wf_contender<DefaultWfTraits>("WF-0", wf0));
  cs.push_back(make_wf_contender<DefaultWfTraits>("WF-INF", wfinf));
  cs.push_back(make_wf_contender<DefaultWfTraits>("WF-ADAPT", wfadapt));
  cs.push_back(make_contender<baselines::FAAQueue<uint64_t>>("F&A"));
  cs.push_back(make_contender<baselines::CCQueue<uint64_t>>("CCQUEUE"));
  cs.push_back(make_contender<baselines::MSQueue<uint64_t>>("MSQUEUE"));
  cs.push_back(make_contender<baselines::LCRQ<uint64_t>>("LCRQ"));
  cs.push_back(make_contender<baselines::MutexQueue<uint64_t>>("MUTEX"));
  // The bounded-memory family (not in the paper's figure; SCQ is the ring
  // substrate, wCQ its wait-free successor). Default 64Ki-slot rings: the
  // pairs workload keeps occupancy <= threads and the random mixes stay
  // within a sqrt(ops) excursion, so the bound is never the bottleneck and
  // the column measures ring-protocol cost, not backpressure.
  cs.push_back(make_contender<ScqQueue<uint64_t>>("SCQ"));
  cs.push_back(make_contender<WcqQueue<uint64_t>>("WCQ"));
  // The obstruction-free ancestor (§3 of the paper): FAA fast path without
  // the helping machinery — upper-bounds what helping may cost.
  cs.push_back(make_contender<ObstructionQueue<uint64_t>>("OBSTRUCTION"));
  // Not in the paper's Figure 2, but §2 claims the first practical
  // wait-free queue performs like MS-Queue; this column checks that. The
  // helping registry is sized to the actual thread count (its state array
  // is scanned on every operation, so an oversized registry would be an
  // unfair handicap).
  Contender kp;
  kp.name = "KPQUEUE";
  kp.make_invocation = [](const RunConfig& cfg) {
    auto q = std::make_shared<baselines::KPQueue<uint64_t>>(cfg.threads + 2);
    return std::function<double()>(
        [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
  };
  kp.measure_latency = [](unsigned threads, uint64_t pairs) {
    baselines::KPQueue<uint64_t> q(threads + 2);
    return measure_op_latency(q, threads, pairs);
  };
  cs.push_back(std::move(kp));
  // Ditto for the P-Sim universal-construction queue (§2: it beat all
  // prior wait-free queues and MS-Queue before LCRQ/CC-Queue appeared).
  Contender sim;
  sim.name = "SIMQUEUE";
  sim.make_invocation = [](const RunConfig& cfg) {
    auto q = std::make_shared<baselines::SimQueue<uint64_t>>(cfg.threads + 2);
    return std::function<double()>(
        [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
  };
  sim.measure_latency = [](unsigned threads, uint64_t pairs) {
    baselines::SimQueue<uint64_t> q(threads + 2);
    return measure_op_latency(q, threads, pairs);
  };
  cs.push_back(std::move(sim));
  return cs;
}

/// Sweeps thread counts x contenders for one workload and prints the
/// figure's data table (Mops/s with 95% CIs). The default (empty)
/// contender list means the full Figure 2 line-up; benches with their own
/// cast (bench_bounded's matched-ring-size comparison) pass one in.
inline void run_figure(const std::string& title, WorkloadKind kind,
                       unsigned percent_enqueue = 50,
                       std::vector<Contender> custom_contenders = {}) {
  auto threads = thread_counts_from_env();
  auto contenders = custom_contenders.empty() ? figure2_contenders()
                                              : std::move(custom_contenders);
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = hardware_threads();

  std::cout << "== " << title << " ==\n";
  std::cout << format_platform_table(detect_platform());
  std::cout << "ops/iteration=" << ops << "  invocations=" << mcfg.invocations
            << "  max_iterations=" << mcfg.max_iterations
            << "  delay=" << (use_delay ? "50-100ns (included in Mops/s)" : "off")
            << "\n"
            << "(^ marks thread counts above the " << hw
            << " hardware thread(s) of this host)\n\n";

  std::vector<std::string> headers{"threads"};
  for (auto& c : contenders) headers.push_back(c.name + " (Mops/s)");
  Table table(headers);
  std::vector<ChartSeries> series;
  for (auto& c : contenders) series.push_back({c.name, {}});
  std::vector<std::string> x_labels;

  for (unsigned t : threads) {
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.percent_enqueue = percent_enqueue;
    cfg.use_delay = use_delay;
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    x_labels.push_back(row[0]);
    for (std::size_t ci_idx = 0; ci_idx < contenders.size(); ++ci_idx) {
      auto& c = contenders[ci_idx];
      auto ci = measure(mcfg, [&] { return c.make_invocation(cfg); });
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      series[ci_idx].values.push_back(ci.mean);
      if (json_sink().active() && c.measure_latency) {
        // Fill the percentile columns with a pooled enqueue+dequeue
        // wall-clock latency sample (harness/latency.hpp) — measured only
        // for --json runs so console sweeps keep their cost unchanged.
        const uint64_t pairs =
            std::max<uint64_t>(1, std::min<uint64_t>(ops, 20'000) / t);
        LatencyResult lr = c.measure_latency(t, pairs);
        json_sink().record(title, c.name, t, ci.mean, double(lr.p50),
                           double(lr.p99), double(lr.p999), ci.half_width);
      } else {
        json_sink().record(title, c.name, t, ci.mean, -1.0, -1.0, -1.0,
                           ci.half_width);
      }
      std::cerr << "  [" << title << "] threads=" << t << " " << c.name
                << ": " << Table::fmt_ci(ci.mean, ci.half_width)
                << " Mops/s\n";
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n";
  table.print();
  std::cout << "\n"
            << render_ascii_chart(x_labels, series, 14,
                                  "Mops/s, think time included")
            << std::endl;
}

}  // namespace wfq::bench
