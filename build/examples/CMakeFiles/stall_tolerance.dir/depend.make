# Empty dependencies file for stall_tolerance.
# This may be replaced when dependencies are built.
