// Implementation of the C bindings (see wfq_c.h).
#include "capi/wfq_c.h"

#include <new>

#include "core/wf_queue_core.hpp"

namespace {
using Core = wfq::WFQueueCore<wfq::DefaultWfTraits>;
}  // namespace

// The opaque C structs are the C++ objects themselves.
struct wfq_queue {
  Core core;
  explicit wfq_queue(wfq::WfConfig cfg) : core(cfg) {}
};

struct wfq_handle {
  wfq_queue* owner;
  Core::Handle* h;
};

extern "C" {

wfq_queue_t* wfq_create(unsigned patience, int64_t max_garbage) {
  wfq::WfConfig cfg;
  cfg.patience = patience;
  cfg.max_garbage = max_garbage > 0 ? max_garbage : 1;
  return new (std::nothrow) wfq_queue(cfg);
}

wfq_queue_t* wfq_create_default(void) {
  return wfq_create(10, 64);
}

void wfq_destroy(wfq_queue_t* q) {
  delete q;
}

wfq_handle_t* wfq_handle_acquire(wfq_queue_t* q) {
  auto* h = new (std::nothrow) wfq_handle;
  if (h == nullptr) return nullptr;
  h->owner = q;
  h->h = q->core.register_handle();
  return h;
}

void wfq_handle_release(wfq_handle_t* h) {
  if (h == nullptr) return;
  h->owner->core.release_handle(h->h);
  delete h;
}

int wfq_enqueue(wfq_handle_t* h, uint64_t value) {
  if (!Core::is_enqueueable(value)) return -1;
  h->owner->core.enqueue(h->h, value);
  return 0;
}

int wfq_dequeue(wfq_handle_t* h, uint64_t* out) {
  uint64_t v = h->owner->core.dequeue(h->h);
  if (v == Core::kEmpty) return 0;
  *out = v;
  return 1;
}

int wfq_enqueue_bulk(wfq_handle_t* h, const uint64_t* values, size_t count) {
  for (size_t j = 0; j < count; ++j) {
    if (!Core::is_enqueueable(values[j])) return -1;
  }
  h->owner->core.enqueue_bulk(h->h, values, count);
  return 0;
}

size_t wfq_dequeue_bulk(wfq_handle_t* h, uint64_t* out, size_t count) {
  return h->owner->core.dequeue_bulk(h->h, out, count);
}

uint64_t wfq_approx_size(const wfq_queue_t* q) {
  return q->core.approx_size();
}

void wfq_get_stats(const wfq_queue_t* q, wfq_stats_t* out) {
  wfq::OpStats s = q->core.collect_stats();
  out->enqueues = s.enqueues();
  out->dequeues = s.dequeues();
  out->slow_enqueues = s.enq_slow.load(std::memory_order_relaxed);
  out->slow_dequeues = s.deq_slow.load(std::memory_order_relaxed);
  out->empty_dequeues = s.deq_empty.load(std::memory_order_relaxed);
  out->segments_freed = s.segments_freed.load(std::memory_order_relaxed);
}

}  // extern "C"
