// Correctness tests for the MS-Queue baseline (+ its hazard-pointer
// reclamation).
#include "baselines/ms_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(MSQueue, StartsEmpty) {
  MSQueue<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(MSQueue, SequentialFifo) {
  MSQueue<uint64_t> q;
  test::run_sequential_fifo(q, 5000);
}

TEST(MSQueue, ReusableAfterEmpty) {
  MSQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(q.dequeue(h).has_value());
    q.enqueue(h, round + 1);
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, uint64_t(round + 1));
  }
}

TEST(MSQueue, BoxedPayloads) {
  MSQueue<std::string> q;
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  q.enqueue(h, "beta");
  EXPECT_EQ(q.dequeue(h), "alpha");
  EXPECT_EQ(q.dequeue(h), "beta");
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(MSQueue, MpmcPropertyDefault) {
  MSQueue<uint64_t> q;
  test::run_mpmc_property(q, 4, 4, 4000);
}

TEST(MSQueue, MpmcPropertyProducerHeavy) {
  MSQueue<uint64_t> q;
  test::run_mpmc_property(q, 6, 2, 3000);
}

TEST(MSQueue, MpmcPropertyConsumerHeavy) {
  MSQueue<uint64_t> q;
  test::run_mpmc_property(q, 2, 6, 3000);
}

TEST(MSQueue, PairsConservation) {
  MSQueue<uint64_t> q;
  test::run_pairs_conservation(q, 8, 3000);
}

TEST(MSQueue, HazardReclamationKeepsRetiredBounded) {
  MSQueue<uint64_t> q;
  auto h = q.get_handle();
  // Churn far more nodes than any reasonable retirement bound.
  for (int i = 0; i < 50000; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_TRUE(q.dequeue(h).has_value());
  }
  // The retirement list is bounded by the scan threshold (O(threads)).
  EXPECT_LT(q.retired_nodes(), 5000u);
}

// ---- epoch-based reclamation variant ------------------------------------

using MSQueueEbr = MSQueue<uint64_t, EbrReclaimer<2>>;

TEST(MSQueueEbrVariant, SequentialFifo) {
  MSQueueEbr q;
  test::run_sequential_fifo(q, 5000);
}

TEST(MSQueueEbrVariant, MpmcProperty) {
  MSQueueEbr q;
  test::run_mpmc_property(q, 4, 4, 4000);
}

TEST(MSQueueEbrVariant, PairsConservation) {
  MSQueueEbr q;
  test::run_pairs_conservation(q, 8, 3000);
}

TEST(MSQueueEbrVariant, ReclamationKeepsLimboBounded) {
  MSQueueEbr q;
  auto h = q.get_handle();
  for (int i = 0; i < 50000; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_TRUE(q.dequeue(h).has_value());
  }
  EXPECT_LT(q.retired_nodes(), 5000u);
}

TEST(MSQueueEbrVariant, ReportsPolicyName) {
  EXPECT_STREQ(MSQueueEbr::kReclaimName, "epochs");
  EXPECT_STREQ((MSQueue<uint64_t>::kReclaimName), "hazard-pointers");
}

TEST(MSQueue, DestructionWithBacklogDoesNotLeak) {
  // ASan-checked: destructor must free the spine including pending values.
  auto* q = new MSQueue<std::string>();
  auto h = q->get_handle();
  for (int i = 0; i < 1000; ++i) q->enqueue(h, "payload " + std::to_string(i));
  // h must die before the queue.
  {
    auto h2 = std::move(h);
  }
  delete q;
}

}  // namespace
}  // namespace wfq::baselines
