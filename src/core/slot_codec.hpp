// Encoding of user values into the queue core's 64-bit slots.
//
// The core reserves four slot values (⊥ = 0, ⊤ = ~0, EMPTY = ~0-1,
// NOMEM = ~0-2); user payloads must never collide with them. This header
// maps common value types into the safe range:
//
//  * integrals/enums/floats that fit in 62 bits after zero-extension are
//    stored shifted by +1 (always collision-free);
//  * full-width 64-bit integrals are stored as-is with a debug assertion
//    that they avoid the reserved values (documented API restriction);
//  * pointers are stored as their address (non-null, not all-ones — true
//    for any real object pointer);
//  * any other type is boxed on the heap and the box pointer is stored;
//    the queue owns boxes in flight and frees leftovers on destruction.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace wfq {

namespace detail {

template <class T>
inline constexpr bool is_small_scalar_v =
    (std::is_integral_v<T> || std::is_enum_v<T>)&&sizeof(T) < 8;

template <class T>
inline constexpr bool is_wide_scalar_v =
    (std::is_integral_v<T> || std::is_enum_v<T>)&&sizeof(T) == 8;

}  // namespace detail

/// Encodes T into/out of a 64-bit slot. The primary template boxes.
/// `encode` transfers ownership of the value into the slot; `decode`
/// transfers it back out; `destroy_slot` releases a still-encoded slot
/// (used when draining a destroyed queue).
template <class T, class Enable = void>
struct SlotCodec {
  static constexpr bool kBoxed = true;

  static uint64_t encode(T&& v) {
    return reinterpret_cast<uint64_t>(new T(std::move(v)));
  }
  static uint64_t encode(const T& v) {
    return reinterpret_cast<uint64_t>(new T(v));
  }
  static T decode(uint64_t slot) {
    T* box = reinterpret_cast<T*>(slot);
    T v = std::move(*box);
    delete box;
    return v;
  }
  static void destroy_slot(uint64_t slot) {
    delete reinterpret_cast<T*>(slot);
  }
};

/// Small integrals/enums: shift by +1; the result is in [1, 2^{33}) and can
/// never hit a reserved value.
template <class T>
struct SlotCodec<T, std::enable_if_t<detail::is_small_scalar_v<T>>> {
  static constexpr bool kBoxed = false;

  static uint64_t encode(T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return (v ? 1u : 0u) + 1;  // make_unsigned<bool> is ill-formed
    } else if constexpr (std::is_enum_v<T>) {
      using U = std::make_unsigned_t<std::underlying_type_t<T>>;
      return static_cast<uint64_t>(
                 static_cast<U>(static_cast<std::underlying_type_t<T>>(v))) +
             1;
    } else {
      using U = std::make_unsigned_t<T>;
      return static_cast<uint64_t>(static_cast<U>(v)) + 1;
    }
  }
  static T decode(uint64_t slot) { return static_cast<T>(slot - 1); }
  static void destroy_slot(uint64_t) {}
};

/// Full-width 64-bit integrals: stored shifted by +1 modulo 2^64 would wrap
/// the top value into ⊥, so they are stored as-is; the two top values and 0
/// map onto reserved slots and are rejected. Asserted in debug builds and
/// documented on WFQueue.
template <class T>
struct SlotCodec<T, std::enable_if_t<detail::is_wide_scalar_v<T>>> {
  static constexpr bool kBoxed = false;

  static constexpr bool representable(T v) {
    auto u = static_cast<uint64_t>(v);
    return u != 0 && u != ~uint64_t{0} && u != ~uint64_t{0} - 1 &&
           u != ~uint64_t{0} - 2;
  }
  static uint64_t encode(T v) {
    assert(representable(v) &&
           "64-bit payloads 0, ~0, ~0-1 and ~0-2 are reserved; box them "
           "instead");
    return static_cast<uint64_t>(v);
  }
  static T decode(uint64_t slot) { return static_cast<T>(slot); }
  static void destroy_slot(uint64_t) {}
};

/// Object pointers: stored as the address. Null is rejected (it is ⊥).
template <class T>
struct SlotCodec<T*, void> {
  static constexpr bool kBoxed = false;

  static uint64_t encode(T* v) {
    assert(v != nullptr && "cannot enqueue a null pointer");
    return reinterpret_cast<uint64_t>(v);
  }
  static T* decode(uint64_t slot) { return reinterpret_cast<T*>(slot); }
  static void destroy_slot(uint64_t) {}
};

/// float/double: bit pattern zero-extended into the small-scalar scheme
/// (float) or boxed-free full-width mapping with the NaN payloads that
/// collide with reserved values remapped — simpler: route through the
/// 62-bit shift for float; double uses bit_cast + shift with wrap detection
/// impossible because only 0xFFFF...FF and 0xFFFF...FE collide, which are
/// specific NaN payloads; those are canonicalized to the standard quiet NaN.
template <>
struct SlotCodec<float, void> {
  static constexpr bool kBoxed = false;
  static uint64_t encode(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return static_cast<uint64_t>(bits) + 1;
  }
  static float decode(uint64_t slot) {
    uint32_t bits = static_cast<uint32_t>(slot - 1);
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  static void destroy_slot(uint64_t) {}
};

template <>
struct SlotCodec<double, void> {
  static constexpr bool kBoxed = false;
  static uint64_t encode(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Store bits + 1, which needs bits <= ~0-4 to stay clear of the
    // reserved slots {0, ~0, ~0-1, ~0-2}. The four excluded bit patterns
    // (~0 .. ~0-3) are all non-canonical negative NaNs; canonicalize them
    // to the standard quiet NaN first.
    if (bits >= ~uint64_t{0} - 3) bits = 0x7FF8000000000000ull;
    return bits + 1;
  }
  static double decode(uint64_t slot) {
    uint64_t bits = slot - 1;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  static void destroy_slot(uint64_t) {}
};

}  // namespace wfq
