file(REMOVE_RECURSE
  "CMakeFiles/bench_memorder.dir/bench_memorder.cpp.o"
  "CMakeFiles/bench_memorder.dir/bench_memorder.cpp.o.d"
  "bench_memorder"
  "bench_memorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
