// Shared handle-registration scaffolding for every backend whose threads
// operate through registered, ring-linked handles.
//
// Before this header, two copies of the same machinery existed:
// SegmentQueueBase (the simple baselines) and WFQueueCore (~50 lines of
// hand-copied duplicate, diverged by obs-id assignment, recycled-handle
// hardening asserts and orphan-adoption-aware release). The registry owns
// the parts that are genuinely common:
//
//   - the handle freelist (handles are recycled, never unlinked: a helping
//     peer pointer or a cleaner's ring scan must never dangle),
//   - the owning vector of all handles ever created (stable addresses,
//     stats/obs aggregation, destructor sweeps),
//   - the ring link protocol: a new handle becomes visible to ring readers
//     with a single release store, after all of its fields — including any
//     queue-specific state wired by the `at_link` hook — are initialized,
//   - the frontier exclusion: attach + lock_frontier around the capture and
//     link, so a cleaner can never free a segment between a new handle
//     capturing it and the handle becoming visible in the ring (the PR 1
//     reclamation invariant, preserved verbatim — see docs/ALGORITHM.md
//     §13).
//
// The parts that differ per queue stay with the queue, passed in as hooks
// that run *under the registry lock*:
//
//   acquire(on_recycle, pre_attach, at_link)
//     on_recycle(h)       recycled handle about to be handed out (hardening
//                         asserts live here)
//     pre_attach(h, idx)  brand-new handle, before Reclaim::attach; idx is
//                         its 0-based creation index (obs ids derive from
//                         it)
//     at_link(h, after)   inside the frontier lock, before the publishing
//                         store; `after` is the handle that will follow h in
//                         the ring (h itself when the ring was empty) —
//                         helping peers and segment-pointer capture go here
//   release(h, on_release)
//     on_release(h)       under the lock, before the freelist push — the
//                         orphan-adoption check (PR 4) lives here
//
// `Reclaim` is the segment-reclamation policy bound to the owning queue's
// SegmentList (a no-op policy for ring backends, which have no segments but
// keep the same registration discipline).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace wfq {

template <class Handle, class Reclaim>
class HandleRegistry {
 public:
  explicit HandleRegistry(Reclaim& rcl) : rcl_(rcl) {}

  HandleRegistry(const HandleRegistry&) = delete;
  HandleRegistry& operator=(const HandleRegistry&) = delete;

  /// Hand out a handle: recycled from the freelist, or newly created,
  /// attached to the reclamation policy and published into the ring. See
  /// the header comment for the three hooks; all run under the lock.
  template <class OnRecycle, class PreAttach, class AtLink>
  Handle* acquire(OnRecycle&& on_recycle, PreAttach&& pre_attach,
                  AtLink&& at_link) {
    std::lock_guard<std::mutex> g(mu_);
    if (free_ != nullptr) {
      Handle* h = free_;
      free_ = h->next_free;
      h->next_free = nullptr;
      on_recycle(h);
      return h;
    }
    auto owned = std::make_unique<Handle>();
    Handle* h = owned.get();
    pre_attach(h, all_.size());
    rcl_.attach(h);
    // Exclude concurrent cleaners while capturing frontier-dependent state
    // (the queue's current first segment) and wiring the ring: otherwise a
    // captured pointer could be freed between the read and the link
    // becoming visible.
    int64_t oid = rcl_.lock_frontier();
    Handle* anchor = ring_.load(std::memory_order_relaxed);
    Handle* after =
        anchor == nullptr ? h : anchor->next.load(std::memory_order_relaxed);
    h->next.store(after, std::memory_order_relaxed);
    at_link(h, after);
    // The publishing store: everything written above (h's own fields, the
    // hook's writes) becomes visible to ring readers no later than h does.
    if (anchor == nullptr) {
      ring_.store(h, std::memory_order_release);
    } else {
      anchor->next.store(h, std::memory_order_release);
    }
    rcl_.unlock_frontier(oid);
    all_.push_back(std::move(owned));
    return h;
  }

  /// Return a handle to the freelist; `on_release` runs first, under the
  /// lock (adoption of leaked operations happens there).
  template <class OnRelease>
  void release(Handle* h, OnRelease&& on_release) {
    std::lock_guard<std::mutex> g(mu_);
    on_release(h);
    h->next_free = free_;
    free_ = h;
  }

  void release(Handle* h) {
    release(h, [](Handle*) {});
  }

  /// Run `f` under the registry lock — for operations that must be mutually
  /// exclusive with acquire/release/adoption (WFQueueCore::adopt_handle).
  template <class F>
  decltype(auto) with_lock(F&& f) {
    std::lock_guard<std::mutex> g(mu_);
    return f();
  }

  /// Visit every handle ever created (registered or on the freelist), under
  /// the lock. Aggregation (stats, obs snapshots) and destructor sweeps.
  template <class F>
  void for_each(F&& f) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& h : all_) f(h.get());
  }

  /// Handles ever created (not the number currently registered).
  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return all_.size();
  }

 private:
  Reclaim& rcl_;
  std::atomic<Handle*> ring_{nullptr};  ///< any handle in the ring
  mutable std::mutex mu_;
  Handle* free_ = nullptr;
  std::vector<std::unique_ptr<Handle>> all_;
};

/// No-op reclamation policy for backends with nothing to reclaim (the
/// bounded rings: all storage is allocated at construction). Satisfies the
/// slice of the ReclaimPolicy surface HandleRegistry touches, so ring
/// backends share the exact registration discipline of the segment queues.
struct NullReclaim {
  static constexpr const char* kName = "none";
  struct PerHandle {};
  template <class Handle>
  void attach(Handle*) noexcept {}
  int64_t lock_frontier() noexcept { return 0; }
  void unlock_frontier(int64_t) noexcept {}
  template <class Handle>
  bool op_active(const Handle*) const noexcept {
    return false;
  }
};

}  // namespace wfq
