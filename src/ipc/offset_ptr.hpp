// Offset-based addressing for the shared-memory arena.
//
// Every process that attaches an arena maps it at a different virtual
// address, so a raw pointer stored INSIDE the arena is meaningless to every
// process except the one that wrote it. All intra-arena links are therefore
// byte offsets from the arena base — `ShmOffset` (0 = null, the header
// occupies offset 0 so no real object ever lives there) — and resolving one
// requires the local mapping base. tools/ci.sh's ipc leg greps these
// headers to enforce that no `std::atomic<T*>`-style raw link ever creeps
// back in.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace wfq::ipc {

/// Byte offset from the arena base. 0 means null.
using ShmOffset = std::uint64_t;

/// An atomic intra-arena link. Cross-process safe on every platform this
/// repo targets (lock-free 64-bit atomics; asserted at arena creation).
using AtomicShmOffset = std::atomic<ShmOffset>;

inline constexpr ShmOffset kNullOffset = 0;

/// Resolve an offset against this process's mapping base.
template <class T>
inline T* resolve(void* base, ShmOffset off) noexcept {
  if (off == kNullOffset) return nullptr;
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

template <class T>
inline const T* resolve(const void* base, ShmOffset off) noexcept {
  if (off == kNullOffset) return nullptr;
  return reinterpret_cast<const T*>(static_cast<const char*>(base) + off);
}

/// Inverse of resolve(): the offset of `p` within the mapping at `base`.
inline ShmOffset offset_of(const void* base, const void* p) noexcept {
  if (p == nullptr) return kNullOffset;
  return static_cast<ShmOffset>(static_cast<const char*>(p) -
                                static_cast<const char*>(base));
}

/// A typed offset — same representation as ShmOffset, but the pointee type
/// travels with it so call sites read like pointer code. Non-atomic;
/// fields that are written concurrently use AtomicShmOffset and resolve<T>.
template <class T>
struct OffsetPtr {
  ShmOffset off = kNullOffset;

  T* get(void* base) const noexcept { return resolve<T>(base, off); }
  const T* get(const void* base) const noexcept {
    return resolve<T>(base, off);
  }
  explicit operator bool() const noexcept { return off != kNullOffset; }
};

}  // namespace wfq::ipc
