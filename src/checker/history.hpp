// Concurrent-history recording for linearizability checking.
//
// Threads record (invoke, respond) event pairs around each queue operation.
// Timestamps come from one global atomic counter, so ts(a) < ts(b) implies
// a really happened before b in real time — exactly the precedence relation
// <H that linearizability constrains. The recorder is lock-free on the hot
// path (one FAA per event, thread-local buffers) so it perturbs the
// schedule as little as possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/align.hpp"

namespace wfq::lin {

enum class OpKind : uint8_t {
  kEnqueue,
  kDequeue,       ///< returned a value
  kDequeueEmpty,  ///< returned EMPTY
};

/// One completed operation.
struct Op {
  OpKind kind;
  unsigned thread;
  uint64_t value;      ///< enqueued or dequeued value (unused for EMPTY)
  uint64_t invoke_ts;  ///< global timestamp before the call
  uint64_t respond_ts; ///< global timestamp after the return
};

/// Does a's response precede b's invocation? (the real-time order <H)
inline bool precedes(const Op& a, const Op& b) {
  return a.respond_ts < b.invoke_ts;
}

class HistoryRecorder {
 public:
  /// Per-thread recording surface. Obtain one per worker thread.
  class ThreadLog {
   public:
    /// Marks an invocation; returns the timestamp to pass to complete().
    uint64_t invoke() { return owner_->clock_->fetch_add(1, std::memory_order_acq_rel); }

    void complete(OpKind kind, uint64_t value, uint64_t invoke_ts) {
      uint64_t respond_ts =
          owner_->clock_->fetch_add(1, std::memory_order_acq_rel);
      ops_.push_back(Op{kind, thread_, value, invoke_ts, respond_ts});
    }

   private:
    friend class HistoryRecorder;
    ThreadLog(HistoryRecorder* owner, unsigned thread)
        : owner_(owner), thread_(thread) {
      ops_.reserve(1024);
    }
    HistoryRecorder* owner_;
    unsigned thread_;
    std::vector<Op> ops_;
  };

  /// Creates the log for one worker thread (call before the threads race;
  /// pointers remain stable).
  ThreadLog* make_log(unsigned thread) {
    std::lock_guard<std::mutex> g(mu_);
    logs_.push_back(std::unique_ptr<ThreadLog>(new ThreadLog(this, thread)));
    return logs_.back().get();
  }

  /// Collects every thread's operations (call after joining workers).
  std::vector<Op> collect() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<Op> all;
    for (const auto& l : logs_) {
      all.insert(all.end(), l->ops_.begin(), l->ops_.end());
    }
    return all;
  }

 private:
  CacheAligned<std::atomic<uint64_t>> clock_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// Convenience wrapper: run `op()` (returning optional-like dequeue result
/// or enqueue) with recording. Provided as free functions so queue drivers
/// stay one-liners.
template <class Queue, class Handle>
void recorded_enqueue(Queue& q, Handle& h, HistoryRecorder::ThreadLog* log,
                      uint64_t v) {
  uint64_t ts = log->invoke();
  q.enqueue(h, v);
  log->complete(OpKind::kEnqueue, v, ts);
}

template <class Queue, class Handle>
bool recorded_dequeue(Queue& q, Handle& h, HistoryRecorder::ThreadLog* log) {
  uint64_t ts = log->invoke();
  auto v = q.dequeue(h);
  if (v.has_value()) {
    log->complete(OpKind::kDequeue, *v, ts);
    return true;
  }
  log->complete(OpKind::kDequeueEmpty, 0, ts);
  return false;
}

}  // namespace wfq::lin
