# Empty dependencies file for wfq_platform.
# This may be replaced when dependencies are built.
