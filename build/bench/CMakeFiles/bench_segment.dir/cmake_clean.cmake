file(REMOVE_RECURSE
  "CMakeFiles/bench_segment.dir/bench_segment.cpp.o"
  "CMakeFiles/bench_segment.dir/bench_segment.cpp.o.d"
  "bench_segment"
  "bench_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
