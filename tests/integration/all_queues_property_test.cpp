// Cross-queue property tests: every real queue in the library (the wait-free
// queue in its main configurations plus all baselines) must satisfy the same
// MPMC no-loss/no-dup/FIFO properties under one uniform driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "baselines/ccqueue.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "core/obstruction_queue.hpp"
#include "core/queue_concepts.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

// Factories give every queue type a uniform construction story.
struct WfDefaultFactory {
  static constexpr const char* kName = "WF-10";
  using Queue = WFQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    WfConfig cfg;
    cfg.patience = 10;
    return std::make_unique<Queue>(cfg);
  }
};

struct WfZeroPatienceFactory {
  static constexpr const char* kName = "WF-0";
  using Queue = WFQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    WfConfig cfg;
    cfg.patience = 0;
    return std::make_unique<Queue>(cfg);
  }
};

struct WfAdaptiveFactory {
  static constexpr const char* kName = "WF-adaptive";
  using Queue = WFQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    WfConfig cfg;
    cfg.patience = 2;  // low start so the controller actually moves
    cfg.patience_mode = PatienceMode::kAdaptive;
    return std::make_unique<Queue>(cfg);
  }
};

struct WfLlscFactory {
  static constexpr const char* kName = "WF-llsc";
  struct Traits : DefaultWfTraits {
    using Faa = EmulatedFaa;
  };
  using Queue = WFQueue<uint64_t, Traits>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(); }
};

struct MsQueueFactory {
  static constexpr const char* kName = "MSQueue";
  using Queue = baselines::MSQueue<uint64_t>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(); }
};

struct LcrqFactory {
  static constexpr const char* kName = "LCRQ";
  using Queue = baselines::LCRQ<uint64_t, 64>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(); }
};

struct CcQueueFactory {
  static constexpr const char* kName = "CCQueue";
  using Queue = baselines::CCQueue<uint64_t>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(); }
};

struct MutexQueueFactory {
  static constexpr const char* kName = "MutexQueue";
  using Queue = baselines::MutexQueue<uint64_t>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(); }
};

struct ObstructionFactory {
  static constexpr const char* kName = "Obstruction";
  using Queue = ObstructionQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    // Unbounded index space: consumer-heavy runs burn a head index per
    // empty dequeue, so any fixed capacity can be exhausted by spinning
    // consumers (reclamation keeps memory bounded regardless).
    return std::make_unique<Queue>();
  }
};

struct KpQueueFactory {
  static constexpr const char* kName = "KPQueue";
  using Queue = baselines::KPQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    return std::make_unique<Queue>(/*max_threads=*/16);
  }
};

struct SimQueueFactory {
  static constexpr const char* kName = "SimQueue";
  using Queue = baselines::SimQueue<uint64_t>;
  static std::unique_ptr<Queue> make() {
    return std::make_unique<Queue>(/*max_threads=*/16);
  }
};

struct ScqFactory {
  static constexpr const char* kName = "SCQ";
  using Queue = ScqQueue<uint64_t>;
  // Bounded backends under the unbounded property driver: capacity must be
  // comfortably above both the thread count (the ring precondition) and the
  // single largest blocking-enqueue burst, or a test livelocks instead of
  // measuring FIFO properties. SequentialFifo enqueues 2000 values before
  // its first dequeue, so 4096 is the floor here, not a tuning choice.
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(4096); }
};

struct WcqFactory {
  static constexpr const char* kName = "wCQ";
  using Queue = WcqQueue<uint64_t>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(4096); }
};

struct WcqSlowPathFactory {
  static constexpr const char* kName = "wCQ-slow";
  // Patience 0 forces every insertion through the publish/help/commit
  // protocol, so the helping machinery gets full MPMC property coverage.
  struct Traits {
    static constexpr bool kCollectStats = true;
    using Faa = NativeFaa;
    static constexpr int kWcqPatience = 0;
  };
  using Queue = WcqQueue<uint64_t, Traits>;
  static std::unique_ptr<Queue> make() { return std::make_unique<Queue>(4096); }
};

struct ShardedWfFactory {
  static constexpr const char* kName = "Sharded-WF x4";
  using Queue = ShardedQueue<WFQueue<uint64_t>>;
  // The uniform driver's properties are exactly the relaxed contract: no
  // loss, no dup, per-producer FIFO (one producer = one home lane), and
  // SequentialFifo holds because a single handle never leaves its lane.
  static std::unique_ptr<Queue> make() {
    WfConfig cfg;
    cfg.patience = 10;
    return std::make_unique<Queue>(ShardConfig{4}, cfg);
  }
};

struct ShardedScqFactory {
  static constexpr const char* kName = "Sharded-SCQ x2";
  using Queue = ShardedQueue<ScqQueue<uint64_t>>;
  // Per-lane capacity must clear the SequentialFifo burst (see ScqFactory's
  // comment): 2000 values land on ONE home lane, so each lane gets 4096.
  static std::unique_ptr<Queue> make() {
    return std::make_unique<Queue>(ShardConfig{2}, std::size_t(4096));
  }
};

template <class Factory>
class AllQueues : public ::testing::Test {};

using QueueFactories =
    ::testing::Types<WfDefaultFactory, WfZeroPatienceFactory,
                     WfAdaptiveFactory, WfLlscFactory, MsQueueFactory,
                     LcrqFactory, CcQueueFactory, MutexQueueFactory,
                     ObstructionFactory, KpQueueFactory, SimQueueFactory,
                     ScqFactory, WcqFactory, WcqSlowPathFactory,
                     ShardedWfFactory, ShardedScqFactory>;
TYPED_TEST_SUITE(AllQueues, QueueFactories);

// Every entry in the typed list must model the formal concept the uniform
// driver assumes (the informal comment-contract, made a compile error).
template <class... Fs>
constexpr bool all_conform(::testing::Types<Fs...>*) {
  return (ConcurrentQueue<typename Fs::Queue> && ...);
}
static_assert(all_conform(static_cast<QueueFactories*>(nullptr)));

TYPED_TEST(AllQueues, SequentialFifo) {
  auto q = TypeParam::make();
  test::run_sequential_fifo(*q, 2000);
}

TYPED_TEST(AllQueues, MpmcBalanced) {
  auto q = TypeParam::make();
  test::run_mpmc_property(*q, 4, 4, 2500);
}

TYPED_TEST(AllQueues, MpmcProducerHeavy) {
  auto q = TypeParam::make();
  test::run_mpmc_property(*q, 6, 2, 2000);
}

TYPED_TEST(AllQueues, MpmcConsumerHeavy) {
  auto q = TypeParam::make();
  test::run_mpmc_property(*q, 2, 6, 2000);
}

TYPED_TEST(AllQueues, PairsConservation) {
  auto q = TypeParam::make();
  test::run_pairs_conservation(*q, 6, 2000);
}

TYPED_TEST(AllQueues, EmptyPollingBetweenBursts) {
  auto q = TypeParam::make();
  auto h = q->get_handle();
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(q->dequeue(h).has_value());
    }
    for (int i = 0; i < 5; ++i) {
      q->enqueue(h, uint64_t(round) * 100 + i + 1);
    }
    for (int i = 0; i < 5; ++i) {
      auto v = q->dequeue(h);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, uint64_t(round) * 100 + i + 1);
    }
  }
}

}  // namespace
}  // namespace wfq
