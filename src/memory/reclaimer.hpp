// Reclamation-policy adapters: a single OpGuard-based interface over the
// hazard-pointer domain and the epoch domain, so node-based structures
// (MS-Queue here) can be instantiated under either scheme and the per-
// operation overhead of each measured head to head (§3.6 "Overhead"
// discussion: HP pays a seq_cst store per protected pointer, EBR one
// critical-section entry per operation, the wait-free queue's custom scheme
// nothing on its x86 fast path).
//
// Contract:
//   using Rec = Policy::Rec;                 // per-thread record
//   Rec* r = policy.acquire(); policy.release(r);
//   { typename Policy::OpGuard g(policy, r); // one per operation attempt
//     T* p = g.template protect<T>(slot, src);  // safe to dereference
//     ...
//   }                                        // protection ends
//   policy.retire(r, node);                  // free when safe
#pragma once

#include <atomic>

#include "memory/epoch.hpp"
#include "memory/hazard_pointers.hpp"

namespace wfq {

/// Hazard-pointer policy: `protect` publishes + revalidates (one seq_cst
/// store each); protection is per-pointer and survives until overwritten or
/// the guard dies.
template <int kSlots>
class HpReclaimer {
  using Domain = HazardPointerDomain<kSlots>;

 public:
  static constexpr const char* kName = "hazard-pointers";
  using Rec = typename Domain::ThreadRec;

  Rec* acquire() { return domain_.acquire(); }
  void release(Rec* r) { domain_.release(r); }

  class OpGuard {
   public:
    OpGuard(HpReclaimer& owner, Rec* rec) : owner_(&owner), rec_(rec) {}
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;
    ~OpGuard() {
      for (int s = 0; s < kSlots; ++s) owner_->domain_.clear(rec_, s);
    }

    template <class T>
    T* protect(int slot, const std::atomic<T*>& src) {
      return owner_->domain_.protect(rec_, slot, src);
    }

   private:
    HpReclaimer* owner_;
    Rec* rec_;
  };

  template <class T>
  void retire(Rec* r, T* p) {
    domain_.retire(r, p);
  }

  std::size_t pending() const { return domain_.retired_count(); }

 private:
  Domain domain_;
};

/// Epoch policy: `protect` is a plain acquire load — the guard's epoch pin
/// already protects everything reachable; the per-operation cost is the
/// pin itself.
template <int kSlots>
class EbrReclaimer {
 public:
  static constexpr const char* kName = "epochs";
  using Rec = EpochDomain::ThreadRec;

  Rec* acquire() { return domain_.acquire(); }
  void release(Rec* r) { domain_.release(r); }

  class OpGuard {
   public:
    OpGuard(EbrReclaimer& owner, Rec* rec) : owner_(&owner), rec_(rec) {
      owner_->domain_.enter(rec_);
    }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;
    ~OpGuard() { owner_->domain_.exit(rec_); }

    template <class T>
    T* protect(int /*slot*/, const std::atomic<T*>& src) {
      return src.load(std::memory_order_acquire);
    }

   private:
    EbrReclaimer* owner_;
    Rec* rec_;
  };

  template <class T>
  void retire(Rec* r, T* p) {
    domain_.retire(r, p);
  }

  std::size_t pending() const { return domain_.limbo_count(); }

 private:
  EpochDomain domain_;
};

}  // namespace wfq
