# Empty dependencies file for bench_memorder.
# This may be replaced when dependencies are built.
