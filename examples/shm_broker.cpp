// shm_broker — cross-process queue demo over the C API's shm backend.
//
// Two ways to run it:
//
//   1. Self-contained demo (no arguments): the broker creates an arena
//      under /tmp, forks producer and consumer processes that each attach
//      the file independently with wfq_shm_attach, and prints the tally.
//
//        $ ./shm_broker
//
//   2. Separate terminals, one role each — the deployment shape the shm
//      backend exists for (processes that share nothing but the file):
//
//        term A$ ./shm_broker create /tmp/jobs.q
//        term B$ ./shm_broker consume /tmp/jobs.q
//        term C$ ./shm_broker produce /tmp/jobs.q 10000
//
//      `create` parks in a blocking dequeue loop, so terminal A doubles as
//      a consumer; kill -9 any producer or consumer and the survivors keep
//      going — the next attach (or any peer) adopts the orphaned work.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "capi/wfq_c.h"

namespace {

constexpr std::size_t kArenaBytes = std::size_t{16} << 20;

int die(const char* what, int rc) {
  std::fprintf(stderr, "shm_broker: %s failed (%d)\n", what, rc);
  return 1;
}

// ---- roles ---------------------------------------------------------------

int role_create(const char* path) {
  wfq_queue_t* q = nullptr;
  int rc = wfq_shm_create(path, kArenaBytes, nullptr, &q);
  if (rc != WFQ_OK) return die("wfq_shm_create", rc);
  std::printf("created %s (capacity %llu); waiting for values, ^C to quit\n",
              path, (unsigned long long)wfq_capacity(q));
  wfq_handle_t* h = wfq_handle_acquire(q);
  if (h == nullptr) return die("wfq_handle_acquire", -1);
  uint64_t v = 0, got = 0;
  while (wfq_dequeue_wait(h, &v) == 1) {
    if (++got % 1000 == 0) {
      std::printf("  consumed %llu (latest %llu)\n", (unsigned long long)got,
                  (unsigned long long)v);
    }
  }
  wfq_handle_release(h);
  wfq_shm_detach(q);
  return 0;
}

int role_produce(const char* path, uint64_t count) {
  wfq_queue_t* q = nullptr;
  int rc = wfq_shm_attach(path, &q);
  if (rc != WFQ_OK) return die("wfq_shm_attach", rc);
  wfq_handle_t* h = wfq_handle_acquire(q);
  if (h == nullptr) return die("wfq_handle_acquire", -1);
  uint64_t sent = 0;
  for (uint64_t i = 1; i <= count; ++i) {
    // Payload encodes (pid, seq) so consumers can attribute values.
    rc = wfq_enqueue(h, (uint64_t(getpid()) << 32) | i);
    if (rc != WFQ_OK) break;
    ++sent;
  }
  std::printf("producer %d: sent %llu/%llu%s\n", int(getpid()),
              (unsigned long long)sent, (unsigned long long)count,
              rc == WFQ_OK ? "" : " (queue full or closed)");
  wfq_handle_release(h);
  wfq_shm_detach(q);
  return sent == count ? 0 : 1;
}

int role_consume(const char* path) {
  wfq_queue_t* q = nullptr;
  int rc = wfq_shm_attach(path, &q);
  if (rc != WFQ_OK) return die("wfq_shm_attach", rc);
  wfq_handle_t* h = wfq_handle_acquire(q);
  if (h == nullptr) return die("wfq_handle_acquire", -1);
  uint64_t v = 0, got = 0;
  // Drain until the queue is closed AND empty (wfq_dequeue_wait returns 0
  // only then; the 1-second timed variant below keeps the demo finite).
  while (wfq_dequeue_timed(h, &v, 1000ull * 1000 * 1000) == 1) ++got;
  std::printf("consumer %d: got %llu values\n", int(getpid()),
              (unsigned long long)got);
  wfq_handle_release(h);
  wfq_shm_detach(q);
  return 0;
}

// ---- self-contained fork demo --------------------------------------------

int demo() {
  char path[64];
  std::snprintf(path, sizeof(path), "/tmp/wfq_broker_%d.q", int(getpid()));
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 50000;

  wfq_queue_t* q = nullptr;
  int rc = wfq_shm_create(path, kArenaBytes, nullptr, &q);
  if (rc != WFQ_OK) return die("wfq_shm_create", rc);
  std::printf("broker %d: %s, capacity %llu, forking %d producers + %d "
              "consumers\n",
              int(getpid()), path, (unsigned long long)wfq_capacity(q),
              kProducers, kConsumers);
  std::fflush(stdout);  // children inherit the stdio buffer across fork()

  // Children _exit (no atexit teardown of the parent's mapping), so flush
  // their report lines explicitly.
  pid_t kids[kProducers + kConsumers];
  int n = 0;
  for (int i = 0; i < kProducers; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      int r = role_produce(path, kPerProducer);
      std::fflush(stdout);
      _exit(r);
    }
    kids[n++] = pid;
  }
  for (int i = 0; i < kConsumers; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      int r = role_consume(path);
      std::fflush(stdout);
      _exit(r);
    }
    kids[n++] = pid;
  }
  // Wait for the producers, close, then wait for the consumers to drain.
  for (int i = 0; i < kProducers; ++i) waitpid(kids[i], nullptr, 0);
  wfq_close(q);
  int bad = 0;
  for (int i = kProducers; i < n; ++i) {
    int status = 0;
    waitpid(kids[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++bad;
  }
  wfq_stats_ex_t st;
  wfq_get_stats_ex(q, &st);
  std::printf("broker %d: done (peer_deaths=%llu adoptions=%llu)\n",
              int(getpid()), (unsigned long long)st.peer_deaths,
              (unsigned long long)st.shm_adoptions);
  wfq_shm_detach(q);
  std::remove(path);
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return demo();
  if (argc >= 3 && std::strcmp(argv[1], "create") == 0) {
    return role_create(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "consume") == 0) {
    return role_consume(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "produce") == 0) {
    return role_produce(argv[2], std::strtoull(argv[3], nullptr, 10));
  }
  std::fprintf(stderr,
               "usage: shm_broker                      # fork demo\n"
               "       shm_broker create  <path>       # create + consume\n"
               "       shm_broker produce <path> <n>   # attach + enqueue\n"
               "       shm_broker consume <path>       # attach + dequeue\n");
  return 2;
}
