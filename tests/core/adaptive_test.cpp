// Deterministic scripted tests for the adaptive fast-path controllers
// (core/adaptive.hpp): the same note_op / note_batch sequence must always
// yield the same knob trajectory — no threads, no timing, no randomness.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"

namespace wfq::adaptive {
namespace {

// Drives one full epoch with `slow_count` slow ops (the rest fast) and
// returns the decision made at the epoch boundary. All intermediate ops
// must report kHold — decisions only happen when the epoch closes.
Decision run_epoch(PatienceController& pc, unsigned epoch_ops,
                   unsigned slow_count) {
  Decision d = Decision::kHold;
  for (unsigned i = 0; i < epoch_ops; ++i) {
    d = pc.note_op(/*slow=*/i < slow_count);
    if (i + 1 < epoch_ops) {
      EXPECT_EQ(d, Decision::kHold) << "decision before epoch boundary";
    }
  }
  return d;
}

TEST(PatienceController, HoldsUntilEpochBoundary) {
  PatienceController pc;
  PatienceConfig cfg;  // epoch_ops = 256
  pc.configure(cfg);
  for (unsigned i = 0; i < cfg.epoch_ops - 1; ++i) {
    EXPECT_EQ(pc.note_op(true), Decision::kHold);
    EXPECT_EQ(pc.patience(), cfg.initial);
  }
  // The 256th op closes the epoch: all-slow ratio must raise.
  EXPECT_EQ(pc.note_op(true), Decision::kRaise);
  EXPECT_EQ(pc.patience(), 2 * cfg.initial);
}

TEST(PatienceController, RaisesThenClampsAtMax) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 10;
  pc.configure(cfg);
  // All-slow epochs double patience each time: 10 -> 20 -> 40 -> 64(clamp).
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops), Decision::kRaise);
  EXPECT_EQ(pc.patience(), 20u);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops), Decision::kRaise);
  EXPECT_EQ(pc.patience(), 40u);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops), Decision::kRaise);
  EXPECT_EQ(pc.patience(), PatienceController::kMaxPatience);
  // At the ceiling further pressure is a hold, not a raise.
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops), Decision::kHold);
  EXPECT_EQ(pc.patience(), PatienceController::kMaxPatience);
}

TEST(PatienceController, DropsThenClampsAtMin) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 10;
  pc.configure(cfg);
  // All-fast epochs keep the EWMA at exactly 0 < drop_below:
  // 10 -> 5 -> 2 -> 1 (clamp), then hold at the floor.
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kDrop);
  EXPECT_EQ(pc.patience(), 5u);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kDrop);
  EXPECT_EQ(pc.patience(), 2u);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kDrop);
  EXPECT_EQ(pc.patience(), PatienceController::kMinPatience);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kHold);
  EXPECT_EQ(pc.patience(), PatienceController::kMinPatience);
}

TEST(PatienceController, HysteresisBandHolds) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 10;
  cfg.epoch_ops = 100;  // 1 slow op per epoch => ratio 0.01, inside the band
  pc.configure(cfg);
  // EWMA converges toward 0.01 from below (0.005, 0.0075, ...): always
  // between drop_below=0.002 and raise_above=0.02, so the knob never moves.
  for (int e = 0; e < 8; ++e) {
    EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 1), Decision::kHold);
    EXPECT_EQ(pc.patience(), cfg.initial);
  }
  EXPECT_GT(pc.ewma(), cfg.drop_below);
  EXPECT_LT(pc.ewma(), cfg.raise_above);
}

TEST(PatienceController, EwmaSmoothsSingleBurst) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 10;
  pc.configure(cfg);
  // One all-slow epoch raises (EWMA 0.5), but the memory decays: two
  // all-fast epochs later the EWMA (0.125) is still above drop_below, so
  // the burst's raise is not immediately undone — that's the smoothing.
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops), Decision::kRaise);
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kRaise);  // 0.25 > 0.02
  EXPECT_EQ(run_epoch(pc, cfg.epoch_ops, 0), Decision::kRaise);  // 0.125
  EXPECT_EQ(pc.patience(), PatienceController::kMaxPatience);
}

TEST(PatienceController, ConfigureResetsState) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 10;
  pc.configure(cfg);
  run_epoch(pc, cfg.epoch_ops, cfg.epoch_ops);
  ASSERT_NE(pc.patience(), 10u);
  ASSERT_NE(pc.ewma(), 0.0);
  pc.configure(cfg);  // handle recycling: back to the configured baseline
  EXPECT_EQ(pc.patience(), 10u);
  EXPECT_EQ(pc.ewma(), 0.0);
}

TEST(PatienceController, InitialIsClamped) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.initial = 0;
  pc.configure(cfg);
  EXPECT_EQ(pc.patience(), PatienceController::kMinPatience);
  cfg.initial = 1000;
  pc.configure(cfg);
  EXPECT_EQ(pc.patience(), PatienceController::kMaxPatience);
}

TEST(PatienceController, ZeroEpochConfigIsSafe) {
  PatienceController pc;
  PatienceConfig cfg;
  cfg.epoch_ops = 0;  // degenerate config must not divide by zero
  pc.configure(cfg);
  EXPECT_EQ(pc.note_op(true), Decision::kRaise);  // 1-op epochs, ratio 1
}

TEST(BulkKController, GrowsAdditivelyAndCaps) {
  BulkKController bc;
  EXPECT_EQ(bc.k(), 32u);
  std::size_t prev = bc.k();
  // Full batches grow +16 per call until the 256 cap.
  for (int i = 0; i < 20; ++i) {
    bc.note_batch(bc.k(), bc.k());
    EXPECT_LE(bc.k(), BulkKController::kMaxK);
    EXPECT_GE(bc.k(), prev);
    prev = bc.k();
  }
  EXPECT_EQ(bc.k(), BulkKController::kMaxK);
}

TEST(BulkKController, HalvesOnShortReturnAndClampsAtMin) {
  BulkKController bc;
  // 32 -> 16 -> 8 -> 4 (floor), then stays.
  bc.note_batch(bc.k(), 0);
  EXPECT_EQ(bc.k(), 16u);
  bc.note_batch(bc.k(), 3);
  EXPECT_EQ(bc.k(), 8u);
  bc.note_batch(bc.k(), 7);
  EXPECT_EQ(bc.k(), BulkKController::kMinK);
  bc.note_batch(bc.k(), 0);
  EXPECT_EQ(bc.k(), BulkKController::kMinK);
}

TEST(BulkKController, AimdRecoversAfterShortReturn) {
  BulkKController bc;
  bc.note_batch(bc.k(), 0);  // 32 -> 16
  bc.note_batch(bc.k(), bc.k());
  EXPECT_EQ(bc.k(), 32u);  // additive recovery, not multiplicative
  bc.reset();
  EXPECT_EQ(bc.k(), 32u);
}

}  // namespace
}  // namespace wfq::adaptive
