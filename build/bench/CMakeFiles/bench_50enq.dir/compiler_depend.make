# Empty compiler generated dependencies file for bench_50enq.
# This may be replaced when dependencies are built.
