// AsyncQueue<Q>: `co_await q.pop_async(h)` over any inner queue the
// blocking layer accepts — the coroutine face of BlockingQueue.
//
// The whole layer rides the EventCount's generalized waiter slot
// (sync/event_count.hpp, AsyncWaiter): registering a coroutine counts into
// the SAME waiters_ word a parked thread does, so the producer-side Dekker
// — and with it the paper's zero-cost fast path — is untouched. An enqueue
// with no registered awaiters executes no atomic RMW beyond the unwrapped
// enqueue's own; the async test suite asserts this via epoch_snapshot(),
// waiters(), and notify_calls.
//
// ## Round protocol (why registration and suspension are split)
//
// Each park attempt is one `Round` object in the coroutine frame:
//
//   {
//     Round round(ec, exec);            // 1. register (waiters_ FAA)
//     sealed = q.sealed();              // 2. Dekker re-check, exactly the
//     if (v = q.try_pop(h)) co_return;  //    sealed-before-attempt order
//     if (sealed) co_return kClosed;    //    pop_impl_body uses
//     co_await round.park();            // 3. suspend — unless already woken
//   }                                   // 4. dtor resolves the slot
//
// The re-check runs in plain coroutine-body code, NOT inside
// await_suspend: the inner dequeue can throw (allocation failure, injected
// crash), and an exception escaping await_suspend while a concurrent claim
// holds the resume right would be an unfixable double-resume. Here it
// unwinds through the coroutine normally and the Round destructor cancels
// the registration (the async layer's WaitGuard duty).
//
// The cost of the split is a window between registration and suspension
// where a notify can claim a coroutine that has no handle published yet.
// The `phase_` word closes it:
//
//   parker:  publish handle; CAS kNoHandle -> kHasHandle; suspended if won
//   claimer: CAS kNoHandle -> kWoken: won a round that never parked — do
//            not resume; pass the wake on (ec.notify(1)) in case it was
//            owed to a different waiter (over-notify is a spurious wake,
//            a consumed notify would be a lost one).
//            else CAS kHasHandle -> kWoken: the coroutine is suspended (or
//            inside park()'s tail, which touches no frame memory after its
//            CAS — the standard's concurrent-resume blessing); we own the
//            resumption.
//
// Claim callbacks follow the AsyncWaiter contract to the letter: read
// everything out of the frame, store kAwDone, and only then resume/post —
// after kAwDone the frame may be gone.
#pragma once

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <optional>
#include <utility>

#include "async/executor.hpp"
#include "async/task.hpp"
#include "async/timer.hpp"
#include "sync/blocking_queue.hpp"

namespace wfq::async {

/// Result of a pop_async round-trip. `value` is engaged iff status == kOk.
template <class T>
struct PopResult {
  sync::PopStatus status;
  std::optional<T> value;

  explicit operator bool() const noexcept {
    return status == sync::PopStatus::kOk;
  }
};

namespace detail {

/// The handle-publication half of the round protocol, shared by the
/// single-queue rounds here and select_any's N-queue round.
struct RoundCore {
  static constexpr uint32_t kNoHandle = 0;   ///< registered, not suspended
  static constexpr uint32_t kHasHandle = 1;  ///< suspended, resumable
  static constexpr uint32_t kWoken = 2;      ///< a notify owns this round
  static constexpr uint32_t kWokenTimer = 3; ///< the deadline owns it

  std::coroutine_handle<> h;
  Executor* exec = nullptr;
  std::atomic<uint32_t> phase{kNoHandle};

  /// Claimer side: returns true iff the caller now owns resuming `h`.
  bool claim(uint32_t to) noexcept {
    uint32_t expected = kNoHandle;
    if (phase.compare_exchange_strong(expected, to,
                                      std::memory_order_acq_rel)) {
      return false;  // round never parked (or not yet): nothing to resume
    }
    if (expected == kHasHandle &&
        phase.compare_exchange_strong(expected, to,
                                      std::memory_order_acq_rel)) {
      return true;
    }
    return false;  // some other claimant (other queue / timer) beat us
  }

  /// Parker side: publish the handle, then try to commit the suspension.
  /// False means a wake (or the deadline) already landed — do not suspend.
  bool park_suspend(std::coroutine_handle<> hh) noexcept {
    h = hh;  // release-published by the CAS below
    uint32_t expected = kNoHandle;
    return phase.compare_exchange_strong(expected, kHasHandle,
                                         std::memory_order_acq_rel);
  }
};

/// One register/re-check/park round against a single EventCount.
class EcRound {
 public:
  EcRound(sync::EventCount& ec, Executor* exec) : ec_(ec) {
    core_.exec = exec;
    node_.ctx = this;
    node_.on_notify = &on_claim;
    ec_.register_async(&node_);
  }

  EcRound(const EcRound&) = delete;
  EcRound& operator=(const EcRound&) = delete;

  ~EcRound() { resolve_node(ec_, node_); }

  /// Awaitable that commits the park. Must be the last use of the round
  /// before its scope closes.
  auto park() noexcept {
    struct Awaiter {
      RoundCore* core;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) noexcept {
        return core->park_suspend(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{&core_};
  }

  /// Shared teardown: a registration must end as exactly one of
  /// kAwCancelled (we deregistered) or kAwDone (a claim ran to
  /// completion); anything in between gets the rendezvous spin.
  static void resolve_node(sync::EventCount& ec,
                           sync::EventCount::AsyncWaiter& node) noexcept {
    uint32_t s = node.state.load(std::memory_order_acquire);
    if (s == sync::EventCount::kAwCancelled ||
        s == sync::EventCount::kAwDone) {
      return;
    }
    if (!ec.cancel_async(&node)) {
      sync::EventCount::await_async_done(&node);
    }
  }

 private:
  static void on_claim(sync::EventCount::AsyncWaiter* w) {
    auto* self = static_cast<EcRound*>(w->ctx);
    sync::EventCount* ec = &self->ec_;
    Executor* exec = self->core_.exec;
    const bool owns_resume = self->core_.claim(RoundCore::kWoken);
    std::coroutine_handle<> h = self->core_.h;
    w->state.store(sync::EventCount::kAwDone, std::memory_order_release);
    // -- node and frame may be freed from here on; locals only --
    if (owns_resume) {
      resume_on(exec, h);
    } else {
      // Claimed a round that never parked: the wake may have been owed to
      // a waiter behind us in the list — pass it on rather than eat it.
      ec->notify(1);
    }
  }

  sync::EventCount& ec_;
  RoundCore core_;
  sync::EventCount::AsyncWaiter node_;
};

/// EcRound plus a deadline: whichever of {notify, timer} claims the core
/// first owns the resumption; the loser passes its stimulus on (a losing
/// notify re-notifies; a losing timer entry simply evaporates).
class EcTimedRound {
 public:
  EcTimedRound(sync::EventCount& ec, Executor* exec,
               sync::WaitClock::time_point deadline)
      : ec_(ec) {
    core_.exec = exec;
    node_.ctx = this;
    node_.on_notify = &on_claim;
    ec_.register_async(&node_);
    timer_id_ = TimerService::instance().arm(deadline, &on_timer, this);
  }

  EcTimedRound(const EcTimedRound&) = delete;
  EcTimedRound& operator=(const EcTimedRound&) = delete;

  ~EcTimedRound() {
    EcRound::resolve_node(ec_, node_);
    // Skip the cancel when the timer won: its entry was consumed before
    // firing, and with an inline executor this destructor RUNS ON the
    // timer thread — cancel() would rendezvous against ourselves.
    if (core_.phase.load(std::memory_order_acquire) !=
        RoundCore::kWokenTimer) {
      TimerService::instance().cancel(timer_id_);
    }
  }

  auto park() noexcept {
    struct Awaiter {
      RoundCore* core;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) noexcept {
        return core->park_suspend(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{&core_};
  }

  /// Valid after park() returned (or declined): did the deadline end the
  /// round?
  bool timed_out() const noexcept {
    return core_.phase.load(std::memory_order_acquire) ==
           RoundCore::kWokenTimer;
  }

 private:
  static void on_claim(sync::EventCount::AsyncWaiter* w) {
    auto* self = static_cast<EcTimedRound*>(w->ctx);
    sync::EventCount* ec = &self->ec_;
    Executor* exec = self->core_.exec;
    const bool owns_resume = self->core_.claim(RoundCore::kWoken);
    // Pass-on rule: we consumed a notify; unless we are the one resuming
    // the coroutine with it, hand it to the next waiter. (kNoHandle rounds
    // AND timer-beaten rounds both re-notify.)
    const bool pass_on = !owns_resume;
    std::coroutine_handle<> h = self->core_.h;
    w->state.store(sync::EventCount::kAwDone, std::memory_order_release);
    if (owns_resume) resume_on(exec, h);
    if (pass_on) ec->notify(1);
  }

  static void on_timer(void* ctx) {
    auto* self = static_cast<EcTimedRound*>(ctx);
    // TimerService::cancel() blocks while this callback runs, so `self`
    // cannot be freed under us even when we lose every race below.
    if (self->core_.claim(RoundCore::kWokenTimer)) {
      resume_on(self->core_.exec, self->core_.h);
    }
  }

  sync::EventCount& ec_;
  RoundCore core_;
  sync::EventCount::AsyncWaiter node_;
  std::uint64_t timer_id_ = 0;
};

}  // namespace detail

/// Coroutine-native wrapper. Owns a BlockingQueue<Q> and adds the awaiting
/// verbs; every synchronous verb (push, try_pop, close, drain, stats, the
/// wait-based pops) remains available through blocking() — the two faces
/// share one queue, one close protocol, and one stats block, so sync
/// threads and coroutines can consume the same queue side by side.
template <class Q>
class AsyncQueue {
 public:
  using Blocking = sync::BlockingQueue<Q>;
  using Handle = typename Blocking::Handle;
  using value_type = typename Q::value_type;
  using T = value_type;

  /// Per-queue async counters (relaxed; test/monitoring aid).
  struct AsyncStats {
    std::uint64_t pop_suspends;    ///< pop rounds that committed a park
    std::uint64_t pop_wakes;       ///< pop rounds resumed by a claim
    std::uint64_t push_suspends;   ///< push rounds that committed a park
    std::uint64_t select_rounds;   ///< select_any registrations (per queue)
  };

  template <class... Args>
  explicit AsyncQueue(Args&&... args) : bq_(std::forward<Args>(args)...) {}

  Handle get_handle() { return bq_.get_handle(); }

  /// The full synchronous surface (and the seam select_any builds on).
  Blocking& blocking() noexcept { return bq_; }
  const Blocking& blocking() const noexcept { return bq_; }

  /// Where claimed coroutines resume; null = inline on the notifier's
  /// thread. Set before the first co_await and leave it alone — the
  /// executor is sampled per round.
  void set_executor(Executor* e) noexcept { exec_ = e; }
  Executor* executor() const noexcept { return exec_; }

  // Synchronous conveniences forwarded verbatim.
  bool push(Handle& h, T v) { return bq_.push(h, std::move(v)); }
  sync::PushStatus push_status(Handle& h, T v) {
    return bq_.push_status(h, std::move(v));
  }
  std::optional<T> try_pop(Handle& h) { return bq_.try_pop(h); }
  void close() { bq_.close(); }
  bool closed() const noexcept { return bq_.closed(); }
  bool sealed() const noexcept { return bq_.sealed(); }
  uint32_t waiters() const noexcept { return bq_.waiters(); }

  AsyncStats async_stats() const noexcept {
    return AsyncStats{pop_suspends_.load(std::memory_order_relaxed),
                      pop_wakes_.load(std::memory_order_relaxed),
                      push_suspends_.load(std::memory_order_relaxed),
                      select_rounds_.load(std::memory_order_relaxed)};
  }

  /// Awaitable pop: suspends while the queue is open and empty; resumes on
  /// a producer's notify (or inline if a value/close is already there).
  /// Returns kOk with a value, or kClosed once the queue is sealed AND
  /// drained — the same linearizable close protocol as pop_wait, because
  /// every attempt uses the identical sealed-before-attempt order.
  Task<PopResult<T>> pop_async(Handle& h) {
    for (;;) {
      bool was_sealed = bq_.sealed();
      if (std::optional<T> v = bq_.try_pop(h)) {
        co_return PopResult<T>{sync::PopStatus::kOk, std::move(v)};
      }
      if (was_sealed) {
        co_return PopResult<T>{sync::PopStatus::kClosed, std::nullopt};
      }
      {
        detail::EcRound round(bq_.pop_event(), exec_);
        // Dekker re-check after registration: a producer that deposited
        // before our waiters_ increment was visible cannot have seen
        // has_waiters(), so this attempt is guaranteed to find its item
        // (EventCount header / ALGORITHM.md §17).
        bool sealed_now = bq_.sealed();
        if (std::optional<T> v = bq_.try_pop(h)) {
          co_return PopResult<T>{sync::PopStatus::kOk, std::move(v)};
        }
        if (sealed_now) {
          co_return PopResult<T>{sync::PopStatus::kClosed, std::nullopt};
        }
        pop_suspends_.fetch_add(1, std::memory_order_relaxed);
        co_await round.park();
        pop_wakes_.fetch_add(1, std::memory_order_relaxed);
      }  // round destructor resolves the registration on every path
    }
  }

  /// Timed awaitable pop; kTimeout after `timeout` with the queue open
  /// and empty. A delivery racing the deadline wins (one final attempt
  /// after expiry, the pop_wait_for rule).
  Task<PopResult<T>> pop_async_for(Handle& h, std::chrono::nanoseconds timeout) {
    const auto deadline = sync::WaitClock::now() + timeout;
    for (;;) {
      bool was_sealed = bq_.sealed();
      if (std::optional<T> v = bq_.try_pop(h)) {
        co_return PopResult<T>{sync::PopStatus::kOk, std::move(v)};
      }
      if (was_sealed) {
        co_return PopResult<T>{sync::PopStatus::kClosed, std::nullopt};
      }
      if (sync::WaitClock::now() >= deadline) {
        co_return final_timed_attempt(h);
      }
      bool timed_out;
      {
        detail::EcTimedRound round(bq_.pop_event(), exec_, deadline);
        bool sealed_now = bq_.sealed();
        if (std::optional<T> v = bq_.try_pop(h)) {
          co_return PopResult<T>{sync::PopStatus::kOk, std::move(v)};
        }
        if (sealed_now) {
          co_return PopResult<T>{sync::PopStatus::kClosed, std::nullopt};
        }
        pop_suspends_.fetch_add(1, std::memory_order_relaxed);
        co_await round.park();
        pop_wakes_.fetch_add(1, std::memory_order_relaxed);
        timed_out = round.timed_out();
      }
      if (timed_out) co_return final_timed_attempt(h);
    }
  }

  /// Awaitable push for bounded inner queues: suspends on kFull, resumed
  /// by consumers freeing space (the space-EventCount Dekker). Returns
  /// kOk, kClosed, or kNoMem — never kFull. The retry loop goes through
  /// try_push, whose kFull hands `v` back untouched.
  Task<sync::PushStatus> push_async(Handle& h, T v)
    requires BoundedQueue<Q>
  {
    for (;;) {
      sync::PushStatus st = bq_.try_push(h, v);
      if (st != sync::PushStatus::kFull) co_return st;
      {
        detail::EcRound round(bq_.space_event(), exec_);
        st = bq_.try_push(h, v);  // Dekker re-check against freed space
        if (st != sync::PushStatus::kFull) co_return st;
        push_suspends_.fetch_add(1, std::memory_order_relaxed);
        co_await round.park();
      }
    }
  }

  /// select_any bookkeeping hook (select.hpp).
  void count_select_round() noexcept {
    select_rounds_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  PopResult<T> final_timed_attempt(Handle& h) {
    // Sealed-before-attempt, one last time: a seal landing after a failed
    // attempt must not masquerade as "drained".
    bool final_sealed = bq_.sealed();
    if (std::optional<T> v = bq_.try_pop(h)) {
      return PopResult<T>{sync::PopStatus::kOk, std::move(v)};
    }
    return PopResult<T>{
        final_sealed ? sync::PopStatus::kClosed : sync::PopStatus::kTimeout,
        std::nullopt};
  }

  Blocking bq_;
  Executor* exec_ = nullptr;
  std::atomic<std::uint64_t> pop_suspends_{0};
  std::atomic<std::uint64_t> pop_wakes_{0};
  std::atomic<std::uint64_t> push_suspends_{0};
  std::atomic<std::uint64_t> select_rounds_{0};
};

/// Unbounded default: the paper's queue under the awaiter surface.
template <class T, class Traits = DefaultWfTraits>
using AsyncWFQueue = AsyncQueue<WFQueue<T, Traits>>;

/// Bounded rings: pop_async AND push_async both available.
template <class T, class Traits = DefaultRingTraits>
using AsyncScqQueue = AsyncQueue<ScqQueue<T, Traits>>;
template <class T, class Traits = DefaultRingTraits>
using AsyncWcqQueue = AsyncQueue<WcqQueue<T, Traits>>;

/// Horizontal-scale configuration (PR 8 lanes under coroutines).
template <class T, class Traits = DefaultWfTraits>
using AsyncShardedQueue = AsyncQueue<scale::ShardedQueue<WFQueue<T, Traits>>>;

}  // namespace wfq::async
