// coro_server: the canonical event-loop embedding of the async layer — an
// epoll loop driving a three-stage coroutine pipeline over wait-free
// queues under simulated heavy connection traffic.
//
//   conn threads (8) --req--> parsers (3) --work--> workers (4)
//                                 [AsyncWFQueue]  [AsyncShardedQueue]
//        workers --resp_even/resp_odd--> collector (select_any)
//
// Everything left of the first queue is "the network": producer threads
// pushing bursts of requests, the way accept+read callbacks would. To the
// right, ALL processing is coroutines pinned to ONE loop thread: every
// queue's executor is the EpollLoop, so a producer's notify never runs
// consumer code — it posts the claimed handle through an eventfd and the
// loop resumes it (executor.hpp's seam, at its intended setting).
//
// Shutdown is a close() cascade with no flags or sentinels: the last conn
// thread closes `req`; the last parser to see kClosed closes `work`; the
// last worker closes both response queues; the collector's select_any
// reports kClosed only when BOTH are sealed and drained, and stops the
// loop. The run ends with an exact conservation audit: every request id
// collected exactly once, every result equal to the two-stage transform.
//
//   $ ./coro_server [requests]     # WFQ_OPS env also respected
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "async/async_queue.hpp"
#include "async/select.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// ---- the event loop ----------------------------------------------------

/// Minimal epoll-based Executor: post() is any-thread (mutex push +
/// eventfd kick), run() is the loop thread resuming claimed coroutines.
/// A real server would register sockets on the same epfd; here the
/// eventfd is the only fd because the queues ARE the event sources.
class EpollLoop final : public wfq::async::Executor {
 public:
  EpollLoop() {
    ep_ = ::epoll_create1(0);
    ev_ = ::eventfd(0, EFD_NONBLOCK);
    if (ep_ < 0 || ev_ < 0) {
      std::perror("coro_server: epoll/eventfd");
      std::exit(1);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = ev_;
    ::epoll_ctl(ep_, EPOLL_CTL_ADD, ev_, &ev);
  }
  ~EpollLoop() override {
    ::close(ev_);
    ::close(ep_);
  }

  void post(std::coroutine_handle<> h) override {
    {
      std::lock_guard<std::mutex> g(mu_);
      ready_.push_back(h);
    }
    kick();
  }

  void stop() {
    stopping_.store(true, std::memory_order_release);
    kick();
  }

  void run() {
    std::vector<std::coroutine_handle<>> batch;
    for (;;) {
      epoll_event evs[16];
      int n = ::epoll_wait(ep_, evs, 16, -1);
      if (n < 0 && errno != EINTR) break;
      std::uint64_t drained;
      while (::read(ev_, &drained, sizeof drained) > 0) {
      }
      // Resume everything posted so far. Resumed coroutines may post more
      // (stage N handing to stage N+1 inline); those land next iteration.
      {
        std::lock_guard<std::mutex> g(mu_);
        batch.swap(ready_);
      }
      for (auto h : batch) h.resume();
      batch.clear();
      if (stopping_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> g(mu_);
        if (ready_.empty()) return;  // nothing in flight survives stop()
      }
    }
  }

 private:
  void kick() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(ev_, &one, sizeof one);
  }

  int ep_ = -1;
  int ev_ = -1;
  std::mutex mu_;
  std::vector<std::coroutine_handle<>> ready_;
  std::atomic<bool> stopping_{false};
};

// ---- the pipeline ------------------------------------------------------

struct Request {
  std::uint64_t id;
  std::uint64_t payload;
};
struct Response {
  std::uint64_t id;
  std::uint64_t result;
};

using ReqQueue = wfq::async::AsyncWFQueue<Request>;
using WorkQueue = wfq::async::AsyncShardedQueue<Request>;
using RespQueue = wfq::async::AsyncWFQueue<Response>;

// The two stage transforms; the audit recomputes their composition.
std::uint64_t parse_step(std::uint64_t payload) {
  return payload * 0x9E3779B97F4A7C15ull;
}
std::uint64_t work_step(std::uint64_t parsed) {
  std::uint64_t x = parsed ^ (parsed >> 33);
  return x * 0xFF51AFD7ED558CCDull;
}

wfq::async::Detached parser(ReqQueue& req, WorkQueue& work,
                            std::atomic<int>& live) {
  auto hi = req.get_handle();
  auto ho = work.get_handle();
  for (;;) {
    auto r = co_await req.pop_async(hi);
    if (!r) break;
    Request m = *r.value;
    m.payload = parse_step(m.payload);
    work.push(ho, m);
  }
  if (live.fetch_sub(1) == 1) work.close();
}

wfq::async::Detached worker(WorkQueue& work, RespQueue& even, RespQueue& odd,
                            std::atomic<int>& live) {
  auto hi = work.get_handle();
  auto he = even.get_handle();
  auto ho = odd.get_handle();
  for (;;) {
    auto r = co_await work.pop_async(hi);
    if (!r) break;
    const std::uint64_t result = work_step(r.value->payload);
    Response resp{r.value->id, result};
    if (result & 1) {
      odd.push(ho, resp);
    } else {
      even.push(he, resp);
    }
  }
  if (live.fetch_sub(1) == 1) {
    even.close();
    odd.close();
  }
}

struct Collected {
  std::vector<std::uint8_t> seen;
  std::uint64_t total = 0;
  std::uint64_t bad = 0;      // wrong transform result
  std::uint64_t from_even = 0;
  std::uint64_t from_odd = 0;
};

wfq::async::Detached collector(RespQueue& even, RespQueue& odd,
                               Collected& out, EpollLoop& loop) {
  auto he = even.get_handle();
  auto ho = odd.get_handle();
  for (;;) {
    auto r = co_await wfq::async::select_any(wfq::async::on(even, he),
                                             wfq::async::on(odd, ho));
    if (!r) break;  // both response queues sealed AND drained
    const Response& resp = *r.value;
    if (resp.id < out.seen.size()) out.seen[resp.id] += 1;
    if (resp.result != work_step(parse_step(resp.id * 2654435761ull))) {
      ++out.bad;
    }
    ++(r.index == 0 ? out.from_even : out.from_odd);
    ++out.total;
  }
  loop.stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t requests = 200'000;
  if (const char* e = std::getenv("WFQ_OPS")) {
    requests = std::strtoull(e, nullptr, 10);
  }
  if (argc > 1) requests = std::strtoull(argv[1], nullptr, 10);
  constexpr unsigned kConns = 8;
  constexpr int kParsers = 3;
  constexpr int kWorkers = 4;
  const std::uint64_t per_conn = requests / kConns;
  requests = per_conn * kConns;

  EpollLoop loop;
  ReqQueue req;
  WorkQueue work;
  RespQueue resp_even, resp_odd;
  req.set_executor(&loop);
  work.set_executor(&loop);
  resp_even.set_executor(&loop);
  resp_odd.set_executor(&loop);

  std::printf("coro_server: %llu requests, %u conns -> %d parsers -> %d "
              "workers -> 1 collector (1 loop thread)\n",
              (unsigned long long)requests, kConns, kParsers, kWorkers);

  // Fire the pipeline coroutines. Each runs eagerly to its first
  // pop_async park (the queues are empty), so from here on they live on
  // the loop thread only.
  std::atomic<int> parsers_live{kParsers};
  std::atomic<int> workers_live{kWorkers};
  Collected collected;
  collected.seen.assign(requests, 0);
  for (int i = 0; i < kParsers; ++i) parser(req, work, parsers_live);
  for (int i = 0; i < kWorkers; ++i) {
    worker(work, resp_even, resp_odd, workers_live);
  }
  collector(resp_even, resp_odd, collected, loop);

  std::thread loop_thread([&] { loop.run(); });

  // "Connections": bursts of requests with brief gaps, the arrival shape
  // an epoll server actually sees. The last connection closes the intake.
  const auto t0 = Clock::now();
  std::atomic<unsigned> conns_live{kConns};
  std::vector<std::thread> conns;
  for (unsigned c = 0; c < kConns; ++c) {
    conns.emplace_back([&, c] {
      auto h = req.get_handle();
      for (std::uint64_t i = 0; i < per_conn; ++i) {
        const std::uint64_t id = c * per_conn + i;
        req.push(h, Request{id, id * 2654435761ull});
        if ((i & 1023) == 1023) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      if (conns_live.fetch_sub(1) == 1) req.close();
    });
  }
  for (auto& t : conns) t.join();
  loop_thread.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  // Conservation audit: every id exactly once, every result correct.
  std::uint64_t missing = 0, dup = 0;
  for (std::uint64_t id = 0; id < requests; ++id) {
    if (collected.seen[id] == 0) ++missing;
    if (collected.seen[id] > 1) ++dup;
  }
  std::printf("collected %llu responses in %.3fs (%.2f Mreq/s): "
              "even=%llu odd=%llu\n",
              (unsigned long long)collected.total, secs,
              double(requests) / secs / 1e6,
              (unsigned long long)collected.from_even,
              (unsigned long long)collected.from_odd);
  std::printf("audit: missing=%llu dup=%llu bad_result=%llu -> %s\n",
              (unsigned long long)missing, (unsigned long long)dup,
              (unsigned long long)collected.bad,
              (missing | dup | collected.bad) == 0 ? "OK" : "FAILED");
  return (missing | dup | collected.bad) == 0 ? 0 : 1;
}
