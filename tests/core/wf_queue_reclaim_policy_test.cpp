// The reclamation-policy matrix: the wait-free queue must be correct and
// memory-bounded under every ReclaimPolicy — the paper's §3.6 scheme
// (PaperReclaim, the default), classic hazard pointers (HpReclaim), and
// classic epochs (EpochReclaim). Same MPMC property check, same
// quiesce-protocol conservation check, plus a bounded-memory assertion
// (live segments stay O(max_garbage + threads) after quiescing), so a
// policy that silently stops reclaiming — or reclaims too eagerly — fails
// here rather than in a benchmark.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

// Small segments so a modest op count churns through many of them.
template <template <class> class Policy>
struct PolicyTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 64;
  template <class SL>
  using Reclaim = Policy<SL>;
};

using PaperPolicyTraits = PolicyTraits<PaperReclaim>;
using HpPolicyTraits = PolicyTraits<HpReclaim>;
using EpochPolicyTraits = PolicyTraits<EpochReclaim>;

// PaperReclaim must remain the unchanged default (acceptance criterion).
using DefaultSegList =
    SegmentList<WfCell, DefaultWfTraits>;
static_assert(
    std::is_same_v<DefaultWfTraits::Reclaim<DefaultSegList>,
                   PaperReclaim<DefaultSegList>>,
    "DefaultWfTraits must keep the paper's reclamation scheme as default");

template <class Traits>
class WfReclaimPolicyTest : public ::testing::Test {};

using AllPolicyTraits =
    ::testing::Types<PaperPolicyTraits, HpPolicyTraits, EpochPolicyTraits>;
TYPED_TEST_SUITE(WfReclaimPolicyTest, AllPolicyTraits);

TYPED_TEST(WfReclaimPolicyTest, MpmcProperty) {
  WfConfig cfg;
  cfg.max_garbage = 8;
  WFQueue<uint64_t, TypeParam> q(cfg);
  test::run_mpmc_property(q, 4, 4, 4000);
}

TYPED_TEST(WfReclaimPolicyTest, SequentialChurnReclaimsAndStaysCorrect) {
  WfConfig cfg;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, TypeParam> q(cfg);
  auto h = q.get_handle();
  constexpr uint64_t kOps = 64 * 400;  // 400 segments' worth of indices
  for (uint64_t i = 0; i < kOps; ++i) {
    q.enqueue(h, i + 1);
    ASSERT_EQ(q.dequeue(h), i + 1);
  }
  EXPECT_LT(q.live_segments(), 32u);
  EXPECT_GT(q.stats().segments_freed.load(), 300u);
}

TYPED_TEST(WfReclaimPolicyTest, QuiesceProtocolConserves) {
  // Flag-before-dequeue shutdown protocol (see
  // tests/integration/quiesce_protocol_test.cpp): an EMPTY from a dequeue
  // that began after "producers done" proves the queue drained. Run it
  // with aggressive reclamation so policy bugs surface as lost values.
  constexpr int kRounds = 8;
  constexpr unsigned kProducers = 2, kConsumers = 2;
  constexpr uint64_t kPerProducer = 8000;
  for (int round = 0; round < kRounds; ++round) {
    WfConfig cfg;
    cfg.max_garbage = 4;
    WFQueue<uint64_t, TypeParam> q(cfg);
    std::atomic<bool> producers_done{false};
    std::atomic<uint64_t> consumed{0};
    std::vector<std::thread> ps, cs;
    for (unsigned p = 0; p < kProducers; ++p) {
      ps.emplace_back([&, p] {
        auto h = q.get_handle();
        for (uint64_t i = 0; i < kPerProducer; ++i) {
          q.enqueue(h, (uint64_t(p + 1) << 40) | (i + 1));
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      cs.emplace_back([&] {
        auto h = q.get_handle();
        for (;;) {
          const bool was_done = producers_done.load(std::memory_order_acquire);
          auto v = q.dequeue(h);
          if (v.has_value()) {
            consumed.fetch_add(1, std::memory_order_relaxed);
          } else if (was_done) {
            break;  // EMPTY after quiesce: provably drained
          }
        }
      });
    }
    for (auto& t : ps) t.join();
    producers_done.store(true, std::memory_order_release);
    for (auto& t : cs) t.join();
    ASSERT_EQ(consumed.load(), kProducers * kPerProducer)
        << "round " << round << ": conservation lost under this policy";
  }
}

TYPED_TEST(WfReclaimPolicyTest, BoundedMemoryAfterQuiesce) {
  // After sustained churn quiesces, the live segment list must be bounded
  // by f(max_garbage, threads), independent of how many segments the run
  // consumed: frontier lag is at most the max_garbage trigger threshold,
  // plus at most one partially-consumed segment per thread-side pointer
  // and a little helping overshoot. (Deferred policies may additionally
  // hold *detached* segments in domain limbo, which is bounded separately
  // and does not appear in the live list.)
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 12000;
  WfConfig cfg;
  cfg.max_garbage = 8;
  WFQueue<uint64_t, TypeParam> q(cfg);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) {
        q.enqueue(h, t * kOps + i + 1);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  // One more single-threaded sweep so a final reclamation poll definitely
  // ran with every other thread quiesced.
  {
    auto h = q.get_handle();
    for (uint64_t i = 0; i < 64 * (8 + 2); ++i) {
      q.enqueue(h, i + 1);
      (void)q.dequeue(h);
    }
  }
  const std::size_t bound = std::size_t(8)      // max_garbage lag
                            + 2 * kThreads + 2  // head+tail pointer spread
                            + 8;                // helping/probe overshoot
  EXPECT_LE(q.live_segments(), bound);
  // Sanity: the run really did span far more segments than the bound.
  EXPECT_GT(q.stats().segments_freed.load(), 500u);
}

TYPED_TEST(WfReclaimPolicyTest, BulkChurnReclaimsUnderEveryPolicy) {
  // Batched ops must interoperate with reclamation: segment-crossing
  // batches (48 of 64 cells per call) churn through hundreds of segments
  // while two threads run bulk pairs, and the policy must keep freeing
  // them without losing or duplicating values.
  constexpr std::size_t kBatch = 48;
  constexpr uint64_t kBatchesPerThread = 400;  // ~300 segments of indices
  constexpr unsigned kThreads = 2;
  WfConfig cfg;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, TypeParam> q(cfg);
  std::atomic<uint64_t> claimed{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      std::vector<uint64_t> vals(kBatch), out(kBatch);
      uint64_t local = 0;
      for (uint64_t b = 0; b < kBatchesPerThread; ++b) {
        for (std::size_t j = 0; j < kBatch; ++j) {
          vals[j] = test::make_val(t, b * kBatch + j);
        }
        q.enqueue_bulk(h, vals.data(), kBatch);
        local += q.dequeue_bulk(h, out.data(), kBatch);
      }
      claimed.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  std::vector<uint64_t> out(kBatch);
  uint64_t rest = 0;
  for (std::size_t got; (got = q.dequeue_bulk(h, out.data(), kBatch)) > 0;) {
    rest += got;
  }
  ASSERT_EQ(claimed.load() + rest,
            uint64_t{kThreads} * kBatchesPerThread * kBatch);
  // Reclamation kept up: the live list is bounded, and most of the
  // ~kThreads * 300 consumed segments were actually freed.
  EXPECT_LT(q.live_segments(), 64u);
  EXPECT_GT(q.stats().segments_freed.load(), 300u);
}

TYPED_TEST(WfReclaimPolicyTest, StalledThreadDoesNotStopTheSystem) {
  // A registered thread that goes dormant between operations (stale
  // segment pointers, no protection published) must not wedge the others:
  // cleaners advance its pointers on its behalf, and it still operates
  // correctly when it wakes.
  WfConfig cfg;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, TypeParam> q(cfg);
  std::atomic<bool> parked{false}, release{false};
  std::thread blocker([&] {
    auto h = q.get_handle();
    q.enqueue(h, 1);
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Still correct after the stall.
    q.enqueue(h, 2);
    (void)q.dequeue(h);
    (void)q.dequeue(h);
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    auto h = q.get_handle();
    for (uint64_t i = 0; i < 64 * 100; ++i) {
      q.enqueue(h, i + 1);
      ASSERT_TRUE(q.dequeue(h).has_value());
    }
  }
  release.store(true, std::memory_order_release);
  blocker.join();
  auto h = q.get_handle();
  ASSERT_FALSE(q.dequeue(h).has_value());
}

}  // namespace
}  // namespace wfq
