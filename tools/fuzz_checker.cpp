// Long-running cross-validation fuzzer for the linearizability checkers:
// random small FIFO histories (valid and broken) are judged by both the
// polynomial bad-pattern checker and the brute-force definitional search;
// any disagreement is printed with a replayable seed and fails the run.
// The ctest fuzz (tests/checker/cross_validation_test.cpp) runs a bounded
// slice of this; the tool runs for as long as you give it.
//
//   $ ./fuzz_checker [seconds] [max_ops]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "checker/brute_checker.hpp"
#include "checker/queue_checker.hpp"
#include "common/random.hpp"

namespace {

using namespace wfq;
using namespace wfq::lin;

Op enq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kEnqueue, 0, v, t0, t1};
}
Op deq(uint64_t v, uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeue, 0, v, t0, t1};
}
Op deq_empty(uint64_t t0, uint64_t t1) {
  return Op{OpKind::kDequeueEmpty, 0, 0, t0, t1};
}

/// Same generator as the ctest fuzz: distinct event timestamps (matching
/// the recorder's guarantee), enqueue values distinct, dequeues drawn from
/// the pool with occasional duplicates, some EMPTYs. About a third of the
/// ops are emitted as *batches*: 2-3 same-kind ops whose intervals are
/// back-to-back and strictly ordered (2b timestamps drawn, sorted, then
/// paired in order) — the shape a bulk enqueue/dequeue produces, since a
/// batch linearizes as consecutive per-item operations.
std::vector<Op> random_history(Xorshift128Plus& rng, unsigned max_ops) {
  unsigned n_enq = 1 + unsigned(rng.next_below(max_ops / 2));
  unsigned n_deq = unsigned(rng.next_below(max_ops / 2 + 1));
  unsigned n = n_enq + n_deq;
  std::vector<uint64_t> ts(2 * n);
  for (unsigned i = 0; i < 2 * n; ++i) ts[i] = i;
  for (unsigned i = 2 * n - 1; i > 0; --i) {
    std::swap(ts[i], ts[rng.next_below(i + 1)]);
  }
  unsigned next_ts = 0;
  auto interval = [&](uint64_t& t0, uint64_t& t1) {
    t0 = ts[next_ts++];
    t1 = ts[next_ts++];
    if (t0 > t1) std::swap(t0, t1);
  };
  // Draw 2b timestamps, sort, pair in order: b ordered, non-overlapping
  // intervals for one batch.
  auto batch_intervals = [&](unsigned b) {
    std::vector<uint64_t> s(ts.begin() + next_ts, ts.begin() + next_ts + 2 * b);
    next_ts += 2 * b;
    std::sort(s.begin(), s.end());
    return s;
  };
  std::vector<Op> h;
  std::vector<uint64_t> values;
  for (unsigned i = 0; i < n_enq;) {
    unsigned b = 1;
    if (n_enq - i >= 2 && rng.next_below(3) == 0) {
      b = 2 + unsigned(rng.next_below(std::min(2u, n_enq - i - 1)));
    }
    if (b == 1) {
      uint64_t t0, t1;
      interval(t0, t1);
      h.push_back(enq(i + 1, t0, t1));
      values.push_back(++i);
    } else {
      auto s = batch_intervals(b);
      for (unsigned j = 0; j < b; ++j) {
        h.push_back(enq(i + 1, s[2 * j], s[2 * j + 1]));
        values.push_back(++i);
      }
    }
  }
  for (unsigned i = 0; i < n_deq;) {
    unsigned b = 1;
    if (n_deq - i >= 2 && rng.next_below(3) == 0) {
      b = 2 + unsigned(rng.next_below(std::min(2u, n_deq - i - 1)));
    }
    if (b == 1) {
      uint64_t t0, t1;
      interval(t0, t1);
      if (rng.next_below(4) == 0) {
        h.push_back(deq_empty(t0, t1));
      } else {
        h.push_back(deq(values[rng.next_below(values.size())], t0, t1));
      }
      ++i;
    } else {
      auto s = batch_intervals(b);
      for (unsigned j = 0; j < b; ++j, ++i) {
        h.push_back(
            deq(values[rng.next_below(values.size())], s[2 * j], s[2 * j + 1]));
      }
    }
  }
  return h;
}

void dump(const std::vector<Op>& h) {
  for (const auto& op : h) {
    const char* k = op.kind == OpKind::kEnqueue    ? "ENQ"
                    : op.kind == OpKind::kDequeue ? "DEQ"
                                                  : "DEQ_EMPTY";
    std::printf("  %s v=%llu [%llu,%llu]\n", k,
                (unsigned long long)op.value,
                (unsigned long long)op.invoke_ts,
                (unsigned long long)op.respond_ts);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 30.0;
  unsigned max_ops =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 11;

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  uint64_t seed = 1;
  uint64_t histories = 0, accepted = 0, rejected = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Xorshift128Plus rng(seed);
    for (int trial = 0; trial < 500; ++trial) {
      auto h = random_history(rng, max_ops);
      auto pattern = wfq::lin::check_queue_history(h);
      if (!pattern.linearizable &&
          pattern.violation.find("precondition") != std::string::npos) {
        continue;
      }
      bool brute = wfq::lin::brute_force_linearizable(h);
      ++histories;
      (pattern.linearizable ? accepted : rejected)++;
      if (pattern.linearizable != brute) {
        std::printf("DISAGREEMENT at seed=%llu trial=%d: pattern says %s, "
                    "brute force says %s\n",
                    (unsigned long long)seed, trial,
                    pattern.linearizable ? "linearizable"
                                         : pattern.violation.c_str(),
                    brute ? "linearizable" : "NOT linearizable");
        dump(h);
        return 1;
      }
    }
    ++seed;
  }
  std::printf("fuzz_checker: %llu histories (%llu linearizable, %llu "
              "rejected) across %llu seeds — checkers agree\n",
              (unsigned long long)histories, (unsigned long long)accepted,
              (unsigned long long)rejected, (unsigned long long)(seed - 1));
  return 0;
}
