// Brute-force linearizability checker for FIFO queues (Wing & Gong style
// search). Exponential — usable only for small histories — but derived
// directly from the definition of linearizability, with no queue-specific
// theory. Its purpose is to cross-validate the polynomial bad-pattern
// checker (queue_checker.hpp): on every history small enough for both, the
// two must agree. The property tests in tests/checker exercise exactly
// that, on random valid and invalid histories.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "checker/history.hpp"

namespace wfq::lin {

namespace detail {

/// Encodes (applied-mask, queue contents) for memoization.
inline std::string brute_key(uint64_t mask, const std::deque<uint64_t>& q) {
  std::string key;
  key.reserve(8 + q.size() * 8);
  for (int i = 0; i < 8; ++i) key.push_back(char(mask >> (8 * i)));
  for (uint64_t v : q) {
    for (int i = 0; i < 8; ++i) key.push_back(char(v >> (8 * i)));
  }
  return key;
}

}  // namespace detail

/// True iff `ops` (a complete history, <= 64 operations) has a
/// linearization that is a legal sequential FIFO history. The search
/// respects real-time order: an operation may be linearized only when every
/// operation that strictly precedes it (response before invocation) has
/// been linearized already.
inline bool brute_force_linearizable(const std::vector<Op>& ops) {
  const std::size_t n = ops.size();
  if (n == 0) return true;
  if (n > 64) return false;  // out of scope for the brute checker

  // precede_mask[i] = bitmask of ops that must linearize before op i.
  std::vector<uint64_t> precede_mask(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && precedes(ops[j], ops[i])) precede_mask[i] |= 1ull << j;
    }
  }

  std::unordered_set<std::string> visited;
  const uint64_t full = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;

  std::function<bool(uint64_t, std::deque<uint64_t>&)> dfs =
      [&](uint64_t done, std::deque<uint64_t>& queue) -> bool {
    if (done == full) return true;
    std::string key = detail::brute_key(done, queue);
    if (!visited.insert(std::move(key)).second) return false;
    for (std::size_t i = 0; i < n; ++i) {
      uint64_t bit = uint64_t{1} << i;
      if (done & bit) continue;
      if ((precede_mask[i] & ~done) != 0) continue;  // predecessor pending
      const Op& op = ops[i];
      switch (op.kind) {
        case OpKind::kEnqueue: {
          queue.push_back(op.value);
          if (dfs(done | bit, queue)) return true;
          queue.pop_back();
          break;
        }
        case OpKind::kDequeue: {
          if (queue.empty() || queue.front() != op.value) break;
          uint64_t v = queue.front();
          queue.pop_front();
          if (dfs(done | bit, queue)) return true;
          queue.push_front(v);
          break;
        }
        case OpKind::kDequeueEmpty: {
          if (!queue.empty()) break;
          if (dfs(done | bit, queue)) return true;
          break;
        }
      }
    }
    return false;
  };

  std::deque<uint64_t> queue;
  return dfs(0, queue);
}

}  // namespace wfq::lin
