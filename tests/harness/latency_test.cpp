// Tests for the latency-measurement harness.
#include "harness/latency.hpp"

#include <gtest/gtest.h>

#include "baselines/mutex_queue.hpp"
#include "core/wf_queue.hpp"

namespace wfq::bench {
namespace {

TEST(Latency, PercentileSortedNearestRank) {
  std::vector<uint64_t> xs{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(percentile_sorted(xs, 0.0), 10u);
  EXPECT_EQ(percentile_sorted(xs, 0.5), 50u);  // idx 4.5 -> 4 -> 50
  EXPECT_EQ(percentile_sorted(xs, 1.0), 100u);
  EXPECT_EQ(percentile_sorted({}, 0.5), 0u);
  EXPECT_EQ(percentile_sorted({7}, 0.99), 7u);
}

TEST(Latency, SummarizeOrdersStatistics) {
  std::vector<uint64_t> xs;
  for (uint64_t i = 1; i <= 1000; ++i) xs.push_back(1001 - i);  // reversed
  auto r = summarize_latencies(std::move(xs));
  EXPECT_EQ(r.count, 1000u);
  EXPECT_LE(r.p50, r.p90);
  EXPECT_LE(r.p90, r.p99);
  EXPECT_LE(r.p99, r.p999);
  EXPECT_LE(r.p999, r.max);
  EXPECT_EQ(r.max, 1000u);
  EXPECT_NEAR(double(r.p50), 500.0, 2.0);
  EXPECT_NEAR(double(r.p99), 990.0, 2.0);
}

TEST(Latency, SummarizeEmpty) {
  auto r = summarize_latencies({});
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.max, 0u);
}

TEST(Latency, MeasuresMutexQueue) {
  baselines::MutexQueue<uint64_t> q;
  auto r = measure_op_latency(q, 2, 2000);
  EXPECT_EQ(r.count, 2u * 2 * 2000);  // enqueue + dequeue samples
  EXPECT_GT(r.max, 0u);
  EXPECT_LE(r.p50, r.max);
}

TEST(Latency, MeasuresWfQueue) {
  WFQueue<uint64_t> q;
  auto r = measure_op_latency(q, 2, 2000);
  EXPECT_EQ(r.count, 2u * 2 * 2000);
  EXPECT_EQ(q.stats().enqueues(), 2u * 2000);
}

}  // namespace
}  // namespace wfq::bench
