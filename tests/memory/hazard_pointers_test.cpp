// Unit and stress tests for the hazard-pointer reclamation domain.
#include "memory/hazard_pointers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace wfq {
namespace {

struct CountedNode {
  static inline std::atomic<int> live{0};
  // Atomic: the stress test touches a retired (but protected) node while
  // readers still dereference it.
  std::atomic<int> payload{0};
  CountedNode() { live.fetch_add(1); }
  explicit CountedNode(int p) : payload(p) { live.fetch_add(1); }
  ~CountedNode() { live.fetch_sub(1); }
};

TEST(HazardPointers, AcquireReusesReleasedRecords) {
  HazardPointerDomain<1> dom;
  auto* a = dom.acquire();
  dom.release(a);
  auto* b = dom.acquire();
  EXPECT_EQ(a, b);
  EXPECT_EQ(dom.thread_records(), 1u);
  auto* c = dom.acquire();
  EXPECT_NE(b, c);
  EXPECT_EQ(dom.thread_records(), 2u);
  dom.release(b);
  dom.release(c);
}

TEST(HazardPointers, RetiredNodeFreedByScanWhenUnprotected) {
  CountedNode::live.store(0);
  {
    HazardPointerDomain<1> dom(/*scan_threshold_floor=*/1);
    auto* rec = dom.acquire();
    dom.retire(rec, new CountedNode());
    dom.scan(rec);  // no hazards published: must free it
    EXPECT_EQ(CountedNode::live.load(), 0);
    dom.release(rec);
  }
}

TEST(HazardPointers, RetireAutoScansPastThreshold) {
  CountedNode::live.store(0);
  {
    HazardPointerDomain<1> dom(/*scan_threshold_floor=*/4);
    auto* rec = dom.acquire();
    for (int i = 0; i < 16; ++i) dom.retire(rec, new CountedNode());
    // Threshold is max(4, 2 * slots * records) = 4; auto-scans fired.
    EXPECT_LT(CountedNode::live.load(), 16);
    dom.release(rec);
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

TEST(HazardPointers, ProtectedNodeSurvivesScan) {
  CountedNode::live.store(0);
  {
    HazardPointerDomain<1> dom(1);
    auto* owner = dom.acquire();
    auto* reader = dom.acquire();
    std::atomic<CountedNode*> src{new CountedNode(7)};
    CountedNode* p = dom.protect(reader, 0, src);
    EXPECT_EQ(p->payload, 7);
    dom.retire(owner, p);
    dom.scan(owner);
    EXPECT_EQ(CountedNode::live.load(), 1) << "freed under a hazard pointer";
    EXPECT_EQ(p->payload, 7);  // still dereferenceable
    dom.clear(reader, 0);
    dom.scan(owner);
    EXPECT_EQ(CountedNode::live.load(), 0);
    dom.release(owner);
    dom.release(reader);
  }
}

TEST(HazardPointers, ProtectFollowsConcurrentSwings) {
  // protect() must re-validate: the returned pointer always equals a value
  // the source held at or after the publication of the hazard.
  HazardPointerDomain<1> dom;
  auto* rec = dom.acquire();
  CountedNode a(1), b(2);
  std::atomic<CountedNode*> src{&a};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      src.store(&a, std::memory_order_release);
      src.store(&b, std::memory_order_release);
    }
  });
  for (int i = 0; i < 100000; ++i) {
    CountedNode* p = dom.protect(rec, 0, src);
    ASSERT_TRUE(p == &a || p == &b);
    ASSERT_TRUE(p->payload == 1 || p->payload == 2);
    dom.clear(rec, 0);
  }
  stop.store(true);
  flipper.join();
  dom.release(rec);
}

TEST(HazardPointers, DestructorFreesPendingRetirees) {
  CountedNode::live.store(0);
  {
    HazardPointerDomain<2> dom(/*scan_threshold_floor=*/1000000);
    auto* rec = dom.acquire();
    for (int i = 0; i < 100; ++i) dom.retire(rec, new CountedNode());
    EXPECT_EQ(CountedNode::live.load(), 100);  // giant floor: nothing freed
    dom.release(rec);
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

TEST(HazardPointers, TypeErasedDeleterIsUsed) {
  static int custom_deletes = 0;
  custom_deletes = 0;
  {
    HazardPointerDomain<1> dom(1);
    auto* rec = dom.acquire();
    auto* p = new int(5);
    dom.retire(rec, p, [](void* q) {
      ++custom_deletes;
      delete static_cast<int*>(q);
    });
    dom.release(rec);
  }
  EXPECT_EQ(custom_deletes, 1);
}

TEST(HazardPointers, StressNoUseAfterFree) {
  // Readers chase a swinging pointer under protection while a writer
  // retires the old target each swing. ASan (or a poisoned payload check)
  // catches violations.
  constexpr int kReaders = 4;
  constexpr int kSwings = 20000;
  HazardPointerDomain<1> dom;
  std::atomic<CountedNode*> src{new CountedNode(42)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto* rec = dom.acquire();
      while (!stop.load(std::memory_order_relaxed)) {
        CountedNode* p = dom.protect(rec, 0, src);
        ASSERT_EQ(p->payload, 42) << "read from a freed node";
        dom.clear(rec, 0);
      }
      dom.release(rec);
    });
  }
  {
    auto* rec = dom.acquire();
    for (int i = 0; i < kSwings; ++i) {
      auto* fresh = new CountedNode(42);
      CountedNode* old = src.exchange(fresh, std::memory_order_acq_rel);
      // Touch the retired node (legal: still protected or not yet freed);
      // a use-after-free here would trip ASan or the readers' assert.
      old->payload.store(42, std::memory_order_relaxed);
      dom.retire(rec, old);
    }
    stop.store(true);
    dom.release(rec);
  }
  for (auto& t : readers) t.join();
  delete src.load();
  // Domain destructor flushes the rest; live count then only the one we
  // just deleted plus retirees — validated implicitly by ASan runs.
}

}  // namespace
}  // namespace wfq
