// Sense-reversing centralized spin barrier for benchmark phases.
//
// std::barrier parks threads in the kernel; for throughput measurements we
// want every thread to leave the barrier within nanoseconds of the last
// arrival, so the benchmark interval contains queue operations only.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "common/align.hpp"
#include "common/atomics.hpp"

namespace wfq::bench {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until `parties` threads have arrived.
  void arrive_and_wait() noexcept {
    bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_->fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_->store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // release the rest
    } else {
      // Spin tightly for a release measured in nanoseconds when every
      // party has a CPU; fall back to yielding when oversubscribed so the
      // laggards can be scheduled at all.
      for (unsigned spins = 0;
           sense_.load(std::memory_order_acquire) != my_sense;) {
        if (++spins < 4096) {
          cpu_pause();
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  CacheAligned<std::atomic<std::size_t>> count_{0};
  alignas(kCacheLineSize) std::atomic<bool> sense_{false};
};

}  // namespace wfq::bench
