// NUMA topology probe and placement helpers. This host may well be UMA (a
// single node) — the tests assert the invariants that must hold on ANY
// machine, plus unit coverage of the cpulist parser and the synthetic
// topologies the multi-node code paths are exercised through.
#include <gtest/gtest.h>

#include <thread>

#include "scale/numa.hpp"

namespace wfq::scale {
namespace {

TEST(NumaTopology, ProbeYieldsAtLeastOneNodeCoveringCpu0) {
  const NumaTopology& t = NumaTopology::get();
  ASSERT_GE(t.num_nodes(), 1);
  bool cpu0_found = false;
  for (const NumaNode& n : t.nodes) {
    EXPECT_FALSE(n.cpus.empty());
    for (int c : n.cpus) {
      if (c == 0) cpu0_found = true;
    }
  }
  EXPECT_TRUE(cpu0_found);
  EXPECT_EQ(t.node_of_cpu(0), t.nodes.front().id);
}

TEST(NumaTopology, NodeOfUnknownCpuFallsBackToFirstNode) {
  const NumaTopology& t = NumaTopology::get();
  EXPECT_EQ(t.node_of_cpu(1 << 20), t.nodes.front().id);
}

TEST(NumaTopology, SingleNodeSpansHardwareThreads) {
  NumaTopology t = NumaTopology::single_node();
  ASSERT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.nodes[0].cpus.size(), std::size_t(hardware_threads()));
}

TEST(CpulistParser, RangesSinglesAndMixes) {
  using detail::parse_cpulist;
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist("0-1,4,8-9\n"), (std::vector<int>{0, 1, 4, 8, 9}));
  EXPECT_EQ(parse_cpulist("12-12"), (std::vector<int>{12}));
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("garbage").empty());
  // Degrades to the prefix parsed so far, never throws.
  EXPECT_EQ(parse_cpulist("2,x"), (std::vector<int>{2}));
}

TEST(NodeForLane, NoneAndSingleNodeNeverBind) {
  NumaTopology uma = NumaTopology::single_node();
  EXPECT_EQ(node_for_lane(uma, NumaMode::kNone, 0), -1);
  EXPECT_EQ(node_for_lane(uma, NumaMode::kInterleave, 3), -1);
}

TEST(NodeForLane, InterleavesOverSyntheticNodes) {
  NumaTopology t;
  t.nodes.push_back(NumaNode{0, {0, 1}});
  t.nodes.push_back(NumaNode{1, {2, 3}});
  EXPECT_EQ(node_for_lane(t, NumaMode::kInterleave, 0), 0);
  EXPECT_EQ(node_for_lane(t, NumaMode::kInterleave, 1), 1);
  EXPECT_EQ(node_for_lane(t, NumaMode::kInterleave, 2), 0);
  EXPECT_EQ(node_for_lane(t, NumaMode::kLocal, 3), 1);
  EXPECT_EQ(t.node_of_cpu(3), 1);
}

TEST(NumaBinder, BindsAndRestoresAffinity) {
  const NumaTopology& t = NumaTopology::get();
  std::thread worker([&] {
    {
      NumaBinder bind(t, t.nodes.front().id);
      // Binding may legitimately fail (restricted cpusets); what must hold
      // is that the thread still runs and the destructor restores state.
      (void)bind.bound();
    }
    // After restore: still schedulable.
    std::this_thread::yield();
  });
  worker.join();
}

TEST(NumaBinder, UnknownNodeIsANoOp) {
  const NumaTopology& t = NumaTopology::get();
  NumaBinder bind(t, /*node=*/4096);
  EXPECT_FALSE(bind.bound());
}

TEST(CurrentNode, ReturnsAProbedNode) {
  const NumaTopology& t = NumaTopology::get();
  const int node = current_node(t);
  bool known = false;
  for (const NumaNode& n : t.nodes) {
    if (n.id == node) known = true;
  }
  EXPECT_TRUE(known);
}

}  // namespace
}  // namespace wfq::scale
