// The paper's Listing 1: the obstruction-free FAA queue over an "infinite"
// array, realized here over a fixed-capacity array. This is the base
// algorithm the wait-free queue hardens; it is pedagogically useful, serves
// as a differential-testing oracle at small scales, and demonstrates the
// livelock the paper describes (an enqueuer and dequeuer can starve each
// other, which the wait-free construction eliminates).
//
// Capacity is consumed by *indices*, not live values: every enqueue and
// every dequeue burns at least one cell, so a bounded array can only absorb
// a bounded number of operations. enqueue() throws std::length_error once
// the index space is exhausted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/slot_codec.hpp"

namespace wfq {

template <class T>
class ObstructionQueue {
  using Codec = SlotCodec<T>;
  static constexpr uint64_t kBot = 0;
  static constexpr uint64_t kTop = ~uint64_t{0};

 public:
  using value_type = T;

  struct Handle {};  // Listing 1 has no per-thread state

  explicit ObstructionQueue(std::size_t capacity = 1 << 16)
      : capacity_(capacity),
        cells_(std::make_unique<std::atomic<uint64_t>[]>(capacity)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].store(kBot, std::memory_order_relaxed);
    }
  }

  ObstructionQueue(const ObstructionQueue&) = delete;
  ObstructionQueue& operator=(const ObstructionQueue&) = delete;

  ~ObstructionQueue() {
    if constexpr (Codec::kBoxed) {
      uint64_t h = head_->load(std::memory_order_relaxed);
      uint64_t t = tail_->load(std::memory_order_relaxed);
      for (uint64_t i = h; i < t && i < capacity_; ++i) {
        uint64_t v = cells_[i].load(std::memory_order_relaxed);
        if (v != kBot && v != kTop) Codec::destroy_slot(v);
      }
    }
  }

  Handle get_handle() { return Handle{}; }

  /// Listing 1 enqueue: FAA an index, CAS the value in; retry on a cell a
  /// dequeuer already marked unusable. Obstruction-free, not wait-free.
  void enqueue(Handle&, T v) {
    uint64_t slot = Codec::encode(std::move(v));
    for (;;) {
      uint64_t t = tail_->fetch_add(1, std::memory_order_seq_cst);
      if (t >= capacity_) {
        Codec::destroy_slot(slot);
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      uint64_t expected = kBot;
      if (cells_[t].compare_exchange_strong(expected, slot,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Listing 1 dequeue: FAA an index; mark the cell unusable; a failure to
  /// mark means a value is present. EMPTY when the head catches the tail.
  std::optional<T> dequeue(Handle&) {
    for (;;) {
      uint64_t h = head_->fetch_add(1, std::memory_order_seq_cst);
      if (h >= capacity_) {
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      uint64_t expected = kBot;
      if (!cells_[h].compare_exchange_strong(expected, kTop,
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed)) {
        // Cell already holds a value (CAS failed on non-⊥): take it.
        return Codec::decode(expected);
      }
      if (tail_->load(std::memory_order_seq_cst) <= h) {
        return std::nullopt;  // no enqueue has claimed index h: empty
      }
      // Otherwise an enqueue is in flight at or past h; try the next cell.
    }
  }

  uint64_t head_index() const {
    return head_->load(std::memory_order_acquire);
  }
  uint64_t tail_index() const {
    return tail_->load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  CacheAligned<std::atomic<uint64_t>> tail_{0};  // T
  CacheAligned<std::atomic<uint64_t>> head_{0};  // H
  std::size_t capacity_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

}  // namespace wfq
