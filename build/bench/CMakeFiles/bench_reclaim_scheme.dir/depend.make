# Empty dependencies file for bench_reclaim_scheme.
# This may be replaced when dependencies are built.
