// Compile-time conformance of every backend against the formal queue
// concepts (src/core/queue_concepts.hpp), plus runtime checks that the
// detected/declared QueueCaps match each backend's documented capability
// row (docs/API.md). A signature drift in any queue is a compile error
// here, not a template-spew failure deep inside a driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/faaq.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "core/obstruction_queue.hpp"
#include "core/queue_concepts.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"

namespace wfq {
namespace {

// ---- ConcurrentQueue: the floor every backend must clear ----------------

static_assert(ConcurrentQueue<WFQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::FAAQueue<uint64_t>>);
static_assert(ConcurrentQueue<ObstructionQueue<uint64_t>>);
static_assert(ConcurrentQueue<ScqQueue<uint64_t>>);
static_assert(ConcurrentQueue<WcqQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::MSQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::LCRQ<uint64_t, 64>>);
static_assert(ConcurrentQueue<baselines::CCQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::MutexQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::KPQueue<uint64_t>>);
static_assert(ConcurrentQueue<baselines::SimQueue<uint64_t>>);

// Traits variants must conform identically (the concept is over the whole
// template, so a traits-dependent signature drift shows up here).
struct LlscTraits : DefaultWfTraits {
  using Faa = EmulatedFaa;
};
static_assert(ConcurrentQueue<WFQueue<uint64_t, LlscTraits>>);

// Boxed payloads go through SlotCodec; concept conformance must not depend
// on T being 64-bit-inlineable.
static_assert(ConcurrentQueue<WFQueue<std::string>>);
static_assert(ConcurrentQueue<ScqQueue<std::vector<int>>>);
static_assert(ConcurrentQueue<WcqQueue<std::string>>);

// ---- BulkQueue: batched span ops ----------------------------------------

static_assert(BulkQueue<WFQueue<uint64_t>>);
static_assert(BulkQueue<baselines::FAAQueue<uint64_t>>);
static_assert(BulkQueue<ObstructionQueue<uint64_t>>);
// Ring backends and node baselines do not batch.
static_assert(!BulkQueue<ScqQueue<uint64_t>>);
static_assert(!BulkQueue<WcqQueue<uint64_t>>);
static_assert(!BulkQueue<baselines::MSQueue<uint64_t>>);
static_assert(!BulkQueue<baselines::MutexQueue<uint64_t>>);

// ---- BoundedQueue: the backpressure contract -----------------------------

static_assert(BoundedQueue<ScqQueue<uint64_t>>);
static_assert(BoundedQueue<WcqQueue<uint64_t>>);
// Segment/node queues grow without bound: they must NOT model the bounded
// contract, or BlockingQueue::push_wait would park on a queue that can
// never report full.
static_assert(!BoundedQueue<WFQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::FAAQueue<uint64_t>>);
static_assert(!BoundedQueue<ObstructionQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::MSQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::LCRQ<uint64_t, 64>>);
static_assert(!BoundedQueue<baselines::CCQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::MutexQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::KPQueue<uint64_t>>);
static_assert(!BoundedQueue<baselines::SimQueue<uint64_t>>);

// ---- ShardedQueue: the layer must model whatever its backend models -----

static_assert(ConcurrentQueue<ShardedQueue<WFQueue<uint64_t>>>);
static_assert(BulkQueue<ShardedQueue<WFQueue<uint64_t>>>);
static_assert(!BoundedQueue<ShardedQueue<WFQueue<uint64_t>>>);
static_assert(ConcurrentQueue<ShardedQueue<ScqQueue<uint64_t>>>);
static_assert(BoundedQueue<ShardedQueue<ScqQueue<uint64_t>>>);
static_assert(!BulkQueue<ShardedQueue<ScqQueue<uint64_t>>>);
static_assert(ConcurrentQueue<ShardedQueue<WcqQueue<uint64_t>>>);
static_assert(ConcurrentQueue<ShardedQueue<baselines::FAAQueue<uint64_t>>>);

// ---- QueueCaps: detected + declared capability rows ----------------------

TEST(QueueConcepts, WfQueueCaps) {
  constexpr QueueCaps c = kQueueCaps<WFQueue<uint64_t>>;
  EXPECT_TRUE(c.is_wait_free);
  EXPECT_FALSE(c.is_bounded);
  EXPECT_TRUE(c.has_bulk);
  EXPECT_TRUE(c.has_stats);
}

TEST(QueueConcepts, ScqCaps) {
  constexpr QueueCaps c = kQueueCaps<ScqQueue<uint64_t>>;
  // SCQ's dequeue-side threshold handoff is lock-free, not wait-free: the
  // type must not claim the stronger guarantee.
  EXPECT_FALSE(c.is_wait_free);
  EXPECT_TRUE(c.is_bounded);
  EXPECT_FALSE(c.has_bulk);
  EXPECT_TRUE(c.has_stats);
}

TEST(QueueConcepts, WcqCaps) {
  constexpr QueueCaps c = kQueueCaps<WcqQueue<uint64_t>>;
  // wCQ declares wait-freedom iff the FAA primitive is native (the LL/SC
  // emulation degrades the install loop to lock-free).
  EXPECT_EQ(c.is_wait_free, NativeFaa::kWaitFree);
  EXPECT_TRUE(c.is_bounded);
  EXPECT_FALSE(c.has_bulk);
  EXPECT_TRUE(c.has_stats);
}

TEST(QueueConcepts, ShardedCaps) {
  // The defining bit: relaxed_order is declared by the sharded layer and
  // by NOTHING else in the library (every strict-FIFO backend below).
  constexpr QueueCaps wf = kQueueCaps<ShardedQueue<WFQueue<uint64_t>>>;
  EXPECT_TRUE(wf.relaxed_order);
  EXPECT_TRUE(wf.is_wait_free);  // inherited: N wait-free lanes, bounded sweep
  EXPECT_FALSE(wf.is_bounded);
  EXPECT_TRUE(wf.has_bulk);
  EXPECT_TRUE(wf.has_stats);

  // Over a lock-free bounded ring the layer must NOT claim wait-freedom
  // (inheritance, not a blanket declaration), but stays relaxed-order.
  constexpr QueueCaps scq = kQueueCaps<ShardedQueue<ScqQueue<uint64_t>>>;
  EXPECT_TRUE(scq.relaxed_order);
  EXPECT_FALSE(scq.is_wait_free);
  EXPECT_TRUE(scq.is_bounded);
}

TEST(QueueConcepts, StrictFifoBackendsDoNotDeclareRelaxedOrder) {
  EXPECT_FALSE(kQueueCaps<WFQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<ScqQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<WcqQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<ObstructionQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<baselines::FAAQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<baselines::MSQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE((kQueueCaps<baselines::LCRQ<uint64_t, 64>>.relaxed_order));
  EXPECT_FALSE(kQueueCaps<baselines::CCQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<baselines::MutexQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<baselines::KPQueue<uint64_t>>.relaxed_order);
  EXPECT_FALSE(kQueueCaps<baselines::SimQueue<uint64_t>>.relaxed_order);
}

TEST(QueueConcepts, BaselineCaps) {
  EXPECT_FALSE(kQueueCaps<baselines::MSQueue<uint64_t>>.is_wait_free);
  EXPECT_FALSE(kQueueCaps<baselines::MutexQueue<uint64_t>>.is_wait_free);
  EXPECT_TRUE(kQueueCaps<baselines::KPQueue<uint64_t>>.is_wait_free);
  EXPECT_TRUE(kQueueCaps<baselines::SimQueue<uint64_t>>.is_wait_free);
  EXPECT_TRUE(kQueueCaps<baselines::FAAQueue<uint64_t>>.has_bulk);
  EXPECT_FALSE((kQueueCaps<baselines::LCRQ<uint64_t, 64>>.is_bounded));
}

// ---- Bounded semantics smoke: capacity() and kFull are live ---------------

TEST(QueueConcepts, ScqBoundedContract) {
  ScqQueue<uint64_t> q(8);
  auto h = q.get_handle();
  EXPECT_EQ(q.capacity(), 8u);
  for (uint64_t i = 0; i < q.capacity(); ++i) {
    EXPECT_EQ(q.try_enqueue(h, i + 1), EnqueueResult::kOk);
  }
  EXPECT_EQ(q.try_enqueue(h, 99), EnqueueResult::kFull);
  auto v = q.dequeue(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  // One slot freed: the next try must succeed again.
  EXPECT_EQ(q.try_enqueue(h, 100), EnqueueResult::kOk);
}

TEST(QueueConcepts, WcqBoundedContract) {
  WcqQueue<uint64_t> q(8);
  auto h = q.get_handle();
  EXPECT_EQ(q.capacity(), 8u);
  for (uint64_t i = 0; i < q.capacity(); ++i) {
    EXPECT_EQ(q.try_enqueue(h, i + 1), EnqueueResult::kOk);
  }
  EXPECT_EQ(q.try_enqueue(h, 99), EnqueueResult::kFull);
  auto v = q.dequeue(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_EQ(q.try_enqueue(h, 100), EnqueueResult::kOk);
}

// try_enqueue on a full boxed ring must leave the caller's value intact
// (the reserve-before-encode contract push_wait retries depend on).
TEST(QueueConcepts, TryEnqueueKeepsValueOnFull) {
  ScqQueue<std::vector<int>> q(2);
  auto h = q.get_handle();
  ASSERT_EQ(q.try_enqueue(h, std::vector<int>(4, 1)), EnqueueResult::kOk);
  ASSERT_EQ(q.try_enqueue(h, std::vector<int>(4, 2)), EnqueueResult::kOk);
  std::vector<int> v(64, 7);
  ASSERT_EQ(q.try_enqueue(h, std::move(v)), EnqueueResult::kFull);
  EXPECT_EQ(v.size(), 64u);  // untouched: still ours to retry with
  EXPECT_EQ(v[0], 7);
  (void)q.dequeue(h);
  ASSERT_EQ(q.try_enqueue(h, std::move(v)), EnqueueResult::kOk);
  EXPECT_TRUE(v.empty());  // now consumed
}

}  // namespace
}  // namespace wfq
