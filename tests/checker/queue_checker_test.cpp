// Tests for the FIFO-queue linearizability checker: it must accept legal
// histories (including subtle concurrent ones) and reject each bad pattern
// of Henzinger-Sezgin-Vafeiadis with a pointed diagnostic.
#include "checker/queue_checker.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wfq::lin {
namespace {

// Shorthand builders. Timestamps are explicit to model precise overlap.
Op enq(uint64_t v, uint64_t t0, uint64_t t1, unsigned thread = 0) {
  return Op{OpKind::kEnqueue, thread, v, t0, t1};
}
Op deq(uint64_t v, uint64_t t0, uint64_t t1, unsigned thread = 0) {
  return Op{OpKind::kDequeue, thread, v, t0, t1};
}
Op deq_empty(uint64_t t0, uint64_t t1, unsigned thread = 0) {
  return Op{OpKind::kDequeueEmpty, thread, 0, t0, t1};
}

TEST(QueueChecker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_queue_history({}));
}

TEST(QueueChecker, SequentialFifoAccepted) {
  std::vector<Op> h{
      enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5), deq(2, 6, 7),
      deq_empty(8, 9),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, OverlappingEnqueuesMayDequeueEitherOrder) {
  // enq(1) and enq(2) overlap: dequeuing 2 before 1 is legal.
  std::vector<Op> h{
      enq(1, 0, 10), enq(2, 1, 9), deq(2, 20, 21), deq(1, 22, 23),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, OverlappingDequeuesMayCommuteWithFifo) {
  // enq(1) < enq(2) strictly, but the two dequeues overlap, so either may
  // linearize first.
  std::vector<Op> h{
      enq(1, 0, 1), enq(2, 2, 3), deq(2, 10, 20), deq(1, 11, 19),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, EmptyLegalWhenQueueCouldBeEmpty) {
  // The EMPTY overlaps the dequeue of the only value: legal (order the
  // dequeue first).
  std::vector<Op> h{
      enq(1, 0, 1), deq(1, 2, 10), deq_empty(3, 9),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, EmptyLegalWhenEnqueueOverlaps) {
  // enq(1) overlaps the EMPTY: the EMPTY may linearize first.
  std::vector<Op> h{
      enq(1, 0, 10), deq_empty(1, 9), deq(1, 20, 21),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, ValueLeftInQueueIsFine) {
  std::vector<Op> h{enq(1, 0, 1), enq(2, 2, 3), deq(1, 4, 5)};
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

// ---- bad patterns -------------------------------------------------------

TEST(QueueChecker, RejectsP1ValueFromNowhere) {
  std::vector<Op> h{deq(99, 0, 1)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P1"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP2DoubleDequeue) {
  std::vector<Op> h{enq(1, 0, 1), deq(1, 2, 3), deq(1, 4, 5)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P2"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP0DequeueBeforeEnqueueStarts) {
  std::vector<Op> h{deq(1, 0, 1), enq(1, 2, 3)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P0"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP3FifoOrderViolation) {
  // enq(1) strictly before enq(2); dequeues strictly reversed.
  std::vector<Op> h{
      enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5), deq(1, 6, 7),
  };
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P3"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP3LaterValueDequeuedEarlierNeverRemoved) {
  // 2 dequeued although 1, enqueued strictly first, never was.
  std::vector<Op> h{enq(1, 0, 1), enq(2, 2, 3), deq(2, 4, 5)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P3"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP4ForcedThroughConstraintChain) {
  // Regression for the incompleteness our cross-validation fuzzer found in
  // the naive pairwise EMPTY check: no single value pairwise-blocks the
  // EMPTY, but enq(3) <H deq(1) and enq(1) <H d force 3 into the queue
  // before d could ever see it empty (3 is never dequeued).
  std::vector<Op> h{
      enq(1, 3, 7),  enq(2, 7, 14), enq(3, 2, 9),
      deq_empty(9, 14), deq(1, 10, 12), deq(2, 11, 13),
  };
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P4"), std::string::npos) << r.violation;
}

TEST(QueueChecker, AcceptsEmptyWithGapInCertainPresence) {
  // Value 1's certain presence ends (deq(1) may linearize early) before
  // value 2's begins: the EMPTY can slide into the gap.
  std::vector<Op> h{
      enq(1, 0, 1),  deq(1, 2, 20), enq(2, 10, 18),
      deq_empty(4, 16), deq(2, 21, 22),
  };
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

TEST(QueueChecker, RejectsP4EmptyWhileProvablyNonEmpty) {
  // Value 1 sits in the queue across the whole EMPTY interval.
  std::vector<Op> h{
      enq(1, 0, 1), deq_empty(2, 3), deq(1, 4, 5),
  };
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P4"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsP4EmptyWithValueNeverRemoved) {
  std::vector<Op> h{enq(1, 0, 1), deq_empty(2, 3)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("P4"), std::string::npos) << r.violation;
}

TEST(QueueChecker, RejectsDuplicateEnqueueAsPrecondition) {
  std::vector<Op> h{enq(1, 0, 1), enq(1, 2, 3)};
  auto r = check_queue_history(h);
  ASSERT_FALSE(r);
  EXPECT_NE(r.violation.find("precondition"), std::string::npos);
}

TEST(QueueChecker, LargeLegalHistoryFast) {
  // A pipelined SPSC-like history: enqueue i at [2i, 2i+1], dequeue i at
  // [2i+1000000, ...]. O(n^2) checker must still be quick at n = 2000.
  std::vector<Op> h;
  constexpr uint64_t kN = 1000;
  for (uint64_t i = 0; i < kN; ++i) {
    h.push_back(enq(i + 1, 2 * i, 2 * i + 1));
  }
  for (uint64_t i = 0; i < kN; ++i) {
    h.push_back(deq(i + 1, 1000000 + 2 * i, 1000000 + 2 * i + 1));
  }
  auto r = check_queue_history(h);
  EXPECT_TRUE(r) << r.violation;
}

}  // namespace
}  // namespace wfq::lin
