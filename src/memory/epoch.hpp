// Epoch-based reclamation (EBR) — the classic scheme of Fraser/Harris that
// the paper's custom §3.6 design descends from ("it is essentially an epoch
// based reclamation originally proposed by Harris").
//
// Provided as a second reclamation substrate so the paper's overhead claim
// ("on x86, our scheme adds no memory fence along common execution paths,
// unprecedented among memory reclamation schemes") can be measured against
// the textbook alternative: EBR pays one seq_cst critical-section entry per
// operation; hazard pointers (memory/hazard_pointers.hpp) pay one seq_cst
// store per protected pointer; the queue's custom scheme pays nothing extra
// on the fast path.
//
// Protocol: a global epoch e advances only when every thread inside a
// critical section has observed e. Retired nodes are banked in the epoch's
// limbo list and freed two epoch advances later, when no reader can still
// hold a reference. Readers: enter() → access shared nodes → exit().
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/align.hpp"
#include "common/atomics.hpp"

namespace wfq {

class EpochDomain {
  static constexpr int kLimboGenerations = 3;

 public:
  /// local_epoch value of a thread outside any critical section. Public:
  /// callers inspect `rec->local_epoch` to tell pinned threads apart.
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  /// Per-thread epoch record. Grow-only list, `active` recycling — same
  /// registry pattern as the hazard-pointer domain.
  struct alignas(kCacheLineSize) ThreadRec {
    /// Epoch the thread entered at, or kIdle when outside a critical
    /// section.
    std::atomic<uint64_t> local_epoch{kIdle};
    std::atomic<bool> active{true};
    ThreadRec* next = nullptr;
    /// Limbo lists by epoch generation (epoch % kLimboGenerations).
    std::array<std::vector<Retired>, kLimboGenerations> limbo;
    uint64_t retire_count_since_scan = 0;
  };

  explicit EpochDomain(uint64_t advance_threshold = 64)
      : advance_threshold_(advance_threshold) {}

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  ~EpochDomain() {
    ThreadRec* r = head_.load(std::memory_order_acquire);
    while (r != nullptr) {
      for (auto& gen : r->limbo) {
        for (auto& rt : gen) rt.deleter(rt.ptr);
      }
      ThreadRec* next = r->next;
      delete r;
      r = next;
    }
  }

  ThreadRec* acquire() {
    for (ThreadRec* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      bool expected = false;
      if (!r->active.load(std::memory_order_relaxed) &&
          r->active.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        return r;
      }
    }
    auto* r = new ThreadRec();
    ThreadRec* old = head_.load(std::memory_order_relaxed);
    do {
      r->next = old;
    } while (!head_.compare_exchange_weak(old, r, std::memory_order_release,
                                          std::memory_order_relaxed));
    return r;
  }

  void release(ThreadRec* r) {
    assert(r->local_epoch.load(std::memory_order_relaxed) == kIdle &&
           "release inside a critical section");
    r->active.store(false, std::memory_order_release);
  }

  /// Enter a critical section: publish the observed global epoch. The
  /// seq_cst store is the per-operation cost the paper's custom scheme
  /// avoids.
  void enter(ThreadRec* r) {
    uint64_t e = global_epoch_->load(std::memory_order_acquire);
    r->local_epoch.store(e, std::memory_order_seq_cst);
    // Re-read: if the epoch advanced between load and publish we could be
    // pinned to a stale epoch; one refresh suffices (the epoch cannot
    // advance twice past a published pin).
    uint64_t e2 = global_epoch_->load(std::memory_order_seq_cst);
    if (e2 != e) r->local_epoch.store(e2, std::memory_order_seq_cst);
  }

  void exit(ThreadRec* r) {
    r->local_epoch.store(kIdle, std::memory_order_release);
  }

  /// Retire a node from inside a critical section.
  template <class T>
  void retire(ThreadRec* r, T* p) {
    retire(r, p, [](void* q) { delete static_cast<T*>(q); });
  }

  void retire(ThreadRec* r, void* p, void (*deleter)(void*)) {
    uint64_t e = global_epoch_->load(std::memory_order_acquire);
    r->limbo[e % kLimboGenerations].push_back(Retired{p, deleter});
    if (++r->retire_count_since_scan >= advance_threshold_) {
      r->retire_count_since_scan = 0;
      try_advance(r);
    }
  }

  /// Attempt to advance the epoch; on success, frees this thread's limbo
  /// generation that is now two epochs old.
  void try_advance(ThreadRec* r) {
    uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
    for (ThreadRec* t = head_.load(std::memory_order_acquire); t != nullptr;
         t = t->next) {
      uint64_t le = t->local_epoch.load(std::memory_order_seq_cst);
      if (le != kIdle && le != e) return;  // a straggler pins the epoch
    }
    if (global_epoch_->compare_exchange_strong(e, e + 1,
                                               std::memory_order_seq_cst)) {
      flush(r, e + 1);
    } else {
      flush(r, global_epoch_->load(std::memory_order_acquire));
    }
  }

  uint64_t epoch() const {
    return global_epoch_->load(std::memory_order_acquire);
  }

  std::size_t limbo_count() const {
    std::size_t n = 0;
    for (ThreadRec* t = head_.load(std::memory_order_acquire); t != nullptr;
         t = t->next) {
      for (const auto& gen : t->limbo) n += gen.size();
    }
    return n;
  }

 private:
  /// Free the generation that became unreachable when `now` was installed:
  /// nodes retired in epoch `now - 2` or earlier. With three generations,
  /// the slot `(now + 1) % 3` holds exactly those.
  void flush(ThreadRec* r, uint64_t now) {
    auto& gen = r->limbo[(now + 1) % kLimboGenerations];
    for (auto& rt : gen) rt.deleter(rt.ptr);
    gen.clear();
  }

  CacheAligned<std::atomic<uint64_t>> global_epoch_{0};
  std::atomic<ThreadRec*> head_{nullptr};
  uint64_t advance_threshold_;
};

/// RAII critical-section guard.
class EpochGuard {
 public:
  EpochGuard(EpochDomain& d, EpochDomain::ThreadRec* r) : d_(&d), r_(r) {
    d_->enter(r_);
  }
  ~EpochGuard() { d_->exit(r_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain* d_;
  EpochDomain::ThreadRec* r_;
};

}  // namespace wfq
