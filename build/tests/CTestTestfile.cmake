# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_wfqueue[1]_include.cmake")
include("/root/repo/build/tests/test_wfqueue_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
