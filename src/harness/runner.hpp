// Queue-generic benchmark runner implementing the paper's two workloads
// (§5.1 "Benchmark"):
//
//   * enqueue-dequeue pairs: each iteration is an enqueue followed by a
//     dequeue; N pairs split evenly among the threads;
//   * p%-enqueues: each iteration flips a coin and enqueues with
//     probability p (the paper uses 50%), N operations split evenly.
//
// Threads are pinned compactly, start/stop on spin barriers, and perform
// calibrated 50–100 ns random work between operations whose time is
// excluded from the reported throughput, all as in §5.1.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "common/random.hpp"
#include "harness/barrier.hpp"
#include "harness/delay.hpp"

namespace wfq::bench {

enum class WorkloadKind {
  kPairs,       ///< enqueue-dequeue pairs
  kPercentEnq,  ///< coin-flip mix (percent_enqueue : 100-percent_enqueue)
};

struct RunConfig {
  WorkloadKind kind = WorkloadKind::kPairs;
  unsigned threads = 1;
  /// Total operations across all threads. For kPairs this counts *pairs*
  /// (the paper executes 10^7 pairs); for kPercentEnq, single operations.
  uint64_t total_ops = 1'000'000;
  unsigned percent_enqueue = 50;
  bool use_delay = true;  ///< the paper's 50–100 ns random work
  bool pin = true;
  uint64_t seed = 0x5eed;
};

struct RunResult {
  double elapsed_seconds = 0.0;   ///< wall time of the measured phase
  double delay_seconds = 0.0;     ///< estimated per-thread delay time (max)
  uint64_t operations = 0;        ///< queue operations performed
  uint64_t dequeue_hits = 0;      ///< dequeues that returned a value
  uint64_t dequeue_empties = 0;   ///< dequeues that returned EMPTY

  /// Delay-excluded throughput (the paper's reporting convention, §5.1).
  /// Only meaningful when queue operations account for a sizable share of
  /// the elapsed time, i.e. under real hardware contention; when the
  /// calibrated delay estimate swallows nearly all of the interval the
  /// subtraction is numerically unstable, so it is floored at 10% of the
  /// elapsed time. Figure benches on small hosts report mops_raw instead
  /// and say so (see EXPERIMENTS.md).
  double mops_adjusted() const {
    double t = elapsed_seconds - delay_seconds;
    if (t <= elapsed_seconds * 0.10) t = elapsed_seconds * 0.10;
    return double(operations) / t / 1e6;
  }
  /// Raw wall-clock throughput (delay included).
  double mops_raw() const {
    return elapsed_seconds > 0 ? double(operations) / elapsed_seconds / 1e6
                               : 0.0;
  }
};

/// Runs one benchmark iteration on a fresh-or-reused queue instance.
/// `Queue` must model the library's ConcurrentQueue concept with a
/// uint64_t-compatible value type.
template <class Queue>
RunResult run_workload(Queue& q, const RunConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  const unsigned n = cfg.threads;
  const uint64_t per_thread =
      (cfg.total_ops + n - 1) / n;  // paper: partitioned evenly
  SpinBarrier start(n), stop(n);
  std::vector<uint64_t> delay_iters(n, 0);
  std::vector<uint64_t> hits(n, 0), empties(n, 0), ops(n, 0);
  // Each worker timestamps its own start and end: a coordinator-side timer
  // is wrong on oversubscribed hosts, where the coordinator can be
  // descheduled across the whole measured phase.
  std::vector<Clock::time_point> t_begin(n), t_end(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers.emplace_back([&, t] {
      if (cfg.pin) (void)pin_to_cpu(t);
      auto h = q.get_handle();
      WorkDelay delay = WorkDelay::paper_default(cfg.seed * 1315423911u + t);
      Xorshift128Plus coin(cfg.seed + 7919 * t);
      uint64_t my_delay = 0, my_hits = 0, my_empty = 0, my_ops = 0;

      start.arrive_and_wait();
      t_begin[t] = Clock::now();
      if (cfg.kind == WorkloadKind::kPairs) {
        for (uint64_t i = 0; i < per_thread; ++i) {
          q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
          if (cfg.use_delay) my_delay += delay.spin();
          auto v = q.dequeue(h);
          if (v.has_value()) {
            ++my_hits;
          } else {
            ++my_empty;
          }
          if (cfg.use_delay) my_delay += delay.spin();
          my_ops += 2;
        }
      } else {
        for (uint64_t i = 0; i < per_thread; ++i) {
          if (coin.percent_chance(cfg.percent_enqueue)) {
            q.enqueue(h, (uint64_t(t) << 40) | (i + 1));
          } else {
            auto v = q.dequeue(h);
            if (v.has_value()) {
              ++my_hits;
            } else {
              ++my_empty;
            }
          }
          if (cfg.use_delay) my_delay += delay.spin();
          ++my_ops;
        }
      }
      t_end[t] = Clock::now();
      stop.arrive_and_wait();
      delay_iters[t] = my_delay;
      hits[t] = my_hits;
      empties[t] = my_empty;
      ops[t] = my_ops;
    });
  }
  for (auto& w : workers) w.join();

  Clock::time_point first = t_begin[0], last = t_end[0];
  for (unsigned t = 1; t < n; ++t) {
    if (t_begin[t] < first) first = t_begin[t];
    if (t_end[t] > last) last = t_end[t];
  }
  RunResult r;
  r.elapsed_seconds = std::chrono::duration<double>(last - first).count();
  uint64_t max_delay = 0;
  for (unsigned t = 0; t < n; ++t) {
    r.operations += ops[t];
    r.dequeue_hits += hits[t];
    r.dequeue_empties += empties[t];
    if (delay_iters[t] > max_delay) max_delay = delay_iters[t];
  }
  // Threads run concurrently, so the wall-clock contribution of the delay
  // is governed by the slowest thread's accumulated spin — except on
  // oversubscribed hosts, where delay work competes for the same CPUs and
  // the aggregate burn is spread over hardware threads.
  double serial_factor =
      double(n) / double(std::min<unsigned>(n, hardware_threads()));
  r.delay_seconds = WorkDelay::iters_to_seconds(max_delay) * serial_factor;
  if (r.delay_seconds > r.elapsed_seconds) r.delay_seconds = r.elapsed_seconds;
  return r;
}

}  // namespace wfq::bench
