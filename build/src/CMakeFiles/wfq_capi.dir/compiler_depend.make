# Empty compiler generated dependencies file for wfq_capi.
# This may be replaced when dependencies are built.
