// Tests for the ASCII chart renderer.
#include "harness/chart.hpp"

#include <gtest/gtest.h>

namespace wfq::bench {
namespace {

TEST(Chart, RendersGlyphsAndLegend) {
  std::vector<ChartSeries> s{{"alpha", {1, 2, 3}}, {"beta", {3, 2, 1}}};
  std::string out = render_ascii_chart({"1", "2", "4"}, s, 8, "Mops/s");
  EXPECT_NE(out.find("*=alpha"), std::string::npos);
  EXPECT_NE(out.find("o=beta"), std::string::npos);
  EXPECT_NE(out.find("Mops/s"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Chart, MaxValueSitsOnTopRow) {
  std::vector<ChartSeries> s{{"a", {0.0, 10.0}}};
  std::string out = render_ascii_chart({"x0", "x1"}, s, 6);
  // First rendered row contains the glyph for the max point.
  auto first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find('*'), std::string::npos);
}

TEST(Chart, HandlesEmptyAndZeroSeries) {
  std::string out = render_ascii_chart({"1"}, {{"z", {0.0}}}, 4);
  EXPECT_FALSE(out.empty());
  std::string out2 = render_ascii_chart({}, {}, 4);
  EXPECT_FALSE(out2.empty());
}

TEST(Chart, AllRowsHaveYAxis) {
  std::vector<ChartSeries> s{{"a", {5, 7}}};
  std::string out = render_ascii_chart({"1", "2"}, s, 5);
  std::istringstream in(out);
  std::string line;
  int axis_rows = 0;
  while (std::getline(in, line)) {
    if (line.find('|') != std::string::npos) ++axis_rows;
  }
  EXPECT_EQ(axis_rows, 5);
}

}  // namespace
}  // namespace wfq::bench
