file(REMOVE_RECURSE
  "CMakeFiles/bench_waitfreedom.dir/bench_waitfreedom.cpp.o"
  "CMakeFiles/bench_waitfreedom.dir/bench_waitfreedom.cpp.o.d"
  "bench_waitfreedom"
  "bench_waitfreedom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_waitfreedom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
