// Batched enqueue/dequeue throughput: how far one contended FAA stretches
// when it is amortized over k cells (enqueue_bulk / dequeue_bulk).
//
// Workload: "bulk pairs" — each thread repeatedly performs enqueue_bulk(k)
// followed by dequeue_bulk(k); k = 1 exercises the ordinary single-op path
// (the bulk entry points delegate) and is the baseline column. Batch size
// sweeps k in {1,2,4,8,16,32} x thread count, for the wait-free queue, the
// F&A microbenchmark bound, and the Listing-1 obstruction-free queue.
//
// Reported Mops/s counts *elements* (2 * k per bulk pair), so columns are
// directly comparable across k. Unlike the Figure-2 binaries this bench
// defaults to no think time between operations (WFQ_NO_DELAY=1 semantics):
// the paper's 50-100 ns delay would swamp the per-op FAA saving under
// measurement; set WFQ_NO_DELAY=0 to force the delay back on.
//
// A per-element latency pass (p50/p99 of bulk-call time / k) accompanies
// every point; `--json <file>` emits {bench, config, threads, mops, p50_ns,
// p99_ns} records (see docs/BENCHMARKING.md).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/obstruction_queue.hpp"
#include "harness/barrier.hpp"
#include "harness/latency.hpp"

namespace wfq::bench {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 2, 4, 8, 16, 32};

/// One iteration of the bulk-pairs workload: every thread moves
/// `elems_per_thread` values through the queue in k-sized batches.
/// Returns raw element throughput in Mops/s.
template <class Queue>
double run_bulk_pairs(Queue& q, unsigned threads, uint64_t elems_per_thread,
                      std::size_t k, bool use_delay, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads), stop(threads);
  std::vector<Clock::time_point> t_begin(threads), t_end(threads);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      WorkDelay delay = WorkDelay::paper_default(seed * 1315423911u + t);
      std::vector<uint64_t> vals(k), out(k);
      const uint64_t batches = (elems_per_thread + k - 1) / k;
      uint64_t seq = 0;
      start.arrive_and_wait();
      t_begin[t] = Clock::now();
      for (uint64_t b = 0; b < batches; ++b) {
        for (std::size_t j = 0; j < k; ++j) {
          vals[j] = (uint64_t(t) << 40) | ++seq;
        }
        q.enqueue_bulk(h, vals.data(), k);
        if (use_delay) delay.spin();
        (void)q.dequeue_bulk(h, out.data(), k);
        if (use_delay) delay.spin();
      }
      t_end[t] = Clock::now();
      stop.arrive_and_wait();
    });
  }
  for (auto& w : workers) w.join();

  Clock::time_point first = t_begin[0], last = t_end[0];
  for (unsigned t = 1; t < threads; ++t) {
    if (t_begin[t] < first) first = t_begin[t];
    if (t_end[t] > last) last = t_end[t];
  }
  const double secs = std::chrono::duration<double>(last - first).count();
  const uint64_t elems = uint64_t(threads) * ((elems_per_thread + k - 1) / k) * k;
  return secs > 0 ? double(2 * elems) / secs / 1e6 : 0.0;
}

/// Per-element latency of bulk calls: each bulk op is timed and its
/// duration divided by k, pooling enqueue and dequeue samples.
template <class Queue>
LatencyResult bulk_latency(Queue& q, unsigned threads,
                           uint64_t elems_per_thread, std::size_t k) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads);
  std::vector<std::vector<uint64_t>> samples(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      std::vector<uint64_t> vals(k), out(k);
      const uint64_t batches = (elems_per_thread + k - 1) / k;
      auto& mine = samples[t];
      mine.reserve(2 * batches);
      uint64_t seq = 0;
      start.arrive_and_wait();
      for (uint64_t b = 0; b < batches; ++b) {
        for (std::size_t j = 0; j < k; ++j) {
          vals[j] = (uint64_t(t) << 40) | ++seq;
        }
        auto t0 = Clock::now();
        q.enqueue_bulk(h, vals.data(), k);
        auto t1 = Clock::now();
        (void)q.dequeue_bulk(h, out.data(), k);
        auto t2 = Clock::now();
        mine.push_back(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0)
                         .count()) /
            k);
        mine.push_back(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t2 - t1)
                         .count()) /
            k);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return summarize_latencies(std::move(all));
}

struct SweepPoint {
  unsigned threads;
  std::size_t k;
  double mops;
  LatencyResult lat;
};

/// Sweep one queue family across threads x batch sizes; prints the table,
/// emits JSON records, and returns the points for the speedup summary.
template <class MakeQueue>
std::vector<SweepPoint> sweep_family(const std::string& family,
                                     MakeQueue make_queue,
                                     const std::vector<unsigned>& threads,
                                     uint64_t total_elems, bool use_delay,
                                     const MethodologyConfig& mcfg,
                                     unsigned hw) {
  std::vector<std::string> headers{"threads"};
  for (std::size_t k : kBatchSizes) {
    headers.push_back((k == 1 ? std::string("single") :
                                "k=" + std::to_string(k)) + " (Mops/s)");
  }
  Table table(headers);
  std::vector<SweepPoint> points;

  for (unsigned t : threads) {
    const uint64_t per_thread = std::max<uint64_t>(1, total_elems / t);
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    for (std::size_t k : kBatchSizes) {
      auto ci = measure(mcfg, [&] {
        auto q = make_queue(t);
        return std::function<double()>([q, t, per_thread, k, use_delay] {
          return run_bulk_pairs(*q, t, per_thread, k, use_delay,
                                0x5eed + k);
        });
      });
      auto lq = make_queue(t);
      LatencyResult lat = bulk_latency(
          *lq, t, std::max<uint64_t>(std::size_t(64) * k, per_thread / 4), k);
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      const std::string config =
          family + (k == 1 ? " single" : " bulk k=" + std::to_string(k));
      json_sink().record("bulk_pairs", config, t, ci.mean, double(lat.p50),
                         double(lat.p99), double(lat.p999));
      std::cerr << "  [bulk_pairs] " << config << " threads=" << t << ": "
                << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s  p50="
                << lat.p50 << "ns p99=" << lat.p99 << "ns\n";
      points.push_back({t, k, ci.mean, lat});
    }
    table.add_row(std::move(row));
  }
  std::cout << "-- " << family << " --\n";
  table.print();
  std::cout << "\n";
  return points;
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  using namespace wfq::bench;
  bench_main_init(argc, argv);
  // Batching microbenchmark: think time off unless explicitly requested
  // (see header comment).
  ::setenv("WFQ_NO_DELAY", "1", /*overwrite=*/0);

  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  const uint64_t elems = ops_from_env();
  const bool use_delay = delay_enabled_from_env();
  const unsigned hw = wfq::hardware_threads();

  std::cout << "== Batched operations: one FAA amortized over k cells ==\n";
  std::cout << format_platform_table(detect_platform());
  std::cout << "elements/iteration=" << elems
            << "  invocations=" << mcfg.invocations
            << "  delay=" << (use_delay ? "50-100ns" : "off")
            << "  (Mops/s counts elements; k=1 = single-op API)\n"
            << "(^ marks thread counts above the " << hw
            << " hardware thread(s) of this host)\n\n";

  wfq::WfConfig wf10;
  wf10.patience = 10;
  auto wf_points = sweep_family(
      "WF-10",
      [wf10](unsigned) {
        return std::make_shared<wfq::WFQueue<uint64_t>>(wf10);
      },
      threads, elems, use_delay, mcfg, hw);
  sweep_family(
      "F&A-bound",
      [](unsigned) {
        return std::make_shared<wfq::baselines::FAAQueue<uint64_t>>();
      },
      threads, elems, use_delay, mcfg, hw);
  sweep_family(
      "OBSTRUCTION",
      [](unsigned) {
        return std::make_shared<wfq::ObstructionQueue<uint64_t>>();
      },
      threads, elems, use_delay, mcfg, hw);

  // The headline number: k=8 bulk vs single-op WF throughput at the
  // highest measured thread count.
  const unsigned t_max = threads.back();
  double single = 0, k8 = 0;
  for (const auto& p : wf_points) {
    if (p.threads != t_max) continue;
    if (p.k == 1) single = p.mops;
    if (p.k == 8) k8 = p.mops;
  }
  if (single > 0) {
    std::cout << "WF-10 @ " << t_max << " threads: bulk k=8 = " << k8
              << " Mops/s vs single = " << single << " Mops/s  ("
              << Table::fmt(k8 / single, 2) << "x)\n";
  }
  return 0;
}
