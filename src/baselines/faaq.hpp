// The FAA microbenchmark of §5: "simulates enqueue and dequeue operations
// with FAA primitives on two shared variables: one for enqueues and the
// other for dequeues. This simple microbenchmark provides a practical upper
// bound for the throughput of all queue implementations based on FAA."
//
// It is NOT a queue — no values are transferred — but it models the same
// contended-counter traffic pattern, so it conforms to the ConcurrentQueue
// concept (dequeue fabricates a value iff an enqueue ticket is available)
// purely so the harness can drive it uniformly.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/align.hpp"
#include "common/atomics.hpp"

namespace wfq::baselines {

template <class T, class Faa = NativeFaa>
class FAAQueue {
 public:
  using value_type = T;

  struct Handle {};  // no per-thread state

  FAAQueue() = default;
  FAAQueue(const FAAQueue&) = delete;
  FAAQueue& operator=(const FAAQueue&) = delete;

  Handle get_handle() { return Handle{}; }

  /// One FAA on the enqueue hot spot; the value is dropped.
  void enqueue(Handle&, T) {
    Faa::fetch_add(*enq_ticket_, uint64_t{1}, std::memory_order_seq_cst);
  }

  /// One FAA on the dequeue hot spot; fabricates T{} while tickets remain.
  std::optional<T> dequeue(Handle&) {
    uint64_t d =
        Faa::fetch_add(*deq_ticket_, uint64_t{1}, std::memory_order_seq_cst);
    if (d < enq_ticket_->load(std::memory_order_relaxed)) return T{};
    return std::nullopt;
  }

  uint64_t enqueues() const {
    return enq_ticket_->load(std::memory_order_relaxed);
  }
  uint64_t dequeues() const {
    return deq_ticket_->load(std::memory_order_relaxed);
  }

 private:
  CacheAligned<std::atomic<uint64_t>> enq_ticket_{0};
  CacheAligned<std::atomic<uint64_t>> deq_ticket_{0};
};

}  // namespace wfq::baselines
