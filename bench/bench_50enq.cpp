// Figure 2, 50%-enqueues series (right column of the figure): each thread
// flips a fair coin per iteration and enqueues or dequeues accordingly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  wfq::bench::run_figure("Figure 2: 50%-enqueues",
                         wfq::bench::WorkloadKind::kPercentEnq,
                         /*percent_enqueue=*/50);
  return 0;
}
