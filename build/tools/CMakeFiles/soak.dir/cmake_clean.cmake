file(REMOVE_RECURSE
  "CMakeFiles/soak.dir/soak.cpp.o"
  "CMakeFiles/soak.dir/soak.cpp.o.d"
  "soak"
  "soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
