// Tests for the EventCount (src/sync/event_count.hpp): waiter-registration
// bookkeeping, wake delivery, timed waits, and — the property the whole
// design rests on — the Dekker no-lost-wakeup guarantee under a
// deposit/park race.
#include "sync/event_count.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using wfq::sync::WaitClock;

template <class F>
class EventCountTest : public ::testing::Test {
 protected:
  wfq::sync::BasicEventCount<F> ec;
};

#if defined(__linux__)
using FutexImpls =
    ::testing::Types<wfq::sync::LinuxFutex, wfq::sync::PortableFutex>;
#else
using FutexImpls = ::testing::Types<wfq::sync::PortableFutex>;
#endif
TYPED_TEST_SUITE(EventCountTest, FutexImpls);

TYPED_TEST(EventCountTest, NoWaitersInitially) {
  EXPECT_FALSE(this->ec.has_waiters());
  EXPECT_EQ(this->ec.waiters(), 0u);
}

TYPED_TEST(EventCountTest, PrepareRegistersCancelDeregisters) {
  (void)this->ec.prepare_wait();
  EXPECT_TRUE(this->ec.has_waiters());
  EXPECT_EQ(this->ec.waiters(), 1u);
  this->ec.cancel_wait();
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, StaleKeyDoesNotSleep) {
  auto key = this->ec.prepare_wait();
  this->ec.notify_all();     // bumps the epoch: key is now stale
  this->ec.wait(key);        // must return immediately, not park forever
  EXPECT_FALSE(this->ec.has_waiters());  // wait() deregistered
}

TYPED_TEST(EventCountTest, TimedWaitTimesOutAndDeregisters) {
  auto key = this->ec.prepare_wait();
  EXPECT_FALSE(this->ec.wait_until(
      key, WaitClock::now() + std::chrono::milliseconds(10)));
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, NotifyWakesParkedWaiter) {
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    for (;;) {
      auto key = this->ec.prepare_wait();
      if (flag.load(std::memory_order_seq_cst)) {
        this->ec.cancel_wait();
        return;
      }
      this->ec.wait(key);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_seq_cst);
  if (this->ec.has_waiters()) this->ec.notify(1);
  waiter.join();
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, NotifyAllWakesEveryWaiter) {
  constexpr unsigned kWaiters = 4;
  std::atomic<bool> flag{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&] {
      for (;;) {
        auto key = this->ec.prepare_wait();
        if (flag.load(std::memory_order_seq_cst)) {
          this->ec.cancel_wait();
          return;
        }
        this->ec.wait(key);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_seq_cst);
  this->ec.notify_all();
  for (auto& t : ts) t.join();
  EXPECT_EQ(this->ec.waiters(), 0u);
}

// The Dekker guarantee: a producer that deposits and then sees no waiter
// may skip notify entirely, yet no consumer that registered can sleep
// through the deposit. One flag per round plays the "queue item"; the
// consumer uses the prepare/re-check/wait protocol, the producer uses
// deposit/check/conditional-notify — exactly BlockingQueue's structure.
TYPED_TEST(EventCountTest, DekkerNeverLosesAWakeup) {
  constexpr int kRounds = 20000;
  std::atomic<int> round{0};   // producer bumps: consumer must see each bump
  std::atomic<uint64_t> skipped_notifies{0};
  std::thread consumer([&] {
    int seen = 0;
    while (seen < kRounds) {
      if (round.load(std::memory_order_seq_cst) > seen) {
        ++seen;
        continue;
      }
      auto key = this->ec.prepare_wait();
      if (round.load(std::memory_order_seq_cst) > seen) {
        this->ec.cancel_wait();  // re-check found the deposit: no park
        continue;
      }
      this->ec.wait(key);  // if the wakeup were lost, we hang right here
    }
  });
  for (int r = 1; r <= kRounds; ++r) {
    round.store(r, std::memory_order_seq_cst);  // "deposit"
    if (this->ec.has_waiters()) {
      this->ec.notify(1);
    } else {
      skipped_notifies.fetch_add(1, std::memory_order_relaxed);
    }
  }
  consumer.join();
  // The assertion is the join itself: a lost wakeup parks the consumer
  // forever and the test times out. skipped_notifies measures how often
  // the producer's fast path actually skipped — usually most rounds, but
  // on a loaded machine the consumer can legitimately be registered every
  // single round, so it is reported rather than asserted (the
  // deterministic zero-notify assertion lives in the BlockingQueue suite,
  // where try_pop provably never registers).
  this->RecordProperty("skipped_notifies",
                       std::to_string(skipped_notifies.load()));
}

}  // namespace
