// Tests of the segment list (the paper's emulated infinite array, Listing 2
// find_cell) and its growth/reclamation bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

struct Seg4Traits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 4;
};
struct Seg64Traits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 64;
};

TEST(WfQueueSegment, OneSegmentInitially) {
  WFQueue<int, Seg4Traits> q;
  EXPECT_EQ(q.live_segments(), 1u);
}

TEST(WfQueueSegment, GrowsByOneSegmentPerNCells) {
  WFQueue<int, Seg4Traits> q;
  auto h = q.get_handle();
  for (int i = 0; i < 4; ++i) q.enqueue(h, i);
  EXPECT_EQ(q.live_segments(), 1u);  // cells 0..3 fit in segment 0
  q.enqueue(h, 4);                   // cell 4 -> segment 1
  EXPECT_EQ(q.live_segments(), 2u);
  for (int i = 5; i < 12; ++i) q.enqueue(h, i);
  EXPECT_EQ(q.live_segments(), 3u);
}

TEST(WfQueueSegment, EmptyDequeuesAlsoConsumeCells) {
  // A dequeue on an empty queue marks a cell unusable, consuming index
  // space; the segment list must grow accordingly.
  WFQueue<int, Seg4Traits> q;
  auto h = q.get_handle();
  for (int i = 0; i < 9; ++i) EXPECT_EQ(q.dequeue(h), std::nullopt);
  EXPECT_GE(q.live_segments(), 2u);
  EXPECT_GE(q.head_index(), 9u);
}

TEST(WfQueueSegment, ValuesSurviveSegmentTransitions) {
  WFQueue<uint64_t, Seg64Traits> q;
  auto h = q.get_handle();
  constexpr uint64_t kCount = 64 * 37 + 13;
  for (uint64_t i = 1; i <= kCount; ++i) q.enqueue(h, i);
  for (uint64_t i = 1; i <= kCount; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST(WfQueueSegment, SegmentsAllocatedMatchesIndexSpace) {
  WFQueue<int, Seg4Traits> q;
  auto h = q.get_handle();
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) q.enqueue(h, i);
  // Cells 0..kCount-1 span exactly ceil(kCount/4) segments; a single
  // thread loses no extension races, so nothing extra is allocated.
  EXPECT_EQ(q.live_segments(), (kCount + 3) / 4);
}

TEST(WfQueueSegment, ConcurrentGrowthHasNoGapsOrDuplicates) {
  // Many threads racing to extend the list must produce one segment per id
  // with a contiguous id sequence.
  using Q = WFQueue<uint64_t, Seg4Traits>;
  Q q;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&q, t] {
      auto h = q.get_handle();
      for (int i = 0; i < kPerThread; ++i) {
        q.enqueue(h, uint64_t(t) * kPerThread + i + 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  // Walk the list: ids must increase by exactly one.
  auto& core = q.core();
  std::size_t n = core.live_segments();
  EXPECT_GE(n, uint64_t{kThreads} * kPerThread / 4);
  // Drain and verify the value multiset.
  auto h = q.get_handle();
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  std::size_t count = 0;
  for (;;) {
    auto v = q.dequeue(h);
    if (!v.has_value()) break;
    ASSERT_LE(*v, seen.size() - 1);
    ASSERT_FALSE(seen[*v]) << "duplicate value " << *v;
    seen[*v] = true;
    ++count;
  }
  EXPECT_EQ(count, std::size_t{kThreads} * kPerThread);
}

TEST(WfQueueSegment, OutstandingCountsBalanceWhileAlive) {
  WFQueue<int, Seg4Traits> q;
  auto h = q.get_handle();
  for (int i = 0; i < 100; ++i) q.enqueue(h, i);
  for (int i = 0; i < 100; ++i) (void)q.dequeue(h);
  // live list + per-handle spares account for every outstanding segment.
  EXPECT_GE(q.segments_outstanding(), int64_t(q.live_segments()));
}

}  // namespace
}  // namespace wfq
