// Ablation E: reclamation-scheme overhead, the measurable counterpart of
// §3.6 "Overhead": "on x86 systems, our memory reclamation scheme adds
// almost no overhead to the fast-path execution, which is unprecedented
// among memory reclamation schemes for lock-free data structures."
//
// Head-to-head per-operation costs on the pairs workload:
//   * WFQueue, custom scheme (no fast-path fence)
//   * WFQueue, reclamation disabled (the no-cost reference point)
//   * MS-Queue with hazard pointers (one seq_cst publication per protected
//     pointer — what the paper added to LCRQ/MS-Queue)
//   * MS-Queue with epoch-based reclamation (one pin per operation)
#include <iostream>

#include "bench_common.hpp"
#include "memory/reclaimer.hpp"

namespace wfq::bench {
namespace {

struct NoPoolTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentPoolCap = 0;
};

}  // namespace
}  // namespace wfq::bench

int main() {
  using namespace wfq;
  using namespace wfq::bench;
  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();

  WfConfig wf_on;
  wf_on.patience = 10;
  WfConfig wf_off = wf_on;
  wf_off.max_garbage = int64_t{1} << 60;  // reclamation never triggers

  std::vector<Contender> contenders;
  contenders.push_back(make_wf_contender<DefaultWfTraits>("WF custom", wf_on));
  contenders.push_back(
      make_wf_contender<NoPoolTraits>("WF no-pool", wf_on));
  contenders.push_back(
      make_wf_contender<DefaultWfTraits>("WF no-reclaim", wf_off));
  contenders.push_back(
      make_contender<baselines::MSQueue<uint64_t, HpReclaimer>>("MSQ+HP"));
  contenders.push_back(
      make_contender<baselines::MSQueue<uint64_t, EbrReclaimer>>("MSQ+EBR"));

  std::cout << "== Ablation E: reclamation-scheme overhead (pairs) ==\n"
               "WF custom vs no-reclaim isolates the paper's scheme's cost "
               "(§3.6 claims ~zero);\nMSQ+HP vs MSQ+EBR compares the "
               "classic alternatives on an identical structure.\n\n";
  std::vector<std::string> headers{"threads"};
  for (auto& c : contenders) headers.push_back(c.name + " Mops/s");
  Table table(headers);
  for (unsigned t : threads) {
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPairs;
    cfg.threads = t;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;
    std::vector<std::string> row{std::to_string(t) + (t > hw ? "^" : "")};
    for (auto& c : contenders) {
      auto ci = measure(mcfg, [&] { return c.make_invocation(cfg); });
      row.push_back(Table::fmt_ci(ci.mean, ci.half_width));
      std::cerr << "  [reclaim-scheme] threads=" << t << " " << c.name
                << ": " << Table::fmt_ci(ci.mean, ci.half_width) << "\n";
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
