// The random "work" between queue operations (§5.1): each thread performs
// 50–100 ns of local computation between operations to break "long run"
// scenarios, where one thread holds the queue's hot cache lines and
// completes many operations without interruption, over-optimistically
// biasing throughput.
//
// The delay is a calibrated arithmetic spin; its duration is excluded from
// reported throughput (the runner subtracts the calibrated estimate).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/random.hpp"

namespace wfq::bench {

/// A calibrated spin-delay generator. Calibration measures the cost of one
/// spin iteration once per process; per-thread instances then burn a
/// uniformly random duration in [min_ns, max_ns].
class WorkDelay {
 public:
  WorkDelay(uint64_t min_ns, uint64_t max_ns, uint64_t seed)
      : min_iters_(ns_to_iters(min_ns)),
        max_iters_(ns_to_iters(max_ns)),
        rng_(seed) {}

  /// The paper's configuration: uniform 50–100 ns.
  static WorkDelay paper_default(uint64_t seed) {
    return WorkDelay(50, 100, seed);
  }

  /// Burn one random delay; returns the number of iterations spun (the
  /// caller accumulates them to subtract the delay from the measurement).
  uint64_t spin() noexcept {
    uint64_t iters = rng_.next_in(min_iters_, max_iters_);
    burn(iters);
    return iters;
  }

  /// Convert an accumulated iteration count back to seconds.
  static double iters_to_seconds(uint64_t iters) {
    return double(iters) * ns_per_iter() * 1e-9;
  }

  /// Nanoseconds per spin iteration, measured once (process-wide).
  static double ns_per_iter() {
    static const double v = calibrate();
    return v;
  }

 private:
  static void burn(uint64_t iters) noexcept {
    // Data-dependent integer chain the optimizer cannot collapse.
    volatile uint64_t sink = 0;
    uint64_t x = sink + 0x9E3779B97F4A7C15ull;
    for (uint64_t i = 0; i < iters; ++i) {
      x ^= x >> 13;
      x *= 0xFF51AFD7ED558CCDull;
    }
    sink = x;
  }

  static double calibrate() {
    using Clock = std::chrono::steady_clock;
    constexpr uint64_t kIters = 1 << 22;
    // Warm up, then measure.
    burn(kIters / 4);
    auto t0 = Clock::now();
    burn(kIters);
    auto t1 = Clock::now();
    double ns =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count());
    double per = ns / double(kIters);
    return per > 0 ? per : 0.5;  // defend against broken clocks
  }

  static uint64_t ns_to_iters(uint64_t ns) {
    double it = double(ns) / ns_per_iter();
    return it < 1 ? 1 : uint64_t(it);
  }

  uint64_t min_iters_;
  uint64_t max_iters_;
  Xorshift128Plus rng_;
};

}  // namespace wfq::bench
