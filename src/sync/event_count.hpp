// EventCount: Dekker-style waiter registration that lets producers skip the
// notify path entirely — with zero additional fences on x86 — whenever no
// consumer is parked.
//
// The problem it solves is the standard one for any blocking layer over a
// non-blocking queue: a consumer that observes EMPTY and goes to sleep must
// not miss a value enqueued concurrently. The classic solution (condition
// variable) taxes *every* enqueue with a lock or at least a fence. The
// EventCount splits the handshake:
//
//   consumer (rare, about to park)         producer (hot path)
//   --------------------------------       ------------------------------
//   waiters.fetch_add(1, seq_cst)  (W)     enqueue(v)              (E)
//   key = epoch.load(seq_cst)              if (waiters.load(seq_cst) == 0)
//   re-check queue: dequeue()      (D)         return;          // fast path
//   if EMPTY: futex_wait(epoch, key)       epoch.fetch_add(1); futex_wake()
//
// Why the producer's check is free on x86: a seq_cst *load* compiles to a
// plain MOV — the expensive half of seq_cst lands on stores and RMWs. The
// ordering the Dekker needs (E's deposit visible before the waiters load)
// is provided by the seq_cst FAA/CAS the wait-free enqueue already executes
// at its linearization point, exactly the way Listing 5's hazard-pointer
// publication is ordered by the fast path's FAA instead of an explicit
// MFENCE (§3.6; docs/ALGORITHM.md §10 gives the full proof sketch). So an
// enqueue with no waiters registered executes ZERO instructions it would
// not execute unwrapped — no fence, no RMW, one predictable-taken branch.
//
// Lost-wakeup argument (all four ops seq_cst, so they embed in the single
// total order S): if the producer's load misses the consumer's increment,
// then load <S W <S D, and the load follows E in program order, so
// E <S D — the consumer's re-check dequeue linearizes after the enqueue
// and cannot return EMPTY while the value is still in the queue. Either
// the re-check finds a value (no park) or some other consumer already took
// it (no wakeup owed). The epoch word closes the remaining window between
// the re-check and the futex syscall: notify bumps it, and the kernel
// (or parking lot) re-checks it atomically against the waiter's key.
//
// On non-TSO ISAs the producer-side argument additionally needs the
// enqueue's trailing RMW to be a *fence*, which seq_cst RMWs are not
// obliged to be portably; BlockingQueue inserts one explicit
// thread_fence(seq_cst) before the check on those targets (never on x86).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "sync/futex.hpp"

namespace wfq::sync {

/// `FutexT` is LinuxFutex or PortableFutex (see futex.hpp); the default is
/// the platform's best. Waiters and notifiers must agree on the instance.
template <class FutexT = Futex>
class BasicEventCount {
 public:
  /// Epoch snapshot handed from prepare_wait() to wait().
  using Key = uint32_t;

  /// The producer-side check. Seq_cst load = plain MOV on x86 (see file
  /// header for why that suffices); call it after the publishing operation
  /// (the enqueue), never before.
  bool has_waiters() const noexcept {
    return waiters_.load(std::memory_order_seq_cst) != 0;
  }

  /// Registers the caller as a waiter and snapshots the epoch. After this
  /// the caller MUST re-check its predicate and then call exactly one of
  /// cancel_wait() / wait() / wait_until().
  Key prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);  // full fence on x86
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Deregisters without sleeping (the re-check found the predicate true).
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Sleeps until an epoch bump (or spuriously); deregisters on return.
  /// The caller re-checks its predicate in a loop.
  void wait(Key key) noexcept {
    FutexT::wait(epoch_, key);
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Timed wait; returns false iff the deadline passed without a wake.
  /// Deregisters on return either way.
  bool wait_until(Key key, WaitClock::time_point deadline) noexcept {
    bool woken = FutexT::wait_until(epoch_, key, deadline);
    waiters_.fetch_sub(1, std::memory_order_release);
    return woken;
  }

  /// Wakes up to `n` registered waiters. Callers normally guard with
  /// has_waiters(); notify itself is unconditional (close() wants that).
  void notify(uint32_t n) noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    FutexT::wake(epoch_, n);
  }

  void notify_all() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    FutexT::wake_all(epoch_);
  }

  /// Approximate registered-waiter count (tests/monitoring).
  uint32_t waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  // One line for both words: only parking/waking traffic touches them, and
  // a producer's read of waiters_ would drag epoch_'s line along anyway.
  // The alignas keeps unrelated neighbours (e.g. the queue's indices) off.
  alignas(kCacheLineSize) std::atomic<uint32_t> epoch_{0};  ///< futex word
  std::atomic<uint32_t> waiters_{0};
  // Epoch wrap (2^32 notifies between a snapshot and its wait) is ignored,
  // as in every futex-based event count: the window is a handful of
  // instructions and a wrap merely costs one spurious sleep-and-recheck.
};

using EventCount = BasicEventCount<>;

}  // namespace wfq::sync
