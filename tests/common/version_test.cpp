// Version / feature macros sanity.
#include "wfq_version.hpp"

#include <gtest/gtest.h>

namespace wfq {
namespace {

TEST(Version, MacrosAndFunctionAgree) {
  constexpr Version v = version();
  EXPECT_EQ(v.major, WFQ_VERSION_MAJOR);
  EXPECT_EQ(v.minor, WFQ_VERSION_MINOR);
  EXPECT_EQ(v.patch, WFQ_VERSION_PATCH);
  std::string s = WFQ_VERSION_STRING;
  EXPECT_EQ(s, std::to_string(v.major) + "." + std::to_string(v.minor) + "." +
                   std::to_string(v.patch));
}

TEST(Version, Cas2DetectionMatchesAtomics) {
#if defined(WFQ_HAVE_CX16)
  EXPECT_TRUE(has_native_cas2());
#else
  EXPECT_FALSE(has_native_cas2());
#endif
}

}  // namespace
}  // namespace wfq
