// Fixed-size typed event ring for slow-path tracing.
//
// Each metrics-enabled handle owns one ring; the segment layer shares one
// process-global ring (allocation events have no handle). Emitting is a
// relaxed fetch_add on the write cursor plus six relaxed stores — slow-path
// only, never on a fast path. The ring keeps an exact per-type emitted
// total alongside the (wrappable) event storage, so counter/event agreement
// can be checked exactly even if the ring overflowed: `totals` never lies,
// `dropped` says how many records were overwritten.
//
// Deliberately string-free: event names (the "obs:" strings the NullMetrics
// zero-footprint grep hunts for) live only in trace_export.hpp, which only
// exporter binaries include-and-use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace wfq::obs {

/// Typed slow-path events. Keep in sync with kTraceEventNames in
/// trace_export.hpp (a static_assert there counts both).
enum class TraceEvent : uint32_t {
  kEnqSlow = 0,   ///< enqueue fell off the fast path; a = seed cell id
  kDeqSlow,       ///< dequeue fell off the fast path; a = seed cell id
  kHelpGiven,     ///< reserved a cell for / helped a peer; a = peer obs id,
                  ///< b = cell id (enq) or request id (deq)
  kHelpReceived,  ///< own slow-path request was claimed by a helper;
                  ///< b = cell id it was claimed for
  kCleanup,       ///< reclamation pass freed segments; a = segments freed
  kPark,          ///< consumer futex sleep (blocking layer)
  kWake,          ///< consumer woke from a park
  kAllocFail,     ///< segment allocation failed cleanly; a = segment id
  kReserveHit,    ///< allocation served by the OOM reserve; a = segment id
  kOomRescue,     ///< deposit retracted from a debt-parked cell; a = cell id
  kAdopt,         ///< orphaned handle adopted; a = victim obs id
  kPatienceRaise, ///< adaptive controller doubled patience; a = new value
  kPatienceDrop,  ///< adaptive controller halved patience; a = new value
  kWakeSpurious,  ///< park ended with no notify and no timeout; a = 1/2 side
  kCount_         ///< number of event types (not an event)
};

inline constexpr std::size_t kTraceEventCount =
    std::size_t(TraceEvent::kCount_);

/// One trace record. `seq` is the global emission order (the write cursor
/// value), which doubles as the tie-breaker when exporting by timestamp.
struct TraceRec {
  uint64_t ts_ns;
  uint64_t seq;
  uint64_t a;
  uint64_t b;
  uint32_t type;
  uint32_t tid;  ///< emitting handle's obs id (0 for the global ring)
};

template <std::size_t Cap>
class TraceRing {
  static_assert(Cap > 0 && (Cap & (Cap - 1)) == 0,
                "ring capacity must be a power of two");

 public:
  static constexpr std::size_t kCapacity = Cap;

  /// Append one event. Multi-writer safe (adoption emits into the victim's
  /// ring from the adopter's thread): the cursor fetch_add assigns each
  /// writer a distinct seq, and slot fields are relaxed atomics, so two
  /// writers whose seqs collide on one slot mod Cap (wrap-around) at worst
  /// interleave fields — the retained record is then a mix of two real
  /// events, which is within the ring's contract (records are best-effort,
  /// totals are exact). No store here can ever be a data race.
  void emit(TraceEvent t, uint64_t ts_ns, uint64_t tid, uint64_t a = 0,
            uint64_t b = 0) noexcept {
    totals_[std::size_t(t)].fetch_add(1, std::memory_order_relaxed);
    const uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = recs_[seq & (Cap - 1)];
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.seq.store(seq, std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.type.store(uint32_t(t), std::memory_order_relaxed);
    s.tid.store(uint32_t(tid), std::memory_order_relaxed);
  }

  /// Events ever emitted (including overwritten ones).
  uint64_t emitted() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Events whose records were overwritten by ring wrap-around.
  uint64_t dropped() const noexcept {
    const uint64_t n = emitted();
    return n > Cap ? n - Cap : 0;
  }

  /// Records currently retained.
  std::size_t size() const noexcept {
    const uint64_t n = emitted();
    return n < Cap ? std::size_t(n) : Cap;
  }

  /// Exact per-type emission total (never subject to wrap-around).
  uint64_t total(TraceEvent t) const noexcept {
    return totals_[std::size_t(t)].load(std::memory_order_relaxed);
  }

  /// Visit retained records in emission order (oldest first). Safe against
  /// concurrent emitters (relaxed loads); a record raced by a wrapping
  /// writer may read torn (fields from two real events) — quiesce writers
  /// first (join workers before snapshotting, the contract OpStats
  /// collection documents) for fully coherent records.
  template <class F>
  void for_each(F&& f) const {
    const uint64_t n = emitted();
    const uint64_t first = n > Cap ? n - Cap : 0;
    for (uint64_t s = first; s < n; ++s) {
      const Slot& slot = recs_[s & (Cap - 1)];
      TraceRec r;
      r.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      r.seq = slot.seq.load(std::memory_order_relaxed);
      r.a = slot.a.load(std::memory_order_relaxed);
      r.b = slot.b.load(std::memory_order_relaxed);
      r.type = slot.type.load(std::memory_order_relaxed);
      r.tid = slot.tid.load(std::memory_order_relaxed);
      f(r);
    }
  }

  void reset() noexcept {
    cursor_.store(0, std::memory_order_relaxed);
    for (auto& t : totals_) t.store(0, std::memory_order_relaxed);
  }

 private:
  /// Atomic mirror of TraceRec: slots are racily rewritten on wrap.
  struct Slot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint32_t> type{0};
    std::atomic<uint32_t> tid{0};
  };

  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> totals_[kTraceEventCount] = {};
  Slot recs_[Cap] = {};
};

}  // namespace wfq::obs
