// Hazard-pointer memory reclamation (Michael, 2004).
//
// The paper's evaluation treats reclamation as an integral responsibility of
// each queue (§5.1 "Implementation"): it added hazard pointers to LCRQ and
// MS-Queue, which previously leaked. This is that substrate: a type-erased
// domain managing per-thread hazard slots and retirement lists.
//
// Protocol: a reader publishes the pointer it is about to dereference in one
// of its hazard slots and re-validates the source; a reclaimer moves nodes
// to a retirement list and only frees those matched by no published hazard.
// Readers pay one seq_cst store per protected load (the fence the paper's
// custom scheme for the wait-free queue avoids on x86).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "common/align.hpp"
#include "common/atomics.hpp"

namespace wfq {

/// One reclamation domain. `kSlots` is the number of hazard pointers each
/// thread may hold simultaneously (MS-Queue needs 2, LCRQ needs 1).
template <int kSlots>
class HazardPointerDomain {
 public:
  /// A retired node awaiting reclamation, with its type-erased deleter.
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  /// Per-thread record: hazard slots + retirement list. Records are linked
  /// into a grow-only list and recycled via an `active` flag, so acquire is
  /// lock-free and scan can always traverse every record.
  struct alignas(kCacheLineSize) ThreadRec {
    std::atomic<void*> hazards[kSlots] = {};
    std::atomic<bool> active{true};
    ThreadRec* next = nullptr;  // immutable after publication
    std::vector<Retired> retired;
  };

  /// `scan_threshold_floor`: minimum retired-list length before a scan; the
  /// effective threshold is max(floor, 2 * live hazard slots), the classic
  /// amortization that keeps per-retire cost O(1).
  explicit HazardPointerDomain(std::size_t scan_threshold_floor = 64)
      : scan_floor_(scan_threshold_floor) {}

  HazardPointerDomain(const HazardPointerDomain&) = delete;
  HazardPointerDomain& operator=(const HazardPointerDomain&) = delete;

  ~HazardPointerDomain() {
    // No concurrent users by contract; free everything still retired, then
    // the records themselves.
    ThreadRec* r = head_.load(std::memory_order_acquire);
    while (r != nullptr) {
      for (auto& rt : r->retired) rt.deleter(rt.ptr);
      ThreadRec* next = r->next;
      delete r;
      r = next;
    }
  }

  /// Obtain a thread record (reusing an inactive one if possible).
  ThreadRec* acquire() {
    for (ThreadRec* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      bool expected = false;
      if (!r->active.load(std::memory_order_relaxed) &&
          r->active.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        return r;
      }
    }
    auto* r = new ThreadRec();
    nrecs_.fetch_add(1, std::memory_order_relaxed);
    ThreadRec* old = head_.load(std::memory_order_relaxed);
    do {
      r->next = old;
    } while (!head_.compare_exchange_weak(old, r, std::memory_order_release,
                                          std::memory_order_relaxed));
    return r;
  }

  /// Release a record. Its hazard slots are cleared; its retired nodes stay
  /// queued and are reclaimed by a later scan (or the destructor).
  void release(ThreadRec* r) {
    for (auto& h : r->hazards) h.store(nullptr, std::memory_order_release);
    r->active.store(false, std::memory_order_release);
  }

  /// Protect: repeatedly publish the current value of `src` in hazard slot
  /// `slot` until the publication provably precedes any reclamation check
  /// (the read re-validates). Returns the protected pointer.
  template <class T>
  T* protect(ThreadRec* r, int slot, const std::atomic<T*>& src) {
    assert(slot >= 0 && slot < kSlots);
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      r->hazards[slot].store(p, std::memory_order_seq_cst);
      T* q = src.load(std::memory_order_seq_cst);
      if (q == p) return p;
      p = q;
    }
  }

  /// Publish an already-loaded pointer (caller must re-validate itself).
  void set_hazard(ThreadRec* r, int slot, void* p) {
    r->hazards[slot].store(p, std::memory_order_seq_cst);
  }

  void clear(ThreadRec* r, int slot) {
    r->hazards[slot].store(nullptr, std::memory_order_release);
  }

  /// Retire a node; it is freed by a later scan once no hazard covers it.
  template <class T>
  void retire(ThreadRec* r, T* p) {
    retire(r, p, [](void* q) { delete static_cast<T*>(q); });
  }

  void retire(ThreadRec* r, void* p, void (*deleter)(void*)) {
    r->retired.push_back(Retired{p, deleter});
    std::size_t threshold =
        std::max(scan_floor_, 2 * kSlots *
                                  nrecs_.load(std::memory_order_relaxed));
    if (r->retired.size() >= threshold) scan(r);
  }

  /// Reclaim every retired node not covered by a published hazard.
  void scan(ThreadRec* r) {
    std::vector<void*> hazards;
    hazards.reserve(kSlots * nrecs_.load(std::memory_order_relaxed));
    for (ThreadRec* t = head_.load(std::memory_order_acquire); t != nullptr;
         t = t->next) {
      for (const auto& h : t->hazards) {
        void* p = h.load(std::memory_order_seq_cst);
        if (p != nullptr) hazards.push_back(p);
      }
    }
    std::sort(hazards.begin(), hazards.end());
    auto covered = [&](void* p) {
      return std::binary_search(hazards.begin(), hazards.end(), p);
    };
    std::vector<Retired> keep;
    keep.reserve(r->retired.size());
    for (const auto& rt : r->retired) {
      if (covered(rt.ptr)) {
        keep.push_back(rt);
      } else {
        rt.deleter(rt.ptr);
      }
    }
    r->retired.swap(keep);
  }

  /// Iterate every currently-published hazard value (seq_cst loads).
  /// Reclaimer-side helper for callers that layer their own frontier logic
  /// over the domain's hazard registry (memory/segment_reclaim.hpp) instead
  /// of using the per-node retire/scan machinery.
  template <class F>
  void for_each_hazard(F&& f) const {
    for (ThreadRec* t = head_.load(std::memory_order_acquire); t != nullptr;
         t = t->next) {
      for (const auto& h : t->hazards) {
        void* p = h.load(std::memory_order_seq_cst);
        if (p != nullptr) f(p);
      }
    }
  }

  /// Sum of retirement-list lengths (test/diagnostic; racy but monotone in
  /// quiescence).
  std::size_t retired_count() const {
    std::size_t n = 0;
    for (ThreadRec* t = head_.load(std::memory_order_acquire); t != nullptr;
         t = t->next) {
      n += t->retired.size();
    }
    return n;
  }

  std::size_t thread_records() const {
    return nrecs_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<ThreadRec*> head_{nullptr};
  std::atomic<std::size_t> nrecs_{0};
  std::size_t scan_floor_;
};

}  // namespace wfq
