// Bounded-exhaustive schedule exploration for the wait-free queue (a
// miniature CHESS): real threads run a small scenario, but a cooperative
// token serializes them, and every `Traits::interleave_hint()` call becomes
// a SCHEDULING DECISION — which thread runs the next block. A driver
// enumerates decision sequences depth-first (replaying recorded prefixes),
// so a tiny scenario (2-3 threads, a few ops) is exercised under EVERY
// hint-granular interleaving instead of whatever the OS happens to produce.
//
// Scope and honesty: the explored atomicity unit is the code between two
// interleave_hint points, not individual instructions, so this complements
// (not replaces) the randomized perturbation and real-parallel suites. The
// hints sit at the algorithm's known-sensitive points (post-FAA stalls,
// the Dijkstra window, helper loops, cleaner election), which is where the
// interesting interleavings live.
//
// Only usable with structures that never block waiting for another thread
// (true for the wait-free queue; a combining queue would deadlock under a
// serializing scheduler).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfq::test {

class CoopScheduler {
 public:
  /// Active scheduler for the current exploration (single exploration at a
  /// time; the hint hook is a static traits function with no context).
  static CoopScheduler*& current() {
    static CoopScheduler* s = nullptr;
    return s;
  }

  /// Called from Traits::interleave_hint via CoopTraits below.
  static void hint() {
    CoopScheduler* s = current();
    if (s != nullptr) s->yield_point();
  }

  /// Runs `bodies` (one per virtual thread) under the schedule encoded by
  /// `decisions`: at the k-th yield point, decisions[k] selects which
  /// runnable thread continues (modulo the runnable count). Appends the
  /// number of runnable threads at each consumed decision to
  /// `branch_widths` so the driver can enumerate alternatives. Decisions
  /// beyond the provided vector default to 0 ("stay on current thread if
  /// runnable, else first runnable").
  void run(std::vector<std::function<void()>> bodies,
           const std::vector<uint8_t>& decisions,
           std::vector<uint8_t>* branch_widths) {
    decisions_ = &decisions;
    widths_ = branch_widths;
    decision_idx_ = 0;
    n_ = unsigned(bodies.size());
    done_.assign(n_, false);
    in_yield_.assign(n_, false);
    running_ = 0;

    current() = this;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < n_; ++t) {
      threads.emplace_back([this, t, body = std::move(bodies[t])] {
        wait_for_turn(t);
        body();
        finish(t);
      });
    }
    for (auto& th : threads) th.join();
    current() = nullptr;
  }

 private:
  void wait_for_turn(unsigned t) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return running_ == t; });
  }

  /// The scheduling decision point.
  void yield_point() {
    std::unique_lock<std::mutex> lk(mu_);
    unsigned self = running_;
    // Enumerate runnable threads (not done).
    std::vector<unsigned> runnable;
    for (unsigned t = 0; t < n_; ++t) {
      if (!done_[t]) runnable.push_back(t);
    }
    if (runnable.size() <= 1) return;  // no choice to make
    uint8_t choice = 0;
    if (decision_idx_ < decisions_->size()) {
      choice = (*decisions_)[decision_idx_];
    }
    ++decision_idx_;
    if (widths_ != nullptr) {
      widths_->push_back(uint8_t(runnable.size()));
    }
    unsigned next = runnable[choice % runnable.size()];
    if (next != self) {
      running_ = next;
      cv_.notify_all();
      cv_.wait(lk, [&] { return running_ == self; });
    }
  }

  void finish(unsigned t) {
    std::unique_lock<std::mutex> lk(mu_);
    done_[t] = true;
    // Hand the token to the lowest-numbered unfinished thread.
    for (unsigned u = 0; u < n_; ++u) {
      if (!done_[u]) {
        running_ = u;
        cv_.notify_all();
        return;
      }
    }
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  unsigned n_ = 0;
  unsigned running_ = 0;
  std::vector<bool> done_;
  std::vector<bool> in_yield_;
  const std::vector<uint8_t>* decisions_ = nullptr;
  std::vector<uint8_t>* widths_ = nullptr;
  std::size_t decision_idx_ = 0;
};

/// Depth-first enumeration of schedules: runs `scenario(decisions)`
/// repeatedly, each run returning the branch widths it consumed; explores
/// every alternative at every decision point, up to `max_schedules` runs
/// and `max_depth` decisions per run. Returns the number of schedules
/// executed.
inline std::size_t explore_schedules(
    const std::function<void(const std::vector<uint8_t>&,
                             std::vector<uint8_t>*)>& scenario,
    std::size_t max_schedules = 20000, std::size_t max_depth = 256) {
  std::vector<std::vector<uint8_t>> stack;  // decision prefixes to try
  stack.push_back({});
  std::size_t runs = 0;
  while (!stack.empty() && runs < max_schedules) {
    std::vector<uint8_t> decisions = std::move(stack.back());
    stack.pop_back();
    std::vector<uint8_t> widths;
    scenario(decisions, &widths);
    ++runs;
    // Every decision point beyond our explicit prefix took the default
    // choice 0 in this run; enqueue each alternative exactly once
    // (prefix-of-zeros + [alt]). Points within the prefix were already
    // branched by ancestors.
    std::size_t limit = widths.size() < max_depth ? widths.size() : max_depth;
    for (std::size_t i = decisions.size(); i < limit; ++i) {
      for (uint8_t alt = 1; alt < widths[i]; ++alt) {
        std::vector<uint8_t> next = decisions;
        next.resize(i, 0);
        next.push_back(alt);
        stack.push_back(std::move(next));
      }
    }
  }
  return runs;
}

}  // namespace wfq::test
