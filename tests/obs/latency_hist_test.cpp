// Unit tests for the wait-free log-bucketed latency histogram: the bucket
// geometry (round-trips, bounded relative error), recording/percentiles,
// and the merge algebra (associative + commutative) that collect_obs()
// relies on when folding per-handle histograms in arbitrary order. The
// concurrent test runs under TSan via the tsan label: recording is relaxed
// increments only, and a reader may snapshot mid-traffic.
#include "obs/latency_hist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.hpp"

namespace wfq::obs {
namespace {

using H = LatencyHistogram;

TEST(LatencyHistogram, LinearRegionIsExact) {
  for (uint64_t v = 0; v < (uint64_t{1} << H::kLinearBits); ++v) {
    EXPECT_EQ(H::bucket_index(v), v);
    EXPECT_EQ(H::bucket_lower(std::size_t(v)), v);
    EXPECT_EQ(H::bucket_upper(std::size_t(v)), v + 1);
  }
}

TEST(LatencyHistogram, BucketBoundariesRoundTrip) {
  for (std::size_t idx = 0; idx < H::kBuckets; ++idx) {
    const uint64_t lo = H::bucket_lower(idx);
    EXPECT_EQ(H::bucket_index(lo), idx) << "lower of bucket " << idx;
    if (idx > 0) {
      // The value just below a bucket's lower bound belongs to its
      // predecessor — the buckets tile the axis with no gap or overlap.
      EXPECT_EQ(H::bucket_index(lo - 1), idx - 1) << "below bucket " << idx;
      EXPECT_GT(lo, H::bucket_lower(idx - 1)) << "lowers must increase";
    }
    if (idx + 1 < H::kBuckets) {
      EXPECT_EQ(H::bucket_upper(idx), H::bucket_lower(idx + 1));
      EXPECT_EQ(H::bucket_index(H::bucket_upper(idx) - 1), idx);
    } else {
      EXPECT_EQ(H::bucket_upper(idx), ~uint64_t{0});
      EXPECT_EQ(H::bucket_index(~uint64_t{0}), idx);  // saturates at the top
    }
  }
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
  // Above the linear region every bucket's width is at most lower/2^kSubBits,
  // which is the 25% relative-error claim in the header comment.
  for (std::size_t idx = (1u << H::kLinearBits); idx + 1 < H::kBuckets;
       ++idx) {
    const uint64_t lo = H::bucket_lower(idx);
    const uint64_t width = H::bucket_upper(idx) - lo;
    EXPECT_LE(width, lo / H::kSubBuckets) << "bucket " << idx;
  }
}

TEST(LatencyHistogram, RecordAndPercentile) {
  H h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty histogram reads 0

  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  const std::size_t idx = H::bucket_index(1000);
  EXPECT_EQ(h.bucket_count(idx), 100u);
  // Every percentile of a single-bucket population is that bucket's
  // midpoint, and the true value lies in the bucket's range.
  const uint64_t p = h.percentile(0.5);
  EXPECT_EQ(p, h.percentile(0.0));
  EXPECT_EQ(p, h.percentile(1.0));
  EXPECT_GE(p, H::bucket_lower(idx));
  EXPECT_LT(p, H::bucket_upper(idx));
}

TEST(LatencyHistogram, PercentilesOrderedAndApproximatelyCorrect) {
  H h;
  for (uint64_t v = 1; v <= 10'000; ++v) h.record(v);
  const uint64_t p50 = h.percentile(0.50);
  const uint64_t p99 = h.percentile(0.99);
  const uint64_t p999 = h.percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Bounded relative error: 25% bucket width plus midpoint rounding.
  EXPECT_GE(p50, 3500u);
  EXPECT_LE(p50, 7000u);
  EXPECT_GE(p999, 7000u);
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  Xorshift128Plus rng(42);
  H a, b, c;
  for (int i = 0; i < 3000; ++i) {
    a.record(rng.next_below(1u << 20));
    b.record(rng.next_below(1u << 10));
    c.record(rng.next_below(1u << 30));
  }
  H ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  H bc = b;     // a + (b + c)
  bc.merge(c);
  H a_bc = a;
  a_bc.merge(bc);
  H ba = b;     // b + a
  ba.merge(a);
  H ab = a;
  ab.merge(b);
  for (std::size_t i = 0; i < H::kBuckets; ++i) {
    EXPECT_EQ(ab_c.bucket_count(i), a_bc.bucket_count(i)) << "bucket " << i;
    EXPECT_EQ(ab.bucket_count(i), ba.bucket_count(i)) << "bucket " << i;
  }
}

TEST(LatencyHistogram, CopyIsASnapshot) {
  H h;
  for (int i = 0; i < 10; ++i) h.record(uint64_t(i) * 100);
  H copy = h;
  h.record(1);  // diverge the original
  EXPECT_EQ(copy.count(), 10u);
  EXPECT_EQ(h.count(), 11u);
}

// Relaxed recording from many threads with a concurrent reader: the final
// count is exact once writers join, and mid-flight reads never misbehave
// (this is the TSan target — record() and the read path must stay free of
// data races by construction, i.e. all-atomic).
TEST(LatencyHistogram, ConcurrentRecordingIsExactAfterJoin) {
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  H h;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      sink += h.count() + h.percentile(0.5);
    }
    (void)sink;
  });
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Xorshift128Plus rng(t * 977 + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.record(rng.next_below(1u << 24));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace wfq::obs
