# Empty compiler generated dependencies file for bench_patience.
# This may be replaced when dependencies are built.
