file(REMOVE_RECURSE
  "CMakeFiles/bench_pairs.dir/bench_pairs.cpp.o"
  "CMakeFiles/bench_pairs.dir/bench_pairs.cpp.o.d"
  "bench_pairs"
  "bench_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
