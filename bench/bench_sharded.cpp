// Horizontal scaling of the sharded layer: enqueue-dequeue pairs on
// ShardedQueue<WFQueue> with the lane count swept over {1,2,4,8}, against
// the single WF-10 queue as the strict-FIFO baseline.
//
// The question this bench answers: how much throughput does relaxing
// global FIFO to per-lane FIFO buy? Every lane is an independent WF-10
// instance with its own FAA hot spots, so s lanes divide the enqueue
// contention by ~s while the dequeue side pays one extra empty probe on
// the home lane per steal. s=1 isolates the wrapper overhead (one extra
// indirection and the home-lane dispatch) and should track WF-10 closely;
// the gap between s=1 and s=4/8 is the contention relief itself.
//
// Workload: each thread alternates enqueue and dequeue through its own
// handle (lane affinity = the production pattern), think time off by
// default as in bench_bulk — the paper's 50-100 ns delay swamps the
// per-op saving under measurement; set WFQ_NO_DELAY=0 to restore it.
// A latency pass (p50/p99 over pooled enqueue+dequeue samples) accompanies
// every point; `--json <file>` emits {bench, config, threads, mops,
// p50_ns, p99_ns} records (see docs/BENCHMARKING.md, BENCH_sharded.json).
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "harness/barrier.hpp"
#include "harness/latency.hpp"
#include "scale/sharded_queue.hpp"

namespace wfq::bench {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

/// One iteration of the pairs workload; returns Mops/s over both ops.
template <class Queue>
double run_pairs(Queue& q, unsigned threads, uint64_t pairs_per_thread,
                 bool use_delay, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads), stop(threads);
  std::vector<Clock::time_point> t_begin(threads), t_end(threads);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      WorkDelay delay = WorkDelay::paper_default(seed * 1315423911u + t);
      uint64_t seq = 0;
      start.arrive_and_wait();
      t_begin[t] = Clock::now();
      for (uint64_t i = 0; i < pairs_per_thread; ++i) {
        q.enqueue(h, (uint64_t(t) << 40) | ++seq);
        if (use_delay) delay.spin();
        (void)q.dequeue(h);
        if (use_delay) delay.spin();
      }
      t_end[t] = Clock::now();
      stop.arrive_and_wait();
    });
  }
  for (auto& w : workers) w.join();

  Clock::time_point first = t_begin[0], last = t_end[0];
  for (unsigned t = 1; t < threads; ++t) {
    if (t_begin[t] < first) first = t_begin[t];
    if (t_end[t] > last) last = t_end[t];
  }
  const double secs = std::chrono::duration<double>(last - first).count();
  const uint64_t ops = 2 * uint64_t(threads) * pairs_per_thread;
  return secs > 0 ? double(ops) / secs / 1e6 : 0.0;
}

/// Pooled enqueue+dequeue op latency for one configuration.
template <class Queue>
LatencyResult pair_latency(Queue& q, unsigned threads,
                           uint64_t pairs_per_thread) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(threads);
  std::vector<std::vector<uint64_t>> samples(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)pin_to_cpu(t);
      auto h = q.get_handle();
      auto& mine = samples[t];
      mine.reserve(2 * pairs_per_thread);
      uint64_t seq = 0;
      start.arrive_and_wait();
      for (uint64_t i = 0; i < pairs_per_thread; ++i) {
        auto t0 = Clock::now();
        q.enqueue(h, (uint64_t(t) << 40) | ++seq);
        auto t1 = Clock::now();
        (void)q.dequeue(h);
        auto t2 = Clock::now();
        mine.push_back(uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        mine.push_back(uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
                .count()));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return summarize_latencies(std::move(all));
}

struct SweepPoint {
  std::string config;
  unsigned threads;
  double mops;
};

/// Measure one queue family across the thread sweep, print its column into
/// the shared table rows, record JSON, return the points.
template <class MakeQueue>
std::vector<SweepPoint> sweep_family(const std::string& config,
                                     MakeQueue make_queue,
                                     const std::vector<unsigned>& threads,
                                     uint64_t total_pairs, bool use_delay,
                                     const MethodologyConfig& mcfg) {
  std::vector<SweepPoint> points;
  for (unsigned t : threads) {
    const uint64_t per_thread = std::max<uint64_t>(1, total_pairs / t);
    auto ci = measure(mcfg, [&] {
      auto q = make_queue();
      return std::function<double()>([q, t, per_thread, use_delay] {
        return run_pairs(*q, t, per_thread, use_delay, 0x5eed);
      });
    });
    auto lq = make_queue();
    LatencyResult lat =
        pair_latency(*lq, t, std::max<uint64_t>(64, per_thread / 4));
    json_sink().record("sharded_pairs", config, t, ci.mean, double(lat.p50),
                       double(lat.p99), double(lat.p999), ci.half_width);
    std::cerr << "  [sharded_pairs] " << config << " threads=" << t << ": "
              << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s  p50="
              << lat.p50 << "ns p99=" << lat.p99 << "ns\n";
    points.push_back({config, t, ci.mean});
  }
  return points;
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  using namespace wfq::bench;
  bench_main_init(argc, argv);
  // Scaling microbenchmark: think time off unless explicitly requested
  // (see header comment).
  ::setenv("WFQ_NO_DELAY", "1", /*overwrite=*/0);

  auto threads = thread_counts_from_env();
  auto mcfg = MethodologyConfig::from_env();
  const uint64_t pairs = ops_from_env();
  const bool use_delay = delay_enabled_from_env();
  const unsigned hw = wfq::hardware_threads();

  std::cout << "== Sharded layer: lanes vs one queue, enq-deq pairs ==\n";
  std::cout << format_platform_table(detect_platform());
  std::cout << "pairs/iteration=" << pairs
            << "  invocations=" << mcfg.invocations
            << "  delay=" << (use_delay ? "50-100ns" : "off")
            << "  (Mops/s counts both ops of a pair)\n"
            << "(^ marks thread counts above the " << hw
            << " hardware thread(s) of this host)\n\n";

  wfq::WfConfig wf10;
  wf10.patience = 10;

  std::vector<std::vector<SweepPoint>> columns;
  columns.push_back(sweep_family(
      "WF-10",
      [wf10] { return std::make_shared<wfq::WFQueue<uint64_t>>(wf10); },
      threads, pairs, use_delay, mcfg));
  for (std::size_t s : kShardCounts) {
    columns.push_back(sweep_family(
        "Sharded-WF s=" + std::to_string(s),
        [wf10, s] {
          return std::make_shared<wfq::ShardedQueue<wfq::WFQueue<uint64_t>>>(
              wfq::ShardConfig{s}, wf10);
        },
        threads, pairs, use_delay, mcfg));
  }

  std::vector<std::string> headers{"threads"};
  for (const auto& col : columns) {
    headers.push_back(col.front().config + " (Mops/s)");
  }
  Table table(headers);
  for (std::size_t r = 0; r < threads.size(); ++r) {
    std::vector<std::string> row{std::to_string(threads[r]) +
                                 (threads[r] > hw ? "^" : "")};
    for (const auto& col : columns) row.push_back(Table::fmt(col[r].mops, 2));
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << "\n";

  // The headline number: 4 lanes vs the single queue at the highest
  // measured thread count — the contention relief the subsystem exists
  // to deliver.
  const unsigned t_max = threads.back();
  double single = 0, s4 = 0;
  for (const auto& col : columns) {
    for (const auto& p : col) {
      if (p.threads != t_max) continue;
      if (p.config == "WF-10") single = p.mops;
      if (p.config == "Sharded-WF s=4") s4 = p.mops;
    }
  }
  if (single > 0) {
    std::cout << "Sharded-WF s=4 @ " << t_max << " threads: " << s4
              << " Mops/s vs WF-10 single = " << single << " Mops/s  ("
              << Table::fmt(s4 / single, 2) << "x)\n";
  }
  return 0;
}
