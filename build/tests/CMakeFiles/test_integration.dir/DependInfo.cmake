
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/all_queues_property_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/all_queues_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/all_queues_property_test.cpp.o.d"
  "/root/repo/tests/integration/harness_compat_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/harness_compat_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/harness_compat_test.cpp.o.d"
  "/root/repo/tests/integration/linearizability_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/linearizability_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/linearizability_test.cpp.o.d"
  "/root/repo/tests/integration/quiesce_protocol_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/quiesce_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/quiesce_protocol_test.cpp.o.d"
  "/root/repo/tests/integration/stress_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfq_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
