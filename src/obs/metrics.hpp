// The observability seam: Traits::Metrics.
//
// Mirrors the fault injector's discipline exactly (harness/fault_inject.hpp):
//
//   - `NullMetrics` (the default, resolved via MetricsOf<Traits> for any
//     traits type without a `Metrics` member) has kEnabled = false; every
//     instrumentation site in the stack sits inside
//     `if constexpr (Metrics::kEnabled)`, so disabled builds compile the
//     recording calls — and the exporter's event-name strings — to nothing.
//     tools/ci.sh's obs leg greps a release bench binary for "obs:" to
//     enforce this stays true.
//   - `ObsMetrics<SampleShift, RingCap>` enables per-handle latency
//     histograms (enq / deq / enq_bulk / deq_bulk / pop_wait) and a typed
//     slow-path trace ring.
//
// Cost model (docs/OBSERVABILITY.md):
//   fast path, unsampled op:  one owner-local counter increment + one
//                             predicted branch (no clock read).
//   fast path, sampled op:    + two steady_clock reads and one relaxed
//                             histogram increment. 1-in-2^SampleShift ops.
//   slow path:                + one ring emit (cursor fetch_add + relaxed
//                             field stores)
//                             per traced event. Slow paths are where the
//                             latency already went; the emit is noise.
//
// Trace events are NOT sampled — their totals must agree exactly with the
// OpStats counters they shadow (oom_rescues, adopted_handles), which is the
// soak's --trace acceptance check.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "obs/latency_hist.hpp"
#include "obs/trace_ring.hpp"

namespace wfq::obs {

/// Default metrics provider: nothing is recorded, nothing is compiled in.
struct NullMetrics {
  static constexpr bool kEnabled = false;
  /// Empty per-handle block so `typename Metrics::PerHandle obs;` is legal
  /// in every Handle regardless of the traits.
  struct PerHandle {};
};

/// Aggregated, queue-wide view of everything the metrics layer recorded.
/// Built by WFQueueCore::collect_obs() (and BlockingQueue::collect_obs(),
/// which folds in the blocking records); consumed by the trace exporter,
/// the soak's --metrics report and the C API's wfq_trace_dump.
struct ObsSnapshot {
  LatencyHistogram enq_ns;
  LatencyHistogram deq_ns;
  LatencyHistogram enq_bulk_ns;
  LatencyHistogram deq_bulk_ns;
  LatencyHistogram pop_wait_ns;

  std::vector<TraceRec> events;               ///< retained records
  uint64_t totals[kTraceEventCount] = {};     ///< exact per-type emissions
  uint64_t dropped = 0;                       ///< records lost to wrap

  uint64_t total(TraceEvent t) const noexcept {
    return totals[std::size_t(t)];
  }

  /// Append a ring's retained records and exact totals.
  template <class Ring>
  void absorb_ring(const Ring& r) {
    r.for_each([&](const TraceRec& rec) { events.push_back(rec); });
    for (std::size_t i = 0; i < kTraceEventCount; ++i) {
      totals[i] += r.total(TraceEvent(i));
    }
    dropped += r.dropped();
  }

  /// Order events by timestamp (emission sequence breaks ties within one
  /// ring; cross-ring ties are already what one clock read apart means).
  void sort_events() {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceRec& x, const TraceRec& y) {
                       return x.ts_ns != y.ts_ns ? x.ts_ns < y.ts_ns
                                                 : x.seq < y.seq;
                     });
  }
};

/// Enabled metrics provider. `SampleShift`: latency of 1 in 2^SampleShift
/// operations is recorded on average (0 = every op — tests; 8 = the
/// production default: at ~40 ns/op the two clock reads of a sampled op
/// cost ~100 ns, so 1-in-16 sampling was a measured ~20% throughput hit
/// and 1-in-256 is what fits the <2% regression budget bench_ops checks).
/// Sampling is randomized per handle (xorshift), not strided — a fixed
/// stride aliases with the queue's own periodicity (segment-boundary ops
/// recur every kSegmentSize ops) and visibly distorts the tail
/// percentiles. `RingCap`: per-handle trace-ring capacity.
template <unsigned SampleShift = 8, std::size_t RingCap = 4096>
struct ObsMetrics {
  static constexpr bool kEnabled = true;
  static constexpr unsigned kSampleShift = SampleShift;
  static constexpr uint64_t kSampleMask = (uint64_t{1} << SampleShift) - 1;
  using Ring = TraceRing<RingCap>;

  /// Per-handle recording state. Histograms and the ring are written by the
  /// owner (the ring also by an adopter, which its cursor tolerates);
  /// sample_state is owner-only.
  struct PerHandle {
    LatencyHistogram enq_ns;
    LatencyHistogram deq_ns;
    LatencyHistogram enq_bulk_ns;
    LatencyHistogram deq_bulk_ns;
    LatencyHistogram pop_wait_ns;
    Ring ring;
    uint64_t sample_state = 0x9E3779B97F4A7C15ull;  ///< xorshift64, nonzero
    uint64_t sample_gap = 1;  ///< ops until the next sampled one
    uint32_t id = 0;  ///< stable obs id, assigned at registration
  };

  static uint64_t now_ns() noexcept {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
  }

  /// Sampling gate: 0 means "not sampled", otherwise the op's start stamp.
  /// Unsampled ops pay one owner-local decrement + predicted branch; a
  /// sampled op additionally draws the next gap (one xorshift64 step,
  /// uniform in [1, 2^(SampleShift+1)], mean ~2^SampleShift) and reads the
  /// clock. The gap is randomized rather than strided because a fixed
  /// stride phase-locks onto the queue's own periodicity (segment-boundary
  /// ops recur every kSegmentSize ops) and visibly distorts tail
  /// percentiles.
  static uint64_t op_start(PerHandle& o) noexcept {
    if constexpr (kSampleShift == 0) return now_ns();
    if (--o.sample_gap != 0) return 0;
    uint64_t x = o.sample_state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    o.sample_state = x;
    o.sample_gap = (x & (2 * kSampleMask + 1)) + 1;
    return now_ns();
  }

  /// The process-global ring for layers that have no handle (the segment
  /// list's allocation seam). Process-global like the ScriptedInjector's
  /// counters, and folded into every snapshot the same way.
  static Ring& global_ring() noexcept {
    static Ring r;
    return r;
  }

  static void trace_global(TraceEvent t, uint64_t a = 0,
                           uint64_t b = 0) noexcept {
    global_ring().emit(t, now_ns(), /*tid=*/0, a, b);
  }
};

namespace detail {
template <class T, class = void>
struct MetricsOfImpl {
  using type = NullMetrics;
};
template <class T>
struct MetricsOfImpl<T, std::void_t<typename T::Metrics>> {
  using type = typename T::Metrics;
};
}  // namespace detail

/// Traits::Metrics if present, NullMetrics otherwise — pre-existing custom
/// traits types keep compiling unchanged (same shape as fault::InjectorOf).
template <class Traits>
using MetricsOf = typename detail::MetricsOfImpl<Traits>::type;

}  // namespace wfq::obs
