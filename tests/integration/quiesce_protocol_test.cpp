// The shutdown/quiesce protocol for consumers of a linearizable queue:
// read the "producers finished" flag BEFORE dequeuing; an EMPTY result
// from a dequeue that began after the flag was set proves the queue is
// drained. (Checking the flag after the EMPTY is a TOCTOU — the EMPTY may
// predate the final enqueues — a real bug this repository's pipeline
// example shipped with until this test's scenario caught it.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "core/wf_queue.hpp"

namespace wfq {
namespace {

/// Producers enqueue; consumers drain with the flag-before-dequeue
/// protocol and NO count-based fallback: conservation must come from the
/// protocol alone.
template <class Queue>
void run_quiesce_rounds(int rounds, uint64_t per_producer) {
  for (int round = 0; round < rounds; ++round) {
    Queue q;
    constexpr unsigned kProducers = 2, kConsumers = 2;
    std::atomic<bool> producers_done{false};
    std::atomic<uint64_t> consumed{0};
    std::vector<std::thread> ts;
    for (unsigned p = 0; p < kProducers; ++p) {
      ts.emplace_back([&, p] {
        auto h = q.get_handle();
        for (uint64_t i = 0; i < per_producer; ++i) {
          q.enqueue(h, (uint64_t(p + 1) << 40) | (i + 1));
        }
      });
    }
    std::vector<std::thread> cs;
    for (unsigned c = 0; c < kConsumers; ++c) {
      cs.emplace_back([&] {
        auto h = q.get_handle();
        for (;;) {
          const bool was_done =
              producers_done.load(std::memory_order_acquire);
          auto v = q.dequeue(h);
          if (v.has_value()) {
            consumed.fetch_add(1, std::memory_order_relaxed);
          } else if (was_done) {
            break;  // EMPTY after quiesce: provably drained
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    producers_done.store(true, std::memory_order_release);
    for (auto& t : cs) t.join();
    ASSERT_EQ(consumed.load(), kProducers * per_producer)
        << "round " << round
        << ": flag-before-dequeue protocol lost values";
  }
}

TEST(QuiesceProtocol, WfQueueConservesWithoutCountFallback) {
  run_quiesce_rounds<WFQueue<uint64_t>>(40, 15000);
}

TEST(QuiesceProtocol, WfQueueWf0Conserves) {
  struct Q : WFQueue<uint64_t> {
    Q() : WFQueue<uint64_t>(WfConfig{.patience = 0, .max_garbage = 8}) {}
  };
  run_quiesce_rounds<Q>(20, 10000);
}

TEST(QuiesceProtocol, LcrqConserves) {
  run_quiesce_rounds<baselines::LCRQ<uint64_t, 256>>(20, 10000);
}

TEST(QuiesceProtocol, MsQueueConserves) {
  run_quiesce_rounds<baselines::MSQueue<uint64_t>>(20, 10000);
}

}  // namespace
}  // namespace wfq
