// wCQ-style wait-free bounded queue (after Nikolaev & Ravindran,
// PPoPP'22; arXiv:2201.02179), built on the SCQ ring geometry of
// core/scq.hpp.
//
// Shape: the same SCQD construction as ScqQueue — fq (free indices, a
// plain single-width ScqRing) + aq (allocated indices) + n data slots —
// but aq's entries are double-width (U128: the SCQ meta word plus a tag
// word) and its enqueue has a helping slow path, which is what upgrades
// the enqueue side from lock-free to wait-free:
//
//   fast path   bounded SCQ install attempts (kPatience tickets, each one
//               FAA + CAS2). Fast installs carry tag 0 = final.
//   slow path   the enqueuer publishes a request in its handle —
//               a 16-byte (state, candidate-ticket) pair mutated only by
//               CAS2 — and then *helps itself* with the same routine every
//               other thread uses to help it:
//
//                 candidate   FAA a ticket, CAS2 it into the request
//                 prepare     CAS2 the ring entry to (cycle, idx) with a
//                             tag naming (handle, seq, PREPARED)
//                 commit      CAS2 the request kHaveIdx -> kDone; the CAS
//                             validates the candidate is still current, so
//                             exactly one prepare per request commits
//                 finalize    CAS2 the entry's tag PREPARED -> FINAL;
//                             only FINAL (or tag-0) entries are consumable
//                 retract     a prepare whose request moved on (committed
//                             elsewhere, or candidate advanced) is CAS2'd
//                             back to an unsafe ⊥ entry by whoever meets it
//
//               A candidate is abandoned (new ticket, CAS2'd over the old
//               one) only against *dead evidence* — the entry's cycle
//               reached the candidate's with a foreign tag, or an
//               unusable older entry was first poisoned to the candidate
//               cycle — so a stalled helper's late prepare either fails
//               its CAS2, fails its commit, or is retracted before any
//               consumer can take it: values are delivered exactly once.
//
// Dequeue is the SCQ dequeue over the double-width entries (consume
// preserves the tag so helpers can still see their install happened) with
// one addition: consumers meeting a PREPARED entry help the owning request
// commit-or-retract before deciding, and a dequeuer about to report EMPTY
// first helps pending enqueue requests on the handle ring and retries
// once — so a value whose owner stalled mid-slow-path is still delivered
// (the stall/conservation property tests/fault/wcq_fault_test.cpp checks).
// Dequeue itself stays lock-free with threshold-bounded EMPTY detection;
// the full paper also runs dequeues through request helping, a deviation
// docs/ALGORITHM.md §13 spells out.
//
// Memory is bounded at construction: two rings of 2n entries and n slots;
// footprint_bytes() is exact and never grows, stalled threads or not.
//
// Precondition (inherited from the SCQ rings): capacity must be at least
// the number of threads operating concurrently — the threshold empty-
// detection bound counts holes per in-flight operation. See the matching
// note on ScqQueue.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/handle_registry.hpp"
#include "core/op_stats.hpp"
#include "core/queue_concepts.hpp"
#include "core/scq.hpp"
#include "core/slot_codec.hpp"
#include "harness/fault_inject.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace wfq {

namespace detail {

/// Fast-path install attempts before an enqueue publishes a request (the
/// wCQ paper's PATIENCE). Overridable via `Traits::kWcqPatience` — tests
/// set 0 to force every enqueue through the helping slow path.
template <class Traits, class = void>
struct WcqPatience {
  static constexpr int value = 16;
};
template <class Traits>
struct WcqPatience<Traits, std::void_t<decltype(Traits::kWcqPatience)>> {
  static constexpr int value = Traits::kWcqPatience;
};

}  // namespace detail

template <class T, class Traits = DefaultRingTraits>
class WcqQueue {
  using Codec = SlotCodec<T>;
  using Metrics = obs::MetricsOf<Traits>;
  using Faa = typename detail::RingFaaOf<Traits>::type;

 public:
  using value_type = T;
  using Traits_ = Traits;
  static constexpr const char* kName = "wcq";
  /// Enqueue is wait-free (FAA fast path + request helping); dequeue is
  /// lock-free with threshold-bounded EMPTY detection — see the header
  /// comment and docs/ALGORITHM.md §13 for the exact claim.
  static constexpr bool kIsWaitFree = Faa::kWaitFree;
  static constexpr bool kCollectStats = detail::RingCollectStats<Traits>::value;

  /// Per-thread record: stats/obs plus the published enqueue request other
  /// threads help complete. Registered through HandleRegistry like every
  /// backend; the ring link doubles as the helping scan order.
  struct Rec {
    std::atomic<Rec*> next{nullptr};
    /// (state, candidate ticket), mutated only by CAS2.
    /// state: [seq:37 | idx:25 | phase:2]; ticket 0 = none chosen yet.
    U128 req;
    uint16_t id = 0;          ///< 1-based, names this rec in entry tags
    uint64_t enq_seq = 0;     ///< owner-local; bumped per slow-path op
    uint64_t help_tick = 0;   ///< owner-local; paces periodic peer helping
    std::atomic<Rec*> peer{nullptr};  ///< next handle to help
    OpStats stats;
    typename Metrics::PerHandle obs;
    Rec* next_free = nullptr;
  };

  class HandleGuard {
   public:
    explicit HandleGuard(WcqQueue& q) : q_(&q), h_(q.register_handle()) {}
    ~HandleGuard() {
      if (h_ != nullptr) q_->release_handle(h_);
    }
    HandleGuard(HandleGuard&& o) noexcept : q_(o.q_), h_(o.h_) {
      o.h_ = nullptr;
    }
    HandleGuard(const HandleGuard&) = delete;
    HandleGuard& operator=(const HandleGuard&) = delete;
    Rec* get() const noexcept { return h_; }
    Rec* operator->() const noexcept { return h_; }

   private:
    WcqQueue* q_;
    Rec* h_;
  };
  using Handle = HandleGuard;

  explicit WcqQueue(std::size_t capacity = kDefaultCapacity)
      : n_(detail::ceil_pow2(capacity < 2 ? 2 : capacity)),
        ring_(2 * n_),
        lg_ring_(detail::log2_pow2(2 * n_)),
        fq_(n_),
        entries_(new U128[2 * n_]),
        data_(new std::atomic<uint64_t>[n_]),
        rec_table_(new std::atomic<Rec*>[kMaxRecs]),
        registry_(nrcl_) {
    assert(n_ <= (std::size_t{1} << 24) && "capacity exceeds the idx field");
    fq_.init_full();
    for (std::size_t j = 0; j < ring_; ++j) {
      entries_[j] = U128{pack(0, true, bot()), 0};
    }
    head_->store(ring_, std::memory_order_relaxed);
    tail_->store(ring_, std::memory_order_relaxed);
    threshold_->store(-1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxRecs; ++i) {
      rec_table_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  WcqQueue(const WcqQueue&) = delete;
  WcqQueue& operator=(const WcqQueue&) = delete;

  ~WcqQueue() {
    // Single-threaded by contract here: drain so boxed payloads are freed.
    auto h = get_handle();
    while (dequeue(h)) {
    }
  }

  Handle get_handle() { return Handle(*this); }

  /// kOk or kFull. Full is decided at the free-index ring: once an index
  /// is held, insertion always completes (helped if need be) — so this
  /// never spuriously reports full and never blocks on a non-full queue.
  /// The index is reserved *before* the value is encoded, so on kFull `v`
  /// is left untouched — callers can park and retry without copies.
  EnqueueResult try_enqueue(Handle& h, T&& v) {
    Rec* r = h.get();
    const uint64_t t0 = obs_start(r);
    uint64_t idx = 0;
    uint64_t probes = 0;
    if (!acquire_index(r, &idx, &probes)) return EnqueueResult::kFull;
    publish_index(r, idx, Codec::encode(std::move(v)), probes, t0);
    return EnqueueResult::kOk;
  }
  EnqueueResult try_enqueue(Handle& h, const T& v) {
    T copy = v;
    return try_enqueue(h, std::move(copy));
  }

  /// Backpressure-blocking convenience: spins with backoff while full.
  void enqueue(Handle& h, T v) {
    Backoff backoff;
    unsigned spins = 0;
    while (try_enqueue(h, std::move(v)) != EnqueueResult::kOk) {
      // Yield once backoff saturates: on an oversubscribed machine the
      // consumer that would free a slot may share our core, and spinning
      // through a scheduler quantum starves it.
      if (++spins >= 16) {
        std::this_thread::yield();
      } else {
        backoff.pause();
      }
    }
  }

  /// Oldest value, or nullopt <=> linearizably empty. Before reporting
  /// empty, helps pending enqueue requests once and re-checks, so stalled
  /// enqueuers cannot strand delivered-but-uncommitted values.
  std::optional<T> dequeue(Handle& h) {
    Rec* r = h.get();
    const uint64_t t0 = obs_start(r);
    uint64_t probes = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {
      uint64_t idx = 0;
      if (deq_idx(&idx, probes)) {
        const uint64_t slot = data_[idx].load(std::memory_order_relaxed);
        fq_.enqueue(idx, probes);
        if constexpr (kCollectStats) {
          r->stats.deq_fast.fetch_add(1, std::memory_order_relaxed);
          note_probes(r->stats.deq_probes, r->stats.max_deq_probes, probes);
        }
        obs_record_deq(r, t0);
        return Codec::decode(slot);
      }
      if (attempt == 0 && !help_peers(r)) break;
    }
    if constexpr (kCollectStats) {
      r->stats.deq_empty.fetch_add(1, std::memory_order_relaxed);
      note_probes(r->stats.deq_probes, r->stats.max_deq_probes, probes);
    }
    return std::nullopt;
  }

  std::size_t capacity() const noexcept { return n_; }

  std::size_t approx_size() const noexcept {
    const uint64_t t = tail_->load(std::memory_order_acquire);
    const uint64_t hd = head_->load(std::memory_order_acquire);
    const int64_t d = int64_t(t - hd);
    if (d <= 0) return 0;
    return std::size_t(d) < n_ ? std::size_t(d) : n_;
  }

  /// Exact construction-time footprint; never grows (the bounded-memory
  /// property the stalled-thread soak asserts).
  std::size_t footprint_bytes() const noexcept {
    return sizeof(WcqQueue) + fq_.footprint_bytes() +
           ring_ * sizeof(U128) + n_ * sizeof(std::atomic<uint64_t>) +
           kMaxRecs * sizeof(std::atomic<Rec*>);
  }

  OpStats stats() const {
    OpStats total;
    registry_.for_each([&](const Rec* r) { total.add(r->stats); });
    if constexpr (fault::InjectorOf<Traits>::kEnabled) {
      using Inj = fault::InjectorOf<Traits>;
      total.injected_stalls.fetch_add(Inj::stalls(),
                                      std::memory_order_relaxed);
      total.injected_crashes.fetch_add(Inj::crashes(),
                                       std::memory_order_relaxed);
    }
    return total;
  }

  void reset_stats() {
    registry_.for_each([](Rec* r) { r->stats.reset(); });
  }

  /// `include_global_ring = false` is for multi-instance aggregators (the
  /// sharded layer), which fold the shared process-global ring in once.
  obs::ObsSnapshot collect_obs(bool include_global_ring = true) const {
    obs::ObsSnapshot snap;
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([&](const Rec* r) {
        snap.enq_ns.merge(r->obs.enq_ns);
        snap.deq_ns.merge(r->obs.deq_ns);
        snap.absorb_ring(r->obs.ring);
      });
      if (include_global_ring) snap.absorb_ring(Metrics::global_ring());
      snap.sort_events();
    }
    return snap;
  }

  void reset_obs() {
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([](Rec* r) {
        const uint32_t id = r->obs.id;
        r->obs = typename Metrics::PerHandle{};
        r->obs.id = id;
      });
    }
  }

 private:
  static constexpr std::size_t kDefaultCapacity = 65536;
  static constexpr std::size_t kMaxRecs = 4096;
  static constexpr int kPatience = detail::WcqPatience<Traits>::value;
  /// Helping iterations a non-owner invests per pending request.
  static constexpr int kHelpBudget = 64;

  // ---- request state word: [seq:37 | idx:25 | phase:2] ------------------
  static constexpr uint64_t kPhaseIdle = 0;
  static constexpr uint64_t kPhaseHaveIdx = 1;
  static constexpr uint64_t kPhaseDone = 2;
  static constexpr uint64_t kIdxMask = (uint64_t{1} << 25) - 1;
  static constexpr uint64_t kSeqMask = (uint64_t{1} << 37) - 1;

  static constexpr uint64_t make_state(uint64_t seq, uint64_t idx,
                                       uint64_t phase) noexcept {
    return ((seq & kSeqMask) << 27) | ((idx & kIdxMask) << 2) | phase;
  }
  static constexpr uint64_t state_phase(uint64_t s) noexcept { return s & 3; }
  static constexpr uint64_t state_idx(uint64_t s) noexcept {
    return (s >> 2) & kIdxMask;
  }
  static constexpr uint64_t state_seq(uint64_t s) noexcept {
    return (s >> 27) & kSeqMask;
  }

  // ---- entry tag word: [rec_id:16 | seq:46 | flags:2] -------------------
  static constexpr uint64_t kTagPrepared = 1;
  static constexpr uint64_t kTagFinal = 2;

  static constexpr uint64_t make_tag(uint16_t id, uint64_t seq,
                                     uint64_t flag) noexcept {
    return (uint64_t(id) << 48) | ((seq & kSeqMask) << 2) | flag;
  }
  static constexpr uint16_t tag_rec(uint64_t tag) noexcept {
    return uint16_t(tag >> 48);
  }
  static constexpr uint64_t tag_seq(uint64_t tag) noexcept {
    return (tag >> 2) & kSeqMask;
  }
  static constexpr uint64_t tag_flag(uint64_t tag) noexcept { return tag & 3; }

  // ---- entry meta word: same packing as ScqRing -------------------------
  uint64_t bot() const noexcept { return idx_mask(); }
  uint64_t idx_mask() const noexcept { return (uint64_t{1} << lg_ring_) - 1; }
  uint64_t safe_mask() const noexcept { return uint64_t{1} << lg_ring_; }
  uint64_t pack(uint64_t cycle, bool safe, uint64_t idx) const noexcept {
    return (cycle << (lg_ring_ + 1)) | (uint64_t(safe) << lg_ring_) | idx;
  }
  uint64_t cycle_of(uint64_t e) const noexcept { return e >> (lg_ring_ + 1); }
  bool safe_of(uint64_t e) const noexcept { return (e & safe_mask()) != 0; }
  uint64_t idx_of(uint64_t e) const noexcept { return e & idx_mask(); }
  int64_t threshold_reset() const noexcept { return int64_t(3 * n_) - 1; }

  std::size_t remap(uint64_t pos) const noexcept {
    const uint64_t i = pos & (ring_ - 1);
    if (lg_ring_ <= 3) return std::size_t(i);
    return std::size_t(((i << 3) | (i >> (lg_ring_ - 3))) & (ring_ - 1));
  }

  /// Inverse of remap: recover the ring offset from the storage slot, so a
  /// consumer can reconstruct the exact ticket a PREPARED entry was
  /// installed under (ticket = cycle * ring + offset).
  uint64_t unremap(std::size_t j) const noexcept {
    const uint64_t i = uint64_t(j);
    if (lg_ring_ <= 3) return i;
    return ((i >> 3) | (i << (lg_ring_ - 3))) & (ring_ - 1);
  }

  uint64_t ticket_of(uint64_t cycle, std::size_t j) const noexcept {
    return (cycle << lg_ring_) | unremap(j);
  }

  // ---- registration -----------------------------------------------------

  Rec* register_handle() {
    return registry_.acquire(
        /*on_recycle=*/
        [](Rec* r) {
          (void)r;
          assert(state_phase(load2(&r->req).lo) != kPhaseHaveIdx &&
                 "recycled a rec with a live enqueue request");
        },
        /*pre_attach=*/
        [this](Rec* r, std::size_t index) {
          assert(index + 1 < kMaxRecs && "handle table exhausted");
          r->id = uint16_t(index + 1);
          r->req = U128{make_state(0, kIdxMask, kPhaseIdle), 0};
          rec_table_[index + 1].store(r, std::memory_order_release);
          if constexpr (Metrics::kEnabled) {
            r->obs.id = uint32_t(index) + 1;
          }
        },
        /*at_link=*/
        [](Rec* r, Rec* after) {
          r->peer.store(after, std::memory_order_relaxed);
        });
  }

  void release_handle(Rec* r) {
    registry_.release(r, [this](Rec* victim) {
      // Orphan adoption: finish a request the releasing thread (crashed,
      // in the fault harness) left pending, so its value is not stranded
      // and the rec can be recycled. Mirrors WFQueueCore's release path.
      U128 st = load2(&victim->req);
      if (state_phase(st.lo) == kPhaseHaveIdx) {
        help_enq(victim, /*owner=*/true);
        if constexpr (kCollectStats) {
          victim->stats.adopted_handles.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        trace(victim, obs::TraceEvent::kAdopt, uint64_t(victim->id), 0);
      }
    });
  }

  // ---- enqueue ----------------------------------------------------------

  bool acquire_index(Rec* r, uint64_t* idx, uint64_t* probes) {
    if ((++r->help_tick & 63) == 0) help_peers(r);
    if (!fq_.dequeue(idx, *probes)) {
      if constexpr (kCollectStats) {
        r->stats.enq_full.fetch_add(1, std::memory_order_relaxed);
        note_probes(r->stats.enq_probes, r->stats.max_enq_probes, *probes);
      }
      return false;
    }
    return true;
  }

  void publish_index(Rec* r, uint64_t idx, uint64_t slot, uint64_t probes,
                     uint64_t t0) {
    data_[idx].store(slot, std::memory_order_release);
    bool fast = false;
    for (int i = 0; i < kPatience; ++i) {
      ++probes;
      if (fast_install(idx)) {
        fast = true;
        break;
      }
    }
    if (!fast) enq_slow(r, idx);
    if constexpr (kCollectStats) {
      (fast ? r->stats.enq_fast : r->stats.enq_slow)
          .fetch_add(1, std::memory_order_relaxed);
      note_probes(r->stats.enq_probes, r->stats.max_enq_probes, probes);
    }
    obs_record_enq(r, t0);
  }

  /// One SCQ install attempt: FAA a ticket, CAS2 the entry to
  /// (cycle, idx) with tag 0 (= final). False: ticket unusable.
  bool fast_install(uint64_t idx) {
    const uint64_t t = Faa::fetch_add(*tail_, 1, std::memory_order_seq_cst);
    WFQ_INJECT(Traits, "ring_enq_faa");
    const uint64_t cyc = t >> lg_ring_;
    const std::size_t j = remap(t);
    U128 e = load2(&entries_[j]);
    for (;;) {
      // Unsafe entries are reusable only while Head <= T (the ticket's
      // dequeuer is still guaranteed to come) — see ScqRing::enqueue.
      if (!(cycle_of(e.lo) < cyc && idx_of(e.lo) == bot() &&
            (safe_of(e.lo) ||
             int64_t(head_->load(std::memory_order_seq_cst) - t) <= 0))) {
        return false;
      }
      if (cas2(&entries_[j], e, U128{pack(cyc, true, idx), 0})) {
        reset_threshold();
        return true;
      }
      e = load2(&entries_[j]);
    }
  }

  void reset_threshold() {
    if (threshold_->load(std::memory_order_seq_cst) != threshold_reset()) {
      threshold_->store(threshold_reset(), std::memory_order_seq_cst);
    }
  }

  /// Publish the request and help it to completion. The value (already in
  /// data_[idx]) is inserted exactly once; see the header comment for the
  /// prepare/commit/finalize/retract protocol.
  void enq_slow(Rec* r, uint64_t idx) {
    const uint64_t seq = ++r->enq_seq;
    const U128 pending{make_state(seq, idx, kPhaseHaveIdx), 0};
    U128 cur = load2(&r->req);
    while (!cas2(&r->req, cur, pending)) cur = load2(&r->req);
    WFQ_INJECT(Traits, "wcq_enq_slow_published");
    trace(r, obs::TraceEvent::kEnqSlow, idx, seq);
    help_enq(r, /*owner=*/true);
    // Retire the request: done -> idle (owner-only transition; helpers
    // only read a done request).
    cur = load2(&r->req);
    while (state_phase(cur.lo) == kPhaseDone &&
           !cas2(&r->req, cur, U128{make_state(seq, kIdxMask, kPhaseIdle), 0})) {
      cur = load2(&r->req);
    }
  }

  /// The cooperative insert: run by the owner (to completion) and by
  /// helpers (bounded budget). Every step is an idempotent CAS2 on shared
  /// state, so any mix of threads — including a crashed owner whose rec is
  /// being adopted — drives the request to kPhaseDone.
  void help_enq(Rec* v, bool owner) {
    const uint16_t vid = v->id;
    for (int64_t iter = 0; owner || iter < kHelpBudget; ++iter) {
      U128 st = load2(&v->req);
      if (state_phase(st.lo) != kPhaseHaveIdx) return;
      const uint64_t seq = state_seq(st.lo);
      const uint64_t idx = state_idx(st.lo);
      const uint64_t tag_p = make_tag(vid, seq, kTagPrepared);
      const uint64_t tag_f = make_tag(vid, seq, kTagFinal);

      if (st.hi == 0) {
        // No candidate yet: reserve the current tail position, and only
        // the reservation winner advances tail past it. Reserve-then-
        // advance (not FAA-then-publish) matters: with FAA, every helper
        // losing the publish CAS2 leaks its ticket as a permanent hole,
        // tail outruns head by far more than the threshold (3n-1) can
        // bridge, and dequeuers report EMPTY with values stranded in the
        // ring. Reserving first means a request consumes ring positions
        // one at a time, which is what keeps the threshold bound valid.
        const uint64_t t = tail_->load(std::memory_order_seq_cst);
        WFQ_INJECT(Traits, "wcq_help_install");
        if (cas2(&v->req, st, U128{st.lo, t})) {
          uint64_t exp = t;
          tail_->compare_exchange_strong(exp, t + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
        }
        continue;
      }
      const uint64_t p = st.hi;
      const uint64_t cyc = p >> lg_ring_;
      const std::size_t j = remap(p);
      U128 e = load2(&entries_[j]);

      if (e.hi == tag_p || e.hi == tag_f) {
        // Our install is in the ring (consumed or not): commit, then mark
        // the entry final so consumers may take it.
        WFQ_INJECT(Traits, "wcq_finalize");
        cas2(&v->req, st, U128{make_state(seq, idx, kPhaseDone), p});
        if (e.hi == tag_p) {
          if (cas2(&entries_[j], e, U128{e.lo, tag_f})) reset_threshold();
        }
        continue;  // next load sees kPhaseDone -> return
      }
      const uint64_t ecyc = cycle_of(e.lo);
      if (ecyc < cyc) {
        // Same Head <= T reuse rule as ScqRing::enqueue: prepare only
        // where a future dequeuer ticket is still guaranteed.
        if (idx_of(e.lo) == bot() &&
            (safe_of(e.lo) ||
             int64_t(head_->load(std::memory_order_seq_cst) - p) <= 0)) {
          cas2(&entries_[j], e, U128{pack(cyc, true, idx), tag_p});
          continue;
        }
        if (idx_of(e.lo) == bot()) {
          // Unsafe ⊥ entry already overtaken by head: poison it up to our
          // cycle so no late install (ours included) can ever succeed
          // here — that is the dead evidence advancing requires.
          cas2(&entries_[j], e, U128{pack(cyc, safe_of(e.lo), bot()), 0});
          continue;
        }
        // Occupied older entry (possible only for stale candidates): fall
        // through to advance. A late prepare here is caught by the commit
        // validation + retract path, not by evidence.
      }
      // Dead candidate (foreign tag at/past our cycle, or unusable old
      // entry): advance to a fresh position, reserve-then-advance again.
      // The CAS2 validates the request still points at p, so racing
      // advances collapse to one and candidates strictly increase
      // (tail is monotonic and p itself came from tail).
      const uint64_t t = tail_->load(std::memory_order_seq_cst);
      if (t == p) {
        // Tail has not passed the dead candidate yet (possible after a
        // dequeuer-side catchup): push it first so the next iteration
        // reads a genuinely fresh position.
        uint64_t exp = p;
        tail_->compare_exchange_strong(exp, p + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
        continue;
      }
      if (cas2(&v->req, st, U128{st.lo, t})) {
        uint64_t exp = t;
        tail_->compare_exchange_strong(exp, t + 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
      }
    }
  }

  /// Help every handle with a pending request, one ring sweep starting at
  /// r's rotating peer pointer. Returns whether any request was seen.
  bool help_peers(Rec* r) {
    Rec* p = r->peer.load(std::memory_order_acquire);
    if (p == nullptr) return false;
    bool saw = false;
    Rec* cur = p;
    for (std::size_t k = 0; k < kMaxRecs; ++k) {
      if (cur != r &&
          state_phase(load2(&cur->req).lo) == kPhaseHaveIdx) {
        saw = true;
        help_enq(cur, /*owner=*/false);
        trace(r, obs::TraceEvent::kHelpGiven, uint64_t(cur->id), 0);
      }
      Rec* nxt = cur->next.load(std::memory_order_acquire);
      if (nxt == nullptr || nxt == p) break;
      cur = nxt;
    }
    r->peer.store(cur->next.load(std::memory_order_acquire),
                  std::memory_order_release);
    return saw;
  }

  // ---- dequeue ----------------------------------------------------------

  /// SCQ dequeue over the double-width entries. Consumable = real index
  /// with tag 0 or FINAL; PREPARED entries are resolved (commit-or-
  /// retract) in place.
  bool deq_idx(uint64_t* out, uint64_t& probes) {
    if (threshold_->load(std::memory_order_seq_cst) < 0) return false;
    for (;;) {
      ++probes;
      const uint64_t h =
          Faa::fetch_add(*head_, 1, std::memory_order_seq_cst);
      WFQ_INJECT(Traits, "ring_deq_faa");
      const uint64_t cyc = h >> lg_ring_;
      const std::size_t j = remap(h);
      U128 e = load2(&entries_[j]);
      for (;;) {
        const uint64_t ecyc = cycle_of(e.lo);
        if (ecyc == cyc && idx_of(e.lo) != bot()) {
          if (tag_flag(e.hi) == kTagPrepared) {
            if (!resolve_prepared(j, h, &e)) {
              continue;  // entry changed under us: re-examine
            }
            if (idx_of(e.lo) == bot()) break;  // retracted: no value here
          }
          // Final (or fast) value: consume, preserving the tag so the
          // owner's helpers can still see the install happened.
          const U128 consumed{pack(cyc, safe_of(e.lo), bot()), e.hi};
          if (cas2(&entries_[j], e, consumed)) {
            *out = idx_of(e.lo);
            return true;
          }
          e = load2(&entries_[j]);
          continue;
        }
        if (ecyc < cyc) {
          const U128 ne = idx_of(e.lo) == bot()
                              ? U128{pack(cyc, safe_of(e.lo), bot()), 0}
                              : U128{e.lo & ~safe_mask(), e.hi};
          if (!(ne == e) && !cas2(&entries_[j], e, ne)) {
            e = load2(&entries_[j]);
            continue;
          }
        }
        // ecyc == cyc with ⊥ (a poisoned slow-path candidate), ecyc > cyc,
        // or we just marked the entry: nothing to take at this ticket.
        break;
      }
      const uint64_t t = tail_->load(std::memory_order_seq_cst);
      if (int64_t(t - (h + 1)) <= 0) {
        catchup(t, h + 1);
        threshold_->fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
      if (threshold_->fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        return false;
      }
    }
  }

  /// Decide a PREPARED entry at slot j / ticket h: commit its request if
  /// this is the current candidate, else retract it. True: `*e` now holds
  /// a settled view (final value, or ⊥ after retract). False: the entry
  /// moved concurrently; caller re-reads.
  bool resolve_prepared(std::size_t j, uint64_t h, U128* e) {
    const uint64_t tag = e->hi;
    const uint64_t cyc = cycle_of(e->lo);
    const uint64_t p = ticket_of(cyc, j);
    (void)h;
    assert((p & (ring_ - 1)) == (h & (ring_ - 1)));
    Rec* v = rec_table_[tag_rec(tag)].load(std::memory_order_acquire);
    assert(v != nullptr && "tagged entry from an unregistered rec");
    const uint64_t seq = tag_seq(tag);
    U128 st = load2(&v->req);
    if (state_seq(st.lo) == seq && state_phase(st.lo) == kPhaseHaveIdx &&
        st.hi == p) {
      // Current candidate, not yet committed: commit it ourselves.
      cas2(&v->req, st,
           U128{make_state(seq, state_idx(st.lo), kPhaseDone), p});
      st = load2(&v->req);
    }
    const bool committed_here = state_seq(st.lo) == seq &&
                                state_phase(st.lo) == kPhaseDone &&
                                st.hi == p;
    if (committed_here) {
      const U128 finald{e->lo, make_tag(tag_rec(tag), seq, kTagFinal)};
      if (cas2(&entries_[j], *e, finald)) {
        reset_threshold();
        *e = finald;
        return true;
      }
      *e = load2(&entries_[j]);
      return false;
    }
    // Stale prepare (the request moved on, committed elsewhere, or was
    // recycled): retract so the slot is a plain hole.
    const U128 hole{pack(cyc, false, bot()), 0};
    if (cas2(&entries_[j], *e, hole)) {
      *e = hole;
      return true;
    }
    *e = load2(&entries_[j]);
    return false;
  }

  void catchup(uint64_t t, uint64_t h) noexcept {
    while (!tail_->compare_exchange_weak(t, h, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
      h = head_->load(std::memory_order_seq_cst);
      t = tail_->load(std::memory_order_seq_cst);
      if (int64_t(t - h) >= 0) return;
    }
  }

  // ---- small shared helpers --------------------------------------------

  static uint64_t obs_start(Rec* r) noexcept {
    (void)r;
    if constexpr (Metrics::kEnabled) {
      return Metrics::op_start(r->obs);
    } else {
      return 0;
    }
  }

  static void obs_record_enq(Rec* r, uint64_t t0) noexcept {
    (void)r;
    (void)t0;
    if constexpr (Metrics::kEnabled) {
      if (t0 != 0) r->obs.enq_ns.record(Metrics::now_ns() - t0);
    }
  }

  static void obs_record_deq(Rec* r, uint64_t t0) noexcept {
    (void)r;
    (void)t0;
    if constexpr (Metrics::kEnabled) {
      if (t0 != 0) r->obs.deq_ns.record(Metrics::now_ns() - t0);
    }
  }

  static void trace(Rec* r, obs::TraceEvent ev, uint64_t a,
                    uint64_t b) noexcept {
    (void)r;
    (void)ev;
    (void)a;
    (void)b;
    if constexpr (Metrics::kEnabled) {
      r->obs.ring.emit(ev, Metrics::now_ns(), r->obs.id, a, b);
    }
  }

  static void note_probes(std::atomic<uint64_t>& total,
                          std::atomic<uint64_t>& high_water,
                          uint64_t probes) noexcept {
    total.fetch_add(probes, std::memory_order_relaxed);
    uint64_t cur = high_water.load(std::memory_order_relaxed);
    while (probes > cur &&
           !high_water.compare_exchange_weak(cur, probes,
                                             std::memory_order_relaxed)) {
    }
  }

  const std::size_t n_;
  const std::size_t ring_;
  const unsigned lg_ring_;
  ScqRing<Traits> fq_;  ///< free indices (single-width SCQ ring)
  std::unique_ptr<U128[]> entries_;  ///< aq: double-width (meta, tag)
  std::unique_ptr<std::atomic<uint64_t>[]> data_;
  std::unique_ptr<std::atomic<Rec*>[]> rec_table_;  ///< tag rec_id -> Rec*
  CacheAligned<std::atomic<uint64_t>> head_;
  CacheAligned<std::atomic<uint64_t>> tail_;
  CacheAligned<std::atomic<int64_t>> threshold_;
  NullReclaim nrcl_;
  HandleRegistry<Rec, NullReclaim> registry_;
};

static_assert(ConcurrentQueue<WcqQueue<uint64_t>>);
static_assert(BoundedQueue<WcqQueue<uint64_t>>);

}  // namespace wfq
