// Correctness tests for the LCRQ baseline: ring transitions, CRQ closing
// and linking, unsafe-cell handling, and MPMC properties.
#include "baselines/lcrq.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(Lcrq, StartsEmpty) {
  LCRQ<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
  EXPECT_EQ(q.live_crqs(), 1u);
}

TEST(Lcrq, SequentialFifo) {
  LCRQ<uint64_t> q;
  test::run_sequential_fifo(q, 5000);
}

TEST(Lcrq, WrapsAroundTheRing) {
  // A small ring forces many laps through the same cells, exercising the
  // idx + R lap arithmetic.
  LCRQ<uint64_t, 8> q;
  auto h = q.get_handle();
  for (uint64_t i = 1; i <= 1000; ++i) {
    q.enqueue(h, i);
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST(Lcrq, FullRingClosesAndLinksNewCrq) {
  LCRQ<uint64_t, 8> q;
  auto h = q.get_handle();
  // 20 live values cannot fit an 8-cell ring: the CRQ must close and grow
  // the list, preserving FIFO across segments.
  for (uint64_t i = 1; i <= 20; ++i) q.enqueue(h, i);
  EXPECT_GE(q.live_crqs(), 2u);
  for (uint64_t i = 1; i <= 20; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(Lcrq, DrainedCrqsAreRetired) {
  LCRQ<uint64_t, 8> q;
  auto h = q.get_handle();
  for (int round = 0; round < 200; ++round) {
    for (uint64_t i = 1; i <= 20; ++i) q.enqueue(h, i);
    for (uint64_t i = 1; i <= 20; ++i) ASSERT_TRUE(q.dequeue(h).has_value());
    ASSERT_FALSE(q.dequeue(h).has_value());
  }
  // ~600 CRQs churned; the live list must stay tiny.
  EXPECT_LT(q.live_crqs(), 8u);
}

TEST(Lcrq, EmptyDequeuesDoNotWedgeTheRing) {
  // Dequeues overrunning the tail bump head far ahead; fix_state must pull
  // tail up so later enqueues land on live indices.
  LCRQ<uint64_t, 8> q;
  auto h = q.get_handle();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(q.dequeue(h).has_value());
  for (uint64_t i = 1; i <= 10; ++i) q.enqueue(h, i);
  for (uint64_t i = 1; i <= 10; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST(Lcrq, BoxedPayloads) {
  LCRQ<std::string> q;
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  q.enqueue(h, "beta");
  EXPECT_EQ(q.dequeue(h), "alpha");
  EXPECT_EQ(q.dequeue(h), "beta");
}

TEST(Lcrq, DestructionWithBacklogDoesNotLeakBoxes) {
  auto* q = new LCRQ<std::string, 16>();
  {
    auto h = q->get_handle();
    for (int i = 0; i < 100; ++i) q->enqueue(h, "payload " + std::to_string(i));
  }
  delete q;  // ASan would flag leaked boxes
}

TEST(Lcrq, MpmcPropertyDefaultRing) {
  LCRQ<uint64_t> q;
  test::run_mpmc_property(q, 4, 4, 4000);
}

TEST(Lcrq, MpmcPropertyTinyRing) {
  // Tiny ring under contention: closing, unsafe marking, and CRQ hopping
  // all fire constantly.
  LCRQ<uint64_t, 4> q;
  test::run_mpmc_property(q, 4, 4, 2000);
}

TEST(Lcrq, MpmcPropertyConsumerHeavyTinyRing) {
  LCRQ<uint64_t, 4> q;
  test::run_mpmc_property(q, 2, 6, 2000);
}

TEST(Lcrq, PairsConservation) {
  LCRQ<uint64_t> q;
  test::run_pairs_conservation(q, 8, 3000);
}

}  // namespace
}  // namespace wfq::baselines
