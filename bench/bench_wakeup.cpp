// Wakeup benchmark for the blocking layer (src/sync/): quantifies the two
// claims ALGORITHM.md §10 makes.
//
//  1. Park/wake handoff latency — a consumer that is genuinely parked on
//     the futex when the producer deposits: time from just-before-push to
//     the consumer holding the value (p50/p99). This is the cost a
//     latency-sensitive deployment pays for sleeping instead of spinning.
//  2. No-waiter overhead — the BlockingQueue wrapper must be throughput-
//     neutral when nobody parks: enqueue/dequeue pairs through
//     BlockingQueue<WFQueue> vs the raw WFQueue, same thread counts. The
//     acceptance bound is 5%; the committed BENCH_wakeup.json records the
//     measured ratio.
//
//   $ ./bench_wakeup [--smoke] [--json out.json]
//     WFQ_THREADS / WFQ_OPS respected as in every bench binary.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "async/async_queue.hpp"
#include "bench_common.hpp"
#include "harness/barrier.hpp"
#include "harness/latency.hpp"
#include "sync/blocking_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wfq::bench::json_sink;
using wfq::sync::BlockingWFQueue;
using wfq::sync::PopStatus;
using wfq::sync::WaitPolicy;

uint64_t ns_since(Clock::time_point t0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - t0)
                      .count());
}

// ---- 1. park/wake handoff latency -------------------------------------
//
// One producer, one consumer. Each round the producer WAITS until the
// consumer is registered as a waiter (and a little longer, so it passed
// through prepare_wait into the futex sleep), then pushes one value with a
// pre-push timestamp; the consumer records deposit-to-delivery time. With
// park_only policy the consumer never spins, so every sample includes a
// real futex wake.
wfq::bench::LatencyResult measure_wakeup_latency(uint64_t rounds) {
  BlockingWFQueue<uint64_t> q;
  std::vector<uint64_t> samples;
  samples.reserve(rounds);
  std::atomic<Clock::time_point> push_time{Clock::time_point{}};
  std::atomic<bool> stop{false};

  std::thread consumer([&] {
    auto h = q.get_handle();
    uint64_t v = 0;
    while (q.pop_wait(h, v, WaitPolicy::park_only()) == PopStatus::kOk) {
      samples.push_back(
          ns_since(push_time.load(std::memory_order_acquire)));
    }
  });

  auto h = q.get_handle();
  for (uint64_t r = 0; r < rounds && !stop.load(); ++r) {
    // Wait for the consumer to register; then give it a moment to reach
    // the futex syscall itself (registration happens just before).
    while (q.waiters() == 0) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    push_time.store(Clock::now(), std::memory_order_release);
    q.push(h, r + 1);
  }
  q.close();
  consumer.join();
  auto st = q.stats();
  std::printf("  parks=%llu notifies=%llu spurious=%llu (of %llu handoffs)\n",
              (unsigned long long)st.deq_parks.load(),
              (unsigned long long)st.notify_calls.load(),
              (unsigned long long)st.deq_spurious_wakeups.load(),
              (unsigned long long)rounds);
  return wfq::bench::summarize_latencies(std::move(samples));
}

// ---- 1b. coroutine resume handoff latency ------------------------------
//
// The async analog of the parked handoff: the consumer is a coroutine
// suspended in pop_async, so the producer's notify claims the waiter slot
// and resumes the frame inline instead of issuing a futex wake. Each
// sample prices claim + handle-resume + delivery against the row above —
// the async layer's pitch is that this path dodges the scheduler entirely.
wfq::async::Task<void> drain_timed(
    wfq::async::AsyncWFQueue<uint64_t>& q,
    wfq::async::AsyncWFQueue<uint64_t>::Handle& h,
    std::atomic<Clock::time_point>& push_time,
    std::vector<uint64_t>& samples) {
  for (;;) {
    auto r = co_await q.pop_async(h);
    if (!r) co_return;
    samples.push_back(ns_since(push_time.load(std::memory_order_acquire)));
  }
}

wfq::bench::LatencyResult measure_coro_resume_latency(uint64_t rounds) {
  wfq::async::AsyncWFQueue<uint64_t> q;
  std::vector<uint64_t> samples;
  samples.reserve(rounds);
  std::atomic<Clock::time_point> push_time{Clock::time_point{}};

  // The thread exists to host the first park; after that every resume
  // (and every sample) runs inline on the producer side, which is exactly
  // the deployment shape an executor-less embedding gets.
  std::thread consumer([&] {
    auto h = q.get_handle();
    wfq::async::sync_wait(drain_timed(q, h, push_time, samples));
  });

  auto h = q.get_handle();
  for (uint64_t r = 0; r < rounds; ++r) {
    while (q.waiters() == 0) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    push_time.store(Clock::now(), std::memory_order_release);
    q.push(h, r + 1);
  }
  q.close();
  consumer.join();
  auto as = q.async_stats();
  std::printf("  suspends=%llu wakes=%llu (of %llu handoffs)\n",
              (unsigned long long)as.pop_suspends,
              (unsigned long long)as.pop_wakes,
              (unsigned long long)rounds);
  return wfq::bench::summarize_latencies(std::move(samples));
}

// ---- 2. no-waiter throughput: raw vs wrapped ---------------------------
//
// `threads` workers each run enqueue/dequeue pairs on their own slice of
// ops. The consumer side uses try_pop (never registers as a waiter), so
// the wrapper's only additions on this path are the in_push ticket and the
// has_waiters branch — the things claimed free.
// Worker-side timing (min start, max end), as in harness/workload: on an
// oversubscribed host the coordinator can be descheduled across the whole
// run, so coordinator-side t0..join collapses to ~0 and inflates Mops/s
// by orders of magnitude.
template <class PushPop>
double pairs_mops(unsigned threads, uint64_t pairs_per_thread, PushPop&& go) {
  wfq::bench::SpinBarrier barrier(threads);
  std::vector<Clock::time_point> start(threads), end(threads);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      start[t] = Clock::now();
      go(t, pairs_per_thread);
      end[t] = Clock::now();
    });
  }
  for (auto& t : ts) t.join();
  auto t0 = *std::min_element(start.begin(), start.end());
  auto t1 = *std::max_element(end.begin(), end.end());
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return double(2 * pairs_per_thread) * threads / secs / 1e6;
}

double raw_pairs(unsigned threads, uint64_t pairs) {
  wfq::WFQueue<uint64_t> q;
  return pairs_mops(threads, pairs, [&](unsigned t, uint64_t n) {
    auto h = q.get_handle();
    for (uint64_t i = 1; i <= n; ++i) {
      q.enqueue(h, (uint64_t(t + 1) << 40) | i);
      (void)q.dequeue(h);
    }
  });
}

double blocking_pairs(unsigned threads, uint64_t pairs) {
  BlockingWFQueue<uint64_t> q;
  return pairs_mops(threads, pairs, [&](unsigned t, uint64_t n) {
    auto h = q.get_handle();
    for (uint64_t i = 1; i <= n; ++i) {
      q.push(h, (uint64_t(t + 1) << 40) | i);
      (void)q.try_pop(h);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  const bool smoke = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--smoke") return true;
    }
    return false;
  }();
  const uint64_t ops = wfq::bench::ops_from_env(200'000);
  const uint64_t handoffs = smoke ? 200 : 2'000;

  std::printf("== bench_wakeup: blocking-layer park/wake cost ==\n");
  std::printf("futex=%s asym_fence_fast_path_free=%d\n",
              wfq::sync::Futex::kName,
              int(wfq::sync::AsymmetricFence::fast_path_is_fence_free()));

  // 1. Handoff latency through a genuine park.
  std::printf("\n-- parked handoff latency (%llu rounds) --\n",
              (unsigned long long)handoffs);
  auto lat = measure_wakeup_latency(handoffs);
  std::printf("  deposit->delivery: p50=%lluns p90=%lluns p99=%lluns "
              "max=%lluns\n",
              (unsigned long long)lat.p50, (unsigned long long)lat.p90,
              (unsigned long long)lat.p99, (unsigned long long)lat.max);
  json_sink().record("wakeup", "parked_handoff", 2,
                     double(lat.count) / 1e6,  // informational
                     double(lat.p50), double(lat.p99), double(lat.p999));

  // 1b. The same handoff through a coroutine resume instead of a futex
  // wake (src/async/): deposit -> claim -> inline h.resume() -> delivery.
  std::printf("\n-- coroutine resume handoff latency (%llu rounds) --\n",
              (unsigned long long)handoffs);
  auto clat = measure_coro_resume_latency(handoffs);
  std::printf("  deposit->delivery: p50=%lluns p90=%lluns p99=%lluns "
              "max=%lluns\n",
              (unsigned long long)clat.p50, (unsigned long long)clat.p90,
              (unsigned long long)clat.p99, (unsigned long long)clat.max);
  json_sink().record("wakeup", "coro_resume_handoff", 2,
                     double(clat.count) / 1e6,  // informational
                     double(clat.p50), double(clat.p99), double(clat.p999));

  // 2. No-waiter throughput: wrapper vs raw, per thread count.
  //
  // Thread counts above hardware_concurrency time-slice on the scheduler
  // and the ratio degenerates to noise; record nproc so readers of the
  // JSON can tell which rows carry signal.
  const unsigned nproc = std::thread::hardware_concurrency();
  std::printf("\n-- no-waiter throughput: BlockingQueue<WFQueue> vs raw "
              "WFQueue (nproc=%u) --\n", nproc);
  json_sink().record("wakeup", "hardware_concurrency", nproc, double(nproc));
  const int reps = smoke ? 1 : 9;
  for (unsigned t : wfq::bench::thread_counts_from_env()) {
    uint64_t per_thread = ops / t + 1;
    // Interleave the two configurations rep by rep: adjacent raw/wrapped
    // runs share machine conditions (frequency, cache warmth, co-runner
    // load), so the per-rep ratio cancels drift that would otherwise
    // systematically favor whichever side runs second. Run-to-run noise on
    // a contended MPMC queue is heavy-tailed in both directions, so the
    // median of the per-rep ratios — not best-of-N, which a single lucky
    // scheduling burst on one side can dominate — is the estimator.
    std::vector<double> raws, wrappeds, ratios;
    (void)raw_pairs(t, per_thread);  // warmup, unrecorded
    for (int rep = 0; rep < reps; ++rep) {
      double r = raw_pairs(t, per_thread);
      double w = blocking_pairs(t, per_thread);
      raws.push_back(r);
      wrappeds.push_back(w);
      ratios.push_back(w / r);
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    double raw = median(raws), wrapped = median(wrappeds);
    double ratio = median(ratios);
    std::printf("  threads=%2u raw=%8.2f Mops/s  blocking=%8.2f Mops/s  "
                "ratio=%.3f%s\n",
                t, raw, wrapped, ratio,
                (nproc != 0 && t > nproc) ? "  (oversubscribed: noise)" : "");
    json_sink().record("wakeup", "no_waiter_raw", t, raw);
    json_sink().record("wakeup", "no_waiter_blocking", t, wrapped);
    json_sink().record("wakeup", "no_waiter_ratio", t, ratio);
  }
  return 0;
}
