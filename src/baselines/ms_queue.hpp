// Michael & Scott's lock-free queue (PODC'96) — the classic non-blocking
// baseline of the paper's Figure 2.
//
// Under contention its head/tail CASes fail and retry (the "CAS retry
// problem" of Morrison & Afek that motivates the FAA-based designs); a
// bounded exponential backoff softens, but cannot remove, that cliff.
//
// The memory-reclamation scheme is a policy parameter (hazard pointers by
// default, matching the paper's evaluation, or epoch-based reclamation) so
// the per-operation reclamation overhead can be measured head to head —
// the comparison behind the §3.6 overhead claim. The parameter is a plain
// policy *type* (HpReclaimer<2> / EbrReclaimer<2>) matching the OpGuard
// contract documented in memory/reclaimer.hpp — it was previously a
// template-template `template <int> class` that no documented concept
// described, which is exactly the signature drift queue_concepts.hpp
// exists to prevent.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "memory/reclaimer.hpp"

namespace wfq::baselines {

template <class T, class ReclaimPolicy = HpReclaimer<2>>
class MSQueue {
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};

    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
  };

  using Reclaim = ReclaimPolicy;

 public:
  using value_type = T;
  static constexpr const char* kReclaimName = Reclaim::kName;

  /// Per-thread access token (holds this thread's reclamation record).
  class Handle {
   public:
    Handle(Handle&& o) noexcept : q_(o.q_), rec_(o.rec_) { o.rec_ = nullptr; }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (rec_ != nullptr) q_->reclaim_.release(rec_);
    }

   private:
    friend class MSQueue;
    explicit Handle(MSQueue& q) : q_(&q), rec_(q.reclaim_.acquire()) {}
    MSQueue* q_;
    typename Reclaim::Rec* rec_;
  };

  MSQueue() {
    Node* dummy = new Node();
    head_->store(dummy, std::memory_order_relaxed);
    tail_->store(dummy, std::memory_order_relaxed);
  }

  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  ~MSQueue() {
    Node* n = head_->load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  Handle get_handle() { return Handle(*this); }

  /// Lock-free enqueue: link at tail with CAS, then swing the tail.
  void enqueue(Handle& h, T v) {
    Node* node = new Node(std::move(v));
    typename Reclaim::OpGuard guard(reclaim_, h.rec_);
    Backoff backoff;
    for (;;) {
      Node* tail = guard.template protect<Node>(0, *tail_);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_->load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail lagging: help swing it, then retry.
        tail_->compare_exchange_strong(tail, next, std::memory_order_release,
                                       std::memory_order_relaxed);
        continue;
      }
      Node* expected = nullptr;
      if (tail->next.compare_exchange_strong(expected, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
        // Linearized; swing tail (failure is fine — someone helped).
        tail_->compare_exchange_strong(tail, node, std::memory_order_release,
                                       std::memory_order_relaxed);
        return;
      }
      backoff.pause();  // CAS retry problem in action
    }
  }

  /// Lock-free dequeue; nullopt <=> observed empty.
  std::optional<T> dequeue(Handle& h) {
    typename Reclaim::OpGuard guard(reclaim_, h.rec_);
    Backoff backoff;
    for (;;) {
      Node* head = guard.template protect<Node>(0, *head_);
      Node* tail = tail_->load(std::memory_order_acquire);
      Node* next = guard.template protect<Node>(1, head->next);
      if (head != head_->load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        return std::nullopt;  // head == tail and no successor: empty
      }
      if (head == tail) {
        // Tail lagging behind an in-flight enqueue: help and retry.
        tail_->compare_exchange_strong(tail, next, std::memory_order_release,
                                       std::memory_order_relaxed);
        continue;
      }
      // Read the value before the CAS: after it, another dequeuer may
      // retire-and-free `next` once our protection drops.
      T value = next->value;
      if (head_->compare_exchange_strong(head, next, std::memory_order_release,
                                         std::memory_order_relaxed)) {
        reclaim_.retire(h.rec_, head);
        return value;
      }
      backoff.pause();
    }
  }

  /// Diagnostics for tests: nodes awaiting reclamation.
  std::size_t retired_nodes() const { return reclaim_.pending(); }

 private:
  CacheAligned<std::atomic<Node*>> head_;
  CacheAligned<std::atomic<Node*>> tail_;
  Reclaim reclaim_;
};

}  // namespace wfq::baselines
