// Tests of the workload runner and the calibrated delay (§5.1 benchmark
// machinery), driven against the obviously-correct mutex queue.
#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "baselines/faaq.hpp"
#include "baselines/mutex_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/delay.hpp"

namespace wfq::bench {
namespace {

TEST(WorkDelay, CalibrationIsSane) {
  double per = WorkDelay::ns_per_iter();
  EXPECT_GT(per, 0.0);
  EXPECT_LT(per, 1000.0);  // one iteration can't cost a microsecond
}

TEST(WorkDelay, SpinReturnsCalibratedIterations) {
  WorkDelay d(50, 100, 7);
  for (int i = 0; i < 100; ++i) {
    uint64_t iters = d.spin();
    double ns = WorkDelay::iters_to_seconds(iters) * 1e9;
    EXPECT_GE(ns, 25.0);   // calibration jitter tolerance
    EXPECT_LE(ns, 300.0);
  }
}

TEST(Runner, PairsWorkloadCountsBalance) {
  baselines::MutexQueue<uint64_t> q;
  RunConfig cfg;
  cfg.kind = WorkloadKind::kPairs;
  cfg.threads = 4;
  cfg.total_ops = 20000;  // pairs
  cfg.use_delay = false;
  auto r = run_workload(q, cfg);
  EXPECT_EQ(r.operations, 2 * 20000u);
  EXPECT_EQ(r.dequeue_hits + r.dequeue_empties, 20000u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.mops_raw(), 0.0);
  // Queue drained or small backlog only if empties occurred.
  EXPECT_EQ(q.size(), r.dequeue_empties);
}

TEST(Runner, PercentEnqueueWorkloadMixesRoughly) {
  baselines::MutexQueue<uint64_t> q;
  RunConfig cfg;
  cfg.kind = WorkloadKind::kPercentEnq;
  cfg.threads = 4;
  cfg.total_ops = 40000;
  cfg.percent_enqueue = 50;
  cfg.use_delay = false;
  auto r = run_workload(q, cfg);
  EXPECT_EQ(r.operations, 40000u);
  uint64_t deqs = r.dequeue_hits + r.dequeue_empties;
  // ~50% dequeues; 4-sigma band.
  EXPECT_NEAR(double(deqs), 20000.0, 4 * std::sqrt(40000.0 * 0.25));
}

TEST(Runner, DelayAccountingLowersAdjustedTimeNotBelowFloor) {
  baselines::MutexQueue<uint64_t> q;
  RunConfig cfg;
  cfg.threads = 2;
  cfg.total_ops = 5000;
  cfg.use_delay = true;
  auto r = run_workload(q, cfg);
  EXPECT_GT(r.delay_seconds, 0.0);
  EXPECT_LE(r.delay_seconds, r.elapsed_seconds);
  EXPECT_GE(r.mops_adjusted(), r.mops_raw());
}

TEST(Runner, WorksAgainstWfQueue) {
  WFQueue<uint64_t> q;
  RunConfig cfg;
  cfg.threads = 4;
  cfg.total_ops = 10000;
  cfg.use_delay = false;
  auto r = run_workload(q, cfg);
  EXPECT_EQ(r.operations, 20000u);
  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues(), 10000u);
  EXPECT_EQ(s.dequeues(), 10000u);
}

TEST(Runner, WorksAgainstFaaMicrobenchmark) {
  baselines::FAAQueue<uint64_t> q;
  RunConfig cfg;
  cfg.threads = 4;
  cfg.total_ops = 10000;
  cfg.use_delay = false;
  auto r = run_workload(q, cfg);
  EXPECT_EQ(r.operations, 20000u);
  EXPECT_EQ(q.enqueues(), 10000u);
  EXPECT_EQ(q.dequeues(), 10000u);
}

TEST(Runner, OversubscribedThreadsComplete) {
  baselines::MutexQueue<uint64_t> q;
  RunConfig cfg;
  cfg.threads = 4 * hardware_threads();
  cfg.total_ops = 8000;
  cfg.use_delay = false;
  auto r = run_workload(q, cfg);
  EXPECT_EQ(r.operations, 2 * ((8000 + cfg.threads - 1) / cfg.threads) *
                              cfg.threads);
}

}  // namespace
}  // namespace wfq::bench
