// Kogan & Petrank's wait-free queue (PPoPP'11, "Wait-Free Queues With
// Multiple Enqueuers and Dequeuers") — the first practical wait-free queue,
// discussed in §2 of the Yang & Mellor-Crummey paper: it layers a
// phase-based helping scheme over MS-Queue, and its throughput tracks
// MS-Queue's. Reproducing it lets the library demonstrate the paper's
// related-work claim: wait-freedom per se is not what made earlier
// wait-free queues slow — the CAS-based fast path is.
//
// Algorithm: every operation takes a phase number one larger than any
// published phase and installs an OpDesc in its slot of a per-thread state
// array; it then helps every pending operation with phase <= its own (so
// the oldest pending operation is helped by everyone — wait-freedom), after
// which its own operation is complete. Enqueues tag their node with the
// enqueuer's thread id so helpers can finish the two-step MS-Queue insert;
// dequeues announce the observed sentinel in their descriptor and stamp the
// sentinel with the dequeuer's id before the head is swung.
//
// Memory management: the original is a Java algorithm and leans on GC.
// Here nodes and descriptors go through hazard-pointer domains. Two
// deviations from the Java original follow from that: (1) the dequeue
// *result value* is copied into the closing descriptor by the helper that
// completes the operation (under node hazards), because the Java code's
// `desc.node.next.value` read in dequeue() is only safe with GC; (2) a
// dequeue retires its sentinel node itself once its descriptor is closed.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "common/align.hpp"
#include "memory/hazard_pointers.hpp"

namespace wfq::baselines {

template <class T>
class KPQueue {
  static constexpr int kNoThread = -1;

  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
    int enq_tid;                          ///< enqueuer id (helping tag)
    std::atomic<int> deq_tid{kNoThread};  ///< dequeuer id stamped on sentinel

    Node() : enq_tid(kNoThread) {}
    Node(T v, int tid) : value(std::move(v)), enq_tid(tid) {}
  };

  /// Immutable operation descriptor, replaced wholesale on every state
  /// transition so helpers always see a consistent snapshot.
  struct OpDesc {
    uint64_t phase;
    bool pending;
    bool enqueue;
    Node* node;  ///< enqueue: node being inserted; dequeue: the sentinel
    T result{};  ///< dequeue: value, copied in by the closing helper

    OpDesc(uint64_t ph, bool pe, bool en, Node* n)
        : phase(ph), pending(pe), enqueue(en), node(n) {}
    OpDesc(uint64_t ph, bool pe, bool en, Node* n, T res)
        : phase(ph), pending(pe), enqueue(en), node(n),
          result(std::move(res)) {}
  };

  using NodeDomain = HazardPointerDomain<3>;   // head/first, next, scratch
  using DescDomain = HazardPointerDomain<2>;   // work slot + probe slot

 public:
  using value_type = T;

  /// Kogan-Petrank is wait-free by construction (phase-ordered helping).
  static constexpr bool kIsWaitFree = true;

  /// `max_threads` bounds the state array (per-thread helping slots).
  explicit KPQueue(unsigned max_threads = 64)
      : nthreads_(max_threads), state_(max_threads) {
    Node* sentinel = new Node();
    head_->store(sentinel, std::memory_order_relaxed);
    tail_->store(sentinel, std::memory_order_relaxed);
    for (auto& s : state_) {
      s.desc.store(new OpDesc(0, false, true, nullptr),
                   std::memory_order_relaxed);
      s.taken.store(false, std::memory_order_relaxed);
    }
  }

  KPQueue(const KPQueue&) = delete;
  KPQueue& operator=(const KPQueue&) = delete;

  ~KPQueue() {
    Node* n = head_->load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    for (auto& s : state_) delete s.desc.load(std::memory_order_relaxed);
  }

  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : q_(o.q_), tid_(o.tid_), nrec_(o.nrec_), drec_(o.drec_) {
      o.q_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (q_ != nullptr) {
        q_->node_hp_.release(nrec_);
        q_->desc_hp_.release(drec_);
        q_->state_[tid_].taken.store(false, std::memory_order_release);
      }
    }

   private:
    friend class KPQueue;
    explicit Handle(KPQueue& q)
        : q_(&q),
          tid_(q.claim_tid()),
          nrec_(q.node_hp_.acquire()),
          drec_(q.desc_hp_.acquire()) {}
    KPQueue* q_;
    int tid_;
    typename NodeDomain::ThreadRec* nrec_;
    typename DescDomain::ThreadRec* drec_;
  };

  Handle get_handle() { return Handle(*this); }

  /// Wait-free enqueue.
  void enqueue(Handle& h, T v) {
    uint64_t phase = max_phase(h) + 1;
    publish(h, new OpDesc(phase, true, true, new Node(std::move(v), h.tid_)));
    help(h, phase);
    help_finish_enq(h);
  }

  /// Wait-free dequeue; nullopt <=> queue observed empty.
  std::optional<T> dequeue(Handle& h) {
    uint64_t phase = max_phase(h) + 1;
    publish(h, new OpDesc(phase, true, false, nullptr));
    help(h, phase);
    help_finish_deq(h);
    OpDesc* d = state_[h.tid_].desc.load(std::memory_order_acquire);
    // Our own descriptor: nobody replaces it until we publish again.
    assert(!d->pending);
    if (d->node == nullptr) return std::nullopt;
    T out = d->result;  // copied in by the closing helper, GC-free safe
    // We own the sentinel's reclamation. Helpers of *later* operations may
    // still be reading it, which is exactly what hazard-pointer retirement
    // is for.
    node_hp_.retire(h.nrec_, d->node);
    return out;
  }

 private:
  struct alignas(kCacheLineSize) ThreadState {
    std::atomic<OpDesc*> desc{nullptr};
    std::atomic<bool> taken{false};
  };

  int claim_tid() {
    for (unsigned i = 0; i < nthreads_; ++i) {
      bool expected = false;
      if (!state_[i].taken.load(std::memory_order_relaxed) &&
          state_[i].taken.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return int(i);
      }
    }
    assert(false && "KPQueue thread registry exhausted");
    std::abort();
  }

  uint64_t max_phase(Handle& h) {
    uint64_t mp = 0;
    for (unsigned i = 0; i < nthreads_; ++i) {
      OpDesc* d = desc_hp_.protect(h.drec_, 1, state_[i].desc);
      if (d != nullptr && d->phase > mp) mp = d->phase;
    }
    desc_hp_.clear(h.drec_, 1);
    return mp;
  }

  /// Install a fresh descriptor; the previous (completed) one is retired.
  void publish(Handle& h, OpDesc* d) {
    OpDesc* old = state_[h.tid_].desc.load(std::memory_order_relaxed);
    state_[h.tid_].desc.store(d, std::memory_order_seq_cst);
    if (old != nullptr) desc_hp_.retire(h.drec_, old);
  }

  /// Help every pending operation with phase <= `phase` (ours included).
  void help(Handle& h, uint64_t phase) {
    for (unsigned i = 0; i < nthreads_; ++i) {
      OpDesc* d = desc_hp_.protect(h.drec_, 1, state_[i].desc);
      if (d == nullptr || !d->pending || d->phase > phase) continue;
      bool is_enq = d->enqueue;
      uint64_t helpee_phase = d->phase;
      desc_hp_.clear(h.drec_, 1);
      if (is_enq) {
        help_enq(h, int(i), helpee_phase);
      } else {
        help_deq(h, int(i), helpee_phase);
      }
    }
    desc_hp_.clear(h.drec_, 1);
  }

  /// Is tid's current operation the one with phase <= `phase`, unfinished?
  bool still_pending(Handle& h, int tid, uint64_t phase) {
    OpDesc* d = desc_hp_.protect(h.drec_, 1, state_[tid].desc);
    bool p = d != nullptr && d->pending && d->phase <= phase;
    desc_hp_.clear(h.drec_, 1);
    return p;
  }

  void help_enq(Handle& h, int tid, uint64_t phase) {
    while (still_pending(h, tid, phase)) {
      Node* last = node_hp_.protect(h.nrec_, 0, *tail_);
      Node* next = last->next.load(std::memory_order_seq_cst);
      if (last != tail_->load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) {
        if (!still_pending(h, tid, phase)) break;
        OpDesc* d = desc_hp_.protect(h.drec_, 0, state_[tid].desc);
        bool usable = d != nullptr && d->pending && d->enqueue &&
                      d->phase <= phase;
        Node* node = usable ? d->node : nullptr;
        desc_hp_.clear(h.drec_, 0);
        if (!usable) break;
        Node* expected = nullptr;
        if (last->next.compare_exchange_strong(expected, node,
                                               std::memory_order_seq_cst,
                                               std::memory_order_relaxed)) {
          help_finish_enq(h);
          break;
        }
      } else {
        help_finish_enq(h);  // settle the lagging tail first
      }
    }
    node_hp_.clear(h.nrec_, 0);
  }

  /// Finish a half-done enqueue: close the owner's descriptor (identified
  /// by the enq_tid tag on the linked node), then swing the tail.
  void help_finish_enq(Handle& h) {
    Node* last = node_hp_.protect(h.nrec_, 0, *tail_);
    Node* next = last->next.load(std::memory_order_seq_cst);
    if (next == nullptr) {
      node_hp_.clear(h.nrec_, 0);
      return;
    }
    node_hp_.set_hazard(h.nrec_, 1, next);
    if (last != tail_->load(std::memory_order_seq_cst)) {
      node_hp_.clear(h.nrec_, 0);
      node_hp_.clear(h.nrec_, 1);
      return;
    }
    // `next` is hazard-protected and reachable from the validated tail;
    // safe to read its tag.
    int tid = next->enq_tid;
    if (tid >= 0) {
      OpDesc* cur = desc_hp_.protect(h.drec_, 0, state_[tid].desc);
      if (tail_->load(std::memory_order_seq_cst) == last && cur != nullptr &&
          cur->enqueue && cur->pending && cur->node == next) {
        auto* done = new OpDesc(cur->phase, false, true, next);
        OpDesc* expected = cur;
        if (state_[tid].desc.compare_exchange_strong(
                expected, done, std::memory_order_seq_cst,
                std::memory_order_relaxed)) {
          desc_hp_.retire(h.drec_, cur);
        } else {
          delete done;
        }
      }
      desc_hp_.clear(h.drec_, 0);
    }
    tail_->compare_exchange_strong(last, next, std::memory_order_seq_cst,
                                   std::memory_order_relaxed);
    node_hp_.clear(h.nrec_, 0);
    node_hp_.clear(h.nrec_, 1);
  }

  void help_deq(Handle& h, int tid, uint64_t phase) {
    while (still_pending(h, tid, phase)) {
      Node* first = node_hp_.protect(h.nrec_, 0, *head_);
      Node* last = tail_->load(std::memory_order_seq_cst);
      Node* next = first->next.load(std::memory_order_seq_cst);
      node_hp_.set_hazard(h.nrec_, 1, next);
      if (first != head_->load(std::memory_order_seq_cst)) continue;
      if (first == last) {
        if (next == nullptr) {
          // Queue observed empty: close with a null result node.
          OpDesc* cur = desc_hp_.protect(h.drec_, 0, state_[tid].desc);
          if (last != tail_->load(std::memory_order_seq_cst)) {
            desc_hp_.clear(h.drec_, 0);
            continue;
          }
          if (cur != nullptr && !cur->enqueue && cur->pending &&
              cur->phase <= phase) {
            auto* done = new OpDesc(cur->phase, false, false, nullptr);
            OpDesc* expected = cur;
            if (state_[tid].desc.compare_exchange_strong(
                    expected, done, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
              desc_hp_.retire(h.drec_, cur);
            } else {
              delete done;
            }
          }
          desc_hp_.clear(h.drec_, 0);
          // loop re-checks still_pending (an enqueue may have landed)
        } else {
          help_finish_enq(h);  // tail lagging behind an in-flight enqueue
        }
      } else {
        OpDesc* cur = desc_hp_.protect(h.drec_, 0, state_[tid].desc);
        bool usable = cur != nullptr && !cur->enqueue && cur->pending &&
                      cur->phase <= phase;
        if (!usable) {
          desc_hp_.clear(h.drec_, 0);
          break;
        }
        // Announce (or re-announce after losing a race for an older
        // sentinel) the current head as the node being dequeued.
        if (first == head_->load(std::memory_order_seq_cst) &&
            cur->node != first) {
          auto* ann = new OpDesc(cur->phase, true, false, first);
          OpDesc* expected = cur;
          if (!state_[tid].desc.compare_exchange_strong(
                  expected, ann, std::memory_order_seq_cst,
                  std::memory_order_relaxed)) {
            delete ann;
            desc_hp_.clear(h.drec_, 0);
            continue;  // descriptor changed under us; re-read everything
          }
          desc_hp_.retire(h.drec_, cur);
        }
        desc_hp_.clear(h.drec_, 0);
        // Stamp the sentinel with the dequeuer's id; first stamp wins.
        int expected_tid = kNoThread;
        first->deq_tid.compare_exchange_strong(expected_tid, tid,
                                               std::memory_order_seq_cst,
                                               std::memory_order_relaxed);
        help_finish_deq(h);
      }
    }
    node_hp_.clear(h.nrec_, 0);
    node_hp_.clear(h.nrec_, 1);
  }

  /// Finish the stamped dequeue at the current head: copy the value into a
  /// closing descriptor, install it, then swing the head.
  void help_finish_deq(Handle& h) {
    Node* first = node_hp_.protect(h.nrec_, 2, *head_);
    Node* next = first->next.load(std::memory_order_seq_cst);
    // Hazard `next` BEFORE re-validating head: if the validation passes,
    // `next` was not yet dequeued at that instant, so its retirement (which
    // only follows a later head swing) cannot have preceded our hazard.
    node_hp_.set_hazard(h.nrec_, 1, next);
    if (first != head_->load(std::memory_order_seq_cst)) {
      node_hp_.clear(h.nrec_, 1);
      node_hp_.clear(h.nrec_, 2);
      return;
    }
    int tid = first->deq_tid.load(std::memory_order_seq_cst);
    if (tid < 0 || next == nullptr) {
      node_hp_.clear(h.nrec_, 1);
      node_hp_.clear(h.nrec_, 2);
      return;
    }
    OpDesc* cur = desc_hp_.protect(h.drec_, 0, state_[tid].desc);
    if (cur != nullptr && !cur->enqueue && cur->pending &&
        cur->node == first) {
      // Copy the result value under the `next` hazard (GC substitute).
      auto* done = new OpDesc(cur->phase, false, false, first, next->value);
      OpDesc* expected = cur;
      if (state_[tid].desc.compare_exchange_strong(
              expected, done, std::memory_order_seq_cst,
              std::memory_order_relaxed)) {
        desc_hp_.retire(h.drec_, cur);
      } else {
        delete done;
      }
    }
    desc_hp_.clear(h.drec_, 0);
    head_->compare_exchange_strong(first, next, std::memory_order_seq_cst,
                                   std::memory_order_relaxed);
    node_hp_.clear(h.nrec_, 1);
    node_hp_.clear(h.nrec_, 2);
  }

  const unsigned nthreads_;
  CacheAligned<std::atomic<Node*>> head_;
  CacheAligned<std::atomic<Node*>> tail_;
  std::vector<ThreadState> state_;
  NodeDomain node_hp_;
  DescDomain desc_hp_;
};

}  // namespace wfq::baselines
