// The statistically rigorous measurement procedure of §5.1 (following
// Georges et al., OOPSLA'07):
//
//  * per invocation: up to `max_iterations` benchmark iterations; steady
//    state is reached at the first window of `window` (5) consecutive
//    iterations whose coefficient of variation drops below `cov_threshold`
//    (0.02); if never, the lowest-COV window is used. The invocation's
//    score is the mean of that window.
//  * `invocations` (10) independent invocations (fresh queue instance each,
//    standing in for the paper's separate process invocations — documented
//    substitution) yield a 95% Student-t confidence interval.
//
// Scaled-down defaults keep the full Figure-2 sweep tractable on a laptop;
// every knob is overridable via WFQ_* environment variables.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "harness/stats.hpp"

namespace wfq::bench {

struct MethodologyConfig {
  unsigned max_iterations = 8;   // paper: 20
  unsigned window = 5;           // paper: 5
  double cov_threshold = 0.02;   // paper: 0.02
  unsigned invocations = 3;      // paper: 10
  /// Warm-up-until-stable: up to this many iterations run and are
  /// DISCARDED before measurement starts, ending early at the first
  /// `window` consecutive warm-up scores whose COV drops below
  /// cov_threshold (the JIT-warm-up analogue of Georges et al. §; here it
  /// absorbs cold caches, first-touch page faults and segment-pool
  /// filling). 0 — the default, and the pre-fig2 behavior — skips the
  /// phase entirely.
  unsigned warmup = 0;

  /// Reads WFQ_ITERATIONS / WFQ_WINDOW / WFQ_COV / WFQ_INVOCATIONS /
  /// WFQ_WARMUP.
  static MethodologyConfig from_env() {
    MethodologyConfig c;
    if (const char* s = std::getenv("WFQ_ITERATIONS")) {
      c.max_iterations = unsigned(std::strtoul(s, nullptr, 10));
    }
    if (const char* s = std::getenv("WFQ_WARMUP")) {
      c.warmup = unsigned(std::strtoul(s, nullptr, 10));
    }
    if (const char* s = std::getenv("WFQ_WINDOW")) {
      c.window = unsigned(std::strtoul(s, nullptr, 10));
    }
    if (const char* s = std::getenv("WFQ_COV")) {
      c.cov_threshold = std::strtod(s, nullptr);
    }
    if (const char* s = std::getenv("WFQ_INVOCATIONS")) {
      c.invocations = unsigned(std::strtoul(s, nullptr, 10));
    }
    if (c.window < 1) c.window = 1;
    if (c.max_iterations < c.window) c.max_iterations = c.window;
    if (c.invocations < 1) c.invocations = 1;
    return c;
  }
};

/// One invocation: runs `iteration` up to max_iterations times and returns
/// the steady-state mean of its scores (higher = better, e.g. Mops/s).
inline double measure_invocation(const MethodologyConfig& cfg,
                                 const std::function<double()>& iteration) {
  // Warm-up-until-stable (discarded): stop early once the trailing window
  // of warm-up scores is already steady — further warm-up would just burn
  // time the measured iterations below will re-prove.
  if (cfg.warmup > 0) {
    std::vector<double> warm;
    warm.reserve(cfg.warmup);
    for (unsigned i = 0; i < cfg.warmup; ++i) {
      warm.push_back(iteration());
      if (warm.size() >= cfg.window) {
        std::vector<double> w(warm.end() - cfg.window, warm.end());
        if (cov(w) < cfg.cov_threshold) break;
      }
    }
  }
  std::vector<double> scores;
  scores.reserve(cfg.max_iterations);
  for (unsigned i = 0; i < cfg.max_iterations; ++i) {
    scores.push_back(iteration());
    // Early exit once a steady window exists (saves laptop time; the
    // paper's fixed 20 iterations are equivalent when the COV test fires).
    if (scores.size() >= cfg.window) {
      std::vector<double> w(scores.end() - cfg.window, scores.end());
      if (cov(w) < cfg.cov_threshold) {
        return mean(w);
      }
    }
  }
  std::size_t start =
      steady_state_window_start(scores, cfg.window, cfg.cov_threshold);
  std::vector<double> w(scores.begin() + start,
                        scores.begin() + start + cfg.window);
  return mean(w);
}

/// Full procedure: `make_invocation` must return a fresh iteration functor
/// (with fresh state, e.g. a new queue) for each invocation.
inline ConfidenceInterval measure(
    const MethodologyConfig& cfg,
    const std::function<std::function<double()>()>& make_invocation) {
  std::vector<double> invocation_means;
  invocation_means.reserve(cfg.invocations);
  for (unsigned i = 0; i < cfg.invocations; ++i) {
    auto iteration = make_invocation();
    invocation_means.push_back(measure_invocation(cfg, iteration));
  }
  return confidence_interval_95(invocation_means);
}

}  // namespace wfq::bench
