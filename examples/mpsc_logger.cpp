// MPSC logger example: many producer threads emit structured log records
// through the wait-free queue to one writer thread — the classic
// low-latency-logging architecture where the emitting threads must never
// block (an emitter stalled inside a logging call would violate its own
// latency budget; wait-free enqueue caps the cost).
//
//   $ ./mpsc_logger [records] [producers]
//
// Demonstrates: boxed struct payloads, a clean shutdown protocol (sentinel
// records), and enqueue-side latency accounting.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "core/wf_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

enum class Severity : uint8_t { kDebug, kInfo, kWarn, kError };

struct LogRecord {
  Severity severity = Severity::kInfo;
  uint32_t producer = 0;
  uint64_t seq = 0;
  Clock::time_point emitted{};
  std::string message;
  bool shutdown = false;  // sentinel: producer finished
};

class Logger {
 public:
  explicit Logger(unsigned producers)
      : producers_(producers), writer_([this] { writer_loop(); }) {}

  ~Logger() { wait(); }

  /// Blocks until the writer drained every producer's shutdown sentinel.
  void wait() {
    if (writer_.joinable()) writer_.join();
  }

  /// Wait-free from the caller's perspective (one boxed enqueue).
  void log(wfq::WFQueue<LogRecord>::Handle& h, LogRecord rec) {
    rec.emitted = Clock::now();
    queue_.enqueue(h, std::move(rec));
  }

  /// Each producer sends one shutdown sentinel when done.
  void finish(wfq::WFQueue<LogRecord>::Handle& h) {
    LogRecord rec;
    rec.shutdown = true;
    queue_.enqueue(h, std::move(rec));
  }

  wfq::WFQueue<LogRecord>& queue() { return queue_; }

  uint64_t written() const { return written_.load(); }
  uint64_t dropped_debug() const { return dropped_debug_.load(); }
  double max_delivery_ms() const {
    return double(max_delivery_ns_.load()) / 1e6;
  }

 private:
  void writer_loop() {
    auto h = queue_.get_handle();
    unsigned live = producers_;
    uint64_t max_ns = 0;
    while (live > 0) {
      auto rec = queue_.dequeue(h);
      if (!rec.has_value()) continue;  // empty: poll again
      if (rec->shutdown) {
        --live;
        continue;
      }
      auto ns = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - rec->emitted)
                             .count());
      if (ns > max_ns) max_ns = ns;
      if (rec->severity == Severity::kDebug) {
        dropped_debug_.fetch_add(1);  // "sink" filters debug noise
      } else {
        written_.fetch_add(1);
        // A real sink would write to disk; this one just accounts bytes.
        bytes_ += rec->message.size();
      }
    }
    max_delivery_ns_.store(max_ns);
  }

  wfq::WFQueue<LogRecord> queue_;
  const unsigned producers_;
  std::atomic<uint64_t> written_{0}, dropped_debug_{0};
  std::atomic<uint64_t> max_delivery_ns_{0};
  uint64_t bytes_ = 0;
  std::thread writer_;
};

}  // namespace

int main(int argc, char** argv) {
  const uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const unsigned producers =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 3;

  auto t0 = Clock::now();
  Logger logger(producers);
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      auto h = logger.queue().get_handle();
      wfq::Xorshift128Plus rng(p + 7);
      const uint64_t mine =
          records / producers + (p == 0 ? records % producers : 0);
      for (uint64_t i = 0; i < mine; ++i) {
        LogRecord rec;
        rec.producer = p;
        rec.seq = i;
        rec.severity = static_cast<Severity>(rng.next_below(4));
        rec.message = "event " + std::to_string(i) + " from producer " +
                      std::to_string(p);
        logger.log(h, std::move(rec));
      }
      logger.finish(h);
    });
  }
  for (auto& t : ts) t.join();
  logger.wait();  // writer drains every sentinel, then exits
  uint64_t written = logger.written();
  uint64_t dropped = logger.dropped_debug();
  double max_ms = logger.max_delivery_ms();
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  std::printf("logger: %llu records written, %llu debug-filtered, in %.3fs "
              "(%.2f Mrec/s)\n",
              (unsigned long long)written, (unsigned long long)dropped, secs,
              double(written + dropped) / secs / 1e6);
  std::printf("worst emit-to-sink delivery: %.3f ms\n", max_ms);
  const bool ok = written + dropped == records;
  std::printf("conservation check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
