// The paper's Listing 1: the obstruction-free FAA queue over an "infinite"
// array — realized, like the wait-free queue that hardens it, over the
// shared segment layer (core/segment_list.hpp) with pluggable reclamation
// (memory/segment_reclaim.hpp). It is pedagogically useful, serves as a
// differential-testing oracle at small scales, and demonstrates the
// livelock the paper describes (an enqueuer and dequeuer can starve each
// other, which the wait-free construction eliminates).
//
// Listing 1 itself has no per-thread state; the Handle here exists for the
// segment layer (thread-local segment pointers, reclamation-policy state),
// not for the algorithm. Consumed segments are reclaimed by the configured
// policy instead of leaking, so the queue sustains unbounded operation
// counts in bounded memory — unless an index capacity is set, in which
// case enqueue/dequeue throw std::length_error once the index space is
// exhausted (capacity is consumed by *indices*, not live values: every
// enqueue and every dequeue burns at least one cell).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/segment_queue_base.hpp"
#include "core/slot_codec.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq {

/// One Listing-1 cell: just a value slot (no request pointers — Listing 1
/// has no helping). `reset()` is the SegmentList pool-recycling hook.
struct ObsCell {
  std::atomic<uint64_t> val{kSlotBot};

  void reset() { val.store(kSlotBot, std::memory_order_relaxed); }
};

template <class T, class Traits = DefaultWfTraits>
class ObstructionQueue : private SegmentQueueBase<ObsCell, Traits> {
  using Base = SegmentQueueBase<ObsCell, Traits>;
  using Codec = SlotCodec<T>;
  using typename Base::Segment;
  static constexpr uint64_t kBot = kSlotBot;
  static constexpr uint64_t kTop = kSlotTop;

 public:
  using value_type = T;
  using Handle = typename Base::HandleGuard;

  /// `capacity` bounds the *index space* (0 = unbounded, the default: the
  /// reclamation policy keeps memory bounded instead). `max_garbage` is
  /// the reclamation threshold, as in WfConfig.
  explicit ObstructionQueue(std::size_t capacity = 0, int64_t max_garbage = 64)
      : Base(max_garbage), capacity_(capacity) {}

  ~ObstructionQueue() {
    if constexpr (Codec::kBoxed) {
      // Free still-boxed payloads: exactly the cells in [H, T) holding a
      // value. Cells below H were consumed (their slot words are stale) and
      // cells at or above T are untouched. Reclaimed segments hold only
      // consumed indices, so walking the live list covers [H, T).
      const uint64_t h = head_->load(std::memory_order_relaxed);
      const uint64_t t = tail_->load(std::memory_order_relaxed);
      for (Segment* s = this->segs_.first(std::memory_order_relaxed);
           s != nullptr; s = s->next.load(std::memory_order_relaxed)) {
        for (std::size_t j = 0; j < Base::kSegmentSize; ++j) {
          const uint64_t idx = uint64_t(s->id) * Base::kSegmentSize + j;
          if (idx < h || idx >= t) continue;
          uint64_t v = s->cells[j].val.load(std::memory_order_relaxed);
          if (v != kBot && v != kTop) Codec::destroy_slot(v);
        }
      }
    }
  }

  Handle get_handle() { return Handle(*this); }

  /// Listing 1 enqueue: FAA an index, CAS the value in; retry on a cell a
  /// dequeuer already marked unusable. Obstruction-free, not wait-free.
  void enqueue(Handle& h, T v) {
    uint64_t slot = Codec::encode(std::move(v));
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->tail);
    for (;;) {
      uint64_t t = tail_->fetch_add(1, std::memory_order_seq_cst);
      if (capacity_ != 0 && t >= capacity_) {
        this->rcl_.end_op(hp);
        Codec::destroy_slot(slot);
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      ObsCell* c = this->cell_at(hp, hp->tail, t, "obs_enq");
      uint64_t expected = kBot;
      if (c->val.compare_exchange_strong(expected, slot,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
        this->rcl_.end_op(hp);
        return;
      }
    }
  }

  /// Listing 1 dequeue: FAA an index; mark the cell unusable; a failure to
  /// mark means a value is present. EMPTY when the head catches the tail.
  std::optional<T> dequeue(Handle& h) {
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->head);
    for (;;) {
      uint64_t i = head_->fetch_add(1, std::memory_order_seq_cst);
      if (capacity_ != 0 && i >= capacity_) {
        this->rcl_.end_op(hp);
        throw std::length_error("ObstructionQueue index space exhausted");
      }
      ObsCell* c = this->cell_at(hp, hp->head, i, "obs_deq");
      uint64_t expected = kBot;
      if (!c->val.compare_exchange_strong(expected, kTop,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
        // Cell already holds a value (CAS failed on non-⊥): take it.
        this->rcl_.end_op(hp);
        this->poll_reclaim(hp, *head_, *tail_);
        return Codec::decode(expected);
      }
      if (tail_->load(std::memory_order_seq_cst) <= i) {
        this->rcl_.end_op(hp);
        this->poll_reclaim(hp, *head_, *tail_);
        return std::nullopt;  // no enqueue has claimed index i: empty
      }
      // Otherwise an enqueue is in flight at or past i; try the next cell.
    }
  }

  uint64_t head_index() const {
    return head_->load(std::memory_order_acquire);
  }
  uint64_t tail_index() const {
    return tail_->load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }

  using Base::live_segments;
  using Base::peak_live_segments;
  using Base::reclaimer;
  using Base::segments_outstanding;

 private:
  CacheAligned<std::atomic<uint64_t>> tail_{0};  // T
  CacheAligned<std::atomic<uint64_t>> head_{0};  // H
  std::size_t capacity_;
};

}  // namespace wfq
