// NUMA topology probe and placement policy for the sharded layer.
//
// The sharded queue wants each lane's memory — its segments and, above all,
// its PR-4 reserve_segments pool — faulted on the memory node of the
// threads that will hammer it. Getting the topology is the only part that
// is platform-specific, so it is isolated here behind one struct:
//
//   NumaTopology::get()   probed once per process, three sources in order:
//     1. libnuma, iff <numa.h> is available at compile time AND
//        numa_available() succeeds at runtime (the library is optional —
//        this repo must build on hosts with only the runtime .so, or
//        neither);
//     2. the portable sysfs fallback: /sys/devices/system/node/node*/cpulist
//        (Linux, no library needed);
//     3. a single synthetic node covering every hardware thread, which is
//        also the truthful answer on UMA machines and non-Linux hosts.
//
// Placement itself needs no libnuma either: Linux allocates pages on the
// node of the thread that first touches them, so binding the constructing
// thread to a node's cpuset (NumaBinder) while a lane allocates its
// segments and pre-faults its reserve pool IS the placement policy. The
// same trick is what interleaved lane construction uses; there is no
// mbind() dependency anywhere.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cpu.hpp"

#if defined(__linux__)
#include <sched.h>
#endif
#if __has_include(<numa.h>)
#include <numa.h>
#define WFQ_HAVE_LIBNUMA 1
#endif

namespace wfq::scale {

/// Lane-placement policy of a ShardedQueue (mirrored by the C API's
/// wfq_options_t.numa_mode).
enum class NumaMode : int {
  kNone = 0,        ///< no binding: lanes allocate wherever they are built
  kInterleave = 1,  ///< lane i is faulted on node i % nodes (spread load)
  kLocal = 2,       ///< interleaved placement + handles prefer a same-node
                    ///< lane as their home (producer-local traffic)
};

struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

namespace detail {

/// Parses the kernel's cpulist format ("0-3,8,10-11") into CPU ids.
/// Malformed input yields the CPUs parsed so far — the probe degrades, it
/// never fails.
inline std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] < '0' || s[i] > '9') break;
    int lo = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      lo = lo * 10 + (s[i++] - '0');
    }
    int hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (i >= s.size() || s[i] < '0' || s[i] > '9') break;
      hi = 0;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        hi = hi * 10 + (s[i++] - '0');
      }
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < s.size() && s[i] == ',') ++i;
  }
  return cpus;
}

inline bool read_small_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "re");
  if (!f) return false;
  char buf[4096];
  std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out.assign(buf, n);
  return true;
}

}  // namespace detail

/// The machine's node -> cpus map. Probe once with get(); tests construct
/// their own instances to exercise the synthetic paths.
struct NumaTopology {
  std::vector<NumaNode> nodes;

  int num_nodes() const noexcept { return int(nodes.size()); }

  /// Node owning `cpu`; node 0 for CPUs the probe never saw (hotplug,
  /// truncated masks) so every caller gets a valid lane placement.
  int node_of_cpu(int cpu) const noexcept {
    for (const NumaNode& n : nodes) {
      for (int c : n.cpus) {
        if (c == cpu) return n.id;
      }
    }
    return nodes.empty() ? 0 : nodes.front().id;
  }

  /// UMA fallback: one node spanning every hardware thread.
  static NumaTopology single_node() {
    NumaTopology t;
    NumaNode n;
    n.id = 0;
    const unsigned hw = hardware_threads();
    for (unsigned c = 0; c < hw; ++c) n.cpus.push_back(int(c));
    t.nodes.push_back(std::move(n));
    return t;
  }

  static NumaTopology probe() {
#ifdef WFQ_HAVE_LIBNUMA
    if (numa_available() != -1) {
      NumaTopology t;
      const int max_node = numa_max_node();
      struct bitmask* bm = numa_allocate_cpumask();
      for (int node = 0; node <= max_node; ++node) {
        if (numa_node_to_cpus(node, bm) != 0) continue;
        NumaNode n;
        n.id = node;
        for (unsigned c = 0; c < bm->size; ++c) {
          if (numa_bitmask_isbitset(bm, c)) n.cpus.push_back(int(c));
        }
        if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
      }
      numa_free_cpumask(bm);
      if (!t.nodes.empty()) return t;
    }
#endif
#if defined(__linux__)
    {
      NumaTopology t;
      for (int node = 0; node < 1024; ++node) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%d/cpulist", node);
        std::string cpulist;
        if (!detail::read_small_file(path, cpulist)) {
          // Node ids are dense on Linux; the first gap ends the scan.
          break;
        }
        NumaNode n;
        n.id = node;
        n.cpus = detail::parse_cpulist(cpulist);
        if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
      }
      if (!t.nodes.empty()) return t;
    }
#endif
    return single_node();
  }

  /// The process-wide topology, probed on first use.
  static const NumaTopology& get() {
    static const NumaTopology t = probe();
    return t;
  }
};

/// RAII: binds the calling thread to one node's cpuset, restoring the
/// previous affinity mask on destruction. Used around lane construction so
/// first-touch puts the lane's segments and reserve pool on its node.
/// Every failure path (non-Linux, empty node, EPERM from sched_setaffinity)
/// degrades to a no-op — placement is a performance policy, never a
/// correctness dependency.
class NumaBinder {
 public:
  NumaBinder(const NumaTopology& topo, int node) {
#if defined(__linux__)
    const NumaNode* target = nullptr;
    for (const NumaNode& n : topo.nodes) {
      if (n.id == node) target = &n;
    }
    if (!target || target->cpus.empty()) return;
    if (sched_getaffinity(0, sizeof(saved_), &saved_) != 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int c : target->cpus) {
      if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
    }
    bound_ = sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)topo;
    (void)node;
#endif
  }

  ~NumaBinder() {
#if defined(__linux__)
    if (bound_) (void)sched_setaffinity(0, sizeof(saved_), &saved_);
#endif
  }

  NumaBinder(const NumaBinder&) = delete;
  NumaBinder& operator=(const NumaBinder&) = delete;

  bool bound() const noexcept { return bound_; }

 private:
  bool bound_ = false;
#if defined(__linux__)
  cpu_set_t saved_ = {};
#endif
};

/// Node on which lane `lane` of `shards` should be placed, or -1 for "do
/// not bind". Both interleave and local use the same round-robin placement;
/// they differ in how handles pick their home lane, not where lanes live.
inline int node_for_lane(const NumaTopology& topo, NumaMode mode,
                         std::size_t lane) {
  if (mode == NumaMode::kNone || topo.num_nodes() <= 1) return -1;
  return topo.nodes[lane % std::size_t(topo.num_nodes())].id;
}

/// Node of the calling thread's current CPU (node 0 when the platform
/// cannot say), for NumaMode::kLocal home-lane selection.
inline int current_node(const NumaTopology& topo) {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return topo.node_of_cpu(cpu);
#endif
  return topo.nodes.empty() ? 0 : topo.nodes.front().id;
}

}  // namespace wfq::scale
