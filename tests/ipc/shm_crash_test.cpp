// Real kill-9 coverage: children are fork()ed, attach the arena, and
// raise(SIGKILL) at a named injection point via a Traits injector — the
// same seam tools/soak --shm --kill9 drives at scale. Each test pins one
// crash window to its documented recovery outcome:
//
//   shm_enq_ticketed   ticket taken, no deposit  -> cell poisoned, value
//                                                   never appears (enqueue
//                                                   never returned = never
//                                                   promised)
//   shm_enq_deposited  deposit landed            -> value delivered once
//   shm_deq_ticketed   ticket taken, not taken   -> value rescued into the
//                                                   ring and redelivered
//   shm_deq_taken      committed after pre()     -> journal has it; NOT
//                                                   redelivered (consumed)
//
// gtest runs each TEST in its own ctest process (gtest_discover_tests), so
// the fork/waitpid choreography never collides across tests.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "ipc/shm_queue.hpp"

namespace {

using wfq::ipc::ArenaStatus;
using wfq::ipc::ShmOptions;
using wfq::ipc::ShmPop;
using wfq::ipc::ShmPush;

/// Injector whose only action is the real thing: SIGKILL the calling
/// process at an armed point. Armed state is process-local (plain statics),
/// so the parent arms nothing and the child arms after fork.
struct Kill9Injector {
  static constexpr bool kEnabled = true;
  static inline const char* arm_point = nullptr;
  static inline unsigned countdown = 0;  // fire on the Nth visit (1-based)
  struct SuppressScope {
    SuppressScope() noexcept {}
  };
  static void arm(const char* point, unsigned nth = 1) {
    arm_point = point;
    countdown = nth;
  }
  static void inject(const char* point) {
    if (arm_point == nullptr || std::strcmp(point, arm_point) != 0) return;
    if (--countdown == 0) ::raise(SIGKILL);
  }
};

struct Kill9Traits {
  using Injector = Kill9Injector;
};

using ShmQ = wfq::ipc::ShmQueue<>;           // parent: no injection
using KillQ = wfq::ipc::ShmQueue<Kill9Traits>;  // child: SIGKILL seam

std::string temp_path(const char* tag) {
  return "/tmp/wfq_crash_test_" + std::to_string(::getpid()) + "_" + tag;
}

struct QueueFile {
  std::string path;
  explicit QueueFile(const char* tag) : path(temp_path(tag)) {}
  ~QueueFile() { wfq::ipc::ShmArena::destroy(path.c_str()); }
};

ShmOptions opts() {
  ShmOptions o;
  o.max_procs = 8;
  o.seg_cells = 64;
  o.rescue_slots = 32;
  return o;
}

/// Fork a child that attaches the arena and runs `body(queue)`; assert it
/// died by SIGKILL (the injector fired). The child never returns from body
/// on the armed path; reaching the end is reported as a normal exit, which
/// the parent treats as "injection point unreached" and fails on.
template <class Body>
void run_killed_child(const std::string& path, Body&& body) {
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    KillQ q;
    if (KillQ::attach(path.c_str(), &q) != ArenaStatus::kOk) _exit(3);
    body(q);
    _exit(0);  // injector never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status)
                                   << " instead of dying at the armed point";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(ShmCrash, EnqueueKilledBeforeDepositIsPoisonedNotDelivered) {
  QueueFile f("enq_ticketed");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(1), ShmPush::kOk);
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_enq_ticketed");
    cq.enqueue(666);  // dies with the ticket taken, cell still EMPTY
  });

  EXPECT_GE(q.recover(), 1u);
  EXPECT_GE(q.peer_deaths(), 1u);
  EXPECT_GE(q.shm_adoptions(), 1u);  // the orphan cell was poisoned

  // Drain everything: 666 must NOT appear (its enqueue never returned),
  // and the pre-crash value must.
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty);

  // The dead peer's ticket is terminal (poisoned): new traffic flows.
  ASSERT_EQ(q.enqueue(2), ShmPush::kOk);
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 2u);
}

TEST(ShmCrash, EnqueueKilledAfterDepositIsDeliveredExactlyOnce) {
  QueueFile f("enq_deposited");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_enq_deposited");
    cq.enqueue(42);  // dies with the deposit committed
  });

  q.recover();
  EXPECT_GE(q.peer_deaths(), 1u);
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty) << "deposit delivered twice";
}

TEST(ShmCrash, DequeueKilledAfterTicketGetsValueRescued) {
  QueueFile f("deq_ticketed");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(1234), ShmPush::kOk);
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_deq_ticketed");
    std::uint64_t v = 0;
    cq.dequeue(&v);  // dies holding the only ticket that visits the cell
  });

  q.recover();
  EXPECT_GE(q.peer_deaths(), 1u);
  EXPECT_GE(q.shm_adoptions(), 1u);  // rescued into the ring

  // Without recovery this value would be stranded forever (its ticket is
  // consumed); the rescue ring redelivers it.
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 1234u);
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty);
}

TEST(ShmCrash, DequeueKilledAfterCommitIsJournaledNotRedelivered) {
  QueueFile f("deq_taken");
  ShmQ q;
  ShmOptions o = opts();
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, o, &q), ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(555), ShmPush::kOk);

  // The child journals into the arena itself (a spare allocation) via the
  // pre() hook — the pattern a crash-safe consumer uses: journal BEFORE the
  // commit CAS, so kill-after-commit can never lose the value.
  wfq::ipc::ShmOffset journal_off = 0;
  {
    // Reattach a raw arena view to carve the journal word out of the same
    // file (offsets are process-independent by construction).
    wfq::ipc::ShmArena av;
    ASSERT_EQ(wfq::ipc::ShmArena::attach(f.path.c_str(), &av),
              ArenaStatus::kOk);
    journal_off = av.alloc(sizeof(std::uint64_t));
    ASSERT_NE(journal_off, wfq::ipc::kNullOffset);
    *av.at<std::uint64_t>(journal_off) = 0;
  }

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    KillQ cq;
    if (KillQ::attach(f.path.c_str(), &cq) != ArenaStatus::kOk) _exit(3);
    wfq::ipc::ShmArena av;
    if (wfq::ipc::ShmArena::attach(f.path.c_str(), &av) != ArenaStatus::kOk) {
      _exit(4);
    }
    auto* journal = av.at<std::uint64_t>(journal_off);
    Kill9Injector::arm("shm_deq_taken");
    std::uint64_t v = 0;
    cq.dequeue(&v, [&](std::uint64_t seen) {
      *journal = seen;  // runs before the commit CAS; flushed by MAP_SHARED
    });
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  q.recover();
  // The value was consumed (commit CAS won) and journaled (pre ran first):
  // nothing to redeliver, nothing lost.
  {
    wfq::ipc::ShmArena av;
    ASSERT_EQ(wfq::ipc::ShmArena::attach(f.path.c_str(), &av),
              ArenaStatus::kOk);
    EXPECT_EQ(*av.at<std::uint64_t>(journal_off), 555u);
  }
  std::uint64_t out = 0;
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty)
      << "committed dequeue redelivered: duplicate without a lost journal";
}

TEST(ShmCrash, RingClaimerKilledMidClaimIsRevertedAndRedelivered) {
  QueueFile f("ring_claiming");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(808), ShmPush::kOk);

  // Strand the value: first child dies holding the dequeue ticket, so
  // recovery moves 808 into the rescue ring (entry Full, hint = 1).
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_deq_ticketed");
    std::uint64_t v = 0;
    cq.dequeue(&v);
  });
  q.recover();

  // Second child claims the ring entry (Full -> Claiming) and dies before
  // decrementing the rescued_pending hint — the drift window: the entry
  // must go back to Full and the hint must be RECOUNTED, not re-bumped,
  // or it overcounts forever and empty-queue parking degrades to a spin.
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_rescue_claiming");
    std::uint64_t v = 0;
    cq.dequeue(&v);
  });
  q.recover();

  // The reverted entry redelivers exactly once.
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 808u);
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty);

  // Drained queue with a reconciled hint: a timed pop must PARK and time
  // out (a drifted hint would keep the recheck loop spinning; parking
  // still honors the deadline, so assert via the stats-free observable —
  // recover() after the drain reports nothing left to reclaim).
  q.recover();
  EXPECT_FALSE(q.pop_wait_until(
      &out, std::chrono::steady_clock::now() + std::chrono::milliseconds(50)));
}

TEST(ShmCrash, DeadPeerSlotIsReclaimedForNewAttachers) {
  QueueFile f("slot_reclaim");
  ShmQ q;
  ShmOptions o = opts();
  o.max_procs = 2;  // creator + exactly one peer
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, o, &q), ArenaStatus::kOk);

  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_enq_pending");
    cq.enqueue(9);  // dies holding the only free slot
  });
  // attach() runs recover() itself: the dead peer's slot must be reusable
  // without the parent lifting a finger.
  ShmQ peer;
  ASSERT_EQ(ShmQ::attach(f.path.c_str(), &peer), ArenaStatus::kOk);
  EXPECT_GE(q.peer_deaths(), 1u);
  peer.detach();
}

TEST(ShmCrash, RecoverySurvivesRecovererDeath) {
  QueueFile f("recover_killed");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(31), ShmPush::kOk);

  // First child dies mid-dequeue (value stranded) ...
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_deq_ticketed");
    std::uint64_t v = 0;
    cq.dequeue(&v);
  });
  // ... second child dies INSIDE recover(), holding the recovery lock,
  // partway through the slot scan.
  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_recover_scan", 2);
    cq.recover();
  });

  // A surviving process steals the dead recoverer's lock and finishes the
  // job; the stranded value is still redelivered exactly once.
  q.recover();
  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 31u);
  EXPECT_EQ(q.dequeue(&out), ShmPop::kEmpty);
}

TEST(ShmCrash, ParkedConsumerIsWokenByPeerProcessEnqueue) {
  QueueFile f("xproc_wake");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: plain peer (no injection), enqueues after a delay long enough
    // for the parent to be futex-parked, then exits cleanly.
    ShmQ cq;
    if (ShmQ::attach(f.path.c_str(), &cq) != ArenaStatus::kOk) _exit(3);
    ::usleep(100 * 1000);
    if (cq.enqueue(4242) != ShmPush::kOk) _exit(5);
    cq.detach();
    _exit(0);
  }
  std::uint64_t out = 0;
  // SharedFutex (no PRIVATE flag): the child's wake crosses the process
  // boundary and releases this parked wait.
  EXPECT_TRUE(q.pop_wait_until(
      &out, std::chrono::steady_clock::now() + std::chrono::seconds(10)));
  EXPECT_EQ(out, 4242u);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// The gated recovery path must keep the same rescue promptness as calling
// recover() unconditionally: a peer killed mid-dequeue leaves its (pid,
// start_time) pair in every prober's snapshot (graceless deaths never
// bump peer_gen), so the very next maybe_recover() escalates, reclaims
// the slot, and redelivers the stranded value through the rescue ring.
TEST(ShmCrash, MaybeRecoverEscalatesOnKilledPeerAndRescues) {
  QueueFile f("probe_detect");
  ShmQ q;
  ASSERT_EQ(ShmQ::create(f.path.c_str(), 1 << 20, opts(), &q),
            ArenaStatus::kOk);
  ASSERT_EQ(q.enqueue(31), ShmPush::kOk);

  run_killed_child(f.path, [](KillQ& cq) {
    Kill9Injector::arm("shm_deq_ticketed");
    std::uint64_t v = 0;
    cq.dequeue(&v);  // dies holding the ticket for value 31
  });

  EXPECT_EQ(q.recover_full_runs(), 0u);
  EXPECT_GE(q.maybe_recover(), 1u);  // escalated AND reclaimed the slot
  EXPECT_EQ(q.recover_full_runs(), 1u);
  EXPECT_GE(q.peer_deaths(), 1u);

  std::uint64_t out = 0;
  ASSERT_EQ(q.dequeue(&out), ShmPop::kOk);
  EXPECT_EQ(out, 31u);

  // Quiet again: the post-recover snapshot is corpse-free, so subsequent
  // probes go back to doing O(1) work.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(q.maybe_recover(), 0u);
  EXPECT_EQ(q.recover_full_runs(), 1u);
}

}  // namespace
