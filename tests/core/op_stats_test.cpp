// OpStats X-macro table and aggregation algebra: every counter is declared
// exactly once in wfq_stats_fields.h, so kFieldCount, for_each_field, add()
// and reset() must all see the same set. raise_max is a CAS loop — the old
// load-compare-store could lose a concurrent larger value, which is the
// regression the concurrent test pins.
#include "core/op_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace wfq {
namespace {

TEST(OpStats, FieldTableIsTheSingleSourceOfTruth) {
  OpStats s;
  std::vector<std::string> names;
  s.for_each_field([&](const char* name, uint64_t v) {
    names.push_back(name);
    EXPECT_EQ(v, 0u) << name << " must start at zero";
  });
  EXPECT_EQ(names.size(), OpStats::kFieldCount);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size())
      << "duplicate field in the X-macro table";
  // The struct is nothing but the table's atomics (also a static_assert in
  // the header; this keeps the property visible in a test report).
  EXPECT_EQ(sizeof(OpStats),
            OpStats::kFieldCount * sizeof(std::atomic<uint64_t>));
}

TEST(OpStats, AddSumsCountersAndMaxesHighWaterMarks) {
  OpStats a, b;
  a.enq_fast.store(10);
  a.max_enq_probes.store(7);
  a.max_deq_probes.store(100);
  b.enq_fast.store(5);
  b.max_enq_probes.store(50);
  b.max_deq_probes.store(3);
  a.add(b);
  EXPECT_EQ(a.enq_fast.load(), 15u);          // monotonic: summed
  EXPECT_EQ(a.max_enq_probes.load(), 50u);    // high-water: maxed
  EXPECT_EQ(a.max_deq_probes.load(), 100u);   // max keeps the larger side
}

TEST(OpStats, RaiseMaxNeverLowers) {
  std::atomic<uint64_t> m{10};
  OpStats::raise_max(m, 5);
  EXPECT_EQ(m.load(), 10u);
  OpStats::raise_max(m, 11);
  EXPECT_EQ(m.load(), 11u);
  OpStats::raise_max(m, 11);
  EXPECT_EQ(m.load(), 11u);
}

// The bugfix target: concurrent raise_max calls must converge on the global
// maximum. With the old unlocked load-compare-store, a thread holding a
// stale small read could overwrite a concurrently-raised larger value.
TEST(OpStats, RaiseMaxIsLosslessUnderContention) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::atomic<uint64_t> m{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      // Interleaved ascending ramps: every thread repeatedly publishes
      // values both above and below the running maximum.
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        OpStats::raise_max(m, i * kThreads + t);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.load(), kPerThread * kThreads + (kThreads - 1));
}

TEST(OpStats, ConcurrentAggregationKeepsMaxima) {
  // Many sources folded into one target from several threads at once — the
  // collect_stats() pattern. The final max must be the max over sources no
  // matter how the add() calls interleave.
  constexpr unsigned kSources = 16;
  OpStats sources[kSources];
  for (unsigned i = 0; i < kSources; ++i) {
    sources[i].deq_fast.store(i + 1);
    sources[i].max_enq_probes.store(100 + i);
  }
  OpStats total;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      for (unsigned i = t; i < kSources; i += 4) total.add(sources[i]);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(total.deq_fast.load(), uint64_t(kSources) * (kSources + 1) / 2);
  EXPECT_EQ(total.max_enq_probes.load(), 100u + kSources - 1);
}

TEST(OpStats, CopyIsASnapshotAndResetZeroes) {
  OpStats a;
  a.enq_slow.store(4);
  a.max_deq_probes.store(9);
  OpStats b = a;
  a.enq_slow.store(100);
  EXPECT_EQ(b.enq_slow.load(), 4u);
  EXPECT_EQ(b.max_deq_probes.load(), 9u);
  b.reset();
  b.for_each_field(
      [](const char* name, uint64_t v) { EXPECT_EQ(v, 0u) << name; });
}

}  // namespace
}  // namespace wfq
