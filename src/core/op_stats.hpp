// Operation-path counters for the wait-free queue.
//
// Table 2 of the paper reports, for WF-0 on Haswell, the percentage of
// enqueues/dequeues completed on the slow path and of dequeues returning
// EMPTY. These counters instrument exactly those paths. They are per-handle
// (thread-local, uncontended) relaxed atomics so that collection is safe
// while threads run; the increment cost is one uncontended cached add and
// does not perturb the measured operation.
#pragma once

#include <atomic>
#include <cstdint>

namespace wfq {

/// Per-handle path counters. All increments are relaxed; aggregation reads
/// are relaxed too (counts are only interpreted after a benchmark phase
/// joins its threads, or as an approximate running breakdown).
struct OpStats {
  std::atomic<uint64_t> enq_fast{0};   ///< enqueues completed on the fast path
  std::atomic<uint64_t> enq_slow{0};   ///< enqueues that fell back to enq_slow
  std::atomic<uint64_t> deq_fast{0};   ///< dequeues completed on the fast path
  std::atomic<uint64_t> deq_slow{0};   ///< dequeues that fell back to deq_slow
  std::atomic<uint64_t> deq_empty{0};  ///< dequeues that returned EMPTY
  std::atomic<uint64_t> cleanups{0};   ///< cleanup() passes that reclaimed
  std::atomic<uint64_t> segments_freed{0};  ///< segments returned to the OS

  // Batched operations (enqueue_bulk / dequeue_bulk). *_bulk_batches counts
  // calls; *_bulk_fast counts items completed on a prepaid ticket (one
  // shared FAA amortized over the batch). Items that fell back to per-item
  // operations are counted by the ordinary fast/slow counters above.
  std::atomic<uint64_t> enq_bulk_batches{0};  ///< enqueue_bulk calls
  std::atomic<uint64_t> enq_bulk_fast{0};     ///< items deposited via tickets
  std::atomic<uint64_t> deq_bulk_batches{0};  ///< dequeue_bulk calls
  std::atomic<uint64_t> deq_bulk_fast{0};     ///< items claimed via tickets

  // Blocking layer (src/sync/blocking_queue.hpp). `notify_calls` counts
  // futex-wake notifications actually issued by producers — the zero-fence
  // claim of ALGORITHM.md §10 is testable as "no-waiter workloads report
  // notify_calls == 0". `deq_parks` counts futex sleeps; a wakeup that
  // found the queue still empty (and not closed) is a spurious wakeup.
  std::atomic<uint64_t> deq_parks{0};             ///< consumer futex sleeps
  std::atomic<uint64_t> deq_spurious_wakeups{0};  ///< woke to still-empty
  std::atomic<uint64_t> notify_calls{0};          ///< producer-side wakes

  // Robustness layer (src/harness/fault_inject.hpp + orphan adoption + the
  // fallible allocation seam). The injected_* counters are nonzero only
  // under a ScriptedInjector; the rest also fire in production builds:
  // adopted_handles/orphan_drops when release_handle (or adopt_handle)
  // finishes an abandoned operation, alloc_failures/reserve_pool_hits when
  // segment allocation exhausts retries or falls back to the reserve pool.
  std::atomic<uint64_t> injected_stalls{0};   ///< scripted stall actions
  std::atomic<uint64_t> injected_crashes{0};  ///< scripted crash actions
  std::atomic<uint64_t> adopted_handles{0};   ///< orphaned handles adopted
  std::atomic<uint64_t> orphan_drops{0};      ///< values dropped adopting deqs
  std::atomic<uint64_t> alloc_failures{0};    ///< segment allocs failed clean
  std::atomic<uint64_t> reserve_pool_hits{0}; ///< allocs served by reserve
  std::atomic<uint64_t> oom_rescues{0};       ///< deposits retracted from
                                              ///< debt-parked cells and
                                              ///< re-enqueued (conservation
                                              ///< under OOM)

  // Empirical wait-freedom bound (§4): cells probed (find_cell calls) per
  // operation. Wait-freedom means max probes stays bounded by a function of
  // the thread count, never by the run length.
  std::atomic<uint64_t> enq_probes{0};      ///< total probes across enqueues
  std::atomic<uint64_t> deq_probes{0};      ///< total probes across dequeues
  std::atomic<uint64_t> max_enq_probes{0};  ///< worst single enqueue
  std::atomic<uint64_t> max_deq_probes{0};  ///< worst single dequeue

  OpStats() = default;
  // Copyable as a relaxed snapshot (atomics delete the default copy).
  OpStats(const OpStats& o) noexcept { *this = o; }
  OpStats& operator=(const OpStats& o) noexcept {
    reset();
    add(o);
    return *this;
  }

  void add(const OpStats& o) noexcept {
    auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    auto bump = [](std::atomic<uint64_t>& a, uint64_t v) {
      a.fetch_add(v, std::memory_order_relaxed);
    };
    auto raise = [&](std::atomic<uint64_t>& a, uint64_t v) {
      if (v > ld(a)) a.store(v, std::memory_order_relaxed);
    };
    bump(enq_fast, ld(o.enq_fast));
    bump(enq_slow, ld(o.enq_slow));
    bump(deq_fast, ld(o.deq_fast));
    bump(deq_slow, ld(o.deq_slow));
    bump(deq_empty, ld(o.deq_empty));
    bump(cleanups, ld(o.cleanups));
    bump(segments_freed, ld(o.segments_freed));
    bump(enq_bulk_batches, ld(o.enq_bulk_batches));
    bump(enq_bulk_fast, ld(o.enq_bulk_fast));
    bump(deq_bulk_batches, ld(o.deq_bulk_batches));
    bump(deq_bulk_fast, ld(o.deq_bulk_fast));
    bump(deq_parks, ld(o.deq_parks));
    bump(deq_spurious_wakeups, ld(o.deq_spurious_wakeups));
    bump(notify_calls, ld(o.notify_calls));
    bump(injected_stalls, ld(o.injected_stalls));
    bump(injected_crashes, ld(o.injected_crashes));
    bump(adopted_handles, ld(o.adopted_handles));
    bump(orphan_drops, ld(o.orphan_drops));
    bump(alloc_failures, ld(o.alloc_failures));
    bump(reserve_pool_hits, ld(o.reserve_pool_hits));
    bump(oom_rescues, ld(o.oom_rescues));
    bump(enq_probes, ld(o.enq_probes));
    bump(deq_probes, ld(o.deq_probes));
    raise(max_enq_probes, ld(o.max_enq_probes));
    raise(max_deq_probes, ld(o.max_deq_probes));
  }

  void reset() noexcept {
    for (auto* c : {&enq_fast, &enq_slow, &deq_fast, &deq_slow, &deq_empty,
                    &cleanups, &segments_freed, &enq_bulk_batches,
                    &enq_bulk_fast, &deq_bulk_batches, &deq_bulk_fast,
                    &deq_parks, &deq_spurious_wakeups, &notify_calls,
                    &injected_stalls, &injected_crashes, &adopted_handles,
                    &orphan_drops, &alloc_failures, &reserve_pool_hits,
                    &oom_rescues, &enq_probes, &deq_probes, &max_enq_probes,
                    &max_deq_probes}) {
      c->store(0, std::memory_order_relaxed);
    }
  }

  uint64_t enqueues() const noexcept {
    return enq_fast.load(std::memory_order_relaxed) +
           enq_slow.load(std::memory_order_relaxed) +
           enq_bulk_fast.load(std::memory_order_relaxed);
  }
  uint64_t dequeues() const noexcept {
    return deq_fast.load(std::memory_order_relaxed) +
           deq_slow.load(std::memory_order_relaxed) +
           deq_bulk_fast.load(std::memory_order_relaxed);
  }

  double avg_enq_probes() const noexcept {
    uint64_t n = enqueues();
    return n ? double(enq_probes.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double avg_deq_probes() const noexcept {
    uint64_t n = dequeues();
    return n ? double(deq_probes.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }

  /// Percentage helpers used by the Table 2 reproduction.
  double pct_slow_enq() const noexcept {
    uint64_t n = enqueues();
    return n ? 100.0 * double(enq_slow.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double pct_slow_deq() const noexcept {
    uint64_t n = dequeues();
    return n ? 100.0 * double(deq_slow.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double pct_empty_deq() const noexcept {
    uint64_t n = dequeues();
    return n ? 100.0 * double(deq_empty.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
};

}  // namespace wfq
