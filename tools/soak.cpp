// Long-duration soak runner for release validation — runs a randomized,
// checksummed mixed workload on the wait-free queue (and optionally any
// baseline) for a wall-clock budget, with periodic invariant audits:
// value conservation, per-producer FIFO spot checks, memory footprint,
// slow-path/probe statistics. On queues that expose the bulk API
// (enqueue_bulk / dequeue_bulk) a quarter of the operations are batches
// of random size (2-16) interleaved with the singles, so the prepaid-
// ticket paths soak alongside the ordinary ones.
//
// The default mode soaks the blocking layer (src/sync/): dedicated
// producers feed a BlockingWFQueue while a mixed population of consumers —
// half spinning (default escalation policy), half sleeping (park_only,
// futex from the first miss) — pops via pop_wait/pop_wait_bulk. Shutdown
// goes through close(): producers fail fast, every consumer drains until
// it observes kClosed, and the final accounting must balance EXACTLY —
// enqueued == dequeued with matching checksums, no "residue swept by the
// main thread" fudge, plus a post-close drain() that must come back empty.
//
//   $ ./soak [seconds] [threads] [queue]
//     queue in {block, wf, wf0, msq, lcrq, ccq, mutex, kp, sim};
//     default block
//   $ ./soak --backend {wf,faa,obstruction,scq,wcq,sharded} [seconds] [threads]
//     backend-selector form (mirrors wfq_create_ex): wf is the blocking
//     soak, obstruction is a raw-queue soak of that baseline, and
//     scq/wcq run the blocking layer over the bounded rings — producers
//     park in push_wait when the ring fills, and the close()/drain()
//     accounting must still balance EXACTLY (backpressure costs time,
//     never operations). faa is the §5 FAA ticket microbenchmark, which
//     is not a value-carrying queue, so it gets its own exact audit
//     (ticket accounting, not checksums — see run_faa). sharded runs the
//     blocking layer over ShardedQueue<WFQueue> (min(threads,4) lanes):
//     the relaxed-FIFO contract still satisfies every audit here, because
//     the soak's FIFO spot check is per-producer and each producer's
//     stream lives on one home lane. The summary additionally prints the
//     per-lane load spread (max/min lane op counts) and fails the run if
//     any lane saw zero traffic or the imbalance ratio explodes — the
//     round-robin deal plus the steal sweep must keep every lane warm.
//   $ ./soak --inject <seed> [seconds] [threads]
//     blocking-layer soak with the fault-injection harness compiled in: a
//     seeded schedule of yields/delays/finite stalls/allocation-failure
//     bursts is armed against producer 0 (the victim), and the run must
//     still balance EXACTLY — wait-freedom says stalls cost throughput,
//     never operations, and the OOM contract says a failed push consumes
//     nothing. Crashes are deliberately not in the soak schedule (their
//     bounded value loss is owned by the injection-matrix ctest).
//     Composes with --backend: `--backend wcq --inject <seed>` arms the
//     same schedule against a bounded ring (the wcq_* and ring_* points
//     become reachable; the segment/reclamation points stay inert).
//
//   $ ./soak --shm --kill9 <seed> [seconds] [procs]
//     cross-process chaos mode (src/ipc/): forks `procs` worker PROCESSES
//     against one shared-memory arena and SIGKILLs them mid-protocol at
//     seeded injection points (the shm_* catalog entries) — real kill -9,
//     not a simulated crash. Killed workers are respawned with fresh
//     producer incarnations; survivors run recover() to adopt the orphaned
//     work. After the deadline the parent recovers, drains, and audits the
//     EXACT conservation statement of docs/ALGORITHM.md section 16:
//       - every acked enqueue is delivered (journal or residual cell);
//       - nothing is fabricated (every delivery maps to a real attempt);
//       - duplicates are bounded by the kill count (at-least-once across
//         crashes: a dup requires a consumer killed between its journal
//         write and its commit CAS).
//     The per-child summary reports every worker's exit disposition; any
//     child that exits non-zero or dies to a signal other than the
//     scheduled SIGKILL fails the run.
//
// Observability flags (block and --inject modes, which compile the queue
// with ObsMetrics at the production sampling rate; the raw baseline modes
// ignore them):
//   --metrics        print the latency-histogram / slow-path-event report
//                    after the run
//   --trace <file>   dump a Chrome trace-event JSON (chrome://tracing,
//                    Perfetto) of the retained slow-path events
// Independent of the flags, these modes always verify that the trace-ring
// per-type totals agree EXACTLY with the OpStats counters they shadow
// (enq_slow, deq_slow, deq_parks, alloc_failures, reserve_pool_hits,
// oom_rescues, adopted_handles) — trace events are never sampled, so any
// drift is an instrumentation bug and fails the soak.
//
// Exit status 0 only if every audit passed. Not part of ctest (runtime is
// caller-chosen); CI runs it via the `soak` convenience target.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "baselines/ccqueue.hpp"
#include "baselines/faaq.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/mutex_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "common/random.hpp"
#include "core/obstruction_queue.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "harness/fault_inject.hpp"
#include "ipc/shm_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "scale/sharded_queue.hpp"
#include "sync/blocking_queue.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// ---- observability plumbing -------------------------------------------

struct ObsOptions {
  bool metrics = false;            ///< --metrics: print the report
  const char* trace_path = nullptr;  ///< --trace <file>: Chrome trace dump
};
ObsOptions g_obs;

/// Metrics-enabled traits for the default blocking soak (the --inject mode
/// has its own traits carrying the injector as well).
struct SoakObsTraits : wfq::DefaultWfTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};

/// Ring analog for the scq/wcq backends.
struct SoakRingObsTraits : wfq::DefaultRingTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};

/// Ring capacity for the bounded soaks: small enough that producers hit
/// FULL constantly (the point of the exercise), while honoring the ring
/// precondition capacity >= concurrent threads.
std::size_t ring_capacity(unsigned threads) {
  const std::size_t floor_cap = 2 * std::size_t(threads) + 2;
  return floor_cap > 256 ? floor_cap : 256;
}

void print_obs_report(const wfq::obs::ObsSnapshot& snap) {
  auto hist = [](const char* name, const wfq::obs::LatencyHistogram& h) {
    if (h.count() == 0) return;
    std::printf("    %-12s n=%-9llu p50=%lluns p99=%lluns p99.9=%lluns\n",
                name, (unsigned long long)h.count(),
                (unsigned long long)h.percentile(0.50),
                (unsigned long long)h.percentile(0.99),
                (unsigned long long)h.percentile(0.999));
  };
  std::printf("  -- observability report (latencies sampled 1-in-%llu) --\n",
              (unsigned long long)(wfq::obs::ObsMetrics<>::kSampleMask + 1));
  hist("enqueue", snap.enq_ns);
  hist("dequeue", snap.deq_ns);
  hist("enq_bulk", snap.enq_bulk_ns);
  hist("deq_bulk", snap.deq_bulk_ns);
  hist("pop_wait", snap.pop_wait_ns);
  std::printf("    events:");
  for (std::size_t i = 0; i < wfq::obs::kTraceEventCount; ++i) {
    if (snap.totals[i] != 0) {
      std::printf(" %s=%llu", wfq::obs::kTraceEventKeys[i],
                  (unsigned long long)snap.totals[i]);
    }
  }
  std::printf("\n    retained=%zu dropped=%llu\n", snap.events.size(),
              (unsigned long long)snap.dropped);
}

/// Post-run observability epilogue shared by the blocking and inject soaks:
/// the exact event-total/counter agreement audit (always on — trace events
/// are never sampled, so the totals must shadow the counters one-for-one),
/// the --metrics report, and the --trace dump. Must run after every worker
/// joined (quiesced-reader contract of the rings). Returns false on any
/// mismatch or dump failure.
bool obs_epilogue(const wfq::obs::ObsSnapshot& snap, const wfq::OpStats& st) {
  using wfq::obs::TraceEvent;
  const struct {
    TraceEvent ev;
    const char* name;
    uint64_t counter;
  } shadow[] = {
      {TraceEvent::kEnqSlow, "enq_slow", st.enq_slow.load()},
      {TraceEvent::kDeqSlow, "deq_slow", st.deq_slow.load()},
      // Both park sites emit kPark: consumers on empty (a=1), producers on
      // a full bounded ring (a=2).
      {TraceEvent::kPark, "deq_parks+push_full_parks",
       st.deq_parks.load() + st.push_full_parks.load()},
      // Every park emits exactly one of kWake / kWakeSpurious, and the
      // spurious branch is the one that bumps the *_spurious_wakeups
      // counters — so both identities must hold to the event.
      {TraceEvent::kWakeSpurious, "deq_spurious+push_spurious",
       st.deq_spurious_wakeups.load() + st.push_spurious_wakeups.load()},
      {TraceEvent::kWake,
       "parks-spurious (kPark==kWake+kWakeSpurious)",
       st.deq_parks.load() + st.push_full_parks.load() -
           st.deq_spurious_wakeups.load() - st.push_spurious_wakeups.load()},
      {TraceEvent::kAllocFail, "alloc_failures", st.alloc_failures.load()},
      {TraceEvent::kReserveHit, "reserve_pool_hits",
       st.reserve_pool_hits.load()},
      {TraceEvent::kOomRescue, "oom_rescues", st.oom_rescues.load()},
      {TraceEvent::kAdopt, "adopted_handles", st.adopted_handles.load()},
  };
  bool ok = true;
  for (const auto& s : shadow) {
    if (snap.total(s.ev) != s.counter) {
      std::printf("  OBS MISMATCH: trace total %s=%llu but counter %s=%llu\n",
                  wfq::obs::kTraceEventKeys[std::size_t(s.ev)],
                  (unsigned long long)snap.total(s.ev), s.name,
                  (unsigned long long)s.counter);
      ok = false;
    }
  }
  std::printf("  trace/counter agreement %s\n", ok ? "EXACT" : "FAILED");
  if (g_obs.metrics) print_obs_report(snap);
  if (g_obs.trace_path != nullptr) {
    if (wfq::obs::write_chrome_trace(snap, g_obs.trace_path)) {
      std::printf("  trace written to %s (%zu events, %llu dropped)\n",
                  g_obs.trace_path, snap.events.size(),
                  (unsigned long long)snap.dropped);
    } else {
      std::printf("  trace dump to %s FAILED\n", g_obs.trace_path);
      ok = false;
    }
  }
  return ok;
}

/// Sharded-backend lane audit (a no-op on single-queue backends): print the
/// per-lane op spread and fail if any lane saw zero traffic or the max/min
/// ratio explodes. The round-robin handle deal plus the full steal sweep
/// guarantee every lane is touched — a cold lane means the deal or the sweep
/// regressed, and a wildly hot one means affinity collapsed onto one lane.
template <class BQ>
bool lane_balance_audit(BQ& q) {
  if constexpr (requires { q.inner().lane_loads(); }) {
    std::vector<uint64_t> loads = q.inner().lane_loads();
    uint64_t lo = UINT64_MAX, hi = 0;
    std::printf("  lane loads:");
    for (uint64_t l : loads) {
      std::printf(" %llu", (unsigned long long)l);
      if (l < lo) lo = l;
      if (l > hi) hi = l;
    }
    // Generous ceiling: catches collapse-onto-one-lane, not honest skew
    // (consumer-heavy lanes rack up empty probes at a different rate than
    // producer-heavy ones, so modest imbalance is expected and fine).
    constexpr uint64_t kMaxRatio = 1000;
    const bool ok = lo > 0 && hi <= lo * kMaxRatio;
    std::printf("  | imbalance max/min=%.2f %s\n",
                lo > 0 ? double(hi) / double(lo) : 0.0,
                ok ? "OK" : "FAILED");
    return ok;
  } else {
    (void)q;
    return true;
  }
}

struct SoakResult {
  uint64_t enqueued = 0;
  uint64_t dequeued = 0;
  uint64_t checksum_in = 0;
  uint64_t checksum_out = 0;
  uint64_t fifo_violations = 0;
  bool ok() const {
    return enqueued == dequeued && checksum_in == checksum_out &&
           fifo_violations == 0;
  }
};

/// Payload: (producer << 40) | seq, as in the test utilities.
template <class Queue>
SoakResult soak(Queue& q, unsigned threads, double seconds) {
  std::atomic<bool> stop{false};
  std::vector<uint64_t> enq_count(threads, 0), deq_count(threads, 0);
  std::vector<uint64_t> sum_in(threads, 0), sum_out(threads, 0);
  std::vector<uint64_t> fifo_bad(threads, 0);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      constexpr bool kHasBulk =
          requires(Queue& qq, decltype(q.get_handle())& hh, uint64_t* p) {
            qq.enqueue_bulk(hh, p, std::size_t{1});
            qq.dequeue_bulk(hh, p, std::size_t{1});
          };
      constexpr std::size_t kMaxBatch = 16;
      wfq::Xorshift128Plus rng(t * 7919 + 13);
      // last sequence seen per producer, for the FIFO spot check.
      std::vector<uint64_t> last_seq(threads, 0);
      std::vector<uint64_t> batch(kMaxBatch);
      uint64_t seq = 0;
      auto record_out = [&](uint64_t v) {
        sum_out[t] += v;
        ++deq_count[t];
        unsigned prod = unsigned(v >> 40);
        uint64_t s = v & ((uint64_t{1} << 40) - 1);
        if (prod < threads) {
          if (s <= last_seq[prod]) ++fifo_bad[t];
          last_seq[prod] = s;
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const bool use_bulk = kHasBulk && rng.percent_chance(25);
        if (rng.percent_chance(50)) {
          if constexpr (kHasBulk) {
            if (use_bulk) {
              std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
              for (std::size_t j = 0; j < k; ++j) {
                uint64_t v = (uint64_t(t) << 40) | ++seq;
                batch[j] = v;
                sum_in[t] += v;
              }
              q.enqueue_bulk(h, batch.data(), k);
              enq_count[t] += k;
              continue;
            }
          }
          uint64_t v = (uint64_t(t) << 40) | ++seq;
          q.enqueue(h, v);
          sum_in[t] += v;
          ++enq_count[t];
        } else {
          if constexpr (kHasBulk) {
            if (use_bulk) {
              std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
              std::size_t got = q.dequeue_bulk(h, batch.data(), k);
              for (std::size_t j = 0; j < got; ++j) record_out(batch[j]);
              continue;
            }
          }
          auto v = q.dequeue(h);
          if (v.has_value()) record_out(*v);
        }
      }
    });
  }

  auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  unsigned audits = 0;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    ++audits;
  }
  stop.store(true);
  for (auto& w : workers) w.join();

  SoakResult r;
  for (unsigned t = 0; t < threads; ++t) {
    r.enqueued += enq_count[t];
    r.dequeued += deq_count[t];
    r.checksum_in += sum_in[t];
    r.checksum_out += sum_out[t];
    r.fifo_violations += fifo_bad[t];
  }
  // Drain the backlog.
  auto h = q.get_handle();
  for (;;) {
    auto v = q.dequeue(h);
    if (!v.has_value()) break;
    r.checksum_out += *v;
    ++r.dequeued;
  }
  std::printf("  audits=%u ops=%llu\n", audits,
              (unsigned long long)(r.enqueued + r.dequeued));
  return r;
}

// ---- blocking-layer soak ----------------------------------------------
//
// `threads` producers + `threads` consumers on a BlockingQueue over any
// inner backend (the unbounded WFQueue, or a bounded SCQ/wCQ ring).
// Consumers alternate between the spinning escalation policy and pure
// park_only sleeping, and a quarter of their pops are pop_wait_bulk
// batches. Producers push via push_wait — a no-op difference on the
// unbounded queue, futex backpressure on a full ring — and bulk pushes
// account only the committed prefix (a bounded inner commits what fits).
// Producers stop at the deadline and join BEFORE close(), so
// close() observes a quiesced producer side; consumers then drain the
// residue through their ordinary pop loops until pop_wait reports
// kClosed. Unlike the raw-queue soak there is no main-thread sweep: the
// close()/drain() contract guarantees the per-consumer accounting already
// covers every in-flight item, and we assert exactly that.
template <class BQ>
int run_blocking_q(BQ& q, const char* name, unsigned threads,
                   double seconds) {
  using wfq::sync::PopStatus;
  using wfq::sync::PushStatus;
  using wfq::sync::WaitPolicy;
  constexpr bool kBounded = requires(const BQ& qq) { qq.capacity(); };

  std::atomic<bool> stop_producing{false};
  std::vector<uint64_t> enq_count(threads, 0), sum_in(threads, 0);
  std::vector<uint64_t> deq_count(threads, 0), sum_out(threads, 0);
  std::vector<uint64_t> fifo_bad(threads, 0), timeouts(threads, 0);
  constexpr std::size_t kMaxBatch = 16;

  std::printf("soaking %s for %.1fs with %u producers + "
              "%u consumers (%u spinning, %u sleeping)...\n",
              name, seconds, threads, threads, (threads + 1) / 2,
              threads / 2);
  if constexpr (kBounded) {
    std::printf("  bounded: capacity=%zu, producers park on FULL\n",
                q.capacity());
  }

  std::vector<std::thread> producers, consumers;
  for (unsigned t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      auto h = q.get_handle();
      wfq::Xorshift128Plus rng(t * 7919 + 13);
      std::vector<uint64_t> batch(kMaxBatch);
      uint64_t seq = 0;
      while (!stop_producing.load(std::memory_order_relaxed)) {
        if (rng.percent_chance(25)) {
          std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
          for (std::size_t j = 0; j < k; ++j) {
            batch[j] = (uint64_t(t) << 40) | ++seq;
          }
          std::size_t got = q.push_bulk(h, batch.data(), k);
          for (std::size_t j = 0; j < got; ++j) sum_in[t] += batch[j];
          enq_count[t] += got;
          if (got < k) {
            // The uncommitted tail never entered the queue: rewind so the
            // per-producer sequence stream stays dense for the FIFO check.
            seq -= (k - got);
            if (q.closed()) break;
            // Bounded ring momentarily full — loop and try again.
          }
        } else {
          uint64_t v = (uint64_t(t) << 40) | (seq + 1);
          PushStatus st = q.push_wait(h, v);
          if (st == PushStatus::kOk) {
            ++seq;
            sum_in[t] += v;
            ++enq_count[t];
          } else if (st == PushStatus::kClosed) {
            break;
          } else {
            std::this_thread::yield();  // kNoMem: clean failure, retryable
          }
        }
      }
    });
  }
  for (unsigned t = 0; t < threads; ++t) {
    consumers.emplace_back([&, t] {
      auto h = q.get_handle();
      // Even consumers spin before parking; odd ones park immediately —
      // the mixed population the blocking layer has to wake correctly.
      const WaitPolicy policy =
          (t % 2 == 0) ? WaitPolicy{} : WaitPolicy::park_only();
      wfq::Xorshift128Plus rng(t * 104729 + 7);
      std::vector<uint64_t> last_seq(threads, 0);
      std::vector<uint64_t> batch(kMaxBatch);
      auto record_out = [&](uint64_t v) {
        sum_out[t] += v;
        ++deq_count[t];
        unsigned prod = unsigned(v >> 40);
        uint64_t s = v & ((uint64_t{1} << 40) - 1);
        if (prod < threads) {
          if (s <= last_seq[prod]) ++fifo_bad[t];
          last_seq[prod] = s;
        }
      };
      for (;;) {
        if (rng.percent_chance(25)) {
          std::size_t k = 2 + rng.next_below(kMaxBatch - 1);
          std::size_t got = q.pop_wait_bulk(h, batch.data(), k, policy);
          if (got == 0) break;  // closed AND drained
          for (std::size_t j = 0; j < got; ++j) record_out(batch[j]);
        } else if (rng.percent_chance(10)) {
          // Timed pops exercise the deadline path under full load.
          uint64_t v = 0;
          PopStatus st =
              q.pop_wait_for(h, v, std::chrono::milliseconds(1), policy);
          if (st == PopStatus::kClosed) break;
          if (st == PopStatus::kTimeout) {
            ++timeouts[t];
            continue;
          }
          record_out(v);
        } else {
          uint64_t v = 0;
          if (q.pop_wait(h, v, policy) != PopStatus::kOk) break;
          record_out(v);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop_producing.store(true);
  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  // The termination witness: after every consumer observed kClosed, a
  // fresh drain() must find nothing — kClosed asserted bulk emptiness.
  auto h = q.get_handle();
  std::vector<uint64_t> residue;
  std::size_t leftover = q.drain(h, residue);

  SoakResult r;
  for (unsigned t = 0; t < threads; ++t) {
    r.enqueued += enq_count[t];
    r.dequeued += deq_count[t];
    r.checksum_in += sum_in[t];
    r.checksum_out += sum_out[t];
    r.fifo_violations += fifo_bad[t];
  }
  uint64_t total_timeouts = 0;
  for (auto v : timeouts) total_timeouts += v;
  auto st = q.stats();
  std::printf("  enq=%llu deq=%llu timeouts=%llu parks=%llu "
              "push_parks=%llu notifies=%llu spurious=%llu\n",
              (unsigned long long)r.enqueued, (unsigned long long)r.dequeued,
              (unsigned long long)total_timeouts,
              (unsigned long long)st.deq_parks.load(),
              (unsigned long long)st.push_full_parks.load(),
              (unsigned long long)st.notify_calls.load(),
              (unsigned long long)st.deq_spurious_wakeups.load());
  bool exact = r.enqueued == r.dequeued && leftover == 0;
  std::printf("  close()/drain() accounting %s (post-close residue=%zu), "
              "checksum %s, fifo spot checks %s\n",
              exact ? "EXACT" : "FAILED", leftover,
              r.checksum_in == r.checksum_out ? "OK" : "FAILED",
              r.fifo_violations == 0 ? "OK" : "FAILED");
  bool lanes_ok = lane_balance_audit(q);
  bool obs_ok = obs_epilogue(q.collect_obs(), st);
  return (r.ok() && exact && lanes_ok && obs_ok) ? 0 : 1;
}

int run_blocking(unsigned threads, double seconds) {
  wfq::sync::BlockingQueue<wfq::WFQueue<uint64_t, SoakObsTraits>> q;
  return run_blocking_q(q, "BlockingWFQueue", threads, seconds);
}

/// `--backend sharded`: the blocking layer over ShardedQueue<WFQueue>.
/// Lane count tracks the producer count (capped at 4) so the round-robin
/// deal gives every lane real traffic and the imbalance audit has teeth.
int run_blocking_sharded(unsigned threads, double seconds) {
  wfq::ShardConfig scfg;
  scfg.shards = threads < 4 ? (threads == 0 ? 1 : threads) : 4;
  wfq::sync::BlockingQueue<
      wfq::scale::ShardedQueue<wfq::WFQueue<uint64_t, SoakObsTraits>>>
      q(scfg, wfq::WfConfig{});
  std::printf("  sharded: %zu lanes, relaxed global FIFO "
              "(per-producer order preserved by lane affinity)\n",
              q.inner().shards());
  return run_blocking_q(q, "BlockingShardedQueue[WF x lanes]", threads,
                        seconds);
}

/// Bounded blocking soaks (`--backend scq|wcq`): exact conservation with
/// both directions parking — consumers on empty, producers on full.
int run_blocking_ring(const std::string& backend, unsigned threads,
                      double seconds) {
  const std::size_t cap = ring_capacity(threads);
  if (backend == "scq") {
    wfq::sync::BlockingQueue<wfq::ScqQueue<uint64_t, SoakRingObsTraits>> q(
        cap);
    return run_blocking_q(q, "BlockingScqQueue", threads, seconds);
  }
  wfq::sync::BlockingQueue<wfq::WcqQueue<uint64_t, SoakRingObsTraits>> q(cap);
  return run_blocking_q(q, "BlockingWcqQueue", threads, seconds);
}

// ---- fault-injection soak ---------------------------------------------
//
// Like run_blocking, but on a queue with the ScriptedInjector compiled in
// and a seeded fault schedule armed against producer 0. Every action in the
// schedule is accounting-neutral (yield, delay, finite stall, allocation-
// failure burst), so the EXACT close()/drain() balance still applies: a
// stalled victim may slow things down but must never lose an operation,
// and an allocation failure must surface as a clean kNoMem, not a consumed
// value. The schedule is armed once up front (ScriptedInjector::reset is
// only safe with no thread inside the queue) with budgets big enough to
// keep firing for the whole run.
struct SoakFaultTraits : wfq::DefaultWfTraits {
  using Injector = wfq::fault::ScriptedInjector;
  using Metrics = wfq::obs::ObsMetrics<>;
};

/// Ring analog (`--backend scq|wcq --inject`): same schedule machinery,
/// bounded backend. The ring_* / wcq_* points become reachable; the
/// segment and reclamation points stay inert (rings never allocate).
struct SoakRingFaultTraits : wfq::DefaultRingTraits {
  using Injector = wfq::fault::ScriptedInjector;
  using Metrics = wfq::obs::ObsMetrics<>;
};

template <class BQ>
int run_inject_q(BQ& q, const char* name, unsigned threads, double seconds) {
  using Inj = wfq::fault::ScriptedInjector;
  using wfq::sync::PopStatus;
  using wfq::sync::PushStatus;
  using wfq::sync::WaitPolicy;

  std::atomic<bool> stop_producing{false};
  std::vector<uint64_t> enq_count(threads, 0), sum_in(threads, 0);
  std::vector<uint64_t> deq_count(threads, 0), sum_out(threads, 0);
  std::vector<uint64_t> fifo_bad(threads, 0), nomem(threads, 0);

  std::printf("soaking %s for %.1fs with %u producers (victim: 0) + "
              "%u consumers...\n",
              name, seconds, threads, threads);

  std::vector<std::thread> producers, consumers;
  for (unsigned t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      Inj::set_victim(t == 0);
      auto h = q.get_handle();
      wfq::Xorshift128Plus prng(t * 7919 + 13);
      uint64_t seq = 0;
      bool closed = false;
      while (!closed && !stop_producing.load(std::memory_order_relaxed)) {
        uint64_t v = (uint64_t(t) << 40) | ++seq;
        // push_wait: parks on a full bounded ring (never returns kFull),
        // behaves exactly like push_status on the unbounded queue.
        switch (q.push_wait(h, v)) {
          case PushStatus::kOk:
            sum_in[t] += v;
            ++enq_count[t];
            break;
          case PushStatus::kClosed:
            closed = true;
            break;
          default:  // kNoMem: clean failure, v NOT consumed; retry later
            ++nomem[t];
            --seq;
            std::this_thread::yield();
            break;
        }
      }
      Inj::set_victim(false);
    });
  }
  for (unsigned t = 0; t < threads; ++t) {
    consumers.emplace_back([&, t] {
      auto h = q.get_handle();
      const WaitPolicy policy =
          (t % 2 == 0) ? WaitPolicy{} : WaitPolicy::park_only();
      std::vector<uint64_t> last_seq(threads, 0);
      for (;;) {
        uint64_t v = 0;
        PopStatus st;
        try {
          st = q.pop_wait(h, v, policy);
        } catch (const std::bad_alloc&) {
          std::this_thread::yield();  // OOM burst: back off and retry
          continue;
        }
        if (st != PopStatus::kOk) break;  // kClosed
        sum_out[t] += v;
        ++deq_count[t];
        unsigned prod = unsigned(v >> 40);
        uint64_t s = v & ((uint64_t{1} << 40) - 1);
        if (prod < threads) {
          if (s <= last_seq[prod]) ++fifo_bad[t];
          last_seq[prod] = s;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop_producing.store(true);
  for (auto& p : producers) p.join();
  Inj::release_stalls();  // no kForever stalls armed: pure wakeup, no crash
  q.close();
  for (auto& c : consumers) c.join();

  auto h = q.get_handle();
  std::vector<uint64_t> residue;
  std::size_t leftover = q.drain(h, residue);

  SoakResult r;
  uint64_t total_nomem = 0;
  for (unsigned t = 0; t < threads; ++t) {
    r.enqueued += enq_count[t];
    r.dequeued += deq_count[t];
    r.checksum_in += sum_in[t];
    r.checksum_out += sum_out[t];
    r.fifo_violations += fifo_bad[t];
    total_nomem += nomem[t];
  }
  auto st = q.stats();
  std::printf("  enq=%llu deq=%llu push_nomem=%llu | injected: stalls=%llu "
              "crashes=%llu alloc_failures=%llu | adopted=%llu "
              "reserve_hits=%llu orphan_drops=%llu oom_rescues=%llu\n",
              (unsigned long long)r.enqueued, (unsigned long long)r.dequeued,
              (unsigned long long)total_nomem,
              (unsigned long long)st.injected_stalls.load(),
              (unsigned long long)st.injected_crashes.load(),
              (unsigned long long)st.alloc_failures.load(),
              (unsigned long long)st.adopted_handles.load(),
              (unsigned long long)st.reserve_pool_hits.load(),
              (unsigned long long)st.orphan_drops.load(),
              (unsigned long long)st.oom_rescues.load());
  bool exact = r.enqueued == r.dequeued && leftover == 0;
  bool no_crash = st.injected_crashes.load() == 0;
  std::printf("  close()/drain() accounting %s (post-close residue=%zu), "
              "checksum %s, fifo spot checks %s, crash-free %s\n",
              exact ? "EXACT" : "FAILED", leftover,
              r.checksum_in == r.checksum_out ? "OK" : "FAILED",
              r.fifo_violations == 0 ? "OK" : "FAILED",
              no_crash ? "OK" : "FAILED");
  bool lanes_ok = lane_balance_audit(q);
  bool obs_ok = obs_epilogue(q.collect_obs(), st);
  return (r.ok() && exact && no_crash && lanes_ok && obs_ok) ? 0 : 1;
}

/// Arm the seeded schedule, then run the inject soak on the selected
/// backend. Arming is backend-independent — points the chosen queue never
/// passes simply stay inert, and the schedule stays reproducible from the
/// seed alone.
int run_inject(uint64_t seed, unsigned threads, double seconds,
               const std::string& backend) {
  using Inj = wfq::fault::ScriptedInjector;
  Inj::reset();
  wfq::Xorshift128Plus rng(seed ^ 0x5eedf417u);
  // Arm up to 6 distinct points with neutral actions.
  constexpr wfq::fault::Action kNeutral[] = {
      wfq::fault::Action::kYield, wfq::fault::Action::kDelay,
      wfq::fault::Action::kStall, wfq::fault::Action::kAllocFail};
  std::printf("fault schedule (seed %llu):\n", (unsigned long long)seed);
  for (int i = 0; i < 6; ++i) {
    const char* point =
        wfq::fault::kInjectionPoints[rng.next_below(
            wfq::fault::kInjectionPointCount)];
    wfq::fault::Action a = kNeutral[rng.next_below(4)];
    // Finite stalls (64-573 global steps) and small alloc-fail bursts (1-4
    // failures per firing) keep every fault recoverable in-line.
    uint64_t arg = a == wfq::fault::Action::kStall
                       ? 64 + rng.next_below(510)
                       : a == wfq::fault::Action::kAllocFail
                             ? 1 + rng.next_below(4)
                             : 0;
    uint32_t budget = 1u << (3 + rng.next_below(8));  // 8 .. 1024 firings
    if (Inj::arm(point, a, budget, arg)) {
      std::printf("  %-22s action=%d budget=%u arg=%llu\n", point, int(a),
                  budget, (unsigned long long)arg);
    }
  }

  if (backend == "scq") {
    wfq::sync::BlockingQueue<wfq::ScqQueue<uint64_t, SoakRingFaultTraits>> q(
        ring_capacity(threads));
    return run_inject_q(q, "BlockingQueue<ScqQueue[ScriptedInjector]>",
                        threads, seconds);
  }
  if (backend == "wcq") {
    wfq::sync::BlockingQueue<wfq::WcqQueue<uint64_t, SoakRingFaultTraits>> q(
        ring_capacity(threads));
    return run_inject_q(q, "BlockingQueue<WcqQueue[ScriptedInjector]>",
                        threads, seconds);
  }
  if (backend == "sharded") {
    // The sharded layer re-exports its inner queue's Traits, so the same
    // schedule reaches the segment/reclamation points inside every lane
    // plus the new shard_steal_scan point in the sweep itself.
    wfq::ShardConfig scfg;
    scfg.shards = threads < 4 ? (threads == 0 ? 1 : threads) : 4;
    wfq::WfConfig cfg;
    cfg.reserve_segments = 2;
    wfq::sync::BlockingQueue<
        wfq::scale::ShardedQueue<wfq::WFQueue<uint64_t, SoakFaultTraits>>>
        q(scfg, cfg);
    return run_inject_q(q, "BlockingShardedQueue[ScriptedInjector]", threads,
                        seconds);
  }
  wfq::WfConfig cfg;
  cfg.reserve_segments = 2;  // the airbag the alloc-fail bursts land on
  wfq::sync::BlockingQueue<wfq::WFQueue<uint64_t, SoakFaultTraits>> q(cfg);
  return run_inject_q(q, "BlockingQueue<WFQueue[ScriptedInjector]>", threads,
                      seconds);
}

/// `--backend faa`: the §5 FAA microbenchmark is NOT a queue — dequeue
/// fabricates T{} whenever an enqueue ticket is available, and burns its
/// dequeue ticket even when it reports empty. An empty dequeue at ticket d
/// therefore strands the later enqueue numbered d: that loss is the
/// strawman's defining property (the one the real queue's slow path
/// exists to fix), so soak()'s value checksum and FIFO audits cannot
/// apply. What IS exact is the ticket arithmetic, and that is what this
/// soak audits after a single-threaded drain:
///   - the queue's own FAA counters equal the harness's call counts
///     (every call moved its hot-spot counter by exactly one);
///   - successes <= enqueue tickets (nothing fabricated out of thin air);
///   - enqueue tickets <= successes + worker empty-failures (each
///     stranded enqueue maps to a distinct earlier empty failure).
int run_faa(unsigned threads, double seconds) {
  wfq::baselines::FAAQueue<uint64_t> q;
  std::printf("soaking FAAQueue (FAA ticket microbenchmark) for %.1fs with "
              "%u threads...\n",
              seconds, threads);
  std::atomic<bool> stop{false};
  std::vector<uint64_t> enq_n(threads, 0), succ_n(threads, 0),
      empty_n(threads, 0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.get_handle();
      wfq::Xorshift128Plus rng(t * 7919 + 13);
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.percent_chance(50)) {
          q.enqueue(h, 0);
          ++enq_n[t];
        } else if (q.dequeue(h).has_value()) {
          ++succ_n[t];
        } else {
          ++empty_n[t];
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) w.join();

  uint64_t enq = 0, succ = 0, empty = 0;
  for (unsigned t = 0; t < threads; ++t) {
    enq += enq_n[t];
    succ += succ_n[t];
    empty += empty_n[t];
  }
  // Drain: succeeds until the dequeue ticket counter passes the (now
  // frozen) enqueue counter, then fails exactly once.
  auto h = q.get_handle();
  uint64_t deq_calls = succ + empty;
  for (;;) {
    ++deq_calls;
    if (q.dequeue(h).has_value()) {
      ++succ;
    } else {
      break;
    }
  }
  const uint64_t stranded = enq - succ;
  const bool counters_ok = q.enqueues() == enq && q.dequeues() == deq_calls;
  const bool bounds_ok = succ <= enq && stranded <= empty;
  std::printf("  tickets enq=%llu deq_calls=%llu fabricated=%llu "
              "empty=%llu stranded=%llu\n",
              (unsigned long long)enq, (unsigned long long)deq_calls,
              (unsigned long long)succ, (unsigned long long)empty,
              (unsigned long long)stranded);
  std::printf("  FAA counter agreement %s, ticket conservation %s "
              "(stranded <= empty failures: the strawman's loss mode)\n",
              counters_ok ? "EXACT" : "FAILED",
              bounds_ok ? "OK" : "FAILED");
  return counters_ok && bounds_ok ? 0 : 1;
}

// ---- cross-process kill-9 chaos soak (--shm --kill9) -------------------
//
// Real processes, real SIGKILL. The parent owns the queue arena plus a
// second "chaos log" arena holding the audit state every process appends
// to through crash-safe protocols:
//
//   IncRec (one per producer incarnation)
//     attempt is stored BEFORE each enqueue call, acked AFTER kOk returns,
//     so at any kill instant attempt - acked <= 1 and the audit knows the
//     at-most-one value whose fate is legitimately ambiguous.
//   journal (single shared append array)
//     consumers reserve a slot with fetch_add, then write the value — all
//     inside the dequeue pre() hook, i.e. BEFORE the commit CAS. A kill
//     between reserve and write leaves a zero slot (ignored); a kill
//     between write and commit leaves a journaled-but-unconsumed value
//     that recovery redelivers — the one legal source of duplicates.
namespace shm_chaos {

using wfq::ipc::ArenaStatus;
using wfq::ipc::ShmPop;
using wfq::ipc::ShmPush;

/// The only injector action that matters here: the real thing.
struct Kill9Injector {
  static constexpr bool kEnabled = true;
  static inline const char* arm_point = nullptr;
  static inline unsigned countdown = 0;
  struct SuppressScope {
    SuppressScope() noexcept {}
  };
  static void inject(const char* point) {
    if (arm_point == nullptr || std::strcmp(point, arm_point) != 0) return;
    if (--countdown == 0) ::raise(SIGKILL);
  }
};
struct Kill9Traits {
  using Injector = Kill9Injector;
};

using ParentQ = wfq::ipc::ShmQueue<>;           // parent: never killed
using WorkerQ = wfq::ipc::ShmQueue<Kill9Traits>;  // children: SIGKILL seam

constexpr std::uint64_t kMaxIncs = 512;        // respawn ceiling
constexpr std::uint64_t kJournalCap = 1 << 21;  // consumed-value journal
constexpr std::uint64_t kEnqPerInc = 2000;     // enqueue budget/incarnation
constexpr std::uint64_t kOpsPerInc = 20000;    // total op budget/incarnation

struct IncRec {
  std::atomic<std::uint64_t> attempt;  // seq stored before the enqueue call
  std::atomic<std::uint64_t> acked;    // seq stored after kOk returned
};

struct ChaosLog {
  std::atomic<std::uint64_t> stop;
  std::atomic<std::uint64_t> next_inc;
  std::atomic<std::uint64_t> journal_count;
  IncRec incs[kMaxIncs];
  std::uint64_t journal[kJournalCap];  // slots reserved via journal_count
};

/// The subset of the injection-point catalog a worker process actually
/// passes (everything under ipc/shm_queue.hpp except the parked wait,
/// which a busy chaos worker rarely reaches).
constexpr const char* kKillPoints[] = {
    "shm_enq_pending",  "shm_enq_ticketed",    "shm_enq_deposited",
    "shm_deq_pending",  "shm_deq_ticketed",    "shm_deq_taken",
    "shm_extend",       "shm_recover_scan",    "shm_rescue_claiming",
};

std::uint64_t value_of(std::uint64_t inc, std::uint64_t seq) {
  return (inc << 32) | seq;
}

/// Child body: runs one incarnation of a worker against the shared queue,
/// with a seeded SIGKILL armed (or not) somewhere in its op stream. Never
/// returns to the caller's stack frames with destructors — exits via
/// _exit (or the armed SIGKILL).
[[noreturn]] void worker_main(const char* qpath, const char* lpath,
                              std::uint64_t seed, std::uint64_t spawn_no) {
  WorkerQ q;
  if (WorkerQ::attach(qpath, &q) != ArenaStatus::kOk) _exit(3);
  wfq::ipc::ShmArena larena;
  if (wfq::ipc::ShmArena::attach(lpath, &larena) != ArenaStatus::kOk) {
    _exit(4);
  }
  auto* log = larena.at<ChaosLog>(larena.root());

  const std::uint64_t inc =
      log->next_inc.fetch_add(1, std::memory_order_seq_cst);
  if (inc >= kMaxIncs) _exit(0);  // respawn ceiling: nothing left to do
  IncRec& rec = log->incs[inc];

  wfq::Xorshift128Plus rng(seed * 0x9e3779b97f4a7c15ULL + spawn_no * 977 +
                           inc + 1);
  // Three of four incarnations get a scheduled kill; the rest run clean so
  // live-process traffic keeps interleaving with the chaos.
  if (rng.next_below(4) != 0) {
    Kill9Injector::arm_point =
        kKillPoints[rng.next_below(sizeof(kKillPoints) /
                                   sizeof(kKillPoints[0]))];
    Kill9Injector::countdown = 1 + unsigned(rng.next_below(64));
  }

  std::uint64_t seq = 0;
  bool full = false;
  for (std::uint64_t op = 0; op < kOpsPerInc; ++op) {
    if (log->stop.load(std::memory_order_relaxed) != 0) break;
    if (!full && seq < kEnqPerInc && rng.next_below(2) == 0) {
      rec.attempt.store(seq + 1, std::memory_order_seq_cst);
      switch (q.enqueue(value_of(inc, seq + 1))) {
        case ShmPush::kOk:
          ++seq;
          rec.acked.store(seq, std::memory_order_seq_cst);
          break;
        case ShmPush::kFull:
        case ShmPush::kNoMem:
          full = true;  // capacity is terminal: switch to pure draining
          rec.attempt.store(seq, std::memory_order_seq_cst);
          break;
        case ShmPush::kClosed:
          _exit(0);
      }
    } else {
      std::uint64_t v = 0;
      ShmPop r = q.dequeue(&v, [&](std::uint64_t seen) {
        const std::uint64_t idx =
            log->journal_count.fetch_add(1, std::memory_order_seq_cst);
        if (idx < kJournalCap) {
          log->journal[idx] = seen;  // write AFTER the reservation: a kill
                                     // here leaves an ignorable zero slot
        }
      });
      if (r == ShmPop::kEmpty && full) break;  // drained a full queue: done
    }
    // Occasionally play recoverer, so survivor-side adoption runs
    // concurrently with live traffic (and the recoverer itself can be
    // killed mid-scan — shm_recover_scan is in the kill table).
    if (rng.next_below(512) == 0) q.recover();
  }
  _exit(0);
}

struct ChildSummary {
  unsigned spawns = 0;
  unsigned sigkills = 0;
  unsigned clean = 0;
  unsigned bad = 0;  // non-zero exit or unexpected signal
};

int run_kill9(std::uint64_t seed, double seconds, unsigned procs) {
  char qpath[128], lpath[128];
  std::snprintf(qpath, sizeof(qpath), "/tmp/wfq_soak_shm_%d.arena",
                int(::getpid()));
  std::snprintf(lpath, sizeof(lpath), "/tmp/wfq_soak_shm_%d.log",
                int(::getpid()));

  ParentQ q;
  wfq::ipc::ShmOptions opt;
  opt.max_procs = 2 * procs + 8;  // respawn overlap + the parent
  opt.seg_cells = 4096;
  opt.rescue_slots = 2048;
  if (ParentQ::create(qpath, std::size_t{64} << 20, opt, &q) !=
      ArenaStatus::kOk) {
    std::fprintf(stderr, "shm soak: arena create failed\n");
    return 2;
  }
  wfq::ipc::ShmArena larena;
  if (wfq::ipc::ShmArena::create(lpath, sizeof(ChaosLog) + (1 << 16),
                                 &larena) != ArenaStatus::kOk) {
    std::fprintf(stderr, "shm soak: log arena create failed\n");
    return 2;
  }
  wfq::ipc::ShmOffset log_off = larena.alloc(sizeof(ChaosLog));
  if (log_off == wfq::ipc::kNullOffset) {
    std::fprintf(stderr, "shm soak: log alloc failed\n");
    return 2;
  }
  larena.set_root(log_off);
  larena.publish_ready();
  auto* log = larena.at<ChaosLog>(log_off);

  std::printf("shm kill-9 chaos soak: seed=%llu %.1fs %u worker processes, "
              "queue capacity=%llu\n",
              (unsigned long long)seed, seconds, procs,
              (unsigned long long)q.capacity());

  std::vector<ChildSummary> summary(procs);
  std::map<pid_t, unsigned> slot_of;  // live pid -> worker slot
  std::uint64_t spawn_no = 0;

  auto spawn = [&](unsigned slot) {
    pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) worker_main(qpath, lpath, seed, ++spawn_no);
    slot_of[pid] = slot;
    ++summary[slot].spawns;
    ++spawn_no;
    return true;
  };
  // Reap one child, classify its exit, and return its worker slot.
  auto reap = [&](pid_t pid, int status) {
    unsigned slot = slot_of[pid];
    slot_of.erase(pid);
    if (WIFSIGNALED(status)) {
      if (WTERMSIG(status) == SIGKILL) {
        ++summary[slot].sigkills;
      } else {
        ++summary[slot].bad;
        std::printf("  worker %u (pid %d) died to UNEXPECTED signal %d\n",
                    slot, int(pid), WTERMSIG(status));
      }
    } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      ++summary[slot].clean;
    } else {
      ++summary[slot].bad;
      std::printf("  worker %u (pid %d) exited with status %d\n", slot,
                  int(pid), WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
    return slot;
  };

  for (unsigned w = 0; w < procs; ++w) {
    if (!spawn(w)) {
      std::fprintf(stderr, "shm soak: fork failed\n");
      return 2;
    }
  }
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    int status = 0;
    pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      unsigned slot = reap(pid, status);
      if (log->next_inc.load(std::memory_order_relaxed) < kMaxIncs) {
        spawn(slot);  // respawn as a fresh incarnation
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  log->stop.store(1, std::memory_order_seq_cst);
  while (!slot_of.empty()) {
    int status = 0;
    pid_t pid = ::waitpid(-1, &status, 0);
    if (pid <= 0) break;
    reap(pid, status);
  }

  // ---- survivor recovery + final drain --------------------------------
  // Iterate to a fixed point: a drain can poison cells that recovery then
  // resolves, and recovery can revert a killed claimer's ring entry to
  // Full, which only a further drain consumes.
  const auto journal_pre = [&](std::uint64_t seen) {
    const std::uint64_t idx =
        log->journal_count.fetch_add(1, std::memory_order_seq_cst);
    if (idx < kJournalCap) log->journal[idx] = seen;
  };
  q.recover();
  for (;;) {
    bool drained_any = false;
    std::uint64_t v = 0;
    while (q.dequeue(&v, journal_pre) == ShmPop::kOk) drained_any = true;
    if (q.recover() == 0 && !drained_any) break;
  }

  // ---- audit ----------------------------------------------------------
  const std::uint64_t incs =
      std::min(log->next_inc.load(std::memory_order_seq_cst), kMaxIncs);
  const std::uint64_t jn =
      std::min(log->journal_count.load(std::memory_order_seq_cst),
               kJournalCap);
  std::map<std::uint64_t, std::uint64_t> delivered;  // value -> count
  for (std::uint64_t i = 0; i < jn; ++i) {
    if (log->journal[i] != 0) ++delivered[log->journal[i]];
  }
  // Residual VALUE cells (rescue-ring exhaustion leaves values parked in
  // their cells, visible and unconsumed — accounted, never lost).
  std::uint64_t stranded = 0;
  q.scan_cells([&](std::uint64_t, std::uint64_t state, std::uint64_t val) {
    if (state == ParentQ::kCellValue) {
      ++delivered[val];
      ++stranded;
    }
  });
  // Ring entries still Full after the fixed-point drain are likewise
  // visible-and-accounted (can only happen if the pending hint drifted).
  q.scan_rescue_ring([&](std::uint64_t state, std::uint64_t,
                         std::uint64_t val) {
    if (state == ParentQ::kRsFull) {
      ++delivered[val];
      ++stranded;
    }
  });

  std::uint64_t acked_total = 0, lost = 0, fabricated = 0, dups = 0;
  for (std::uint64_t inc = 0; inc < incs; ++inc) {
    const std::uint64_t acked =
        log->incs[inc].acked.load(std::memory_order_seq_cst);
    acked_total += acked;
    for (std::uint64_t s = 1; s <= acked; ++s) {
      auto it = delivered.find(value_of(inc, s));
      if (it == delivered.end()) {
        if (lost < 8) {
          std::printf("  LOST: inc=%llu seq=%llu (acked=%llu)\n",
                      (unsigned long long)inc, (unsigned long long)s,
                      (unsigned long long)acked);
        }
        ++lost;
      }
    }
  }
  for (const auto& [val, count] : delivered) {
    const std::uint64_t inc = val >> 32;
    const std::uint64_t s = val & 0xffffffffu;
    const std::uint64_t attempt =
        inc < incs ? log->incs[inc].attempt.load(std::memory_order_seq_cst)
                   : 0;
    if (inc >= incs || s == 0 || s > attempt) {
      ++fabricated;
      if (fabricated <= 8) {
        std::printf("  FABRICATED: value %#llx (inc=%llu seq=%llu "
                    "attempt=%llu)\n",
                    (unsigned long long)val, (unsigned long long)inc,
                    (unsigned long long)s, (unsigned long long)attempt);
      }
    }
    if (count > 1) dups += count - 1;
  }

  unsigned spawns = 0, kills = 0, clean = 0, bad = 0;
  std::printf("  per-worker exits (spawns/sigkills/clean/bad):\n");
  for (unsigned w = 0; w < procs; ++w) {
    std::printf("    worker %-2u  %3u / %3u / %3u / %3u\n", w,
                summary[w].spawns, summary[w].sigkills, summary[w].clean,
                summary[w].bad);
    spawns += summary[w].spawns;
    kills += summary[w].sigkills;
    clean += summary[w].clean;
    bad += summary[w].bad;
  }
  std::printf("  incarnations=%llu acked=%llu delivered=%zu stranded=%llu "
              "dups=%llu kills=%u peer_deaths=%llu adoptions=%llu\n",
              (unsigned long long)incs, (unsigned long long)acked_total,
              delivered.size(), (unsigned long long)stranded,
              (unsigned long long)dups, kills,
              (unsigned long long)q.peer_deaths(),
              (unsigned long long)q.shm_adoptions());

  const bool conserve_ok = lost == 0 && fabricated == 0;
  const bool dup_ok = dups <= kills;  // each dup needs a killed consumer
  const bool exits_ok = bad == 0;
  const bool chaos_ok = kills > 0 || seconds < 1.0;  // the soak must soak
  std::printf("  conservation %s (lost=%llu fabricated=%llu), dup bound %s "
              "(%llu <= %u), child exits %s, chaos %s\n",
              conserve_ok ? "EXACT" : "FAILED", (unsigned long long)lost,
              (unsigned long long)fabricated, dup_ok ? "OK" : "FAILED",
              (unsigned long long)dups, kills, exits_ok ? "OK" : "FAILED",
              chaos_ok ? "OK" : "FAILED (no kill ever fired)");

  q.detach();
  larena.close();
  wfq::ipc::ShmArena::destroy(qpath);
  wfq::ipc::ShmArena::destroy(lpath);
  return (conserve_ok && dup_ok && exits_ok && chaos_ok) ? 0 : 1;
}

}  // namespace shm_chaos

template <class Queue, class... Args>
int run(const char* name, unsigned threads, double seconds, Args&&... args) {
  Queue q(std::forward<Args>(args)...);
  std::printf("soaking %s for %.1fs with %u threads...\n", name, seconds,
              threads);
  SoakResult r = soak(q, threads, seconds);
  std::printf("  enq=%llu deq=%llu checksum %s, fifo spot checks %s\n",
              (unsigned long long)r.enqueued, (unsigned long long)r.dequeued,
              r.checksum_in == r.checksum_out ? "OK" : "FAILED",
              r.fifo_violations == 0 ? "OK" : "FAILED");
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the observability flags first; everything else keeps its
  // positional meaning (so `soak --inject 7 --trace t.json 5 8` works).
  std::vector<char*> args;
  std::string backend;
  bool shm = false;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      g_obs.metrics = true;
    } else if (std::strcmp(argv[i], "--shm") == 0) {
      shm = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires a file argument\n");
        return 2;
      }
      g_obs.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(
            stderr,
            "--backend requires {wf,faa,obstruction,scq,wcq,sharded}\n");
        return 2;
      }
      backend = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = int(args.size());
  argv = args.data();

  if (!backend.empty() && backend != "wf" && backend != "faa" &&
      backend != "obstruction" && backend != "scq" && backend != "wcq" &&
      backend != "sharded") {
    std::fprintf(stderr, "unknown backend '%s' (want wf, faa, obstruction, "
                         "scq, wcq or sharded)\n",
                 backend.c_str());
    return 2;
  }

  if (shm) {
    if (argc < 2 || std::strcmp(argv[1], "--kill9") != 0 || argc < 3) {
      std::fprintf(stderr,
                   "usage: soak --shm --kill9 <seed> [seconds] [procs]\n");
      return 2;
    }
    uint64_t seed = std::strtoull(argv[2], nullptr, 10);
    double secs = argc > 3 ? std::strtod(argv[3], nullptr) : 10.0;
    unsigned procs =
        argc > 4 ? unsigned(std::strtoul(argv[4], nullptr, 10)) : 4;
    if (procs == 0 || procs > 64) {
      std::fprintf(stderr, "--shm --kill9 wants 1..64 worker processes\n");
      return 2;
    }
    return shm_chaos::run_kill9(seed, secs, procs);
  }

  if (argc > 1 && std::strcmp(argv[1], "--inject") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: soak [--backend b] --inject <seed> "
                           "[seconds] [threads]\n");
      return 2;
    }
    if (backend == "faa" || backend == "obstruction") {
      std::fprintf(stderr, "--inject needs a blocking-layer backend "
                           "(wf, scq, wcq, sharded)\n");
      return 2;
    }
    uint64_t seed = std::strtoull(argv[2], nullptr, 10);
    double secs = argc > 3 ? std::strtod(argv[3], nullptr) : 10.0;
    unsigned thr = argc > 4 ? unsigned(std::strtoul(argv[4], nullptr, 10)) : 4;
    return run_inject(seed, thr, secs, backend);
  }
  double seconds = argc > 1 ? std::strtod(argv[1], nullptr) : 10.0;
  unsigned threads =
      argc > 2 ? unsigned(std::strtoul(argv[2], nullptr, 10)) : 4;
  std::string which = argc > 3 ? argv[3] : "block";

  if (backend == "faa") {
    return run_faa(threads, seconds);
  }
  if (backend == "obstruction") {
    return run<wfq::ObstructionQueue<uint64_t>>("ObstructionQueue", threads,
                                                seconds);
  }
  if (backend == "scq" || backend == "wcq") {
    return run_blocking_ring(backend, threads, seconds);
  }
  if (backend == "sharded") {
    return run_blocking_sharded(threads, seconds);
  }
  // --backend wf (or none): the default blocking soak / positional names.
  if (which == "block" || backend == "wf") {
    return run_blocking(threads, seconds);
  }
  if (which == "wf") {
    return run<wfq::WFQueue<uint64_t>>("WFQueue (WF-10)", threads, seconds);
  }
  if (which == "wf0") {
    wfq::WfConfig cfg;
    cfg.patience = 0;
    return run<wfq::WFQueue<uint64_t>>("WFQueue (WF-0)", threads, seconds,
                                       cfg);
  }
  if (which == "msq") {
    return run<wfq::baselines::MSQueue<uint64_t>>("MSQueue", threads, seconds);
  }
  if (which == "lcrq") {
    return run<wfq::baselines::LCRQ<uint64_t>>("LCRQ", threads, seconds);
  }
  if (which == "ccq") {
    return run<wfq::baselines::CCQueue<uint64_t>>("CCQueue", threads, seconds);
  }
  if (which == "mutex") {
    return run<wfq::baselines::MutexQueue<uint64_t>>("MutexQueue", threads,
                                                     seconds);
  }
  if (which == "kp") {
    return run<wfq::baselines::KPQueue<uint64_t>>("KPQueue", threads, seconds,
                                                  threads + 2);
  }
  if (which == "sim") {
    return run<wfq::baselines::SimQueue<uint64_t>>("SimQueue", threads,
                                                   seconds, threads + 2);
  }
  std::fprintf(stderr, "unknown queue '%s'\n", which.c_str());
  return 2;
}
