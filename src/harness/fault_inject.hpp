// Deterministic fault injection for the queue stack.
//
// The paper's wait-freedom and reclamation arguments are claims about
// *adversarial schedules*: a dequeuer stalled between publishing hzdp and
// dereferencing it, a helper crashing between claiming a request and
// committing it, an allocator failing in the middle of find_cell. Stress
// tests only hit those windows by luck. This header turns them into
// schedulable events:
//
//   - WFQ_INJECT(Traits, "point") is compiled into every
//     linearization/reclamation-critical step of the stack. With the
//     default NullInjector it expands to nothing (the `if constexpr` on
//     kEnabled discards the call and the point-name literal entirely, so
//     release binaries contain no trace of the harness — tools/ci.sh greps
//     for exactly this).
//   - ScriptedInjector is a process-global, seed-reproducible script: a
//     designated *victim* thread performs an armed action when it reaches a
//     named point. Actions: yield, delay, stall (park for N global steps so
//     helpers and the cleaner must route around the victim), crash (throw
//     InjectedCrash — the victim abandons the operation mid-flight and its
//     HandleGuard leaks), alloc-fail (prime the next N segment allocations,
//     on any thread, to throw InjectedBadAlloc).
//
// The injector is deliberately static/global: injection points live in
// template code instantiated with a Traits type, and threading an injector
// instance through every layer would distort the code under test. One
// scripted experiment per process at a time is exactly what the matrix
// test wants anyway.
//
// See docs/TESTING.md for the point catalog and the reproduction workflow.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <thread>
#include <type_traits>

namespace wfq::fault {

/// Thrown by a kCrash action. Deliberately NOT derived from std::exception:
/// nothing in the stack may catch it by accident — it must unwind through
/// the operation exactly like a thread dying mid-flight (modulo
/// destructors), leaving requests pending and hzdp published.
struct InjectedCrash {
  const char* point;
};

/// Thrown by a primed alloc-fail when the allocation seam is reached.
/// IS-A bad_alloc so the seam's retry/reserve-pool logic treats it exactly
/// like a real exhausted heap.
struct InjectedBadAlloc : std::bad_alloc {
  const char* what() const noexcept override {
    return "wfq: injected segment allocation failure";
  }
};

/// Default injector: every hook is a no-op and kEnabled lets WFQ_INJECT
/// discard the call site at compile time.
struct NullInjector {
  static constexpr bool kEnabled = false;
  static void inject(const char* /*point*/) noexcept {}
  /// Matches ScriptedInjector::SuppressScope so adoption/cleanup code can
  /// unconditionally open one.
  struct SuppressScope {
    SuppressScope() noexcept {}
  };
  static std::uint64_t stalls() noexcept { return 0; }
  static std::uint64_t crashes() noexcept { return 0; }
  static std::uint64_t alloc_failures() noexcept { return 0; }
};

enum class Action : std::uint8_t {
  kNone = 0,
  kYield,      // std::this_thread::yield()
  kDelay,      // spin ~arg iterations (scheduling noise)
  kStall,      // park until `arg` further global steps elapse (kForever:
               // park until release_stalls(), then throw InjectedCrash)
  kCrash,      // throw InjectedCrash{point}
  kAllocFail,  // prime the next `arg` allocations (any thread) to fail
};

/// Seeded, reproducible injector. All state is process-global; tests call
/// reset() between experiments. Thread roles:
///   victim   — the one thread that performs armed actions (set_victim()).
///   others   — advance the global step counter as they pass points, which
///              is what "stall for N steps" measures progress against.
class ScriptedInjector {
 public:
  static constexpr bool kEnabled = true;
  static constexpr int kMaxScript = 8;
  static constexpr std::uint64_t kForever = ~std::uint64_t{0};

  /// Clear the script, counters, victim/release flags. Call only while no
  /// thread is inside the queue.
  static void reset() noexcept {
    for (auto& e : script()) {
      e.point.store(nullptr, std::memory_order_relaxed);
      e.action.store(Action::kNone, std::memory_order_relaxed);
      e.budget.store(0, std::memory_order_relaxed);
      e.arg.store(0, std::memory_order_relaxed);
      e.fired.store(0, std::memory_order_relaxed);
    }
    alloc_fail_pending().store(0, std::memory_order_relaxed);
    released().store(false, std::memory_order_relaxed);
    stalls_.store(0, std::memory_order_relaxed);
    crashes_.store(0, std::memory_order_relaxed);
    alloc_failures_.store(0, std::memory_order_relaxed);
    steps_.store(0, std::memory_order_relaxed);
  }

  /// Arm `point` with `action`. `budget` = how many times it fires before
  /// going inert; `arg` = steps for kStall, spins for kDelay, allocation
  /// count for kAllocFail. Returns false if the script table is full or the
  /// point is already armed (re-arm by reset()ing first).
  static bool arm(const char* point, Action action, std::uint32_t budget = 1,
                  std::uint64_t arg = 0) {
    for (auto& e : script()) {
      const char* expected = nullptr;
      if (e.point.compare_exchange_strong(expected, point,
                                          std::memory_order_relaxed)) {
        e.arg.store(arg, std::memory_order_relaxed);
        e.action.store(action, std::memory_order_relaxed);
        e.fired.store(0, std::memory_order_relaxed);
        // budget last, released: a concurrent victim only acts once it
        // sees a non-zero budget, by which time action/arg are visible.
        e.budget.store(budget, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  /// Mark the calling thread as the victim (or unmark with false).
  static void set_victim(bool v = true) noexcept { victim_flag() = v; }
  static bool is_victim() noexcept { return victim_flag(); }

  /// Wake every parked kStall victim. Finite stalls resume the operation;
  /// kForever stalls convert into an InjectedCrash (the canonical
  /// "stalled thread finally dies" schedule).
  static void release_stalls() noexcept {
    released().store(true, std::memory_order_release);
  }

  /// Times an armed entry at `point` actually fired (test assertions).
  static std::uint64_t fired(const char* point) noexcept {
    for (auto& e : script()) {
      const char* p = e.point.load(std::memory_order_relaxed);
      if (p != nullptr && std::strcmp(p, point) == 0)
        return e.fired.load(std::memory_order_relaxed);
    }
    return 0;
  }

  static std::uint64_t stalls() noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }
  static std::uint64_t crashes() noexcept {
    return crashes_.load(std::memory_order_relaxed);
  }
  static std::uint64_t alloc_failures() noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }
  static std::uint64_t steps() noexcept {
    return steps_.load(std::memory_order_relaxed);
  }

  /// Suppress actions on the current thread (adoption and reclamation
  /// cleanup run *because of* a fault; injecting more faults into them
  /// would test nothing and deadlock plenty). Steps still advance.
  struct SuppressScope {
    SuppressScope() noexcept { ++suppress_depth(); }
    ~SuppressScope() noexcept { --suppress_depth(); }
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;
  };

  /// The hook behind WFQ_INJECT. Not noexcept: kCrash/kAllocFail throw.
  static void inject(const char* point) {
    std::uint64_t now = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (suppress_depth() > 0) return;
    // Alloc-fail applies to whichever thread reaches the seam next, victim
    // or not: a real OOM does not care who mapped the last page.
    if (std::strcmp(point, "seg_alloc_try") == 0) {
      std::uint64_t pending =
          alloc_fail_pending().load(std::memory_order_relaxed);
      while (pending > 0) {
        if (alloc_fail_pending().compare_exchange_weak(
                pending, pending - 1, std::memory_order_relaxed)) {
          alloc_failures_.fetch_add(1, std::memory_order_relaxed);
          throw InjectedBadAlloc{};
        }
      }
    }
    if (!victim_flag()) return;
    for (auto& e : script()) {
      const char* p = e.point.load(std::memory_order_relaxed);
      if (p == nullptr || std::strcmp(p, point) != 0) continue;
      std::uint32_t budget = e.budget.load(std::memory_order_acquire);
      while (budget > 0) {
        if (e.budget.compare_exchange_weak(budget, budget - 1,
                                           std::memory_order_acquire)) {
          e.fired.fetch_add(1, std::memory_order_relaxed);
          perform(e.action.load(std::memory_order_relaxed),
                  e.arg.load(std::memory_order_relaxed), point, now);
          return;
        }
      }
      return;  // matched but out of budget
    }
  }

 private:
  struct Entry {
    std::atomic<const char*> point{nullptr};
    std::atomic<Action> action{Action::kNone};
    std::atomic<std::uint32_t> budget{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> fired{0};
  };

  static void perform(Action a, std::uint64_t arg, const char* point,
                      std::uint64_t entry_step) {
    switch (a) {
      case Action::kNone:
        return;
      case Action::kYield:
        std::this_thread::yield();
        return;
      case Action::kDelay: {
        for (std::uint64_t i = 0, n = arg != 0 ? arg : 64; i < n; ++i) {
          std::atomic_signal_fence(std::memory_order_seq_cst);
        }
        return;
      }
      case Action::kStall:
        stalls_.fetch_add(1, std::memory_order_relaxed);
        park(arg, point, entry_step);
        return;
      case Action::kCrash:
        crashes_.fetch_add(1, std::memory_order_relaxed);
        throw InjectedCrash{point};
      case Action::kAllocFail:
        alloc_fail_pending().fetch_add(arg != 0 ? arg : 1,
                                       std::memory_order_relaxed);
        return;
    }
  }

  static void park(std::uint64_t arg, const char* point,
                   std::uint64_t entry_step) {
    // Stall progress is measured in *global steps* — other threads passing
    // injection points — so the victim stays parked exactly while the rest
    // of the system is forced to route around it. A wall-clock ceiling
    // keeps a mis-scripted test from hanging CI.
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() +
        (arg == kForever ? std::chrono::seconds(60) : std::chrono::seconds(5));
    for (;;) {
      if (released().load(std::memory_order_acquire)) break;
      if (arg != kForever &&
          steps_.load(std::memory_order_relaxed) >= entry_step + arg) {
        return;  // served its stall; operation resumes
      }
      if (Clock::now() >= deadline) {
        if (arg != kForever) return;
        break;
      }
      std::this_thread::yield();
    }
    if (arg == kForever) {
      // A permanently stalled thread that "wakes up" is indistinguishable
      // from one that died: convert to a crash so the leaked-guard /
      // adoption paths are what get exercised, never a resumed op.
      crashes_.fetch_add(1, std::memory_order_relaxed);
      throw InjectedCrash{point};
    }
  }

  static std::array<Entry, kMaxScript>& script() noexcept {
    static std::array<Entry, kMaxScript> s;
    return s;
  }
  static std::atomic<std::uint64_t>& alloc_fail_pending() noexcept {
    static std::atomic<std::uint64_t> v{0};
    return v;
  }
  static std::atomic<bool>& released() noexcept {
    static std::atomic<bool> v{false};
    return v;
  }
  static bool& victim_flag() noexcept {
    thread_local bool v = false;
    return v;
  }
  static int& suppress_depth() noexcept {
    thread_local int d = 0;
    return d;
  }

  static inline std::atomic<std::uint64_t> steps_{0};
  static inline std::atomic<std::uint64_t> stalls_{0};
  static inline std::atomic<std::uint64_t> crashes_{0};
  static inline std::atomic<std::uint64_t> alloc_failures_{0};
};

namespace detail {
template <class T, class = void>
struct InjectorOfImpl {
  using type = NullInjector;
};
template <class T>
struct InjectorOfImpl<T, std::void_t<typename T::Injector>> {
  using type = typename T::Injector;
};
}  // namespace detail

/// Traits::Injector if present, NullInjector otherwise — existing custom
/// traits types keep compiling unchanged.
template <class Traits>
using InjectorOf = typename detail::InjectorOfImpl<Traits>::type;

/// Catalog of every named injection point, for docs/TESTING.md and the
/// matrix test (which iterates it). Keep in sync with the WFQ_INJECT call
/// sites; the matrix test cross-checks reachability per point.
inline constexpr const char* kInjectionPoints[] = {
    // core/wf_queue_core.hpp — enqueue
    "enq_begin",           // after begin_op, before the first fast attempt
    "enq_faa_post",        // enq_fast: FAA'd tail, cell not yet written
    "enq_slow_published",  // enq_slow: request visible, no cell claimed
    "enq_slow_faa",        // enq_slow loop: FAA'd tail, candidate unreserved
    "enq_slow_claimed",    // request claimed to a cell, value not committed
    // core/wf_queue_core.hpp — dequeue
    "deq_begin",           // after begin_op, before the first fast attempt
    "deq_faa_post",        // deq_fast: FAA'd head, cell not yet consumed
    "deq_slow_published",  // deq_slow: request visible, not yet claimed
    "deq_help_peer",       // about to help the enqueue peer
    // core/wf_queue_core.hpp — helping
    "help_enq_sealed",     // help_enq: about to seal a cell with TOP
    "help_deq_scan",       // help_deq: candidate scan iteration
    "help_deq_announced",  // help_deq: candidate announced in prior field
    // core/wf_queue_core.hpp — batched ops
    "enq_bulk_faa_post",   // ticket span reserved, no cell written
    "deq_bulk_faa_post",   // ticket span reserved, no cell consumed
    // core/segment_list.hpp
    "seg_alloc_try",       // about to call operator new for a segment
    "seg_extend",          // walk_to: about to append a fresh segment
    // memory/segment_reclaim.hpp
    "reclaim_elected",     // won the cleaner election, scan not started
    "reclaim_frontier_set",// new frontier published, free loop not started
    // sync/blocking_queue.hpp
    "blk_push_ticket",     // in_push ticket visible, closed not yet checked
    "blk_pre_enqueue",     // closed checked, inner enqueue not yet started
    "blk_close_pre_seal",  // close(): producers quiesced, sealed not set
    "blk_pop_prepark",     // pop: about to publish waiter registration
    "blk_push_prepark",    // push_wait: space-waiter registered, queue
                           // still full, about to park
    // core/scq.hpp — bounded index rings (also wCQ's fast path)
    "ring_enq_faa",        // ring enqueue: ticket taken, entry not claimed
    "ring_deq_faa",        // ring dequeue: ticket taken, entry not examined
    // core/wcq.hpp — slow-path helping
    "wcq_enq_slow_published",  // enqueue request visible, no index claimed
    "wcq_help_install",    // helper: index claimed, entry not yet prepared
    "wcq_finalize",        // entry prepared, request not yet finalized
    // scale/sharded_queue.hpp — cross-lane work stealing
    "shard_steal_scan",    // dequeue sweep: about to probe a foreign lane
    // ipc/shm_queue.hpp — cross-process kill-9 windows. Each marks one
    // state the crash-recovery scan must be able to resolve when the
    // process dies exactly there (tools/soak --shm --kill9 SIGKILLs at
    // these points; docs/TESTING.md has the window-by-window argument).
    "shm_enq_pending",     // intent published, tail not yet FAA'd
    "shm_enq_ticketed",    // ticket recorded, cell not yet deposited
    "shm_enq_deposited",   // cell deposited, op record not yet cleared
    "shm_deq_pending",     // intent published, head not yet FAA'd
    "shm_deq_ticketed",    // ticket recorded, cell not yet taken
    "shm_deq_taken",       // value logged+taken, op record not yet cleared
    "shm_park",            // empty observed, about to futex-park
    "shm_extend",          // about to publish a fresh arena segment
    "shm_recover_scan",    // recovery: per-slot resolution iteration
};

inline constexpr std::size_t kInjectionPointCount =
    sizeof(kInjectionPoints) / sizeof(kInjectionPoints[0]);

}  // namespace wfq::fault

/// Injection hook. With NullInjector (any Traits without an `Injector`
/// member) the `if constexpr` discards the call *and* the point-name
/// string at compile time — release binaries carry zero overhead and no
/// point names (tools/ci.sh greps for this).
#define WFQ_INJECT(TraitsT, point)                           \
  do {                                                       \
    if constexpr (::wfq::fault::InjectorOf<TraitsT>::kEnabled) { \
      ::wfq::fault::InjectorOf<TraitsT>::inject(point);      \
    }                                                        \
  } while (0)
