// Ablation D: reclamation pressure (MAX_GARBAGE). §3.6 amortizes cleanup
// by letting up to MAX_GARBAGE retired segments accumulate before a
// dequeuer reclaims. This sweeps the threshold from eager (1) to disabled
// (effectively infinite) and reports throughput plus the peak live-segment
// footprint — the memory/time trade-off behind the paper's design choice.
#include <iostream>

#include "bench_common.hpp"

namespace wfq::bench {
namespace {

struct Seg256 : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 256;  // amplify churn
};

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();
  unsigned threads = std::max(2u, 2 * hw);

  std::cout << "== Ablation D: MAX_GARBAGE sweep (pairs workload, N=256, "
               "threads="
            << threads << ") ==\n\n";
  Table table({"max_garbage", "Mops/s (95% CI)", "cleanup passes",
               "segments freed", "live segments after"});
  const int64_t kOff = int64_t{1} << 60;
  for (int64_t mg : {int64_t{1}, int64_t{8}, int64_t{64}, int64_t{512}, kOff}) {
    WfConfig wf;
    wf.patience = 10;
    wf.max_garbage = mg;
    RunConfig cfg;
    cfg.kind = WorkloadKind::kPairs;
    cfg.threads = threads;
    cfg.total_ops = ops;
    cfg.use_delay = use_delay;
    auto ci = measure(mcfg, [&] {
      auto q = std::make_shared<WFQueue<uint64_t, Seg256>>(wf);
      return std::function<double()>(
          [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
    });
    WFQueue<uint64_t, Seg256> q(wf);
    (void)run_workload(q, cfg);
    auto s = q.stats();
    table.add_row({mg == kOff ? "off" : std::to_string(mg),
                   Table::fmt_ci(ci.mean, ci.half_width),
                   std::to_string(s.cleanups.load()),
                   std::to_string(s.segments_freed.load()),
                   std::to_string(q.live_segments())});
    std::cerr << "  [reclaim] mg=" << (mg == kOff ? -1 : mg) << " "
              << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s\n";
  }
  table.print();
  return 0;
}
