#!/usr/bin/env bash
# CI driver: build + test the repo in three configurations.
#
#   1. default      — RelWithDebInfo, full ctest suite
#   2. asan         — AddressSanitizer (leak detection on), full ctest suite;
#                     this is what proves the segment-backed queues do not
#                     leak segments
#   3. tsan         — ThreadSanitizer, core subset only (`ctest -L tsan`:
#                     common/core/memory tests); the full suite under TSan's
#                     ~10x slowdown exceeds practical CI budgets
#
# Usage: tools/ci.sh [default|asan|tsan]...   (no args = all three)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
CONFIGS=("$@")
[ ${#CONFIGS[@]} -eq 0 ] && CONFIGS=(default asan tsan)

run_config() {
  local name=$1
  shift
  local dir="build-ci-${name}"
  echo "== [${name}] configure =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== [${name}] build =="
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== [${name}] test =="
  case "${name}" in
    tsan)
      # TSAN_OPTIONS halt_on_error keeps a race from scrolling past.
      (cd "${dir}" && TSAN_OPTIONS=halt_on_error=1 \
        ctest -L tsan --output-on-failure -j "${JOBS}")
      ;;
    asan)
      (cd "${dir}" && ASAN_OPTIONS=detect_leaks=1 \
        ctest --output-on-failure -j "${JOBS}")
      ;;
    *)
      (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
      ;;
  esac
  echo "== [${name}] OK =="
}

for cfg in "${CONFIGS[@]}"; do
  case "${cfg}" in
    default) run_config default ;;
    asan) run_config asan -DWFQ_SANITIZE=address ;;
    tsan) run_config tsan -DWFQ_SANITIZE=thread ;;
    *)
      echo "unknown config '${cfg}' (want default|asan|tsan)" >&2
      exit 2
      ;;
  esac
done
echo "All configs passed."
