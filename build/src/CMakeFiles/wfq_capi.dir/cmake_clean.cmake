file(REMOVE_RECURSE
  "CMakeFiles/wfq_capi.dir/capi/wfq_c.cpp.o"
  "CMakeFiles/wfq_capi.dir/capi/wfq_c.cpp.o.d"
  "libwfq_capi.a"
  "libwfq_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfq_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
