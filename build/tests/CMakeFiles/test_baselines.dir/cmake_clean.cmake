file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/ccqueue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/ccqueue_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/faaq_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/faaq_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/kp_queue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/kp_queue_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/lcrq_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/lcrq_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/ms_queue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/ms_queue_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/mutex_queue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/mutex_queue_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/obstruction_queue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/obstruction_queue_test.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/sim_queue_test.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/sim_queue_test.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
