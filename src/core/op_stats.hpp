// Operation-path counters for the wait-free queue.
//
// Table 2 of the paper reports, for WF-0 on Haswell, the percentage of
// enqueues/dequeues completed on the slow path and of dequeues returning
// EMPTY. These counters instrument exactly those paths. They are per-handle
// (thread-local, uncontended) relaxed atomics so that collection is safe
// while threads run; the increment cost is one uncontended cached add and
// does not perturb the measured operation.
//
// The field set is generated from the X-macro table in
// src/capi/wfq_stats_fields.h — the single source of truth shared with the
// C API's wfq_stats_ex_t. add(), reset(), for_each_field and kFieldCount
// all expand from the same table, so a new counter cannot drift out of any
// of them (the old hand-maintained lists lost counters twice).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "capi/wfq_stats_fields.h"

namespace wfq {

/// Per-handle path counters. All increments are relaxed; aggregation reads
/// are relaxed too (counts are only interpreted after a benchmark phase
/// joins its threads, or as an approximate running breakdown).
///
/// Per-field documentation lives in wfq_stats_fields.h next to each entry.
struct OpStats {
#define WFQ_STATS_DECL(name) std::atomic<uint64_t> name{0};
  WFQ_STATS_FIELDS(WFQ_STATS_DECL, WFQ_STATS_DECL)
#undef WFQ_STATS_DECL

  /// Number of counters in the table (== fields of wfq_stats_ex_t).
  static constexpr std::size_t kFieldCount = 0
#define WFQ_STATS_ONE(name) +1
      WFQ_STATS_FIELDS(WFQ_STATS_ONE, WFQ_STATS_ONE)
#undef WFQ_STATS_ONE
      ;

  OpStats() = default;
  // Copyable as a relaxed snapshot (atomics delete the default copy).
  OpStats(const OpStats& o) noexcept { *this = o; }
  OpStats& operator=(const OpStats& o) noexcept {
    reset();
    add(o);
    return *this;
  }

  /// Atomic maximum: CAS loop so two threads aggregating concurrently can
  /// never lose the larger value (a plain load-compare-store could overwrite
  /// a concurrent raise with a smaller one).
  static void raise_max(std::atomic<uint64_t>& a, uint64_t v) noexcept {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
  }

  void add(const OpStats& o) noexcept {
    auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
#define WFQ_STATS_ADD(name) \
  name.fetch_add(ld(o.name), std::memory_order_relaxed);
#define WFQ_STATS_MAX(name) raise_max(name, ld(o.name));
    WFQ_STATS_FIELDS(WFQ_STATS_ADD, WFQ_STATS_MAX)
#undef WFQ_STATS_ADD
#undef WFQ_STATS_MAX
  }

  void reset() noexcept {
#define WFQ_STATS_RESET(name) name.store(0, std::memory_order_relaxed);
    WFQ_STATS_FIELDS(WFQ_STATS_RESET, WFQ_STATS_RESET)
#undef WFQ_STATS_RESET
  }

  /// Visit every (name, value) pair in table order — the C API copy, the
  /// soak's --metrics report and the round-trip test all iterate this
  /// instead of keeping their own field list.
  template <class F>
  void for_each_field(F&& f) const {
#define WFQ_STATS_VISIT(name) f(#name, name.load(std::memory_order_relaxed));
    WFQ_STATS_FIELDS(WFQ_STATS_VISIT, WFQ_STATS_VISIT)
#undef WFQ_STATS_VISIT
  }

  uint64_t enqueues() const noexcept {
    return enq_fast.load(std::memory_order_relaxed) +
           enq_slow.load(std::memory_order_relaxed) +
           enq_bulk_fast.load(std::memory_order_relaxed);
  }
  uint64_t dequeues() const noexcept {
    return deq_fast.load(std::memory_order_relaxed) +
           deq_slow.load(std::memory_order_relaxed) +
           deq_bulk_fast.load(std::memory_order_relaxed);
  }

  double avg_enq_probes() const noexcept {
    uint64_t n = enqueues();
    return n ? double(enq_probes.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double avg_deq_probes() const noexcept {
    uint64_t n = dequeues();
    return n ? double(deq_probes.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }

  /// Percentage helpers used by the Table 2 reproduction.
  double pct_slow_enq() const noexcept {
    uint64_t n = enqueues();
    return n ? 100.0 * double(enq_slow.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double pct_slow_deq() const noexcept {
    uint64_t n = dequeues();
    return n ? 100.0 * double(deq_slow.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
  double pct_empty_deq() const noexcept {
    uint64_t n = dequeues();
    return n ? 100.0 * double(deq_empty.load(std::memory_order_relaxed)) / double(n)
             : 0.0;
  }
};

// The struct is nothing but the table's atomics: any stray member (or a
// table entry that failed to expand) breaks this, which in turn guarantees
// the C mirror struct below can be filled positionally-by-name.
static_assert(sizeof(OpStats) ==
                  OpStats::kFieldCount * sizeof(std::atomic<uint64_t>),
              "OpStats must contain exactly the X-macro table's counters");

}  // namespace wfq
