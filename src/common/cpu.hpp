// CPU topology helpers: hardware-thread count and the "compact" software →
// hardware thread mapping the paper uses (§5.1: each software thread is
// mapped to the hardware thread closest to previously mapped threads).
#pragma once

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <cstddef>
#include <thread>
#include <vector>

namespace wfq {

/// Number of online hardware threads (≥ 1).
inline unsigned hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Pins the calling thread to CPU `cpu % hardware_threads()`.
///
/// With a compact enumeration of CPUs this realizes the paper's mapping on
/// single-socket hosts: thread i shares a core with thread i±1 when SMT is
/// on. (Reconstructing sibling order from /sys is done by the platform
/// module; for benchmark purposes the modulo mapping also handles
/// oversubscribed runs, which the paper's Table 2 explicitly exercises.)
/// Returns false if the affinity call failed (e.g. restricted cpuset); the
/// benchmark proceeds unpinned in that case.
inline bool pin_to_cpu(unsigned cpu) noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_threads(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

/// The compact mapping for `n` software threads: thread i → CPU order[i].
/// On this reproduction host the order is simply 0..hw-1 cycled; the
/// function exists so a multi-socket port only has to change one place.
inline std::vector<unsigned> compact_cpu_order(unsigned n) {
  std::vector<unsigned> order(n);
  const unsigned hw = hardware_threads();
  for (unsigned i = 0; i < n; ++i) order[i] = i % hw;
  return order;
}

}  // namespace wfq
