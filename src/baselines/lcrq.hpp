// LCRQ: Morrison & Afek's lock-free linked concurrent ring queue
// (PPoPP'13), the best-performing prior queue in the paper's Figure 2.
//
// Each segment is a CRQ: a ring of R cells indexed by unbounded head/tail
// counters. FAA acquires an index; a double-width CAS (CAS2) transitions
// the 16-byte cell (state word, value word). A CRQ that fills or livelocks
// is "closed" (tail bit 63) and a fresh CRQ is linked behind it, MS-Queue
// style. Hazard pointers reclaim drained CRQs (added by the paper's
// evaluation, §5.1).
//
// Cell state word layout: bit 63 = "safe", bits 62..0 = cell index. A cell
// (safe=1, idx=k, val=EMPTY) accepts an enqueue for index k' >= k (k' ≡ k
// mod R); dequeuers that overtake an index mark the cell unsafe so a tardy
// enqueuer cannot deposit a value that would never be found.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/slot_codec.hpp"
#include "memory/hazard_pointers.hpp"

namespace wfq::baselines {

template <class T, std::size_t kRingSize = 4096>
class LCRQ {
  static_assert((kRingSize & (kRingSize - 1)) == 0,
                "ring size must be a power of two");

  using Codec = SlotCodec<T>;
  static constexpr uint64_t kEmptyVal = ~uint64_t{0};  // codec never emits it
  static constexpr uint64_t kSafeBit = uint64_t{1} << 63;
  static constexpr uint64_t kIdxMask = kSafeBit - 1;
  static constexpr uint64_t kClosedBit = uint64_t{1} << 63;  // on CRQ tail
  /// Enqueue attempts on one CRQ before declaring livelock and closing it
  /// (Morrison & Afek's starvation counter).
  static constexpr int kStarvationLimit = 4096;

  struct CRQ {
    CacheAligned<std::atomic<uint64_t>> head;
    CacheAligned<std::atomic<uint64_t>> tail;  // bit 63: closed
    CacheAligned<std::atomic<CRQ*>> next;
    U128 ring[kRingSize];

    explicit CRQ(uint64_t first_val = kEmptyVal) {
      head->store(0, std::memory_order_relaxed);
      next->store(nullptr, std::memory_order_relaxed);
      for (std::size_t i = 0; i < kRingSize; ++i) {
        ring[i] = U128{kSafeBit | i, kEmptyVal};
      }
      if (first_val != kEmptyVal) {
        // Seed a fresh CRQ with the value whose enqueue closed the old one.
        ring[0] = U128{kSafeBit | 0, first_val};
        tail->store(1, std::memory_order_relaxed);
      } else {
        tail->store(0, std::memory_order_relaxed);
      }
    }
  };

  using Domain = HazardPointerDomain<1>;

 public:
  using value_type = T;

  class Handle {
   public:
    Handle(Handle&& o) noexcept : q_(o.q_), rec_(o.rec_) { o.rec_ = nullptr; }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (rec_ != nullptr) q_->hp_.release(rec_);
    }

   private:
    friend class LCRQ;
    explicit Handle(LCRQ& q) : q_(&q), rec_(q.hp_.acquire()) {}
    LCRQ* q_;
    typename Domain::ThreadRec* rec_;
  };

  LCRQ() {
    CRQ* crq = aligned_new<CRQ>();
    head_->store(crq, std::memory_order_relaxed);
    tail_->store(crq, std::memory_order_relaxed);
  }

  LCRQ(const LCRQ&) = delete;
  LCRQ& operator=(const LCRQ&) = delete;

  ~LCRQ() {
    // Drain boxed payloads, then free the CRQ list.
    CRQ* crq = head_->load(std::memory_order_relaxed);
    while (crq != nullptr) {
      if constexpr (Codec::kBoxed) {
        // Visit each physical cell once: a non-empty value word is a
        // deposited-but-unconsumed payload (consumed cells are reset to
        // kEmptyVal by the dequeue transition).
        for (std::size_t i = 0; i < kRingSize; ++i) {
          uint64_t v = crq->ring[i].hi;
          if (v != kEmptyVal) Codec::destroy_slot(v);
        }
      }
      CRQ* next = crq->next->load(std::memory_order_relaxed);
      aligned_delete(crq);
      crq = next;
    }
  }

  Handle get_handle() { return Handle(*this); }

  void enqueue(Handle& h, T v) {
    uint64_t val = Codec::encode(std::move(v));
    for (;;) {
      CRQ* crq = hp_.protect(h.rec_, 0, *tail_);
      CRQ* next = crq->next->load(std::memory_order_acquire);
      if (next != nullptr) {
        // Tail CRQ pointer lagging; help swing it.
        tail_->compare_exchange_strong(crq, next, std::memory_order_release,
                                       std::memory_order_relaxed);
        continue;
      }
      if (crq_enqueue(crq, val)) {
        hp_.clear(h.rec_, 0);
        return;
      }
      // CRQ closed: link a fresh one seeded with our value.
      CRQ* ncrq = aligned_new<CRQ>(val);
      CRQ* expected = nullptr;
      if (crq->next->compare_exchange_strong(expected, ncrq,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
        tail_->compare_exchange_strong(crq, ncrq, std::memory_order_release,
                                       std::memory_order_relaxed);
        hp_.clear(h.rec_, 0);
        return;
      }
      aligned_delete(ncrq);  // lost the linking race; retry on the winner
    }
  }

  std::optional<T> dequeue(Handle& h) {
    for (;;) {
      CRQ* crq = hp_.protect(h.rec_, 0, *head_);
      uint64_t val;
      if (crq_dequeue(crq, val)) {
        hp_.clear(h.rec_, 0);
        return Codec::decode(val);
      }
      // This CRQ observed empty. Without a successor, the queue is empty;
      // with one, the CRQ is closed and drained — retire it and move on.
      if (crq->next->load(std::memory_order_acquire) == nullptr) {
        hp_.clear(h.rec_, 0);
        return std::nullopt;
      }
      CRQ* expected = crq;
      if (head_->compare_exchange_strong(expected,
                                         crq->next->load(std::memory_order_acquire),
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
        hp_.clear(h.rec_, 0);
        hp_.retire(h.rec_, crq,
                   [](void* p) { aligned_delete(static_cast<CRQ*>(p)); });
      }
    }
  }

  /// Diagnostics: CRQ segments currently linked (test helper).
  std::size_t live_crqs() const {
    std::size_t n = 0;
    for (CRQ* c = head_->load(std::memory_order_acquire); c != nullptr;
         c = c->next->load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  static bool closed(uint64_t tail_word) {
    return (tail_word & kClosedBit) != 0;
  }

  /// Enqueue into one CRQ; false <=> the CRQ is (now) closed.
  bool crq_enqueue(CRQ* q, uint64_t val) {
    int attempts = 0;
    for (;;) {
      uint64_t t_raw = q->tail->fetch_add(1, std::memory_order_seq_cst);
      if (closed(t_raw)) return false;
      uint64_t t = t_raw & kIdxMask;
      U128* cell = &q->ring[t & (kRingSize - 1)];
      U128 c = load2(cell);
      uint64_t idx = c.lo & kIdxMask;
      bool safe = (c.lo & kSafeBit) != 0;
      if (c.hi == kEmptyVal && idx <= t &&
          (safe || q->head->load(std::memory_order_seq_cst) <= t)) {
        if (cas2(cell, c, U128{kSafeBit | t, val})) return true;
      }
      // Full or starving: close the CRQ so the list can grow.
      uint64_t head = q->head->load(std::memory_order_seq_cst);
      if (t - head >= kRingSize || ++attempts >= kStarvationLimit) {
        q->tail->fetch_or(kClosedBit, std::memory_order_seq_cst);
        return false;
      }
    }
  }

  /// Dequeue from one CRQ; false <=> the CRQ was observed empty.
  bool crq_dequeue(CRQ* q, uint64_t& out) {
    for (;;) {
      uint64_t h = q->head->fetch_add(1, std::memory_order_seq_cst);
      U128* cell = &q->ring[h & (kRingSize - 1)];
      for (;;) {
        U128 c = load2(cell);
        uint64_t idx = c.lo & kIdxMask;
        uint64_t safe_bit = c.lo & kSafeBit;
        if (c.hi != kEmptyVal) {
          if (idx == h) {
            // Our value: consume it, advancing the cell to the next lap.
            if (cas2(cell, c, U128{safe_bit | (h + kRingSize), kEmptyVal})) {
              out = c.hi;
              return true;
            }
          } else {
            // A value for a later lap: mark the cell unsafe so its
            // enqueuer's lap-h peer cannot deposit at an index we passed.
            if (cas2(cell, c, U128{idx, c.hi})) break;
          }
        } else {
          // Empty cell: advance its index so a tardy lap-h enqueuer fails.
          if (cas2(cell, c, U128{safe_bit | (h + kRingSize), kEmptyVal})) {
            break;
          }
        }
      }
      // Missed; if the CRQ has no more values, report empty.
      uint64_t t = q->tail->load(std::memory_order_seq_cst) & kIdxMask;
      if (t <= h + 1) {
        fix_state(q);
        return false;
      }
    }
  }

  /// After dequeuers overrun the tail, push tail back up to head so the
  /// next enqueue lands on a live index (Morrison & Afek's fixState).
  void fix_state(CRQ* q) {
    for (;;) {
      uint64_t t_raw = q->tail->load(std::memory_order_seq_cst);
      uint64_t h = q->head->load(std::memory_order_seq_cst);
      if ((t_raw & kIdxMask) >= h) return;
      uint64_t desired = (t_raw & kClosedBit) | h;
      if (q->tail->compare_exchange_strong(t_raw, desired,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
        return;
      }
    }
  }

  CacheAligned<std::atomic<CRQ*>> head_;
  CacheAligned<std::atomic<CRQ*>> tail_;
  Domain hp_;
};

}  // namespace wfq::baselines
