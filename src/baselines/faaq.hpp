// The FAA microbenchmark of §5: "simulates enqueue and dequeue operations
// with FAA primitives on two shared variables: one for enqueues and the
// other for dequeues. This simple microbenchmark provides a practical upper
// bound for the throughput of all queue implementations based on FAA."
//
// It is NOT a queue — no values are transferred — but it models the same
// contended-counter traffic pattern, so it conforms to the ConcurrentQueue
// concept (dequeue fabricates a value iff an enqueue ticket is available)
// purely so the harness can drive it uniformly.
//
// Since the segment-layer split, each ticket also touches its cell in a
// shared SegmentList: the microbenchmark now bounds segment-backed
// FAA queues specifically (FAA + infinite-array cell access + reclamation,
// minus all correctness protocol), making its memory footprint directly
// comparable to the real queues in bench_reclaim_scheme instead of
// trivially zero. The contended FAAs remain the dominant cost.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/segment_queue_base.hpp"
#include "core/wf_queue_core.hpp"

namespace wfq::baselines {

/// One microbenchmark cell: a stamp word the ticket holder writes. The
/// write is what forces the realistic cache-line traffic; the value is
/// never read back. `reset()` is the SegmentList pool-recycling hook.
struct FaaCell {
  std::atomic<uint64_t> stamp{0};

  void reset() { stamp.store(0, std::memory_order_relaxed); }
};

template <class T, class Faa = NativeFaa, class Traits = DefaultWfTraits>
class FAAQueue : private SegmentQueueBase<FaaCell, Traits> {
  using Base = SegmentQueueBase<FaaCell, Traits>;

 public:
  using value_type = T;
  using Handle = typename Base::HandleGuard;

  /// `max_garbage` is the reclamation threshold, as in WfConfig.
  explicit FAAQueue(int64_t max_garbage = 64) : Base(max_garbage) {}

  Handle get_handle() { return Handle(*this); }

  /// One FAA on the enqueue hot spot, one stamp of the ticket's cell; the
  /// value is dropped.
  void enqueue(Handle& h, T) {
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->tail);
    uint64_t t = Faa::fetch_add(*enq_ticket_, uint64_t{1},
                                std::memory_order_seq_cst);
    FaaCell* c = this->cell_at(hp, hp->tail, t, "faa_enq");
    c->stamp.store(t + 1, std::memory_order_release);
    this->rcl_.end_op(hp);
  }

  /// One FAA on the dequeue hot spot, one stamp of the ticket's cell;
  /// fabricates T{} while tickets remain.
  std::optional<T> dequeue(Handle& h) {
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->head);
    uint64_t d = Faa::fetch_add(*deq_ticket_, uint64_t{1},
                                std::memory_order_seq_cst);
    FaaCell* c = this->cell_at(hp, hp->head, d, "faa_deq");
    c->stamp.store(d + 1, std::memory_order_release);
    bool ticketed = d < enq_ticket_->load(std::memory_order_relaxed);
    this->rcl_.end_op(hp);
    this->poll_reclaim(hp, *deq_ticket_, *enq_ticket_);
    if (ticketed) return T{};
    return std::nullopt;
  }

  /// Bulk variant: one FAA reserves `count` tickets, each cell is stamped.
  /// The upper bound the real bulk queues chase — one contended FAA plus
  /// `count` uncontended cell writes, no correctness protocol.
  void enqueue_bulk(Handle& h, const T*, std::size_t count) {
    if (count == 0) return;
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->tail);
    uint64_t base = Faa::fetch_add(*enq_ticket_, uint64_t(count),
                                   std::memory_order_seq_cst);
    stamp_range(hp, hp->tail, base, count, "faa_enq_bulk");
    this->rcl_.end_op(hp);
  }

  /// Bulk variant: one FAA reserves `count` tickets; fabricates T{} for
  /// each ticket that had a matching enqueue ticket.
  std::size_t dequeue_bulk(Handle& h, T* out, std::size_t count) {
    if (count == 0) return 0;
    auto* hp = h.get();
    this->rcl_.begin_op(hp, hp->head);
    uint64_t base = Faa::fetch_add(*deq_ticket_, uint64_t(count),
                                   std::memory_order_seq_cst);
    stamp_range(hp, hp->head, base, count, "faa_deq_bulk");
    uint64_t avail = enq_ticket_->load(std::memory_order_relaxed);
    std::size_t got = avail > base
                          ? std::size_t(std::min<uint64_t>(avail - base, count))
                          : 0;
    this->rcl_.end_op(hp);
    this->poll_reclaim(hp, *deq_ticket_, *enq_ticket_);
    for (std::size_t j = 0; j < got; ++j) out[j] = T{};
    return got;
  }

  uint64_t enqueues() const {
    return enq_ticket_->load(std::memory_order_relaxed);
  }
  uint64_t dequeues() const {
    return deq_ticket_->load(std::memory_order_relaxed);
  }

  using Base::live_segments;
  using Base::peak_live_segments;
  using Base::reclaimer;
  using Base::segments_outstanding;

 private:
  using BaseHandle = typename Base::Handle;

  /// Stamp `count` consecutive ticket cells resolved with one segment walk.
  void stamp_range(BaseHandle* hp,
                   std::atomic<typename Base::Segment*>& sp, uint64_t base,
                   std::size_t count, const char* who) {
    FaaCell* cells[kChunk];
    for (std::size_t done = 0; done < count;) {
      const std::size_t take = std::min(count - done, kChunk);
      this->cells_at(hp, sp, base + done, take, cells, who);
      for (std::size_t j = 0; j < take; ++j) {
        cells[j]->stamp.store(base + done + j + 1, std::memory_order_release);
      }
      done += take;
    }
  }

  static constexpr std::size_t kChunk = 64;

  CacheAligned<std::atomic<uint64_t>> enq_ticket_{0};
  CacheAligned<std::atomic<uint64_t>> deq_ticket_{0};
};

}  // namespace wfq::baselines
