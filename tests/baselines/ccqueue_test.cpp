// Correctness tests for the CC-Queue combining baseline.
#include "baselines/ccqueue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/queue_test_util.hpp"

namespace wfq::baselines {
namespace {

TEST(CcQueue, StartsEmpty) {
  CCQueue<uint64_t> q;
  auto h = q.get_handle();
  EXPECT_FALSE(q.dequeue(h).has_value());
}

TEST(CcQueue, SequentialFifo) {
  CCQueue<uint64_t> q;
  test::run_sequential_fifo(q, 5000);
}

TEST(CcQueue, ReusableAfterEmpty) {
  CCQueue<uint64_t> q;
  auto h = q.get_handle();
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(q.dequeue(h).has_value());
    q.enqueue(h, round + 1);
    EXPECT_EQ(q.dequeue(h), uint64_t(round + 1));
  }
}

TEST(CcQueue, BoxedPayloads) {
  CCQueue<std::string> q;
  auto h = q.get_handle();
  q.enqueue(h, "alpha");
  q.enqueue(h, "beta");
  EXPECT_EQ(q.dequeue(h), "alpha");
  EXPECT_EQ(q.dequeue(h), "beta");
}

TEST(CcQueue, MpmcPropertyDefault) {
  CCQueue<uint64_t> q;
  test::run_mpmc_property(q, 4, 4, 4000);
}

TEST(CcQueue, MpmcPropertyManyThreads) {
  // > kCombineLimit waiters would be needed to exercise combiner handoff
  // fully; 16 threads at least rotates the combiner role continuously.
  CCQueue<uint64_t> q;
  test::run_mpmc_property(q, 8, 8, 1500);
}

TEST(CcQueue, PairsConservation) {
  CCQueue<uint64_t> q;
  test::run_pairs_conservation(q, 8, 3000);
}

TEST(CcQueue, DestructionWithBacklogDoesNotLeak) {
  auto* q = new CCQueue<std::string>();
  {
    auto h = q->get_handle();
    for (int i = 0; i < 1000; ++i) q->enqueue(h, "x" + std::to_string(i));
  }
  delete q;
}

}  // namespace
}  // namespace wfq::baselines
