// SCQ — the Scalable Circular Queue (Nikolaev, DISC'19; arXiv:1908.04511),
// the portable single-width-CAS member of the bounded family.
//
// Two index rings of 2n entries each (fq = free indices, aq = allocated
// indices) plus a data array of n slots: the SCQD construction from the
// paper. Each ring entry packs, in one 64-bit word the platform can CAS
// without CAS2:
//
//     [ cycle | is_safe (1 bit) | index (lg 2n bits, low) ]
//
// The index field sits in the LOW bits so a dequeue can *consume* an entry
// with one fetch_or that sets the index to ⊥ (all-ones) while preserving
// the cycle and safe bits — the paper's OR trick, which is what makes the
// consume unconditional (no CAS retry on the hot dequeue path).
//
// Livelock freedom on enqueue comes from the ring being twice the capacity:
// at most n indices are ever live, so a fetch_add on tail reaches a usable
// entry within a bounded number of tickets. Dequeue termination on an empty
// queue comes from the `threshold` counter (reset to 3n-1 by every
// successful enqueue, decremented by every failed dequeue transition): when
// it drops below zero the queue was linearizably empty. Section 13 of
// docs/ALGORITHM.md walks through both arguments.
//
// Progress: lock-free, not wait-free — a dequeuer can push an enqueuer's
// ticket into a retry (bounded only by the threshold/2n structure, not by
// the thread count). The wait-free bounded sibling is core/wcq.hpp, which
// layers wCQ-style slow-path helping over these same rings.
//
// Plumbing: handles register through the same HandleRegistry discipline as
// every other backend (with NullReclaim — all storage is allocated at
// construction, capacity() is a hard bound and footprint_bytes() is exact),
// stats flow through the OpStats X-macro fields, fault injection and
// metrics ride the Traits seams unchanged.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/handle_registry.hpp"
#include "core/op_stats.hpp"
#include "core/queue_concepts.hpp"
#include "core/slot_codec.hpp"
#include "harness/fault_inject.hpp"
#include "obs/metrics.hpp"

namespace wfq {

/// Traits for the ring backends when the full DefaultWfTraits (segment
/// sizing, reclamation policy) is irrelevant. Any WF traits type works too:
/// the rings read only Faa / kCollectStats / Injector / Metrics, each with
/// a detected default, so pre-existing custom traits compile unchanged.
struct DefaultRingTraits {
  static constexpr bool kCollectStats = true;
  using Faa = NativeFaa;
};

namespace detail {

template <class Traits, class = void>
struct RingFaaOf {
  using type = NativeFaa;
};
template <class Traits>
struct RingFaaOf<Traits, std::void_t<typename Traits::Faa>> {
  using type = typename Traits::Faa;
};

template <class Traits, class = void>
struct RingCollectStats : std::true_type {};
template <class Traits>
struct RingCollectStats<Traits, std::void_t<decltype(Traits::kCollectStats)>>
    : std::bool_constant<Traits::kCollectStats> {};

/// Smallest power of two >= v (v >= 1).
constexpr std::size_t ceil_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr unsigned log2_pow2(std::size_t v) {
  unsigned lg = 0;
  while ((std::size_t{1} << lg) < v) ++lg;
  return lg;
}

}  // namespace detail

/// One SCQ ring of indices in [0, capacity): the paper's Figure 7 algorithm
/// with the threshold extension. Used twice per value queue (fq/aq) and
/// reused by the wCQ backend for its free-index side.
template <class Traits = DefaultRingTraits>
class ScqRing {
 public:
  using Faa = typename detail::RingFaaOf<Traits>::type;

  /// `capacity` must be a power of two; the ring itself has 2*capacity
  /// entries (the 2n trick that bounds enqueue retries).
  explicit ScqRing(std::size_t capacity)
      : n_(capacity),
        ring_(2 * capacity),
        lg_ring_(detail::log2_pow2(2 * capacity)),
        entries_(new std::atomic<uint64_t>[2 * capacity]) {
    assert(n_ >= 1 && (n_ & (n_ - 1)) == 0 && "capacity must be a power of 2");
    init_empty();
  }

  ScqRing(const ScqRing&) = delete;
  ScqRing& operator=(const ScqRing&) = delete;

  /// Empty ring: every entry (cycle 0, safe, ⊥); head = tail = 2n so live
  /// tickets carry cycle >= 1 and always dominate the initial entries;
  /// threshold negative = observably empty without touching head.
  void init_empty() {
    for (std::size_t j = 0; j < ring_; ++j) {
      entries_[j].store(pack(0, true, bot()), std::memory_order_relaxed);
    }
    head_->store(ring_, std::memory_order_relaxed);
    tail_->store(ring_, std::memory_order_relaxed);
    threshold_->store(-1, std::memory_order_relaxed);
  }

  /// Full ring holding indices 0..n-1 in order (the initial free list):
  /// positions 0..n-1 hold (cycle 1, safe, j) — consumable by head tickets
  /// 2n..3n-1 (cycle 1) — and tail starts at 3n, whose tickets (cycle 1,
  /// positions n..) land on the (cycle 0, ⊥) upper half.
  void init_full() {
    for (std::size_t j = 0; j < n_; ++j) {
      entries_[remap(j)].store(pack(1, true, uint64_t(j)),
                               std::memory_order_relaxed);
    }
    for (std::size_t j = n_; j < ring_; ++j) {
      entries_[remap(j)].store(pack(0, true, bot()), std::memory_order_relaxed);
    }
    head_->store(ring_, std::memory_order_relaxed);
    tail_->store(ring_ + n_, std::memory_order_relaxed);
    threshold_->store(threshold_reset(), std::memory_order_relaxed);
  }

  /// Insert index `idx` (< capacity). Never fails when at most `capacity`
  /// indices circulate (the SCQD usage); `probes` accumulates ticket
  /// attempts for the OpStats probe counters.
  void enqueue(uint64_t idx, uint64_t& probes) noexcept {
    assert(idx < n_);
    for (;;) {
      ++probes;
      const uint64_t t =
          Faa::fetch_add(*tail_, 1, std::memory_order_seq_cst);
      WFQ_INJECT(Traits, "ring_enq_faa");
      const uint64_t cyc = t >> lg_ring_;
      const std::size_t j = remap(t);
      uint64_t e = entries_[j].load(std::memory_order_acquire);
      for (;;) {
        // An unsafe entry is reusable only while Head <= T: then the
        // dequeuer ticket for this cycle has not been issued yet, so the
        // installed value is guaranteed a future consumer. (Head past T
        // means that dequeuer may already have scanned and left.)
        if (!(cycle_of(e) < cyc && idx_of(e) == bot() &&
              (safe_of(e) ||
               int64_t(head_->load(std::memory_order_seq_cst) - t) <= 0))) {
          break;  // entry unusable at this ticket: take another
        }
        if (entries_[j].compare_exchange_weak(e, pack(cyc, true, idx),
                                              std::memory_order_seq_cst,
                                              std::memory_order_acquire)) {
          // Revive empty-side dequeuers: a value exists, so the failed-
          // transition budget goes back to its maximum (paper Fig 7).
          if (threshold_->load(std::memory_order_seq_cst) !=
              threshold_reset()) {
            threshold_->store(threshold_reset(), std::memory_order_seq_cst);
          }
          return;
        }
        // CAS refreshed `e`; re-evaluate the same ticket.
      }
    }
  }

  /// Remove the oldest index into `*out`. False <=> observed empty.
  bool dequeue(uint64_t* out, uint64_t& probes) noexcept {
    if (threshold_->load(std::memory_order_seq_cst) < 0) {
      return false;  // empty fast path: no ticket burned
    }
    for (;;) {
      ++probes;
      const uint64_t h =
          Faa::fetch_add(*head_, 1, std::memory_order_seq_cst);
      WFQ_INJECT(Traits, "ring_deq_faa");
      const uint64_t cyc = h >> lg_ring_;
      const std::size_t j = remap(h);
      uint64_t e = entries_[j].load(std::memory_order_acquire);
      for (;;) {
        const uint64_t ecyc = cycle_of(e);
        if (ecyc == cyc) {
          // Consume: one unconditional OR sets the index to ⊥, preserving
          // cycle and safe. Only this ticket's owner can have a matching
          // cycle, so the pre-OR index is ours.
          const uint64_t prev =
              entries_[j].fetch_or(idx_mask(), std::memory_order_acq_rel);
          assert(idx_of(prev) != bot() && "consume raced a same-cycle ⊥");
          *out = idx_of(prev);
          return true;
        }
        if (ecyc < cyc) {
          // Our ticket overtook this entry. ⊥-entries advance to our cycle
          // (keeping safe); occupied entries are marked unsafe so a slower
          // enqueuer of that stale cycle cannot be consumed out of order.
          const uint64_t ne = idx_of(e) == bot()
                                  ? pack(cyc, safe_of(e), bot())
                                  : (e & ~safe_mask());
          if (ne != e &&
              !entries_[j].compare_exchange_weak(e, ne,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_acquire)) {
            continue;  // entry moved; re-examine it
          }
        }
        break;
      }
      // No value at this ticket: empty-detect before retrying.
      const uint64_t t = tail_->load(std::memory_order_seq_cst);
      if (int64_t(t - (h + 1)) <= 0) {
        catchup(t, h + 1);
        threshold_->fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
      if (threshold_->fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        return false;
      }
    }
  }

  std::size_t capacity() const noexcept { return n_; }

  /// tail - head clamped to [0, capacity]: a heuristic occupancy count
  /// (tickets in flight make it approximate, like WFQueueCore::approx_size).
  std::size_t approx_size() const noexcept {
    const uint64_t t = tail_->load(std::memory_order_acquire);
    const uint64_t h = head_->load(std::memory_order_acquire);
    const int64_t d = int64_t(t - h);
    if (d <= 0) return 0;
    return std::size_t(d) < n_ ? std::size_t(d) : n_;
  }

  std::size_t footprint_bytes() const noexcept {
    return ring_ * sizeof(std::atomic<uint64_t>) + 3 * kCacheLineSize;
  }

 private:
  uint64_t bot() const noexcept { return idx_mask(); }
  uint64_t idx_mask() const noexcept { return (uint64_t{1} << lg_ring_) - 1; }
  uint64_t safe_mask() const noexcept { return uint64_t{1} << lg_ring_; }
  uint64_t pack(uint64_t cycle, bool safe, uint64_t idx) const noexcept {
    return (cycle << (lg_ring_ + 1)) | (uint64_t(safe) << lg_ring_) | idx;
  }
  uint64_t cycle_of(uint64_t e) const noexcept { return e >> (lg_ring_ + 1); }
  bool safe_of(uint64_t e) const noexcept { return (e & safe_mask()) != 0; }
  uint64_t idx_of(uint64_t e) const noexcept { return e & idx_mask(); }
  int64_t threshold_reset() const noexcept { return int64_t(3 * n_) - 1; }

  /// Spread consecutive ring positions one cache line apart (3-bit rotate:
  /// 8 entries of 8 bytes per 64-byte line) so the FAA-ticket stream does
  /// not serialize on a single line. Identity for tiny rings.
  std::size_t remap(uint64_t pos) const noexcept {
    const uint64_t i = pos & (ring_ - 1);
    if (lg_ring_ <= 3) return std::size_t(i);
    return std::size_t(((i << 3) | (i >> (lg_ring_ - 3))) & (ring_ - 1));
  }

  /// Drag tail up to head after an empty observation so stale tickets do
  /// not make later dequeuers spin (paper's catchup).
  void catchup(uint64_t t, uint64_t h) noexcept {
    while (!tail_->compare_exchange_weak(t, h, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
      h = head_->load(std::memory_order_seq_cst);
      t = tail_->load(std::memory_order_seq_cst);
      if (int64_t(t - h) >= 0) return;
    }
  }

  const std::size_t n_;        ///< capacity (power of two)
  const std::size_t ring_;     ///< 2n entries
  const unsigned lg_ring_;     ///< log2(ring_)
  std::unique_ptr<std::atomic<uint64_t>[]> entries_;
  CacheAligned<std::atomic<uint64_t>> head_;
  CacheAligned<std::atomic<uint64_t>> tail_;
  CacheAligned<std::atomic<int64_t>> threshold_;
};

/// The SCQD value queue: fq (free indices, starts full) + aq (allocated
/// indices, starts empty) + n data slots. try_enqueue moves an index
/// fq -> data -> aq; dequeue moves it back. Bounded: holds at most
/// `capacity` values and never allocates after construction.
///
/// Precondition (from the paper): `capacity` must be at least the number
/// of threads operating concurrently. The threshold (3n-1) empty-detection
/// argument counts the holes at most n in-flight operations can leave
/// between head and a live entry; with more threads than capacity a
/// dequeuer can exhaust the threshold before reaching a value and report
/// EMPTY with the value still in the ring. The ctor rounds capacity up to
/// a power of two, which usually absorbs small thread counts, but callers
/// own the bound.
template <class T, class Traits = DefaultRingTraits>
class ScqQueue {
  using Codec = SlotCodec<T>;
  using Metrics = obs::MetricsOf<Traits>;

 public:
  using value_type = T;
  using Traits_ = Traits;
  static constexpr const char* kName = "scq";
  /// Lock-free only: an enqueue ticket can be invalidated by concurrent
  /// dequeuers without bound in thread count (the gap wCQ closes).
  static constexpr bool kIsWaitFree = false;
  static constexpr bool kCollectStats = detail::RingCollectStats<Traits>::value;

  /// Per-thread registration record. Ring backends need no per-thread
  /// algorithmic state — the record exists for the shared registration
  /// discipline: owner-local stats, obs histograms, stable ring membership.
  struct Rec {
    std::atomic<Rec*> next{nullptr};
    OpStats stats;
    typename Metrics::PerHandle obs;
    Rec* next_free = nullptr;
  };

  /// RAII per-thread access token (the library-wide Handle shape).
  class HandleGuard {
   public:
    explicit HandleGuard(ScqQueue& q) : q_(&q), h_(q.register_handle()) {}
    ~HandleGuard() {
      if (h_ != nullptr) q_->release_handle(h_);
    }
    HandleGuard(HandleGuard&& o) noexcept : q_(o.q_), h_(o.h_) {
      o.h_ = nullptr;
    }
    HandleGuard(const HandleGuard&) = delete;
    HandleGuard& operator=(const HandleGuard&) = delete;
    Rec* get() const noexcept { return h_; }
    Rec* operator->() const noexcept { return h_; }

   private:
    ScqQueue* q_;
    Rec* h_;
  };
  using Handle = HandleGuard;

  /// `capacity` is rounded up to a power of two (the hard bound reported by
  /// capacity()). All memory — both rings and the slot array — is allocated
  /// here and freed only by the destructor.
  explicit ScqQueue(std::size_t capacity = kDefaultCapacity)
      : n_(detail::ceil_pow2(capacity < 2 ? 2 : capacity)),
        fq_(n_),
        aq_(n_),
        data_(new std::atomic<uint64_t>[n_]),
        registry_(nrcl_) {
    fq_.init_full();
    aq_.init_empty();
  }

  ScqQueue(const ScqQueue&) = delete;
  ScqQueue& operator=(const ScqQueue&) = delete;

  ~ScqQueue() {
    // Drain still-encoded payloads (boxed codecs own heap memory).
    uint64_t idx = 0;
    uint64_t probes = 0;
    while (aq_.dequeue(&idx, probes)) {
      Codec::destroy_slot(data_[idx].load(std::memory_order_relaxed));
    }
  }

  Handle get_handle() { return Handle(*this); }

  /// kOk or kFull; never blocks, never allocates. The free index is
  /// reserved *before* the value is encoded, so on kFull `v` is left
  /// untouched — callers can park and retry without keeping a copy.
  EnqueueResult try_enqueue(Handle& h, T&& v) {
    Rec* r = h.get();
    const uint64_t t0 = obs_start(r);
    uint64_t idx = 0;
    uint64_t probes = 0;
    if (!acquire_index(r, &idx, &probes)) return EnqueueResult::kFull;
    publish_index(r, idx, Codec::encode(std::move(v)), probes, t0);
    return EnqueueResult::kOk;
  }
  EnqueueResult try_enqueue(Handle& h, const T& v) {
    T copy = v;
    return try_enqueue(h, std::move(copy));
  }

  /// Backpressure-blocking convenience (the BoundedQueue contract for
  /// `enqueue`): spins with backoff until space appears. Parking callers
  /// use BlockingQueue::push_wait instead.
  void enqueue(Handle& h, T v) {
    Backoff backoff;
    unsigned spins = 0;
    while (try_enqueue(h, std::move(v)) != EnqueueResult::kOk) {
      // Yield once backoff saturates: on an oversubscribed machine the
      // consumer that would free a slot may share our core, and spinning
      // through a scheduler quantum starves it.
      if (++spins >= 16) {
        std::this_thread::yield();
      } else {
        backoff.pause();
      }
    }
  }

  /// Oldest value, or nullopt <=> linearizably empty (threshold witness).
  std::optional<T> dequeue(Handle& h) {
    Rec* r = h.get();
    const uint64_t t0 = obs_start(r);
    uint64_t idx = 0;
    uint64_t probes = 0;
    if (!aq_.dequeue(&idx, probes)) {
      if constexpr (kCollectStats) {
        r->stats.deq_empty.fetch_add(1, std::memory_order_relaxed);
        note_probes(r->stats.deq_probes, r->stats.max_deq_probes, probes);
      }
      return std::nullopt;
    }
    const uint64_t slot = data_[idx].load(std::memory_order_relaxed);
    fq_.enqueue(idx, probes);
    if constexpr (kCollectStats) {
      r->stats.deq_fast.fetch_add(1, std::memory_order_relaxed);
      note_probes(r->stats.deq_probes, r->stats.max_deq_probes, probes);
    }
    obs_record_deq(r, t0);
    return Codec::decode(slot);
  }

  /// The configured hard bound (rounded-up constructor argument).
  std::size_t capacity() const noexcept { return n_; }

  /// Heuristic occupancy of the value ring.
  std::size_t approx_size() const noexcept { return aq_.approx_size(); }

  /// Exact bytes this queue will ever own: fixed at construction — the
  /// bounded-memory claim the stall soak asserts against.
  std::size_t footprint_bytes() const noexcept {
    return sizeof(ScqQueue) + fq_.footprint_bytes() + aq_.footprint_bytes() +
           n_ * sizeof(std::atomic<uint64_t>);
  }

  OpStats stats() const {
    OpStats total;
    registry_.for_each([&](const Rec* r) { total.add(r->stats); });
    if constexpr (fault::InjectorOf<Traits>::kEnabled) {
      using Inj = fault::InjectorOf<Traits>;
      total.injected_stalls.fetch_add(Inj::stalls(),
                                      std::memory_order_relaxed);
      total.injected_crashes.fetch_add(Inj::crashes(),
                                       std::memory_order_relaxed);
    }
    return total;
  }

  void reset_stats() {
    registry_.for_each([](Rec* r) { r->stats.reset(); });
  }

  /// `include_global_ring = false` is for multi-instance aggregators (the
  /// sharded layer), which fold the shared process-global ring in once.
  obs::ObsSnapshot collect_obs(bool include_global_ring = true) const {
    obs::ObsSnapshot snap;
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([&](const Rec* r) {
        snap.enq_ns.merge(r->obs.enq_ns);
        snap.deq_ns.merge(r->obs.deq_ns);
        snap.absorb_ring(r->obs.ring);
      });
      if (include_global_ring) snap.absorb_ring(Metrics::global_ring());
      snap.sort_events();
    }
    return snap;
  }

  void reset_obs() {
    if constexpr (Metrics::kEnabled) {
      registry_.for_each([](Rec* r) {
        const uint32_t id = r->obs.id;  // stable across resets
        r->obs = typename Metrics::PerHandle{};
        r->obs.id = id;
      });
    }
  }

 private:
  static constexpr std::size_t kDefaultCapacity = 65536;

  Rec* register_handle() {
    return registry_.acquire(
        /*on_recycle=*/[](Rec*) {},
        /*pre_attach=*/
        [](Rec* r, std::size_t index) {
          (void)r;
          (void)index;
          if constexpr (Metrics::kEnabled) {
            r->obs.id = uint32_t(index) + 1;
          }
        },
        /*at_link=*/[](Rec*, Rec*) {});
  }

  void release_handle(Rec* r) { registry_.release(r); }

  bool acquire_index(Rec* r, uint64_t* idx, uint64_t* probes) {
    if (!fq_.dequeue(idx, *probes)) {
      // The free list is empty <=> `capacity` values are live: full.
      if constexpr (kCollectStats) {
        r->stats.enq_full.fetch_add(1, std::memory_order_relaxed);
        note_probes(r->stats.enq_probes, r->stats.max_enq_probes, *probes);
      }
      return false;
    }
    return true;
  }

  void publish_index(Rec* r, uint64_t idx, uint64_t slot, uint64_t probes,
                     uint64_t t0) {
    data_[idx].store(slot, std::memory_order_relaxed);
    aq_.enqueue(idx, probes);  // release: the entry CAS publishes the slot
    if constexpr (kCollectStats) {
      r->stats.enq_fast.fetch_add(1, std::memory_order_relaxed);
      note_probes(r->stats.enq_probes, r->stats.max_enq_probes, probes);
    }
    obs_record_enq(r, t0);
  }

  static uint64_t obs_start(Rec* r) noexcept {
    (void)r;
    if constexpr (Metrics::kEnabled) {
      return Metrics::op_start(r->obs);
    } else {
      return 0;
    }
  }

  static void obs_record_enq(Rec* r, uint64_t t0) noexcept {
    (void)r;
    (void)t0;
    if constexpr (Metrics::kEnabled) {
      if (t0 != 0) r->obs.enq_ns.record(Metrics::now_ns() - t0);
    }
  }

  static void obs_record_deq(Rec* r, uint64_t t0) noexcept {
    (void)r;
    (void)t0;
    if constexpr (Metrics::kEnabled) {
      if (t0 != 0) r->obs.deq_ns.record(Metrics::now_ns() - t0);
    }
  }

  static void note_probes(std::atomic<uint64_t>& total,
                          std::atomic<uint64_t>& high_water,
                          uint64_t probes) noexcept {
    total.fetch_add(probes, std::memory_order_relaxed);
    uint64_t cur = high_water.load(std::memory_order_relaxed);
    while (probes > cur &&
           !high_water.compare_exchange_weak(cur, probes,
                                             std::memory_order_relaxed)) {
    }
  }

  const std::size_t n_;
  ScqRing<Traits> fq_;  ///< free indices; starts holding 0..n-1
  ScqRing<Traits> aq_;  ///< allocated indices; starts empty
  std::unique_ptr<std::atomic<uint64_t>[]> data_;
  NullReclaim nrcl_;
  HandleRegistry<Rec, NullReclaim> registry_;
};

static_assert(ConcurrentQueue<ScqQueue<uint64_t>>);
static_assert(BoundedQueue<ScqQueue<uint64_t>>);

}  // namespace wfq
