file(REMOVE_RECURSE
  "CMakeFiles/mpsc_logger.dir/mpsc_logger.cpp.o"
  "CMakeFiles/mpsc_logger.dir/mpsc_logger.cpp.o.d"
  "mpsc_logger"
  "mpsc_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsc_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
