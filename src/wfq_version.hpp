// Library version and feature-detection macros.
#pragma once

#define WFQ_VERSION_MAJOR 1
#define WFQ_VERSION_MINOR 0
#define WFQ_VERSION_PATCH 0
#define WFQ_VERSION_STRING "1.0.0"

// Shared-memory arena identification (src/ipc/). The magic marks a file as
// a wfq arena at all ("WFQSHM" + 2 format bytes); the layout version is
// bumped on ANY change to the arena's on-disk structures (header fields,
// proc-slot layout, cell format, segment geometry encoding). Attach
// refuses a mismatched arena before writing a single byte to it.
#define WFQ_SHM_MAGIC 0x30304D485351'4657ULL  // "WFQSHM00", little-endian
#define WFQ_SHM_LAYOUT_VERSION 3u  // v3: Control grew the `peer_gen` word

namespace wfq {

struct Version {
  int major;
  int minor;
  int patch;
};

/// Runtime-queryable library version.
constexpr Version version() noexcept {
  return Version{WFQ_VERSION_MAJOR, WFQ_VERSION_MINOR, WFQ_VERSION_PATCH};
}

/// True when the build has hardware double-width CAS (LCRQ is lock-free
/// rather than lock-emulated).
constexpr bool has_native_cas2() noexcept {
#if defined(WFQ_HAVE_CX16)
  return true;
#else
  return false;
#endif
}

}  // namespace wfq
