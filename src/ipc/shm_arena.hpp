// File-backed shared-memory arena: the single mmap every process in an IPC
// deployment attaches. Layout:
//
//   offset 0                 ArenaHeader (magic, layout version, geometry,
//                            bump cursor, root offset — see below)
//   header .. total_size     bump-allocated region; the queue carves its
//                            control block, proc table, rescue ring,
//                            segment directory and segments out of it
//
// Creation writes the header LAST-field-first: `ready` flips to 1 only
// after everything else (including the queue's root structures) is in
// place, so a concurrent attacher can never observe a half-built arena.
//
// Attach validates the header through a READ-ONLY file descriptor before
// the writable mapping is ever created: a mismatched magic or layout
// version is rejected without writing — or even mapping writably — a
// single byte of the foreign file (the C API surfaces this as
// WFQ_E_VERSION). The layout version comes from wfq_version.hpp and must
// be bumped whenever any on-arena structure changes shape.
//
// Intra-arena addressing is offsets only (offset_ptr.hpp); the arena hands
// out ShmOffset from its bump allocator and never stores a pointer inside
// the mapping.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "ipc/offset_ptr.hpp"
#include "wfq_version.hpp"

namespace wfq::ipc {

/// Why an open/attach failed. The C API folds kBadMagic/kVersionMismatch/
/// kBadGeometry into WFQ_E_VERSION ("not a compatible arena") and the rest
/// into WFQ_E_NOMEM.
enum class ArenaStatus : int {
  kOk = 0,
  kIoError,           // open/ftruncate/mmap/read failed (see errno)
  kTooSmall,          // requested or on-disk size below the minimum
  kBadMagic,          // not a wfq arena at all
  kVersionMismatch,   // wfq arena, incompatible WFQ_SHM_LAYOUT_VERSION
  kBadGeometry,       // header sizes disagree with the file
  kNotReady,          // creator died before publishing `ready`
};

struct ArenaHeader {
  std::uint64_t magic;            // WFQ_SHM_MAGIC
  std::uint32_t layout_version;   // WFQ_SHM_LAYOUT_VERSION
  std::uint32_t lib_major;        // informational (error messages)
  std::uint32_t lib_minor;
  std::uint32_t header_bytes;     // sizeof(ArenaHeader) at creation time
  std::uint64_t total_bytes;      // mapping length
  std::uint64_t root;             // ShmOffset of the owner's root object
  std::atomic<std::uint64_t> bump;   // next free byte (monotone)
  std::atomic<std::uint32_t> ready;  // 1 once creation fully finished
  std::uint32_t pad_;
};
static_assert(sizeof(ArenaHeader) == 56, "bump an arena layout version");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process atomics require lock-free 64-bit atomics");

/// RAII view of one process's mapping of an arena file. Move-only; the
/// destructor unmaps but never unlinks (the file IS the queue — peers may
/// still be attached). `destroy()` unlinks explicitly.
class ShmArena {
 public:
  ShmArena() = default;
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;
  ShmArena(ShmArena&& o) noexcept { swap(o); }
  ShmArena& operator=(ShmArena&& o) noexcept {
    if (this != &o) {
      close();
      swap(o);
    }
    return *this;
  }
  ~ShmArena() { close(); }

  /// Create a fresh arena file of `total_bytes` at `path` (replacing any
  /// existing file: a dead deployment's stale arena must not block a new
  /// one). On success the header is initialized but `ready` is still 0 —
  /// the owner bump-allocates its structures, sets root(), then publishes
  /// with publish_ready().
  static ArenaStatus create(const char* path, std::size_t total_bytes,
                            ShmArena* out) {
    if (total_bytes < kMinBytes) return ArenaStatus::kTooSmall;
    int fd = ::open(path, O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd < 0) return ArenaStatus::kIoError;
    if (::ftruncate(fd, static_cast<off_t>(total_bytes)) != 0) {
      ::close(fd);
      return ArenaStatus::kIoError;
    }
    void* base = ::mmap(nullptr, total_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return ArenaStatus::kIoError;
    }
    auto* h = new (base) ArenaHeader{};
    h->magic = WFQ_SHM_MAGIC;
    h->layout_version = WFQ_SHM_LAYOUT_VERSION;
    h->lib_major = WFQ_VERSION_MAJOR;
    h->lib_minor = WFQ_VERSION_MINOR;
    h->header_bytes = sizeof(ArenaHeader);
    h->total_bytes = total_bytes;
    h->root = kNullOffset;
    h->bump.store(align_up(sizeof(ArenaHeader)), std::memory_order_relaxed);
    h->ready.store(0, std::memory_order_relaxed);
    out->fd_ = fd;
    out->base_ = base;
    out->bytes_ = total_bytes;
    return ArenaStatus::kOk;
  }

  /// Attach an existing arena. The header is validated via pread on a
  /// read-only descriptor FIRST; only a fully valid arena is ever mapped
  /// writably. A rejected attach leaves the file byte-for-byte untouched.
  static ArenaStatus attach(const char* path, ShmArena* out) {
    int rfd = ::open(path, O_RDONLY);
    if (rfd < 0) return ArenaStatus::kIoError;
    ArenaHeader h;
    ssize_t n = ::pread(rfd, &h, sizeof(h), 0);
    struct stat st;
    int strc = ::fstat(rfd, &st);
    ::close(rfd);
    if (n != static_cast<ssize_t>(sizeof(h)) || strc != 0) {
      return ArenaStatus::kBadMagic;  // too short to be an arena
    }
    if (h.magic != WFQ_SHM_MAGIC) return ArenaStatus::kBadMagic;
    if (h.layout_version != WFQ_SHM_LAYOUT_VERSION) {
      return ArenaStatus::kVersionMismatch;
    }
    if (h.header_bytes != sizeof(ArenaHeader) ||
        h.total_bytes < kMinBytes ||
        st.st_size < static_cast<off_t>(h.total_bytes)) {
      return ArenaStatus::kBadGeometry;
    }
    if (h.ready.load(std::memory_order_relaxed) == 0) {
      return ArenaStatus::kNotReady;
    }
    int fd = ::open(path, O_RDWR);
    if (fd < 0) return ArenaStatus::kIoError;
    void* base = ::mmap(nullptr, h.total_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return ArenaStatus::kIoError;
    }
    out->fd_ = fd;
    out->base_ = base;
    out->bytes_ = h.total_bytes;
    return ArenaStatus::kOk;
  }

  /// Remove the arena file. Attached mappings stay valid until unmapped.
  static void destroy(const char* path) { ::unlink(path); }

  bool valid() const noexcept { return base_ != nullptr; }
  void* base() const noexcept { return base_; }
  std::size_t bytes() const noexcept { return bytes_; }
  ArenaHeader* header() const noexcept {
    return static_cast<ArenaHeader*>(base_);
  }

  /// Bump-allocate `bytes` (cache-line aligned) out of the arena. Returns
  /// kNullOffset when the arena is exhausted — the queue surfaces that as
  /// kNoMem, exactly like a heap segment-allocation failure. The cursor is
  /// monotone (a failed allocation may strand its tail bytes; exhaustion
  /// is terminal for the arena, so that waste is irrelevant).
  ShmOffset alloc(std::size_t bytes) noexcept {
    const std::uint64_t need = align_up(bytes);
    ArenaHeader* h = header();
    std::uint64_t off = h->bump.fetch_add(need, std::memory_order_relaxed);
    if (off + need > bytes_) return kNullOffset;
    return off;
  }

  template <class T>
  T* at(ShmOffset off) const noexcept {
    return resolve<T>(base_, off);
  }

  void set_root(ShmOffset off) noexcept { header()->root = off; }
  ShmOffset root() const noexcept { return header()->root; }

  /// Publish a fully-constructed arena to attachers. msync first so a
  /// crash shortly after creation can't surface a ready header over
  /// unwritten structures on a real filesystem.
  void publish_ready() noexcept {
    ::msync(base_, bytes_, MS_ASYNC);
    header()->ready.store(1, std::memory_order_release);
  }

  void close() noexcept {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (fd_ >= 0) ::close(fd_);
    base_ = nullptr;
    bytes_ = 0;
    fd_ = -1;
  }

  static constexpr std::size_t kMinBytes = 4096;

 private:
  static constexpr std::uint64_t align_up(std::uint64_t n) noexcept {
    return (n + 63) & ~std::uint64_t{63};
  }

  void swap(ShmArena& o) noexcept {
    std::swap(fd_, o.fd_);
    std::swap(base_, o.base_);
    std::swap(bytes_, o.bytes_);
  }

  int fd_ = -1;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace wfq::ipc
