file(REMOVE_RECURSE
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_exhaustive_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_exhaustive_test.cpp.o.d"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_interleave_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_interleave_test.cpp.o.d"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_invariants_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_invariants_test.cpp.o.d"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_mpmc_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_mpmc_test.cpp.o.d"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_reclamation_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_reclamation_test.cpp.o.d"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_slowpath_test.cpp.o"
  "CMakeFiles/test_wfqueue_concurrent.dir/core/wf_queue_slowpath_test.cpp.o.d"
  "test_wfqueue_concurrent"
  "test_wfqueue_concurrent.pdb"
  "test_wfqueue_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfqueue_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
