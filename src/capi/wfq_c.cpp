// Implementation of the C bindings (see wfq_c.h).
//
// Backend dispatch: the opaque wfq_queue_t owns a small virtual interface
// (QueueBase) implemented once per backend by a template. One indirect call
// per C-API operation — negligible next to the queue operation itself, and
// it keeps the C surface identical across the unbounded WF queue and the
// bounded SCQ/wCQ rings (capability differences surface as status codes:
// WFQ_E_FULL only ever comes out of a bounded backend).
#include "capi/wfq_c.h"

#include <chrono>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue_core.hpp"
#include "ipc/shm_queue.hpp"
#include "obs/trace_export.hpp"
#include "sync/blocking_queue.hpp"

namespace {
using Core = wfq::WFQueueCore<wfq::DefaultWfTraits>;  // reserved-value check

/// The C API queues are compiled with metrics enabled (production sampling:
/// 1-in-256 average latency recording, 4096-record trace rings) so
/// wfq_trace_dump and the histogram summaries work out of the box. The
/// zero-overhead-when-disabled property is demonstrated by the NullMetrics
/// grep target in tools/ci.sh's obs leg, not by this binding.
struct CApiTraits : wfq::DefaultWfTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};
struct CApiRingTraits : wfq::DefaultRingTraits {
  using Metrics = wfq::obs::ObsMetrics<>;
};

using BQ = wfq::sync::BlockingQueue<wfq::WFQueue<uint64_t, CApiTraits>>;
using SQ = wfq::sync::BlockingQueue<wfq::ScqQueue<uint64_t, CApiRingTraits>>;
using WQ = wfq::sync::BlockingQueue<wfq::WcqQueue<uint64_t, CApiRingTraits>>;
using ShQ = wfq::sync::BlockingQueue<
    wfq::scale::ShardedQueue<wfq::WFQueue<uint64_t, CApiTraits>>>;
using wfq::sync::PopStatus;
using wfq::sync::PushStatus;

// The C struct and the internal OpStats both expand wfq_stats_fields.h, so
// they cannot drift apart by construction; these asserts additionally pin
// the ABI — same field count, no padding surprises.
constexpr std::size_t kExFieldCount = 0
#define WFQ_STATS_ONE(name) +1
    WFQ_STATS_FIELDS(WFQ_STATS_ONE, WFQ_STATS_ONE)
#undef WFQ_STATS_ONE
    ;
static_assert(kExFieldCount == wfq::OpStats::kFieldCount,
              "wfq_stats_ex_t and OpStats must expand the same field table");
static_assert(sizeof(wfq_stats_ex_t) == kExFieldCount * sizeof(uint64_t),
              "wfq_stats_ex_t must be a packed array of uint64_t counters");

struct HandleBase {
  virtual ~HandleBase() = default;
};

struct QueueBase {
  virtual ~QueueBase() = default;
  virtual HandleBase* acquire() = 0;
  virtual int enqueue(HandleBase* h, uint64_t v, bool wait) = 0;
  virtual int dequeue(HandleBase* h, uint64_t* out) = 0;
  virtual int dequeue_wait(HandleBase* h, uint64_t* out) = 0;
  virtual int dequeue_timed(HandleBase* h, uint64_t* out, uint64_t ns) = 0;
  virtual int enqueue_bulk_impl(HandleBase* h, const uint64_t* vals,
                                size_t count) = 0;
  virtual size_t dequeue_bulk_impl(HandleBase* h, uint64_t* out,
                                   size_t count) = 0;
  virtual void close_queue() = 0;
  virtual bool is_closed() const = 0;
  virtual uint64_t approx() const = 0;
  virtual size_t cap() const = 0;
  virtual wfq::OpStats stats() const = 0;
  virtual wfq::obs::ObsSnapshot snapshot() const = 0;
};

int status_code(PushStatus st) {
  switch (st) {
    case PushStatus::kOk:
      return WFQ_OK;
    case PushStatus::kClosed:
      return WFQ_E_CLOSED;
    case PushStatus::kNoMem:
      return WFQ_E_NOMEM;
    case PushStatus::kFull:
      return WFQ_E_FULL;
    case PushStatus::kTimeout:
      return WFQ_E_FULL;  // only the (unused here) timed wait returns it
  }
  return WFQ_E_NOMEM;
}

template <class Q>
struct QueueImpl final : QueueBase {
  Q q;
  template <class... Args>
  explicit QueueImpl(Args&&... args) : q(std::forward<Args>(args)...) {}

  struct H final : HandleBase {
    typename Q::Handle h;
    explicit H(typename Q::Handle hh) : h(std::move(hh)) {}
  };
  static typename Q::Handle& hof(HandleBase* b) {
    return static_cast<H*>(b)->h;
  }

  HandleBase* acquire() override { return new H(q.get_handle()); }

  int enqueue(HandleBase* b, uint64_t v, bool wait) override {
    return status_code(wait ? q.push_wait(hof(b), v)
                            : q.push_status(hof(b), v));
  }

  int dequeue(HandleBase* b, uint64_t* out) override {
    std::optional<uint64_t> v = q.try_pop(hof(b));
    if (!v) return 0;
    *out = *v;
    return 1;
  }

  int dequeue_wait(HandleBase* b, uint64_t* out) override {
    uint64_t v = 0;
    PopStatus st = q.pop_wait(hof(b), v);
    if (st != PopStatus::kOk) return 0;  // kClosed; pop_wait never times out
    *out = v;
    return 1;
  }

  int dequeue_timed(HandleBase* b, uint64_t* out, uint64_t ns) override {
    uint64_t v = 0;
    switch (q.pop_wait_for(hof(b), v, std::chrono::nanoseconds(ns))) {
      case PopStatus::kOk:
        *out = v;
        return 1;
      case PopStatus::kTimeout:
        return 0;
      case PopStatus::kClosed:
        break;
    }
    return -1;
  }

  int enqueue_bulk_impl(HandleBase* b, const uint64_t* vals,
                        size_t count) override {
    size_t committed = q.push_bulk(hof(b), vals, count);
    if (committed == count) return WFQ_OK;
    if (committed == 0 && q.closed()) return WFQ_E_CLOSED;
    // A shortfall on an open queue: allocation exhaustion mid-batch on the
    // WF backend, or a full ring on a bounded one (prefix enqueued).
    if constexpr (requires(const Q& qq) { qq.capacity(); }) {
      return WFQ_E_FULL;
    } else {
      return WFQ_E_NOMEM;
    }
  }

  size_t dequeue_bulk_impl(HandleBase* b, uint64_t* out,
                           size_t count) override {
    return q.try_pop_bulk(hof(b), out, count);
  }

  void close_queue() override { q.close(); }
  bool is_closed() const override { return q.closed(); }

  uint64_t approx() const override { return q.inner().approx_size(); }

  size_t cap() const override {
    if constexpr (requires(const Q& qq) { qq.capacity(); }) {
      return q.capacity();
    } else {
      return 0;
    }
  }

  wfq::OpStats stats() const override { return q.stats(); }
  wfq::obs::ObsSnapshot snapshot() const override { return q.collect_obs(); }
};

/// The shared-memory backend behind the same erased interface. Differences
/// from the in-process backends are intentional and documented in wfq_c.h:
/// no producer parking (the bound is the arena, which never shrinks, so
/// wfq_enqueue_wait == wfq_enqueue), at-least-once delivery across peer
/// crashes, and bulk operations that degrade to per-item loops (a crashed
/// peer mid-batch must leave per-item-auditable state, not a half-batch).
struct ShmQueueImpl final : QueueBase {
  using Q = wfq::ipc::ShmQueue<>;
  Q q;

  struct H final : HandleBase {
    ShmQueueImpl* owner;
    Q::LocalHandle lh;
    explicit H(ShmQueueImpl* o) : owner(o) {}
    ~H() override { owner->q.release(&lh); }
  };
  static Q::LocalHandle& lof(HandleBase* b) { return static_cast<H*>(b)->lh; }

  HandleBase* acquire() override {
    auto h = std::make_unique<H>(this);
    // Proc-slot table full of live peers: surface as the same failure the
    // heap backends report when registration can't allocate.
    if (!q.claim(&h->lh)) throw std::bad_alloc();
    return h.release();
  }

  int enqueue(HandleBase* b, uint64_t v, bool /*wait*/) override {
    switch (q.enqueue(lof(b), v)) {
      case wfq::ipc::ShmPush::kOk:
        return WFQ_OK;
      case wfq::ipc::ShmPush::kClosed:
        return WFQ_E_CLOSED;
      case wfq::ipc::ShmPush::kNoMem:
        return WFQ_E_NOMEM;
      case wfq::ipc::ShmPush::kFull:
        return WFQ_E_FULL;
    }
    return WFQ_E_NOMEM;
  }

  int dequeue(HandleBase* b, uint64_t* out) override {
    return q.dequeue(lof(b), out) == wfq::ipc::ShmPop::kOk ? 1 : 0;
  }

  // Park in bounded slices: a peer PROCESS can close the queue or die with
  // values to rescue, and neither event is guaranteed to reach our futex
  // word, so an indefinite single wait could sleep through termination.
  // Each expired slice runs recover() — it is what actually moves a
  // SIGKILLed consumer's stranded value into the rescue ring; without it a
  // fixed set of attached processes would re-dequeue forever and never
  // detect the death. recover() self-serializes on the stealable recovery
  // lock and is a cheap liveness sweep when every peer is alive.
  int dequeue_wait(HandleBase* b, uint64_t* out) override {
    for (;;) {
      const auto slice =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
      if (q.pop_wait_until(lof(b), out, slice, [](uint64_t) {})) return 1;
      if (q.closed()) {
        // Closed: one more non-blocking pass decides drained-vs-residual.
        return q.dequeue(lof(b), out) == wfq::ipc::ShmPop::kOk ? 1 : 0;
      }
      // Peer-death probe, not a full recover: an idle park must do O(1)
      // work per slice, and escalate only when a cached peer stops
      // answering (shm_queue.hpp, maybe_recover).
      q.maybe_recover();
    }
  }

  int dequeue_timed(HandleBase* b, uint64_t* out, uint64_t ns) override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    for (;;) {
      auto slice =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
      if (slice > deadline) slice = deadline;
      if (q.pop_wait_until(lof(b), out, slice, [](uint64_t) {})) return 1;
      if (q.closed()) {
        return q.dequeue(lof(b), out) == wfq::ipc::ShmPop::kOk ? 1 : -1;
      }
      if (std::chrono::steady_clock::now() >= deadline) return 0;
      q.maybe_recover();  // same O(1)-per-slice probe as dequeue_wait
    }
  }

  int enqueue_bulk_impl(HandleBase* b, const uint64_t* vals,
                        size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      int rc = enqueue(b, vals[i], /*wait=*/false);
      if (rc != WFQ_OK) return rc;  // prefix enqueued (documented)
    }
    return WFQ_OK;
  }

  size_t dequeue_bulk_impl(HandleBase* b, uint64_t* out,
                           size_t count) override {
    size_t n = 0;
    while (n < count && q.dequeue(lof(b), out + n) == wfq::ipc::ShmPop::kOk) {
      ++n;
    }
    return n;
  }

  void close_queue() override { q.close(); }
  bool is_closed() const override { return q.closed(); }
  uint64_t approx() const override { return q.approx_size(); }
  size_t cap() const override { return static_cast<size_t>(q.capacity()); }

  wfq::OpStats stats() const override {
    // The shm queue keeps its counters in the shared control block (they
    // must survive any single process); only the cross-process pair maps
    // onto OpStats fields, the rest read zero.
    wfq::OpStats s;
    s.peer_deaths.store(q.peer_deaths(), std::memory_order_relaxed);
    s.shm_adoptions.store(q.shm_adoptions(), std::memory_order_relaxed);
    return s;
  }
  wfq::obs::ObsSnapshot snapshot() const override { return {}; }
};

int arena_code(wfq::ipc::ArenaStatus st) {
  switch (st) {
    case wfq::ipc::ArenaStatus::kOk:
      return WFQ_OK;
    case wfq::ipc::ArenaStatus::kBadMagic:
    case wfq::ipc::ArenaStatus::kVersionMismatch:
    case wfq::ipc::ArenaStatus::kBadGeometry:
    case wfq::ipc::ArenaStatus::kNotReady:
      return WFQ_E_VERSION;  // "not a compatible arena", file untouched
    case wfq::ipc::ArenaStatus::kIoError:
    case wfq::ipc::ArenaStatus::kTooSmall:
      return WFQ_E_NOMEM;
  }
  return WFQ_E_NOMEM;
}

}  // namespace

// The opaque C structs wrap the erased backend.
struct wfq_queue {
  std::unique_ptr<QueueBase> impl;
  explicit wfq_queue(std::unique_ptr<QueueBase> i) : impl(std::move(i)) {}
};

struct wfq_handle {
  wfq_queue* owner;
  std::unique_ptr<HandleBase> h;
  wfq_handle(wfq_queue* q, HandleBase* handle) : owner(q), h(handle) {}
};

extern "C" {

void wfq_options_init(wfq_options_t* opt) {
  opt->backend = WFQ_BACKEND_WF;
  opt->patience = 10;
  opt->max_garbage = 64;
  opt->reserve_segments = 0;
  opt->capacity = 1024;
  opt->patience_mode = WFQ_PATIENCE_FIXED;
  opt->prefetch_segments = 1;
  opt->shards = 0;  // auto
  opt->numa_mode = WFQ_NUMA_NONE;
  opt->shm_max_procs = 0;  // default (16)
}

wfq_queue_t* wfq_create_ex(const wfq_options_t* opt) {
  // Constructors allocate (segments, rings, registries) and may throw
  // bad_alloc; no exception may cross the extern "C" boundary — NULL means
  // failure.
  try {
    switch (opt->backend) {
      case WFQ_BACKEND_WF: {
        wfq::WfConfig cfg;
        cfg.patience = opt->patience;
        cfg.max_garbage = opt->max_garbage > 0 ? opt->max_garbage : 1;
        cfg.reserve_segments = opt->reserve_segments;
        if (opt->patience_mode != WFQ_PATIENCE_FIXED &&
            opt->patience_mode != WFQ_PATIENCE_ADAPTIVE) {
          return nullptr;  // unknown mode: same contract as unknown backend
        }
        cfg.patience_mode = opt->patience_mode == WFQ_PATIENCE_ADAPTIVE
                                ? wfq::PatienceMode::kAdaptive
                                : wfq::PatienceMode::kFixed;
        cfg.prefetch_segments = opt->prefetch_segments;
        return new wfq_queue(std::make_unique<QueueImpl<BQ>>(cfg));
      }
      case WFQ_BACKEND_SCQ:
        return new wfq_queue(
            std::make_unique<QueueImpl<SQ>>(opt->capacity));
      case WFQ_BACKEND_WCQ:
        return new wfq_queue(
            std::make_unique<QueueImpl<WQ>>(opt->capacity));
      case WFQ_BACKEND_SHARDED: {
        // Each lane is a full WF queue shaped by the WF knobs; the sharded
        // layer adds only the lane count and the placement policy.
        wfq::WfConfig cfg;
        cfg.patience = opt->patience;
        cfg.max_garbage = opt->max_garbage > 0 ? opt->max_garbage : 1;
        cfg.reserve_segments = opt->reserve_segments;
        if (opt->patience_mode != WFQ_PATIENCE_FIXED &&
            opt->patience_mode != WFQ_PATIENCE_ADAPTIVE) {
          return nullptr;
        }
        cfg.patience_mode = opt->patience_mode == WFQ_PATIENCE_ADAPTIVE
                                ? wfq::PatienceMode::kAdaptive
                                : wfq::PatienceMode::kFixed;
        cfg.prefetch_segments = opt->prefetch_segments;
        if (opt->numa_mode < WFQ_NUMA_NONE ||
            opt->numa_mode > WFQ_NUMA_LOCAL) {
          return nullptr;  // unknown mode: same contract as unknown backend
        }
        wfq::ShardConfig scfg;
        scfg.shards = opt->shards;
        scfg.numa_mode = static_cast<wfq::NumaMode>(opt->numa_mode);
        return new wfq_queue(std::make_unique<QueueImpl<ShQ>>(scfg, cfg));
      }
      default:
        return nullptr;
    }
  } catch (...) {
    return nullptr;
  }
}

wfq_queue_t* wfq_create(unsigned patience, int64_t max_garbage) {
  wfq_options_t opt;
  wfq_options_init(&opt);
  opt.patience = patience;
  opt.max_garbage = max_garbage;
  return wfq_create_ex(&opt);
}

wfq_queue_t* wfq_create_default(void) {
  return wfq_create(10, 64);
}

void wfq_destroy(wfq_queue_t* q) {
  delete q;
}

wfq_handle_t* wfq_handle_acquire(wfq_queue_t* q) {
  // get_handle()/acquire_rec() register in growable vectors and may throw;
  // catch everything so the C contract (NULL on failure) holds.
  try {
    return new wfq_handle(q, q->impl->acquire());
  } catch (...) {
    return nullptr;
  }
}

void wfq_handle_release(wfq_handle_t* h) {
  delete h;  // Handle RAII returns both layers' records
}

int wfq_enqueue(wfq_handle_t* h, uint64_t value) {
  if (!Core::is_enqueueable(value)) return WFQ_E_RESERVED;
  return h->owner->impl->enqueue(h->h.get(), value, /*wait=*/false);
}

int wfq_enqueue_wait(wfq_handle_t* h, uint64_t value) {
  if (!Core::is_enqueueable(value)) return WFQ_E_RESERVED;
  return h->owner->impl->enqueue(h->h.get(), value, /*wait=*/true);
}

size_t wfq_capacity(const wfq_queue_t* q) {
  return q->impl->cap();
}

int wfq_dequeue(wfq_handle_t* h, uint64_t* out) {
  // The inner dequeue reports allocation exhaustion (a helper needing a
  // fresh segment under OOM) by throwing; no exception may cross the
  // extern "C" boundary.
  try {
    return h->owner->impl->dequeue(h->h.get(), out);
  } catch (const std::bad_alloc&) {
    return WFQ_E_NOMEM;
  }
}

int wfq_dequeue_wait(wfq_handle_t* h, uint64_t* out) {
  try {
    return h->owner->impl->dequeue_wait(h->h.get(), out);
  } catch (const std::bad_alloc&) {
    return WFQ_E_NOMEM;
  }
}

int wfq_dequeue_timed(wfq_handle_t* h, uint64_t* out, uint64_t timeout_ns) {
  try {
    return h->owner->impl->dequeue_timed(h->h.get(), out, timeout_ns);
  } catch (const std::bad_alloc&) {
    return WFQ_E_NOMEM;
  }
}

void wfq_close(wfq_queue_t* q) {
  q->impl->close_queue();
}

int wfq_is_closed(const wfq_queue_t* q) {
  return q->impl->is_closed() ? 1 : 0;
}

int wfq_enqueue_bulk(wfq_handle_t* h, const uint64_t* values, size_t count) {
  for (size_t j = 0; j < count; ++j) {
    if (!Core::is_enqueueable(values[j])) return WFQ_E_RESERVED;
  }
  if (count == 0) {
    // Preserve the all-or-nothing contract's error reporting for the
    // degenerate batch: closed beats "trivially succeeded".
    return h->owner->impl->is_closed() ? WFQ_E_CLOSED : WFQ_OK;
  }
  return h->owner->impl->enqueue_bulk_impl(h->h.get(), values, count);
}

size_t wfq_dequeue_bulk(wfq_handle_t* h, uint64_t* out, size_t count) {
  return h->owner->impl->dequeue_bulk_impl(h->h.get(), out, count);
}

uint64_t wfq_approx_size(const wfq_queue_t* q) {
  return q->impl->approx();
}

void wfq_get_stats(const wfq_queue_t* q, wfq_stats_t* out) {
  wfq::OpStats s = q->impl->stats();
  out->enqueues = s.enqueues();
  out->dequeues = s.dequeues();
  out->slow_enqueues = s.enq_slow.load(std::memory_order_relaxed);
  out->slow_dequeues = s.deq_slow.load(std::memory_order_relaxed);
  out->empty_dequeues = s.deq_empty.load(std::memory_order_relaxed);
  out->segments_freed = s.segments_freed.load(std::memory_order_relaxed);
  out->deq_parks = s.deq_parks.load(std::memory_order_relaxed);
  out->deq_spurious_wakeups =
      s.deq_spurious_wakeups.load(std::memory_order_relaxed);
  out->notify_calls = s.notify_calls.load(std::memory_order_relaxed);
  out->injected_stalls = s.injected_stalls.load(std::memory_order_relaxed);
  out->injected_crashes = s.injected_crashes.load(std::memory_order_relaxed);
  out->adopted_handles = s.adopted_handles.load(std::memory_order_relaxed);
  out->orphan_drops = s.orphan_drops.load(std::memory_order_relaxed);
  out->alloc_failures = s.alloc_failures.load(std::memory_order_relaxed);
  out->reserve_pool_hits =
      s.reserve_pool_hits.load(std::memory_order_relaxed);
  out->oom_rescues = s.oom_rescues.load(std::memory_order_relaxed);
}

void wfq_get_stats_ex(const wfq_queue_t* q, wfq_stats_ex_t* out) {
  wfq::OpStats s = q->impl->stats();
#define WFQ_STATS_COPY(name) \
  out->name = s.name.load(std::memory_order_relaxed);
  WFQ_STATS_FIELDS(WFQ_STATS_COPY, WFQ_STATS_COPY)
#undef WFQ_STATS_COPY
}

int wfq_shm_create(const char* path, size_t bytes, const wfq_options_t* opt,
                   wfq_queue_t** out) {
  if (path == nullptr || out == nullptr) return WFQ_E_NOMEM;
  wfq::ipc::ShmOptions sopt;
  if (opt != nullptr) {
    if (opt->shm_max_procs != 0) sopt.max_procs = opt->shm_max_procs;
    if (opt->capacity != 0) {
      // `capacity` shapes the per-segment cell count here (total capacity
      // is fixed by `bytes`): round to a power of two in [4, 1<<20].
      size_t c = 4;
      while (c < opt->capacity && c < (size_t{1} << 20)) c <<= 1;
      sopt.seg_cells = static_cast<uint32_t>(c);
    }
  }
  try {
    auto impl = std::make_unique<ShmQueueImpl>();
    int rc = arena_code(
        ShmQueueImpl::Q::create(path, bytes, sopt, &impl->q));
    if (rc != WFQ_OK) return rc;
    *out = new wfq_queue(std::move(impl));
    return WFQ_OK;
  } catch (...) {
    return WFQ_E_NOMEM;
  }
}

int wfq_shm_attach(const char* path, wfq_queue_t** out) {
  if (path == nullptr || out == nullptr) return WFQ_E_NOMEM;
  try {
    auto impl = std::make_unique<ShmQueueImpl>();
    int rc = arena_code(ShmQueueImpl::Q::attach(path, &impl->q));
    if (rc != WFQ_OK) return rc;
    *out = new wfq_queue(std::move(impl));
    return WFQ_OK;
  } catch (...) {
    return WFQ_E_NOMEM;
  }
}

int wfq_shm_detach(wfq_queue_t* q) {
  // Destruction IS detachment: the impl's destructor releases this
  // process's default slot and unmaps; the arena file (and the queue in
  // it) persists for the remaining peers.
  delete q;
  return WFQ_OK;
}

int wfq_trace_dump(const wfq_queue_t* q, const char* path) {
  if (path == nullptr) return -1;
  try {
    return wfq::obs::write_chrome_trace(q->impl->snapshot(), path) ? 0 : -1;
  } catch (...) {
    return -1;  // snapshot allocation failure; no exception crosses the ABI
  }
}

}  // extern "C"
