file(REMOVE_RECURSE
  "CMakeFiles/bench_reclaim_scheme.dir/bench_reclaim_scheme.cpp.o"
  "CMakeFiles/bench_reclaim_scheme.dir/bench_reclaim_scheme.cpp.o.d"
  "bench_reclaim_scheme"
  "bench_reclaim_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclaim_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
