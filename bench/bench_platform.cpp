// Table 1 reproduction: "Summary of experimental platforms" — one row, the
// host this reproduction runs on, plus the paper's four platforms for
// side-by-side context.
#include <iostream>

#include "harness/platform.hpp"
#include "harness/table.hpp"

int main() {
  using namespace wfq::bench;
  auto p = detect_platform();
  std::cout << format_platform_table(p) << "\n";

  Table t({"Platform", "Clock", "Processors", "Cores", "Threads",
           "Native FAA"});
  t.add_row({"THIS HOST: " + p.model, Table::fmt(p.clock_ghz, 2) + " GHz",
             std::to_string(p.sockets), std::to_string(p.cores),
             std::to_string(p.threads), p.native_faa ? "yes" : "no"});
  // The paper's Table 1, for reference alongside the host row.
  t.add_row({"paper: Intel Xeon E5-2699v3 (Haswell)", "2.30 GHz", "2", "36",
             "72", "yes"});
  t.add_row({"paper: Intel Xeon Phi 3120", "1.10 GHz", "1", "57", "228",
             "yes"});
  t.add_row({"paper: AMD Opteron 6168 (Magny-Cours)", "0.80 GHz", "4", "48",
             "48", "yes"});
  t.add_row({"paper: IBM Power7 8233-E8B", "3.55 GHz", "4", "32", "128",
             "no"});
  t.print();
  return 0;
}
