// Tests that the slow paths are genuinely exercised under contention with
// PATIENCE = 0 (the paper's WF-0 configuration) and that the path-breakdown
// counters behind Table 2 report sensibly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "support/wf_test_peek.hpp"

namespace wfq {
namespace {

using Core = WFQueueCore<DefaultWfTraits>;

TEST(WfSlowPath, FailedFastPathEnqueueFallsBackToSlowPath) {
  // Deterministic: burn cell 0 with an empty dequeue so the next enqueue's
  // single fast-path attempt (patience 0) lands on a sealed cell, forcing
  // enq_slow — which must still deliver the value.
  WfConfig cfg;
  cfg.patience = 0;
  Core q(cfg);
  auto* h = q.register_handle();
  EXPECT_EQ(q.dequeue(h), Core::kEmpty);  // seals cell 0, H = 1
  q.enqueue(h, 55);                       // fast path fails at cell 0
  OpStats s = q.collect_stats();
  EXPECT_EQ(s.enq_slow.load(), 1u);
  EXPECT_EQ(s.enq_fast.load(), 0u);
  EXPECT_EQ(q.dequeue(h), 55u);
}

TEST(WfSlowPath, FailedFastPathDequeueFallsBackToSlowPath) {
  // Deterministic: an in-flight slow-path enqueue keeps T ahead while its
  // value is uncommitted; a patience-0 dequeuer whose helper scan points at
  // a request-free peer seals its cell, fails the fast path, and must
  // complete through deq_slow.
  WfConfig cfg;
  cfg.patience = 0;
  Core q(cfg);
  auto* a = q.register_handle();  // stalled enqueuer
  auto* b = q.register_handle();  // victim dequeuer
  auto* c = q.register_handle();  // idle (request-free) peer
  b->enq.peer = c;
  (void)WfTestPeek::publish_enq_request(q, a, 777);  // T: 0 -> 1, no value

  uint64_t v = q.dequeue(b);
  EXPECT_EQ(v, Core::kEmpty);  // legal: A's enqueue not yet linearized
  OpStats s = q.collect_stats();
  EXPECT_EQ(s.deq_slow.load(), 1u);
  EXPECT_EQ(s.deq_fast.load(), 0u);

  // A's value must still surface eventually.
  bool saw = false;
  for (int i = 0; i < 64 && !saw; ++i) {
    if (q.dequeue(c) == 777u) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(WfSlowPath, ContendedWf0StaysCorrect) {
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t> q(cfg);
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kOps = 3000;
  std::atomic<uint64_t> sum_in{0}, sum_out{0}, count_out{0};

  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      uint64_t local_in = 0, local_out = 0, local_n = 0;
      for (uint64_t i = 0; i < kOps; ++i) {
        uint64_t v = t * kOps + i + 1;
        q.enqueue(h, v);
        local_in += v;
        auto got = q.dequeue(h);
        if (got.has_value()) {
          local_out += *got;
          ++local_n;
        }
      }
      sum_in.fetch_add(local_in);
      sum_out.fetch_add(local_out);
      count_out.fetch_add(local_n);
    });
  }
  for (auto& t : ts) t.join();

  auto h = q.get_handle();
  for (;;) {
    auto got = q.dequeue(h);
    if (!got.has_value()) break;
    sum_out.fetch_add(*got);
    count_out.fetch_add(1);
  }
  EXPECT_EQ(count_out.load(), uint64_t{kThreads} * kOps);
  EXPECT_EQ(sum_in.load(), sum_out.load());

  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues(), uint64_t{kThreads} * kOps);
  // Note: on hosts with a single hardware thread, preemption-driven
  // interleaving may never fail a fast path here; the deterministic tests
  // above pin down slow-path coverage instead.
}

TEST(WfSlowPath, BreakdownPercentagesAreConsistent) {
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t> q(cfg);
  constexpr unsigned kThreads = 6;
  constexpr uint64_t kOps = 2000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) {
        if ((t + i) % 2 == 0) {
          q.enqueue(h, t * kOps + i + 1);
        } else {
          (void)q.dequeue(h);
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues() + s.dequeues(), uint64_t{kThreads} * kOps);
  EXPECT_LE(s.deq_empty.load(), s.dequeues());
  EXPECT_GE(s.pct_slow_enq(), 0.0);
  EXPECT_LE(s.pct_slow_enq(), 100.0);
  EXPECT_GE(s.pct_slow_deq(), 0.0);
  EXPECT_LE(s.pct_slow_deq(), 100.0);
  EXPECT_GE(s.pct_empty_deq(), 0.0);
  EXPECT_LE(s.pct_empty_deq(), 100.0);
}

TEST(WfSlowPath, DequeueOnlyContentionReturnsEmptyNotGarbage) {
  // Racing dequeuers on an empty queue must all see EMPTY and the queue
  // must stay usable.
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t> q(cfg);
  constexpr unsigned kThreads = 8;
  std::atomic<uint64_t> nonempty{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      auto h = q.get_handle();
      for (int i = 0; i < 2000; ++i) {
        if (q.dequeue(h).has_value()) nonempty.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(nonempty.load(), 0u);

  auto h = q.get_handle();
  q.enqueue(h, 42);
  EXPECT_EQ(q.dequeue(h), 42u);
}

TEST(WfSlowPath, EnqueueOnlyBurstThenDrainIsComplete) {
  WfConfig cfg;
  cfg.patience = 0;
  WFQueue<uint64_t> q(cfg);
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kOps = 4000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) q.enqueue(h, t * kOps + i + 1);
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  uint64_t n = 0;
  std::vector<bool> seen(kThreads * kOps + 1, false);
  for (;;) {
    auto v = q.dequeue(h);
    if (!v.has_value()) break;
    ASSERT_FALSE(seen[*v]);
    seen[*v] = true;
    ++n;
  }
  EXPECT_EQ(n, uint64_t{kThreads} * kOps);
}

class WfPatienceSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WfPatienceSweep, CorrectAcrossPatienceValues) {
  WfConfig cfg;
  cfg.patience = GetParam();
  WFQueue<uint64_t> q(cfg);
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 3000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      for (uint64_t i = 0; i < kOps; ++i) {
        q.enqueue(h, t * kOps + i + 1);
        (void)q.dequeue(h);
      }
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  uint64_t drained = 0;
  while (q.dequeue(h).has_value()) ++drained;
  OpStats s = q.stats();
  EXPECT_EQ(s.enqueues(), uint64_t{kThreads} * kOps);
  EXPECT_EQ(s.dequeues() - s.deq_empty.load(), s.enqueues());
}

INSTANTIATE_TEST_SUITE_P(Patience, WfPatienceSweep,
                         ::testing::Values(0u, 1u, 2u, 10u, 100u));

}  // namespace
}  // namespace wfq
