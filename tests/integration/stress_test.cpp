// Longer-running stress scenarios across modules: sustained traffic with
// handle churn, boxed payloads under concurrency, bursty phase changes, and
// memory-footprint stability.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "baselines/lcrq.hpp"
#include "baselines/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "support/queue_test_util.hpp"

namespace wfq {
namespace {

struct Seg32Traits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = 32;
};

TEST(Stress, WfQueueSustainedMixedTrafficWithHandleChurn) {
  WfConfig cfg;
  cfg.patience = 2;
  cfg.max_garbage = 8;
  WFQueue<uint64_t, Seg32Traits> q(cfg);
  constexpr unsigned kThreads = 6;
  constexpr int kBatches = 60;
  std::atomic<uint64_t> enq_total{0}, deq_total{0};

  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      uint64_t next = (uint64_t(t) << 40) | 1;
      for (int b = 0; b < kBatches; ++b) {
        // Fresh handle per batch: exercises registration reuse under load.
        auto h = q.get_handle();
        for (int i = 0; i < 100; ++i) {
          q.enqueue(h, next++);
          enq_total.fetch_add(1, std::memory_order_relaxed);
          if (q.dequeue(h).has_value()) {
            deq_total.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  while (q.dequeue(h).has_value()) {
    deq_total.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(enq_total.load(), deq_total.load());
  EXPECT_LT(q.live_segments(), 4000u);  // footprint bounded
}

TEST(Stress, WfQueueBoxedStringsConcurrent) {
  WFQueue<std::string> q;
  constexpr unsigned kProducers = 3, kConsumers = 3;
  constexpr int kPerProducer = 3000;
  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> checksum_in{0}, checksum_out{0};

  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      auto h = q.get_handle();
      uint64_t local = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        std::string s = std::to_string(p) + ":" + std::to_string(i);
        for (char c : s) local += uint8_t(c);
        q.enqueue(h, std::move(s));
      }
      checksum_in.fetch_add(local);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      auto h = q.get_handle();
      uint64_t local = 0;
      while (consumed.load() < kProducers * kPerProducer) {
        auto v = q.dequeue(h);
        if (v.has_value()) {
          for (char ch : *v) local += uint8_t(ch);
          consumed.fetch_add(1);
        } else if (done.load() &&
                   consumed.load() >= kProducers * kPerProducer) {
          break;
        }
      }
      checksum_out.fetch_add(local);
    });
  }
  for (unsigned i = 0; i < kProducers; ++i) ts[i].join();
  done.store(true);
  for (unsigned i = kProducers; i < ts.size(); ++i) ts[i].join();
  EXPECT_EQ(consumed.load(), uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(checksum_in.load(), checksum_out.load());
}

TEST(Stress, WfQueueBurstyPhases) {
  // Alternating all-produce / all-consume phases stress segment growth then
  // mass reclamation.
  WfConfig cfg;
  cfg.max_garbage = 4;
  WFQueue<uint64_t, Seg32Traits> q(cfg);
  constexpr unsigned kThreads = 4;
  for (int phase = 0; phase < 10; ++phase) {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        auto h = q.get_handle();
        for (int i = 0; i < 2000; ++i) {
          q.enqueue(h, (uint64_t(t) << 40) | (uint64_t(phase) << 20) |
                           uint64_t(i + 1));
        }
      });
    }
    for (auto& t : ts) t.join();
    ts.clear();
    std::atomic<uint64_t> drained{0};
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        auto h = q.get_handle();
        while (drained.load() < kThreads * 2000) {
          if (q.dequeue(h).has_value()) {
            drained.fetch_add(1);
          } else if (drained.load() >= kThreads * 2000) {
            break;
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(drained.load(), uint64_t{kThreads} * 2000);
  }
  // >= 5000 segments' worth of indices were consumed across the phases;
  // any figure well below that proves reclamation kept up. The bound is
  // deliberately loose: cleanup timing varies with scheduling (and is much
  // slower under sanitizers).
  EXPECT_LT(q.live_segments(), 3000u);
}

TEST(Stress, MsQueueAndLcrqLongChurn) {
  baselines::MSQueue<uint64_t> ms;
  test::run_pairs_conservation(ms, 6, 8000);
  baselines::LCRQ<uint64_t, 128> lcrq;
  test::run_pairs_conservation(lcrq, 6, 8000);
}

TEST(Stress, ManyQueuesInParallel) {
  // Several independent queues active at once (cross-instance isolation).
  constexpr int kQueues = 4;
  std::vector<std::unique_ptr<WFQueue<uint64_t>>> queues;
  for (int i = 0; i < kQueues; ++i) {
    queues.push_back(std::make_unique<WFQueue<uint64_t>>());
  }
  std::vector<std::thread> ts;
  std::atomic<bool> ok{true};
  for (int qi = 0; qi < kQueues; ++qi) {
    ts.emplace_back([&, qi] {
      auto& q = *queues[qi];
      auto h = q.get_handle();
      for (uint64_t i = 1; i <= 20000; ++i) {
        q.enqueue(h, (uint64_t(qi) << 40) | i);
        auto v = q.dequeue(h);
        if (!v.has_value() || (*v >> 40) != uint64_t(qi)) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(ok.load()) << "cross-queue value leakage";
}

}  // namespace
}  // namespace wfq
