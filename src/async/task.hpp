// Task<T>: the minimal lazy coroutine type the async queue surface returns.
//
// Design constraints, in order:
//  * Lazy start (initial_suspend = always): a Task is inert until awaited
//    or explicitly started, so `auto t = q.pop_async(h)` never registers a
//    waiter the caller did not ask for yet.
//  * Symmetric transfer at final_suspend: completing a task resumes its
//    continuation by returning the handle from await_suspend, not by a
//    nested resume() call — no stack growth through chains of co_await.
//  * No allocation beyond the coroutine frame itself, no type erasure, no
//    scheduler baked in. WHERE a resumption runs is the Executor's concern
//    (executor.hpp); the Task just transfers control.
//
// sync_wait(task) is the bridge for non-coroutine callers (tests, main()):
// it drives the task on the current thread and parks on a futex word until
// the task completes — the same Futex the queues park on, so the async
// suite exercises no third blocking primitive.
#pragma once

#include <atomic>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sync/futex.hpp"

namespace wfq::async {

template <class T>
class Task;

namespace detail {

/// Final awaiter: hand control straight to whoever co_awaited us (or back
/// to the resumer when the task was started detached from any awaiter).
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <class T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;  ///< resumed at final_suspend
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <class T>
struct TaskPromise : TaskPromiseBase<T> {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  template <class U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
  T take() {
    if (this->error) std::rethrow_exception(this->error);
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase<void> {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take() {
    if (this->error) std::rethrow_exception(this->error);
  }
};

}  // namespace detail

/// A lazily-started, move-only coroutine returning T. Await it exactly
/// once. Destroying a Task destroys its frame; destroying one that is
/// suspended *inside an awaiter registered with a queue* is safe — the
/// awaiter's destructor deregisters (see async_queue.hpp) — but destroying
/// one whose resumption is already posted to an executor is the caller's
/// race to avoid, exactly as with any callback system.
template <class T>
class Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return h_ && h_.done(); }

  /// Awaiting a Task starts it and suspends the awaiting coroutine until
  /// it completes (symmetric transfer both ways).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start the task now
      }
      T await_resume() { return h.promise().take(); }
    };
    return Awaiter{h_};
  }

  /// Start the task with no continuation (fire it from non-coroutine
  /// code); completion parks at final_suspend until destroyed. Used by
  /// sync_wait and by tests that drive resumption manually.
  void start() {
    if (h_) h_.resume();
  }

  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

 private:
  std::coroutine_handle<promise_type> h_;
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

/// Eager helper coroutine behind sync_wait: runs the wrapped task, then
/// flips the futex word the waiting thread is parked on. suspend_never at
/// final_suspend means the frame frees itself; everything it touches at
/// the end (`st`) lives on the sync_wait caller's stack, which provably
/// outlives the store+wake because the caller does not return before
/// observing done != 0.
struct SyncDriver {
  struct SyncState {
    std::atomic<uint32_t> done{0};
  };
  struct promise_type {
    SyncDriver get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

template <class T>
SyncDriver sync_drive(Task<T>& t, SyncDriver::SyncState& st,
                      std::optional<T>& out, std::exception_ptr& err) {
  try {
    out.emplace(co_await std::move(t));
  } catch (...) {
    err = std::current_exception();
  }
  st.done.store(1, std::memory_order_release);
  sync::Futex::wake_all(st.done);
}

inline SyncDriver sync_drive(Task<void>& t, SyncDriver::SyncState& st,
                             std::exception_ptr& err) {
  try {
    co_await std::move(t);
  } catch (...) {
    err = std::current_exception();
  }
  st.done.store(1, std::memory_order_release);
  sync::Futex::wake_all(st.done);
}

}  // namespace detail

/// Run a task to completion from non-coroutine code, parking the calling
/// thread while the task is suspended elsewhere (e.g. registered as an
/// async queue waiter that another thread's push will resume).
template <class T>
T sync_wait(Task<T> t) {
  detail::SyncDriver::SyncState st;
  std::optional<T> out;
  std::exception_ptr err;
  detail::sync_drive(t, st, out, err);
  while (st.done.load(std::memory_order_acquire) == 0) {
    sync::Futex::wait(st.done, 0);
  }
  if (err) std::rethrow_exception(err);
  return std::move(*out);
}

inline void sync_wait(Task<void> t) {
  detail::SyncDriver::SyncState st;
  std::exception_ptr err;
  detail::sync_drive(t, st, err);
  while (st.done.load(std::memory_order_acquire) == 0) {
    sync::Futex::wait(st.done, 0);
  }
  if (err) std::rethrow_exception(err);
}

/// Fire-and-forget coroutine type for event-loop servers (examples/): the
/// body starts eagerly, owns its own frame, and frees it on completion.
/// Exceptions escaping a detached coroutine terminate — there is no one
/// left to rethrow to.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

}  // namespace wfq::async
