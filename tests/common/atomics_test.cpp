// Unit tests for the atomic-primitive substrate (§3.1 of the paper):
// native/emulated FAA equivalence, CAS helpers, and double-width CAS.
#include "common/atomics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace wfq {
namespace {

template <class Faa>
class FaaPolicyTest : public ::testing::Test {};

using FaaPolicies = ::testing::Types<NativeFaa, EmulatedFaa>;
TYPED_TEST_SUITE(FaaPolicyTest, FaaPolicies);

TYPED_TEST(FaaPolicyTest, ReturnsPreviousValue) {
  std::atomic<uint64_t> a{10};
  EXPECT_EQ(TypeParam::fetch_add(a, uint64_t{5}, std::memory_order_seq_cst),
            10u);
  EXPECT_EQ(a.load(), 15u);
}

TYPED_TEST(FaaPolicyTest, SignedNegativeIncrement) {
  std::atomic<int64_t> a{0};
  EXPECT_EQ(TypeParam::fetch_add(a, int64_t{-3}, std::memory_order_seq_cst),
            0);
  EXPECT_EQ(a.load(), -3);
}

TYPED_TEST(FaaPolicyTest, ConcurrentIncrementsAllDistinct) {
  // FAA must hand out every index exactly once — the property the whole
  // queue design rests on.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<uint64_t> counter{0};
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        got[t].push_back(TypeParam::fetch_add(counter, uint64_t{1},
                                              std::memory_order_seq_cst));
      }
    });
  }
  for (auto& t : ts) t.join();
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (auto& v : got) {
    for (uint64_t x : v) {
      ASSERT_LT(x, seen.size());
      ASSERT_FALSE(seen[x]) << "index " << x << " issued twice";
      seen[x] = true;
    }
  }
  EXPECT_EQ(counter.load(), uint64_t{kThreads} * kPerThread);
}

TEST(FaaPolicy, WaitFreedomFlagsMatchTheHardwareStory) {
  // Native FAA is wait-free; the LL/SC emulation is not (§3.1, §5 Power7).
  EXPECT_TRUE(NativeFaa::kWaitFree);
  EXPECT_FALSE(EmulatedFaa::kWaitFree);
}

TEST(Cas, SucceedsOnceOnExpectedValue) {
  std::atomic<int> a{1};
  EXPECT_TRUE(cas(a, 1, 2));
  EXPECT_EQ(a.load(), 2);
  EXPECT_FALSE(cas(a, 1, 3));
  EXPECT_EQ(a.load(), 2);
}

TEST(Cas, WitnessReportsObservedValue) {
  std::atomic<int> a{7};
  int expected = 1;
  EXPECT_FALSE(cas_witness(a, expected, 9));
  EXPECT_EQ(expected, 7);
  EXPECT_TRUE(cas_witness(a, expected, 9));
  EXPECT_EQ(a.load(), 9);
}

TEST(Backoff, GrowsAndResets) {
  Backoff b(16);
  // No crash, bounded growth; behavioural smoke test.
  for (int i = 0; i < 10; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

TEST(Cas2, BasicSwap) {
  U128 w{1, 2};
  EXPECT_TRUE(cas2(&w, U128{1, 2}, U128{3, 4}));
  EXPECT_EQ(w.lo, 3u);
  EXPECT_EQ(w.hi, 4u);
  EXPECT_FALSE(cas2(&w, U128{1, 2}, U128{5, 6}));
  EXPECT_EQ(w.lo, 3u);
  EXPECT_EQ(w.hi, 4u);
}

TEST(Cas2, FailsOnHalfMatch) {
  // Both halves must match — that is the point of CAS2 in LCRQ.
  U128 w{10, 20};
  EXPECT_FALSE(cas2(&w, U128{10, 99}, U128{0, 0}));
  EXPECT_FALSE(cas2(&w, U128{99, 20}, U128{0, 0}));
  EXPECT_TRUE(cas2(&w, U128{10, 20}, U128{0, 0}));
}

TEST(Cas2, Load2SeesWholePairs) {
  // Writers only ever install (x, x+1) pairs; a torn read would surface as
  // hi != lo+1.
  U128 w{0, 1};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t x = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      U128 cur = load2(&w);
      ++x;
      cas2(&w, cur, U128{x, x + 1});
    }
  });
  for (int i = 0; i < 200000; ++i) {
    U128 v = load2(&w);
    ASSERT_EQ(v.hi, v.lo + 1) << "torn 16-byte read";
  }
  stop.store(true);
  writer.join();
}

TEST(Cas2, ConcurrentCountingNoLostUpdates) {
  U128 w{0, 0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        for (;;) {
          U128 cur = load2(&w);
          if (cas2(&w, cur, U128{cur.lo + 1, cur.hi + 2})) break;
          cpu_pause();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  U128 v = load2(&w);
  EXPECT_EQ(v.lo, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(v.hi, uint64_t{kThreads} * kPerThread * 2);
}

}  // namespace
}  // namespace wfq
