// release_handle hardening: a handle abandoned mid-operation — its
// HandleGuard unwinding through an injected crash, or adopted explicitly
// while the owner is wedged — must have its pending request completed
// exactly once before the record re-enters the freelist, and the recycled
// record must come back clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue_core.hpp"
#include "fault/fault_test_util.hpp"

namespace wfq {
namespace {

using fault_test::FaultTraits;
using fault_test::Inj;
using Core = WFQueueCore<FaultTraits>;

// Seal the first `n` cells by dequeuing on an empty queue: each empty
// dequeue FAAs H past one cell and (patience 0) ⊤-seals it, so the next
// enqueue's fast-path attempt lands on a dead cell and must take the slow
// path — the only way to reach a published request deterministically from
// a single thread.
void seal_cells(Core& q, Core::Handle* h, int n) {
  for (int i = 0; i < n; ++i) EXPECT_EQ(q.dequeue(h), Core::kEmpty);
}

TEST(HandleReleaseHardening, CrashMidEnqueueIsAdoptedOnGuardRelease) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/0, /*max_garbage=*/64, /*reserve=*/0});
  {
    Core::HandleGuard main_h(q);
    seal_cells(q, main_h.get(), 2);
  }

  std::atomic<bool> crashed{false};
  std::thread victim([&] {
    Inj::set_victim(true);
    ASSERT_TRUE(Inj::arm("enq_slow_published", fault::Action::kCrash));
    try {
      Core::HandleGuard g(q);
      q.enqueue(g.get(), 42);
      ADD_FAILURE() << "enqueue returned despite armed crash";
    } catch (const fault::InjectedCrash& c) {
      // The guard's destructor already ran: release_handle saw the pending
      // request and completed it (adoption) before freelisting the record.
      EXPECT_STREQ(c.point, "enq_slow_published");
      crashed = true;
    }
    Inj::set_victim(false);
  });
  victim.join();
  ASSERT_TRUE(crashed.load());
  EXPECT_EQ(Inj::fired("enq_slow_published"), 1u);

  // The abandoned enqueue was completed by the adopter: 42 is in the queue
  // exactly once, and the queue is fully operational.
  Core::HandleGuard h(q);
  EXPECT_EQ(q.dequeue(h.get()), 42u);
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);

  OpStats s = q.collect_stats();
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.injected_crashes.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.orphan_drops.load(std::memory_order_relaxed), 0u);
}

TEST(HandleReleaseHardening, ExplicitAdoptionThenReleaseCompletesOnce) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/0, /*max_garbage=*/64, /*reserve=*/0});
  {
    Core::HandleGuard main_h(q);
    seal_cells(q, main_h.get(), 2);
  }

  Core::Handle* vh = q.register_handle();
  std::atomic<bool> wedged{false};
  std::atomic<bool> adopted{false};
  std::thread victim([&] {
    Inj::set_victim(true);
    ASSERT_TRUE(Inj::arm("enq_slow_published", fault::Action::kCrash));
    try {
      q.enqueue(vh, 99);
      ADD_FAILURE() << "enqueue returned despite armed crash";
    } catch (const fault::InjectedCrash&) {
      // Keep the handle alive: this models a thread that is wedged (not
      // yet destroyed) while another thread decides to adopt its work.
      wedged = true;
    }
    while (!adopted.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    Inj::set_victim(false);
    // Releasing an already-adopted handle must NOT re-complete the op.
    q.release_handle(vh);
  });

  while (!wedged.load(std::memory_order_acquire)) std::this_thread::yield();
  q.adopt_handle(vh);  // completes the pending enqueue, keeps vh un-freed
  adopted.store(true, std::memory_order_release);
  victim.join();

  Core::HandleGuard h(q);
  EXPECT_EQ(q.dequeue(h.get()), 99u);  // exactly once
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);
  OpStats s = q.collect_stats();
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 1u);
}

TEST(HandleReleaseHardening, CrashedDequeueAdoptionDropsClaimedValue) {
  fault_test::ScriptReset script;
  Core q(WfConfig{/*patience=*/0, /*max_garbage=*/64, /*reserve=*/0});

  // Kill an enqueue after its FAA so cell 0 is permanently unwritten, then
  // enqueue a real value (lands at cell 1). A dequeuer now ⊤-seals cell 0,
  // fails its fast path, and publishes a slow-path request.
  std::thread enq_victim([&] {
    Inj::set_victim(true);
    ASSERT_TRUE(Inj::arm("enq_faa_post", fault::Action::kCrash));
    try {
      Core::HandleGuard g(q);
      q.enqueue(g.get(), 7);
      ADD_FAILURE() << "enqueue returned despite armed crash";
    } catch (const fault::InjectedCrash&) {
    }
    Inj::set_victim(false);
  });
  enq_victim.join();
  {
    Core::HandleGuard h(q);
    ASSERT_TRUE(q.enqueue(h.get(), 1234));
  }

  std::thread deq_victim([&] {
    Inj::set_victim(true);
    ASSERT_TRUE(Inj::arm("deq_slow_published", fault::Action::kCrash));
    try {
      Core::HandleGuard g(q);
      (void)q.dequeue(g.get());
      ADD_FAILURE() << "dequeue returned despite armed crash";
    } catch (const fault::InjectedCrash&) {
    }
    Inj::set_victim(false);
  });
  deq_victim.join();
  ASSERT_EQ(Inj::fired("deq_slow_published"), 1u);

  // Adoption completed the crashed dequeue; the value it claimed has no
  // caller to return to and is dropped — but accounted for.
  OpStats s = q.collect_stats();
  EXPECT_EQ(s.orphan_drops.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 2u);
  Core::HandleGuard h(q);
  EXPECT_EQ(q.dequeue(h.get()), Core::kEmpty);
}

TEST(HandleReleaseHardening, RecycledHandlesStayClean) {
  Core q(WfConfig{/*patience=*/0, /*max_garbage=*/64, /*reserve=*/0});
  // Crash an operation through a guard every round, interleaved with clean
  // reuse: every recycled record must pass register_handle's cleanliness
  // assert and behave like a fresh one. The queue is drained to empty each
  // round so the cell-sealing setup stays deterministic.
  for (int round = 0; round < 4; ++round) {
    fault_test::ScriptReset script;
    {
      Core::HandleGuard main_h(q);
      seal_cells(q, main_h.get(), 2);
    }
    const uint64_t adopted_v = 100 + static_cast<uint64_t>(round);
    const uint64_t normal_v = 200 + static_cast<uint64_t>(round);
    std::thread victim([&] {
      Inj::set_victim(true);
      ASSERT_TRUE(Inj::arm("enq_slow_published", fault::Action::kCrash));
      try {
        Core::HandleGuard g(q);
        q.enqueue(g.get(), adopted_v);
        ADD_FAILURE() << "enqueue returned despite armed crash";
      } catch (const fault::InjectedCrash&) {
      }
      Inj::set_victim(false);
    });
    victim.join();
    Core::HandleGuard h(q);
    ASSERT_TRUE(q.enqueue(h.get(), normal_v));
    std::vector<uint64_t> got;
    for (uint64_t v; (v = q.dequeue(h.get())) != Core::kEmpty;) {
      got.push_back(v);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<uint64_t>{adopted_v, normal_v}))
        << "round " << round;
  }
  OpStats s = q.collect_stats();
  EXPECT_EQ(s.adopted_handles.load(std::memory_order_relaxed), 4u);
}

}  // namespace
}  // namespace wfq
