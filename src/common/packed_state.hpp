// Packed request-state words for the wait-free queue.
//
// §3.3 of the paper: an enqueue request's state is the pair
// (pending : 1 bit, id : 63 bits) and a dequeue request's state is
// (pending : 1 bit, idx : 63 bits). Each pair must be read and CASed as a
// single 64-bit atom — the two-word request consistency argument in §3.4
// ("Write the proper value in a cell") depends on it. This header is the one
// place that knows the bit layout.
#pragma once

#include <cstdint>

namespace wfq {

/// A (pending, index) pair packed into one 64-bit word.
/// Bit 63 holds `pending`; bits 62..0 hold the cell index / request id.
class PackedState {
 public:
  static constexpr uint64_t kPendingBit = uint64_t{1} << 63;
  static constexpr uint64_t kIndexMask = kPendingBit - 1;
  /// Largest representable index; queue indices are monotonically increasing
  /// 63-bit integers, so exhausting this takes centuries at any real rate.
  static constexpr uint64_t kMaxIndex = kIndexMask;

  constexpr PackedState() noexcept : word_(0) {}
  constexpr PackedState(bool pending, uint64_t index) noexcept
      : word_((pending ? kPendingBit : 0) | (index & kIndexMask)) {}

  static constexpr PackedState from_word(uint64_t w) noexcept {
    PackedState s;
    s.word_ = w;
    return s;
  }

  constexpr uint64_t word() const noexcept { return word_; }
  constexpr bool pending() const noexcept { return (word_ & kPendingBit) != 0; }
  constexpr uint64_t index() const noexcept { return word_ & kIndexMask; }

  friend constexpr bool operator==(PackedState a, PackedState b) noexcept {
    return a.word_ == b.word_;
  }

 private:
  uint64_t word_;
};

static_assert(sizeof(PackedState) == 8);
static_assert(PackedState(true, 5).pending());
static_assert(PackedState(true, 5).index() == 5);
static_assert(!PackedState(false, PackedState::kMaxIndex).pending());
static_assert(PackedState(false, PackedState::kMaxIndex).index() ==
              PackedState::kMaxIndex);

}  // namespace wfq
