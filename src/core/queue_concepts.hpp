// The library's queue contract, as the compiler sees it.
//
// Until now the "ConcurrentQueue concept" existed only as comments in
// harness/runner.hpp and tests/support/queue_test_util.hpp — every driver,
// bench contender, soak mode and property test re-stated it informally and
// drifted independently. This header is the single formal statement:
//
//   ConcurrentQueue  get_handle / enqueue / optional-dequeue — the surface
//                    every backend (the wait-free queue, the seven Figure-2
//                    baselines, the bounded family) presents to drivers.
//   BulkQueue        + enqueue_bulk / dequeue_bulk (batched FAA span ops).
//   BoundedQueue     + try_enqueue -> EnqueueResult and capacity(): the
//                    backpressure contract the SCQ/wCQ rings introduce and
//                    BlockingQueue's push_wait parks on.
//
// QueueCaps is the runtime-queryable mirror (capability table in
// docs/API.md): what a generic layer can dispatch on when `if constexpr`
// over the concepts is not enough (the C API's backend selector, the soak's
// backend table). Capabilities are *detected* from the type where possible
// (has_bulk, has_stats, is_bounded) and *declared* where they are semantic
// claims the compiler cannot check (is_wait_free — progress guarantees do
// not type-check; a queue asserts kIsWaitFree and the waitfreedom bench
// holds it to that).
//
// Every backend is static_assert-ed against these concepts in
// tests/core/queue_concepts_test.cpp and (per-entry) in the typed backend
// list of tests/integration/all_queues_property_test.cpp, so a signature
// regression is a compile error, not a 2am soak failure.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>

namespace wfq {

/// Result of a bounded enqueue attempt. kFull is a *state*, not an error:
/// the queue is at capacity and the caller owns the backpressure decision
/// (retry, drop, or park via BlockingQueue::push_wait). kNoMem is reserved
/// for backends whose enqueue can fail allocation (segment queues under the
/// OOM protocol); ring backends never return it.
enum class EnqueueResult : int {
  kOk = 0,
  kFull = 1,
  kNoMem = 2,
};

/// The minimal MPMC queue surface shared by every backend in the library.
///
///   - `value_type`: element type.
///   - `Handle`: per-thread access token, obtained from get_handle() and
///     movable (many backends' handles are move-only RAII). One handle per
///     thread; handles are not shared concurrently.
///   - `enqueue(h, v)`: inserts v. Return type is backend-specific (void
///     for most; WFQueue returns bool under the OOM protocol) — drivers
///     that need a uniform answer use try_enqueue on BoundedQueue or treat
///     the call as fire-and-forget.
///   - `dequeue(h)`: optional<value_type>; nullopt linearizes as EMPTY.
template <class Q>
concept ConcurrentQueue =
    requires(Q& q, typename Q::Handle& h, typename Q::value_type v) {
      typename Q::value_type;
      typename Q::Handle;
      { q.get_handle() } -> std::same_as<typename Q::Handle>;
      q.enqueue(h, std::move(v));
      { q.dequeue(h) } -> std::same_as<std::optional<typename Q::value_type>>;
    };

/// Batched extension: a backend that can amortize its synchronization over
/// k-element spans. enqueue_bulk's return type is backend-specific (void on
/// the unbounded baselines, size_t on WFQueue where the OOM protocol can
/// shorten a batch); dequeue_bulk always reports how many items landed.
template <class Q>
concept BulkQueue =
    ConcurrentQueue<Q> &&
    requires(Q& q, typename Q::Handle& h, typename Q::value_type* out,
             const typename Q::value_type* in, std::size_t n) {
      q.enqueue_bulk(h, in, n);
      { q.dequeue_bulk(h, out, n) } -> std::convertible_to<std::size_t>;
    };

/// Bounded extension: capacity is a hard, pre-allocated limit and full is
/// an observable state. Contract:
///   - `capacity()`: the configured bound; the queue never holds more than
///     this many elements and never allocates past its construction-time
///     footprint.
///   - `try_enqueue(h, v)`: kOk or kFull, never blocks, never drops.
///   - `enqueue(h, v)` (from ConcurrentQueue) on a bounded backend is the
///     backpressure-blocking convenience: it retries try_enqueue until
///     space appears. Non-blocking callers use try_enqueue; parking callers
///     use BlockingQueue::push_wait.
template <class Q>
concept BoundedQueue =
    ConcurrentQueue<Q> &&
    requires(Q& q, typename Q::Handle& h, typename Q::value_type v) {
      { q.try_enqueue(h, std::move(v)) } -> std::same_as<EnqueueResult>;
      { q.capacity() } -> std::convertible_to<std::size_t>;
    };

/// Capability summary for one backend — the runtime mirror of the concepts
/// above, for layers that tabulate backends (docs/API.md's matrix, the C
/// API selector, soak's --backend table) rather than template over them.
struct QueueCaps {
  bool is_wait_free = false;  ///< per-op step bound (declared, not detected)
  bool is_bounded = false;    ///< models BoundedQueue
  bool has_bulk = false;      ///< models BulkQueue
  bool has_stats = false;     ///< exposes OpStats via stats()
  /// Declared (kRelaxedOrder): dequeue order is only FIFO per lane/producer
  /// class, not globally — the sharded layer's contract. Strict-FIFO
  /// backends leave it false; drivers that assert global FIFO (the
  /// sequential checker, fuzz differential episodes) must consult this bit
  /// before applying a total-order oracle.
  bool relaxed_order = false;
};

namespace detail {
template <class Q>
concept HasStats = requires(const Q& q) { q.stats(); };
template <class Q>
concept DeclaresWaitFree = requires { { Q::kIsWaitFree } -> std::convertible_to<bool>; };
template <class Q>
concept DeclaresRelaxedOrder = requires { { Q::kRelaxedOrder } -> std::convertible_to<bool>; };
}  // namespace detail

/// Detected + declared capabilities of Q. is_wait_free comes from a
/// `static constexpr bool kIsWaitFree` member (absent == false): progress
/// guarantees are semantic claims, so a backend must opt in explicitly.
template <class Q>
constexpr QueueCaps queue_caps() {
  QueueCaps c;
  c.is_bounded = BoundedQueue<Q>;
  c.has_bulk = BulkQueue<Q>;
  c.has_stats = detail::HasStats<Q>;
  if constexpr (detail::DeclaresWaitFree<Q>) c.is_wait_free = Q::kIsWaitFree;
  if constexpr (detail::DeclaresRelaxedOrder<Q>) {
    c.relaxed_order = Q::kRelaxedOrder;
  }
  return c;
}

template <class Q>
inline constexpr QueueCaps kQueueCaps = queue_caps<Q>();

}  // namespace wfq
