// Linearizability checker for complete FIFO-queue histories.
//
// General linearizability checking is NP-hard, but FIFO queues admit a
// complete polynomial characterization when enqueued values are distinct.
// Henzinger, Sezgin & Vafeiadis (CONCUR'13, "Aspect-oriented
// linearizability proofs") prove that a complete queue history is
// linearizable iff it contains none of four bad patterns:
//
//   P1  a dequeue returns a value never enqueued;
//   P2  two dequeues return the same value;
//   P3  values a, b with enq(a) <H enq(b), b dequeued, and a either never
//       dequeued or deq(b) <H deq(a)    (FIFO-order violation);
//   P4  a dequeue-EMPTY while the queue is provably non-empty.
//
// plus the basic sanity condition that no dequeue of v completes before
// enq(v) begins (a special case of P1 once matching is by value: we check
// it explicitly as P0 because the value *was* enqueued, only later).
//
// P4 needs care. The naive pairwise form ("exists v with enq(v) <H d and
// d <H deq(v)") is incomplete: constraints can be forced through chains —
// e.g. enq(v3) <H deq(v1) and enq(v1) <H d force v3 to be enqueued before d
// can empty the queue, even though enq(v3) and d overlap. (Our cross-
// validation fuzzer against a brute-force definitional checker found this.)
// We use an interval-coverage argument instead, in the linearization-points
// view (linearizable <=> points can be chosen inside every operation's
// interval whose order is a legal sequential history):
//
//   * value v is CERTAINLY in the queue throughout [enq(v).respond,
//     dlb(v)], where dlb(v) lower-bounds deq(v)'s linearization point:
//     dlb(v) = max(deq(v).invoke, dlb(a) for every a with enq(a) <H
//     enq(v)) — the FIFO-forced propagation (deq(a) must precede deq(v));
//     v never dequeued => certainly present on [enq(v).respond, +inf).
//   * an EMPTY d is illegal iff the open interval (d.invoke, d.respond)
//     is fully covered by certain-presence intervals: then no choice of
//     linearization point for d sees an empty queue.
//
// The checker runs in O(n^2) and reports the first violation with a
// human-readable explanation; its completeness is continuously fuzzed
// against the brute-force checker (tests/checker/cross_validation_test).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/history.hpp"

namespace wfq::lin {

struct CheckResult {
  bool linearizable = true;
  std::string violation;  ///< empty when linearizable

  explicit operator bool() const { return linearizable; }
};

inline CheckResult violation(std::string msg) {
  return CheckResult{false, std::move(msg)};
}

/// Checks a complete history (every operation finished) of a FIFO queue
/// whose enqueued values are pairwise distinct.
inline CheckResult check_queue_history(const std::vector<Op>& ops) {
  std::unordered_map<uint64_t, const Op*> enq_of;
  std::vector<const Op*> enqueues;
  std::vector<const Op*> dequeues;
  std::vector<const Op*> empties;
  enq_of.reserve(ops.size());

  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kEnqueue: {
        auto [it, fresh] = enq_of.emplace(op.value, &op);
        if (!fresh) {
          std::ostringstream os;
          os << "precondition violated: value " << op.value
             << " enqueued twice (checker requires distinct values)";
          return violation(os.str());
        }
        enqueues.push_back(&op);
        break;
      }
      case OpKind::kDequeue:
        dequeues.push_back(&op);
        break;
      case OpKind::kDequeueEmpty:
        empties.push_back(&op);
        break;
    }
  }

  // P1 + P2: every dequeue matches exactly one enqueue.
  std::unordered_map<uint64_t, const Op*> deq_of;
  deq_of.reserve(dequeues.size());
  for (const Op* d : dequeues) {
    auto e = enq_of.find(d->value);
    if (e == enq_of.end()) {
      std::ostringstream os;
      os << "P1: dequeue returned value " << d->value
         << " that was never enqueued";
      return violation(os.str());
    }
    auto [it, fresh] = deq_of.emplace(d->value, d);
    if (!fresh) {
      std::ostringstream os;
      os << "P2: value " << d->value << " dequeued twice";
      return violation(os.str());
    }
    // P0: a value cannot be dequeued before its enqueue began.
    if (precedes(*d, *e->second)) {
      std::ostringstream os;
      os << "P0: dequeue of " << d->value
         << " completed before its enqueue was invoked";
      return violation(os.str());
    }
  }

  auto deq = [&](const Op* e) -> const Op* {
    auto it = deq_of.find(e->value);
    return it == deq_of.end() ? nullptr : it->second;
  };

  // P3: FIFO violations. For each strictly-ordered enqueue pair.
  for (const Op* ea : enqueues) {
    const Op* da = deq(ea);
    for (const Op* eb : enqueues) {
      if (ea == eb || !precedes(*ea, *eb)) continue;
      const Op* db = deq(eb);
      if (db == nullptr) continue;  // b still in the queue: no constraint
      if (da == nullptr) {
        std::ostringstream os;
        os << "P3: enq(" << ea->value << ") precedes enq(" << eb->value
           << ") and " << eb->value << " was dequeued, but " << ea->value
           << " never was";
        return violation(os.str());
      }
      if (precedes(*db, *da)) {
        std::ostringstream os;
        os << "P3: enq(" << ea->value << ") precedes enq(" << eb->value
           << ") but deq(" << eb->value << ") precedes deq(" << ea->value
           << ")";
        return violation(os.str());
      }
    }
  }

  // P4: illegal EMPTY results, via certain-presence interval coverage.
  if (!empties.empty()) {
    // dlb(v): lower bound on deq(v)'s linearization point. Start from the
    // dequeue's own invocation and propagate the FIFO-forced ordering:
    // enq(a) <H enq(b) forces deq(a) before deq(b), so dlb(b) >= dlb(a).
    // Fixpoint iteration; each pass only raises bounds, and bounds are
    // drawn from a finite timestamp set, so it terminates quickly (real
    // histories converge in one or two passes).
    constexpr uint64_t kForever = ~uint64_t{0};
    std::unordered_map<uint64_t, uint64_t> dlb;  // value -> point lower bound
    dlb.reserve(enqueues.size());
    for (const Op* e : enqueues) {
      const Op* dv = deq(e);
      dlb[e->value] = dv == nullptr ? kForever : dv->invoke_ts;
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (const Op* ea : enqueues) {
        uint64_t a = dlb[ea->value];
        if (a == kForever) continue;  // P3 already vetted successors
        for (const Op* eb : enqueues) {
          if (ea == eb || !precedes(*ea, *eb)) continue;
          auto it = dlb.find(eb->value);
          if (it->second != kForever && it->second < a) {
            it->second = a;
            changed = true;
          }
        }
      }
    }
    // Certain-presence intervals: [enq.respond, dlb(v)].
    struct Interval {
      uint64_t lo, hi;
    };
    std::vector<Interval> present;
    present.reserve(enqueues.size());
    for (const Op* e : enqueues) {
      uint64_t hi = dlb[e->value];
      if (e->respond_ts <= hi) present.push_back({e->respond_ts, hi});
    }
    std::sort(present.begin(), present.end(),
              [](const Interval& x, const Interval& y) { return x.lo < y.lo; });

    for (const Op* d : empties) {
      // Does (d.invoke, d.respond) contain a point outside every
      // certain-presence interval?
      uint64_t reach = d->invoke_ts;  // covered (d.invoke, reach] so far
      bool hole = false;
      for (const auto& iv : present) {
        if (iv.hi < reach || iv.lo > d->respond_ts) {
          if (iv.lo > d->respond_ts) break;  // sorted: no later interval helps
          continue;
        }
        if (iv.lo > reach) {
          hole = true;  // uncovered real points in (reach, iv.lo)
          break;
        }
        if (iv.hi > reach) reach = iv.hi;
        if (reach >= d->respond_ts) break;
      }
      if (reach < d->respond_ts && !hole) hole = true;  // tail uncovered
      if (!hole) {
        std::ostringstream os;
        os << "P4: dequeue returned EMPTY at [" << d->invoke_ts << ","
           << d->respond_ts
           << "] although some value was certainly in the queue at every "
              "point of that interval";
        return violation(os.str());
      }
    }
  }

  return CheckResult{};
}

}  // namespace wfq::lin
