// Queue-generic correctness drivers shared by baseline and integration
// tests. Every queue in the library models the same concept (get_handle /
// enqueue / optional dequeue), so the no-loss/no-dup/FIFO property check is
// written once.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include "core/queue_concepts.hpp"
#include <cstdint>
#include <thread>
#include <vector>

namespace wfq::test {

/// Payload encoding: (producer id << 40) | (sequence + 1).
constexpr uint64_t make_val(unsigned producer, uint64_t seq) {
  return (uint64_t(producer) << 40) | (seq + 1);
}
constexpr unsigned val_producer(uint64_t v) { return unsigned(v >> 40); }
constexpr uint64_t val_seq(uint64_t v) {
  return (v & ((uint64_t{1} << 40) - 1)) - 1;
}

/// Drives `producers` enqueuer threads and `consumers` dequeuer threads,
/// then checks: every value dequeued exactly once, and each consumer saw
/// each producer's values in increasing sequence order (a sound necessary
/// condition for FIFO linearizability).
template <class Queue>
void run_mpmc_property(Queue& q, unsigned producers, unsigned consumers,
                       uint64_t per_producer) {
  static_assert(ConcurrentQueue<Queue>,
                "property drivers require the formal queue contract");
  const uint64_t total = per_producer * producers;
  std::atomic<uint64_t> consumed{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::vector<uint64_t>> consumed_by(consumers);

  std::vector<std::thread> threads;
  for (unsigned pi = 0; pi < producers; ++pi) {
    threads.emplace_back([&, pi] {
      auto h = q.get_handle();
      for (uint64_t s = 0; s < per_producer; ++s) {
        q.enqueue(h, make_val(pi, s));
      }
    });
  }
  for (unsigned ci = 0; ci < consumers; ++ci) {
    threads.emplace_back([&, ci] {
      auto h = q.get_handle();
      auto& mine = consumed_by[ci];
      mine.reserve(total / consumers + 16);
      while (consumed.load(std::memory_order_relaxed) < total) {
        auto v = q.dequeue(h);
        if (v.has_value()) {
          mine.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   consumed.load(std::memory_order_relaxed) >= total) {
          break;
        } else {
          // Empty is transient here; yield so an oversubscribed core can
          // run the producer (or, on bounded rings, the blocked enqueuer)
          // that will make the next value appear.
          std::this_thread::yield();
        }
      }
    });
  }
  for (unsigned i = 0; i < producers; ++i) threads[i].join();
  producers_done.store(true, std::memory_order_release);
  for (unsigned i = producers; i < threads.size(); ++i) threads[i].join();

  ASSERT_EQ(consumed.load(), total);

  std::vector<std::vector<bool>> seen(producers,
                                      std::vector<bool>(per_producer, false));
  for (auto& vec : consumed_by) {
    for (uint64_t v : vec) {
      unsigned prod = val_producer(v);
      uint64_t seq = val_seq(v);
      ASSERT_LT(prod, producers);
      ASSERT_LT(seq, per_producer);
      ASSERT_FALSE(seen[prod][seq])
          << "value (" << prod << ", " << seq << ") dequeued twice";
      seen[prod][seq] = true;
    }
  }
  for (unsigned ci = 0; ci < consumers; ++ci) {
    std::vector<int64_t> last(producers, -1);
    for (uint64_t v : consumed_by[ci]) {
      unsigned prod = val_producer(v);
      auto seq = int64_t(val_seq(v));
      ASSERT_GT(seq, last[prod])
          << "consumer " << ci << " saw producer " << prod
          << " out of FIFO order";
      last[prod] = seq;
    }
  }
}

/// Sequential FIFO smoke applicable to any queue type.
template <class Queue>
void run_sequential_fifo(Queue& q, uint64_t count) {
  static_assert(ConcurrentQueue<Queue>,
                "property drivers require the formal queue contract");
  auto h = q.get_handle();
  for (uint64_t i = 0; i < count; ++i) q.enqueue(h, i + 1);
  for (uint64_t i = 0; i < count; ++i) {
    auto v = q.dequeue(h);
    ASSERT_TRUE(v.has_value()) << i;
    ASSERT_EQ(*v, i + 1);
  }
  ASSERT_FALSE(q.dequeue(h).has_value());
}

/// Alternating enqueue/dequeue pairs from every thread; verifies global
/// conservation of values.
template <class Queue>
void run_pairs_conservation(Queue& q, unsigned threads, uint64_t pairs) {
  static_assert(ConcurrentQueue<Queue>,
                "property drivers require the formal queue contract");
  std::atomic<uint64_t> got{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      auto h = q.get_handle();
      uint64_t local = 0;
      for (uint64_t i = 0; i < pairs; ++i) {
        q.enqueue(h, make_val(t, i));
        if (q.dequeue(h).has_value()) ++local;
      }
      got.fetch_add(local);
    });
  }
  for (auto& t : ts) t.join();
  auto h = q.get_handle();
  uint64_t rest = 0;
  while (q.dequeue(h).has_value()) ++rest;
  ASSERT_EQ(got.load() + rest, uint64_t{threads} * pairs);
}

}  // namespace wfq::test
