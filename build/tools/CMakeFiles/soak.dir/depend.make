# Empty dependencies file for soak.
# This may be replaced when dependencies are built.
