// select_any(q1, q2, ...): suspend until ANY of N async queues can deliver
// — the boson-style multi-queue wait.
//
// One coroutine registers one AsyncWaiter on EVERY queue's EventCount,
// sweeps them once (the per-queue Dekker re-check), and parks if the sweep
// found nothing. The N claim callbacks and the parker all race through the
// shared RoundCore phase word (async_queue.hpp): exactly one claimant wins
// the resumption, and every losing claim passes the notify it consumed
// back to its own queue (ec.notify(1)) so a genuine waiter behind the
// select cannot be starved by a wake the select didn't use. After the
// resume, the coroutine deregisters every remaining armed node — cancels
// that fail the armed-state race rendezvous on kAwDone before the frame
// can be reused — so no waiter counts leak on any path.
//
// Close semantics compose per-queue: a queue is "done" for the select only
// when sealed AND observed empty with the sealed-before-attempt order (the
// same emptiness witness pop_wait uses). select returns kClosed only when
// every queue is done; a single closed queue just drops out of the race.
#pragma once

#include <array>
#include <atomic>
#include <coroutine>
#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>

#include "async/async_queue.hpp"

namespace wfq::async {

/// Outcome of select_any. kOk: `value` came from queue `index` (the
/// argument position). kClosed: every queue is sealed and drained;
/// index == the queue count.
template <class T>
struct SelectResult {
  std::size_t index;
  sync::PopStatus status;
  std::optional<T> value;

  explicit operator bool() const noexcept {
    return status == sync::PopStatus::kOk;
  }
};

/// One (queue, handle) pair entered into a select. Built by on(): the
/// handle stays caller-owned because handles are thread-affine and the
/// select must use the caller's.
template <class Q>
struct Selectable {
  AsyncQueue<Q>* q;
  typename AsyncQueue<Q>::Handle* h;
};

/// Binder: `select_any(on(q1, h1), on(q2, h2))`.
template <class Q>
Selectable<Q> on(AsyncQueue<Q>& q, typename AsyncQueue<Q>::Handle& h) {
  return Selectable<Q>{&q, &h};
}

namespace detail {

/// Type-erased view of one selectable: the sweep and the registration
/// don't care about the inner queue type, only about T.
template <class T>
struct SelectPort {
  void* q;
  void* h;
  sync::EventCount* ec;
  bool (*sealed)(void*);
  bool (*pop)(void*, void*, std::optional<T>&);

  template <class Q>
  static SelectPort make(const Selectable<Q>& s) {
    static_assert(
        std::is_same_v<typename AsyncQueue<Q>::value_type, T>,
        "select_any requires every queue to carry the same value type");
    s.q->count_select_round();
    return SelectPort{
        s.q, s.h, &s.q->blocking().pop_event(),
        [](void* q) {
          return static_cast<AsyncQueue<Q>*>(q)->blocking().sealed();
        },
        [](void* q, void* h, std::optional<T>& out) {
          out = static_cast<AsyncQueue<Q>*>(q)->try_pop(
              *static_cast<typename AsyncQueue<Q>::Handle*>(h));
          return out.has_value();
        }};
  }
};

/// The N-queue round: N AsyncWaiter nodes sharing one RoundCore.
template <class T, std::size_t N>
class SelectRound {
 public:
  SelectRound(const std::array<SelectPort<T>, N>& ports, Executor* exec)
      : ports_(&ports) {
    core_.exec = exec;
    for (std::size_t i = 0; i < N; ++i) {
      slots_[i].self = this;
      slots_[i].idx = i;
      slots_[i].node.ctx = &slots_[i];
      slots_[i].node.on_notify = &on_claim;
      (*ports_)[i].ec->register_async(&slots_[i].node);
    }
  }

  SelectRound(const SelectRound&) = delete;
  SelectRound& operator=(const SelectRound&) = delete;

  /// Every node must be resolved before the frame containing this round
  /// can be reused — the same rendezvous duty as EcRound, times N.
  ~SelectRound() {
    for (std::size_t i = 0; i < N; ++i) {
      EcRound::resolve_node(*(*ports_)[i].ec, slots_[i].node);
    }
  }

  /// The post-registration sweep (per-queue Dekker re-check, in the
  /// sealed-before-attempt order). Engaged result: a value and its queue
  /// index. all_done out-param: every queue sealed AND observed empty.
  std::optional<std::pair<std::size_t, T>> sweep(bool& all_done) {
    all_done = true;
    for (std::size_t i = 0; i < N; ++i) {
      const SelectPort<T>& p = (*ports_)[i];
      bool was_sealed = p.sealed(p.q);
      std::optional<T> v;
      if (p.pop(p.q, p.h, v)) {
        return std::make_pair(i, std::move(*v));
      }
      if (!was_sealed) all_done = false;
    }
    return std::nullopt;
  }

  auto park() noexcept {
    struct Awaiter {
      RoundCore* core;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) noexcept {
        return core->park_suspend(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{&core_};
  }

 private:
  struct Slot {
    sync::EventCount::AsyncWaiter node;
    SelectRound* self;
    std::size_t idx;
  };

  static void on_claim(sync::EventCount::AsyncWaiter* w) {
    // The node's ctx points at its Slot; everything we need must be read
    // out before the kAwDone store (AsyncWaiter contract).
    auto* slot = static_cast<Slot*>(w->ctx);
    SelectRound* self = slot->self;
    sync::EventCount* ec = (*self->ports_)[slot->idx].ec;
    Executor* exec = self->core_.exec;
    const bool owns_resume = self->core_.claim(RoundCore::kWoken);
    std::coroutine_handle<> h = self->core_.h;
    w->state.store(sync::EventCount::kAwDone, std::memory_order_release);
    // -- frame may be freed from here; locals only --
    if (owns_resume) {
      resume_on(exec, h);
    } else {
      // A losing registration: some other queue (or nobody — the round
      // never parked) won this select. The notify we consumed may have
      // been owed to a real waiter on OUR queue: pass it on.
      ec->notify(1);
    }
  }

  const std::array<SelectPort<T>, N>* ports_;
  RoundCore core_;
  std::array<Slot, N> slots_;
};

}  // namespace detail

/// Await the first available value across the given queues; see
/// SelectResult for the outcome encoding. The executor (where the winning
/// resume runs) is taken from the FIRST queue — register all queues of a
/// select with the same executor, which every sane event-loop embedding
/// does anyway.
template <class First, class... Rest>
Task<SelectResult<typename AsyncQueue<First>::value_type>> select_any(
    Selectable<First> first, Selectable<Rest>... rest) {
  using T = typename AsyncQueue<First>::value_type;
  constexpr std::size_t N = 1 + sizeof...(Rest);
  Executor* exec = first.q->executor();
  std::array<detail::SelectPort<T>, N> ports{
      detail::SelectPort<T>::make(first), detail::SelectPort<T>::make(rest)...};
  for (;;) {
    // Pre-registration sweep: the cheap path when something is already
    // there (mirrors the loop-top try_pop of pop_async).
    {
      bool all_done = true;
      for (std::size_t i = 0; i < N; ++i) {
        bool was_sealed = ports[i].sealed(ports[i].q);
        std::optional<T> v;
        if (ports[i].pop(ports[i].q, ports[i].h, v)) {
          co_return SelectResult<T>{i, sync::PopStatus::kOk, std::move(v)};
        }
        if (!was_sealed) all_done = false;
      }
      if (all_done) {
        co_return SelectResult<T>{N, sync::PopStatus::kClosed, std::nullopt};
      }
    }
    {
      detail::SelectRound<T, N> round(ports, exec);
      bool all_done = false;
      if (auto hit = round.sweep(all_done)) {
        co_return SelectResult<T>{hit->first, sync::PopStatus::kOk,
                                  std::move(hit->second)};
      }
      if (all_done) {
        co_return SelectResult<T>{N, sync::PopStatus::kClosed, std::nullopt};
      }
      co_await round.park();
    }  // round destructor cancels every losing registration
  }
}

}  // namespace wfq::async
