// The full Figure-2 campaign in one binary: every contender of
// figure2_contenders() (the paper's line-up, this repo's bounded SCQ/wCQ
// family, the Listing-1 obstruction-free ancestor, and the WF-INF /
// WF-ADAPT patience columns) x the thread sweep x BOTH workloads of the
// figure (enqueue-dequeue pairs on the left, 50%-enqueues on the right),
// measured with the §5.1 Georges-et-al. methodology plus a
// warm-up-until-stable phase, and — with --json — one record per point
// carrying the 95% CI half-width (ci_mops) alongside mops/p50/p99/p999.
//
// The committed BENCH_fig2.json at the repo root is this binary's output;
// tools/bench_diff gates CI against it (see `tools/ci.sh fig2` and
// docs/BENCHMARKING.md "Figure 2 methodology" for the regeneration
// command — the diff is only meaningful when fresh and baseline runs use
// the same WFQ_* environment).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  // Campaign default: discard up to two warm-up iterations per invocation
  // (cold caches / first-touch faults / segment-pool fill); explicit
  // WFQ_WARMUP still wins, and --smoke's tiny iteration budget keeps this
  // cheap there.
  ::setenv("WFQ_WARMUP", "2", /*overwrite=*/0);
  wfq::bench::run_figure("fig2_pairs", wfq::bench::WorkloadKind::kPairs);
  wfq::bench::run_figure("fig2_50enq", wfq::bench::WorkloadKind::kPercentEnq,
                         /*percent_enqueue=*/50);
  return 0;
}
