// Unit tests for the Georges-et-al. measurement procedure.
#include "harness/methodology.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace wfq::bench {
namespace {

TEST(Methodology, StableIterationsExitEarlyAtWindowMean) {
  MethodologyConfig cfg;
  cfg.max_iterations = 20;
  cfg.window = 5;
  cfg.cov_threshold = 0.02;
  int calls = 0;
  double score = measure_invocation(cfg, [&] {
    ++calls;
    return 100.0;  // perfectly stable
  });
  EXPECT_DOUBLE_EQ(score, 100.0);
  EXPECT_EQ(calls, 5) << "must stop at the first steady window";
}

TEST(Methodology, NoisyWarmupIsDiscarded) {
  MethodologyConfig cfg;
  cfg.max_iterations = 20;
  cfg.window = 5;
  cfg.cov_threshold = 0.02;
  int calls = 0;
  // 6 wild warmup iterations, then stable 200s.
  double wild[] = {10, 300, 50, 250, 20, 280};
  double score = measure_invocation(cfg, [&]() -> double {
    double v = calls < 6 ? wild[calls] : 200.0;
    ++calls;
    return v;
  });
  EXPECT_DOUBLE_EQ(score, 200.0);
}

TEST(Methodology, NeverSteadyFallsBackToCalmestWindow) {
  MethodologyConfig cfg;
  cfg.max_iterations = 8;
  cfg.window = 3;
  cfg.cov_threshold = 1e-12;  // unreachable
  int calls = 0;
  double vals[] = {10, 90, 10, 90, 50, 51, 52, 90};
  double score = measure_invocation(cfg, [&] { return vals[calls++]; });
  EXPECT_EQ(calls, 8);
  EXPECT_NEAR(score, 51.0, 1e-9);  // {50,51,52} is the calmest window
}

TEST(Methodology, MeasureProducesCiOverInvocations) {
  MethodologyConfig cfg;
  cfg.max_iterations = 5;
  cfg.window = 2;
  cfg.cov_threshold = 0.5;
  cfg.invocations = 4;
  int invocation = 0;
  auto ci = measure(cfg, [&] {
    double base = 100.0 + invocation++;
    return std::function<double()>([base] { return base; });
  });
  EXPECT_EQ(ci.n, 4u);
  EXPECT_NEAR(ci.mean, 101.5, 1e-9);  // mean of 100..103
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(Methodology, FromEnvParsesOverrides) {
  setenv("WFQ_ITERATIONS", "12", 1);
  setenv("WFQ_WINDOW", "4", 1);
  setenv("WFQ_COV", "0.05", 1);
  setenv("WFQ_INVOCATIONS", "7", 1);
  auto cfg = MethodologyConfig::from_env();
  EXPECT_EQ(cfg.max_iterations, 12u);
  EXPECT_EQ(cfg.window, 4u);
  EXPECT_DOUBLE_EQ(cfg.cov_threshold, 0.05);
  EXPECT_EQ(cfg.invocations, 7u);
  unsetenv("WFQ_ITERATIONS");
  unsetenv("WFQ_WINDOW");
  unsetenv("WFQ_COV");
  unsetenv("WFQ_INVOCATIONS");
}

TEST(Methodology, FromEnvClampsDegenerateValues) {
  setenv("WFQ_ITERATIONS", "1", 1);
  setenv("WFQ_WINDOW", "5", 1);
  auto cfg = MethodologyConfig::from_env();
  EXPECT_GE(cfg.max_iterations, cfg.window);
  unsetenv("WFQ_ITERATIONS");
  unsetenv("WFQ_WINDOW");
}

}  // namespace
}  // namespace wfq::bench
