// WaitStrategy: spin → yield → park escalation for consumers that found the
// queue empty.
//
// Parking costs two syscalls plus a wakeup IPI (~microseconds); an item that
// arrives a few hundred nanoseconds later is far cheaper to catch by
// spinning. The strategy mirrors the role of the core's PATIENCE constant
// (how long the fast path retries before falling to the slow path): burn a
// bounded number of pause-loop spins, then a bounded number of
// yield-to-scheduler rounds, and only then tell the caller to park. The
// knobs are per-call-site policy, not global tuning.
#pragma once

#include "common/atomics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sched.h>
#define WFQ_SYNC_HAVE_SCHED_YIELD 1
#else
#include <thread>
#endif

namespace wfq::sync {

/// Escalation knobs. The defaults favour latency: ~64 pause instructions
/// (< 1 us) catch same-core handoffs, 16 yields (~scheduler quantum probes)
/// catch runnable-but-descheduled producers, then park.
struct WaitPolicy {
  unsigned spin = 64;    ///< cpu_pause() rounds before yielding
  unsigned yield = 16;   ///< sched_yield() rounds before parking

  /// Always park immediately (benchmarks isolating futex cost).
  static constexpr WaitPolicy park_only() { return {0, 0}; }
  /// Never park; degenerate busy-wait. step() returns kSpun (cpu_pause,
  /// the CPU is not yielded) for ~2^32 rounds before the yield phase even
  /// starts — in practice the predicate resolves long before that, so this
  /// is a pure pause-loop spin.
  static constexpr WaitPolicy spin_only() {
    return {~0u, ~0u};
  }
};

class WaitStrategy {
 public:
  enum class Step {
    kSpun,     ///< burned a pause round; retry the predicate
    kYielded,  ///< gave up the CPU once; retry the predicate
    kPark,     ///< escalation exhausted; caller should park (or poll clock)
  };

  explicit WaitStrategy(WaitPolicy policy = {}) : policy_(policy) {}

  /// One escalation step. Calls cpu_pause()/sched_yield() itself; the
  /// caller just re-checks its predicate on kSpun/kYielded and parks on
  /// kPark. kPark is sticky until reset().
  Step step() {
    if (spins_ < policy_.spin) {
      ++spins_;
      cpu_pause();
      return Step::kSpun;
    }
    if (yields_ < policy_.yield) {
      ++yields_;
#if WFQ_SYNC_HAVE_SCHED_YIELD
      sched_yield();
#else
      std::this_thread::yield();
#endif
      return Step::kYielded;
    }
    return Step::kPark;
  }

  /// Restart the escalation (call after successfully popping a value — the
  /// next empty observation starts from the cheap end again).
  void reset() { spins_ = yields_ = 0; }

 private:
  WaitPolicy policy_;
  unsigned spins_ = 0;
  unsigned yields_ = 0;
};

}  // namespace wfq::sync
