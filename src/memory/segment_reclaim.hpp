// Segment-reclamation policies for the shared segment layer
// (core/segment_list.hpp): WHEN may a prefix of the segment list be
// detached and freed, and WHAT must each operation publish to make that
// safe. The paper's custom §3.6 scheme becomes one policy among three, so
// its headline claim — "on x86, our memory reclamation scheme adds no
// memory fence along common execution paths" — is measurable head to head
// on the *same queue* against the textbook alternatives instead of only
// against a different structure (bench_reclaim_scheme.cpp).
//
// ## The ReclaimPolicy concept
//
//   using Policy = Traits::Reclaim<SegList>;     // selected by queue traits
//   Policy::kName                                 // human-readable label
//   struct Policy::PerHandle;                     // embedded in queue Handle
//   policy.attach(h)                              // at handle registration
//   policy.begin_op(h, src)   // protect the op's root segment pointer; src
//                             // is the handle's own head/tail atomic, which
//                             // only ever moves forward
//   policy.end_op(h)          // protection ends
//   policy.protect_foreign(h, seg)  // mid-op jump to a segment read from
//                             // ANOTHER handle (help_deq); publishes + full
//                             // fence; the caller MUST re-validate through
//                             // algorithm state (request still pending and
//                             // unchanged) before dereferencing seg
//   policy.poll(list, h, head_cap, tail_cap, max_garbage)
//                             // after a dequeue: maybe elect a cleaner,
//                             // advance every handle's segment pointers,
//                             // detach [first, frontier) and free/retire
//                             // it; returns ReclaimResult. head_cap and
//                             // tail_cap are segment(H/N) / segment(T/N),
//                             // read seq_cst by the caller BEFORE the call
//   policy.lock_frontier() / unlock_frontier(t)  // exclude cleaners while a
//                             // registering thread captures list.first()
//   policy.frontier_id()      // paper's I: id below which all is reclaimed
//
// The queue Handle must expose `head`, `tail` (std::atomic<Segment*>, both
// monotonically forward-moving), `next` (std::atomic<Handle*> closing a
// ring over ALL handles ever registered) and `rcl` (Policy::PerHandle).
//
// ## Why a single "root" protection per operation suffices
//
// Reclamation is prefix-only: a cleaner detaches [first, frontier) and
// every policy guarantees frontier->id never exceeds the id of any
// protected segment. A traversal (find_cell) only walks *forward* from its
// protected root, so every segment it can touch has an id >= the root's
// and is therefore outside every detachable prefix while the protection
// is visible.
//
// ## Per-operation cost (the §3.6 "Overhead" axis)
//
//   PaperReclaim  fast path: one RELEASE store (ordered for free by the
//                 FAA that immediately follows it on x86/TSO); one real
//                 fence only on the help_deq path.
//   HpReclaim     one seq_cst publish + seq_cst revalidation load per
//                 operation (the classic Michael-HP protocol cost).
//   EpochReclaim  one seq_cst epoch pin + refresh load per operation
//                 (classic EBR); reclamation is deferred through the
//                 epoch domain's limbo lists, so a single stalled thread
//                 *inside* an operation blocks all reclamation — the
//                 bounded-memory weakness the paper's scheme avoids by
//                 letting cleaners advance stalled threads' pointers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "harness/fault_inject.hpp"
#include "memory/epoch.hpp"
#include "memory/hazard_pointers.hpp"

namespace wfq {

/// What a poll() accomplished (fed into the queue's OpStats).
struct ReclaimResult {
  bool cleaned = false;    ///< a cleaner pass detached a prefix
  uint64_t freed = 0;      ///< segments freed or handed to a domain
};

namespace reclaim_detail {

/// Shared cleaner-election word: the paper's I (oldest_id). -1 is the
/// "cleaning in progress" sentinel; otherwise it holds the id below which
/// every segment has been reclaimed.
class FrontierElection {
 public:
  static constexpr int64_t kCleaning = -1;

  int64_t frontier_id() const {
    return oldest_id_->load(std::memory_order_acquire);
  }

  /// Spin until the election word is captured (registration-side lock;
  /// off the operation path).
  int64_t lock_frontier() {
    for (;;) {
      int64_t oid = oldest_id_->load(std::memory_order_acquire);
      if (oid != kCleaning &&
          oldest_id_->compare_exchange_weak(oid, kCleaning,
                                            std::memory_order_acq_rel)) {
        return oid;
      }
      cpu_pause();
    }
  }

  void unlock_frontier(int64_t oid) {
    oldest_id_->store(oid, std::memory_order_release);
  }

 protected:
  /// One-shot cleaner election: CAS(I, oid, -1).
  bool try_elect(int64_t& oid) {
    return oldest_id_->compare_exchange_strong(oid, kCleaning,
                                               std::memory_order_acq_rel);
  }

  CacheAligned<std::atomic<int64_t>> oldest_id_{0};
};

/// Advance another thread's head/tail pointer `from` up to `to`, backing
/// `to` off if the owner advanced the pointer itself to something still
/// older than `to` (Listing 5 update, minus the hazard verification that
/// only PaperReclaim layers on top).
template <class Segment>
void update_segment_ptr(std::atomic<Segment*>& from, Segment*& to) {
  Segment* n = from.load(std::memory_order_acquire);
  if (n->id < to->id) {
    if (!from.compare_exchange_strong(n, to, std::memory_order_seq_cst,
                                      std::memory_order_acquire)) {
      // CAS failed: n holds the current value; the owner advanced it
      // itself. It may still be older than `to`.
      if (n->id < to->id) to = n;
    }
  }
}

/// Keep the frontier at or below segment(tail_cap): enqueuers' future FAAs
/// on T will still probe cells from T upward, so no segment at or after
/// segment(T / N) may be freed and no thread's tail pointer may be
/// advanced past it (erratum fix carried over from the original cleanup;
/// see DESIGN.md). The walk is safe: [first, frontier] is alive while the
/// caller holds the cleaner election.
template <class SegList>
typename SegList::Segment* cap_frontier(SegList& list,
                                        typename SegList::Segment* frontier,
                                        int64_t tail_cap) {
  if (frontier->id <= tail_cap) return frontier;
  auto* s = list.first();
  while (s->id < tail_cap) s = s->next.load(std::memory_order_acquire);
  return s;
}

/// Releases the cleaner election on scope exit unless dismissed. The
/// election word has no owner record, so an exception unwinding out of an
/// elected cleaner — an injected crash, or a real bad_alloc from the scan's
/// bookkeeping — would otherwise leave I = kCleaning forever and silently
/// disable reclamation for the rest of the process.
class ElectionGuard {
 public:
  ElectionGuard(std::atomic<int64_t>* word, int64_t oid) noexcept
      : word_(word), oid_(oid) {}
  ~ElectionGuard() {
    if (word_ != nullptr) word_->store(oid_, std::memory_order_release);
  }
  /// Call once the election word has been re-published (either restored to
  /// oid on the nothing-reclaimable path or advanced to the new frontier).
  void dismiss() noexcept { word_ = nullptr; }
  ElectionGuard(const ElectionGuard&) = delete;
  ElectionGuard& operator=(const ElectionGuard&) = delete;

 private:
  std::atomic<int64_t>* word_;
  int64_t oid_;
};

/// Crash-safe record of a detached-but-not-yet-freed prefix. A cleaner that
/// detaches [head, stop) stashes the range BEFORE the first free; if the
/// cleaner thread dies mid-loop (fault injection's crash action, or a real
/// crash unwinding through a helper), the chain is unreachable from the
/// list — set_first() already passed it — but still recorded here, and the
/// policy destructor frees the remainder. The election may already be
/// released when the free loop runs, so several cleaners can hold ranges at
/// once: each claims one slot by CAS. With more than kSlots concurrent
/// cleaners the extra range goes unstashed (crash there leaks, as before).
template <class Segment>
class LimboStash {
 public:
  static constexpr std::size_t kSlots = 8;

  /// Claim a slot for [head, stop); returns kSlots when full. `stop` is
  /// written after the claim: the only crash opportunity is an injection
  /// point, and none fires between the claim and the store.
  std::size_t stash(Segment* head, Segment* stop) {
    for (std::size_t i = 0; i < kSlots; ++i) {
      Segment* expected = nullptr;
      if (slots_[i].head.compare_exchange_strong(expected, head,
                                                 std::memory_order_acq_rel)) {
        slots_[i].stop = stop;
        return i;
      }
    }
    return kSlots;
  }

  /// The free loop moves the recorded head forward before releasing each
  /// segment, so the stash never points at freed memory.
  void advance(std::size_t slot, Segment* head) {
    if (slot < kSlots) slots_[slot].head.store(head, std::memory_order_relaxed);
  }

  void clear(std::size_t slot) {
    if (slot < kSlots) {
      slots_[slot].head.store(nullptr, std::memory_order_release);
    }
  }

  ~LimboStash() {
    for (auto& s : slots_) {
      Segment* p = s.head.load(std::memory_order_acquire);
      while (p != nullptr && p != s.stop) {
        Segment* next = p->next.load(std::memory_order_relaxed);
        aligned_delete(p);
        p = next;
      }
    }
  }

 private:
  struct Slot {
    std::atomic<Segment*> head{nullptr};
    Segment* stop = nullptr;
  };
  Slot slots_[kSlots];
};

}  // namespace reclaim_detail

// ===========================================================================
// PaperReclaim — the queue's own §3.6 scheme (Listing 5), extracted
// verbatim: per-handle hazard pointer published by a plain release store
// (the FAA that follows orders it on x86 — no fast-path fence), cleaner
// election on I, a forward scan that advances every handle's segment
// pointers while verifying against hazards, and a reverse re-scan that
// catches hazard pointers jumping backward (a helper adopting a helpee's
// older head) during the forward pass. Default policy; behavior and cost
// identical to the pre-extraction WFQueueCore.
// ===========================================================================

template <class SegList>
class PaperReclaim : public reclaim_detail::FrontierElection {
  using Traits = typename SegList::Traits_;

 public:
  using Segment = typename SegList::Segment;
  static constexpr const char* kName = "paper-hzdp";

  struct PerHandle {
    std::atomic<Segment*> hzdp{nullptr};  ///< hazard pointer (§3.6)
  };

  template <class Handle>
  void attach(Handle*) {}

  /// §3.6: publish the hazard pointer. On the tuned/x86 configuration the
  /// FAA inside the fast path orders this store before any segment access
  /// (the paper's "no extra memory fence on the typical path");
  /// conservative mode inserts the fence explicitly for weaker machines.
  template <class Handle>
  void begin_op(Handle* h, const std::atomic<Segment*>& src) {
    h->rcl.hzdp.store(src.load(std::memory_order_relaxed),
                      std::memory_order_release);
    if constexpr (Traits::kConservativeOrdering) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
  }

  template <class Handle>
  void end_op(Handle* h) {
    h->rcl.hzdp.store(nullptr, std::memory_order_release);
  }

  /// True while the handle is inside an operation (protection published).
  /// Used by the orphan-adoption path to decide whether a released handle
  /// abandoned an operation mid-flight.
  template <class Handle>
  bool op_active(Handle* h) const {
    return h->rcl.hzdp.load(std::memory_order_acquire) != nullptr;
  }

  /// The one non-fast-path fence of the scheme (help_deq's jump to the
  /// helpee's head segment). Required even on x86: if the segment was
  /// reclaimed before our store became visible, the caller's re-validation
  /// of the request state fails before it dereferences the segment.
  template <class Handle>
  void protect_foreign(Handle* h, Segment* seg) {
    h->rcl.hzdp.store(seg, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Listing 5 cleanup: invoked after every dequeue; elects at most one
  /// cleaner via CAS(I, i, -1), scans every handle to find the oldest
  /// segment still in use (advancing idle handles' pointers along the
  /// way), re-scans in reverse order to catch hazard-pointer backward
  /// jumps, and frees every segment before the frontier.
  ///
  /// `head_cap`/`tail_cap` are segment(H/N)/segment(T/N), read from the
  /// queue's indices by the caller. The pre-election garbage estimate uses
  /// them instead of the reference implementation's `h->head->id`: before
  /// election a concurrent cleaner may advance `h->head` and free the
  /// segment it pointed to, so dereferencing it here is a use-after-free
  /// read (benign in practice, caught by TSan). Segment pointers are only
  /// dereferenced once the election is won — cleaners are the only threads
  /// that free segments, and there is at most one.
  template <class Handle>
  ReclaimResult poll(SegList& list, Handle* h, int64_t head_cap,
                     int64_t tail_cap, int64_t max_garbage) {
    int64_t oid = this->oldest_id_->load(std::memory_order_acquire);
    if (oid == kCleaning) return {};  // another thread is cleaning
    if (std::min(head_cap, tail_cap) - oid < max_garbage) {
      return {};  // not enough reclaimable garbage
    }
    if (!this->try_elect(oid)) return {};
    reclaim_detail::ElectionGuard election(&*this->oldest_id_, oid);
    Traits::interleave_hint();  // cleaner elected, scan not started
    WFQ_INJECT(Traits, "reclaim_elected");

    Segment* start = list.first();
    Segment* frontier = reclaim_detail::cap_frontier(
        list, h->head.load(std::memory_order_acquire), tail_cap);
    std::vector<Handle*> visited;
    visited.reserve(16);
    // Forward scan over the whole ring, starting at the cleaner itself so
    // its own (possibly lagging) tail pointer is considered too.
    Handle* p = h;
    do {
      verify(frontier, p->rcl.hzdp.load(std::memory_order_seq_cst));
      update_segment_ptr(p->tail, frontier, p);
      update_segment_ptr(p->head, frontier, p);
      visited.push_back(p);
      p = p->next.load(std::memory_order_acquire);
    } while (frontier->id > oid && p != h);
    // Reverse scan: catches hazard pointers that jumped backward (a helper
    // adopting a helpee's older head) during the forward scan.
    for (auto it = visited.rbegin();
         frontier->id > oid && it != visited.rend(); ++it) {
      verify(frontier, (*it)->rcl.hzdp.load(std::memory_order_seq_cst));
    }

    if (frontier->id <= oid) {
      // Nothing reclaimable after all: release the cleaner lock. (Paper
      // erratum: Listing 5 line 236 omits restoring I.)
      election.dismiss();
      this->oldest_id_->store(oid, std::memory_order_release);
      return {};
    }
    list.set_first(frontier);
    election.dismiss();
    this->oldest_id_->store(frontier->id, std::memory_order_release);
    // Free [start, frontier). The range is stashed first so a cleaner that
    // dies between detach and free leaves a record the destructor drains.
    std::size_t slot = limbo_.stash(start, frontier);
    WFQ_INJECT(Traits, "reclaim_frontier_set");
    ReclaimResult res{true, 0};
    while (start != frontier) {
      Segment* next = start->next.load(std::memory_order_relaxed);
      limbo_.advance(slot, next);
      list.delete_segment(start);
      ++res.freed;
      start = next;
    }
    limbo_.clear(slot);
    return res;
  }

 private:
  reclaim_detail::LimboStash<Segment> limbo_;

  /// Lower the reclamation frontier `seg` to a hazard segment if needed
  /// (Listing 5 verify).
  static void verify(Segment*& seg, Segment* hzdp) {
    if (hzdp != nullptr && hzdp->id < seg->id) seg = hzdp;
  }

  /// Advance another thread's head/tail pointer `from` up to `to`, backing
  /// `to` off if the pointer or the thread's hazard pointer protects an
  /// older segment (Listing 5 update; Dijkstra's protocol with the owner).
  template <class Handle>
  static void update_segment_ptr(std::atomic<Segment*>& from, Segment*& to,
                                 Handle* owner) {
    Segment* n = from.load(std::memory_order_acquire);
    if (n->id < to->id) {
      if (!from.compare_exchange_strong(n, to, std::memory_order_seq_cst,
                                        std::memory_order_acquire)) {
        // CAS failed: n holds the current value; the owner advanced it
        // itself. It may still be older than `to`.
        if (n->id < to->id) to = n;
      }
      verify(to, owner->rcl.hzdp.load(std::memory_order_seq_cst));
    }
  }
};

// ===========================================================================
// HpReclaim — classic Michael hazard pointers, adapted over the existing
// HazardPointerDomain registry. Each operation protects its root segment
// with the textbook publish-then-revalidate protocol (slot 0) and the
// help_deq foreign jump uses slot 1; both publications are seq_cst stores,
// which IS the fast-path cost the paper's scheme avoids. The cleaner
// computes the frontier from the handles' segment pointers and then backs
// it off below every published hazard — prefix-only reclamation makes one
// root hazard per traversal sufficient (see file header).
//
// The cleaner scans each handle with the paper's ordering — cap the
// frontier below the owner's published hazards, THEN advance its pointers
// — so a thread already inside an operation never has its segment
// pointers moved past its op-begin segment (hazards make freeing safe;
// they do not stop the pointer CAS, and an over-advanced head would make
// the owner's later find_cell calls resolve the wrong segment). A final
// global hazard sweep after the scan catches hazards published mid-scan:
// such a late publisher revalidates (seq_cst) against post-advance
// pointers, so its operation's indices lie at or above the frontier, but
// its hazard still caps the frontier before anything is freed. The
// foreign-jump path additionally re-validates through the request state,
// which the paper's §3.6 argument shows fails before any dereference once
// the request's owner finished its operation. Prefix-only reclamation
// makes one root hazard per traversal sufficient (see file header).
// ===========================================================================

template <class SegList>
class HpReclaim : public reclaim_detail::FrontierElection {
  using Traits = typename SegList::Traits_;
  using Domain = HazardPointerDomain<2>;

 public:
  using Segment = typename SegList::Segment;
  static constexpr const char* kName = "hazard-pointers";

  struct PerHandle {
    typename Domain::ThreadRec* rec = nullptr;
  };

  template <class Handle>
  void attach(Handle* h) {
    h->rcl.rec = domain_.acquire();
  }

  /// Textbook protect: publish (seq_cst), revalidate against the source.
  /// The source is the handle's own pointer, which only the owner and
  /// cleaners (forward, to the frontier) ever move, so the loop converges
  /// in at most a few iterations.
  template <class Handle>
  void begin_op(Handle* h, const std::atomic<Segment*>& src) {
    Segment* s = src.load(std::memory_order_acquire);
    for (;;) {
      domain_.set_hazard(h->rcl.rec, 0, s);
      Segment* s2 = src.load(std::memory_order_seq_cst);
      if (s2 == s) break;
      s = s2;
    }
  }

  template <class Handle>
  void end_op(Handle* h) {
    domain_.clear(h->rcl.rec, 0);
    domain_.clear(h->rcl.rec, 1);
  }

  /// True while the handle is inside an operation (root hazard published).
  template <class Handle>
  bool op_active(Handle* h) const {
    return h->rcl.rec->hazards[0].load(std::memory_order_acquire) != nullptr;
  }

  template <class Handle>
  void protect_foreign(Handle* h, Segment* seg) {
    domain_.set_hazard(h->rcl.rec, 1, seg);  // seq_cst store
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Integer pre-election trigger; segment pointers are dereferenced only
  /// after the election is won (see PaperReclaim::poll).
  template <class Handle>
  ReclaimResult poll(SegList& list, Handle* h, int64_t head_cap,
                     int64_t tail_cap, int64_t max_garbage) {
    int64_t oid = this->oldest_id_->load(std::memory_order_acquire);
    if (oid == kCleaning) return {};
    if (std::min(head_cap, tail_cap) - oid < max_garbage) return {};
    if (!this->try_elect(oid)) return {};
    reclaim_detail::ElectionGuard election(&*this->oldest_id_, oid);
    Traits::interleave_hint();
    WFQ_INJECT(Traits, "reclaim_elected");

    Segment* start = list.first();
    Segment* frontier = reclaim_detail::cap_frontier(
        list, h->head.load(std::memory_order_acquire), tail_cap);
    // Scan the ring with the same per-owner ordering PaperReclaim uses:
    // back the frontier off below the owner's published hazards BEFORE
    // touching its pointers. Hazards only make freeing safe — they do not
    // stop the pointer CAS — so advancing an in-flight thread's head past
    // its op-begin segment would make its later find_cell calls (e.g. the
    // deq_slow epilogue) resolve cells in the wrong segment and lose
    // values, even though no memory is touched after free.
    Handle* p = h;
    do {
      for (std::size_t slot = 0; slot < 2; ++slot) {
        auto* hz = static_cast<Segment*>(
            p->rcl.rec->hazards[slot].load(std::memory_order_seq_cst));
        if (hz != nullptr && hz->id < frontier->id) frontier = hz;
      }
      reclaim_detail::update_segment_ptr(p->tail, frontier);
      reclaim_detail::update_segment_ptr(p->head, frontier);
      p = p->next.load(std::memory_order_acquire);
    } while (frontier->id > oid && p != h);
    // Then a global sweep for hazards published mid-scan: a late publisher
    // revalidates (seq_cst) against post-advance pointers, so its op's
    // indices lie at or above the frontier, but its hazard must still cap
    // the frontier before anything is freed. Any non-null slot holds a
    // segment that was alive when published, so dereferencing ->id is safe
    // while we hold the election.
    if (frontier->id > oid) {
      domain_.for_each_hazard([&frontier](void* hp) {
        auto* seg = static_cast<Segment*>(hp);
        if (seg->id < frontier->id) frontier = seg;
      });
    }

    if (frontier->id <= oid) {
      election.dismiss();
      this->oldest_id_->store(oid, std::memory_order_release);
      return {};
    }
    list.set_first(frontier);
    election.dismiss();
    this->oldest_id_->store(frontier->id, std::memory_order_release);
    std::size_t slot = limbo_.stash(start, frontier);
    WFQ_INJECT(Traits, "reclaim_frontier_set");
    ReclaimResult res{true, 0};
    while (start != frontier) {
      Segment* next = start->next.load(std::memory_order_relaxed);
      limbo_.advance(slot, next);
      list.delete_segment(start);
      ++res.freed;
      start = next;
    }
    limbo_.clear(slot);
    return res;
  }

  /// Diagnostic: number of live hazard records in the domain.
  std::size_t thread_records() const { return domain_.thread_records(); }

 private:
  Domain domain_;
  reclaim_detail::LimboStash<Segment> limbo_;
};

// ===========================================================================
// EpochReclaim — classic epoch-based reclamation over the existing
// EpochDomain. Every operation is one epoch critical section (the seq_cst
// pin on entry is the per-operation cost); detached segments are retired
// into the domain's limbo lists and freed two epoch advances later, when
// no pinned reader can still hold a reference. The detach frontier comes
// from the handles' segment pointers alone: once every handle pointer and
// the list head are past the frontier, no thread *entering* an operation
// can reach the detached prefix, and threads already inside pin the epoch.
// ===========================================================================

template <class SegList>
class EpochReclaim : public reclaim_detail::FrontierElection {
  using Traits = typename SegList::Traits_;

 public:
  using Segment = typename SegList::Segment;
  static constexpr const char* kName = "epochs";

  struct PerHandle {
    EpochDomain::ThreadRec* rec = nullptr;
  };

  template <class Handle>
  void attach(Handle* h) {
    h->rcl.rec = domain_.acquire();
  }

  /// Pin the epoch; everything reachable during the operation stays alive
  /// until the pin is released, so the segment pointer itself needs no
  /// per-pointer publication.
  template <class Handle>
  void begin_op(Handle* h, const std::atomic<Segment*>& /*src*/) {
    domain_.enter(h->rcl.rec);
  }

  template <class Handle>
  void end_op(Handle* h) {
    domain_.exit(h->rcl.rec);
  }

  /// True while the handle is inside an operation (epoch pinned).
  template <class Handle>
  bool op_active(Handle* h) const {
    return h->rcl.rec->local_epoch.load(std::memory_order_acquire) !=
           EpochDomain::kIdle;
  }

  template <class Handle>
  void protect_foreign(Handle*, Segment*) {
    // The epoch pin already covers any segment reachable mid-operation;
    // keep the fence so the caller's request-state revalidation ordering
    // matches the other policies.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Integer pre-election trigger; segment pointers are dereferenced only
  /// after the election is won (see PaperReclaim::poll).
  template <class Handle>
  ReclaimResult poll(SegList& list, Handle* h, int64_t head_cap,
                     int64_t tail_cap, int64_t max_garbage) {
    int64_t oid = this->oldest_id_->load(std::memory_order_acquire);
    if (oid == kCleaning) return {};
    if (std::min(head_cap, tail_cap) - oid < max_garbage) return {};
    if (!this->try_elect(oid)) return {};
    reclaim_detail::ElectionGuard election(&*this->oldest_id_, oid);
    Traits::interleave_hint();
    WFQ_INJECT(Traits, "reclaim_elected");

    Segment* start = list.first();
    Segment* frontier = reclaim_detail::cap_frontier(
        list, h->head.load(std::memory_order_acquire), tail_cap);
    Handle* p = h;
    do {
      if (p->rcl.rec->local_epoch.load(std::memory_order_seq_cst) !=
          EpochDomain::kIdle) {
        // Mid-operation. The epoch pin keeps detached segments alive, but
        // the owner may still resolve pending cell indices through its
        // current pointers — advancing them would make its find_cell land
        // in the wrong segment and lose the value. Leave the pointers
        // alone and keep its segments attached instead. (A thread that
        // pins after this check enters its operation with indices at or
        // above the frontier — seq_cst ordering against the caller's
        // head_cap/tail_cap reads — so advancing its pointers is safe.)
        Segment* held = p->head.load(std::memory_order_acquire);
        if (held != nullptr && held->id < frontier->id) frontier = held;
        held = p->tail.load(std::memory_order_acquire);
        if (held != nullptr && held->id < frontier->id) frontier = held;
      } else {
        reclaim_detail::update_segment_ptr(p->tail, frontier);
        reclaim_detail::update_segment_ptr(p->head, frontier);
      }
      p = p->next.load(std::memory_order_acquire);
    } while (frontier->id > oid && p != h);

    if (frontier->id <= oid) {
      election.dismiss();
      this->oldest_id_->store(oid, std::memory_order_release);
      return {};
    }
    list.set_first(frontier);
    election.dismiss();
    this->oldest_id_->store(frontier->id, std::memory_order_release);
    // Retire the detached prefix into the epoch domain; memory returns two
    // epoch advances later (or at domain destruction). Retirement bypasses
    // the recycling pool — deferred frees defeat its purpose — and counts
    // as freed at hand-off (see SegmentList::note_deferred_free).
    std::size_t slot = limbo_.stash(start, frontier);
    WFQ_INJECT(Traits, "reclaim_frontier_set");
    ReclaimResult res{true, 0};
    while (start != frontier) {
      Segment* next = start->next.load(std::memory_order_relaxed);
      limbo_.advance(slot, next);
      list.note_deferred_free();
      domain_.retire(h->rcl.rec, static_cast<void*>(start),
                     [](void* q) { aligned_delete(static_cast<Segment*>(q)); });
      ++res.freed;
      start = next;
    }
    limbo_.clear(slot);
    return res;
  }

  /// Diagnostic: segments parked in limbo awaiting two epoch advances.
  std::size_t limbo_count() const { return domain_.limbo_count(); }

 private:
  // Lower advance threshold than the domain default: segments are large
  // (N cells each), so letting 64 of them pile up per limbo generation
  // would dwarf the max_garbage bound the queue is trying to honor.
  EpochDomain domain_{16};
  reclaim_detail::LimboStash<Segment> limbo_;
};

}  // namespace wfq
