// BlockingQueue<Q>: blocking pops and a close()/drain() lifecycle layered
// over any queue in this repo, without fencing the underlying fast paths.
//
// The adapter owns a `Q` (WFQueue<T>, FAAQueue, ObstructionQueue — anything
// with the Handle/enqueue/dequeue/bulk surface) and adds:
//
//   * pop_wait / pop_wait_for / pop_wait_bulk — consumers that sleep on
//     empty via an EventCount (spin → yield → futex park escalation).
//   * push_wait / push_wait_for — producers that sleep on a FULL bounded
//     inner queue (the SCQ/wCQ rings) via a second, producer-side
//     EventCount; consumers freeing space wake them. The exact mirror of
//     pop_wait, with kFull playing the role of empty.
//   * close() / drain() — a linearizable termination protocol: once closed,
//     producers fail fast, consumers drain every residual item, and then —
//     and only then — observe kClosed. No consumer stays parked.
//
// Fast-path cost accounting (the whole point of the design):
//
//   push, no waiter parked:  the inner enqueue + ONE predicted branch on a
//     plain load of the waiter count (§ EventCount header / ALGORITHM.md
//     §10) + one relaxed store/load pair on the handle's private in_push
//     ticket (same cache line as the handle's other hot state, no fence on
//     x86; on other ISAs AsymmetricFence::light() is compiler-only when
//     membarrier is available).
//   pop, queue non-empty:    exactly the inner dequeue + one acquire load
//     of `sealed_` (a read-shared line; plain load on x86/ARM).
//
// Close protocol (the Dekker with producers, cold side):
//
//   producer push              close()
//   ----------------------     -------------------------------------------
//   in_push.store(1,rlx)       closed_.exchange(true, seq_cst)
//   AsymFence::light()         AsymFence::heavy()            // membarrier
//   if closed_.load(rlx):      for each handle: spin until in_push == 0
//       in_push=0; fail        sealed_.store(true, release)
//   q.enqueue(v)               ec.notify_all()
//   in_push.store(0,rel)
//
// The heavy fence guarantees every producer is on one side or the other:
// either its closed-load happens after the exchange (it fails fast, no
// enqueue), or its in_push=1 store is visible to the closer's quiesce scan
// (the closer waits for that push — including its enqueue — to finish).
// Hence when `sealed_` is published, the set of successful pushes is
// frozen: a consumer that (a) loads sealed_ == true and then (b) dequeues
// EMPTY has witnessed the final, empty state of the queue — the bulk
// emptiness witness (PR 2) makes (b) a real linearization point, so
// "return kClosed" is a linearizable response, not a heuristic.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/align.hpp"
#include "common/atomics.hpp"
#include "core/op_stats.hpp"
#include "core/queue_concepts.hpp"
#include "core/scq.hpp"
#include "core/wcq.hpp"
#include "core/wf_queue.hpp"
#include "scale/sharded_queue.hpp"
#include "harness/fault_inject.hpp"
#include "obs/metrics.hpp"
#include "sync/asym_fence.hpp"
#include "sync/event_count.hpp"
#include "sync/wait_strategy.hpp"

namespace wfq::sync {

/// Result of a (possibly timed) blocking pop.
enum class PopStatus {
  kOk,       ///< a value was delivered
  kTimeout,  ///< deadline passed with the queue open and empty
  kClosed,   ///< queue closed AND drained: no value will ever arrive
};

/// Result of a status-reporting push (push_status / push_wait).
enum class PushStatus {
  kOk,       ///< the value was enqueued
  kClosed,   ///< the queue is closed; the caller keeps the value
  kNoMem,    ///< segment allocation failed cleanly; retryable, value kept
  kFull,     ///< bounded inner queue at capacity (push_status only —
             ///< push_wait parks instead of returning this)
  kTimeout,  ///< push_wait_for deadline passed with the queue still full
};

namespace detail {
/// The inner queue's trait pack, when it exposes one (WFQueue does via
/// Traits_); otherwise an empty type, which resolves to NullInjector.
template <class Q, class = void>
struct QueueTraitsOf {
  struct type {};
};
template <class Q>
struct QueueTraitsOf<Q, std::void_t<typename Q::Traits_>> {
  using type = typename Q::Traits_;
};
}  // namespace detail

template <class Q>
class BlockingQueue {
 public:
  using value_type = typename Q::value_type;
  using InnerHandle = typename Q::Handle;

 private:
  using T = value_type;
  using QTraits = typename detail::QueueTraitsOf<Q>::type;
  /// Observability provider shared with the inner queue (NullMetrics unless
  /// the traits opt in); this layer records the pop_wait latency histogram
  /// and the park/wake trace events.
  using Metrics = obs::MetricsOf<QTraits>;

  /// Per-handle blocking-layer state. Lives next to (not inside) the inner
  /// queue handle; one cache line so the in_push ticket never false-shares.
  struct alignas(kCacheLineSize) BlockingRec {
    /// Nonzero while the owning thread is between its closed-check and the
    /// completion of an inner enqueue (the close() quiesce scan spins on
    /// this). Only the owner writes it.
    std::atomic<uint32_t> in_push{0};
    std::atomic<uint32_t> active{1};  ///< 0 once returned to the freelist
    OpStats stats;                    ///< parks / spurious wakeups / notifies
    typename Metrics::PerHandle obs;  ///< pop_wait histogram + trace ring
    BlockingRec* next_free = nullptr;
  };

 public:
  /// Per-thread access token: the inner queue handle plus the blocking
  /// record. Move-only, RAII like the inner handle.
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : inner_(std::move(o.inner_)), owner_(o.owner_), rec_(o.rec_) {
      o.owner_ = nullptr;
      o.rec_ = nullptr;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        inner_ = std::move(o.inner_);
        owner_ = o.owner_;
        rec_ = o.rec_;
        o.owner_ = nullptr;
        o.rec_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

   private:
    friend class BlockingQueue;
    Handle(InnerHandle inner, BlockingQueue* owner, BlockingRec* rec)
        : inner_(std::move(inner)), owner_(owner), rec_(rec) {}

    void release() {
      if (owner_ != nullptr) {
        owner_->release_rec(rec_);
        owner_ = nullptr;
        rec_ = nullptr;
      }
    }

    InnerHandle inner_;
    BlockingQueue* owner_;
    BlockingRec* rec_;
  };

  template <class... Args>
  explicit BlockingQueue(Args&&... args) : q_(std::forward<Args>(args)...) {}

  ~BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  Handle get_handle() { return Handle(q_.get_handle(), this, acquire_rec()); }

  // ---- Producer side -----------------------------------------------------

  /// Appends `v`. Returns false iff the queue is closed or allocation
  /// failed (push_status distinguishes the two; v is not consumed in either
  /// case — the caller keeps ownership and can re-route or retry it).
  bool push(Handle& h, T v) {
    return push_status(h, std::move(v)) == PushStatus::kOk;
  }

  /// Status-reporting push: kClosed on a closed queue, kNoMem when segment
  /// allocation failed past retries and the reserve pool (retryable — the
  /// queue is intact), kFull when a bounded inner queue is at capacity
  /// (backpressure: retry, drop, or use push_wait to park for space).
  PushStatus push_status(Handle& h, T v) { return push_once(h, v); }

  /// Reference form of push_status for retry loops: `v` is consumed ONLY
  /// on kOk — kFull / kClosed / kNoMem hand it back untouched (the
  /// bounded inner queue reserves its free index before encoding). The
  /// async layer's push_async retries through this so a parked-and-woken
  /// producer never re-submits a moved-from value; push_status keeps the
  /// simpler by-value surface for one-shot callers.
  PushStatus try_push(Handle& h, T& v) { return push_once(h, v); }

  /// Blocking push for a bounded inner queue: parks via a producer-side
  /// EventCount while the queue is full, woken by consumers freeing space
  /// (the mirror image of pop_wait). Returns kOk or kClosed — never kFull.
  /// On an unbounded inner queue full cannot happen and this is exactly
  /// push_status.
  PushStatus push_wait(Handle& h, T v, WaitPolicy policy = {}) {
    return push_wait_impl(h, v, policy, /*has_deadline=*/false, {});
  }

  /// Timed variant; kTimeout after `timeout` with the queue open and still
  /// full. A slot freed racing the deadline wins: one final attempt runs
  /// after the clock expires.
  template <class Rep, class Period>
  PushStatus push_wait_for(Handle& h, T v,
                           std::chrono::duration<Rep, Period> timeout,
                           WaitPolicy policy = {}) {
    return push_wait_impl(h, v, policy, /*has_deadline=*/true,
                          WaitClock::now() +
                              std::chrono::duration_cast<WaitClock::duration>(
                                  timeout));
  }

  /// Bulk append: all `count` items, 0 when closed, or a committed prefix
  /// of `vals` under allocation failure (inner enqueue_bulk's OOM
  /// contract) or a full bounded inner queue. Returns the number enqueued.
  std::size_t push_bulk(Handle& h, const T* vals, std::size_t count) {
    if (count == 0) return 0;
    BlockingRec* rec = h.rec_;
    std::size_t committed = count;
    {
      PushTicket ticket(rec->in_push);
      WFQ_INJECT(QTraits, "blk_push_ticket");
      AsymmetricFence::light();
      if (closed_.load(std::memory_order_relaxed)) return 0;
      WFQ_INJECT(QTraits, "blk_pre_enqueue");
      if constexpr (BulkQueue<Q>) {
        if constexpr (std::is_void_v<decltype(q_.enqueue_bulk(h.inner_, vals,
                                                              count))>) {
          q_.enqueue_bulk(h.inner_, vals, count);
        } else {
          committed = q_.enqueue_bulk(h.inner_, vals, count);
        }
      } else if constexpr (BoundedQueue<Q>) {
        // No native batching: commit a prefix one try_enqueue at a time,
        // stopping at full (the committed-prefix contract, with kFull
        // playing the role allocation failure plays on segment queues).
        committed = 0;
        while (committed < count) {
          T copy = vals[committed];
          if (q_.try_enqueue(h.inner_, std::move(copy)) !=
              EnqueueResult::kOk) {
            break;
          }
          ++committed;
        }
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          T copy = vals[i];
          q_.enqueue(h.inner_, std::move(copy));
        }
      }
    }
    if (committed != 0) maybe_notify(rec, static_cast<uint32_t>(committed));
    return committed;
  }

  // ---- Consumer side -----------------------------------------------------

  /// Non-blocking pop; nullopt means "observed empty" (closed or not —
  /// callers that need the distinction use pop_wait or closed()).
  std::optional<T> try_pop(Handle& h) {
    std::optional<T> v = q_.dequeue(h.inner_);
    if (v.has_value()) maybe_notify_space();
    return v;
  }

  std::size_t try_pop_bulk(Handle& h, T* out, std::size_t count) {
    std::size_t got = inner_dequeue_bulk(h, out, count);
    if (got != 0) maybe_notify_space();
    return got;
  }

  /// Blocks until a value arrives (kOk) or the queue is closed and fully
  /// drained (kClosed — `out` untouched).
  PopStatus pop_wait(Handle& h, T& out,
                     WaitPolicy policy = {}) {
    return pop_impl(h, &out, nullptr, policy, /*has_deadline=*/false, {});
  }

  /// Timed variant; kTimeout after `timeout` with the queue open and empty.
  /// A delivery racing the deadline wins: one final dequeue attempt runs
  /// after the clock expires, so a value that was already in the queue at
  /// timeout-processing time is returned, not abandoned.
  template <class Rep, class Period>
  PopStatus pop_wait_for(Handle& h, T& out,
                         std::chrono::duration<Rep, Period> timeout,
                         WaitPolicy policy = {}) {
    return pop_impl(h, &out, nullptr, policy, /*has_deadline=*/true,
                    WaitClock::now() +
                        std::chrono::duration_cast<WaitClock::duration>(
                            timeout));
  }

  /// Blocking bulk pop: waits for at least one value, then takes up to
  /// `max` without further waiting. Returns 0 iff closed and drained.
  std::size_t pop_wait_bulk(Handle& h, T* out, std::size_t max,
                            WaitPolicy policy = {}) {
    if (max == 0) return 0;
    BulkOut b{out, max, 0};
    PopStatus st = pop_impl(h, nullptr, &b, policy, /*has_deadline=*/false, {});
    return st == PopStatus::kOk ? b.got : 0;
  }

  // ---- Lifecycle ---------------------------------------------------------

  /// Closes the queue: subsequent pushes fail fast; parked consumers are
  /// woken; consumers drain the residue and then observe kClosed. Safe to
  /// call from any thread, any number of times; returns once the close is
  /// sealed (every in-flight push quiesced), so "close(); join consumers"
  /// is a complete shutdown. Callable without a Handle (e.g. a signal
  /// handler thread or the C API's wfq_close).
  void close() {
    closed_.exchange(true, std::memory_order_seq_cst);
    if (sealed_.load(std::memory_order_acquire)) return;  // already sealed
    // Every closer runs the full protocol rather than waiting on the first
    // one's seal: quiesce + seal are idempotent, close() is cold, and this
    // makes the protocol crash-recoverable — if a closer dies between the
    // exchange and the seal (fault injection's crash action), any later
    // close() call finishes the job instead of spinning on a seal that
    // will never come.
    //
    // Dekker cold side: after this barrier, every producer has either seen
    // closed_ == true (fails fast) or published in_push == 1 beforehand.
    AsymmetricFence::heavy();
    quiesce_producers();
    WFQ_INJECT(QTraits, "blk_close_pre_seal");
    sealed_.store(true, std::memory_order_release);
    ec_.notify_all();  // close-wakes are unconditional, not counted as
                       // producer notifies (they are not value deliveries)
    space_ec_.notify_all();  // producers parked on a full bounded queue
                             // must wake to observe kClosed
  }

  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// True once close() has sealed (no in-flight push remains).
  bool sealed() const noexcept {
    return sealed_.load(std::memory_order_acquire);
  }

  /// Convenience: pop everything currently reachable into `out` until the
  /// queue reports empty. After close(), one drain() call per consumer plus
  /// the kClosed protocol accounts for every item ever pushed. Returns the
  /// number of items appended.
  std::size_t drain(Handle& h, std::vector<T>& out) {
    std::size_t n = 0;
    T buf[kDrainChunk];
    for (;;) {
      std::size_t got = inner_dequeue_bulk(h, buf, kDrainChunk);
      for (std::size_t i = 0; i < got; ++i) out.push_back(std::move(buf[i]));
      n += got;
      if (got != 0) maybe_notify_space();
      if (got < kDrainChunk) return n;  // (bulk) emptiness witness
    }
  }

  // ---- Introspection -----------------------------------------------------

  /// Inner-queue stats merged with every blocking record's park/notify
  /// counters (live and freed handles alike).
  OpStats stats() const {
    OpStats s = q_.stats();
    std::lock_guard<std::mutex> g(reg_mu_);
    for (const auto& rec : recs_) s.add(rec->stats);
    return s;
  }

  /// Inner-queue observability snapshot plus this layer's pop_wait
  /// histograms and park/wake trace rings. Empty under NullMetrics (and for
  /// inner queues that predate collect_obs).
  obs::ObsSnapshot collect_obs() const {
    obs::ObsSnapshot snap;
    if constexpr (requires(const Q& q) { q.collect_obs(); }) {
      snap = q_.collect_obs();
    }
    if constexpr (Metrics::kEnabled) {
      std::lock_guard<std::mutex> g(reg_mu_);
      for (const auto& rec : recs_) {
        snap.pop_wait_ns.merge(rec->obs.pop_wait_ns);
        snap.absorb_ring(rec->obs.ring);
      }
    }
    return snap;
  }

  Q& inner() noexcept { return q_; }
  const Q& inner() const noexcept { return q_; }

  /// Registered-waiter count right now (tests).
  uint32_t waiters() const noexcept { return ec_.waiters(); }

  /// Producers currently registered against the space EventCount (tests).
  uint32_t space_waiters() const noexcept { return space_ec_.waiters(); }

  /// Async-layer seam (src/async/): the consumer-side EventCount. An
  /// AsyncWaiter registered here participates in the exact same Dekker as
  /// a pop_wait thread — it counts into the waiters_ word the producer's
  /// MOV-load checks — so coroutine waiters add nothing to the no-waiter
  /// enqueue fast path. Anyone registering must follow the awaiter
  /// protocol: register, re-check (sealed-snapshot-then-try_pop, same
  /// order as pop_impl_body), cancel on predicate-true.
  EventCount& pop_event() noexcept { return ec_; }

  /// Producer-side (space) EventCount for bounded backends; the seam
  /// push_async parks through. Meaningless (never notified) when the
  /// inner queue is unbounded.
  EventCount& space_event() noexcept { return space_ec_; }

  /// Hard bound of the inner queue (bounded inner queues only).
  std::size_t capacity() const
    requires BoundedQueue<Q>
  {
    return q_.capacity();
  }

 private:
  struct BulkOut {
    T* out;
    std::size_t max;
    std::size_t got;
  };

  /// RAII in_push ticket: taken on construction, released on destruction —
  /// including exceptional unwinds, so close()'s quiesce scan can always
  /// terminate. The release store publishes the enqueue's completion.
  struct PushTicket {
    explicit PushTicket(std::atomic<uint32_t>& t) : t_(t) {
      t_.store(1, std::memory_order_relaxed);
    }
    ~PushTicket() { t_.store(0, std::memory_order_release); }
    PushTicket(const PushTicket&) = delete;
    PushTicket& operator=(const PushTicket&) = delete;
    std::atomic<uint32_t>& t_;
  };

  /// Trace shim, same discarded-`if constexpr` discipline as the core's.
  static void obs_trace(BlockingRec* rec, obs::TraceEvent ev, uint64_t a = 0) {
    if constexpr (Metrics::kEnabled) {
      rec->obs.ring.emit(ev, Metrics::now_ns(), rec->obs.id, a);
    }
  }

  /// Shared wait loop behind pop_wait / pop_wait_for / pop_wait_bulk:
  /// records the delivered pops' end-to-end wait latency (sampled, like the
  /// core's op histograms), then delegates to the body.
  PopStatus pop_impl(Handle& h, T* single, BulkOut* bulk, WaitPolicy policy,
                     bool has_deadline, WaitClock::time_point deadline) {
    if constexpr (Metrics::kEnabled) {
      BlockingRec* rec = h.rec_;
      const uint64_t t0 = Metrics::op_start(rec->obs);
      PopStatus st =
          pop_impl_body(h, single, bulk, policy, has_deadline, deadline);
      if (t0 != 0 && st == PopStatus::kOk) {
        rec->obs.pop_wait_ns.record(Metrics::now_ns() - t0);
      }
      return st;
    } else {
      return pop_impl_body(h, single, bulk, policy, has_deadline, deadline);
    }
  }

  PopStatus pop_impl_body(Handle& h, T* single, BulkOut* bulk,
                          WaitPolicy policy, bool has_deadline,
                          WaitClock::time_point deadline) {
    BlockingRec* rec = h.rec_;
    WaitStrategy strategy(policy);
    // Read sealed_ BEFORE attempting the dequeue: if the dequeue then
    // returns EMPTY, emptiness was observed at a point where the push set
    // was already frozen, so EMPTY is final — kClosed is linearizable.
    // (The other order would race: seal could land between a failed
    // dequeue and the closed-check, wrongly reporting kClosed for a queue
    // that was merely momentarily empty while still open.)
    for (;;) {
      bool was_sealed = sealed_.load(std::memory_order_acquire);
      if (attempt(h, single, bulk)) return PopStatus::kOk;
      if (was_sealed) return PopStatus::kClosed;

      // Deadline check runs on EVERY iteration, not only when the strategy
      // escalates to a park: a spin-heavy policy (e.g. spin_only()) never
      // reaches kPark, and the timed API must still time out under it.
      if (has_deadline && WaitClock::now() >= deadline) {
        // Deadline processing: one FINAL attempt so a delivery that raced
        // the timeout is returned rather than stranded (tested by the
        // timed-pop race test). Snapshot sealed_ BEFORE that attempt —
        // same ordering rule as the loop top — so a close() landing
        // between a failed dequeue and the sealed-load can't turn
        // "momentarily empty while still open" into kClosed.
        bool final_sealed = sealed_.load(std::memory_order_acquire);
        if (attempt(h, single, bulk)) return PopStatus::kOk;
        return final_sealed ? PopStatus::kClosed : PopStatus::kTimeout;
      }

      switch (strategy.step()) {
        case WaitStrategy::Step::kSpun:
        case WaitStrategy::Step::kYielded:
          continue;  // cheap retries before touching the EventCount
        case WaitStrategy::Step::kPark:
          break;
      }

      // WaitGuard owns the registration: any exit between here and the
      // wait — the predicate firing, kClosed, or the inner dequeue
      // throwing (allocation failure, injected crash) — cancels it on
      // unwind, so waiters_ can never leak and pin producers onto the
      // notify slow path.
      EventCount::WaitGuard guard(ec_);
      // Registered as a waiter — now re-run the full predicate. A producer
      // that deposited before our registration was visible cannot have
      // seen has_waiters(); the seq_cst Dekker (EventCount header)
      // guarantees this re-check finds its item.
      bool sealed_now = sealed_.load(std::memory_order_acquire);
      if (attempt(h, single, bulk)) return PopStatus::kOk;
      if (sealed_now) return PopStatus::kClosed;
      rec->stats.deq_parks.fetch_add(1, std::memory_order_relaxed);
      obs_trace(rec, obs::TraceEvent::kPark);
      WFQ_INJECT(QTraits, "blk_pop_prepark");
      EventCount::WaitResult wr = has_deadline ? guard.wait_until(deadline)
                                               : guard.wait();
      if (wr == EventCount::WaitResult::kSpurious) {
        // The futex returned with no wake and no timeout (EINTR): the
        // park delivered nothing by the kernel's own account. Counted
        // here, at the park itself, so the stat matches the trace ring
        // exactly (tools/soak.cpp audits the pair).
        rec->stats.deq_spurious_wakeups.fetch_add(1,
                                                  std::memory_order_relaxed);
        obs_trace(rec, obs::TraceEvent::kWakeSpurious, 1);
      } else {
        // a = 1 when a notify ended the park, 0 when the deadline did.
        obs_trace(rec, obs::TraceEvent::kWake,
                  wr == EventCount::WaitResult::kNotified ? 1 : 0);
      }
      if (wr == EventCount::WaitResult::kTimeout) {
        // Same sealed-before-attempt order as above: a seal landing
        // after a failed attempt must not masquerade as "drained".
        bool final_sealed = sealed_.load(std::memory_order_acquire);
        if (attempt(h, single, bulk)) return PopStatus::kOk;
        return final_sealed ? PopStatus::kClosed : PopStatus::kTimeout;
      }
      // Woken (or the epoch moved under us); the loop re-runs the full
      // predicate. `strategy` stays escalated on purpose: after one park,
      // re-park without repeating the whole spin ladder.
    }
  }

  /// One dequeue attempt for whichever mode pop_impl runs in. Successful
  /// attempts free inner capacity, so they wake a space-parked producer.
  bool attempt(Handle& h, T* single, BulkOut* bulk) {
    if (single != nullptr) {
      std::optional<T> v = q_.dequeue(h.inner_);
      if (!v) return false;
      *single = std::move(*v);
      maybe_notify_space();
      return true;
    }
    bulk->got = inner_dequeue_bulk(h, bulk->out, bulk->max);
    if (bulk->got == 0) return false;
    maybe_notify_space();
    return true;
  }

  /// Inner bulk dequeue, or a single-dequeue loop for backends without a
  /// batched surface (the bounded rings). For those, the final nullopt is
  /// the emptiness witness (SCQ's threshold / wCQ's helping make EMPTY a
  /// real linearization point), so the close protocol's reasoning holds.
  std::size_t inner_dequeue_bulk(Handle& h, T* out, std::size_t max) {
    if constexpr (BulkQueue<Q>) {
      return q_.dequeue_bulk(h.inner_, out, max);
    } else {
      std::size_t got = 0;
      while (got < max) {
        std::optional<T> v = q_.dequeue(h.inner_);
        if (!v.has_value()) break;
        out[got++] = std::move(*v);
      }
      return got;
    }
  }

  /// One push attempt shared by push_status and push_wait's retry loop.
  /// Consumes `v` only on kOk: on a bounded inner queue try_enqueue
  /// reserves its free index before encoding, so kFull hands the value
  /// back untouched and the parking loop can retry without copies. The
  /// in_push ticket is held through an RAII guard so an exception
  /// unwinding out of the inner enqueue (injected crash, OOM from a
  /// throwing codec) can never leave the ticket set — a stuck ticket
  /// would spin close()'s quiesce scan forever.
  PushStatus push_once(Handle& h, T& v) {
    BlockingRec* rec = h.rec_;
    bool ok = true;
    {
      PushTicket ticket(rec->in_push);
      WFQ_INJECT(QTraits, "blk_push_ticket");
      AsymmetricFence::light();  // order ticket-store before closed-load
      if (closed_.load(std::memory_order_relaxed)) return PushStatus::kClosed;
      WFQ_INJECT(QTraits, "blk_pre_enqueue");
      if constexpr (BoundedQueue<Q>) {
        switch (q_.try_enqueue(h.inner_, std::move(v))) {
          case EnqueueResult::kOk:
            break;
          case EnqueueResult::kFull:
            return PushStatus::kFull;
          case EnqueueResult::kNoMem:
            return PushStatus::kNoMem;
        }
      } else if constexpr (std::is_void_v<decltype(q_.enqueue(
                               h.inner_, std::move(v)))>) {
        q_.enqueue(h.inner_, std::move(v));
      } else {
        ok = q_.enqueue(h.inner_, std::move(v));
      }
    }  // ticket released: the quiesce scan's acquire load of in_push == 0
       // observes the enqueue as complete
    if (!ok) return PushStatus::kNoMem;
    maybe_notify(rec, /*n=*/1);
    return PushStatus::kOk;
  }

  /// The producer-side wait loop: the mirror of pop_impl_body, parking on
  /// space_ec_ instead of ec_. No sealed-ordering subtlety is needed here:
  /// push_once itself checks closed_ under the ticket, and close() wakes
  /// space waiters after sealing, so a parked producer always re-checks.
  PushStatus push_wait_impl(Handle& h, T& v, WaitPolicy policy,
                            bool has_deadline,
                            WaitClock::time_point deadline) {
    BlockingRec* rec = h.rec_;
    WaitStrategy strategy(policy);
    for (;;) {
      PushStatus st = push_once(h, v);
      if (st != PushStatus::kFull) return st;

      if (has_deadline && WaitClock::now() >= deadline) {
        // One final attempt so a slot freed racing the deadline is used
        // rather than stranded (same rule as the timed pop).
        st = push_once(h, v);
        return st == PushStatus::kFull ? PushStatus::kTimeout : st;
      }

      switch (strategy.step()) {
        case WaitStrategy::Step::kSpun:
        case WaitStrategy::Step::kYielded:
          continue;
        case WaitStrategy::Step::kPark:
          break;
      }

      // WaitGuard for the same exception/early-return safety as the pop
      // side (the inner enqueue can throw through push_once).
      EventCount::WaitGuard guard(space_ec_);
      // Registered as a space waiter — re-run the attempt. A consumer that
      // freed a slot before our registration was visible cannot have seen
      // has_waiters(); the seq_cst Dekker guarantees this re-check finds
      // the space (or the close).
      st = push_once(h, v);
      if (st != PushStatus::kFull) return st;
      rec->stats.push_full_parks.fetch_add(1, std::memory_order_relaxed);
      // a = 2 marks a producer-side (space) park in the shared trace ring.
      obs_trace(rec, obs::TraceEvent::kPark, 2);
      WFQ_INJECT(QTraits, "blk_push_prepark");
      EventCount::WaitResult wr = has_deadline ? guard.wait_until(deadline)
                                               : guard.wait();
      if (wr == EventCount::WaitResult::kSpurious) {
        rec->stats.push_spurious_wakeups.fetch_add(1,
                                                   std::memory_order_relaxed);
        obs_trace(rec, obs::TraceEvent::kWakeSpurious, 2);
      } else {
        obs_trace(rec, obs::TraceEvent::kWake,
                  wr == EventCount::WaitResult::kNotified ? 3 : 2);
      }
      if (wr == EventCount::WaitResult::kTimeout) {
        st = push_once(h, v);
        return st == PushStatus::kFull ? PushStatus::kTimeout : st;
      }
      // Re-loop with the strategy kept escalated, like the pop side.
    }
  }

  /// Consumer-side notify of space-parked producers; compiled out for
  /// unbounded inner queues (they can never be full, so no one parks).
  void maybe_notify_space() {
    if constexpr (BoundedQueue<Q>) {
#if !(defined(__x86_64__) || defined(__i386__))
      // Non-TSO: make the slot-free (fq enqueue RMW) → waiter-load
      // ordering explicit; see maybe_notify.
      std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
      if (!space_ec_.has_waiters()) return;  // common case: one branch
      space_ec_.notify(1);
    }
  }

  /// Producer-side notify: the plain-load waiter check IS the fast path —
  /// see EventCount's header for why no fence precedes it on x86.
  void maybe_notify(BlockingRec* rec, uint32_t n) {
#if !(defined(__x86_64__) || defined(__i386__))
    // Non-TSO: the inner enqueue's trailing seq_cst RMW need not behave as
    // a full fence portably, and slow-path commits end in a release store;
    // make the deposit→waiter-load ordering explicit. Compiled out on x86.
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    if (!ec_.has_waiters()) return;  // common case: one predicted branch
    rec->stats.notify_calls.fetch_add(1, std::memory_order_relaxed);
    ec_.notify(n);
  }

  /// Spin until every handle's in-flight push (ticket taken before the
  /// heavy fence) has completed. New handles created after closed_ was
  /// published can only fail fast, so scanning a snapshot is sufficient —
  /// but we re-lock and re-scan in case a handle was mid-registration.
  void quiesce_producers() {
    for (;;) {
      bool clean = true;
      {
        std::lock_guard<std::mutex> g(reg_mu_);
        for (const auto& rec : recs_) {
          if (rec->in_push.load(std::memory_order_acquire) != 0) {
            clean = false;
            break;
          }
        }
      }
      if (clean) return;
      cpu_pause();
    }
  }

  BlockingRec* acquire_rec() {
    std::lock_guard<std::mutex> g(reg_mu_);
    if (free_recs_ != nullptr) {
      BlockingRec* r = free_recs_;
      free_recs_ = r->next_free;
      r->next_free = nullptr;
      r->active.store(1, std::memory_order_relaxed);
      return r;
    }
    recs_.push_back(std::make_unique<BlockingRec>());
    if constexpr (Metrics::kEnabled) {
      // Blocking-layer obs ids live in their own range so trace rows never
      // collide with the inner queue's handle ids (which start at 1).
      recs_.back()->obs.id = uint32_t(0x10000 + recs_.size());
    }
    return recs_.back().get();
  }

  void release_rec(BlockingRec* rec) {
    std::lock_guard<std::mutex> g(reg_mu_);
    rec->active.store(0, std::memory_order_relaxed);
    rec->next_free = free_recs_;
    free_recs_ = rec;  // stats intentionally survive for stats() merging
  }

  static constexpr std::size_t kDrainChunk = 64;

  Q q_;
  EventCount ec_;        ///< consumers parked on empty
  EventCount space_ec_;  ///< producers parked on full (bounded inner only)
  alignas(kCacheLineSize) std::atomic<bool> closed_{false};
  std::atomic<bool> sealed_{false};

  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<BlockingRec>> recs_;
  BlockingRec* free_recs_ = nullptr;
};

/// The headline configuration: blocking wait-free MPMC queue of T.
template <class T, class Traits = DefaultWfTraits>
using BlockingWFQueue = BlockingQueue<WFQueue<T, Traits>>;

/// Bounded-memory configurations: both directions block — pop_wait parks
/// on empty, push_wait parks on full. Construct with the capacity:
/// `BlockingScqQueue<T> q(1024);`.
template <class T, class Traits = DefaultRingTraits>
using BlockingScqQueue = BlockingQueue<ScqQueue<T, Traits>>;
template <class T, class Traits = DefaultRingTraits>
using BlockingWcqQueue = BlockingQueue<WcqQueue<T, Traits>>;

/// Horizontal-scale configuration (PR 8): N wait-free lanes behind the
/// same blocking/close/drain protocol. ShardedQueue re-exports the inner
/// Traits_ pack, so injection and metrics resolve exactly as they do on
/// BlockingWFQueue; close()'s emptiness witness stays sound because the
/// sharded dequeue returns nullopt only after a full all-lanes sweep.
/// Construct as `BlockingShardedQueue<T> q(ShardConfig{4}, WfConfig{...});`.
template <class T, class Traits = DefaultWfTraits>
using BlockingShardedQueue =
    BlockingQueue<scale::ShardedQueue<WFQueue<T, Traits>>>;

}  // namespace wfq::sync
