// Trivial mutex-guarded std::deque queue. Not part of the paper's Figure 2;
// included as a sanity baseline (every non-blocking design should beat it
// under contention, and it anchors correctness tests with an obviously
// correct implementation).
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace wfq::baselines {

template <class T>
class MutexQueue {
 public:
  using value_type = T;

  struct Handle {};  // no per-thread state

  MutexQueue() = default;
  MutexQueue(const MutexQueue&) = delete;
  MutexQueue& operator=(const MutexQueue&) = delete;

  Handle get_handle() { return Handle{}; }

  void enqueue(Handle&, T v) {
    std::lock_guard<std::mutex> g(mu_);
    items_.push_back(std::move(v));
  }

  std::optional<T> dequeue(Handle&) {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace wfq::baselines
