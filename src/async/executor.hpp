// Executor: WHERE a claimed coroutine resumes.
//
// The EventCount claim callback (event_count.hpp, AsyncWaiter contract)
// runs on the *notifier's* thread — usually a producer inside push(). An
// inline resume there is the lowest-latency option and is perfectly safe
// for compute-style consumers, but it makes the producer run consumer code
// (boson's embedding, and any event-loop server, wants consumer coroutines
// pinned to the loop thread instead). The seam is one virtual call on the
// wake path only — the no-waiter producer fast path never reaches it.
//
// Implementations in-tree:
//  * inline resume (exec == nullptr everywhere): h.resume() on the spot.
//  * ManualExecutor (below): enqueue handles, drain on demand — tests and
//    single-threaded drivers.
//  * EpollLoop (examples/coro_server.cpp): post() via eventfd into an
//    epoll loop; the canonical server shape.
#pragma once

#include <coroutine>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace wfq::async {

/// Abstract resumption target. post() must be callable from any thread and
/// must eventually resume `h` exactly once. It is invoked after the
/// claim callback has fully detached from the waiter node (kAwDone), so an
/// implementation may run `h` immediately, on another thread, or batch it.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void post(std::coroutine_handle<> h) = 0;
};

/// Resume `h` on `exec`, or inline when exec is null — the single helper
/// every claim callback funnels through.
inline void resume_on(Executor* exec, std::coroutine_handle<> h) {
  if (exec != nullptr) {
    exec->post(h);
  } else {
    h.resume();
  }
}

/// Mutex-guarded handle queue for tests and manual drivers: post() from
/// any thread, drain() from the owning thread.
class ManualExecutor final : public Executor {
 public:
  void post(std::coroutine_handle<> h) override {
    std::lock_guard<std::mutex> g(mu_);
    ready_.push_back(h);
  }

  /// Resume everything queued so far (including work queued by the
  /// resumed coroutines themselves); returns the number resumed.
  std::size_t drain() {
    std::size_t n = 0;
    for (;;) {
      std::vector<std::coroutine_handle<>> batch;
      {
        std::lock_guard<std::mutex> g(mu_);
        batch.swap(ready_);
      }
      if (batch.empty()) return n;
      for (auto h : batch) {
        h.resume();
        ++n;
      }
    }
  }

  std::size_t pending() {
    std::lock_guard<std::mutex> g(mu_);
    return ready_.size();
  }

 private:
  std::mutex mu_;
  std::vector<std::coroutine_handle<>> ready_;
};

}  // namespace wfq::async
