// Ablation C: segment size N. The paper uses N = 2^10 for its queue and
// notes LCRQ performs best with rings of 2^12 (§5.1). This bench sweeps N
// to expose the trade-off: small segments amortize allocation poorly and
// stress find_cell/reclamation; huge segments waste memory and lose cache
// locality on the head/tail frontier.
#include <iostream>

#include "bench_common.hpp"

namespace wfq::bench {
namespace {

template <std::size_t N>
struct SegTraits : DefaultWfTraits {
  static constexpr std::size_t kSegmentSize = N;
};

template <std::size_t N>
void row(Table& table, unsigned threads, uint64_t ops, bool use_delay,
         const MethodologyConfig& mcfg) {
  WfConfig wf;
  wf.patience = 10;
  RunConfig cfg;
  cfg.kind = WorkloadKind::kPairs;
  cfg.threads = threads;
  cfg.total_ops = ops;
  cfg.use_delay = use_delay;
  auto ci = measure(mcfg, [&] {
    auto q = std::make_shared<WFQueue<uint64_t, SegTraits<N>>>(wf);
    return std::function<double()>(
        [q, cfg] { return run_workload(*q, cfg).mops_raw(); });
  });
  // Segment churn from one instrumented run.
  WFQueue<uint64_t, SegTraits<N>> q(wf);
  (void)run_workload(q, cfg);
  auto s = q.stats();
  table.add_row({"2^" + std::to_string(__builtin_ctzll(N)),
                 Table::fmt_ci(ci.mean, ci.half_width),
                 std::to_string(s.segments_freed.load()),
                 std::to_string(q.live_segments())});
  std::cerr << "  [segment] N=" << N << " "
            << Table::fmt_ci(ci.mean, ci.half_width) << " Mops/s\n";
}

}  // namespace
}  // namespace wfq::bench

int main(int argc, char** argv) {
  wfq::bench::bench_main_init(argc, argv);
  using namespace wfq;
  using namespace wfq::bench;
  auto mcfg = MethodologyConfig::from_env();
  uint64_t ops = ops_from_env();
  bool use_delay = delay_enabled_from_env();
  unsigned hw = wfq::hardware_threads();
  unsigned threads = std::max(2u, 2 * hw);

  std::cout << "== Ablation C: segment size sweep (pairs workload, threads="
            << threads << "; paper default N = 2^10) ==\n\n";
  Table table({"N", "Mops/s (95% CI)", "segments freed", "live segments"});
  row<64>(table, threads, ops, use_delay, mcfg);
  row<256>(table, threads, ops, use_delay, mcfg);
  row<1024>(table, threads, ops, use_delay, mcfg);
  row<4096>(table, threads, ops, use_delay, mcfg);
  table.print();
  return 0;
}
