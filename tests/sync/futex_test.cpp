// Tests for the futex wrappers (src/sync/futex.hpp). Both implementations
// are exercised through the same typed suite: LinuxFutex (on Linux) and
// PortableFutex (always — the fallback must not bitrot just because CI
// runs on Linux).
#include "sync/futex.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using wfq::sync::WaitClock;
using wfq::sync::WakeCause;

template <class F>
class FutexTest : public ::testing::Test {};

#if defined(__linux__)
using FutexImpls =
    ::testing::Types<wfq::sync::LinuxFutex, wfq::sync::SharedFutex,
                     wfq::sync::PortableFutex>;
#else
using FutexImpls = ::testing::Types<wfq::sync::PortableFutex>;
#endif
TYPED_TEST_SUITE(FutexTest, FutexImpls);

TYPED_TEST(FutexTest, WaitReturnsImmediatelyOnValueMismatch) {
  std::atomic<uint32_t> word{1};
  // expected != current: must not sleep (would hang the test if it did),
  // and a mismatch means the word already moved — a notify happened — so
  // the tri-state result must be kNotified, not kSpurious (satellite fix:
  // the old bool return let EINTR and EAGAIN masquerade as each other).
  EXPECT_EQ(TypeParam::wait(word, 0), WakeCause::kNotified);
}

TYPED_TEST(FutexTest, TimedWaitTimesOut) {
  std::atomic<uint32_t> word{0};
  auto t0 = WaitClock::now();
  WakeCause c = TypeParam::wait_until(
      word, 0, t0 + std::chrono::milliseconds(20));
  EXPECT_EQ(c, WakeCause::kTimeout);
  EXPECT_GE(WaitClock::now() - t0, std::chrono::milliseconds(15));
}

TYPED_TEST(FutexTest, TimedWaitWithPastDeadlineTimesOut) {
  std::atomic<uint32_t> word{0};
  EXPECT_EQ(TypeParam::wait_until(
                word, 0, WaitClock::now() - std::chrono::milliseconds(1)),
            WakeCause::kTimeout);
}

TYPED_TEST(FutexTest, TimedWaitValueMismatchIsNotifiedNotTimeout) {
  std::atomic<uint32_t> word{7};
  EXPECT_EQ(TypeParam::wait_until(
                word, 0, WaitClock::now() + std::chrono::seconds(10)),
            WakeCause::kNotified);
}

TYPED_TEST(FutexTest, WakeDeliversToSleepingWaiter) {
  std::atomic<uint32_t> word{0};
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    while (word.load(std::memory_order_acquire) == 0) {
      TypeParam::wait(word, 0);  // spurious returns re-loop
    }
    done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  word.store(1, std::memory_order_release);
  TypeParam::wake(word, 1);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TYPED_TEST(FutexTest, WakeAllReleasesEveryWaiter) {
  std::atomic<uint32_t> word{0};
  constexpr unsigned kWaiters = 4;
  std::atomic<unsigned> released{0};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&] {
      while (word.load(std::memory_order_acquire) == 0) {
        TypeParam::wait(word, 0);
      }
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  word.store(1, std::memory_order_release);
  TypeParam::wake_all(word);
  for (auto& t : ts) t.join();
  EXPECT_EQ(released.load(), kWaiters);
}

TYPED_TEST(FutexTest, TimedWaitWokenBeforeDeadline) {
  std::atomic<uint32_t> word{0};
  std::atomic<bool> got_wake{false};
  std::thread waiter([&] {
    auto deadline = WaitClock::now() + std::chrono::seconds(10);
    while (word.load(std::memory_order_acquire) == 0) {
      if (TypeParam::wait_until(word, 0, deadline) == WakeCause::kTimeout)
        return;
    }
    got_wake.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  word.store(1, std::memory_order_release);
  TypeParam::wake(word, 1);
  waiter.join();
  EXPECT_TRUE(got_wake.load());  // long deadline: must exit via the wake
}

#if defined(__linux__)
// The PRIVATE flag is not just a hint: private and shared waiters on the
// SAME word live in different kernel wait queues. A shared-flag wake must
// not release a PRIVATE waiter (and vice versa) — the cross-process layer
// (src/ipc/) depends on matching the flag on both sides, so pin the
// independence down.
TEST(FutexFlagIndependence, SharedWakeDoesNotReachPrivateWaiter) {
  using Private = wfq::sync::LinuxFutex;
  using Shared = wfq::sync::SharedFutex;
  static_assert(Private::kPrivate && !Shared::kPrivate);

  std::atomic<uint32_t> word{0};
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    auto deadline = WaitClock::now() + std::chrono::seconds(10);
    while (word.load(std::memory_order_acquire) == 0) {
      if (Private::wait_until(word, 0, deadline) ==
          wfq::sync::WakeCause::kTimeout)
        return;  // gave up
    }
    released.store(true, std::memory_order_release);
  });

  // Let the waiter park, THEN change the word: a parked futex waiter is not
  // released by a value change alone, only by a wake — so if the wrong-flag
  // wake below reached it, it would re-check the word, see 1, and release.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1, std::memory_order_release);
  Shared::wake_all(word);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load(std::memory_order_acquire));

  // Matching-flag wake: releases promptly.
  Private::wake_all(word);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(FutexFlagIndependence, PrivateWakeDoesNotReachSharedWaiter) {
  using Private = wfq::sync::LinuxFutex;
  using Shared = wfq::sync::SharedFutex;

  std::atomic<uint32_t> word{0};
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    auto deadline = WaitClock::now() + std::chrono::seconds(10);
    while (word.load(std::memory_order_acquire) == 0) {
      if (Shared::wait_until(word, 0, deadline) ==
          wfq::sync::WakeCause::kTimeout)
        return;
    }
    released.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1, std::memory_order_release);
  Private::wake_all(word);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load(std::memory_order_acquire));

  Shared::wake_all(word);
  waiter.join();
  EXPECT_TRUE(released.load());
}
#endif  // __linux__

// Hammer wait/wake from both sides; the invariant is simply that every
// round terminates (no lost wakeup hangs — the test would time out).
TYPED_TEST(FutexTest, PingPongStress) {
  std::atomic<uint32_t> word{0};
  constexpr uint32_t kRounds = 2000;
  std::thread pong([&] {
    for (uint32_t r = 0; r < kRounds; r += 2) {
      while (word.load(std::memory_order_acquire) != r + 1) {
        TypeParam::wait(word, r);
      }
      word.store(r + 2, std::memory_order_release);
      TypeParam::wake(word, 1);
    }
  });
  for (uint32_t r = 0; r < kRounds; r += 2) {
    word.store(r + 1, std::memory_order_release);
    TypeParam::wake(word, 1);
    while (word.load(std::memory_order_acquire) != r + 2) {
      TypeParam::wait(word, r + 1);
    }
  }
  pong.join();
  EXPECT_EQ(word.load(), kRounds);
}

}  // namespace
