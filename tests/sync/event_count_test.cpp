// Tests for the EventCount (src/sync/event_count.hpp): waiter-registration
// bookkeeping, wake delivery, timed waits, and — the property the whole
// design rests on — the Dekker no-lost-wakeup guarantee under a
// deposit/park race.
#include "sync/event_count.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using wfq::sync::WaitClock;

template <class F>
class EventCountTest : public ::testing::Test {
 protected:
  wfq::sync::BasicEventCount<F> ec;
};

#if defined(__linux__)
using FutexImpls =
    ::testing::Types<wfq::sync::LinuxFutex, wfq::sync::PortableFutex>;
#else
using FutexImpls = ::testing::Types<wfq::sync::PortableFutex>;
#endif
TYPED_TEST_SUITE(EventCountTest, FutexImpls);

template <class F>
class EventCountWaitGuard : public ::testing::Test {};
TYPED_TEST_SUITE(EventCountWaitGuard, FutexImpls);

template <class F>
class EventCountAsync : public ::testing::Test {};
TYPED_TEST_SUITE(EventCountAsync, FutexImpls);

TYPED_TEST(EventCountTest, NoWaitersInitially) {
  EXPECT_FALSE(this->ec.has_waiters());
  EXPECT_EQ(this->ec.waiters(), 0u);
}

TYPED_TEST(EventCountTest, PrepareRegistersCancelDeregisters) {
  (void)this->ec.prepare_wait();
  EXPECT_TRUE(this->ec.has_waiters());
  EXPECT_EQ(this->ec.waiters(), 1u);
  this->ec.cancel_wait();
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, StaleKeyDoesNotSleep) {
  auto key = this->ec.prepare_wait();
  this->ec.notify_all();     // bumps the epoch: key is now stale
  this->ec.wait(key);        // must return immediately, not park forever
  EXPECT_FALSE(this->ec.has_waiters());  // wait() deregistered
}

TYPED_TEST(EventCountTest, TimedWaitTimesOutAndDeregisters) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  auto key = this->ec.prepare_wait();
  EXPECT_EQ(this->ec.wait_until(
                key, WaitClock::now() + std::chrono::milliseconds(10)),
            EC::WaitResult::kTimeout);
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, StaleKeyTimedWaitReportsNotified) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  auto key = this->ec.prepare_wait();
  this->ec.notify_all();  // epoch moved: the wait must not report kTimeout
  EXPECT_EQ(this->ec.wait_until(
                key, WaitClock::now() + std::chrono::seconds(10)),
            EC::WaitResult::kNotified);
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, NotifyWakesParkedWaiter) {
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    for (;;) {
      auto key = this->ec.prepare_wait();
      if (flag.load(std::memory_order_seq_cst)) {
        this->ec.cancel_wait();
        return;
      }
      this->ec.wait(key);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_seq_cst);
  if (this->ec.has_waiters()) this->ec.notify(1);
  waiter.join();
  EXPECT_FALSE(this->ec.has_waiters());
}

TYPED_TEST(EventCountTest, NotifyAllWakesEveryWaiter) {
  constexpr unsigned kWaiters = 4;
  std::atomic<bool> flag{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&] {
      for (;;) {
        auto key = this->ec.prepare_wait();
        if (flag.load(std::memory_order_seq_cst)) {
          this->ec.cancel_wait();
          return;
        }
        this->ec.wait(key);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_seq_cst);
  this->ec.notify_all();
  for (auto& t : ts) t.join();
  EXPECT_EQ(this->ec.waiters(), 0u);
}

// The Dekker guarantee: a producer that deposits and then sees no waiter
// may skip notify entirely, yet no consumer that registered can sleep
// through the deposit. One flag per round plays the "queue item"; the
// consumer uses the prepare/re-check/wait protocol, the producer uses
// deposit/check/conditional-notify — exactly BlockingQueue's structure.
TYPED_TEST(EventCountTest, DekkerNeverLosesAWakeup) {
  constexpr int kRounds = 20000;
  std::atomic<int> round{0};   // producer bumps: consumer must see each bump
  std::atomic<uint64_t> skipped_notifies{0};
  std::thread consumer([&] {
    int seen = 0;
    while (seen < kRounds) {
      if (round.load(std::memory_order_seq_cst) > seen) {
        ++seen;
        continue;
      }
      auto key = this->ec.prepare_wait();
      if (round.load(std::memory_order_seq_cst) > seen) {
        this->ec.cancel_wait();  // re-check found the deposit: no park
        continue;
      }
      this->ec.wait(key);  // if the wakeup were lost, we hang right here
    }
  });
  for (int r = 1; r <= kRounds; ++r) {
    round.store(r, std::memory_order_seq_cst);  // "deposit"
    if (this->ec.has_waiters()) {
      this->ec.notify(1);
    } else {
      skipped_notifies.fetch_add(1, std::memory_order_relaxed);
    }
  }
  consumer.join();
  // The assertion is the join itself: a lost wakeup parks the consumer
  // forever and the test times out. skipped_notifies measures how often
  // the producer's fast path actually skipped — usually most rounds, but
  // on a loaded machine the consumer can legitimately be registered every
  // single round, so it is reported rather than asserted (the
  // deterministic zero-notify assertion lives in the BlockingQueue suite,
  // where try_pop provably never registers).
  this->RecordProperty("skipped_notifies",
                       std::to_string(skipped_notifies.load()));
}

// ---- WaitGuard (PR 10 satellite): exception-safe registration ------------

// The regression the guard exists for: anything throwing between
// prepare_wait() and wait() used to leak waiters_ permanently, pinning
// every future enqueue onto the notify slow path.
TYPED_TEST(EventCountWaitGuard, ThrowBetweenPrepareAndWaitLeaksNothing) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  try {
    typename EC::WaitGuard guard(ec);
    EXPECT_EQ(ec.waiters(), 1u);  // registered
    throw std::runtime_error("predicate re-check threw");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ec.waiters(), 0u) << "guard must cancel on unwind";
  EXPECT_FALSE(ec.has_waiters());
}

TYPED_TEST(EventCountWaitGuard, EarlyReturnCancelsRegistration) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  [&]() {
    typename EC::WaitGuard guard(ec);
    return;  // predicate fired: leave without waiting
  }();
  EXPECT_EQ(ec.waiters(), 0u);
}

TYPED_TEST(EventCountWaitGuard, WaitConsumesTheRegistrationExactlyOnce) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  {
    typename EC::WaitGuard guard(ec);
    ec.notify_all();  // make the key stale so wait() returns immediately
    (void)guard.wait();
    EXPECT_EQ(ec.waiters(), 0u);  // wait() deregistered...
  }
  EXPECT_EQ(ec.waiters(), 0u);  // ...and the destructor must not double-sub
}

// ---- AsyncWaiter slots (PR 10 tentpole seam) -----------------------------

TYPED_TEST(EventCountAsync, RegisteredSlotCountsAsWaiterAndCancelsClean) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  typename EC::AsyncWaiter w;
  w.on_notify = [](typename EC::AsyncWaiter* n) {
    n->state.store(EC::kAwDone, std::memory_order_release);
  };
  ec.register_async(&w);
  EXPECT_TRUE(ec.has_waiters()) << "async slots must feed the Dekker word";
  EXPECT_EQ(ec.waiters(), 1u);
  EXPECT_TRUE(ec.cancel_async(&w));
  EXPECT_EQ(ec.waiters(), 0u);
  EXPECT_EQ(w.state.load(), EC::kAwCancelled);
}

TYPED_TEST(EventCountAsync, NotifyClaimsSlotAndRunsCallback) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  static std::atomic<int> fired;
  fired.store(0);
  typename EC::AsyncWaiter w;
  w.on_notify = [](typename EC::AsyncWaiter* n) {
    fired.fetch_add(1, std::memory_order_relaxed);
    n->state.store(EC::kAwDone, std::memory_order_release);
  };
  ec.register_async(&w);
  ec.notify(1);
  EC::await_async_done(&w);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(ec.waiters(), 0u) << "claim must deregister the slot";
  EXPECT_FALSE(ec.cancel_async(&w)) << "already claimed";
}

TYPED_TEST(EventCountAsync, NotifyOneClaimsInFifoOrderAndLeavesTheRest) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  static std::atomic<int> order;
  order.store(0);
  struct Slot : EC::AsyncWaiter {
    int seq = -1;
  };
  Slot a, b, c;
  auto cb = [](typename EC::AsyncWaiter* n) {
    static_cast<Slot*>(n)->seq = order.fetch_add(1, std::memory_order_relaxed);
    n->state.store(EC::kAwDone, std::memory_order_release);
  };
  a.on_notify = b.on_notify = c.on_notify = cb;
  ec.register_async(&a);
  ec.register_async(&b);
  ec.register_async(&c);
  EXPECT_EQ(ec.waiters(), 3u);
  ec.notify(1);
  EC::await_async_done(&a);
  EXPECT_EQ(a.seq, 0) << "oldest registration is claimed first";
  EXPECT_EQ(ec.waiters(), 2u);
  ec.notify_all();
  EC::await_async_done(&b);
  EC::await_async_done(&c);
  EXPECT_EQ(b.seq, 1);
  EXPECT_EQ(c.seq, 2);
  EXPECT_EQ(ec.waiters(), 0u);
}

// Mixed population: a parked thread and an async slot, one notify_all —
// both kinds must be released by the single epoch bump + claim sweep.
TYPED_TEST(EventCountAsync, NotifyAllReleasesThreadsAndSlotsTogether) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  static std::atomic<int> slot_fired;
  slot_fired.store(0);
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    for (;;) {
      auto key = ec.prepare_wait();
      if (flag.load(std::memory_order_seq_cst)) {
        ec.cancel_wait();
        return;
      }
      ec.wait(key);
    }
  });
  typename EC::AsyncWaiter w;
  w.on_notify = [](typename EC::AsyncWaiter* n) {
    slot_fired.fetch_add(1, std::memory_order_relaxed);
    n->state.store(EC::kAwDone, std::memory_order_release);
  };
  ec.register_async(&w);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_seq_cst);
  ec.notify_all();
  waiter.join();
  EC::await_async_done(&w);
  EXPECT_EQ(slot_fired.load(), 1);
  EXPECT_EQ(ec.waiters(), 0u);
}

// cancel vs notify race: for every round exactly one side must win — the
// cancel (slot ends kAwCancelled, callback never runs) or the claim (slot
// ends kAwDone, callback ran once) — and waiters_ must return to zero.
TYPED_TEST(EventCountAsync, CancelVsNotifyRaceNeverLeaksWaiterCounts) {
  using EC = wfq::sync::BasicEventCount<TypeParam>;
  EC ec;
  constexpr int kRounds = 5000;
  static std::atomic<uint64_t> fired;
  fired.store(0);
  uint64_t cancelled = 0;
  for (int r = 0; r < kRounds; ++r) {
    typename EC::AsyncWaiter w;
    w.on_notify = [](typename EC::AsyncWaiter* n) {
      fired.fetch_add(1, std::memory_order_relaxed);
      n->state.store(EC::kAwDone, std::memory_order_release);
    };
    ec.register_async(&w);
    std::thread notifier([&] { ec.notify(1); });
    if (ec.cancel_async(&w)) {
      ++cancelled;
    } else {
      EC::await_async_done(&w);  // claimed: wait out the callback
    }
    notifier.join();
    ASSERT_EQ(ec.waiters(), 0u) << "round " << r;
  }
  EXPECT_EQ(cancelled + fired.load(), uint64_t(kRounds));
}

}  // namespace
